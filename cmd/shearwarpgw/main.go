// Command shearwarpgw is the resilient front door over a fleet of
// shearwarpd backends. It proxies /render with volume-affine consistent
// hashing (bounded-load), actively health-checks each backend's
// /readyz, retries retryable failures with jittered backoff, hedges the
// latency tail, and ejects misbehaving backends behind per-backend
// circuit breakers.
//
// Every proxied request is minted a fleet trace ID, forwarded to the
// backends on every attempt, and echoed to the client in
// X-Shearwarp-Trace; /debug/trace?id=N stitches the gateway's attempt
// spans with every touched backend's span sets into one clock-aligned
// Chrome trace-event document.
//
// Endpoints:
//
//	GET /render       (proxied to the fleet; budget= caps the request deadline)
//	GET /healthz      (fleet summary; ?check=1 forces a health round)
//	GET /readyz       (503 while draining or no backend is eligible)
//	GET /metrics      (JSON incl. merged fleet section; Prometheus text under Accept: text/plain)
//	GET /debug/dash   (self-contained fleet dashboard)
//	GET /debug/spans  (retained gateway traces as Chrome trace JSON; ?id=N, ?format=raw)
//	GET /debug/trace  (?id=N: cross-process stitched fleet trace)
//	GET /debug/slo    (fleet-level SLO burn-rate state over merged scrapes)
//
// Usage:
//
//	shearwarpd -addr :8081 & shearwarpd -addr :8082 &
//	shearwarpgw -addr :8080 -backends http://localhost:8081,http://localhost:8082
//	curl 'localhost:8080/render?volume=mri&yaw=45&pitch=20&format=png' > frame.png
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"shearwarp/internal/faultinject"
	"shearwarp/internal/gateway"
	"shearwarp/internal/slo"
	"shearwarp/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "", "comma-separated backend base URLs (required)")
	replicas := flag.Int("replicas", 64, "virtual ring nodes per backend")
	loadFactor := flag.Float64("load-factor", 1.25, "bounded-load factor c: skip a backend past ceil(c*(total+1)/n) in-flight")
	healthInterval := flag.Duration("health-interval", time.Second, "backend /readyz poll period")
	healthTimeout := flag.Duration("health-timeout", time.Second, "per-probe timeout")
	failThreshold := flag.Int("fail-threshold", 2, "consecutive probe failures before a backend is unroutable")
	riseThreshold := flag.Int("rise-threshold", 2, "consecutive probe successes before a backend is routable again")
	maxAttempts := flag.Int("max-attempts", 3, "total attempts per request (first try + retries + hedges)")
	retryBase := flag.Duration("retry-base", 10*time.Millisecond, "backoff base before the second attempt")
	retryMax := flag.Duration("retry-max", 250*time.Millisecond, "backoff cap")
	hedgeQuantile := flag.Float64("hedge-quantile", 0.95, "attempt-latency quantile that arms a hedged attempt (<0 disables hedging)")
	hedgeMin := flag.Duration("hedge-min", 10*time.Millisecond, "learned hedge delay floor")
	hedgeMax := flag.Duration("hedge-max", 2*time.Second, "learned hedge delay ceiling (used until warmed up)")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive failures that open a backend's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open circuit cooldown before the half-open probe")
	budget := flag.Duration("budget", 30*time.Second, "default per-request deadline when the client sends none")
	traceRing := flag.Int("trace-ring", 0, "retained gateway traces for /debug/spans and /debug/trace (0 = default ring, <0 disables retention)")
	fleetInterval := flag.Duration("fleet-interval", 10*time.Second, "backend /metrics scrape+merge period (<0 disables fleet aggregation)")
	sloSpec := flag.String("slo", "", "fleet-level objectives over merged scrapes, e.g. 'latency@/render:le=250ms:target=99%' (empty = built-in defaults)")
	faultSpec := flag.String("fault-spec", "", "inject deterministic transport faults toward the backends, e.g. 'kill@transport:n=7;status@transport:s=503:n=13:c=3' (see internal/faultinject)")
	logFormat := flag.String("log-format", "", "structured log format: text | json (empty = logging off)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	flag.Parse()

	if *backends == "" {
		fatal(errors.New("-backends is required (comma-separated shearwarpd base URLs)"))
	}
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("bad -log-level %q: %w", *logLevel, err))
	}
	logger := telemetry.NewLogger(os.Stderr, *logFormat, level)

	var objectives []slo.Objective
	if *sloSpec != "" {
		var err error
		objectives, err = slo.Parse(*sloSpec)
		if err != nil {
			fatal(fmt.Errorf("bad -slo: %w", err))
		}
	}

	var transport http.RoundTripper
	if *faultSpec != "" {
		faults, err := faultinject.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "shearwarpgw: FAULT INJECTION ACTIVE: %s\n", *faultSpec)
		transport = faultinject.NewTransport(faults, nil)
	}

	gw, err := gateway.New(gateway.Config{
		Backends:        urls,
		Replicas:        *replicas,
		LoadFactor:      *loadFactor,
		HealthInterval:  *healthInterval,
		HealthTimeout:   *healthTimeout,
		FailThreshold:   *failThreshold,
		RiseThreshold:   *riseThreshold,
		MaxAttempts:     *maxAttempts,
		RetryBaseDelay:  *retryBase,
		RetryMaxDelay:   *retryMax,
		HedgeQuantile:   *hedgeQuantile,
		HedgeMin:        *hedgeMin,
		HedgeMax:        *hedgeMax,
		BreakerFailures: *breakerFailures,
		BreakerCooldown: *breakerCooldown,
		DefaultBudget:   *budget,
		TraceRing:       *traceRing,
		FleetInterval:   *fleetInterval,
		SLO:             objectives,
		Transport:       transport,
		Logger:          logger,
	})
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: gw.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("shearwarpgw: routing %d backends on %s (attempts %d, hedge q%.2f, breaker %d/%s)\n",
		len(urls), *addr, *maxAttempts, *hedgeQuantile, *breakerFailures, *breakerCooldown)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Same two-phase drain as the backends: flip /readyz unready so
	// upstream load balancers stop routing here, then stop accepting,
	// drain in-flight proxied requests, and stop the health loop.
	fmt.Println("shearwarpgw: shutting down")
	gw.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "shearwarpgw: shutdown:", err)
	}
	gw.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shearwarpgw:", err)
	os.Exit(1)
}
