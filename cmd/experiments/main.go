// Command experiments regenerates the paper's evaluation figures as text
// tables on the deterministic multiprocessor simulator.
//
// Usage:
//
//	experiments -list
//	experiments -fig fig16 -scale default
//	experiments -fig all -scale default -o results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"shearwarp"
)

func main() {
	fig := flag.String("fig", "all", "figure id (fig2..fig22) or \"all\"")
	scale := flag.String("scale", "default", "experiment scale: small | default | large")
	list := flag.Bool("list", false, "list the available figures and exit")
	format := flag.String("format", "text", "output format: text | csv")
	outPath := flag.String("o", "", "also write the tables to this file")
	flag.Parse()

	if *list {
		for _, f := range shearwarp.ListFigures() {
			fmt.Printf("%-7s %s\n", f[0], f[1])
		}
		return
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	if err := shearwarp.RunFigureFormat(*fig, *scale, *format, w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "completed in %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
