// Command volgen generates the synthetic phantom volumes used throughout
// the reproduction (the stand-ins for the paper's MRI brain and CT head
// scans) and writes them in the repository's .vol format. It can also
// up-sample an existing volume with the trilinear resampling tool, the way
// the paper produced its 512^3 and 640^3 inputs from the 256^3 scan.
//
// Usage:
//
//	volgen -kind mri -size 128 -out brain128.vol
//	volgen -in brain128.vol -resample 256x256x167 -out brain256.vol
package main

import (
	"flag"
	"fmt"
	"os"

	"shearwarp/internal/vol"
)

func main() {
	kind := flag.String("kind", "mri", "phantom kind: mri | ct")
	size := flag.Int("size", 128, "phantom size n (mri: n*n*0.65n, ct: n^3)")
	in := flag.String("in", "", "input .vol to resample instead of generating")
	resample := flag.String("resample", "", "target dims WxHxD for -in")
	out := flag.String("out", "", "output .vol path (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "volgen: -out is required")
		os.Exit(2)
	}

	var v *vol.Volume
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		v, err = vol.ReadFrom(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if *resample != "" {
			var nx, ny, nz int
			if _, err := fmt.Sscanf(*resample, "%dx%dx%d", &nx, &ny, &nz); err != nil {
				fatal(fmt.Errorf("bad -resample %q: %w", *resample, err))
			}
			v = v.Resample(nx, ny, nz)
		}
	case *kind == "mri":
		v = vol.MRIBrain(*size)
	case *kind == "ct":
		v = vol.CTHead(*size)
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kind))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if _, err := v.WriteTo(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st := v.ComputeStats()
	fmt.Printf("wrote %s: %dx%dx%d voxels, %.1f%% zero, max %d\n",
		*out, v.Nx, v.Ny, v.Nz, 100*st.ZeroFrac, st.Max)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "volgen:", err)
	os.Exit(1)
}
