// Command loadgen replays zipfian multi-tenant render traffic against a
// running shearwarpd and writes the run's report as JSON (BENCH_load.json
// by convention). It is the stimulus half of the closed observability
// loop: drive load here, watch the SLO engine and /debug/dash react.
//
// Usage:
//
//	shearwarpd -addr :8080 -tenants 12 &
//	loadgen -url http://localhost:8080 -rps 20 -duration 30s -out BENCH_load.json
//
// The volume catalogue is discovered from /healthz unless -volumes
// names an explicit comma-separated, popularity-ranked list. With
// -strict, any 5xx response or transport error makes the exit status
// non-zero (for CI smoke jobs).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"shearwarp/internal/loadgen"
)

// targetList collects repeated -target flags.
type targetList []string

func (t *targetList) String() string { return strings.Join(*t, ",") }
func (t *targetList) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			*t = append(*t, strings.TrimRight(s, "/"))
		}
	}
	return nil
}

func main() {
	url := flag.String("url", "", "shearwarpd base URL (default http://localhost:8080 when no -target given)")
	var targets targetList
	flag.Var(&targets, "target", "service base URL; repeat (or comma-separate) to round-robin arrivals across replicas/gateways")
	retryAfterCap := flag.Duration("retry-after-cap", 2*time.Second, "longest honored Retry-After backoff on shed responses (negative = ignore hints)")
	rps := flag.Float64("rps", 10, "target request rate (open loop)")
	duration := flag.Duration("duration", 15*time.Second, "how long to dispatch requests")
	concurrency := flag.Int("concurrency", 0, "max in-flight requests (0 = 4*rps, min 8)")
	skew := flag.Float64("skew", 1.2, "Zipf skew over the volume catalogue (> 1)")
	volumes := flag.String("volumes", "", "comma-separated popularity-ranked volumes (empty = discover from /healthz)")
	alg := flag.String("alg", "", "render algorithm to request (empty = service default)")
	format := flag.String("format", "ppm", "frame format to request")
	seed := flag.Int64("seed", 1, "RNG seed for the tenant/viewpoint sequence")
	out := flag.String("out", "BENCH_load.json", "report path ('-' = stdout only)")
	strict := flag.Bool("strict", false, "exit non-zero on any 5xx or transport error")
	flag.Parse()

	if *url == "" && len(targets) == 0 {
		*url = "http://localhost:8080"
	}
	cfg := loadgen.Config{
		BaseURL:       strings.TrimRight(*url, "/"),
		Targets:       targets,
		RPS:           *rps,
		Duration:      *duration,
		Concurrency:   *concurrency,
		Skew:          *skew,
		Algorithm:     *alg,
		Format:        *format,
		Seed:          *seed,
		RetryAfterCap: *retryAfterCap,
	}
	if *volumes != "" {
		for _, v := range strings.Split(*volumes, ",") {
			if v = strings.TrimSpace(v); v != "" {
				cfg.Volumes = append(cfg.Volumes, v)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	all := cfg.Targets
	if cfg.BaseURL != "" {
		all = append([]string{cfg.BaseURL}, all...)
	}
	roots := strings.Join(all, ", ")
	fmt.Fprintf(os.Stderr, "loadgen: %s for %v at %g rps (zipf %g)\n",
		roots, cfg.Duration, cfg.RPS, cfg.Skew)
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
	os.Stdout.Write(buf)

	fmt.Fprintf(os.Stderr, "loadgen: %d requests (%.1f rps achieved), %d shed, %d 5xx, %d transport errors, p99 %.1fms\n",
		rep.Requests, rep.AchievedRPS, rep.Shed, rep.ServerErrors, rep.TransportErrors, rep.Latency.P99MS)
	if rep.RetryAfterSeen > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d Retry-After hints (%d honored, %.1fs waited, %d retries succeeded)\n",
			rep.RetryAfterSeen, rep.RetryAfterHonored, rep.RetryAfterWaitSecs, rep.RetrySuccesses)
	}
	if *strict && (rep.ServerErrors > 0 || rep.TransportErrors > 0) {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL (-strict): server or transport errors observed")
		os.Exit(2)
	}
}
