// Command shearwarpd serves rendered frames over HTTP from a pool of
// persistent renderers, amortizing the view-independent preprocessing
// (classification, per-axis run-length encoding) across requests through
// an LRU cache.
//
// Endpoints:
//
//	GET /render?volume=mri&yaw=30&pitch=15[&alg=new][&transfer=mri][&mode=mip][&iso=140][&format=ppm]
//	GET /healthz
//	GET /readyz         (503 once graceful shutdown begins — fleet routability)
//	GET /metrics        (JSON; Prometheus text under Accept: text/plain)
//	GET /debug/spans    (Chrome trace-event JSON; ?view=timeline for text bars)
//	GET /debug/latency  (latency quantile digests as JSON)
//
// With no -in the service registers the two synthetic phantoms under the
// names "mri" and "ct"; with -in FILE it registers that volume under the
// file's base name.
//
// Usage:
//
//	shearwarpd -addr :8080 -size 128 -procs 8 -max-concurrent 8
//	shearwarpd -in brain.vol -alg new -cache-mb 512
//	curl 'localhost:8080/render?volume=mri&yaw=45&pitch=20&format=png' > frame.png
//	curl 'localhost:8080/render?volume=ct&yaw=45&pitch=20&mode=iso&iso=140&format=png' > surface.png
//
// The -mode and -iso flags set the defaults for requests that omit the
// mode= and iso= parameters.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shearwarp"
	"shearwarp/internal/cli"
	"shearwarp/internal/faultinject"
	"shearwarp/internal/server"
	"shearwarp/internal/slo"
	"shearwarp/internal/telemetry"
	"shearwarp/internal/vol"
)

func main() {
	var vf cli.VolumeFlags
	vf.Register(flag.CommandLine)
	addr := flag.String("addr", ":8080", "listen address")
	algName := flag.String("alg", "new", "default algorithm: serial | old | new | raycast")
	var kf cli.KernelFlag
	kf.Register(flag.CommandLine)
	var mf cli.ModeFlag
	mf.Register(flag.CommandLine)
	procs := flag.Int("procs", 4, "workers inside each parallel render")
	pool := flag.Int("pool", 0, "renderers per (volume, transfer, algorithm) pool (0 = max-concurrent)")
	maxConcurrent := flag.Int("max-concurrent", 8, "frames rendering at once")
	maxQueue := flag.Int("max-queue", 0, "requests waiting for admission before 503 (0 = 4*max-concurrent)")
	queueTimeout := flag.Duration("queue-timeout", 5*time.Second, "longest admission wait before 503")
	renderTimeout := flag.Duration("render-timeout", 30*time.Second, "request deadline to start rendering")
	cacheMB := flag.Int64("cache-mb", 256, "preprocessing cache budget in MiB (<0 = unbounded)")
	stats := flag.Bool("stats", true, "collect per-frame phase breakdowns for /metrics")
	watchdog := flag.Duration("watchdog", 0, "cancel frames still rendering after this long and answer 500 (0 = off)")
	faultSpec := flag.String("fault-spec", "", "inject deterministic faults for chaos testing, e.g. 'panic@composite:w=1;delay@scanline:n=100:d=2ms' (see internal/faultinject)")
	logFormat := flag.String("log-format", "", "structured log format: text | json (empty = logging off)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	traceRing := flag.Int("trace-ring", 64, "recent request traces retained for /debug/spans (<0 = tracing off)")
	sloSpec := flag.String("slo", slo.DefaultSpec, "service-level objectives for /debug/slo, e.g. 'latency@/render:le=250ms:target=99%;availability@/render:target=99.9%' (empty = engine off)")
	sloInterval := flag.Duration("slo-interval", 10*time.Second, "SLO engine background sampling period")
	tenants := flag.Int("tenants", 0, "register N extra synthetic volumes (vol00..) with distinct content for multi-tenant load tests")
	flag.Parse()

	alg, err := shearwarp.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	kernel, err := kf.Kernel()
	if err != nil {
		fatal(err)
	}
	mode, isoThr, err := mf.Mode()
	if err != nil {
		fatal(err)
	}
	faults, err := faultinject.Parse(*faultSpec)
	if err != nil {
		fatal(err)
	}
	if faults != nil {
		fmt.Fprintf(os.Stderr, "shearwarpd: FAULT INJECTION ACTIVE: %s\n", *faultSpec)
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("bad -log-level %q: %w", *logLevel, err))
	}
	objectives, err := slo.Parse(*sloSpec)
	if err != nil {
		fatal(err)
	}
	sloTick := *sloInterval
	if *sloSpec == "" {
		sloTick = -1 // empty spec = engine off
	}
	logger := telemetry.NewLogger(os.Stderr, *logFormat, level)
	srv := server.New(server.Config{
		Procs:           *procs,
		Algorithm:       alg,
		Kernel:          kernel,
		Mode:            mode,
		IsoThreshold:    isoThr,
		PoolSize:        *pool,
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		QueueTimeout:    *queueTimeout,
		RenderTimeout:   *renderTimeout,
		CacheBytes:      *cacheMB << 20,
		CollectStats:    *stats,
		WatchdogTimeout: *watchdog,
		Faults:          faults,
		Logger:          logger,
		TraceRing:       *traceRing,
		SLO:             objectives,
		SLOInterval:     sloTick,
	})

	if vf.In != "" {
		v, tf, err := vf.Load()
		if err != nil {
			fatal(err)
		}
		if err := srv.RegisterVolume(vf.Name(), v.Data, v.Nx, v.Ny, v.Nz, tf); err != nil {
			fatal(err)
		}
	} else {
		m := vol.MRIBrain(vf.Size)
		c := vol.CTHead(vf.Size)
		if err := srv.RegisterVolume("mri", m.Data, m.Nx, m.Ny, m.Nz, shearwarp.TransferMRI); err != nil {
			fatal(err)
		}
		if err := srv.RegisterVolume("ct", c.Data, c.Nx, c.Ny, c.Nz, shearwarp.TransferCT); err != nil {
			fatal(err)
		}
	}
	// Extra synthetic tenants for multi-tenant load tests: alternating
	// phantom kinds at staggered sizes, so every tenant has distinct
	// content (a distinct cache fingerprint) and build cost.
	for i := 0; i < *tenants; i++ {
		size := 24 + (i%32)*4
		var v *vol.Volume
		tf := shearwarp.TransferMRI
		if i%2 == 0 {
			v = vol.MRIBrain(size)
		} else {
			v, tf = vol.CTHead(size), shearwarp.TransferCT
		}
		if err := srv.RegisterVolume(fmt.Sprintf("vol%02d", i), v.Data, v.Nx, v.Ny, v.Nz, tf); err != nil {
			fatal(err)
		}
	}
	srv.PublishExpvar()

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	hs := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("shearwarpd: serving %v on %s (alg %s, %d procs, %d concurrent)\n",
		srv.Volumes(), *addr, alg, *procs, *maxConcurrent)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: flip /readyz unready first so fleet health
	// checkers stop routing here while the listener is still up, then
	// stop accepting, drain in-flight HTTP requests, and release the
	// renderer pools' worker goroutines.
	fmt.Println("shearwarpd: shutting down")
	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "shearwarpd: shutdown:", err)
	}
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shearwarpd:", err)
	os.Exit(1)
}
