// Command shearwarp renders a volume to a PPM image with any of the
// repository's renderers: the serial shear warper, the old and new
// parallel algorithms, or the ray-casting baseline. With -frames > 1 it
// renders a rotation animation and reports per-frame statistics.
//
// Usage:
//
//	shearwarp -kind mri -size 128 -alg new -procs 8 -yaw 30 -pitch 15 -out frame.ppm
//	shearwarp -kind ct -mode mip -out mip.png
//	shearwarp -mode iso -iso 140 -alg new -procs 8 -out surface.png
//	shearwarp -in brain.vol -alg serial -frames 24 -step 5
//	shearwarp -alg old -procs 8 -frames 16 -stats -statsjson phases.json
//	shearwarp -alg new -frames 100 -trace trace.out -metrics-addr :8080
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"shearwarp"
	"shearwarp/internal/cli"
	"shearwarp/internal/perf"
	"shearwarp/internal/telemetry"
)

func main() {
	var vf cli.VolumeFlags
	vf.Register(flag.CommandLine)
	algName := flag.String("alg", "new", "algorithm: serial | old | new | raycast")
	var kf cli.KernelFlag
	kf.Register(flag.CommandLine)
	var mf cli.ModeFlag
	mf.Register(flag.CommandLine)
	procs := flag.Int("procs", 4, "workers for the parallel algorithms")
	yaw := flag.Float64("yaw", 30, "yaw in degrees")
	pitch := flag.Float64("pitch", 15, "pitch in degrees")
	frames := flag.Int("frames", 1, "number of animation frames")
	step := flag.Float64("step", 5, "yaw degrees per animation frame")
	out := flag.String("out", "", "output image path for the last frame (.ppm or .png)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the render loop to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the render loop) to this file")
	traceFile := flag.String("trace", "", "write a runtime/trace of the render loop to this file")
	statsFlag := flag.Bool("stats", false, "print a per-worker phase breakdown table after each frame")
	statsJSON := flag.String("statsjson", "", "write the per-frame phase breakdowns as JSON to this file (\"-\" = stdout)")
	metricsAddr := flag.String("metrics-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof) on this address during the run")
	spansFile := flag.String("spans", "", "write per-frame worker span traces as Chrome trace-event JSON to this file (load in chrome://tracing or ui.perfetto.dev)")
	flag.Parse()

	alg, err := shearwarp.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	kernel, err := kf.Kernel()
	if err != nil {
		fatal(err)
	}
	mode, isoThr, err := mf.Mode()
	if err != nil {
		fatal(err)
	}
	collect := *statsFlag || *statsJSON != "" || *metricsAddr != ""
	cfg := shearwarp.Config{Algorithm: alg, Kernel: kernel, Procs: *procs,
		Mode: mode, IsoThreshold: isoThr, CollectStats: collect}
	if (collect || *spansFile != "") && alg == shearwarp.RayCast {
		fatal(fmt.Errorf("-stats/-statsjson/-metrics-addr/-spans need a shear-warp algorithm (serial, old, new)"))
	}

	v, tf, err := vf.Load()
	if err != nil {
		fatal(err)
	}
	cfg.Transfer = tf
	r, err := shearwarp.NewRenderer(v.Data, v.Nx, v.Ny, v.Nz, cfg)
	if err != nil {
		fatal(err)
	}

	// The profiles cover only the render loop, not volume loading or
	// preprocessing, so they answer "where do frames spend their time".
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// The execution trace likewise covers only the render loop; each frame
	// shows up as a "shearwarp.frame" task with per-phase regions.
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fatal(err)
		}
		defer rtrace.Stop()
	}

	// The metrics endpoint publishes the cumulative phase/counter totals
	// under "shearwarp" in /debug/vars, next to the stock expvar and pprof
	// handlers — scrapeable while a long animation renders.
	var cum perf.Cumulative
	if *metricsAddr != "" {
		expvar.Publish("shearwarp", expvar.Func(func() any { return cum.Snapshot() }))
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "shearwarp: metrics server:", err)
			}
		}()
	}

	// Span tracing shares one epoch across the whole animation, so the
	// exported Chrome trace lays the frames out end to end on one timeline
	// (one "process" per frame, one row per worker).
	var spanRec *telemetry.FrameSpans
	var spanTraces []*telemetry.Trace
	var spanEpoch time.Time
	if *spansFile != "" {
		spanEpoch = time.Now()
		spanRec = telemetry.NewFrameSpans(spanEpoch)
		r.SetSpanRecorder(spanRec)
	}

	var last *shearwarp.Image
	var breakdowns []*perf.FrameBreakdown
	start := time.Now()
	for i := 0; i < *frames; i++ {
		y := *yaw + float64(i)*(*step)
		t0 := time.Now()
		im, info := r.Render(y, *pitch)
		last = im
		fmt.Printf("frame %2d  yaw %6.1f  %4dx%-4d  %8.2fms  %8d samples  steals %d  profiled %v\n",
			i, y, im.Width(), im.Height(),
			float64(time.Since(t0).Microseconds())/1000, info.Samples, info.Steals, info.Profiled)
		if bd := r.LastBreakdown(); bd != nil {
			fb := bd.Frame()
			cum.Add(fb)
			if *statsJSON != "" {
				breakdowns = append(breakdowns, fb)
			}
			if *statsFlag {
				fmt.Print(bd.Table())
			}
		}
		if spanRec != nil {
			spans := spanRec.Spans()
			spanTraces = append(spanTraces, &telemetry.Trace{
				ID:      uint64(i + 1),
				Label:   fmt.Sprintf("frame %d yaw=%.1f", i, y),
				StartNS: t0.Sub(spanEpoch).Nanoseconds(),
				DurNS:   time.Since(t0).Nanoseconds(),
				Dropped: spanRec.Dropped(),
				Spans:   append([]telemetry.Span(nil), spans...),
			})
			spanRec.Reset(spanEpoch)
		}
	}
	elapsed := time.Since(start)

	if *spansFile != "" {
		if err := writeSpans(*spansFile, spanTraces); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *spansFile)
	}

	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, alg.String(), breakdowns); err != nil {
			fatal(err)
		}
		if *statsJSON != "-" {
			fmt.Printf("wrote %s\n", *statsJSON)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // get up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *frames > 1 {
		fmt.Printf("%d frames in %v (%.1f fps)\n", *frames, elapsed.Round(time.Millisecond),
			float64(*frames)/elapsed.Seconds())
	}

	if *out != "" && last != nil {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*out, ".png") {
			err = last.WritePNG(f)
		} else {
			err = last.WritePPM(f)
		}
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// writeStatsJSON emits the run's per-frame phase breakdowns as one JSON
// document: {"algorithm": ..., "frames": [FrameBreakdown...]}.
func writeStatsJSON(path, alg string, frames []*perf.FrameBreakdown) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Algorithm string                 `json:"algorithm"`
		Frames    []*perf.FrameBreakdown `json:"frames"`
	}{alg, frames})
}

// writeSpans exports the per-frame span traces as one Chrome trace-event
// JSON document.
func writeSpans(path string, traces []*telemetry.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(f, traces); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shearwarp:", err)
	os.Exit(1)
}
