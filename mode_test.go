package shearwarp

// Render-mode matrix tests: the mode axis (composite, MIP, isosurface)
// against three invariants.
//
//  1. Pre-PR pinning: ModeComposite output is byte-identical to the
//     images the serial renderer produced before the mode axis existed —
//     pinned as FNV-1a hashes captured from the pre-mode tree, so adding
//     modes provably changed nothing about the default path.
//  2. Cross-algorithm identity per mode: Serial, OldParallel and
//     NewParallel produce byte-identical images in every mode. For MIP
//     this is structural (float max is order-independent, so scanline
//     ownership does not matter); for isosurface it follows from the
//     compositing path being the ordinary one over a differently
//     classified volume.
//  3. Oracle agreement per mode: the shear-warp image stays inside an
//     empirically calibrated envelope of the image-order ray-casting
//     oracle, with per-mode budgets (see modeBudgets below).
//
// Budget calibration (MRI and CT phantoms at 64 voxels, the three
// viewpoints below — one per principal axis; worst observed over both
// phantoms, budgets set with roughly 50-100% headroom; the composite
// budget is the one TestDifferentialShearWarpVsRaycast calibrated over
// six viewpoints, kept identical here):
//
//	mode        metric               worst observed   budget
//	composite   silhouette mismatch  0.039            0.08
//	composite   RMSE                 47.6             65
//	composite   max channel diff     154              200
//	composite   differing fraction   0.464            0.70
//	mip         silhouette mismatch  0.007            0.015
//	mip         RMSE                 19.0             30
//	mip         max channel diff     122              160
//	mip         differing fraction   0.456            0.60
//	iso         silhouette mismatch  0.0163           0.03
//	iso         RMSE                 40.4             55
//	iso         max channel diff     175              215
//	iso         differing fraction   0.384            0.55
//
// Why the shapes differ: MIP agrees much more tightly than composite on
// every structural metric — a per-ray max is far less sensitive to
// resampling filter width than an integral, and with no saturation there
// is no early-termination divergence — but still differs on nearly half
// the pixels, because every faint fringe pixel keeps its slightly
// different maximum instead of saturating to a shared value; hence a
// tight RMSE/silhouette budget and a loose differing-fraction one.
// Isosurface shows the largest single-channel spikes of the three:
// binary opacity turns a half-voxel silhouette disagreement into a
// full-brightness pixel difference, so maxAbs runs close to composite's
// while the silhouette budget — the structural invariant — is tighter
// than composite's (a hard surface has no soft translucent fringe).

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"shearwarp/internal/classify"
	"shearwarp/internal/cpudispatch"
	"shearwarp/internal/img"
	"shearwarp/internal/newalg"
	"shearwarp/internal/oldalg"
	"shearwarp/internal/render"
	"shearwarp/internal/rendermode"
	"shearwarp/internal/rle"
	"shearwarp/internal/vol"
	"shearwarp/internal/volcache"
)

// pixelHash folds a final image's bytes into a 64-bit FNV-1a digest —
// the same fold the pre-mode pin hashes were captured with.
func pixelHash(f *img.Final) uint64 {
	h := rle.Seed
	for _, px := range f.Pix {
		h = rle.HashUint64(h, uint64(px))
	}
	return h
}

// TestCompositeGoldenPinned pins the serial composite renderer to image
// hashes captured from the tree immediately before the render-mode axis
// was introduced. A mismatch here means the mode plumbing changed the
// default mode's pixels — the one thing it must never do.
func TestCompositeGoldenPinned(t *testing.T) {
	views := [][2]float64{{30, 15}, {100, -35}, {200, 65}}
	pins := map[bool][3]uint64{
		false: {0xa14e6366d1095286, 0x4ffa45b9e2f51a69, 0xe3cb4f4c8a88d3db},
		true:  {0x62f402bef53027f8, 0x8ce38a773073fcf8, 0x835ee86e44f050be},
	}
	for _, correct := range []bool{false, true} {
		r := render.New(vol.MRIBrain(48), render.Options{OpacityCorrection: correct})
		for i, vw := range views {
			out, _ := r.RenderSerial(vw[0]*math.Pi/180, vw[1]*math.Pi/180)
			if got, want := pixelHash(out), pins[correct][i]; got != want {
				t.Errorf("correct=%v view %v: pixel hash %#016x, want pinned %#016x",
					correct, vw, got, want)
			}
		}
	}
}

// modeOptions returns the internal render options selecting a mode the
// way the public Config does: isosurface swaps in the threshold transfer
// at classification time, MIP only steers the compositing kernel.
func modeOptions(m rendermode.Mode) render.Options {
	opt := render.Options{Mode: m, PreprocProcs: 4}
	if m == rendermode.Isosurface {
		opt.Transfer = classify.IsoTransfer(classify.DefaultIsoThreshold)
	}
	return opt
}

// TestGoldenEquivalenceModes extends the golden-equivalence invariant to
// the non-composite modes: for MIP and isosurface, OldParallel and
// NewParallel must reproduce the serial image byte for byte at every
// tested viewpoint. (Composite is covered by TestGoldenEquivalence.)
func TestGoldenEquivalenceModes(t *testing.T) {
	views := [][2]float64{{30, 15}, {100, -35}, {200, 65}}
	for _, m := range []rendermode.Mode{rendermode.MIP, rendermode.Isosurface} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			r := render.New(vol.MRIBrain(48), modeOptions(m))
			nr := newalg.NewRenderer(r, newalg.Config{Procs: 4})
			for _, vw := range views {
				yaw := vw[0] * math.Pi / 180
				pitch := vw[1] * math.Pi / 180
				want, _ := r.RenderSerial(yaw, pitch)
				if want.NonBlackCount() == 0 {
					t.Fatalf("view %v: serial %s render is all black", vw, m)
				}
				oldRes := oldalg.Render(r, yaw, pitch, oldalg.Config{Procs: 4})
				if !img.Equal(want, oldRes.Out) {
					d := img.Compare(want, oldRes.Out)
					t.Errorf("view %v: OldParallel %s differs from Serial: %d pixels, max |Δ| %d",
						vw, m, d.Differs, d.MaxAbs)
				}
				newRes := nr.RenderFrame(yaw, pitch)
				if !img.Equal(want, newRes.Out) {
					d := img.Compare(want, newRes.Out)
					t.Errorf("view %v: NewParallel %s differs from Serial: %d pixels, max |Δ| %d",
						vw, m, d.Differs, d.MaxAbs)
				}
			}
		})
	}
}

// modeBudgets is the per-mode agreement envelope against the ray-casting
// oracle. See the calibration table in the file comment.
var modeBudgets = map[Mode]diffBudget{
	ModeComposite:  {maxSilhouette: 0.08, maxRMSE: 65, maxAbs: 200, maxDiffFrac: 0.70},
	ModeMIP:        {maxSilhouette: 0.015, maxRMSE: 30, maxAbs: 160, maxDiffFrac: 0.60},
	ModeIsosurface: {maxSilhouette: 0.03, maxRMSE: 55, maxAbs: 215, maxDiffFrac: 0.55},
}

// TestModeMatrixDifferential drives the full mode × viewpoint ×
// algorithm matrix: in every cell the three shear-warp algorithms must
// agree byte for byte, and the (shared) shear-warp image must sit inside
// the mode's calibrated envelope of the ray-casting oracle.
func TestModeMatrixDifferential(t *testing.T) {
	// One viewpoint per principal axis (z, x, y).
	views := [][2]float64{{20, 10}, {50, 15}, {10, 70}}
	const size = 64
	for _, phantom := range []string{"mri", "ct"} {
		phantom := phantom
		for _, mode := range []Mode{ModeComposite, ModeMIP, ModeIsosurface} {
			mode := mode
			t.Run(phantom+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				mk := func(alg Algorithm) *Renderer {
					cfg := Config{Algorithm: alg, Mode: mode, Procs: 4}
					if phantom == "ct" {
						return NewCTPhantom(size, cfg)
					}
					return NewMRIPhantom(size, cfg)
				}
				serial, old, nw, oracle := mk(Serial), mk(OldParallel), mk(NewParallel), mk(RayCast)
				defer old.Close()
				defer nw.Close()
				budget := modeBudgets[mode]
				for _, v := range views {
					ims, _ := serial.Render(v[0], v[1])
					imo, _ := old.Render(v[0], v[1])
					imn, _ := nw.Render(v[0], v[1])
					imr, _ := oracle.Render(v[0], v[1])
					if ims.NonBlackPixels() == 0 {
						t.Fatalf("view %v: serial image is all black", v)
					}
					if !bytes.Equal(ims.f.Pix, imo.f.Pix) {
						t.Errorf("view %v: OldParallel differs from Serial", v)
					}
					if !bytes.Equal(ims.f.Pix, imn.f.Pix) {
						t.Errorf("view %v: NewParallel differs from Serial", v)
					}
					sil := silhouetteMismatch(imn.f, imr.f)
					d := img.Compare(imn.f, imr.f)
					frac := float64(d.Differs) / float64(imn.f.W*imn.f.H)
					t.Logf("view %5.0f/%-4.0f  sil %.4f  rmse %6.3f  max %3d  differs %5.3f",
						v[0], v[1], sil, d.RMSE, d.MaxAbs, frac)
					if sil > budget.maxSilhouette {
						t.Errorf("view %v: silhouette mismatch %.4f exceeds budget %.4f", v, sil, budget.maxSilhouette)
					}
					if d.RMSE > budget.maxRMSE {
						t.Errorf("view %v: RMSE %.3f exceeds budget %.3f", v, d.RMSE, budget.maxRMSE)
					}
					if d.MaxAbs > budget.maxAbs {
						t.Errorf("view %v: max channel diff %d exceeds budget %d", v, d.MaxAbs, budget.maxAbs)
					}
					if frac > budget.maxDiffFrac {
						t.Errorf("view %v: differing-pixel fraction %.3f exceeds budget %.3f", v, frac, budget.maxDiffFrac)
					}
				}
			})
		}
	}
}

// TestModeParseRoundTrip pins the mode names the flag and query-parameter
// layers accept.
func TestModeParseRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"", ModeComposite, true},
		{"composite", ModeComposite, true},
		{"mip", ModeMIP, true},
		{"iso", ModeIsosurface, true},
		{"isosurface", ModeIsosurface, true},
		{"MIP", 0, false},
		{"xray", 0, false},
	}
	for _, c := range cases {
		m, err := ParseMode(c.in)
		if c.ok {
			if err != nil || m != c.want {
				t.Errorf("ParseMode(%q) = %v, %v; want %v, nil", c.in, m, err, c.want)
			}
			continue
		}
		var um *UnknownModeError
		if err == nil || !errors.As(err, &um) {
			t.Errorf("ParseMode(%q): error %v is not *UnknownModeError", c.in, err)
		} else if um.Value != c.in {
			t.Errorf("ParseMode(%q): error records value %q", c.in, um.Value)
		}
	}
	for _, m := range []Mode{ModeComposite, ModeMIP, ModeIsosurface} {
		if got, err := ParseMode(m.String()); err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
}

// TestVolumeModeKeys pins the cache-key contract of the mode axis:
// composite reproduces the legacy fingerprint exactly, every mode gets a
// distinct key, and the isosurface threshold participates (with 0
// meaning the default threshold).
func TestVolumeModeKeys(t *testing.T) {
	v := vol.MRIBrain(16)
	legacy := VolumeKey(v.Data, v.Nx, v.Ny, v.Nz)
	keyOf := func(m Mode, iso uint8) string {
		return VolumeModeKey(v.Data, v.Nx, v.Ny, v.Nz, m, iso)
	}
	if got := keyOf(ModeComposite, 0); got != legacy {
		t.Errorf("composite mode key %s != legacy key %s", got, legacy)
	}
	keys := map[string]string{legacy: "composite"}
	for name, k := range map[string]string{
		"mip":     keyOf(ModeMIP, 0),
		"iso-128": keyOf(ModeIsosurface, 128),
		"iso-90":  keyOf(ModeIsosurface, 90),
	} {
		if prev, dup := keys[k]; dup {
			t.Errorf("mode %s key collides with %s: %s", name, prev, k)
		}
		keys[k] = name
	}
	// 0 and the explicit default threshold are the same preprocessing.
	if keyOf(ModeIsosurface, 0) != keyOf(ModeIsosurface, classify.DefaultIsoThreshold) {
		t.Error("iso threshold 0 does not alias the default threshold key")
	}
	// MIP ignores the threshold (its preprocessing does not use it).
	if keyOf(ModeMIP, 0) != keyOf(ModeMIP, 90) {
		t.Error("MIP key varies with the unused iso threshold")
	}
}

// TestVolcacheCrossMode prepares the same volume in all three modes
// against one shared cache and checks the entries never alias: each mode
// classifies once (three builds, no cross-mode hits) and appears as its
// own cache tenant.
func TestVolcacheCrossMode(t *testing.T) {
	v := vol.MRIBrain(24)
	cache := volcache.New(0)
	seen := map[string]bool{}
	for _, mode := range []Mode{ModeComposite, ModeMIP, ModeIsosurface} {
		pv, err := PrepareVolumeMode(v.Data, v.Nx, v.Ny, v.Nz, TransferMRI, mode, 0, 2, cache)
		if err != nil {
			t.Fatalf("mode %s: PrepareVolumeMode: %v", mode, err)
		}
		if seen[pv.Key()] {
			t.Fatalf("mode %s: fingerprint %s already used by another mode", mode, pv.Key())
		}
		seen[pv.Key()] = true
		r, err := pv.NewRenderer(Config{Algorithm: NewParallel, Procs: 2})
		if err != nil {
			t.Fatalf("mode %s: NewRenderer: %v", mode, err)
		}
		if im, _ := r.Render(30, 15); im.NonBlackPixels() == 0 {
			t.Errorf("mode %s: rendered image is all black", mode)
		}
		r.Close()
	}
	stats := cache.Snapshot()
	// Three modes, three classifications: sharing any would show as fewer
	// builds; aliasing keys would also corrupt images, but the count is
	// the direct signal.
	if stats.Builds < 3 {
		t.Errorf("cache builds = %d, want >= 3 (one classification per mode)", stats.Builds)
	}
	tenants := cache.Tenants()
	if len(tenants) != 3 {
		t.Errorf("cache tenants = %d, want 3 (one per mode)", len(tenants))
	}
	for _, ten := range tenants {
		if !seen[ten.Volume] {
			t.Errorf("cache tenant %s is not one of the prepared mode fingerprints", ten.Volume)
		}
	}
}

// TestPackedKernelModeRejection pins the kernel/mode gate at every
// construction surface: an explicit packed kernel with a non-composite
// mode fails with the typed *cpudispatch.UnsupportedModeError, while
// composite+packed still constructs.
func TestPackedKernelModeRejection(t *testing.T) {
	v := vol.MRIBrain(16)
	for _, mode := range []Mode{ModeMIP, ModeIsosurface} {
		_, err := NewRenderer(v.Data, v.Nx, v.Ny, v.Nz,
			Config{Mode: mode, Kernel: KernelPacked})
		var ume *cpudispatch.UnsupportedModeError
		if !errors.As(err, &ume) {
			t.Errorf("NewRenderer(%s, packed): err = %v, want *UnsupportedModeError", mode, err)
		}
		pv, err := PrepareVolumeMode(v.Data, v.Nx, v.Ny, v.Nz, TransferMRI, mode, 0, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pv.NewRenderer(Config{Kernel: KernelPacked}); !errors.As(err, &ume) {
			t.Errorf("PreparedVolume.NewRenderer(%s, packed): err = %v, want *UnsupportedModeError", mode, err)
		}
	}
	if r, err := NewRenderer(v.Data, v.Nx, v.Ny, v.Nz,
		Config{Mode: ModeComposite, Kernel: KernelPacked}); err != nil {
		t.Errorf("composite+packed must construct, got %v", err)
	} else {
		r.Close()
	}
}
