package shearwarp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"shearwarp/internal/vol"
	"shearwarp/internal/volcache"
)

// preparedMRI builds a PreparedVolume over the small MRI phantom.
func preparedMRI(t *testing.T, n int, cache *volcache.Cache) *PreparedVolume {
	t.Helper()
	v := vol.MRIBrain(n)
	pv, err := PrepareVolume(v.Data, v.Nx, v.Ny, v.Nz, TransferMRI, 2, cache)
	if err != nil {
		t.Fatal(err)
	}
	return pv
}

// TestPreparedVolumeByteIdentical renders through shared cached
// preprocessing and directly, for every algorithm, and requires identical
// bytes — sharing classification and encodings must be invisible.
func TestPreparedVolumeByteIdentical(t *testing.T) {
	const n, procs = 24, 2
	v := vol.MRIBrain(n)
	pv := preparedMRI(t, n, nil)
	views := [][2]float64{{30, 15}, {80, -10}, {10, 60}}
	for _, alg := range []Algorithm{Serial, OldParallel, NewParallel} {
		direct, err := NewRenderer(v.Data, v.Nx, v.Ny, v.Nz, Config{Algorithm: alg, Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		shared, err := pv.NewRenderer(Config{Algorithm: alg, Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		for _, vw := range views {
			want, _ := direct.Render(vw[0], vw[1])
			got, _ := shared.Render(vw[0], vw[1])
			var wb, gb bytes.Buffer
			if err := want.WritePPM(&wb); err != nil {
				t.Fatal(err)
			}
			if err := got.WritePPM(&gb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
				t.Errorf("alg %v view %v: shared-preprocessing render differs from direct", alg, vw)
			}
		}
		direct.Close()
		shared.Close()
	}
}

// TestPreparedVolumeSharesBuilds verifies the amortization contract: a
// pool of renderers over one PreparedVolume triggers exactly one
// classification and one encoding build per axis used, with everything
// else served as hits — even when the renderers build concurrently.
func TestPreparedVolumeSharesBuilds(t *testing.T) {
	cache := volcache.New(0)
	pv := preparedMRI(t, 24, cache)
	const renderers = 8
	var wg sync.WaitGroup
	rs := make([]*Renderer, renderers)
	for i := range rs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := pv.NewRenderer(Config{Algorithm: NewParallel, Procs: 2})
			if err != nil {
				t.Error(err)
				return
			}
			rs[i] = r
		}(i)
	}
	wg.Wait()
	if st := cache.Snapshot(); st.Builds != 1 {
		t.Errorf("classification builds = %d, want 1 (single-flight across %d renderers)", st.Builds, renderers)
	}
	for i, r := range rs {
		if im, _ := r.Render(30, 15); im.NonBlackPixels() == 0 {
			t.Errorf("renderer %d produced a black frame", i)
		}
	}
	// One axis rendered: classification + one encoding.
	if st := cache.Snapshot(); st.Builds != 2 {
		t.Errorf("builds after rendering = %d, want 2", st.Builds)
	}
	for _, r := range rs {
		r.Close()
	}
}

// TestRendererPoolLifecycle exercises Acquire/Release pairing, context
// cancellation while the pool is empty, and Close waiting for an
// outstanding renderer.
func TestRendererPoolLifecycle(t *testing.T) {
	pv := preparedMRI(t, 16, nil)
	pool, err := NewRendererPool(2, func() (*Renderer, error) {
		return pv.NewRenderer(Config{Algorithm: NewParallel, Procs: 2})
	})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 2 || pool.Idle() != 2 {
		t.Fatalf("fresh pool: size %d idle %d, want 2/2", pool.Size(), pool.Idle())
	}

	ctx := context.Background()
	r1, err := pool.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pool.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Idle() != 0 {
		t.Fatalf("idle = %d with both renderers out", pool.Idle())
	}

	// Acquire on an empty pool must honor context cancellation.
	cctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if _, err := pool.Acquire(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire on empty pool: %v, want deadline exceeded", err)
	}

	pool.Release(r2)

	// Close must wait for the outstanding renderer.
	closed := make(chan struct{})
	go func() {
		pool.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned with a renderer still acquired")
	case <-time.After(50 * time.Millisecond):
	}
	pool.Release(r1)
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not finish after the last Release")
	}

	if _, err := pool.Acquire(ctx); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Acquire after Close: %v, want ErrPoolClosed", err)
	}
	pool.Close() // idempotent
}

// TestRendererPoolBuildError verifies the constructor error path: the
// already-built renderers are torn down and the error is surfaced.
func TestRendererPoolBuildError(t *testing.T) {
	pv := preparedMRI(t, 16, nil)
	built := 0
	_, err := NewRendererPool(3, func() (*Renderer, error) {
		if built == 2 {
			return nil, fmt.Errorf("boom")
		}
		built++
		return pv.NewRenderer(Config{Algorithm: NewParallel, Procs: 2})
	})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("boom")) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

// TestPrepareVolumeValidation mirrors NewRenderer's input checks.
func TestPrepareVolumeValidation(t *testing.T) {
	if _, err := PrepareVolume(make([]uint8, 7), 2, 2, 2, TransferMRI, 1, nil); err == nil {
		t.Error("short data accepted")
	}
	if _, err := PrepareVolume(make([]uint8, 2), 1, 2, 1, TransferMRI, 1, nil); err == nil {
		t.Error("degenerate dims accepted")
	}
}
