package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"shearwarp/internal/telemetry"
)

// Cross-process trace stitching: /debug/trace?id=N joins the gateway's
// retained trace for one fleet request with the span sets every backend
// the request touched retained under the same ID, into a single Chrome
// trace-event document — one row for the gateway, one per attempt. The
// processes share no clock, so each backend's spans are shifted by an
// offset estimated from the attempt's send/receive instants, NTP style:
// the gateway knows when it sent the request (t0) and when the response
// finished (t1) on its own timeline, the backend reports when it
// started (b0) and finished (b1) on its timeline, and under symmetric
// network delay the offset is ((t0+t1)-(b0+b1))/2. Of a backend's
// candidate attempts, the sample with the least slack — the smallest
// (t1-t0)-(b1-b0), gateway round trip minus backend service time — is
// the one with the least unmodeled queueing, so it wins. Cancelled
// attempts are excluded: their receive instant is when the gateway gave
// up, not when the backend finished, which breaks the symmetry
// assumption (the e2e test covers exactly this hedged shape).

// offsetSample is one attempt's clock-alignment observation. sendNS and
// recvNS are on the gateway's trace timeline; backStartNS and backEndNS
// on the backend's.
type offsetSample struct {
	sendNS, recvNS         int64
	backStartNS, backEndNS int64
}

// estimateOffset returns the offset to add to backend timestamps to
// land them on the gateway timeline, from the minimum-slack sample.
// ok is false when samples is empty.
func estimateOffset(samples []offsetSample) (offset int64, ok bool) {
	var bestSlack int64
	for _, s := range samples {
		slack := (s.recvNS - s.sendNS) - (s.backEndNS - s.backStartNS)
		if !ok || slack < bestSlack {
			offset = ((s.sendNS + s.recvNS) - (s.backStartNS + s.backEndNS)) / 2
			bestSlack = slack
			ok = true
		}
	}
	return offset, ok
}

// backendSpanSets fetches a backend's retained traces for one fleet ID
// through the gateway's fault-free debug client. A non-200 (evicted or
// tracing disabled) or transport error returns it as err — the stitcher
// marks the row rather than dropping it.
func (g *Gateway) backendSpanSets(ctx context.Context, url string, id uint64) ([]*telemetry.Trace, error) {
	u := fmt.Sprintf("%s/debug/spans?id=%d&format=raw", url, id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.debugClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("backend answered %d: %s", resp.StatusCode, string(body))
	}
	var traces []*telemetry.Trace
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		return nil, fmt.Errorf("decoding span sets: %w", err)
	}
	return traces, nil
}

// stitch assembles the stitched rows for one retained gateway trace:
// the gateway row first, then one row per attempt in launch order. Each
// backend is fetched once; its clock offset comes from its non-
// cancelled attempts (falling back to aligning starts when every
// attempt against it was cancelled).
func (g *Gateway) stitch(ctx context.Context, tr *telemetry.Trace) []telemetry.StitchedRow {
	rows := []telemetry.StitchedRow{{Label: "gateway", Trace: tr}}

	type fetched struct {
		traces []*telemetry.Trace
		err    error
	}
	perBackend := map[string]*fetched{}
	for _, a := range tr.Attempts {
		if a.Backend == "" {
			continue
		}
		if _, done := perBackend[a.Backend]; !done {
			traces, err := g.backendSpanSets(ctx, a.Backend, tr.ID)
			perBackend[a.Backend] = &fetched{traces: traces, err: err}
		}
	}

	// Per-backend clock offsets from the non-cancelled attempts.
	offsets := map[string]int64{}
	for url, f := range perBackend {
		var samples []offsetSample
		for _, a := range tr.Attempts {
			if a.Backend != url || a.Canceled {
				continue
			}
			if bt := findAttemptTrace(f.traces, a.Ordinal); bt != nil {
				samples = append(samples, offsetSample{
					sendNS: a.SendNS, recvNS: a.RecvNS,
					backStartNS: bt.StartNS, backEndNS: bt.StartNS + bt.DurNS,
				})
			}
		}
		if off, ok := estimateOffset(samples); ok {
			offsets[url] = off
			continue
		}
		// Every attempt here was cancelled: align the first one's start
		// with its send instant — the backend began serving roughly when
		// the gateway sent, and the loser's spans still land in the right
		// neighbourhood of the timeline.
		for _, a := range tr.Attempts {
			if a.Backend != url {
				continue
			}
			if bt := findAttemptTrace(f.traces, a.Ordinal); bt != nil {
				offsets[url] = a.SendNS - bt.StartNS
				break
			}
		}
	}

	for _, a := range tr.Attempts {
		label := fmt.Sprintf("backend %s attempt %d", a.Backend, a.Ordinal)
		if a.Canceled {
			label += " (canceled)"
		}
		row := telemetry.StitchedRow{Label: label, Canceled: a.Canceled}
		f := perBackend[a.Backend]
		switch {
		case f == nil:
			row.Err = "attempt never reached a backend"
		case f.err != nil:
			row.Err = "fetching spans: " + errString(f.err)
		default:
			if bt := findAttemptTrace(f.traces, a.Ordinal); bt != nil {
				row.Trace = bt
				row.OffsetNS = offsets[a.Backend]
			} else {
				row.Err = "no retained span set for this attempt (evicted?)"
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// findAttemptTrace picks the backend trace serving one attempt ordinal.
// A request the gateway cancelled before it reached the backend's
// handler leaves no trace; one the backend served leaves exactly one.
func findAttemptTrace(traces []*telemetry.Trace, ordinal int) *telemetry.Trace {
	for _, t := range traces {
		if t.Attempt == ordinal {
			return t
		}
	}
	return nil
}

// handleTrace is GET /debug/trace?id=N: the stitched fleet trace as one
// Chrome trace-event document. The gateway trace must still be retained
// here; backend rows degrade individually (dead backend, evicted span
// set) into marked rows instead of failing the whole stitch.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	if g.tracer == nil {
		writeJSONError(w, http.StatusNotFound, "span tracing disabled")
		return
	}
	v := r.URL.Query().Get("id")
	if v == "" {
		writeJSONError(w, http.StatusBadRequest, "id required (e.g. /debug/trace?id=42)")
		return
	}
	id, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad id %q", v))
		return
	}
	tr := g.tracer.Find(id)
	if tr == nil {
		writeJSONError(w, http.StatusNotFound, fmt.Sprintf("no retained trace with id %d", id))
		return
	}
	rows := g.stitch(r.Context(), tr)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := telemetry.WriteStitchedChromeTrace(w, id, rows); err != nil {
		g.log.Warn("stitched trace export failed", "id", id, "err", err)
	}
}

// recentTraceRef is one retained gateway trace's entry in /metrics
// "recent_traces": enough to follow the link into the stitcher.
type recentTraceRef struct {
	ID       uint64  `json:"id"`
	TraceURL string  `json:"trace_url"`
	Status   int     `json:"status"`
	DurMS    float64 `json:"dur_ms"`
	Attempts int     `json:"attempts"`
	Label    string  `json:"label"`
}

// recentTraces lists the most recently started retained traces, newest
// first, capped at n.
func (g *Gateway) recentTraces(n int) []recentTraceRef {
	if g.tracer == nil {
		return nil
	}
	traces := g.tracer.Traces()
	sort.Slice(traces, func(i, j int) bool { return traces[i].StartNS > traces[j].StartNS })
	if len(traces) > n {
		traces = traces[:n]
	}
	out := make([]recentTraceRef, 0, len(traces))
	for _, tr := range traces {
		out = append(out, recentTraceRef{
			ID:       tr.ID,
			TraceURL: fmt.Sprintf("/debug/trace?id=%d", tr.ID),
			Status:   tr.Status,
			DurMS:    float64(tr.DurNS) / 1e6,
			Attempts: len(tr.Attempts),
			Label:    tr.Label,
		})
	}
	return out
}

// writeJSONIndent writes v as indented JSON.
func writeJSONIndent(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
