package gateway

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerOpensAfterConsecutiveFailures pins the ejection rule:
// maxFailures consecutive failures open the circuit; a success in
// between resets the streak.
func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b := newBreaker(3, time.Hour)
	now := time.Now()
	fail := func() {
		done, ok := b.Allow(now)
		if !ok {
			t.Fatal("closed breaker refused an attempt")
		}
		done(outcomeFailure)
	}
	fail()
	fail()
	// A success resets the consecutive count.
	done, _ := b.Allow(now)
	done(outcomeSuccess)
	fail()
	fail()
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 consecutive failures = %v, want closed", b.State())
	}
	fail()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", b.State())
	}
	if b.opens.Load() != 1 {
		t.Fatalf("opens = %d, want 1", b.opens.Load())
	}
	if _, ok := b.Allow(now); ok {
		t.Fatal("open breaker admitted an attempt before cooldown")
	}
}

// TestBreakerHalfOpenAdmitsExactlyOne is the probe-admission contract:
// after the cooldown, any number of concurrent Allow calls admit
// exactly one probe; everyone else is refused until the probe resolves.
func TestBreakerHalfOpenAdmitsExactlyOne(t *testing.T) {
	b := newBreaker(1, time.Millisecond)
	done, _ := b.Allow(time.Now())
	done(outcomeFailure) // open
	after := time.Now().Add(10 * time.Millisecond)

	var admitted atomic.Int64
	var dones sync.Map
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if d, ok := b.Allow(after); ok {
				admitted.Add(1)
				dones.Store(i, d)
			}
		}(i)
	}
	wg.Wait()
	if n := admitted.Load(); n != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", n)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// While the probe is in flight, nobody else gets in.
	if _, ok := b.Allow(after); ok {
		t.Fatal("second probe admitted while first still in flight")
	}
	// Probe success closes the circuit.
	dones.Range(func(_, v any) bool {
		v.(func(outcome))(outcomeSuccess)
		return true
	})
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
}

// TestBreakerProbeFailureReopens pins that a failed probe restarts the
// cooldown rather than readmitting traffic.
func TestBreakerProbeFailureReopens(t *testing.T) {
	b := newBreaker(1, time.Millisecond)
	done, _ := b.Allow(time.Now())
	done(outcomeFailure)
	after := time.Now().Add(10 * time.Millisecond)

	probe, ok := b.Allow(after)
	if !ok {
		t.Fatal("cooled-down breaker refused the probe")
	}
	probe(outcomeFailure)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.opens.Load() != 2 {
		t.Fatalf("opens = %d, want 2", b.opens.Load())
	}
	if _, ok := b.Allow(time.Now()); ok {
		t.Fatal("re-opened breaker admitted traffic before the new cooldown")
	}
}

// TestBreakerProbeAbandonStaysHalfOpen pins the abandon outcome: a
// cancelled probe (hedge loser, client gone) proves nothing, so the
// next request must probe again immediately instead of waiting out
// another cooldown.
func TestBreakerProbeAbandonStaysHalfOpen(t *testing.T) {
	b := newBreaker(1, time.Millisecond)
	done, _ := b.Allow(time.Now())
	done(outcomeFailure)
	after := time.Now().Add(10 * time.Millisecond)

	probe, ok := b.Allow(after)
	if !ok {
		t.Fatal("cooled-down breaker refused the probe")
	}
	probe(outcomeAbandon)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after abandoned probe = %v, want half-open", b.State())
	}
	probe2, ok := b.Allow(after)
	if !ok {
		t.Fatal("breaker refused a re-probe after abandonment")
	}
	probe2(outcomeSuccess)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}
