package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"testing"
	"time"

	"shearwarp/internal/faultinject"
	"shearwarp/internal/server"
	"shearwarp/internal/slo"
	"shearwarp/internal/telemetry"
)

// TestEstimateOffset pins the NTP-style clock alignment math against
// hand-computed fixtures: positive and negative skews, and the
// minimum-slack sample winning over a queue-delayed one.
func TestEstimateOffset(t *testing.T) {
	if _, ok := estimateOffset(nil); ok {
		t.Fatal("estimateOffset(nil) reported ok")
	}

	// One attempt, backend clock far ahead of the gateway's: send=1000,
	// recv=2000 on the gateway; the backend served [1_000_000,
	// 1_000_500] on its own clock. The midpoint estimate centers the
	// backend interval inside the gateway's: [1250, 1750].
	off, ok := estimateOffset([]offsetSample{
		{sendNS: 1000, recvNS: 2000, backStartNS: 1_000_000, backEndNS: 1_000_500},
	})
	if !ok || off != -998_750 {
		t.Fatalf("ahead-clock offset = %d (ok=%v), want -998750", off, ok)
	}
	if lo, hi := 1_000_000+off, 1_000_500+off; lo != 1250 || hi != 1750 {
		t.Fatalf("aligned interval [%d, %d], want [1250, 1750] inside [1000, 2000]", lo, hi)
	}

	// Backend clock behind: the offset comes out positive.
	off, ok = estimateOffset([]offsetSample{
		{sendNS: 5_000_000, recvNS: 5_001_000, backStartNS: 100, backEndNS: 300},
	})
	if !ok || off != 5_000_300 {
		t.Fatalf("behind-clock offset = %d (ok=%v), want 5000300", off, ok)
	}

	// Hedged shape, two samples against one backend: the first spent
	// 900ns of its 1000ns round trip queueing (slack 900), the second is
	// tight (slack 100) — the tight sample's midpoint must win.
	off, ok = estimateOffset([]offsetSample{
		{sendNS: 0, recvNS: 1000, backStartNS: 10_400, backEndNS: 10_500},     // slack 900
		{sendNS: 2000, recvNS: 3000, backStartNS: 12_050, backEndNS: 12_950}, // slack 100
	})
	if !ok || off != (2000+3000-12_050-12_950)/2 {
		t.Fatalf("min-slack offset = %d (ok=%v), want the tight sample's midpoint %d",
			off, ok, (2000+3000-12_050-12_950)/2)
	}
}

// stitchedDoc is the decode shape CI and tests use for /debug/trace
// output — the parts of the Chrome trace-event document the stitcher
// guarantees.
type stitchedDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  uint64         `json:"pid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
	Stitch          struct {
		ID   uint64 `json:"id"`
		Rows []struct {
			Label    string `json:"label"`
			OffsetNS int64  `json:"offset_ns"`
			Spans    int    `json:"spans"`
			Canceled bool   `json:"canceled"`
			Err      string `json:"err"`
		} `json:"rows"`
	} `json:"stitch"`
}

// affinityVolume finds a registered volume whose ring order starts on
// backend index want, so a test can steer the first attempt.
func affinityVolume(t *testing.T, g *Gateway, names []string, want int) string {
	t.Helper()
	for _, name := range names {
		order := g.ring.order(affinityKey(url.Values{"volume": {name}}))
		if len(order) > 0 && order[0] == want {
			return name
		}
	}
	t.Fatalf("no volume among %v hashes to backend %d first", names, want)
	return ""
}

// TestStitchedTraceE2E is the acceptance scenario end to end: a request
// through a two-backend fleet whose affinity owner is slow (server-side
// composite delays force the hedge) and whose hedge target panics
// (forcing a retry). The single client request therefore fans into a
// first attempt, a failed hedge, and a retry; the stitched
// /debug/trace?id=N document must show the gateway row plus a row per
// attempt, with at least two backend span sets, the cancelled loser
// marked rather than dropped, and every non-cancelled backend row's
// clock-aligned spans contained in its gateway attempt window.
func TestStitchedTraceE2E(t *testing.T) {
	vols := make([]string, 8)
	for i := range vols {
		vols[i] = fmt.Sprintf("vol%02d", i)
	}
	slowFaults, err := faultinject.Parse("delay@composite:d=10ms:c=60")
	if err != nil {
		t.Fatal(err)
	}
	panicFaults, err := faultinject.Parse("panic@composite:c=100")
	if err != nil {
		t.Fatal(err)
	}
	slowBack := startRealBackendCfg(t, server.Config{Procs: 1, MaxConcurrent: 4, PoolSize: 2, Faults: slowFaults}, vols...)
	panicBack := startRealBackendCfg(t, server.Config{Procs: 1, MaxConcurrent: 4, PoolSize: 2, Faults: panicFaults}, vols...)

	g, err := New(Config{
		Backends:        []string{slowBack.url, panicBack.url},
		HealthInterval:  25 * time.Millisecond,
		HealthTimeout:   250 * time.Millisecond,
		FailThreshold:   1,
		RiseThreshold:   1,
		MaxAttempts:     4,
		RetryBaseDelay:  time.Millisecond,
		RetryMaxDelay:   10 * time.Millisecond,
		HedgeQuantile:   0.95,
		HedgeMin:        time.Millisecond,
		HedgeMax:        25 * time.Millisecond, // cold gateway hedges here
		BreakerFailures: 100,
		BreakerCooldown: 50 * time.Millisecond,
		DefaultBudget:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	volume := affinityVolume(t, g, vols, 0) // first attempt lands on the slow backend
	resp, body := gwGet(t, g, "/render?volume="+volume+"&alg=new&yaw=30&pitch=15")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged-and-retried render = %d (%s), want 200", resp.StatusCode, body)
	}
	idStr := resp.Header.Get(server.TraceHeader)
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil || id == 0 {
		t.Fatalf("response %s = %q, want a fleet trace id", server.TraceHeader, idStr)
	}
	if atts, _ := strconv.Atoi(resp.Header.Get("X-Shearwarp-Attempts")); atts < 3 {
		t.Fatalf("attempts = %d, want >= 3 (first try + hedge + retry)", atts)
	}

	// The trace publishes once the last attempt (the cancelled loser)
	// drains; by then every AttemptRef is final.
	var tr *telemetry.Trace
	waitFor(t, "gateway trace published", func() bool {
		tr = g.tracer.Find(id)
		return tr != nil
	})
	if len(tr.Attempts) < 3 {
		t.Fatalf("trace retained %d attempts, want >= 3: %+v", len(tr.Attempts), tr.Attempts)
	}
	var sawHedge, sawRetry, sawCanceled bool
	for _, a := range tr.Attempts {
		sawHedge = sawHedge || a.Hedged
		sawRetry = sawRetry || a.Retry
		sawCanceled = sawCanceled || a.Canceled
	}
	if !sawHedge || !sawRetry || !sawCanceled {
		t.Fatalf("attempt shape hedge=%v retry=%v canceled=%v, want all: %+v",
			sawHedge, sawRetry, sawCanceled, tr.Attempts)
	}

	// Stitch directly for the numeric assertions.
	rows := g.stitch(context.Background(), tr)
	if len(rows) != 1+len(tr.Attempts) {
		t.Fatalf("stitched %d rows for %d attempts, want gateway + one per attempt",
			len(rows), len(tr.Attempts))
	}
	if rows[0].Label != "gateway" || rows[0].Trace == nil || len(rows[0].Trace.Spans) == 0 {
		t.Fatalf("row 0 = %+v, want the gateway's own span set", rows[0])
	}
	withSpans := 0
	const tol = int64(5 * time.Millisecond)
	for i, a := range tr.Attempts {
		row := rows[i+1]
		if row.Canceled != a.Canceled {
			t.Fatalf("row %d canceled=%v, attempt canceled=%v — loser dropped or mislabeled", i+1, row.Canceled, a.Canceled)
		}
		if row.Trace == nil {
			if row.Err == "" {
				t.Fatalf("row %d has neither span data nor an error mark: %+v", i+1, row)
			}
			continue
		}
		withSpans++
		if a.Canceled {
			continue // cancel time breaks the symmetry assumption; alignment is best-effort
		}
		lo := row.Trace.StartNS + row.OffsetNS
		hi := lo + row.Trace.DurNS
		if lo < a.SendNS-tol || hi > a.RecvNS+tol {
			t.Fatalf("attempt %d aligned backend interval [%d, %d] outside gateway window [%d, %d]",
				a.Ordinal, lo, hi, a.SendNS, a.RecvNS)
		}
	}
	if withSpans < 2 {
		t.Fatalf("only %d backend rows carry span sets, want >= 2", withSpans)
	}

	// And over HTTP: the Chrome document the acceptance criterion names.
	resp, body = gwGet(t, g, "/debug/trace?id="+idStr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace?id=%s = %d (%s)", idStr, resp.StatusCode, body)
	}
	var doc stitchedDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("stitched trace is not valid JSON: %v\n%s", err, body)
	}
	if doc.Stitch.ID != id || len(doc.Stitch.Rows) != 1+len(tr.Attempts) {
		t.Fatalf("stitch summary id=%d rows=%d, want id=%d rows=%d",
			doc.Stitch.ID, len(doc.Stitch.Rows), id, 1+len(tr.Attempts))
	}
	procName := map[uint64]bool{}
	backendPIDsWithSpans := map[uint64]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procName[ev.PID] = true
		}
		if ev.Ph == "X" && ev.PID > 1 {
			backendPIDsWithSpans[ev.PID] = true
		}
	}
	if len(procName) != 1+len(tr.Attempts) {
		t.Fatalf("%d process rows in Chrome doc, want %d (every attempt visible)",
			len(procName), 1+len(tr.Attempts))
	}
	if len(backendPIDsWithSpans) < 2 {
		t.Fatalf("%d backend rows carry spans in the Chrome doc, want >= 2", len(backendPIDsWithSpans))
	}
}

// TestBackendAdoptsPropagatedTrace pins the propagation contract on the
// backend alone: a request carrying X-Shearwarp-Trace and
// X-Shearwarp-Attempt is served under that identity — echoed in the
// response, retained under the fleet ID, labeled with the ordinal.
func TestBackendAdoptsPropagatedTrace(t *testing.T) {
	b := startRealBackend(t)
	client := &http.Client{Timeout: 10 * time.Second}
	defer client.CloseIdleConnections()

	req, _ := http.NewRequest(http.MethodGet, b.url+"/render?volume=mri&yaw=10&pitch=5", nil)
	req.Header.Set(server.TraceHeader, "987654321")
	req.Header.Set(server.AttemptHeader, "2")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(server.TraceHeader); got != "987654321" {
		t.Fatalf("echoed trace id %q, want the propagated 987654321", got)
	}

	sresp, err := client.Get(b.url + "/debug/spans?id=987654321&format=raw")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/spans?id=987654321 = %d, want 200", sresp.StatusCode)
	}
	var traces []*telemetry.Trace
	if err := json.NewDecoder(sresp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].ID != 987654321 || traces[0].Attempt != 2 {
		t.Fatalf("retained %+v, want one trace under id 987654321 attempt 2", traces)
	}
}

// TestTracingDisabled pins the off switch: TraceRing < 0 keeps minting
// and propagating fleet IDs (the header contract is unconditional) but
// retains nothing, and the debug surfaces answer 404 instead of lying.
func TestTracingDisabled(t *testing.T) {
	backs := []*fakeBackend{newFakeBackend(t)}
	g := newTestGateway(t, backs, func(c *Config) { c.TraceRing = -1 })

	resp, _ := gwGet(t, g, "/render?volume=mri")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render with tracing off = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get(server.TraceHeader) == "" {
		t.Fatal("trace id header missing with tracing off — propagation must not depend on retention")
	}
	if resp, _ := gwGet(t, g, "/debug/spans"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/spans with tracing off = %d, want 404", resp.StatusCode)
	}
	if resp, _ := gwGet(t, g, "/debug/trace?id=1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/trace with tracing off = %d, want 404", resp.StatusCode)
	}
}

// TestFleetMetricsMerge pins the aggregation layer: a scrape round over
// two live backends merges their histograms exactly (fleet count = sum
// of member counts), degrades per-backend on a dead member, feeds the
// fleet SLO engine, and surfaces everything in /metrics and /debug/slo.
func TestFleetMetricsMerge(t *testing.T) {
	backs := []*realBackend{startRealBackend(t), startRealBackend(t)}
	g, err := New(Config{
		Backends:       []string{backs[0].url, backs[1].url},
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  250 * time.Millisecond,
		FailThreshold:  1,
		RiseThreshold:  1,
		MaxAttempts:    2,
		RetryBaseDelay: time.Millisecond,
		HedgeQuantile:  -1,
		DefaultBudget:  10 * time.Second,
		FleetInterval:  time.Hour, // loop idle; ScrapeFleetNow drives the test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	for i := 0; i < 6; i++ {
		resp, body := gwGet(t, g, fmt.Sprintf("/render?volume=mri&alg=new&yaw=%d&pitch=10", i*60))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("render %d = %d (%s)", i, resp.StatusCode, body)
		}
	}

	g.ScrapeFleetNow()
	fm := g.fleetSnapshot()
	if fm.Scraped != 2 || fm.ScrapedAgoSeconds < 0 {
		t.Fatalf("fleet scraped=%d ago=%.1f, want 2 backends scraped", fm.Scraped, fm.ScrapedAgoSeconds)
	}
	var sum int64
	for _, row := range fm.PerBackend {
		if row.Err != "" {
			t.Fatalf("backend row %s unexpectedly errored: %s", row.URL, row.Err)
		}
		sum += row.RenderCount
	}
	if fm.Render.Count != sum || fm.Render.Count < 6 {
		t.Fatalf("merged render count %d, per-backend sum %d (want equal and >= 6) — merge must be exact",
			fm.Render.Count, sum)
	}
	if fm.Frames < 6 {
		t.Fatalf("fleet frames = %d, want >= 6", fm.Frames)
	}

	// The merged state answers the fleet SLO engine.
	if g.fleetSLO == nil {
		t.Fatal("fleet SLO engine not built despite FleetInterval > 0")
	}
	resp, body := gwGet(t, g, "/debug/slo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slo = %d (%s)", resp.StatusCode, body)
	}
	var sloDoc struct {
		Alerting   int          `json:"alerting"`
		Objectives []slo.Status `json:"objectives"`
	}
	if err := json.Unmarshal(body, &sloDoc); err != nil {
		t.Fatalf("/debug/slo JSON: %v\n%s", err, body)
	}
	if len(sloDoc.Objectives) == 0 {
		t.Fatal("/debug/slo lists no objectives, want the default /render pair")
	}

	// /metrics carries the fleet section and trace links.
	resp, body = gwGet(t, g, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	var md struct {
		Fleet struct {
			Scraped    int `json:"scraped"`
			PerBackend []struct {
				URL string `json:"url"`
			} `json:"per_backend"`
		} `json:"fleet"`
		RecentTraces []struct {
			ID       uint64 `json:"id"`
			TraceURL string `json:"trace_url"`
		} `json:"recent_traces"`
	}
	if err := json.Unmarshal(body, &md); err != nil {
		t.Fatalf("/metrics JSON: %v", err)
	}
	if md.Fleet.Scraped != 2 || len(md.Fleet.PerBackend) != 2 {
		t.Fatalf("metrics fleet section scraped=%d rows=%d, want 2/2", md.Fleet.Scraped, len(md.Fleet.PerBackend))
	}
	if len(md.RecentTraces) == 0 || md.RecentTraces[0].TraceURL == "" {
		t.Fatalf("recent_traces = %+v, want entries with trace links", md.RecentTraces)
	}

	// Kill one member: the next round degrades that row, keeps the rest.
	backs[1].kill()
	g.ScrapeFleetNow()
	fm = g.fleetSnapshot()
	if fm.Scraped != 1 {
		t.Fatalf("fleet scraped=%d after killing a backend, want 1", fm.Scraped)
	}
	errored := 0
	for _, row := range fm.PerBackend {
		if row.Err != "" {
			errored++
		}
	}
	if errored != 1 {
		t.Fatalf("%d errored backend rows, want exactly the killed one", errored)
	}
}
