package gateway

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"shearwarp/internal/server"
)

// fakeBackend is a controllable stand-in for shearwarpd: a real
// listener (so kills and restarts exercise real connection errors),
// a /readyz that follows the ready flag, and a swappable /render
// handler with request/cancellation accounting.
type fakeBackend struct {
	t        *testing.T
	ln       net.Listener
	hs       *http.Server
	addr     string
	url      string
	ready    atomic.Bool
	renders  atomic.Int64 // /render requests received
	canceled atomic.Int64 // /render requests whose context was cancelled mid-handle
	handler  atomic.Value // func(http.ResponseWriter, *http.Request)
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	f := &fakeBackend{t: t}
	f.ready.Store(true)
	f.handler.Store(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "frame from %s q=%s", f.addr, r.URL.RawQuery)
	})
	f.start("")
	t.Cleanup(f.stop)
	return f
}

// start listens on addr ("" = fresh ephemeral port) and serves.
func (f *fakeBackend) start(addr string) {
	f.t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		f.t.Fatal(err)
	}
	f.ln = ln
	f.addr = ln.Addr().String()
	f.url = "http://" + f.addr
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !f.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	})
	mux.HandleFunc("/render", func(w http.ResponseWriter, r *http.Request) {
		f.renders.Add(1)
		f.handler.Load().(func(http.ResponseWriter, *http.Request))(w, r)
		if r.Context().Err() != nil {
			f.canceled.Add(1)
		}
	})
	hs := &http.Server{Handler: mux}
	f.hs = hs
	go hs.Serve(ln)
}

// stop kills the backend abruptly: listener and all live connections.
func (f *fakeBackend) stop() {
	if f.hs != nil {
		f.hs.Close()
		f.hs = nil
	}
}

// restart brings the backend back on the same address.
func (f *fakeBackend) restart() {
	f.t.Helper()
	f.stop()
	f.start(f.addr)
}

func (f *fakeBackend) setHandler(h func(http.ResponseWriter, *http.Request)) {
	f.handler.Store(h)
}

// newTestGateway builds a gateway over the fakes with fast, test-scaled
// policy knobs; overrides tweaks the config before New.
func newTestGateway(t *testing.T, backs []*fakeBackend, tweak func(*Config)) *Gateway {
	t.Helper()
	urls := make([]string, len(backs))
	for i, f := range backs {
		urls[i] = f.url
	}
	cfg := Config{
		Backends:        urls,
		HealthInterval:  50 * time.Millisecond,
		HealthTimeout:   250 * time.Millisecond,
		FailThreshold:   1,
		RiseThreshold:   1,
		MaxAttempts:     3,
		RetryBaseDelay:  time.Millisecond,
		RetryMaxDelay:   10 * time.Millisecond,
		HedgeQuantile:   -1, // off unless a test opts in
		BreakerFailures: 100,
		BreakerCooldown: 50 * time.Millisecond,
		DefaultBudget:   10 * time.Second,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func gwGet(t *testing.T, g *Gateway, path string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://gateway"+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	return rec.Result(), rec.Body.Bytes()
}

// affinityBackend learns which fake backend owns a volume's key by
// issuing one request and reading the X-Shearwarp-Backend header.
func affinityBackend(t *testing.T, g *Gateway, backs []*fakeBackend, volume string) (owner, other *fakeBackend) {
	t.Helper()
	resp, body := gwGet(t, g, "/render?volume="+volume)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe render = %d (%s)", resp.StatusCode, body)
	}
	url := resp.Header.Get("X-Shearwarp-Backend")
	for _, f := range backs {
		if f.url == url {
			owner = f
		} else {
			other = f
		}
	}
	if owner == nil {
		t.Fatalf("X-Shearwarp-Backend %q names no backend", url)
	}
	return owner, other
}

// TestProxyAffinity pins fingerprint routing: all requests for one
// volume land on one backend, and different volumes spread.
func TestProxyAffinity(t *testing.T) {
	backs := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, backs, nil)

	for i := 0; i < 12; i++ {
		resp, body := gwGet(t, g, fmt.Sprintf("/render?volume=mri&yaw=%d&pitch=10", i*30))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("render %d = %d (%s)", i, resp.StatusCode, body)
		}
	}
	nonzero := 0
	for _, f := range backs {
		if f.renders.Load() > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		counts := []int64{backs[0].renders.Load(), backs[1].renders.Load(), backs[2].renders.Load()}
		t.Fatalf("one volume's traffic hit %d backends (%v), want 1 (affinity)", nonzero, counts)
	}
}

// TestRetryOn503 pins the retry path: the affinity backend shedding
// with 503 must not surface to the client while another backend can
// serve — the gateway retries there.
func TestRetryOn503(t *testing.T) {
	backs := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, backs, nil)
	owner, other := affinityBackend(t, g, backs, "mri")

	owner.setHandler(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"queue full"}`)
	})
	resp, body := gwGet(t, g, "/render?volume=mri&yaw=30&pitch=15")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render with shedding owner = %d (%s), want 200 via retry", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Shearwarp-Backend"); got != other.url {
		t.Fatalf("served by %q, want the non-shedding backend %q", got, other.url)
	}
	if got := resp.Header.Get("X-Shearwarp-Attempts"); got != "2" {
		t.Fatalf("attempts = %q, want 2", got)
	}
}

// TestTransportErrorRetried pins that a dead backend (connection
// refused) is a retryable failure, not a client-visible 502.
func TestTransportErrorRetried(t *testing.T) {
	backs := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, backs, nil)
	owner, other := affinityBackend(t, g, backs, "mri")

	owner.stop()
	resp, body := gwGet(t, g, "/render?volume=mri&yaw=30&pitch=15")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render with dead owner = %d (%s), want 200 via retry", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Shearwarp-Backend"); got != other.url {
		t.Fatalf("served by %q, want the live backend %q", got, other.url)
	}
}

// TestBuildFailureNotRetried is the volcache regression pinned at the
// gateway: a 500 typed build-failure is deterministic, so the gateway
// must pass it through after a single attempt instead of burning
// retries on backends that would all fail identically.
func TestBuildFailureNotRetried(t *testing.T) {
	backs := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, backs, nil)
	owner, other := affinityBackend(t, g, backs, "mri")
	baselineOther := other.renders.Load()

	owner.setHandler(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(server.ErrorClassHeader, server.ErrClassBuildFailure)
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"volume build failed: corrupt run lengths"}`)
	})
	resp, _ := gwGet(t, g, "/render?volume=mri&yaw=30&pitch=15")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("build failure through gateway = %d, want 500 passthrough", resp.StatusCode)
	}
	if got := resp.Header.Get(server.ErrorClassHeader); got != server.ErrClassBuildFailure {
		t.Fatalf("error class = %q, want %q preserved", got, server.ErrClassBuildFailure)
	}
	if got := resp.Header.Get("X-Shearwarp-Attempts"); got != "1" {
		t.Fatalf("attempts = %q, want 1 (deterministic failures are not retried)", got)
	}
	if n := other.renders.Load(); n != baselineOther {
		t.Fatalf("non-owner backend saw %d extra requests during a non-retryable failure", n-baselineOther)
	}
}

// TestFramePanicRetried is the other half of the taxonomy: a typed
// transient 500 (frame-panic) IS worth another attempt elsewhere.
func TestFramePanicRetried(t *testing.T) {
	backs := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, backs, nil)
	owner, _ := affinityBackend(t, g, backs, "mri")

	owner.setHandler(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(server.ErrorClassHeader, server.ErrClassFramePanic)
		w.WriteHeader(http.StatusInternalServerError)
	})
	resp, body := gwGet(t, g, "/render?volume=mri&yaw=30&pitch=15")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render with panicking owner = %d (%s), want 200 via retry", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Shearwarp-Attempts"); got != "2" {
		t.Fatalf("attempts = %q, want 2", got)
	}
}

// TestHedgeCancelsLoser pins tail-latency hedging end to end with
// backend-side accounting: the hedge fires on the other backend, the
// fast response wins, and the slow loser's request context is
// cancelled (the backend is told to stop, not left rendering for a
// client that already got its frame).
func TestHedgeCancelsLoser(t *testing.T) {
	backs := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, backs, func(c *Config) {
		c.HedgeQuantile = 0.95
		c.HedgeMin = time.Millisecond
		c.HedgeMax = 50 * time.Millisecond // cold gateway hedges at the ceiling
	})
	owner, other := affinityBackend(t, g, backs, "mri")

	release := make(chan struct{})
	owner.setHandler(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // cancelled: we lost the hedge race
		case <-release: // safety valve so a failed test doesn't hang
		case <-time.After(10 * time.Second):
		}
		w.WriteHeader(http.StatusInternalServerError)
	})
	defer close(release)
	other.setHandler(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "fast frame")
	})

	resp, body := gwGet(t, g, "/render?volume=mri&yaw=30&pitch=15")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged render = %d (%s), want 200", resp.StatusCode, body)
	}
	if string(body) != "fast frame" {
		t.Fatalf("hedged render body = %q, want the fast backend's frame", body)
	}
	if resp.Header.Get("X-Shearwarp-Hedged") != "1" {
		t.Fatalf("winning response not marked hedged (headers %v)", resp.Header)
	}
	if g.hedged.Load() < 1 || g.hedgeWins.Load() < 1 {
		t.Fatalf("hedge counters = launched %d wins %d, want >= 1 each", g.hedged.Load(), g.hedgeWins.Load())
	}
	// The loser must observe cancellation and the gateway's per-backend
	// in-flight accounting must drain to zero — no double-charged slots.
	waitFor(t, "loser cancelled", func() bool { return owner.canceled.Load() >= 1 })
	waitFor(t, "in-flight drained", func() bool {
		for _, b := range g.backends {
			if b.inflight.Load() != 0 {
				return false
			}
		}
		return true
	})
}

// TestBudgetPropagation pins deadline forwarding: the client's budget
// reaches the backend as X-Shearwarp-Budget-Ms, and a backend that
// ignores it gets cut off by the gateway at the budget, not at the
// gateway's own 10s default.
func TestBudgetPropagation(t *testing.T) {
	backs := []*fakeBackend{newFakeBackend(t)}
	g := newTestGateway(t, backs, func(c *Config) { c.MaxAttempts = 1 })

	var gotBudget atomic.Int64
	backs[0].setHandler(func(w http.ResponseWriter, r *http.Request) {
		if ms, err := strconv.ParseInt(r.Header.Get(server.BudgetHeader), 10, 64); err == nil {
			gotBudget.Store(ms)
		}
		io.WriteString(w, "ok")
	})
	resp, _ := gwGet(t, g, "/render?volume=mri&budget=250ms")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted render = %d, want 200", resp.StatusCode)
	}
	if ms := gotBudget.Load(); ms <= 0 || ms > 250 {
		t.Fatalf("backend saw budget %dms, want (0, 250]", ms)
	}

	// Bare integers are milliseconds, same as the wire header.
	gotBudget.Store(0)
	resp, _ = gwGet(t, g, "/render?volume=mri&budget=250")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bare-ms budgeted render = %d, want 200", resp.StatusCode)
	}
	if ms := gotBudget.Load(); ms <= 0 || ms > 250 {
		t.Fatalf("backend saw bare-ms budget %dms, want (0, 250]", ms)
	}

	backs[0].setHandler(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	})
	t0 := time.Now()
	resp, _ = gwGet(t, g, "/render?volume=mri&budget=100")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("blown budget = %d, want 504", resp.StatusCode)
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("blown budget took %v; the 100ms budget did not bound the request", el)
	}
}

// TestReadyzFollowsFleet pins gateway routability: ready while at
// least one backend is eligible, 503 when the whole fleet is down,
// ready again after recovery.
func TestReadyzFollowsFleet(t *testing.T) {
	backs := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, backs, nil)

	if resp, body := gwGet(t, g, "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh /readyz = %d (%s), want 200", resp.StatusCode, body)
	}
	backs[0].stop()
	backs[1].stop()
	g.CheckNow()
	resp, _ := gwGet(t, g, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with dead fleet = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("/readyz 503 missing Retry-After")
	}
	resp, _ = gwGet(t, g, "/render?volume=mri")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/render with dead fleet = %d, want 503 no-backend", resp.StatusCode)
	}

	backs[0].restart()
	g.CheckNow()
	if resp, _ := gwGet(t, g, "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d, want 200", resp.StatusCode)
	}
}

// TestBreakerEjectsFailingBackend pins the breaker at the gateway
// level: a backend that keeps failing is ejected (no longer attempted)
// and readmitted through a half-open probe once it recovers.
func TestBreakerEjectsFailingBackend(t *testing.T) {
	backs := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, backs, func(c *Config) {
		c.BreakerFailures = 3
		c.BreakerCooldown = 100 * time.Millisecond
	})
	owner, _ := affinityBackend(t, g, backs, "mri")

	owner.setHandler(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(server.ErrorClassHeader, server.ErrClassFramePanic)
		w.WriteHeader(http.StatusInternalServerError)
	})
	for i := 0; i < 4; i++ {
		gwGet(t, g, fmt.Sprintf("/render?volume=mri&yaw=%d", i))
	}
	var ob *backend
	for _, b := range g.backends {
		if b.url == owner.url {
			ob = b
		}
	}
	if ob.breaker.State() != BreakerOpen {
		t.Fatalf("failing owner's breaker = %v after repeated failures, want open", ob.breaker.State())
	}
	before := owner.renders.Load()
	resp, _ := gwGet(t, g, "/render?volume=mri&yaw=99")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render with ejected owner = %d, want 200 from the spill backend", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Shearwarp-Attempts"); got != "1" {
		t.Fatalf("attempts with open breaker = %q, want 1 (ejected backend not attempted)", got)
	}
	if owner.renders.Load() != before {
		t.Fatal("open breaker still sent traffic to the ejected backend")
	}

	// Recovery: fix the backend, wait out the cooldown, and watch the
	// half-open probe close the circuit again.
	owner.setHandler(func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "recovered") })
	time.Sleep(150 * time.Millisecond)
	waitFor(t, "breaker closes after probe", func() bool {
		gwGet(t, g, "/render?volume=mri&yaw=123")
		return ob.breaker.State() == BreakerClosed
	})
}

// TestGoroutineLeakUnderChurn kills and restarts backends under live
// traffic and asserts the gateway leaks no goroutines and strands no
// in-flight accounting.
func TestGoroutineLeakUnderChurn(t *testing.T) {
	before := runtime.NumGoroutine()

	backs := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	g := newTestGateway(t, backs, func(c *Config) {
		c.MaxAttempts = 3
		c.BreakerFailures = 1000 // churn is the subject here, not ejection
	})
	for i := 0; i < 60; i++ {
		switch i {
		case 15:
			backs[0].stop()
		case 30:
			backs[0].restart()
			g.CheckNow()
		case 45:
			backs[1].stop()
		}
		gwGet(t, g, fmt.Sprintf("/render?volume=vol%02d&yaw=%d", i%5, i))
	}
	for _, b := range g.backends {
		if n := b.inflight.Load(); n != 0 {
			t.Fatalf("backend %s in-flight = %d after all requests completed, want 0", b.url, n)
		}
	}
	g.Close()
	backs[0].stop()
	backs[1].stop()

	waitFor(t, "goroutines return to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
