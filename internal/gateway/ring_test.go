package gateway

import (
	"fmt"
	"testing"
)

// TestRingOrderCoversAllBackends pins that a key's walk order is a
// permutation of every backend, deterministically.
func TestRingOrderCoversAllBackends(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := newRing(names, 64)
	for _, key := range []string{"mri|||", "ct|warm|mip|", "vol07|||140"} {
		order := r.order(key)
		if len(order) != len(names) {
			t.Fatalf("order(%q) has %d entries, want %d", key, len(order), len(names))
		}
		seen := make(map[int]bool)
		for _, b := range order {
			if seen[b] {
				t.Fatalf("order(%q) repeats backend %d: %v", key, b, order)
			}
			seen[b] = true
		}
		again := r.order(key)
		for i := range order {
			if order[i] != again[i] {
				t.Fatalf("order(%q) not deterministic: %v vs %v", key, order, again)
			}
		}
	}
}

// TestRingAffinityStableUnderReorder pins that vnode placement derives
// from the backend name, not its slice position: permuting the backend
// list must not move any key's affinity choice.
func TestRingAffinityStableUnderReorder(t *testing.T) {
	a := []string{"http://a:1", "http://b:1", "http://c:1"}
	b := []string{"http://c:1", "http://a:1", "http://b:1"} // rotated
	ra, rb := newRing(a, 64), newRing(b, 64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("vol%02d|||", i)
		fa := a[ra.order(key)[0]]
		fb := b[rb.order(key)[0]]
		if fa != fb {
			t.Fatalf("key %q affinity moved under reorder: %s vs %s", key, fa, fb)
		}
	}
}

// TestRingSpreadsKeys sanity-checks the balance: over many keys, every
// backend should own a reasonable share of first choices.
func TestRingSpreadsKeys(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := newRing(names, 64)
	counts := make([]int, len(names))
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.order(fmt.Sprintf("vol%04d|||", i))[0]]++
	}
	for b, n := range counts {
		// Fair share is 1000; vnode placement is lumpy but 64 replicas
		// should keep everyone within a factor of ~2.5.
		if n < keys/10 || n > keys/2 {
			t.Fatalf("backend %d owns %d/%d first choices — ring badly unbalanced (%v)", b, n, keys, counts)
		}
	}
}
