package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"net/url"
	"strconv"
	"strings"
	"time"

	"shearwarp/internal/server"
	"shearwarp/internal/telemetry"
)

// Error classes the gateway itself assigns to attempt outcomes (the
// backend's typed classes from server.ErrorClassHeader pass through).
const (
	classTransport = "transport" // connect refused/reset, no response
	classTruncated = "truncated" // backend died mid-stream
	classCanceled  = "canceled"  // our own cancellation (hedge loser, budget)
	classDeadline  = "deadline"  // backend 504: the forwarded budget lapsed
	classShed      = "shed"      // backend 503: admission shed / draining
	classNoBackend = "no-backend"
	classTooLarge  = "too-large"
)

// bufferedResponse is a fully-buffered backend response. Buffering is
// the retry contract: the gateway never writes a client byte until the
// whole frame has arrived, so a backend dying mid-stream is a clean
// retryable failure instead of a corrupt half-written image.
type bufferedResponse struct {
	status int
	header http.Header
	body   []byte
}

// attemptResult is one attempt's outcome.
type attemptResult struct {
	b         *backend
	ordinal   int // attempt launch order within the request (0 = first)
	hedged    bool
	resp      *bufferedResponse // nil on transport-level failure
	err       error
	class     string  // error class ("" on success)
	retryable bool    // would another attempt plausibly succeed?
	breakOut  outcome // what this attempt proved about the backend
	dur       time.Duration
}

// proxyResult is what the policy hands back to the HTTP handler.
type proxyResult struct {
	resp      *bufferedResponse // nil -> synthesize errStatus/errMsg
	backend   string
	backends  []string // every backend an attempt was launched against, in order
	attempts  int
	hedgedWin bool
	errStatus int
	errMsg    string
	errClass  string
}

// affinityKey is the consistent-hash routing key: exactly the query
// parameters that select a preprocessing-cache entry on the backend
// (volume, transfer function, render mode, iso threshold). Camera
// angles and output format deliberately excluded — every view of one
// volume should land on the shard whose cache holds that volume.
func affinityKey(q url.Values) string {
	return q.Get("volume") + "|" + q.Get("transfer") + "|" + q.Get("mode") + "|" + q.Get("iso")
}

// handleRender proxies one render through the resilience policy.
func (g *Gateway) handleRender(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if g.draining.Load() {
		w.Header().Set("Retry-After", "5")
		writeJSONError(w, http.StatusServiceUnavailable, "gateway draining")
		return
	}
	g.inflight.Add(1)
	defer g.inflight.Done()

	// Mint the fleet trace ID: the one identity every attempt forwards,
	// every backend adopts, and every log line on every process carries.
	// It is echoed to the client so a slow response is directly
	// explorable at /debug/trace?id=N.
	id := g.traceBase + g.reqSeq.Add(1)
	t0 := time.Now()
	key := affinityKey(r.URL.Query())
	log := g.log.With("trace", id)
	w.Header().Set(server.TraceHeader, strconv.FormatUint(id, 10))

	// Budget: client header wins, then a budget= query parameter, then
	// the configured default. The whole policy — attempts, backoffs,
	// hedges — runs inside this one deadline.
	budget := g.cfg.DefaultBudget
	if v := r.Header.Get(server.BudgetHeader); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			budget = time.Duration(ms) * time.Millisecond
		}
	} else if v := r.URL.Query().Get("budget"); v != "" {
		// Bare integers are milliseconds, matching the wire header;
		// Go duration strings ("1.5s") also work.
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			budget = time.Duration(ms) * time.Millisecond
		} else if d, err := time.ParseDuration(v); err == nil && d > 0 {
			budget = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	tr := g.startGwTrace(id, "gw render "+key, t0)
	res := g.proxy(ctx, r, id, tr, log)
	g.requests.Add(1)

	w.Header().Set("X-Shearwarp-Attempts", strconv.Itoa(res.attempts))
	if res.backend != "" {
		w.Header().Set("X-Shearwarp-Backend", res.backend)
	}
	if res.hedgedWin {
		w.Header().Set("X-Shearwarp-Hedged", "1")
	}
	backends := strings.Join(res.backends, ",")
	if res.resp == nil {
		if res.errStatus == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		if res.errClass != "" {
			w.Header().Set(server.ErrorClassHeader, res.errClass)
		}
		writeJSONError(w, res.errStatus, res.errMsg)
		tr.finish(res.errStatus, time.Now())
		log.Warn("render failed", "status", res.errStatus, "class", res.errClass,
			"affinity", key, "attempts", res.attempts, "backends", backends,
			"elapsed_ms", time.Since(t0).Milliseconds())
		return
	}
	// Pass the backend's response through verbatim: for a 2xx this is
	// the byte-identity contract, for an error it preserves the typed
	// class and Retry-After hint the backend chose.
	for _, h := range []string{"Content-Type", "Retry-After", server.ErrorClassHeader} {
		if v := res.resp.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(res.resp.body)))
	w.WriteHeader(res.resp.status)
	if r.Method != http.MethodHead {
		w.Write(res.resp.body)
	}
	tr.finish(res.resp.status, time.Now())
	if res.resp.status >= 200 && res.resp.status < 300 {
		g.successes.Add(1)
		g.hRender.Observe(time.Since(t0))
		log.Info("render ok", "backend", res.backend, "affinity", key,
			"attempts", res.attempts, "backends", backends,
			"hedged_win", res.hedgedWin, "bytes", len(res.resp.body),
			"elapsed_ms", time.Since(t0).Milliseconds())
	} else {
		log.Warn("render failed upstream", "backend", res.backend, "status", res.resp.status,
			"class", res.resp.header.Get(server.ErrorClassHeader),
			"affinity", key, "attempts", res.attempts, "backends", backends,
			"elapsed_ms", time.Since(t0).Milliseconds())
	}
}

// proxy runs the resilience policy for one request: pick the affinity
// backend, retry retryable failures elsewhere with jittered backoff,
// hedge the tail, first success wins. When tracing is on (tr non-nil)
// the policy's own work — picks, backoffs, hedge and breaker events —
// lands on the trace's request lane, and each attempt records its
// phases on its ordinal's lane.
func (g *Gateway) proxy(ctx context.Context, r *http.Request, id uint64, tr *gwTrace, log logger) proxyResult {
	order := g.ring.order(affinityKey(r.URL.Query()))
	tried := make([]bool, len(g.backends))
	results := make(chan *attemptResult, g.cfg.MaxAttempts+1)
	actx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	launched, inFlight, retries := 0, 0, 0
	var triedURLs []string

	// pickWaits bounds how often a request with nothing in flight may
	// sleep out a backoff waiting for SOME backend to become eligible
	// again (breaker cooldown lapsing, health probe succeeding). This
	// is what turns a transient whole-fleet lockout — every breaker
	// open at once — into a short stall instead of a burst of instant
	// no-backend failures.
	const maxPickWaits = 8
	pickWaits := 0

	launch := func(hedged, isRetry bool) bool {
		pickAt := time.Now()
		b, done, ok := g.pick(order, tried, isRetry)
		if !ok {
			return false
		}
		tried[b.idx] = true
		ordinal := launched
		launched++
		inFlight++
		triedURLs = append(triedURLs, b.url)
		b.inflight.Add(1)
		b.requests.Add(1)
		if isRetry {
			b.retries.Add(1)
			g.retried.Add(1)
		}
		if hedged {
			b.hedges.Add(1)
			g.hedged.Add(1)
		}
		if tr != nil {
			now := time.Now()
			tr.span("pick", pickAt, now.Sub(pickAt))
			tr.retain() // the attempt's reference; released after its amend
			tr.addAttempt(telemetry.AttemptRef{
				Ordinal: ordinal, Backend: b.url, Hedged: hedged, Retry: isRetry,
				SendNS: tr.sinceEpochNS(now),
			})
		}
		g.inflight.Add(1)
		go func() {
			defer g.inflight.Done()
			res := g.attempt(actx, r, b, id, ordinal, hedged, tr)
			b.inflight.Add(-1)
			prior := b.breaker.State()
			done(res.breakOut)
			if tr != nil {
				now := time.Now()
				if st := b.breaker.State(); st != prior {
					tr.event("breaker "+b.url+" "+prior.String()+"->"+st.String(), now)
				}
				tr.amendAttempt(ordinal, func(a *telemetry.AttemptRef) {
					a.RecvNS = tr.sinceEpochNS(now)
					a.Class = res.class
					a.Canceled = res.class == classCanceled
					if res.resp != nil {
						a.Status = res.resp.status
					}
				})
				tr.release()
			}
			if res.class != "" && res.class != classCanceled {
				b.failures.Add(1)
				log.Warn("attempt failed", "backend", b.url, "attempt", ordinal,
					"class", res.class, "hedged", hedged, "retry", isRetry,
					"err", errString(res.err))
			}
			results <- res
		}()
		return true
	}

	var backoffT *time.Timer
	var backoffC <-chan time.Time
	var backoffAt time.Time
	defer func() {
		if backoffT != nil {
			backoffT.Stop()
		}
	}()
	armBackoff := func() {
		backoffT = time.NewTimer(g.jitter(retries))
		backoffC = backoffT.C
		backoffAt = time.Now()
		retries++
	}

	if !launch(false, false) {
		pickWaits++
		armBackoff()
	}

	// The hedge timer arms once, at the learned tail-latency quantile:
	// if the first attempt is still running when it fires, a second
	// attempt races it on another backend.
	var hedgeC <-chan time.Time
	if g.cfg.HedgeQuantile >= 0 && g.cfg.MaxAttempts > 1 && len(g.backends) > 1 {
		ht := time.NewTimer(g.hedgeDelay())
		defer ht.Stop()
		hedgeC = ht.C
	}

	var last *attemptResult
	for {
		select {
		case res := <-results:
			inFlight--
			if res.resp != nil && res.resp.status >= 200 && res.resp.status < 300 {
				if tr != nil && inFlight > 0 {
					tr.event("cancel-losers", time.Now())
				}
				cancelAll()
				if res.hedged {
					res.b.hedgeWins.Add(1)
					g.hedgeWins.Add(1)
				}
				return proxyResult{resp: res.resp, backend: res.b.url,
					backends: triedURLs, attempts: launched, hedgedWin: res.hedged}
			}
			if res.class == classCanceled {
				// A hedge loser or budget casualty; it decides nothing.
				if inFlight == 0 && backoffC == nil {
					return g.finalFailure(last, launched, triedURLs)
				}
				continue
			}
			last = res
			if !res.retryable {
				cancelAll()
				return g.finalFailure(res, launched, triedURLs)
			}
			if launched < g.cfg.MaxAttempts && backoffC == nil {
				armBackoff()
			} else if inFlight == 0 && backoffC == nil {
				g.exhausted.Add(1)
				return g.finalFailure(last, launched, triedURLs)
			}

		case <-backoffC:
			backoffC = nil
			if tr != nil {
				tr.span("backoff", backoffAt, time.Since(backoffAt))
			}
			if !launch(false, launched > 0) && inFlight == 0 {
				if pickWaits < maxPickWaits {
					pickWaits++
					armBackoff()
					continue
				}
				return g.finalFailure(last, launched, triedURLs)
			}

		case <-hedgeC:
			hedgeC = nil
			if inFlight >= 1 && launched < g.cfg.MaxAttempts {
				if tr != nil {
					tr.event("hedge-fire", time.Now())
				}
				launch(true, false)
			}

		case <-ctx.Done():
			cancelAll()
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return proxyResult{errStatus: http.StatusGatewayTimeout,
					errMsg: "render budget exhausted", errClass: classDeadline,
					attempts: launched, backends: triedURLs}
			}
			return proxyResult{errStatus: 499, errMsg: "client closed request",
				errClass: classCanceled, attempts: launched, backends: triedURLs}
		}
	}
}

// finalFailure shapes the last failed attempt into the client-facing
// result: pass a buffered backend error through, or synthesize a 502.
func (g *Gateway) finalFailure(res *attemptResult, attempts int, backends []string) proxyResult {
	if res == nil {
		g.noBackend.Add(1)
		return proxyResult{errStatus: http.StatusServiceUnavailable,
			errMsg: "no ready backend", errClass: classNoBackend,
			attempts: attempts, backends: backends}
	}
	if res.resp != nil {
		return proxyResult{resp: res.resp, backend: res.b.url, attempts: attempts,
			backends: backends, errClass: res.class}
	}
	return proxyResult{errStatus: http.StatusBadGateway,
		errMsg:   fmt.Sprintf("backend %s: %v", res.b.url, res.err),
		errClass: res.class, backend: res.b.url, attempts: attempts, backends: backends}
}

// pick selects the next backend for an attempt in the key's ring order:
// first an untried, healthy, breaker-admitted backend within the
// bounded-load cap; then untried ignoring the load bound; then — for
// retries only — already-tried backends, so a lone backend still gets
// its shed 503s retried. Allow is only called on a backend we will
// actually use (in half-open it reserves the probe slot), and its done
// callback travels with the attempt.
func (g *Gateway) pick(order []int, tried []bool, allowTried bool) (*backend, func(outcome), bool) {
	type pass struct{ skipTried, bounded bool }
	passes := []pass{{true, true}, {true, false}}
	if allowTried {
		passes = append(passes, pass{false, false})
	}
	now := time.Now()
	for _, p := range passes {
		for _, bi := range order {
			if p.skipTried && tried[bi] {
				continue
			}
			b := g.backends[bi]
			if !b.healthy.Load() {
				continue
			}
			if p.bounded && g.overloaded(b) {
				continue
			}
			if done, ok := b.breaker.Allow(now); ok {
				return b, done, true
			}
		}
	}
	return nil, nil, false
}

// overloaded applies the bounded-load rule: admitting one more request
// must not push the backend past ceil(c * (total+1) / healthy).
func (g *Gateway) overloaded(b *backend) bool {
	var total int64
	n := 0
	for _, x := range g.backends {
		if x.healthy.Load() {
			total += x.inflight.Load()
			n++
		}
	}
	if n <= 1 {
		return false
	}
	limit := int64(g.cfg.LoadFactor * float64(total+1) / float64(n))
	if float64(limit) < g.cfg.LoadFactor*float64(total+1)/float64(n) {
		limit++ // ceil
	}
	return b.inflight.Load()+1 > limit
}

// attempt runs one proxied request against one backend and classifies
// the outcome: what the client should see, whether a retry could help,
// and what the attempt proved about the backend's health. When tracing
// is on the attempt's connect/first-byte/body phases land on its
// ordinal's lane via httptrace (only attached when tr is non-nil, so
// the disabled path allocates nothing extra).
func (g *Gateway) attempt(ctx context.Context, r *http.Request, b *backend, id uint64, ordinal int, hedged bool, tr *gwTrace) *attemptResult {
	res := &attemptResult{b: b, ordinal: ordinal, hedged: hedged}
	q := r.URL.Query()
	q.Del("budget") // gateway-level; not part of the backend contract
	u := b.url + "/render"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		res.err, res.class, res.breakOut = err, classTransport, outcomeSuccess
		return res
	}
	// Propagate the fleet trace context: the backend adopts the trace ID
	// as its own request identity and labels its span set with the
	// attempt ordinal, which is what lets the stitcher match each
	// gateway attempt to the backend trace that served it. The gateway
	// request header carries the same ID for log continuity, and the
	// remaining budget is forwarded so the backend gives up when the
	// client stops waiting, not at its own configured timeout.
	req.Header.Set(server.TraceHeader, strconv.FormatUint(id, 10))
	req.Header.Set(server.AttemptHeader, strconv.Itoa(ordinal))
	req.Header.Set(server.GatewayRequestHeader, strconv.FormatUint(id, 10))
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(server.BudgetHeader, strconv.FormatInt(ms, 10))
	}

	t0 := time.Now()
	if tr != nil {
		var connStart, gotConn, firstByte time.Time
		ct := &httptrace.ClientTrace{
			GetConn: func(string) { connStart = time.Now() },
			GotConn: func(httptrace.GotConnInfo) {
				gotConn = time.Now()
				if !connStart.IsZero() {
					tr.attemptSpan(ordinal, "connect", connStart, gotConn.Sub(connStart))
				}
			},
			GotFirstResponseByte: func() {
				firstByte = time.Now()
				from := gotConn
				if from.IsZero() {
					from = t0
				}
				tr.attemptSpan(ordinal, "first-byte", from, firstByte.Sub(from))
			},
		}
		req = req.WithContext(httptrace.WithClientTrace(req.Context(), ct))
		defer func() {
			end := time.Now()
			if !firstByte.IsZero() {
				tr.attemptSpan(ordinal, "body", firstByte, end.Sub(firstByte))
			}
			tr.attemptSpan(ordinal, fmt.Sprintf("attempt %d %s", ordinal, b.url), t0, end.Sub(t0))
		}()
	}
	resp, err := g.client.Do(req)
	if err != nil {
		res.err, res.dur = err, time.Since(t0)
		if ctx.Err() != nil {
			res.class, res.retryable, res.breakOut = classCanceled, false, outcomeAbandon
		} else {
			res.class, res.retryable, res.breakOut = classTransport, true, outcomeFailure
		}
		return res
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBodyBytes+1))
	resp.Body.Close()
	res.dur = time.Since(t0)
	if rerr != nil {
		res.err = rerr
		if ctx.Err() != nil {
			res.class, res.retryable, res.breakOut = classCanceled, false, outcomeAbandon
		} else {
			res.class, res.retryable, res.breakOut = classTruncated, true, outcomeFailure
		}
		return res
	}
	if int64(len(body)) > g.cfg.MaxBodyBytes {
		res.err = fmt.Errorf("response exceeds %d byte buffer cap", g.cfg.MaxBodyBytes)
		res.class, res.retryable, res.breakOut = classTooLarge, false, outcomeSuccess
		return res
	}
	// A short body on a response that declared its length is the same
	// mid-stream death as a read error (Go surfaces most as
	// ErrUnexpectedEOF, but a fault injector can close cleanly).
	if resp.ContentLength >= 0 && int64(len(body)) != resp.ContentLength {
		res.err = fmt.Errorf("truncated body: %d of %d bytes", len(body), resp.ContentLength)
		res.class, res.retryable, res.breakOut = classTruncated, true, outcomeFailure
		return res
	}
	res.resp = &bufferedResponse{status: resp.StatusCode, header: resp.Header, body: body}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		res.breakOut = outcomeSuccess
		g.hAttempt.Observe(res.dur)
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		// The request's own fault; the backend is fine.
		res.class, res.retryable, res.breakOut = "client-error", false, outcomeSuccess
	case resp.StatusCode == http.StatusGatewayTimeout:
		// The forwarded budget lapsed inside the backend: a retry gets
		// an even smaller budget, so don't.
		res.class, res.retryable, res.breakOut = classDeadline, false, outcomeFailure
	default: // 5xx
		class := resp.Header.Get(server.ErrorClassHeader)
		switch {
		case class == server.ErrClassBuildFailure:
			// Deterministic: the volume cannot be built. Every backend
			// would fail identically — single attempt, pass through.
			res.class, res.retryable, res.breakOut = class, false, outcomeSuccess
		case resp.StatusCode == http.StatusServiceUnavailable:
			if class == "" {
				class = classShed
			}
			res.class, res.retryable, res.breakOut = class, true, outcomeFailure
		default:
			// Typed transients (frame-panic, watchdog-stall), untyped
			// 5xx, 502s: worth one more try elsewhere.
			if class == "" {
				class = "upstream-" + strconv.Itoa(resp.StatusCode)
			}
			res.class, res.retryable, res.breakOut = class, true, outcomeFailure
		}
	}
	return res
}

// logger is the slice of *slog.Logger the proxy needs (lets tests pass
// a plain logger without caring about handler setup).
type logger interface {
	Info(msg string, args ...any)
	Warn(msg string, args ...any)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
