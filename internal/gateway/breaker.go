package gateway

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes traffic, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one in-flight probe; its outcome
	// decides between Closed and Open.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-backend circuit breaker. Failures while closed
// accumulate; maxFailures consecutive ones open the circuit. After
// cooldown the next Allow transitions to half-open and admits a single
// probe: success closes the circuit, failure re-opens it (restarting
// the cooldown), abandonment (a cancelled probe that proved nothing)
// returns to half-open so the next request probes again.
//
// All timestamps are passed in by the caller so tests drive the state
// machine with a synthetic clock.
type breaker struct {
	maxFailures int
	cooldown    time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight

	opens atomic.Int64 // closed/half-open -> open transitions (ejections)
}

func newBreaker(maxFailures int, cooldown time.Duration) *breaker {
	return &breaker{maxFailures: maxFailures, cooldown: cooldown}
}

// outcome reports how an admitted attempt ended.
type outcome int

const (
	outcomeSuccess outcome = iota // backend answered and is healthy
	outcomeFailure                // backend failed the attempt
	outcomeAbandon                // attempt cancelled before proving anything
)

// Allow reports whether an attempt may proceed at time now, reserving
// the half-open probe slot when the cooldown has elapsed. The caller
// MUST call done with the attempt's outcome iff ok is true.
func (b *breaker) Allow(now time.Time) (done func(outcome), ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return b.record, true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return nil, false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return b.probeDone, true
	default: // BreakerHalfOpen
		if b.probing {
			return nil, false // exactly one in-flight probe
		}
		b.probing = true
		return b.probeDone, true
	}
}

// record is the completion callback for closed-state attempts.
func (b *breaker) record(o outcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		// A stale completion from before a transition; the probe protocol
		// owns the state now.
		return
	}
	switch o {
	case outcomeSuccess:
		b.failures = 0
	case outcomeFailure:
		b.failures++
		if b.failures >= b.maxFailures {
			b.state = BreakerOpen
			b.openedAt = time.Now()
			b.failures = 0
			b.opens.Add(1)
		}
	}
}

// probeDone is the completion callback for the half-open probe.
func (b *breaker) probeDone(o outcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state != BreakerHalfOpen {
		return
	}
	switch o {
	case outcomeSuccess:
		b.state = BreakerClosed
		b.failures = 0
	case outcomeFailure:
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.opens.Add(1)
	case outcomeAbandon:
		// The probe was cancelled before proving anything: stay
		// half-open so the next request re-probes immediately.
	}
}

// State returns the current position (transitioning open->half-open is
// Allow's job, so a cooled-down open circuit still reads open here).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// forceOpen trips the breaker immediately — used when the health
// checker marks a backend down so the breaker's cooldown, not just the
// checker's rise threshold, gates re-admission.
func (b *breaker) forceOpen(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		b.state = BreakerOpen
		b.openedAt = now
		b.failures = 0
		b.opens.Add(1)
	}
}
