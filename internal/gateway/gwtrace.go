package gateway

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"shearwarp/internal/telemetry"
)

// Gateway-side span tracing: the same pooled FrameSpans machinery the
// backends run in their render workers, recording the gateway's routing
// work instead — pick, backoff, breaker transitions, hedge arming, and
// each attempt's connect/first-byte/body phases. Spans land on lanes by
// role: the request lane (worker -1) carries the policy events, and
// each attempt records on worker = its ordinal, so a hedged request
// shows its racing attempts on separate rows like the paper's Figure
// 5/6 shows racing render workers.
//
// Lifetime is the hard part: a hedge loser's goroutine outlives the
// proxy loop (it drains its cancelled attempt in the background), so
// the trace cannot be finalized when the handler returns — the loser
// would record into a recorder already back in the pool. gwTrace is
// reference-counted instead: the handler holds one reference and every
// launched attempt holds one; whoever releases last builds the Trace,
// hands it to the tracer ring, and returns the recorder to the pool.
type gwTrace struct {
	g       *Gateway
	id      uint64
	label   string
	startNS int64
	spans   *telemetry.FrameSpans

	mu       sync.Mutex
	attempts []telemetry.AttemptRef

	pending atomic.Int32 // handler ref + one per launched attempt
	status  atomic.Int32 // stored by finish before the handler's release
	durNS   atomic.Int64
}

// startGwTrace begins tracing one proxied request; nil when tracing is
// disabled (Config.TraceRing < 0), and every gwTrace method is nil-safe
// so the disabled path stays branch-and-allocation free.
func (g *Gateway) startGwTrace(id uint64, label string, t0 time.Time) *gwTrace {
	if g.tracer == nil {
		return nil
	}
	fs := g.spanPool.Get().(*telemetry.FrameSpans)
	fs.Reset(g.epoch)
	t := &gwTrace{g: g, id: id, label: label, startNS: t0.Sub(g.epoch).Nanoseconds(), spans: fs}
	t.pending.Store(1)
	return t
}

// sinceEpochNS converts an instant to the gateway trace timeline.
func (t *gwTrace) sinceEpochNS(at time.Time) int64 {
	return at.Sub(t.g.epoch).Nanoseconds()
}

// span records one request-lane policy span. Nil-safe.
func (t *gwTrace) span(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.spans.Record(-1, name, telemetry.CatRequest, start, d)
}

// attemptSpan records one span on an attempt's lane. Nil-safe.
func (t *gwTrace) attemptSpan(ordinal int, name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.spans.Record(ordinal, name, telemetry.CatBusy, start, d)
}

// event records a zero-duration request-lane marker. Nil-safe.
func (t *gwTrace) event(name string, at time.Time) {
	if t == nil {
		return
	}
	t.spans.Record(-1, name, telemetry.CatRequest, at, 0)
}

// retain adds one reference for a launched attempt. Nil-safe.
func (t *gwTrace) retain() {
	if t == nil {
		return
	}
	t.pending.Add(1)
}

// release drops one reference; the last one publishes. Nil-safe.
func (t *gwTrace) release() {
	if t == nil {
		return
	}
	if t.pending.Add(-1) == 0 {
		t.publish()
	}
}

// addAttempt records the launch half of an AttemptRef. Nil-safe.
func (t *gwTrace) addAttempt(ref telemetry.AttemptRef) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attempts = append(t.attempts, ref)
	t.mu.Unlock()
}

// amendAttempt updates the attempt with the given ordinal (receive
// time, status, class, cancellation) after its goroutine finished.
// Nil-safe.
func (t *gwTrace) amendAttempt(ordinal int, fn func(*telemetry.AttemptRef)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.attempts {
		if t.attempts[i].Ordinal == ordinal {
			fn(&t.attempts[i])
			break
		}
	}
	t.mu.Unlock()
}

// finish stores the request's final status and duration and drops the
// handler's reference. Hedge losers still in flight keep the trace
// alive until their spans are in. Nil-safe.
func (t *gwTrace) finish(status int, now time.Time) {
	if t == nil {
		return
	}
	t.status.Store(int32(status))
	t.durNS.Store(t.sinceEpochNS(now) - t.startNS)
	t.release()
}

// publish builds the Trace, retains it, and recycles the recorder.
// Runs exactly once, on whichever goroutine released last; by then no
// goroutine can record, so reading the recorder is safe.
func (t *gwTrace) publish() {
	spans := t.spans.Spans()
	t.mu.Lock()
	attempts := append(make([]telemetry.AttemptRef, 0, len(t.attempts)), t.attempts...)
	t.mu.Unlock()
	tr := &telemetry.Trace{
		ID:       t.id,
		Label:    t.label,
		StartNS:  t.startNS,
		DurNS:    t.durNS.Load(),
		Status:   int(t.status.Load()),
		Dropped:  t.spans.Dropped(),
		Spans:    append(make([]telemetry.Span, 0, len(spans)), spans...),
		Attempts: attempts,
	}
	t.g.spanPool.Put(t.spans)
	t.spans = nil
	t.g.tracer.Add(tr)
}

// handleSpans is GET /debug/spans on the gateway: the retained gateway
// traces as Chrome trace-event JSON, same interface as the backends'.
// ?id=N restricts to one trace, ?format=raw returns plain JSON (the
// form fleet tooling consumes), ?view=timeline renders text bars.
func (g *Gateway) handleSpans(w http.ResponseWriter, r *http.Request) {
	if g.tracer == nil {
		writeJSONError(w, http.StatusNotFound, "span tracing disabled")
		return
	}
	var traces []*telemetry.Trace
	if v := r.URL.Query().Get("id"); v != "" {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad id %q", v))
			return
		}
		traces = g.tracer.FindAll(id)
		if len(traces) == 0 {
			writeJSONError(w, http.StatusNotFound, fmt.Sprintf("no retained trace with id %d", id))
			return
		}
	} else {
		traces = g.tracer.Traces()
	}
	switch {
	case r.URL.Query().Get("view") == "timeline":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, tr := range traces {
			fmt.Fprintln(w, telemetry.Timeline(tr))
		}
	case r.URL.Query().Get("format") == "raw":
		writeJSONIndent(w, traces)
	default:
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := telemetry.WriteChromeTrace(w, traces); err != nil {
			g.log.Warn("span export failed", "err", err)
		}
	}
}
