package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over backend indices. Each backend
// owns replicas virtual points; a key hashes to a position and walks
// clockwise, yielding backends in a key-stable preference order. The
// same (volume, transfer, mode) key therefore lands on the same
// backend run after run — keeping that backend's preprocessing cache
// hot — and spills to a deterministic next choice when the favourite
// is full, broken, or gone (the bounded-load variant; see Gateway.pick).
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // distinct backends
}

type ringPoint struct {
	hash    uint64
	backend int // index into the gateway's backend slice
}

// newRing builds the ring from backend names (their URLs): vnode
// positions derive from the name, so affinity survives reordering or
// partial changes of the backend list.
func newRing(names []string, replicas int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(names)*replicas), n: len(names)}
	for b, name := range names {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", name, v)), backend: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// hashKey hashes a ring key: FNV-1a for the bytes, then a splitmix64
// finalizer — raw FNV on short, similar keys ("url#0", "url#1", …)
// clusters on the ring badly enough to skew first-choice ownership by
// 5x; the avalanche step spreads the vnodes evenly.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// order returns all backend indices in the key's clockwise walk order:
// the affinity choice first, then each distinct spill candidate as the
// walk encounters it. len(result) == number of backends.
func (r *ring) order(key string) []int {
	out := make([]int, 0, r.n)
	if len(r.points) == 0 {
		return out
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.n)
	for i := 0; len(out) < r.n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}
