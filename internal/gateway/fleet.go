package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"shearwarp/internal/server"
	"shearwarp/internal/slo"
	"shearwarp/internal/telemetry"
)

// Fleet metrics aggregation: the gateway periodically scrapes every
// backend's /metrics JSON and merges the wire-form histogram snapshots
// into fleet-level state. Merging is exact — every process shares the
// telemetry package's log-linear bucket boundaries — so the fleet's
// p99 is the p99 of the union of observations, not an average of
// averages. The merged counters also feed a fleet-level internal/slo
// engine, extending each backend's burn-rate alerting to "is the fleet
// as a whole meeting its objectives while individual members misbehave".

// fleetBackendState is one backend's last scrape.
type fleetBackendState struct {
	url  string
	err  string
	at   time.Time
	snap server.MetricsSnapshot
}

// fleetState is the scrape loop's shared output.
type fleetState struct {
	mu       sync.Mutex
	at       time.Time
	backends []fleetBackendState
}

// ScrapeFleetNow runs one synchronous scrape round over all backends —
// the fleet loop's body, exported so tests and CI can force a round
// instead of sleeping through FleetInterval.
func (g *Gateway) ScrapeFleetNow() {
	now := time.Now()
	states := make([]fleetBackendState, len(g.backends))
	var wg sync.WaitGroup
	for i, b := range g.backends {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			states[i] = g.scrapeBackend(url, now)
		}(i, b.url)
	}
	wg.Wait()
	g.fleet.mu.Lock()
	g.fleet.at = now
	g.fleet.backends = states
	g.fleet.mu.Unlock()
	if g.fleetSLO != nil {
		g.fleetSLO.Tick()
	}
}

// scrapeBackend fetches one backend's /metrics JSON document.
func (g *Gateway) scrapeBackend(url string, now time.Time) fleetBackendState {
	st := fleetBackendState{url: url, at: now}
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.HealthTimeout*2)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		st.err = err.Error()
		return st
	}
	resp, err := g.debugClient.Do(req)
	if err != nil {
		st.err = err.Error()
		return st
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		st.err = fmt.Sprintf("scrape answered %d", resp.StatusCode)
		return st
	}
	if err := json.NewDecoder(resp.Body).Decode(&st.snap); err != nil {
		st.err = "decoding metrics: " + err.Error()
	}
	return st
}

// fleetLoop scrapes on FleetInterval until Close. One immediate scrape
// seeds the fleet view so a fresh gateway doesn't report "no scrape
// yet" for a whole interval.
func (g *Gateway) fleetLoop() {
	defer g.healthWG.Done()
	g.ScrapeFleetNow()
	ticker := time.NewTicker(g.cfg.FleetInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.healthStop:
			return
		case <-ticker.C:
			g.ScrapeFleetNow()
		}
	}
}

// mergedHistogram merges one named wire histogram across the scraped
// backends.
func (g *Gateway) mergedHistogram(states []fleetBackendState, name string) *telemetry.HistogramSnapshot {
	merged := &telemetry.HistogramSnapshot{}
	for i := range states {
		if states[i].err != "" {
			continue
		}
		if ws, ok := states[i].snap.Histograms[name]; ok {
			s := ws.Snapshot()
			merged.Merge(s)
		}
	}
	return merged
}

// fleetBackendMetrics is one backend's row in the fleet panel: its own
// render quantiles next to the fleet's, so per-backend skew is visible
// at a glance.
type fleetBackendMetrics struct {
	URL         string  `json:"url"`
	Err         string  `json:"err,omitempty"`
	Frames      int64   `json:"frames"`
	RenderCount int64   `json:"render_count"`
	RenderP50MS float64 `json:"render_p50_ms"`
	RenderP99MS float64 `json:"render_p99_ms"`
	// P99SkewVsFleet is backend p99 / fleet p99 (1.0 = typical; >> 1 =
	// this backend is the fleet's tail).
	P99SkewVsFleet float64 `json:"p99_skew_vs_fleet"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

// fleetMetrics is the merged fleet section of the gateway's /metrics.
type fleetMetrics struct {
	ScrapedAgoSeconds float64                   `json:"scraped_ago_seconds"`
	Backends          int                       `json:"backends"`
	Scraped           int                       `json:"scraped"` // backends whose last scrape succeeded
	Frames            int64                     `json:"frames"`
	Render            telemetry.QuantileSummary `json:"render"`
	AdmissionWait     telemetry.QuantileSummary `json:"admission_wait"`
	CacheBuild        telemetry.QuantileSummary `json:"cache_build"`
	CacheHitRate      float64                   `json:"cache_hit_rate"`
	PerBackend        []fleetBackendMetrics     `json:"per_backend"`
}

// fleetSnapshot merges the last scrape round into the fleet document.
// Zero-valued (with ScrapedAgoSeconds < 0) before the first scrape.
func (g *Gateway) fleetSnapshot() fleetMetrics {
	g.fleet.mu.Lock()
	at := g.fleet.at
	states := append([]fleetBackendState(nil), g.fleet.backends...)
	g.fleet.mu.Unlock()

	fm := fleetMetrics{Backends: len(g.backends), ScrapedAgoSeconds: -1}
	if at.IsZero() {
		return fm
	}
	fm.ScrapedAgoSeconds = time.Since(at).Seconds()

	render := g.mergedHistogram(states, "render_seconds")
	fm.Render = render.Summary()
	fm.AdmissionWait = g.mergedHistogram(states, "admission_wait_seconds").Summary()
	fm.CacheBuild = g.mergedHistogram(states, "cache_build_seconds").Summary()
	fleetP99 := float64(render.Quantile(0.99))

	var hits, misses int64
	for i := range states {
		st := &states[i]
		row := fleetBackendMetrics{URL: st.url, Err: st.err}
		if st.err == "" {
			fm.Scraped++
			fm.Frames += st.snap.Frames
			hits += st.snap.Cache.Hits
			misses += st.snap.Cache.Misses
			row.Frames = st.snap.Frames
			if ws, ok := st.snap.Histograms["render_seconds"]; ok {
				s := ws.Snapshot()
				row.RenderCount = s.Count
				row.RenderP50MS = float64(s.Quantile(0.50)) / 1e6
				row.RenderP99MS = float64(s.Quantile(0.99)) / 1e6
				if fleetP99 > 0 {
					row.P99SkewVsFleet = float64(s.Quantile(0.99)) / fleetP99
				}
			}
			if t := st.snap.Cache.Hits + st.snap.Cache.Misses; t > 0 {
				row.CacheHitRate = float64(st.snap.Cache.Hits) / float64(t)
			}
		}
		fm.PerBackend = append(fm.PerBackend, row)
	}
	if t := hits + misses; t > 0 {
		fm.CacheHitRate = float64(hits) / float64(t)
	}
	return fm
}

// setupFleetSLO builds the fleet-level SLO engine over the merged
// scrape state. Sources read cumulative fleet counters:
//
//   - latency objectives read the merged render histogram — good is the
//     cumulative count at or under the threshold, total the count;
//   - availability objectives read the summed /render endpoint counters
//     — good is requests minus 5xx responses.
//
// A backend restart resets its share of the counters; the engine's
// windowed deltas clamp negative movement to zero, so an alert can be
// briefly understated after a restart but never invented. Objectives
// naming endpoints other than /render are skipped with a log line —
// the fleet aggregation only merges the render path.
func (g *Gateway) setupFleetSLO() {
	if g.cfg.FleetInterval < 0 {
		return
	}
	objs := g.cfg.SLO
	if objs == nil {
		objs, _ = slo.Parse(slo.DefaultSpec)
	}
	kept := make([]slo.Objective, 0, len(objs))
	srcs := make([]slo.Source, 0, len(objs))
	for _, o := range objs {
		src := g.fleetSLOSource(o)
		if src == nil {
			g.log.Error("fleet slo objective names an unmerged endpoint; skipped",
				"name", o.Name, "endpoint", o.Endpoint)
			continue
		}
		kept = append(kept, o)
		srcs = append(srcs, src)
	}
	eng, err := slo.New(kept, srcs, nil)
	if err != nil {
		g.log.Error("fleet slo engine disabled", "err", err)
		return
	}
	g.fleetSLO = eng
	g.fleetSLO.Tick() // anchor sample
}

// fleetSLOSource maps one objective onto the merged fleet state, or nil
// when the objective cannot be answered from it.
func (g *Gateway) fleetSLOSource(o slo.Objective) slo.Source {
	if o.Endpoint != "/render" {
		return nil
	}
	switch o.Kind {
	case slo.Latency:
		thr := o.ThresholdNS
		return func() (good, total int64) {
			g.fleet.mu.Lock()
			states := append([]fleetBackendState(nil), g.fleet.backends...)
			g.fleet.mu.Unlock()
			merged := g.mergedHistogram(states, "render_seconds")
			return merged.CumulativeLE(thr), merged.Count
		}
	case slo.Availability:
		return func() (good, total int64) {
			g.fleet.mu.Lock()
			defer g.fleet.mu.Unlock()
			for i := range g.fleet.backends {
				st := &g.fleet.backends[i]
				if st.err != "" {
					continue
				}
				if ep, ok := st.snap.Endpoints["/render"]; ok {
					total += ep.Requests
					good += ep.Requests - ep.ServerErrors
				}
			}
			return good, total
		}
	}
	return nil
}

// fleetSLOStatuses samples and evaluates the fleet objectives, worst
// first; nil when the engine is disabled.
func (g *Gateway) fleetSLOStatuses() []slo.Status {
	if g.fleetSLO == nil {
		return nil
	}
	g.fleetSLO.Tick()
	sts := g.fleetSLO.Status()
	slo.SortStatuses(sts)
	return sts
}

// handleSLO is GET /debug/slo on the gateway: the fleet-level
// objectives' compliance, error budget and burn-alert state.
func (g *Gateway) handleSLO(w http.ResponseWriter, r *http.Request) {
	if g.fleetSLO == nil {
		writeJSONError(w, http.StatusNotFound, "fleet slo engine disabled")
		return
	}
	sts := g.fleetSLOStatuses()
	writeJSONIndent(w, struct {
		Alerting   int          `json:"alerting"`
		Objectives []slo.Status `json:"objectives"`
	}{Alerting: slo.AlertingCount(sts), Objectives: sts})
}
