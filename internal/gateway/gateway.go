// Package gateway implements shearwarpgw, the resilient front door over
// a fleet of shearwarpd backends. One gateway owns N backend base URLs
// and serves /render by proxying to the fleet; everything else is about
// keeping that one route correct and fast while individual backends
// die, hang, drain, or brown out:
//
//   - fingerprint-affine routing: requests are placed on a consistent
//     hash ring keyed by (volume, transfer, mode, iso), so one volume's
//     traffic concentrates on one backend and its preprocessing cache
//     stays hot; the bounded-load variant spills a hot key to the next
//     ring node instead of melting its favourite shard;
//   - active health checking: each backend's /readyz is polled on an
//     interval; FailThreshold consecutive failures stop routing to it,
//     RiseThreshold consecutive successes re-admit it — so a draining
//     backend (which flips /readyz at the start of graceful shutdown)
//     is drained out of rotation before its listener closes;
//   - per-backend circuit breakers: consecutive request failures open
//     the circuit and eject the backend; after a cooldown, a half-open
//     probe (exactly one in-flight request) decides re-admission;
//   - retries: capped exponential backoff with full jitter, on a
//     different backend when one is available, only for failures that
//     retrying can fix (connect errors, 503 shed, mid-stream death,
//     typed-transient 500s) — deterministic failures (volume build
//     errors, client errors) pass through on the first attempt;
//   - hedging: when an attempt outlives the fleet's learned latency
//     quantile, a second attempt fires on another backend;
//     first success wins and the loser is cancelled;
//   - deadline propagation: the client's budget bounds the whole
//     policy, and each attempt forwards its remaining budget so no
//     backend works past the point the client stopped waiting.
//
// Output contract: a 2xx response proxied through the gateway is
// byte-identical to a direct render by any single backend (which is in
// turn byte-identical to the library) — the chaos soak asserts this
// while backends are killed and restarted mid-traffic.
package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shearwarp/internal/slo"
	"shearwarp/internal/telemetry"
)

// Config tunes the gateway. Backends is required; the zero value of
// everything else gets defaults from normalize.
type Config struct {
	Backends []string // backend base URLs, e.g. "http://10.0.0.1:8080"

	// Replicas is the number of virtual ring nodes per backend
	// (default 64); more replicas smooth key placement.
	Replicas int
	// LoadFactor is the bounded-load factor c: a backend is skipped
	// when admitting the request would push its in-flight count past
	// ceil(c * (total+1) / backends). Default 1.25.
	LoadFactor float64

	HealthInterval time.Duration // /readyz poll period (default 1s)
	HealthTimeout  time.Duration // per-probe timeout (default 1s)
	FailThreshold  int           // consecutive probe failures -> down (default 2)
	RiseThreshold  int           // consecutive probe successes -> up (default 2)

	// MaxAttempts bounds the total attempts per request, first try,
	// retries and hedges together (default 3).
	MaxAttempts    int
	RetryBaseDelay time.Duration // backoff base before the 2nd attempt (default 10ms)
	RetryMaxDelay  time.Duration // backoff cap (default 250ms)

	// HedgeQuantile arms the tail-latency hedge: when an attempt
	// outlives this quantile of the gateway's own successful-attempt
	// latency histogram, a second attempt fires on another backend.
	// Default 0.95; negative disables hedging.
	HedgeQuantile float64
	HedgeMin      time.Duration // learned delay floor (default 10ms)
	HedgeMax      time.Duration // learned delay ceiling, also used until enough samples (default 2s)

	BreakerFailures int           // consecutive failures that open a breaker (default 5)
	BreakerCooldown time.Duration // open -> half-open (default 5s)

	// DefaultBudget is the per-request deadline when the client sends
	// neither a budget= query parameter nor a budget header (default 30s).
	DefaultBudget time.Duration
	// MaxBodyBytes caps the buffered backend response (default 64 MiB).
	// Buffering is what makes mid-stream backend death retryable: no
	// client byte is written until a whole frame has arrived.
	MaxBodyBytes int64

	// Transport is the base RoundTripper to the backends — chaos tests
	// wrap it with faultinject.NewTransport. Nil uses a dedicated
	// transport with per-backend keep-alive pools.
	Transport http.RoundTripper
	// Logger receives structured logs (attempt outcomes, breaker and
	// health transitions), each line carrying the fleet trace ID that
	// is also forwarded to backends. Nil discards.
	Logger *slog.Logger
	// Seed makes retry jitter deterministic in tests (default 1).
	Seed int64

	// TraceRing sizes the gateway's span tracer's recent-trace ring
	// (/debug/spans, /debug/trace): 0 keeps the default of 64 retained
	// traces, negative disables gateway span tracing entirely — trace
	// IDs still mint and propagate, but no attempt spans are recorded
	// and the stitcher answers 404.
	TraceRing int
	// FleetInterval is the backend /metrics scrape period feeding the
	// fleet aggregation and the fleet SLO engine (default 10s;
	// negative disables both).
	FleetInterval time.Duration
	// SLO lists the fleet-level objectives the gateway evaluates over
	// the merged backend state. Nil runs slo.DefaultSpec; objectives
	// naming endpoints other than /render are skipped with a log.
	SLO []slo.Objective
}

func (c *Config) normalize() error {
	if len(c.Backends) == 0 {
		return fmt.Errorf("gateway: at least one backend required")
	}
	for i, b := range c.Backends {
		b = strings.TrimRight(b, "/")
		if _, err := url.Parse(b); err != nil {
			return fmt.Errorf("gateway: bad backend url %q: %w", b, err)
		}
		c.Backends[i] = b
	}
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.LoadFactor <= 1 {
		c.LoadFactor = 1.25
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.RiseThreshold <= 0 {
		c.RiseThreshold = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 10 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 250 * time.Millisecond
	}
	if c.HedgeQuantile == 0 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 10 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 2 * time.Second
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FleetInterval == 0 {
		c.FleetInterval = 10 * time.Second
	}
	return nil
}

// backend is one fleet member's live state.
type backend struct {
	url string
	idx int

	inflight atomic.Int64 // gateway attempts running against this backend
	healthy  atomic.Bool  // health checker's verdict
	breaker  *breaker

	// health-loop-local streak counters (only the loop touches them)
	consecFail, consecOK int

	// per-backend counters for /metrics
	requests  atomic.Int64 // attempts started
	failures  atomic.Int64 // attempts that failed (retryable classes)
	retries   atomic.Int64 // attempts that were retries landing here
	hedges    atomic.Int64 // attempts that were hedges landing here
	hedgeWins atomic.Int64 // hedged attempts that won their request
	checksUp  atomic.Int64 // health transitions to up
	checksDn  atomic.Int64 // health transitions to down
}

// Gateway is the resilient render front door. Create with New, serve
// Handler, Close to drain. All methods are safe for concurrent use.
type Gateway struct {
	cfg      Config
	backends []*backend
	ring     *ring
	client   *http.Client
	// debugClient is the fault-free control-plane client the stitcher
	// and fleet scraper use: chaos tests wrap Config.Transport with
	// fault injectors, and a /debug/spans fetch killed by a leftover
	// fault rule would turn an observability read into a flake.
	debugClient *http.Client
	log         *slog.Logger
	mux         *http.ServeMux
	start       time.Time

	reqSeq atomic.Uint64
	// traceBase offsets fleet trace IDs so they cannot collide with a
	// backend's locally-minted IDs (small integers) and change across
	// gateway restarts; masked below 2^52 so IDs survive JSON number
	// round-trips (float64 is exact to 2^53).
	traceBase uint64

	// Gateway-side span tracing (nil tracer = disabled).
	tracer   *telemetry.Tracer
	epoch    time.Time
	spanPool sync.Pool

	// Fleet aggregation state and the fleet-level SLO engine.
	fleet    fleetState
	fleetSLO *slo.Engine

	rngMu sync.Mutex
	rng   *rand.Rand // retry jitter

	hRender  *telemetry.Histogram // end-to-end /render latency (success)
	hAttempt *telemetry.Histogram // per-attempt latency (success) — feeds the hedge delay

	requests   atomic.Int64 // /render requests completed
	successes  atomic.Int64 // /render 2xx
	retried    atomic.Int64 // retry attempts launched
	hedged     atomic.Int64 // hedge attempts launched
	hedgeWins  atomic.Int64 // requests won by the hedged attempt
	noBackend  atomic.Int64 // requests rejected with no eligible backend
	exhausted  atomic.Int64 // requests that burned every attempt
	draining   atomic.Bool
	inflight   sync.WaitGroup // in-flight proxied requests AND attempts
	healthStop chan struct{}
	healthWG   sync.WaitGroup
}

// New builds a gateway over the configured backends and starts its
// health-check loop. Backends start healthy (optimistic) and the first
// check round corrects that within HealthInterval.
func New(cfg Config) (*Gateway, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	log := cfg.Logger
	if log == nil {
		log = telemetry.DiscardLogger()
	}
	tr := cfg.Transport
	if tr == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = 32
		tr = t
	}
	dbg := http.DefaultTransport.(*http.Transport).Clone()
	g := &Gateway{
		cfg:         cfg,
		ring:        newRing(cfg.Backends, cfg.Replicas),
		client:      &http.Client{Transport: tr},
		debugClient: &http.Client{Transport: dbg, Timeout: 5 * time.Second},
		log:         log,
		start:       time.Now(),
		traceBase:   (uint64(time.Now().Unix()) << 21) & (1<<52 - 1),
		epoch:       time.Now(),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		hRender:     telemetry.NewHistogram("gateway_render", ""),
		hAttempt:    telemetry.NewHistogram("gateway_attempt", ""),
		healthStop:  make(chan struct{}),
	}
	if cfg.TraceRing >= 0 {
		g.tracer = telemetry.NewTracer(cfg.TraceRing, 0, 0)
	}
	g.spanPool.New = func() any { return telemetry.NewFrameSpans(g.epoch) }
	for i, u := range cfg.Backends {
		b := &backend{url: u, idx: i, breaker: newBreaker(cfg.BreakerFailures, cfg.BreakerCooldown)}
		b.healthy.Store(true)
		g.backends = append(g.backends, b)
	}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("/render", g.handleRender)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/readyz", g.handleReadyz)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	g.mux.HandleFunc("/debug/dash", g.handleDash)
	g.mux.HandleFunc("/debug/spans", g.handleSpans)
	g.mux.HandleFunc("/debug/trace", g.handleTrace)
	g.mux.HandleFunc("/debug/slo", g.handleSLO)
	g.setupFleetSLO()
	g.healthWG.Add(1)
	go g.healthLoop()
	if g.cfg.FleetInterval > 0 {
		g.healthWG.Add(1)
		go g.fleetLoop()
	}
	return g, nil
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// BeginDrain flips the gateway's own /readyz unready while /render
// keeps serving — the same two-phase drain contract as the backends.
func (g *Gateway) BeginDrain() { g.draining.Store(true) }

// Close drains: flips unready, stops the health loop, waits for
// in-flight proxied requests and their attempts, and releases the
// backend keep-alive pools.
func (g *Gateway) Close() {
	g.BeginDrain()
	select {
	case <-g.healthStop:
	default:
		close(g.healthStop)
	}
	g.healthWG.Wait()
	g.inflight.Wait()
	g.client.CloseIdleConnections()
	g.debugClient.CloseIdleConnections()
}

// healthLoop polls every backend's /readyz on the configured interval.
func (g *Gateway) healthLoop() {
	defer g.healthWG.Done()
	ticker := time.NewTicker(g.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.healthStop:
			return
		case <-ticker.C:
			g.CheckNow()
		}
	}
}

// CheckNow runs one synchronous health-check round over all backends —
// the health loop's body, exported so tests (and operators via
// /healthz?check=1) can force a round instead of sleeping through the
// interval.
func (g *Gateway) CheckNow() {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.checkBackend(b)
		}(b)
	}
	wg.Wait()
}

// checkBackend probes one backend's /readyz and applies the
// fail/rise-threshold hysteresis.
func (g *Gateway) checkBackend(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.HealthTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/readyz", nil)
	if err == nil {
		resp, rerr := g.client.Do(req)
		if rerr == nil {
			ok = resp.StatusCode >= 200 && resp.StatusCode < 300
			resp.Body.Close()
		}
	}
	if ok {
		b.consecFail = 0
		b.consecOK++
		if !b.healthy.Load() && b.consecOK >= g.cfg.RiseThreshold {
			b.healthy.Store(true)
			b.checksUp.Add(1)
			g.log.Info("backend up", "backend", b.url)
		}
	} else {
		b.consecOK = 0
		b.consecFail++
		if b.healthy.Load() && b.consecFail >= g.cfg.FailThreshold {
			b.healthy.Store(false)
			b.checksDn.Add(1)
			g.log.Warn("backend down", "backend", b.url, "consecutive_failures", b.consecFail)
		}
	}
}

// handleHealthz is the gateway's own liveness: a summary of the fleet.
// ?check=1 forces a synchronous health round first.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("check") == "1" {
		g.CheckNow()
	}
	type bh struct {
		URL      string `json:"url"`
		Healthy  bool   `json:"healthy"`
		Breaker  string `json:"breaker"`
		InFlight int64  `json:"in_flight"`
	}
	doc := struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Backends      []bh    `json:"backends"`
	}{Status: "ok", UptimeSeconds: time.Since(g.start).Seconds()}
	if g.draining.Load() {
		doc.Status = "draining"
	}
	for _, b := range g.backends {
		doc.Backends = append(doc.Backends, bh{
			URL: b.url, Healthy: b.healthy.Load(),
			Breaker: b.breaker.State().String(), InFlight: b.inflight.Load(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// handleReadyz is the gateway's routability: ready while not draining
// and at least one backend is eligible for traffic.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if g.draining.Load() {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "draining"})
		return
	}
	for _, b := range g.backends {
		if b.healthy.Load() && b.breaker.State() != BreakerOpen {
			json.NewEncoder(w).Encode(map[string]any{"ready": true})
			return
		}
	}
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "no eligible backend"})
}

// hedgeDelay is the learned tail-latency threshold that arms a hedged
// attempt: the configured quantile of successful attempt latencies,
// clamped to [HedgeMin, HedgeMax]. Until 32 attempts have been
// observed the ceiling is used, so a cold gateway never hedges
// aggressively on noise.
func (g *Gateway) hedgeDelay() time.Duration {
	snap := g.hAttempt.Snapshot()
	if snap.Count < 32 {
		return g.cfg.HedgeMax
	}
	d := time.Duration(snap.Quantile(g.cfg.HedgeQuantile))
	if d < g.cfg.HedgeMin {
		d = g.cfg.HedgeMin
	}
	if d > g.cfg.HedgeMax {
		d = g.cfg.HedgeMax
	}
	return d
}

// jitter returns a full-jitter backoff delay for the nth retry
// (0-based): uniform in [0, min(RetryMaxDelay, RetryBaseDelay<<n)).
func (g *Gateway) jitter(n int) time.Duration {
	max := g.cfg.RetryBaseDelay << uint(n)
	if max > g.cfg.RetryMaxDelay || max <= 0 {
		max = g.cfg.RetryMaxDelay
	}
	g.rngMu.Lock()
	d := time.Duration(g.rng.Int63n(int64(max) + 1))
	g.rngMu.Unlock()
	return d
}
