package gateway

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"shearwarp/internal/telemetry"
)

// backendMetrics is one backend's row in the JSON snapshot.
type backendMetrics struct {
	URL          string `json:"url"`
	Healthy      bool   `json:"healthy"`
	Breaker      string `json:"breaker"`
	BreakerOpens int64  `json:"breaker_opens"`
	InFlight     int64  `json:"in_flight"`
	Requests     int64  `json:"requests"`
	Failures     int64  `json:"failures"`
	Retries      int64  `json:"retries"`
	Hedges       int64  `json:"hedges"`
	HedgeWins    int64  `json:"hedge_wins"`
	ChecksUp     int64  `json:"health_transitions_up"`
	ChecksDown   int64  `json:"health_transitions_down"`
}

// gatewayMetrics is the /metrics JSON document.
type gatewayMetrics struct {
	UptimeSeconds float64                   `json:"uptime_seconds"`
	Requests      int64                     `json:"requests"`
	Successes     int64                     `json:"successes"`
	Retries       int64                     `json:"retries"`
	Hedges        int64                     `json:"hedges"`
	HedgeWins     int64                     `json:"hedge_wins"`
	NoBackend     int64                     `json:"no_backend"`
	Exhausted     int64                     `json:"attempts_exhausted"`
	HedgeDelayMS  float64                   `json:"hedge_delay_ms"`
	Render        telemetry.QuantileSummary `json:"render"`
	Attempt       telemetry.QuantileSummary `json:"attempt"`
	Backends      []backendMetrics          `json:"backends"`
	Fleet         fleetMetrics              `json:"fleet"`
	RecentTraces  []recentTraceRef          `json:"recent_traces,omitempty"`
}

func (g *Gateway) metrics() gatewayMetrics {
	m := gatewayMetrics{
		UptimeSeconds: time.Since(g.start).Seconds(),
		Requests:      g.requests.Load(),
		Successes:     g.successes.Load(),
		Retries:       g.retried.Load(),
		Hedges:        g.hedged.Load(),
		HedgeWins:     g.hedgeWins.Load(),
		NoBackend:     g.noBackend.Load(),
		Exhausted:     g.exhausted.Load(),
		HedgeDelayMS:  float64(g.hedgeDelay()) / 1e6,
		Render:        g.hRender.Snapshot().Summary(),
		Attempt:       g.hAttempt.Snapshot().Summary(),
	}
	for _, b := range g.backends {
		m.Backends = append(m.Backends, backendMetrics{
			URL:          b.url,
			Healthy:      b.healthy.Load(),
			Breaker:      b.breaker.State().String(),
			BreakerOpens: b.breaker.opens.Load(),
			InFlight:     b.inflight.Load(),
			Requests:     b.requests.Load(),
			Failures:     b.failures.Load(),
			Retries:      b.retries.Load(),
			Hedges:       b.hedges.Load(),
			HedgeWins:    b.hedgeWins.Load(),
			ChecksUp:     b.checksUp.Load(),
			ChecksDown:   b.checksDn.Load(),
		})
	}
	m.Fleet = g.fleetSnapshot()
	m.RecentTraces = g.recentTraces(10)
	return m
}

// handleMetrics serves the gateway's counters: JSON by default, the
// Prometheus text exposition format when the Accept header asks for
// text/plain (same content negotiation as the backends' /metrics).
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if acceptsPromText(r.Header.Get("Accept")) {
		g.writeProm(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(g.metrics())
}

// writeProm emits the shearwarpgw_* series.
func (g *Gateway) writeProm(w http.ResponseWriter) {
	w.Header().Set("Content-Type", telemetry.PromContentType)
	pw := telemetry.NewPromWriter(w)

	pw.Counter("shearwarpgw_requests_total", "Proxied /render requests completed.", float64(g.requests.Load()))
	pw.Counter("shearwarpgw_success_total", "Proxied /render requests answered 2xx.", float64(g.successes.Load()))
	pw.Counter("shearwarpgw_retries_total", "Retry attempts launched.", float64(g.retried.Load()))
	pw.Counter("shearwarpgw_hedges_total", "Hedged attempts launched.", float64(g.hedged.Load()))
	pw.Counter("shearwarpgw_hedge_wins_total", "Requests won by the hedged attempt.", float64(g.hedgeWins.Load()))
	pw.Counter("shearwarpgw_no_backend_total", "Requests rejected with no eligible backend.", float64(g.noBackend.Load()))
	pw.Counter("shearwarpgw_attempts_exhausted_total", "Requests that failed after every allowed attempt.", float64(g.exhausted.Load()))
	pw.Gauge("shearwarpgw_hedge_delay_seconds", "Current learned tail-latency hedge threshold.", float64(g.hedgeDelay())/1e9)
	pw.Gauge("shearwarpgw_draining", "1 while the gateway is draining.", b2f(g.draining.Load()))

	// Per-backend series, one contiguous group per metric name.
	for _, b := range g.backends {
		pw.Gauge("shearwarpgw_backend_healthy", "Health checker verdict (1 = routable).", b2f(b.healthy.Load()), "backend", b.url)
	}
	for _, b := range g.backends {
		pw.Gauge("shearwarpgw_backend_breaker_state", "Circuit breaker state: 0 closed, 1 open, 2 half-open.", float64(b.breaker.State()), "backend", b.url)
	}
	for _, b := range g.backends {
		pw.Counter("shearwarpgw_backend_breaker_opens_total", "Circuit breaker open transitions (ejections).", float64(b.breaker.opens.Load()), "backend", b.url)
	}
	for _, b := range g.backends {
		pw.Gauge("shearwarpgw_backend_inflight", "Attempts currently running against the backend.", float64(b.inflight.Load()), "backend", b.url)
	}
	for _, b := range g.backends {
		pw.Counter("shearwarpgw_backend_requests_total", "Attempts started against the backend.", float64(b.requests.Load()), "backend", b.url)
	}
	for _, b := range g.backends {
		pw.Counter("shearwarpgw_backend_failures_total", "Attempts that failed against the backend.", float64(b.failures.Load()), "backend", b.url)
	}
	for _, b := range g.backends {
		pw.Counter("shearwarpgw_backend_retries_total", "Retry attempts that landed on the backend.", float64(b.retries.Load()), "backend", b.url)
	}
	for _, b := range g.backends {
		pw.Counter("shearwarpgw_backend_hedges_total", "Hedged attempts that landed on the backend.", float64(b.hedges.Load()), "backend", b.url)
	}
	for _, b := range g.backends {
		pw.Counter("shearwarpgw_backend_hedge_wins_total", "Hedged attempts on the backend that won their request.", float64(b.hedgeWins.Load()), "backend", b.url)
	}

	pw.Histogram("shearwarpgw_render_seconds", "End-to-end proxied render latency (2xx only).", g.hRender.Snapshot())
	pw.Histogram("shearwarpgw_attempt_seconds", "Per-attempt backend latency (successful attempts).", g.hAttempt.Snapshot())

	// Fleet aggregation: the merged cross-backend view from the scrape
	// loop. The histogram is the exact union of the backends' render
	// observations (shared bucket boundaries), not a quantile average.
	fm := g.fleetSnapshot()
	if fm.ScrapedAgoSeconds >= 0 {
		pw.Gauge("shearwarpgw_fleet_scraped_backends", "Backends whose last fleet scrape succeeded.", float64(fm.Scraped))
		pw.Gauge("shearwarpgw_fleet_scrape_age_seconds", "Age of the last fleet scrape round.", fm.ScrapedAgoSeconds)
		pw.Counter("shearwarpgw_fleet_frames_total", "Frames rendered across the fleet (summed at last scrape).", float64(fm.Frames))
		pw.Gauge("shearwarpgw_fleet_cache_hit_rate", "Fleet-wide preprocessing cache hit rate.", fm.CacheHitRate)
		pw.Histogram("shearwarpgw_fleet_render_seconds", "Merged fleet render latency (exact cross-backend union).",
			g.mergedHistogramLocked("render_seconds"))
	}
}

// mergedHistogramLocked snapshots the fleet state and merges one named
// histogram — the prom exporter's accessor.
func (g *Gateway) mergedHistogramLocked(name string) *telemetry.HistogramSnapshot {
	g.fleet.mu.Lock()
	states := append([]fleetBackendState(nil), g.fleet.backends...)
	g.fleet.mu.Unlock()
	return g.mergedHistogram(states, name)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// acceptsPromText mirrors the backends' content negotiation: Prometheus
// scrapers send text/plain (or openmetrics) Accept headers; everything
// else gets JSON.
func acceptsPromText(accept string) bool {
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}
