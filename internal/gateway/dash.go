package gateway

import "net/http"

// handleDash is GET /debug/dash: a single self-contained HTML fleet
// dashboard. Like the backends' dash, everything is inlined and every
// data fetch is a relative path to this gateway's own /metrics, so the
// page needs no network access beyond the gateway itself. The backend
// panel is the point: per-backend health, breaker state, in-flight
// load, and the retry/hedge traffic each one is absorbing.
func (g *Gateway) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashHTML))
}

const dashHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>shearwarpgw fleet</title>
<style>
  body { font: 13px/1.5 ui-monospace, monospace; margin: 0; background: #10141a; color: #cdd6e4; }
  header { padding: 10px 16px; background: #161c26; display: flex; gap: 24px; align-items: baseline; flex-wrap: wrap; }
  header h1 { font-size: 15px; margin: 0; color: #7fd1b9; }
  header span { color: #8b98ab; }
  header b { color: #cdd6e4; font-weight: 600; }
  main { padding: 12px 16px; display: grid; gap: 16px; max-width: 1100px; }
  section h2 { font-size: 12px; text-transform: uppercase; letter-spacing: .08em; color: #8b98ab; margin: 0 0 6px; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: right; padding: 2px 10px; border-bottom: 1px solid #222b38; white-space: nowrap; }
  th:first-child, td:first-child { text-align: left; }
  td:first-child { color: #7fb3d1; }
  th { color: #8b98ab; font-weight: 500; }
  .ok { color: #7fd1b9; }
  .bad { color: #d17f7f; }
  .warn { color: #d1c97f; }
  #err { color: #d17f7f; }
</style>
</head>
<body>
<header>
  <h1>shearwarpgw</h1>
  <span>uptime <b id="uptime">&ndash;</b></span>
  <span>requests <b id="requests">&ndash;</b></span>
  <span>success <b id="successes">&ndash;</b></span>
  <span>retries <b id="retries">&ndash;</b></span>
  <span>hedges <b id="hedges">&ndash;</b> (wins <b id="hedgewins">&ndash;</b>)</span>
  <span>hedge delay <b id="hedgedelay">&ndash;</b></span>
  <span id="err"></span>
</header>
<main>
<section>
  <h2>Backends</h2>
  <table id="backends">
    <thead><tr>
      <th>backend</th><th>health</th><th>breaker</th><th>opens</th><th>in-flight</th>
      <th>requests</th><th>failures</th><th>retries</th><th>hedges</th><th>hedge wins</th>
    </tr></thead>
    <tbody></tbody>
  </table>
</section>
<section>
  <h2>Latency (proxied renders)</h2>
  <table id="latency">
    <thead><tr><th>series</th><th>count</th><th>mean</th><th>p50</th><th>p90</th><th>p99</th><th>max</th></tr></thead>
    <tbody></tbody>
  </table>
</section>
<section>
  <h2>Fleet (merged backend metrics) <span id="fleetage" style="text-transform:none;letter-spacing:0"></span></h2>
  <table id="fleet">
    <thead><tr>
      <th>backend</th><th>frames</th><th>renders</th><th>p50</th><th>p99</th><th>p99 skew</th><th>cache hit</th>
    </tr></thead>
    <tbody></tbody>
  </table>
</section>
<section>
  <h2>Recent traces</h2>
  <table id="traces">
    <thead><tr><th>trace</th><th>status</th><th>duration</th><th>attempts</th><th>label</th></tr></thead>
    <tbody></tbody>
  </table>
</section>
</main>
<script>
function fmtDur(s) {
  if (s >= 3600) return (s/3600).toFixed(1) + "h";
  if (s >= 60) return (s/60).toFixed(1) + "m";
  return s.toFixed(0) + "s";
}
function ms(v) { return v >= 1000 ? (v/1000).toFixed(2) + "s" : v.toFixed(1) + "ms"; }
function latRow(name, q) {
  return "<tr><td>" + name + "</td><td>" + q.count + "</td><td>" + ms(q.mean_ms) +
    "</td><td>" + ms(q.p50_ms) + "</td><td>" + ms(q.p90_ms) + "</td><td>" +
    ms(q.p99_ms) + "</td><td>" + ms(q.max_ms) + "</td></tr>";
}
async function tick() {
  try {
    const m = await (await fetch("/metrics")).json();
    document.getElementById("uptime").textContent = fmtDur(m.uptime_seconds);
    document.getElementById("requests").textContent = m.requests;
    document.getElementById("successes").textContent = m.successes;
    document.getElementById("retries").textContent = m.retries;
    document.getElementById("hedges").textContent = m.hedges;
    document.getElementById("hedgewins").textContent = m.hedge_wins;
    document.getElementById("hedgedelay").textContent = ms(m.hedge_delay_ms);
    let rows = "";
    for (const b of m.backends || []) {
      const h = b.healthy ? '<span class="ok">up</span>' : '<span class="bad">down</span>';
      const brk = b.breaker === "closed" ? '<span class="ok">closed</span>'
        : b.breaker === "open" ? '<span class="bad">open</span>'
        : '<span class="warn">half-open</span>';
      rows += "<tr><td>" + b.url + "</td><td>" + h + "</td><td>" + brk + "</td><td>" +
        b.breaker_opens + "</td><td>" + b.in_flight + "</td><td>" + b.requests + "</td><td>" +
        b.failures + "</td><td>" + b.retries + "</td><td>" + b.hedges + "</td><td>" +
        b.hedge_wins + "</td></tr>";
    }
    document.querySelector("#backends tbody").innerHTML = rows;
    document.querySelector("#latency tbody").innerHTML =
      latRow("render (e2e)", m.render) + latRow("attempt", m.attempt);
    const f = m.fleet || {};
    let frows = "";
    if (f.scraped_ago_seconds >= 0) {
      document.getElementById("fleetage").textContent =
        "(scraped " + f.scraped_ago_seconds.toFixed(1) + "s ago, " + f.scraped + "/" + f.backends + " up)";
      const fq = f.render || {};
      frows += "<tr><td><b>fleet</b></td><td>" + f.frames + "</td><td>" + (fq.count || 0) +
        "</td><td>" + ms(fq.p50_ms || 0) + "</td><td>" + ms(fq.p99_ms || 0) +
        "</td><td>&ndash;</td><td>" + ((f.cache_hit_rate || 0) * 100).toFixed(1) + "%</td></tr>";
      for (const b of f.per_backend || []) {
        if (b.err) {
          frows += "<tr><td>" + b.url + '</td><td colspan="6" class="bad">' + b.err + "</td></tr>";
          continue;
        }
        const skew = b.p99_skew_vs_fleet || 0;
        const sk = skew > 1.5 ? '<span class="bad">' + skew.toFixed(2) + "x</span>"
          : skew > 1.1 ? '<span class="warn">' + skew.toFixed(2) + "x</span>"
          : skew.toFixed(2) + "x";
        frows += "<tr><td>" + b.url + "</td><td>" + b.frames + "</td><td>" + b.render_count +
          "</td><td>" + ms(b.render_p50_ms) + "</td><td>" + ms(b.render_p99_ms) +
          "</td><td>" + sk + "</td><td>" + ((b.cache_hit_rate || 0) * 100).toFixed(1) + "%</td></tr>";
      }
    } else {
      document.getElementById("fleetage").textContent = "(no scrape yet)";
    }
    document.querySelector("#fleet tbody").innerHTML = frows;
    let trows = "";
    for (const t of m.recent_traces || []) {
      const cls = t.status >= 200 && t.status < 300 ? "ok" : "bad";
      trows += '<tr><td><a style="color:#7fb3d1" href="' + t.trace_url + '">' + t.id +
        '</a></td><td><span class="' + cls + '">' + t.status + "</span></td><td>" +
        ms(t.dur_ms) + "</td><td>" + t.attempts + "</td><td>" + t.label + "</td></tr>";
    }
    document.querySelector("#traces tbody").innerHTML = trows;
    document.getElementById("err").textContent = "";
  } catch (e) {
    document.getElementById("err").textContent = "fetch failed: " + e;
  }
}
tick();
setInterval(tick, 1000);
</script>
</body>
</html>
`
