package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"testing"
	"time"

	"shearwarp"
	"shearwarp/internal/faultinject"
	"shearwarp/internal/server"
	"shearwarp/internal/telemetry"
	"shearwarp/internal/vol"
)

// realBackend is a genuine shearwarpd core (server.Server) on a real
// listener, with kill/restart so the chaos soak can take backends away
// mid-request and bring them back on the same address.
type realBackend struct {
	t    *testing.T
	srv  *server.Server
	hs   *http.Server
	addr string
	url  string
}

func startRealBackend(t *testing.T) *realBackend {
	t.Helper()
	return startRealBackendCfg(t, server.Config{Procs: 1, MaxConcurrent: 4, PoolSize: 2}, "mri")
}

// startRealBackendCfg is the configurable form: arbitrary server config
// (fault injectors, trace rings) and any number of volume names, all
// registered over the same MRI phantom so affinity tests can pick a
// volume whose ring order starts on the backend they want.
func startRealBackendCfg(t *testing.T, cfg server.Config, volumes ...string) *realBackend {
	t.Helper()
	s := server.New(cfg)
	v := vol.MRIBrain(16)
	for _, name := range volumes {
		if err := s.RegisterVolume(name, v.Data, v.Nx, v.Ny, v.Nz, shearwarp.TransferMRI); err != nil {
			t.Fatal(err)
		}
	}
	b := &realBackend{t: t, srv: s}
	b.listen("")
	t.Cleanup(func() {
		b.kill()
		s.Close()
	})
	return b
}

func (b *realBackend) listen(addr string) {
	b.t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		b.t.Fatal(err)
	}
	b.addr = ln.Addr().String()
	b.url = "http://" + b.addr
	b.hs = &http.Server{Handler: b.srv.Handler()}
	go b.hs.Serve(ln)
}

// kill closes the listener and every live connection abruptly — the
// mid-stream death the retry policy must absorb.
func (b *realBackend) kill() {
	if b.hs != nil {
		b.hs.Close()
		b.hs = nil
	}
}

// restart rebinds the same address; the server core (and its warm
// preprocessing cache) survives, as a quickly-restarted daemon's would
// not — but the gateway can't tell and shouldn't care.
func (b *realBackend) restart() {
	b.t.Helper()
	b.kill()
	// The old port can linger briefly; retry the bind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", b.addr)
		if err == nil {
			b.hs = &http.Server{Handler: b.srv.Handler()}
			go b.hs.Serve(ln)
			return
		}
		if time.Now().After(deadline) {
			b.t.Fatalf("rebinding %s: %v", b.addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// soakOracle renders every soak viewpoint directly with the library —
// the bytes any 2xx gateway response must match exactly.
func soakOracle(t *testing.T, n int) [][]byte {
	t.Helper()
	v := vol.MRIBrain(16)
	r, err := shearwarp.NewRenderer(v.Data, v.Nx, v.Ny, v.Nz, shearwarp.Config{
		Algorithm: shearwarp.NewParallel, Procs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	frames := make([][]byte, n)
	for i := range frames {
		im, _ := r.Render(soakYaw(i), soakPitch(i))
		var buf bytes.Buffer
		if err := im.WritePPM(&buf); err != nil {
			t.Fatal(err)
		}
		frames[i] = buf.Bytes()
	}
	return frames
}

func soakYaw(i int) float64   { return float64((i * 37) % 360) }
func soakPitch(i int) float64 { return float64(-60 + (i%7)*20) }

// TestChaosSoak is the end-to-end fleet chaos suite: for each of 24
// seeds, two real backends behind a gateway whose transport injects a
// seed-derived fault schedule (kills, delays, shed bursts, mid-stream
// truncations), plus — on every fourth seed — a real backend kill and
// restart mid-traffic. Every 2xx response must be byte-identical to a
// direct library render, the gateway must strand no in-flight
// accounting, and the whole churn must leak no goroutines.
func TestChaosSoak(t *testing.T) {
	const requests = 24
	oracle := soakOracle(t, requests)
	before := runtime.NumGoroutine()

	for seed := int64(1); seed <= 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			backs := []*realBackend{startRealBackend(t), startRealBackend(t)}
			base := http.DefaultTransport.(*http.Transport).Clone()
			faults := faultinject.FromSeedTransport(seed)
			g, err := New(Config{
				Backends:        []string{backs[0].url, backs[1].url},
				HealthInterval:  25 * time.Millisecond,
				HealthTimeout:   250 * time.Millisecond,
				FailThreshold:   1,
				RiseThreshold:   1,
				MaxAttempts:     4,
				RetryBaseDelay:  time.Millisecond,
				RetryMaxDelay:   20 * time.Millisecond,
				HedgeQuantile:   0.95,
				HedgeMin:        time.Millisecond,
				HedgeMax:        250 * time.Millisecond,
				BreakerFailures: 3,
				BreakerCooldown: 50 * time.Millisecond,
				DefaultBudget:   10 * time.Second,
				Transport:       faultinject.NewTransport(faults, base),
				Seed:            seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()

			ok := 0
			var traceIDs []uint64
			for i := 0; i < requests; i++ {
				if seed%4 == 0 {
					switch i {
					case 8:
						backs[int(seed/4)%2].kill()
					case 16:
						backs[int(seed/4)%2].restart()
					}
				}
				path := fmt.Sprintf("/render?volume=mri&alg=new&yaw=%g&pitch=%g",
					soakYaw(i), soakPitch(i))
				resp, body := gwGet(t, g, path)
				if resp.StatusCode == http.StatusOK {
					ok++
					if !bytes.Equal(body, oracle[i]) {
						t.Fatalf("seed %d request %d: 2xx body differs from direct render (%d vs %d bytes) — byte-identity violated",
							seed, i, len(body), len(oracle[i]))
					}
					id, err := strconv.ParseUint(resp.Header.Get(server.TraceHeader), 10, 64)
					if err != nil || id == 0 {
						t.Fatalf("seed %d request %d: 2xx without a fleet trace id (%q)",
							seed, i, resp.Header.Get(server.TraceHeader))
					}
					traceIDs = append(traceIDs, id)
				}
			}
			// The policy exists to absorb this much chaos: a couple of
			// bounded fault rules and one backend outage must not take
			// down a meaningful fraction of traffic.
			if ok < requests/2 {
				t.Fatalf("seed %d: only %d/%d requests succeeded", seed, ok, requests)
			}
			// Observability under the same chaos: every 2xx trace ID must
			// resolve through the stitcher — the gateway row plus a row
			// per attempt, at least one backend span set (the winner
			// reached a live backend by definition), cancelled hedge
			// losers marked rather than dropped.
			verifySoakTraces(t, g, seed, traceIDs)
			// No double-charged slots: every attempt that started also
			// finished, on every backend.
			g.Close()
			for _, b := range g.backends {
				if n := b.inflight.Load(); n != 0 {
					t.Fatalf("seed %d: backend %s in-flight = %d after drain, want 0", seed, b.url, n)
				}
			}
		})
	}

	waitFor(t, "goroutines return to baseline after soak", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

// verifySoakTraces resolves each 2xx fleet trace ID through the
// gateway's /debug/trace stitcher and checks the cross-process
// contract held under chaos.
func verifySoakTraces(t *testing.T, g *Gateway, seed int64, ids []uint64) {
	t.Helper()
	for _, id := range ids {
		// Hedge losers drain in the background; the trace publishes when
		// the last one does.
		var tr *telemetry.Trace
		waitFor(t, fmt.Sprintf("seed %d trace %d published", seed, id), func() bool {
			tr = g.tracer.Find(id)
			return tr != nil
		})
		resp, body := gwGet(t, g, fmt.Sprintf("/debug/trace?id=%d", id))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: /debug/trace?id=%d = %d (%s)", seed, id, resp.StatusCode, body)
		}
		var doc stitchedDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("seed %d trace %d: stitched doc is not valid JSON: %v", seed, id, err)
		}
		if len(doc.Stitch.Rows) != 1+len(tr.Attempts) {
			t.Fatalf("seed %d trace %d: %d stitched rows for %d attempts — an attempt was dropped",
				seed, id, len(doc.Stitch.Rows), len(tr.Attempts))
		}
		withSpans := 0
		for i, a := range tr.Attempts {
			row := doc.Stitch.Rows[i+1]
			if row.Canceled != a.Canceled {
				t.Fatalf("seed %d trace %d row %d: canceled=%v but attempt canceled=%v — loser mislabeled",
					seed, id, i+1, row.Canceled, a.Canceled)
			}
			if row.Err == "" && row.Spans > 0 {
				withSpans++
			} else if row.Err == "" {
				t.Fatalf("seed %d trace %d row %d: no spans and no error mark: %+v", seed, id, i+1, row)
			}
		}
		if withSpans < 1 {
			t.Fatalf("seed %d trace %d: no backend span set resolved (rows %+v)", seed, id, doc.Stitch.Rows)
		}
	}
}

// TestChaosSoakDirectOracle double-checks the oracle itself: a clean
// backend (no faults, no gateway) must already produce those bytes,
// so soak mismatches implicate the gateway and not the fixture.
func TestChaosSoakDirectOracle(t *testing.T) {
	oracle := soakOracle(t, 4)
	b := startRealBackend(t)
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 4; i++ {
		url := fmt.Sprintf("%s/render?volume=mri&alg=new&yaw=%g&pitch=%g",
			b.url, soakYaw(i), soakPitch(i))
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("direct render %d = %d (%v)", i, resp.StatusCode, err)
		}
		if !bytes.Equal(body, oracle[i]) {
			t.Fatalf("direct render %d differs from library render — fixture broken", i)
		}
	}
	client.CloseIdleConnections()
}
