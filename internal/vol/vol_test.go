package vol

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	v := New(3, 4, 5)
	if got := v.VoxelCount(); got != 60 {
		t.Fatalf("VoxelCount = %d, want 60", got)
	}
	if len(v.Data) != 60 {
		t.Fatalf("len(Data) = %d, want 60", len(v.Data))
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,1,1) did not panic")
		}
	}()
	New(0, 1, 1)
}

func TestIndexSetAtRoundTrip(t *testing.T) {
	v := New(4, 5, 6)
	v.Set(1, 2, 3, 200)
	if got := v.At(1, 2, 3); got != 200 {
		t.Fatalf("At(1,2,3) = %d, want 200", got)
	}
	if got := v.Data[v.Index(1, 2, 3)]; got != 200 {
		t.Fatalf("Data[Index] = %d, want 200", got)
	}
}

func TestAtOutOfBoundsIsZero(t *testing.T) {
	v := New(2, 2, 2)
	for i := range v.Data {
		v.Data[i] = 255
	}
	coords := [][3]int{{-1, 0, 0}, {0, -1, 0}, {0, 0, -1}, {2, 0, 0}, {0, 2, 0}, {0, 0, 2}}
	for _, c := range coords {
		if got := v.At(c[0], c[1], c[2]); got != 0 {
			t.Errorf("At(%v) = %d, want 0", c, got)
		}
	}
}

func TestIndexIsXFastest(t *testing.T) {
	v := New(7, 5, 3)
	if v.Index(1, 0, 0)-v.Index(0, 0, 0) != 1 {
		t.Error("x stride != 1")
	}
	if v.Index(0, 1, 0)-v.Index(0, 0, 0) != 7 {
		t.Error("y stride != Nx")
	}
	if v.Index(0, 0, 1)-v.Index(0, 0, 0) != 35 {
		t.Error("z stride != Nx*Ny")
	}
}

func TestSampleAtLatticePointsExact(t *testing.T) {
	v := New(4, 4, 4)
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				v.Set(x, y, z, uint8(x*16+y*4+z))
			}
		}
	}
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				got := v.Sample(float64(x), float64(y), float64(z))
				want := float64(x*16 + y*4 + z)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("Sample(%d,%d,%d) = %g, want %g", x, y, z, got, want)
				}
			}
		}
	}
}

func TestSampleMidpointIsAverage(t *testing.T) {
	v := New(2, 1, 1)
	v.Set(0, 0, 0, 10)
	v.Set(1, 0, 0, 30)
	if got := v.Sample(0.5, 0, 0); math.Abs(got-20) > 1e-9 {
		t.Fatalf("midpoint sample = %g, want 20", got)
	}
}

// Trilinear interpolation of a linear field reproduces the field exactly
// everywhere inside the lattice — a property test over sample positions.
func TestSampleReproducesLinearField(t *testing.T) {
	const n = 8
	v := New(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v.Set(x, y, z, uint8(2*x+3*y+4*z))
			}
		}
	}
	f := func(xs, ys, zs uint16) bool {
		// Map to interior positions in [0, n-1.001].
		x := float64(xs) / 65535.0 * (n - 1.001)
		y := float64(ys) / 65535.0 * (n - 1.001)
		z := float64(zs) / 65535.0 * (n - 1.001)
		got := v.Sample(x, y, z)
		want := 2*x + 3*y + 4*z
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResampleIdentity(t *testing.T) {
	v := MRIBrainDims(12, 12, 8)
	r := v.Resample(12, 12, 8)
	if !bytes.Equal(v.Data, r.Data) {
		t.Fatal("identity resample changed samples")
	}
}

func TestResampleDoublesDimensions(t *testing.T) {
	v := MRIBrainDims(10, 10, 6)
	r := v.Resample(20, 20, 12)
	if r.Nx != 20 || r.Ny != 20 || r.Nz != 12 {
		t.Fatalf("resampled dims = %dx%dx%d", r.Nx, r.Ny, r.Nz)
	}
	// Corners map exactly onto old corners.
	if r.At(0, 0, 0) != v.At(0, 0, 0) {
		t.Error("corner (0,0,0) not preserved")
	}
	if r.At(19, 19, 11) != v.At(9, 9, 5) {
		t.Error("far corner not preserved")
	}
}

func TestResamplePreservesRange(t *testing.T) {
	v := CTHeadDims(16, 16, 16)
	r := v.Resample(23, 9, 31)
	st := r.ComputeStats()
	if st.Max > 255 {
		t.Fatal("impossible: max > 255")
	}
	// Interpolation cannot exceed the source max.
	src := v.ComputeStats()
	if st.Max > src.Max {
		t.Fatalf("resample max %d exceeds source max %d", st.Max, src.Max)
	}
}

func TestGradientOfLinearRamp(t *testing.T) {
	v := New(8, 8, 8)
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				v.Set(x, y, z, uint8(10*x))
			}
		}
	}
	gx, gy, gz := v.Gradient(4, 4, 4)
	if math.Abs(gx-10) > 1e-9 || math.Abs(gy) > 1e-9 || math.Abs(gz) > 1e-9 {
		t.Fatalf("gradient = (%g,%g,%g), want (10,0,0)", gx, gy, gz)
	}
}

func TestMRIBrainDeterministic(t *testing.T) {
	a := MRIBrain(16)
	b := MRIBrain(16)
	if !bytes.Equal(a.Data, b.Data) {
		t.Fatal("MRIBrain is not deterministic")
	}
}

func TestMRIBrainShape(t *testing.T) {
	v := MRIBrain(32)
	if v.Nx != 32 || v.Ny != 32 {
		t.Fatalf("dims = %dx%d, want 32x32", v.Nx, v.Ny)
	}
	if v.Nz < 18 || v.Nz > 24 {
		t.Fatalf("Nz = %d, want ~0.65*32", v.Nz)
	}
	st := v.ComputeStats()
	// Head is embedded in air: a meaningful zero fraction, but a substantial
	// non-zero interior too.
	if st.ZeroFrac < 0.2 || st.ZeroFrac > 0.8 {
		t.Fatalf("ZeroFrac = %.2f, want head-in-air shape", st.ZeroFrac)
	}
	// Center voxel is inside the brain.
	if v.At(16, 16, v.Nz/2) == 0 {
		t.Fatal("center voxel is empty")
	}
	// Corner voxel is air.
	if v.At(0, 0, 0) != 0 {
		t.Fatal("corner voxel is not air")
	}
}

func TestCTHeadShape(t *testing.T) {
	v := CTHead(32)
	if v.Nx != 32 || v.Ny != 32 || v.Nz != 32 {
		t.Fatalf("CTHead dims = %dx%dx%d, want cube", v.Nx, v.Ny, v.Nz)
	}
	st := v.ComputeStats()
	if st.Max < 200 {
		t.Fatalf("CT max density %d, want bright bone > 200", st.Max)
	}
	if v.At(0, 0, 0) != 0 {
		t.Fatal("corner voxel is not air")
	}
}

func TestVolumeIOBoundTrip(t *testing.T) {
	v := MRIBrainDims(9, 7, 5)
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nx != 9 || r.Ny != 7 || r.Nz != 5 {
		t.Fatalf("round-trip dims = %dx%dx%d", r.Nx, r.Ny, r.Nz)
	}
	if !bytes.Equal(r.Data, v.Data) {
		t.Fatal("round-trip data mismatch")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	_, err := ReadFrom(bytes.NewReader([]byte("not a volume file....")))
	if err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadFromRejectsTruncated(t *testing.T) {
	v := MRIBrainDims(8, 8, 8)
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadFrom(bytes.NewReader(tr)); err == nil {
		t.Fatal("expected error for truncated data")
	}
}

func TestHash3Spread(t *testing.T) {
	// The noise hash should not collapse neighbouring coordinates.
	seen := map[uint32]bool{}
	for i := uint32(0); i < 64; i++ {
		seen[hash3(i, i+1, i+2)] = true
	}
	if len(seen) < 60 {
		t.Fatalf("hash3 produced only %d distinct values of 64", len(seen))
	}
}
