// Package vol provides the 3-D volume substrate for the shear-warp
// reproduction: the raw scalar volume type, deterministic synthetic
// phantoms standing in for the paper's MRI-brain and CT-head scans, the
// trilinear resampling tool the paper used to build its 512^3 and 640^3
// inputs, and central-difference gradient estimation.
package vol

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Volume is a dense 3-D scalar field with 8-bit samples, indexed as
// Data[z*Ny*Nx + y*Nx + x]. X varies fastest, matching the scanline
// storage order the shear-warp algorithm streams through.
type Volume struct {
	Nx, Ny, Nz int
	Data       []uint8
}

// New returns a zero-filled volume of the given dimensions.
func New(nx, ny, nz int) *Volume {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("vol: invalid dimensions %dx%dx%d", nx, ny, nz))
	}
	return &Volume{Nx: nx, Ny: ny, Nz: nz, Data: make([]uint8, nx*ny*nz)}
}

// Index returns the flat index of voxel (x, y, z).
func (v *Volume) Index(x, y, z int) int { return (z*v.Ny+y)*v.Nx + x }

// At returns the sample at (x, y, z). Out-of-bounds coordinates read as 0,
// which lets samplers treat the volume as embedded in empty space.
func (v *Volume) At(x, y, z int) uint8 {
	if x < 0 || y < 0 || z < 0 || x >= v.Nx || y >= v.Ny || z >= v.Nz {
		return 0
	}
	return v.Data[(z*v.Ny+y)*v.Nx+x]
}

// Set stores a sample at (x, y, z); the coordinates must be in bounds.
func (v *Volume) Set(x, y, z int, s uint8) { v.Data[(z*v.Ny+y)*v.Nx+x] = s }

// VoxelCount returns the total number of voxels.
func (v *Volume) VoxelCount() int { return v.Nx * v.Ny * v.Nz }

// Sample performs trilinear interpolation at a continuous position given in
// voxel coordinates. Positions outside the volume blend with 0.
func (v *Volume) Sample(x, y, z float64) float64 {
	x0, y0, z0 := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
	fx, fy, fz := x-float64(x0), y-float64(y0), z-float64(z0)
	c00 := float64(v.At(x0, y0, z0))*(1-fx) + float64(v.At(x0+1, y0, z0))*fx
	c10 := float64(v.At(x0, y0+1, z0))*(1-fx) + float64(v.At(x0+1, y0+1, z0))*fx
	c01 := float64(v.At(x0, y0, z0+1))*(1-fx) + float64(v.At(x0+1, y0, z0+1))*fx
	c11 := float64(v.At(x0, y0+1, z0+1))*(1-fx) + float64(v.At(x0+1, y0+1, z0+1))*fx
	c0 := c00*(1-fy) + c10*fy
	c1 := c01*(1-fy) + c11*fy
	return c0*(1-fz) + c1*fz
}

// Resample returns a new volume of the requested dimensions produced by
// trilinear interpolation, the same operation as the resampling tool the
// paper used to up-sample its 256^3 scan to 512^3 and 640^3.
func (v *Volume) Resample(nx, ny, nz int) *Volume {
	out := New(nx, ny, nz)
	sx := float64(v.Nx-1) / float64(max(nx-1, 1))
	sy := float64(v.Ny-1) / float64(max(ny-1, 1))
	sz := float64(v.Nz-1) / float64(max(nz-1, 1))
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				s := v.Sample(float64(x)*sx, float64(y)*sy, float64(z)*sz)
				out.Data[(z*ny+y)*nx+x] = uint8(math.Round(clamp(s, 0, 255)))
			}
		}
	}
	return out
}

// Gradient estimates the density gradient at voxel (x, y, z) with central
// differences. The result is in sample units per voxel.
func (v *Volume) Gradient(x, y, z int) (gx, gy, gz float64) {
	gx = (float64(v.At(x+1, y, z)) - float64(v.At(x-1, y, z))) * 0.5
	gy = (float64(v.At(x, y+1, z)) - float64(v.At(x, y-1, z))) * 0.5
	gz = (float64(v.At(x, y, z+1)) - float64(v.At(x, y, z-1))) * 0.5
	return
}

// Stats summarizes the sample distribution of a volume.
type Stats struct {
	NonZero  int     // voxels with sample > 0
	Mean     float64 // mean sample value over all voxels
	Max      uint8   // largest sample value
	ZeroFrac float64 // fraction of exactly-zero voxels
}

// ComputeStats scans the volume once and returns its distribution summary.
func (v *Volume) ComputeStats() Stats {
	var st Stats
	var sum int64
	for _, s := range v.Data {
		if s > 0 {
			st.NonZero++
		}
		if s > st.Max {
			st.Max = s
		}
		sum += int64(s)
	}
	n := len(v.Data)
	st.Mean = float64(sum) / float64(n)
	st.ZeroFrac = float64(n-st.NonZero) / float64(n)
	return st
}

const volMagic = 0x564f4c31 // "VOL1"

// WriteTo serializes the volume in the repository's simple .vol format:
// a 16-byte header (magic, nx, ny, nz as little-endian uint32) followed by
// raw samples in storage order.
func (v *Volume) WriteTo(w io.Writer) (int64, error) {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], volMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(v.Nx))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(v.Ny))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(v.Nz))
	n, err := w.Write(hdr[:])
	written := int64(n)
	if err != nil {
		return written, err
	}
	n, err = w.Write(v.Data)
	return written + int64(n), err
}

// ReadFrom deserializes a volume written by WriteTo.
func ReadFrom(r io.Reader) (*Volume, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("vol: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != volMagic {
		return nil, fmt.Errorf("vol: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	nx := int(binary.LittleEndian.Uint32(hdr[4:]))
	ny := int(binary.LittleEndian.Uint32(hdr[8:]))
	nz := int(binary.LittleEndian.Uint32(hdr[12:]))
	const maxDim = 4096
	if nx <= 0 || ny <= 0 || nz <= 0 || nx > maxDim || ny > maxDim || nz > maxDim {
		return nil, fmt.Errorf("vol: implausible dimensions %dx%dx%d", nx, ny, nz)
	}
	v := New(nx, ny, nz)
	if _, err := io.ReadFull(r, v.Data); err != nil {
		return nil, fmt.Errorf("vol: reading samples: %w", err)
	}
	return v, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
