package vol

import "math"

// The synthetic phantoms below stand in for the paper's MRI brain and CT
// head scans (see DESIGN.md, "Substitutions"). What the algorithms are
// sensitive to is the *statistics* of classified medical data, which the
// paper calls out explicitly:
//
//   - 70-95% of voxels are transparent after classification, so run-length
//     coherence pays off;
//   - per-scanline compositing cost is strongly non-uniform and hump-shaped
//     (Figure 10), with empty scanlines at the top and bottom of the
//     intermediate image;
//   - density is spatially coherent (long runs), with thin high-gradient
//     shells (skin, skull) around bulky interior tissue.
//
// Both generators are fully deterministic: the same dimensions always yield
// the same volume, so every experiment is reproducible bit-for-bit.

// MRIBrain synthesizes an n x n x round(0.65*n) volume shaped like the MRI
// head scans used in the paper (their 256 set is 256x256x167, ratio ~0.65).
// It contains a skin shell, a skull shell, cerebrospinal fluid, and a brain
// whose density is modulated by smooth sinusoidal "folds", plus a pair of
// low-density ventricles.
func MRIBrain(n int) *Volume {
	nz := int(math.Round(float64(n) * 0.65))
	if nz < 1 {
		nz = 1
	}
	return MRIBrainDims(n, n, nz)
}

// MRIBrainDims synthesizes the MRI head phantom at explicit dimensions.
func MRIBrainDims(nx, ny, nz int) *Volume {
	v := New(nx, ny, nz)
	cx, cy, cz := float64(nx-1)/2, float64(ny-1)/2, float64(nz-1)/2
	// Head ellipsoid radii as fractions of each dimension.
	rx, ry, rz := 0.44*float64(nx), 0.46*float64(ny), 0.47*float64(nz)
	for z := 0; z < nz; z++ {
		pz := (float64(z) - cz) / rz
		for y := 0; y < ny; y++ {
			py := (float64(y) - cy) / ry
			row := v.Data[(z*ny+y)*nx : (z*ny+y)*nx+nx]
			for x := 0; x < nx; x++ {
				px := (float64(x) - cx) / rx
				row[x] = mriSample(px, py, pz, float64(x), float64(y), float64(z))
			}
		}
	}
	return v
}

// mriSample evaluates the MRI phantom at normalized head coordinates
// (px,py,pz in [-1,1] at the head surface) and absolute voxel coordinates
// (for the fold modulation and noise).
func mriSample(px, py, pz, ax, ay, az float64) uint8 {
	r := math.Sqrt(px*px + py*py + pz*pz)
	switch {
	case r > 1.0:
		return 0 // air
	case r > 0.96:
		// Skin: soft tissue, mid density.
		return noisy(95, ax, ay, az, 10)
	case r > 0.90:
		// Skull: dark in MRI (low water content).
		return noisy(35, ax, ay, az, 6)
	case r > 0.86:
		// Cerebrospinal fluid: bright rim.
		return noisy(150, ax, ay, az, 10)
	}
	// Brain tissue: gray/white matter with smooth sinusoidal folds so that
	// classified opacity varies coherently (long runs, non-uniform scanline
	// cost). Ventricles near the center are low density.
	vx, vy, vz := px, py*1.2, pz*1.4
	vent := math.Sqrt((vx*vx)/0.06 + (vy-0.05)*(vy-0.05)/0.02 + vz*vz/0.10)
	if vent < 1.0 {
		return noisy(55, ax, ay, az, 8)
	}
	folds := math.Sin(ax*0.22) * math.Cos(ay*0.19) * math.Sin(az*0.16)
	base := 120 + 45*folds*(1.0-r)
	return noisy(base, ax, ay, az, 12)
}

// CTHead synthesizes an n^3 CT head phantom (the paper's CT sets are cubic:
// 128^3, 256^3, 511^3). CT contrast is dominated by bone: a bright skull
// shell, bright jaw and spine structures, and faint soft tissue, giving a
// higher transparent fraction than the MRI set once classified.
func CTHead(n int) *Volume { return CTHeadDims(n, n, n) }

// CTHeadDims synthesizes the CT head phantom at explicit dimensions.
func CTHeadDims(nx, ny, nz int) *Volume {
	v := New(nx, ny, nz)
	cx, cy, cz := float64(nx-1)/2, float64(ny-1)/2, float64(nz-1)/2
	rx, ry, rz := 0.42*float64(nx), 0.45*float64(ny), 0.47*float64(nz)
	for z := 0; z < nz; z++ {
		pz := (float64(z) - cz) / rz
		for y := 0; y < ny; y++ {
			py := (float64(y) - cy) / ry
			row := v.Data[(z*ny+y)*nx : (z*ny+y)*nx+nx]
			for x := 0; x < nx; x++ {
				px := (float64(x) - cx) / rx
				row[x] = ctSample(px, py, pz, float64(x), float64(y), float64(z))
			}
		}
	}
	return v
}

func ctSample(px, py, pz, ax, ay, az float64) uint8 {
	r := math.Sqrt(px*px + py*py + pz*pz)
	switch {
	case r > 1.0:
		return 0
	case r > 0.97:
		// Skin in CT: faint.
		return noisy(45, ax, ay, az, 6)
	case r > 0.88:
		// Skull: bone, very bright.
		return noisy(230, ax, ay, az, 10)
	}
	// Jaw/teeth: a bright arc low in the head.
	jaw := math.Sqrt(px*px/0.45 + (py-0.35)*(py-0.35)/0.06 + (pz+0.55)*(pz+0.55)/0.12)
	if jaw > 0.85 && jaw < 1.0 {
		return noisy(240, ax, ay, az, 8)
	}
	// Spine stub entering the head base.
	spine := math.Sqrt(px*px/0.02 + (py-0.25)*(py-0.25)/0.02)
	if spine < 1.0 && pz < -0.55 {
		return noisy(225, ax, ay, az, 8)
	}
	// Soft tissue: mostly below typical CT bone thresholds.
	return noisy(40+12*math.Sin(ax*0.11)*math.Cos(az*0.13), ax, ay, az, 7)
}

// noisy adds deterministic, spatially-uncorrelated noise of the given
// amplitude to a base density and clamps to [0, 255].
func noisy(base, x, y, z, amp float64) uint8 {
	h := hash3(uint32(x), uint32(y), uint32(z))
	n := (float64(h&0xffff)/65535.0 - 0.5) * 2 * amp
	s := base + n
	if s < 0 {
		s = 0
	}
	if s > 255 {
		s = 255
	}
	return uint8(s)
}

// hash3 is a small deterministic integer hash used for phantom noise.
func hash3(x, y, z uint32) uint32 {
	h := x*0x8da6b343 + y*0xd8163841 + z*0xcb1ab31f
	h ^= h >> 13
	h *= 0x9e3779b1
	h ^= h >> 16
	return h
}
