package par

import "sync"

// Scan computes the inclusive prefix sum of src into dst (dst[i] = sum of
// src[0..i]) serially; dst and src may alias. It returns the total.
func Scan(dst, src []int64) int64 {
	var acc int64
	for i, v := range src {
		acc += v
		dst[i] = acc
	}
	return acc
}

// PrefixSum computes the inclusive prefix sum of src into dst using nprocs
// goroutines with the classic two-pass blocked algorithm: each worker scans
// a block, block totals are scanned serially, then each worker offsets its
// block. It matches Scan exactly and is the parallel prefix operation the
// new algorithm uses to build the cumulative cost profile (section 4.3).
func PrefixSum(dst, src []int64, nprocs int) int64 {
	n := len(src)
	if nprocs < 1 {
		nprocs = 1
	}
	if nprocs == 1 || n < 2*nprocs {
		return Scan(dst, src)
	}
	block := (n + nprocs - 1) / nprocs
	totals := make([]int64, nprocs)

	var wg sync.WaitGroup
	for p := 0; p < nprocs; p++ {
		lo, hi := p*block, min((p+1)*block, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			var acc int64
			for i := lo; i < hi; i++ {
				acc += src[i]
				dst[i] = acc
			}
			totals[p] = acc
		}(p, lo, hi)
	}
	wg.Wait()

	var carry int64
	for p := range totals {
		totals[p], carry = carry, carry+totals[p]
	}
	total := carry

	for p := 1; p < nprocs; p++ {
		lo, hi := p*block, min((p+1)*block, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(off int64, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				dst[i] += off
			}
		}(totals[p], lo, hi)
	}
	wg.Wait()
	return total
}

// Barrier is a reusable counting barrier for the native parallel renderers.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase int
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants have called Wait; the barrier then
// resets for reuse.
func (b *Barrier) Wait() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for b.phase == phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
