// Package par provides the parallel runtime building blocks shared by the
// old and new parallel shear-warp algorithms: task-queue state machines
// (interleaved chunks with stealing; contiguous bands with chunked
// stealing), a reusable barrier, and parallel prefix sums.
//
// The queue types are deliberately pure state machines with no internal
// locking: the native renderers guard them with a real sync.Mutex, while
// the simulation drivers guard them with a simulated lock so queue and
// steal contention shows up in simulated time. Both paths share the exact
// scheduling logic.
package par

// Chunk is a half-open range of scanlines [Lo, Hi).
type Chunk struct{ Lo, Hi int }

// Interleaved is the old algorithm's compositing assignment: scanlines
// grouped into fixed-size chunks, assigned round-robin to processors, with
// stealing when a processor's own chunks run out.
type Interleaved struct {
	chunks []Chunk
	owner  []int
	taken  []bool
	// ownPos[p] is the next index to scan in p's own chunk sequence;
	// stealPos[p] the next global index to scan when stealing.
	ownPos   []int
	stealPos []int
	nprocs   int
	left     int
}

// NewInterleaved builds the assignment of rows [lo, hi) into chunks of
// chunkSize scanlines for nprocs processors.
func NewInterleaved(lo, hi, chunkSize, nprocs int) *Interleaved {
	if chunkSize < 1 {
		chunkSize = 1
	}
	q := &Interleaved{
		nprocs:   nprocs,
		ownPos:   make([]int, nprocs),
		stealPos: make([]int, nprocs),
	}
	for s := lo; s < hi; s += chunkSize {
		e := s + chunkSize
		if e > hi {
			e = hi
		}
		q.chunks = append(q.chunks, Chunk{s, e})
		q.owner = append(q.owner, (len(q.chunks)-1)%nprocs)
	}
	q.taken = make([]bool, len(q.chunks))
	q.left = len(q.chunks)
	return q
}

// TakeOwn hands processor p its next own chunk, if any.
func (q *Interleaved) TakeOwn(p int) (Chunk, bool) {
	for i := q.ownPos[p]; i < len(q.chunks); i++ {
		if q.owner[i] == p {
			q.ownPos[p] = i + 1
			if !q.taken[i] {
				q.taken[i] = true
				q.left--
				return q.chunks[i], true
			}
		}
	}
	q.ownPos[p] = len(q.chunks)
	return Chunk{}, false
}

// TakeSteal hands processor p any remaining chunk (task stealing). It scans
// round-robin from p's last steal position so thieves spread out.
func (q *Interleaved) TakeSteal(p int) (Chunk, bool) {
	if q.left == 0 {
		return Chunk{}, false
	}
	n := len(q.chunks)
	for step := 0; step < n; step++ {
		i := (q.stealPos[p] + step) % n
		if !q.taken[i] {
			q.taken[i] = true
			q.left--
			q.stealPos[p] = (i + 1) % n
			return q.chunks[i], true
		}
	}
	return Chunk{}, false
}

// Next returns p's next unit of work: an own chunk if one remains,
// otherwise a stolen chunk. The second return distinguishes the two (true
// when the chunk was stolen).
func (q *Interleaved) Next(p int) (Chunk, bool, bool) {
	if c, ok := q.TakeOwn(p); ok {
		return c, false, true
	}
	if c, ok := q.TakeSteal(p); ok {
		return c, true, true
	}
	return Chunk{}, false, false
}

// Remaining reports how many chunks are still unclaimed.
func (q *Interleaved) Remaining() int { return q.left }

// Bands is the new algorithm's compositing assignment: one contiguous
// partition of scanlines per processor, consumed from the front in steal-
// chunk units; idle processors steal chunks from the tail of the band with
// the most remaining work. Completion of each band is tracked so the
// band's owner can enter the warp phase without a global barrier.
type Bands struct {
	next, hi  []int // unclaimed region of each band
	remaining []int // rows of each band not yet composited
	stealSize int
}

// NewBands builds band state from partition boundaries (boundaries[p] to
// boundaries[p+1] is processor p's band). stealSize is the number of
// scanlines taken per steal.
func NewBands(boundaries []int, stealSize int) *Bands {
	b := &Bands{}
	b.Reset(boundaries, stealSize)
	return b
}

// Reset reinitializes the band state in place from new boundaries, reusing
// the slices so the per-frame setup of the steady-state render loop does
// not allocate.
func (b *Bands) Reset(boundaries []int, stealSize int) {
	if stealSize < 1 {
		stealSize = 1
	}
	p := len(boundaries) - 1
	if cap(b.next) >= p {
		b.next, b.hi, b.remaining = b.next[:p], b.hi[:p], b.remaining[:p]
	} else {
		b.next = make([]int, p)
		b.hi = make([]int, p)
		b.remaining = make([]int, p)
	}
	b.stealSize = stealSize
	for i := 0; i < p; i++ {
		b.next[i] = boundaries[i]
		b.hi[i] = boundaries[i+1]
		b.remaining[i] = boundaries[i+1] - boundaries[i]
	}
}

// TakeOwn hands band owner p its next chunk of rows from the front of its
// band.
func (b *Bands) TakeOwn(p int) (Chunk, bool) {
	if b.next[p] >= b.hi[p] {
		return Chunk{}, false
	}
	lo := b.next[p]
	hi := lo + b.stealSize
	if hi > b.hi[p] {
		hi = b.hi[p]
	}
	b.next[p] = hi
	return Chunk{lo, hi}, true
}

// TakeSteal steals a chunk from the tail of the band with the most
// unclaimed rows, returning the chunk and the band it belongs to.
func (b *Bands) TakeSteal() (Chunk, int, bool) {
	victim, most := -1, 0
	for i := range b.next {
		if r := b.hi[i] - b.next[i]; r > most {
			victim, most = i, r
		}
	}
	if victim < 0 {
		return Chunk{}, 0, false
	}
	hi := b.hi[victim]
	lo := hi - b.stealSize
	if lo < b.next[victim] {
		lo = b.next[victim]
	}
	b.hi[victim] = lo
	return Chunk{lo, hi}, victim, true
}

// MarkDone records that n rows of band p have been composited; it returns
// true when the band just completed. Completion is idempotent: once a band
// has completed, further reports (a cancelled worker re-reporting rows it
// had claimed before the frame aborted) are no-ops rather than panics, and
// never signal a second completion.
func (b *Bands) MarkDone(p, n int) bool {
	if b.remaining[p] == 0 {
		return false
	}
	b.remaining[p] -= n
	if b.remaining[p] <= 0 {
		b.remaining[p] = 0
		return true
	}
	return false
}

// Complete reports whether band p has been fully composited.
func (b *Bands) Complete(p int) bool { return b.remaining[p] == 0 }

// UnclaimedTotal reports the rows not yet claimed across all bands.
func (b *Bands) UnclaimedTotal() int {
	t := 0
	for i := range b.next {
		t += b.hi[i] - b.next[i]
	}
	return t
}
