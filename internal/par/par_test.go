package par

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestInterleavedCoversAllRows(t *testing.T) {
	for _, tc := range []struct{ lo, hi, chunk, procs int }{
		{0, 100, 4, 3}, {5, 17, 5, 4}, {0, 1, 1, 8}, {0, 64, 64, 2}, {10, 10, 3, 2},
	} {
		q := NewInterleaved(tc.lo, tc.hi, tc.chunk, tc.procs)
		covered := make([]int, tc.hi)
		for p := 0; ; p = (p + 1) % tc.procs {
			c, _, ok := q.Next(p)
			if !ok {
				break
			}
			for r := c.Lo; r < c.Hi; r++ {
				covered[r]++
			}
		}
		for r := tc.lo; r < tc.hi; r++ {
			if covered[r] != 1 {
				t.Fatalf("%+v: row %d covered %d times", tc, r, covered[r])
			}
		}
		if q.Remaining() != 0 {
			t.Fatalf("%+v: %d chunks left", tc, q.Remaining())
		}
	}
}

func TestInterleavedOwnershipIsRoundRobin(t *testing.T) {
	q := NewInterleaved(0, 40, 4, 4)
	// Processor 2's own chunks are rows [8,12), [24,28), ...
	c, stolen, ok := q.Next(2)
	if !ok || stolen || c.Lo != 8 || c.Hi != 12 {
		t.Fatalf("proc 2 first chunk = %+v stolen=%v", c, stolen)
	}
	c, stolen, ok = q.Next(2)
	if !ok || stolen || c.Lo != 24 {
		t.Fatalf("proc 2 second chunk = %+v", c)
	}
}

func TestInterleavedStealingAfterOwnExhausted(t *testing.T) {
	q := NewInterleaved(0, 30, 3, 2)
	// Drain proc 0's own chunks.
	for {
		_, stolen, ok := q.Next(0)
		if !ok {
			t.Fatal("queue drained before stealing observed")
		}
		if stolen {
			break // started stealing proc 1's chunks
		}
	}
	if q.Remaining() >= 5 {
		t.Fatalf("stealing began with %d chunks left, expected fewer", q.Remaining())
	}
}

func TestInterleavedConcurrentSafetyUnderMutex(t *testing.T) {
	// The state machine guarded by a mutex must distribute each row once
	// even with goroutine contention.
	const H, P = 997, 8
	q := NewInterleaved(0, H, 3, P)
	var mu sync.Mutex
	var covered [H]int32
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				mu.Lock()
				c, _, ok := q.Next(p)
				mu.Unlock()
				if !ok {
					return
				}
				for r := c.Lo; r < c.Hi; r++ {
					atomic.AddInt32(&covered[r], 1)
				}
			}
		}(p)
	}
	wg.Wait()
	for r := range covered {
		if covered[r] != 1 {
			t.Fatalf("row %d covered %d times", r, covered[r])
		}
	}
}

func TestInterleavedTakeStealRoundRobinWraparound(t *testing.T) {
	// 6 chunks of 2 rows for 2 procs: owners alternate 0,1,0,1,0,1.
	q := NewInterleaved(0, 12, 2, 2)

	// A thief's position advances past each stolen chunk and wraps to 0
	// after it takes the last chunk, so later steals resume the scan from
	// the front rather than rescanning a stale tail.
	for want := 0; want < 5; want++ {
		c, ok := q.TakeSteal(0)
		if !ok || c.Lo != 2*want {
			t.Fatalf("steal %d = %+v ok=%v, want Lo %d", want, c, ok, 2*want)
		}
		if q.stealPos[0] != want+1 {
			t.Fatalf("after steal %d: stealPos %d, want %d", want, q.stealPos[0], want+1)
		}
	}
	c, ok := q.TakeSteal(0)
	if !ok || c.Lo != 10 {
		t.Fatalf("last steal = %+v ok=%v", c, ok)
	}
	if q.stealPos[0] != 0 {
		t.Fatalf("stealPos after final chunk = %d, want wraparound to 0", q.stealPos[0])
	}
	if q.Remaining() != 0 {
		t.Fatalf("remaining = %d", q.Remaining())
	}

	// A full-circle scan from a mid-queue position terminates empty-handed
	// instead of looping or double-issuing.
	if _, ok := q.TakeSteal(0); ok {
		t.Fatal("steal succeeded on a drained queue")
	}
	if _, ok := q.TakeSteal(1); ok {
		t.Fatal("steal by a fresh thief succeeded on a drained queue")
	}
}

func TestInterleavedThievesSpreadOut(t *testing.T) {
	// Two thieves stealing alternately resume from their own positions, so
	// they interleave over distinct chunks instead of racing for the same
	// lowest index.
	q := NewInterleaved(0, 12, 2, 2)
	a, _ := q.TakeSteal(0) // chunk 0, pos[0]=1
	b, _ := q.TakeSteal(1) // pos[1]=0 scans: 0 taken, chunk 1
	c, _ := q.TakeSteal(0) // pos[0]=1: 1 taken, chunk 2
	d, _ := q.TakeSteal(1) // pos[1]=2: 2 taken, chunk 3
	got := []int{a.Lo, b.Lo, c.Lo, d.Lo}
	want := []int{0, 2, 4, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("steal sequence %v, want Lo %v", got, want)
		}
	}
}

func TestBandsStealAccountingConcurrent(t *testing.T) {
	// P workers drain the bands concurrently under a mutex (the renderers'
	// locking discipline): every row must be claimed exactly once, steal
	// counts must equal the rows lost by victims, and every band must
	// reach Complete. Exercised under -race in CI.
	const H, P, stealSize = 1024, 8, 3
	boundaries := []int{0, 10, 520, 530, 700, 701, 980, 1000, H} // deliberately skewed
	b := NewBands(boundaries, stealSize)
	var mu sync.Mutex
	var covered [H]int32
	var ownRows, stolenRows [P]int64 // indexed by the band the rows came from
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				mu.Lock()
				c, ok := b.TakeOwn(p)
				mu.Unlock()
				if !ok {
					break
				}
				atomic.AddInt64(&ownRows[p], int64(c.Hi-c.Lo))
				for r := c.Lo; r < c.Hi; r++ {
					atomic.AddInt32(&covered[r], 1)
				}
				mu.Lock()
				b.MarkDone(p, c.Hi-c.Lo)
				mu.Unlock()
			}
			for {
				mu.Lock()
				c, band, ok := b.TakeSteal()
				mu.Unlock()
				if !ok {
					break
				}
				if c.Hi-c.Lo < 1 || c.Hi-c.Lo > stealSize {
					t.Errorf("stolen chunk %+v exceeds steal size %d", c, stealSize)
					return
				}
				atomic.AddInt64(&stolenRows[band], int64(c.Hi-c.Lo))
				for r := c.Lo; r < c.Hi; r++ {
					atomic.AddInt32(&covered[r], 1)
				}
				mu.Lock()
				b.MarkDone(band, c.Hi-c.Lo)
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()

	for r := 0; r < H; r++ {
		if covered[r] != 1 {
			t.Fatalf("row %d covered %d times", r, covered[r])
		}
	}
	if b.UnclaimedTotal() != 0 {
		t.Fatalf("unclaimed rows left: %d", b.UnclaimedTotal())
	}
	var total int64
	for p := 0; p < P; p++ {
		if !b.Complete(p) {
			t.Fatalf("band %d not complete", p)
		}
		bandRows := int64(boundaries[p+1] - boundaries[p])
		if ownRows[p]+stolenRows[p] != bandRows {
			t.Fatalf("band %d: own %d + stolen %d != band size %d",
				p, ownRows[p], stolenRows[p], bandRows)
		}
		total += ownRows[p] + stolenRows[p]
	}
	if total != H {
		t.Fatalf("accounted rows %d, want %d", total, H)
	}
}

func TestBandsOwnConsumptionAndCompletion(t *testing.T) {
	b := NewBands([]int{0, 10, 25, 30}, 4)
	var got []Chunk
	for {
		c, ok := b.TakeOwn(1)
		if !ok {
			break
		}
		got = append(got, c)
	}
	want := []Chunk{{10, 14}, {14, 18}, {18, 22}, {22, 25}}
	if len(got) != len(want) {
		t.Fatalf("chunks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunk %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if b.Complete(1) {
		t.Fatal("band complete before MarkDone")
	}
	for _, c := range got {
		b.MarkDone(1, c.Hi-c.Lo)
	}
	if !b.Complete(1) {
		t.Fatal("band not complete after all rows done")
	}
}

func TestBandsStealFromLargest(t *testing.T) {
	b := NewBands([]int{0, 4, 30, 34}, 5)
	c, victim, ok := b.TakeSteal()
	if !ok || victim != 1 {
		t.Fatalf("steal victim = %d, want 1 (largest band)", victim)
	}
	if c.Lo != 25 || c.Hi != 30 {
		t.Fatalf("stolen chunk %+v, want tail [25,30)", c)
	}
}

func TestBandsFullCoverageWithStealing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		h := 1 + rng.Intn(200)
		p := 1 + rng.Intn(8)
		// Random monotone boundaries.
		bd := make([]int, p+1)
		bd[p] = h
		for i := 1; i < p; i++ {
			bd[i] = rng.Intn(h + 1)
		}
		for i := 1; i <= p; i++ {
			if bd[i] < bd[i-1] {
				bd[i] = bd[i-1]
			}
		}
		b := NewBands(bd, 1+rng.Intn(7))
		covered := make([]int, h)
		claim := func(c Chunk, band int) {
			for r := c.Lo; r < c.Hi; r++ {
				covered[r]++
			}
			b.MarkDone(band, c.Hi-c.Lo)
		}
		// Interleave own-take and steal randomly.
		for {
			if rng.Intn(2) == 0 {
				pr := rng.Intn(p)
				if c, ok := b.TakeOwn(pr); ok {
					claim(c, pr)
					continue
				}
			}
			c, band, ok := b.TakeSteal()
			if !ok {
				if b.UnclaimedTotal() == 0 {
					break
				}
				continue
			}
			claim(c, band)
		}
		for r := 0; r < h; r++ {
			if covered[r] != 1 {
				t.Fatalf("trial %d: row %d covered %d times", trial, r, covered[r])
			}
		}
		for i := 0; i < p; i++ {
			if !b.Complete(i) {
				t.Fatalf("trial %d: band %d incomplete", trial, i)
			}
		}
	}
}

func TestScanMatchesPrefixSum(t *testing.T) {
	f := func(vals []int16, procs uint8) bool {
		src := make([]int64, len(vals))
		for i, v := range vals {
			src[i] = int64(v)
		}
		p := int(procs)%7 + 1
		a := make([]int64, len(src))
		b := make([]int64, len(src))
		ta := Scan(a, src)
		tb := PrefixSum(b, src, p)
		if ta != tb {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSumLarge(t *testing.T) {
	src := make([]int64, 100000)
	for i := range src {
		src[i] = int64(i % 13)
	}
	dst := make([]int64, len(src))
	total := PrefixSum(dst, src, 8)
	var want int64
	for _, v := range src {
		want += v
	}
	if total != want {
		t.Fatalf("total %d, want %d", total, want)
	}
	if dst[len(dst)-1] != want {
		t.Fatal("last prefix element != total")
	}
}

func TestPrefixSumInPlace(t *testing.T) {
	src := []int64{1, 2, 3, 4, 5}
	Scan(src, src)
	want := []int64{1, 3, 6, 10, 15}
	for i := range want {
		if src[i] != want[i] {
			t.Fatalf("in-place scan[%d] = %d, want %d", i, src[i], want[i])
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const P, rounds = 6, 20
	b := NewBarrier(P)
	var phase int32
	var wg sync.WaitGroup
	errs := make(chan string, P*rounds)
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got := atomic.LoadInt32(&phase)
				if got != int32(r) {
					errs <- "phase skew detected"
				}
				b.Wait()
				// One participant advances the phase; use a CAS race where
				// only the winner increments.
				atomic.CompareAndSwapInt32(&phase, int32(r), int32(r+1))
				b.Wait()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if phase != rounds {
		t.Fatalf("phase = %d, want %d", phase, rounds)
	}
}

// TestBandsMarkDoneIdempotentUnderCancellation is the regression test for
// the "band over-completed" panic: a worker that claimed a chunk before a
// frame aborted may re-report rows of a band that has already completed.
// The re-report must be a no-op — no panic, and no second completion
// signal (a double completion would double-release the band's warp wait).
func TestBandsMarkDoneIdempotentUnderCancellation(t *testing.T) {
	b := NewBands([]int{0, 2}, 1)
	if !b.MarkDone(0, 2) {
		t.Fatal("band did not report completion")
	}
	if b.MarkDone(0, 1) {
		t.Fatal("re-report after completion signalled a second completion")
	}
	if !b.Complete(0) {
		t.Fatal("band no longer complete after re-report")
	}
	// Over-reporting while incomplete (a cancelled chunk counted twice)
	// clamps at complete rather than going negative.
	b2 := NewBands([]int{0, 3}, 2)
	if b2.MarkDone(0, 2) {
		t.Fatal("band complete with one row remaining")
	}
	if !b2.MarkDone(0, 2) {
		t.Fatal("clamped over-report did not complete the band")
	}
	if b2.MarkDone(0, 1) {
		t.Fatal("post-completion report signalled completion again")
	}
}
