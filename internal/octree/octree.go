// Package octree builds the min-max octree over a classified volume that
// the ray-casting baseline uses for space leaping — the coherence data
// structure the paper contrasts with the shear-warp algorithm's run-length
// encoding (section 2): "Ray casting algorithms use an octree
// representation of the volume ... so interesting regions of the volume can
// be easily found."
package octree

import "shearwarp/internal/classify"

// LeafSize is the edge length in voxels of the finest octree cells.
const LeafSize = 4

// Tree is a min-max opacity pyramid. Level 0 is the leaf grid (volume
// diced into LeafSize cubes); each higher level halves the grid. A cell is
// "empty" when its maximum opacity is below the classification threshold,
// so rays can leap over it.
type Tree struct {
	Levels []Level
	// MinOpacity mirrors the classified volume's transparency threshold.
	MinOpacity uint8
}

// Level is one resolution of the pyramid.
type Level struct {
	Nx, Ny, Nz int
	CellSize   int // voxels per cell edge at this level
	MaxAlpha   []uint8
}

// Build constructs the pyramid from a classified volume.
func Build(c *classify.Classified) *Tree {
	t := &Tree{MinOpacity: c.MinOpacity}

	// Leaf level: max opacity per LeafSize^3 cell.
	nx := (c.Nx + LeafSize - 1) / LeafSize
	ny := (c.Ny + LeafSize - 1) / LeafSize
	nz := (c.Nz + LeafSize - 1) / LeafSize
	leaf := Level{Nx: nx, Ny: ny, Nz: nz, CellSize: LeafSize,
		MaxAlpha: make([]uint8, nx*ny*nz)}
	for z := 0; z < c.Nz; z++ {
		cz := z / LeafSize
		for y := 0; y < c.Ny; y++ {
			cy := y / LeafSize
			rowC := (cz*ny + cy) * nx
			rowV := (z*c.Ny + y) * c.Nx
			for x := 0; x < c.Nx; x++ {
				a := uint8(c.Voxels[rowV+x] >> 24)
				ci := rowC + x/LeafSize
				if a > leaf.MaxAlpha[ci] {
					leaf.MaxAlpha[ci] = a
				}
			}
		}
	}
	t.Levels = append(t.Levels, leaf)

	// Upper levels: max over 2x2x2 children.
	for {
		prev := &t.Levels[len(t.Levels)-1]
		if prev.Nx <= 1 && prev.Ny <= 1 && prev.Nz <= 1 {
			break
		}
		nx := (prev.Nx + 1) / 2
		ny := (prev.Ny + 1) / 2
		nz := (prev.Nz + 1) / 2
		lvl := Level{Nx: nx, Ny: ny, Nz: nz, CellSize: prev.CellSize * 2,
			MaxAlpha: make([]uint8, nx*ny*nz)}
		for z := 0; z < prev.Nz; z++ {
			for y := 0; y < prev.Ny; y++ {
				for x := 0; x < prev.Nx; x++ {
					a := prev.MaxAlpha[(z*prev.Ny+y)*prev.Nx+x]
					pi := ((z/2)*ny+y/2)*nx + x/2
					if a > lvl.MaxAlpha[pi] {
						lvl.MaxAlpha[pi] = a
					}
				}
			}
		}
		t.Levels = append(t.Levels, lvl)
	}
	return t
}

// Height returns the number of pyramid levels (the octree height, which
// the paper notes the ray caster's working set is proportional to).
func (t *Tree) Height() int { return len(t.Levels) }

// EmptyAt reports whether the cell containing voxel (x, y, z) at the given
// level is empty, along with the cell's voxel-space bounds [lo, hi).
// Coordinates outside the volume report empty with a unit cell.
func (t *Tree) EmptyAt(level, x, y, z int) (empty bool, lox, loy, loz, hix, hiy, hiz int) {
	l := &t.Levels[level]
	cx, cy, cz := x/l.CellSize, y/l.CellSize, z/l.CellSize
	if cx < 0 || cy < 0 || cz < 0 || cx >= l.Nx || cy >= l.Ny || cz >= l.Nz {
		return true, x, y, z, x + 1, y + 1, z + 1
	}
	a := l.MaxAlpha[(cz*l.Ny+cy)*l.Nx+cx]
	return a < t.MinOpacity,
		cx * l.CellSize, cy * l.CellSize, cz * l.CellSize,
		(cx + 1) * l.CellSize, (cy + 1) * l.CellSize, (cz + 1) * l.CellSize
}

// LeapLevel finds the coarsest level at which the cell containing
// (x, y, z) is empty, returning -1 when even the leaf cell has opaque
// content. Rays use the returned cell bounds to advance in one step.
func (t *Tree) LeapLevel(x, y, z int) int {
	best := -1
	for lv := 0; lv < len(t.Levels); lv++ {
		empty, _, _, _, _, _, _ := t.EmptyAt(lv, x, y, z)
		if !empty {
			break
		}
		best = lv
	}
	return best
}
