package octree

import (
	"testing"

	"shearwarp/internal/classify"
	"shearwarp/internal/vol"
)

func classified(t *testing.T, n int) *classify.Classified {
	t.Helper()
	return classify.Classify(vol.MRIBrain(n), classify.Options{})
}

func TestBuildPyramidShrinksToOne(t *testing.T) {
	tr := Build(classified(t, 32))
	top := tr.Levels[len(tr.Levels)-1]
	if top.Nx != 1 || top.Ny != 1 || top.Nz != 1 {
		t.Fatalf("top level = %dx%dx%d, want 1x1x1", top.Nx, top.Ny, top.Nz)
	}
	for i := 1; i < len(tr.Levels); i++ {
		if tr.Levels[i].CellSize != 2*tr.Levels[i-1].CellSize {
			t.Fatal("cell sizes do not double per level")
		}
	}
}

func TestMaxAlphaIsUpperBound(t *testing.T) {
	c := classified(t, 24)
	tr := Build(c)
	leaf := tr.Levels[0]
	for z := 0; z < c.Nz; z++ {
		for y := 0; y < c.Ny; y++ {
			for x := 0; x < c.Nx; x++ {
				a := classify.Opacity(c.At(x, y, z))
				ci := ((z/LeafSize)*leaf.Ny+y/LeafSize)*leaf.Nx + x/LeafSize
				if a > leaf.MaxAlpha[ci] {
					t.Fatalf("voxel (%d,%d,%d) alpha %d exceeds leaf max %d",
						x, y, z, a, leaf.MaxAlpha[ci])
				}
			}
		}
	}
}

func TestUpperLevelsDominateLower(t *testing.T) {
	tr := Build(classified(t, 24))
	for lv := 1; lv < len(tr.Levels); lv++ {
		lo, hi := tr.Levels[lv-1], tr.Levels[lv]
		for z := 0; z < lo.Nz; z++ {
			for y := 0; y < lo.Ny; y++ {
				for x := 0; x < lo.Nx; x++ {
					a := lo.MaxAlpha[(z*lo.Ny+y)*lo.Nx+x]
					pa := hi.MaxAlpha[((z/2)*hi.Ny+y/2)*hi.Nx+x/2]
					if a > pa {
						t.Fatalf("level %d cell exceeds parent", lv-1)
					}
				}
			}
		}
	}
}

func TestEmptyAtCornersOfPhantom(t *testing.T) {
	c := classified(t, 32)
	tr := Build(c)
	// The head phantom leaves the volume corners empty.
	empty, _, _, _, _, _, _ := tr.EmptyAt(0, 0, 0, 0)
	if !empty {
		t.Fatal("corner leaf cell should be empty")
	}
	// The center is inside the head.
	empty, _, _, _, _, _, _ = tr.EmptyAt(0, c.Nx/2, c.Ny/2, c.Nz/2)
	if empty {
		t.Fatal("center leaf cell should not be empty")
	}
}

func TestEmptyAtOutOfBounds(t *testing.T) {
	tr := Build(classified(t, 16))
	empty, _, _, _, _, _, _ := tr.EmptyAt(0, -5, 0, 0)
	if !empty {
		t.Fatal("out-of-bounds cell must be empty")
	}
}

func TestLeapLevel(t *testing.T) {
	c := classified(t, 32)
	tr := Build(c)
	if lv := tr.LeapLevel(c.Nx/2, c.Ny/2, c.Nz/2); lv != -1 {
		t.Fatalf("center leap level = %d, want -1 (occupied)", lv)
	}
	if lv := tr.LeapLevel(0, 0, 0); lv < 0 {
		t.Fatal("corner should allow a leap")
	}
}

func TestEmptyVolumeTreeFullyEmpty(t *testing.T) {
	c := &classify.Classified{Nx: 16, Ny: 16, Nz: 16,
		Voxels: make([]classify.Voxel, 4096), MinOpacity: 4}
	tr := Build(c)
	if lv := tr.LeapLevel(8, 8, 8); lv != tr.Height()-1 {
		t.Fatalf("empty volume leap level = %d, want top %d", lv, tr.Height()-1)
	}
}
