package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// stitchFixture builds a three-row stitched trace: the gateway's own
// trace, a winner backend shifted by a positive clock offset, and a
// cancelled loser row whose span set could not be fetched.
func stitchFixture() (uint64, []StitchedRow) {
	const id = uint64(42)
	gw := &Trace{ID: id, Label: "gw render mri|||", StartNS: 0, DurNS: 5_000_000, Status: 200, Spans: []Span{
		{Name: "pick", Cat: CatRequest, Worker: -1, StartNS: 0, DurNS: 10_000},
		{Name: "attempt 0 http://a", Cat: CatBusy, Worker: 0, StartNS: 20_000, DurNS: 4_900_000},
	}}
	winner := &Trace{ID: id, Attempt: 0, Label: "render yaw=30", StartNS: 9_000_000, DurNS: 4_000_000, Status: 200, Spans: []Span{
		{Name: "composite-own", Cat: CatBusy, Worker: 0, StartNS: 9_100_000, DurNS: 3_000_000},
	}}
	rows := []StitchedRow{
		{Label: "gateway", Trace: gw},
		{Label: "backend http://a attempt 0", Trace: winner, OffsetNS: -8_500_000},
		{Label: "backend http://b attempt 1 (canceled)", Canceled: true, Err: "fetching spans: connection refused"},
	}
	return id, rows
}

// TestWriteStitchedChromeTrace is the golden shape test for the
// cross-process stitcher's output: the same decode the CI smoke job and
// the chaos suite run, pinning pids as row ordinals, clock-shifted
// timestamps, metadata for fetchless rows (marked, not dropped), and
// the stitch summary key.
func TestWriteStitchedChromeTrace(t *testing.T) {
	id, rows := stitchFixture()
	var b strings.Builder
	if err := WriteStitchedChromeTrace(&b, id, rows); err != nil {
		t.Fatalf("write: %v", err)
	}
	var got struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  uint64         `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
		Stitch          struct {
			ID   uint64 `json:"id"`
			Rows []struct {
				Label    string `json:"label"`
				OffsetNS int64  `json:"offset_ns"`
				Spans    int    `json:"spans"`
				Canceled bool   `json:"canceled"`
				Err      string `json:"err"`
			} `json:"rows"`
		} `json:"stitch"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("output is not valid trace-event JSON: %v\n%s", err, b.String())
	}
	if got.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q, want ms", got.DisplayTimeUnit)
	}
	if got.Stitch.ID != id || len(got.Stitch.Rows) != len(rows) {
		t.Fatalf("stitch summary id=%d rows=%d, want id=%d rows=%d",
			got.Stitch.ID, len(got.Stitch.Rows), id, len(rows))
	}
	if r := got.Stitch.Rows[2]; !r.Canceled || r.Err == "" || r.Spans != 0 {
		t.Fatalf("cancelled fetchless row summary = %+v, want canceled with err and 0 spans", r)
	}

	// Every row — including the one with no span data — must emit its
	// process_name metadata so the attempt is visible, and pids are row
	// ordinals (all rows share the fleet ID, so the ID cannot be the pid).
	names := map[uint64]string{}
	var xByPID = map[uint64]int{}
	for _, ev := range got.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				names[ev.PID], _ = ev.Args["name"].(string)
				if tid, ok := ev.Args["trace_id"].(float64); !ok || uint64(tid) != id {
					t.Fatalf("pid %d process_name args %v missing trace_id %d", ev.PID, ev.Args, id)
				}
			}
		case "X":
			xByPID[ev.PID]++
			// The winner backend's spans are shifted onto the gateway
			// timeline: 9_100_000ns - 8_500_000ns = 600µs.
			if ev.PID == 2 && ev.Name == "composite-own" && ev.TS != 600 {
				t.Fatalf("aligned backend span ts = %.1fµs, want 600", ev.TS)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	for pid := uint64(1); pid <= 3; pid++ {
		if names[pid] == "" {
			t.Fatalf("pid %d has no process_name (names %v) — a row was dropped", pid, names)
		}
	}
	if !strings.Contains(names[3], "canceled") {
		t.Fatalf("cancelled row name %q not marked", names[3])
	}
	if xByPID[1] != 2 || xByPID[2] != 1 || xByPID[3] != 0 {
		t.Fatalf("span events per pid = %v, want 2/1/0", xByPID)
	}
}

// TestFindAllSharedID pins the multi-attempt retention contract: one
// backend serving several attempts of a fleet request retains one trace
// per attempt under the shared ID, and FindAll returns them in attempt
// order even when retention order differs.
func TestFindAllSharedID(t *testing.T) {
	tr := NewTracer(16, 0, 0)
	tr.Add(&Trace{ID: 9, Attempt: 2, StartNS: 300})
	tr.Add(&Trace{ID: 9, Attempt: 0, StartNS: 100})
	tr.Add(&Trace{ID: 5, Attempt: 0, StartNS: 50})
	tr.Add(&Trace{ID: 9, Attempt: 1, StartNS: 200})
	got := tr.FindAll(9)
	if len(got) != 3 {
		t.Fatalf("FindAll returned %d traces, want 3", len(got))
	}
	for i, want := range []int{0, 1, 2} {
		if got[i].Attempt != want {
			t.Fatalf("FindAll[%d].Attempt = %d, want %d", i, got[i].Attempt, want)
		}
	}
}
