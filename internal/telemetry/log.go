package telemetry

import (
	"context"
	"io"
	"log/slog"
)

// Structured logging for the render service. The service logs with
// log/slog; every request carries a request ID (the trace ID when
// tracing is on) threaded through the handler, the admission path, the
// renderer-pool path and the watchdog via context, so one slow or
// failed request's log lines correlate with its span trace and its
// place in the latency histograms.

// ctxKey is the private context-key type for telemetry values.
type ctxKey int

const requestIDKey ctxKey = iota

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request ID carried by ctx (0 = none).
func RequestID(ctx context.Context) uint64 {
	id, _ := ctx.Value(requestIDKey).(uint64)
	return id
}

// discardHandler is a slog.Handler that drops everything (slog gained a
// built-in one only in Go 1.24; this module supports 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (h discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h discardHandler) WithGroup(string) slog.Handler           { return h }

// DiscardLogger returns a logger that drops every record — the default
// for embedded servers (tests) so they stay silent unless a logger is
// injected.
func DiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }

// NewLogger builds the service logger: JSON or logfmt-style text
// records on w at the given level. format is "json" or "text"; anything
// else (notably "off") discards.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts))
	case "text":
		return slog.New(slog.NewTextHandler(w, opts))
	}
	return DiscardLogger()
}
