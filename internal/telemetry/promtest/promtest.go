// Package promtest validates Prometheus text-format (0.0.4) expositions
// in tests: internal/telemetry checks its writer against it, and
// internal/server parse-checks the /metrics exposition end to end.
package promtest

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sampleRe matches one exposition sample line: name, optional labels,
// value, optional timestamp.
var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)( [0-9]+)?$`)

// Validate is a minimal Prometheus text-format (0.0.4) parser: it checks
// line syntax, HELP/TYPE placement, contiguous metric groups, and
// histogram invariants (monotone buckets, +Inf == _count). It returns the
// parsed samples as name{labels} -> value.
func Validate(t testing.TB, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	var lastName string
	closed := map[string]bool{} // metric groups that have ended
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && typed[b] == "histogram" {
				return b
			}
		}
		return name
	}
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 3 && (f[1] == "TYPE" || f[1] == "HELP") {
				if f[1] == "TYPE" {
					switch f[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						t.Fatalf("line %d: bad TYPE %q", ln, f[3])
					}
					typed[f[2]] = f[3]
					if samples[f[2]] != 0 {
						t.Fatalf("line %d: TYPE %s after its samples", ln, f[2])
					}
				}
				continue
			}
			continue // plain comment
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample: %q", ln, line)
		}
		name := m[1]
		group := base(name)
		if closed[group] {
			t.Fatalf("line %d: metric %s not contiguous", ln, group)
		}
		if lastName != "" && lastName != group {
			closed[lastName] = true
		}
		lastName = group
		v, err := strconv.ParseFloat(strings.TrimPrefix(m[3], "+"), 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln, m[3], err)
		}
		samples[name+m[2]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}

	// Histogram invariants: per (base, non-le label set), bucket counts
	// are monotone in le and the +Inf bucket equals _count.
	for name, typ := range typed {
		if typ != "histogram" {
			continue
		}
		type bkt struct {
			le  float64
			val float64
		}
		series := map[string][]bkt{}
		for key, v := range samples {
			if !strings.HasPrefix(key, name+"_bucket") {
				continue
			}
			labels := key[len(name+"_bucket"):]
			le, rest := extractLE(labels)
			series[rest] = append(series[rest], bkt{le, v})
		}
		for rest, bs := range series {
			for i := range bs {
				for j := range bs {
					if bs[i].le < bs[j].le && bs[i].val > bs[j].val {
						t.Fatalf("%s%s: bucket le=%g count %g > le=%g count %g",
							name, rest, bs[i].le, bs[i].val, bs[j].le, bs[j].val)
					}
				}
			}
			countKey := name + "_count" + rest
			count, ok := samples[countKey]
			if !ok {
				t.Fatalf("%s: missing %s", name, countKey)
			}
			var inf float64 = -1
			for _, b := range bs {
				if b.le > 1e300 {
					inf = b.val
				}
			}
			if inf != count {
				t.Fatalf("%s%s: le=+Inf bucket %g != count %g", name, rest, inf, count)
			}
		}
	}
	return samples
}

// extractLE splits the le label out of a rendered label set, returning
// its value and the label set without it.
func extractLE(labels string) (le float64, rest string) {
	if labels == "" {
		return 0, ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, part := range strings.Split(inner, ",") {
		if v, ok := strings.CutPrefix(part, `le="`); ok {
			v = strings.TrimSuffix(v, `"`)
			if v == "+Inf" {
				le = 1e308
			} else {
				le, _ = strconv.ParseFloat(v, 64)
			}
			continue
		}
		kept = append(kept, part)
	}
	if len(kept) == 0 {
		return le, ""
	}
	return le, "{" + strings.Join(kept, ",") + "}"
}
