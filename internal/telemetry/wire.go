package telemetry

import "strconv"

// WireSnapshot is the cross-process form of a HistogramSnapshot: sparse
// (only occupied buckets, keyed by bucket index) so a mostly-empty
// 960-bucket histogram costs a few dozen bytes on the wire instead of
// kilobytes of zeros. Backends publish it under /metrics "histograms";
// the gateway's fleet scraper converts back and merges exactly, since
// every process shares the same log-linear bucket boundaries.
type WireSnapshot struct {
	Count   int64            `json:"count"`
	SumNS   int64            `json:"sum_ns"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Wire converts a snapshot to its sparse cross-process form.
func (s *HistogramSnapshot) Wire() WireSnapshot {
	w := WireSnapshot{}
	if s == nil {
		return w
	}
	w.Count = s.Count
	w.SumNS = s.SumNS
	for i, c := range s.Counts {
		if c != 0 {
			if w.Buckets == nil {
				w.Buckets = make(map[string]int64)
			}
			w.Buckets[strconv.Itoa(i)] = c
		}
	}
	return w
}

// Snapshot converts the wire form back to a dense snapshot. Unknown or
// out-of-range bucket keys (a peer running a different bucket scheme)
// are dropped rather than corrupting the merge.
func (w WireSnapshot) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{Count: w.Count, SumNS: w.SumNS}
	if len(w.Buckets) > 0 {
		s.Counts = make([]int64, numBuckets)
		for k, c := range w.Buckets {
			if i, err := strconv.Atoi(k); err == nil && i >= 0 && i < numBuckets {
				s.Counts[i] = c
			}
		}
	}
	return s
}
