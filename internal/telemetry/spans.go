package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span categories, mapped onto the paper's Figure 5/6 vocabulary by the
// timeline view: busy spans are computation, sync spans are explicit
// synchronization, and whatever remains of a worker's frame wall clock
// is load imbalance. Request-category spans live on the request lane
// (worker -1) and are excluded from the per-worker accounting.
const (
	CatBusy    = "busy"
	CatSync    = "sync"
	CatRequest = "request"
)

// Span is one timed section of a request or frame. StartNS is measured
// from the owning tracer's epoch so spans from overlapping requests
// share a timeline.
type Span struct {
	Name    string `json:"name"`
	Cat     string `json:"cat"`
	Worker  int    `json:"worker"` // -1 = request lane, >= 0 = render worker
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// maxFrameSpans bounds one request's span count. A frame records a
// handful of spans per worker plus the request-level phases; chunked
// compositing in the old algorithm can emit one span per chunk, so the
// cap is generous. Overflow drops spans and counts the drop instead of
// growing.
const maxFrameSpans = 512

// FrameSpans is the per-request span recorder the render workers write
// into: a preallocated fixed-size buffer claimed by atomic index, so
// concurrent workers record without locks and a whole frame's recording
// allocates nothing. All methods are no-ops on a nil receiver — the
// disabled-telemetry contract the renderers' nil checks rely on.
//
// Ownership: one goroutine resets the recorder, attaches it to a
// renderer, and reads Spans after the frame's completion barrier;
// workers only Record between those points.
type FrameSpans struct {
	epoch   time.Time
	n       atomic.Int64
	dropped atomic.Int64
	spans   [maxFrameSpans]Span
}

// NewFrameSpans returns a recorder whose span timestamps are measured
// from epoch.
func NewFrameSpans(epoch time.Time) *FrameSpans {
	return &FrameSpans{epoch: epoch}
}

// Reset clears the recorder for a new request, rebasing on epoch.
func (fs *FrameSpans) Reset(epoch time.Time) {
	if fs == nil {
		return
	}
	fs.epoch = epoch
	fs.n.Store(0)
	fs.dropped.Store(0)
}

// Record appends one span. Safe for concurrent workers; allocation-free.
func (fs *FrameSpans) Record(worker int, name, cat string, start time.Time, d time.Duration) {
	if fs == nil {
		return
	}
	i := fs.n.Add(1) - 1
	if i >= maxFrameSpans {
		fs.dropped.Add(1)
		return
	}
	fs.spans[i] = Span{
		Name:    name,
		Cat:     cat,
		Worker:  worker,
		StartNS: start.Sub(fs.epoch).Nanoseconds(),
		DurNS:   int64(d),
	}
}

// Spans returns the recorded spans. Call only after every recording
// worker has finished (the frame's completion barrier); the slice
// aliases the recorder and is invalidated by Reset.
func (fs *FrameSpans) Spans() []Span {
	if fs == nil {
		return nil
	}
	n := fs.n.Load()
	if n > maxFrameSpans {
		n = maxFrameSpans
	}
	return fs.spans[:n]
}

// Dropped returns how many spans overflowed the buffer.
func (fs *FrameSpans) Dropped() int64 {
	if fs == nil {
		return 0
	}
	return fs.dropped.Load()
}

// Trace is one request's captured spans plus identification. DurNS
// covers the whole request (admission through encode); Status is the
// HTTP status the request answered with (0 while in flight).
//
// In a fleet, several processes retain traces under the same ID: the
// gateway's trace carries Attempts (one AttemptRef per backend try) and
// each backend's trace carries the Attempt ordinal it served, so the
// stitcher can pair them back up.
type Trace struct {
	ID       uint64       `json:"id"`
	Label    string       `json:"label"`
	Attempt  int          `json:"attempt,omitempty"`
	StartNS  int64        `json:"start_ns"`
	DurNS    int64        `json:"dur_ns"`
	Status   int          `json:"status"`
	Dropped  int64        `json:"dropped_spans,omitempty"`
	Spans    []Span       `json:"spans"`
	Attempts []AttemptRef `json:"attempts,omitempty"`
}

// AttemptRef records, on a gateway trace, one attempt the gateway made
// against a backend: which backend, why it launched (hedge/retry), how
// it ended, and the send/receive instants (nanoseconds on the gateway's
// trace timeline) the clock aligner uses as its NTP-style sample.
type AttemptRef struct {
	Ordinal  int    `json:"ordinal"`
	Backend  string `json:"backend"`
	Hedged   bool   `json:"hedged,omitempty"`
	Retry    bool   `json:"retry,omitempty"`
	Canceled bool   `json:"canceled,omitempty"`
	Status   int    `json:"status,omitempty"`
	Class    string `json:"class,omitempty"`
	SendNS   int64  `json:"send_ns"`
	RecvNS   int64  `json:"recv_ns"`
}

// Tracer retains completed request traces for /debug/spans. Retention
// combines three fixed-size samples so both "what does a normal request
// look like" and "what did the slow ones do" stay answerable without
// unbounded memory:
//
//   - head: the first headN traces ever captured (cold-start behaviour,
//     cache builds, pool construction);
//   - recent: a ring of the last ringN traces;
//   - slow: the slowN largest-duration traces (tail latency).
//
// A trace can appear in several samples; Traces deduplicates.
type Tracer struct {
	epoch time.Time
	seq   atomic.Uint64

	mu     sync.Mutex
	head   []*Trace
	headN  int
	recent []*Trace // ring, len ringN once full
	next   int
	ringN  int
	slow   []*Trace
	slowN  int
}

// NewTracer returns a tracer retaining ring recent traces, head
// first-ever traces and slow slowest traces (non-positive arguments get
// defaults of 64, 16 and 16).
func NewTracer(ring, head, slow int) *Tracer {
	if ring <= 0 {
		ring = 64
	}
	if head <= 0 {
		head = 16
	}
	if slow <= 0 {
		slow = 16
	}
	return &Tracer{epoch: time.Now(), headN: head, ringN: ring, slowN: slow}
}

// Epoch is the instant trace and span timestamps are measured from.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// NextID allocates a request/trace ID (unique within this tracer).
func (t *Tracer) NextID() uint64 { return t.seq.Add(1) }

// Add retains a completed trace under the sampling policy. The tracer
// takes ownership of tr; do not mutate it afterwards except through
// Amend.
func (t *Tracer) Add(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.head) < t.headN {
		t.head = append(t.head, tr)
	}
	if len(t.recent) < t.ringN {
		t.recent = append(t.recent, tr)
	} else {
		t.recent[t.next] = tr
		t.next = (t.next + 1) % t.ringN
	}
	if len(t.slow) < t.slowN {
		t.slow = append(t.slow, tr)
	} else {
		min, minDur := -1, tr.DurNS
		for i, s := range t.slow {
			if s.DurNS < minDur {
				min, minDur = i, s.DurNS
			}
		}
		if min >= 0 {
			t.slow[min] = tr
		}
	}
}

// Amend appends spans to a retained trace and updates its status and
// duration — the handler uses it for work that happens after the render
// goroutine completed the trace (response encoding). A trace that has
// aged out of every sample is silently gone.
func (t *Tracer) Amend(id uint64, status int, durNS int64, spans ...Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, group := range [][]*Trace{t.head, t.recent, t.slow} {
		for _, tr := range group {
			if tr.ID == id {
				tr.Spans = append(tr.Spans, spans...)
				tr.Status = status
				if durNS > tr.DurNS {
					tr.DurNS = durNS
				}
				return // samples share pointers; first hit mutates the trace
			}
		}
	}
}

// Traces returns the retained traces, deduplicated and ordered by start
// time. The returned traces are shared with the tracer; treat them as
// read-only.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Dedup by pointer, not ID: the three samples share pointers, but
	// distinct traces may legitimately share a fleet trace ID (one
	// backend serving both the first try and a retry of one request).
	seen := make(map[*Trace]bool)
	var out []*Trace
	for _, group := range [][]*Trace{t.head, t.recent, t.slow} {
		for _, tr := range group {
			if !seen[tr] {
				seen[tr] = true
				out = append(out, tr)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	return out
}

// Find returns the retained trace with the given ID, or nil.
func (t *Tracer) Find(id uint64) *Trace {
	for _, tr := range t.Traces() {
		if tr.ID == id {
			return tr
		}
	}
	return nil
}

// FindAll returns every retained trace with the given ID, ordered by
// attempt then start time. A backend that served several attempts of
// one fleet request (first try and a later retry) retains one trace per
// attempt under the shared ID; the stitcher needs all of them.
func (t *Tracer) FindAll(id uint64) []*Trace {
	var out []*Trace
	for _, tr := range t.Traces() {
		if tr.ID == id {
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attempt != out[j].Attempt {
			return out[i].Attempt < out[j].Attempt
		}
		return out[i].StartNS < out[j].StartNS
	})
	return out
}

// chromeEvent is one Chrome trace-event (the "Trace Event Format"
// loadable by chrome://tracing and https://ui.perfetto.dev).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  uint64         `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace-event format.
// Stitch, set only by WriteStitchedChromeTrace, carries the stitching
// summary (per-row clock offsets and failure notes); viewers ignore
// unknown top-level keys.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Stitch          any           `json:"stitch,omitempty"`
}

// WriteChromeTrace emits traces as Chrome trace-event JSON: one process
// per request (pid = trace ID, named by the trace label), one thread
// per render worker plus a request lane at tid 0, and one complete
// ("ph":"X") event per span. Timestamps are shared across traces, so
// overlapping requests appear concurrent in the viewer.
func WriteChromeTrace(w io.Writer, traces []*Trace) error {
	ct := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, tr := range traces {
		pid := tr.ID
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": fmt.Sprintf("req %d: %s", tr.ID, tr.Label)},
		})
		lanes := map[int]bool{}
		for _, sp := range tr.Spans {
			tid := sp.Worker + 1 // request lane -1 -> tid 0
			if !lanes[tid] {
				lanes[tid] = true
				name := "request"
				if sp.Worker >= 0 {
					name = fmt.Sprintf("worker %d", sp.Worker)
				}
				ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", PID: pid, TID: tid,
					Args: map[string]any{"name": name},
				})
			}
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name: sp.Name, Cat: sp.Cat, Ph: "X",
				TS: float64(sp.StartNS) / 1e3, Dur: float64(sp.DurNS) / 1e3,
				PID: pid, TID: tid,
				Args: map[string]any{"status": tr.Status},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}

// StitchedRow is one process's contribution to a stitched fleet trace:
// the gateway's own trace, or one backend trace per attempt the fleet
// request made. OffsetNS shifts the row's span timestamps onto the
// gateway's timeline (the clock-alignment estimate). A row whose span
// data could not be fetched (dead backend, evicted trace, attempt that
// never reached a backend) carries Err and a nil Trace — it is marked
// in the output rather than dropped.
type StitchedRow struct {
	Label    string
	Trace    *Trace
	OffsetNS int64
	Canceled bool
	Err      string
}

// stitchRowInfo is one row's entry in the stitch summary.
type stitchRowInfo struct {
	Label    string `json:"label"`
	OffsetNS int64  `json:"offset_ns"`
	Spans    int    `json:"spans"`
	Canceled bool   `json:"canceled,omitempty"`
	Err      string `json:"err,omitempty"`
}

// WriteStitchedChromeTrace merges the rows of one fleet trace into a
// single Chrome trace-event document: one process per row (pid = row
// ordinal, starting at 1), named by the row label, with every span
// shifted by the row's clock offset so gateway and backend spans share
// the gateway's timeline. Rows without span data still emit their
// process_name metadata (with the error in args) so a viewer — and the
// chaos suite — can see that an attempt existed even when its spans are
// gone. The top-level "stitch" object summarizes per-row offsets and
// failures for programmatic consumers.
func WriteStitchedChromeTrace(w io.Writer, id uint64, rows []StitchedRow) error {
	ct := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	summary := struct {
		ID   uint64          `json:"id"`
		Rows []stitchRowInfo `json:"rows"`
	}{ID: id, Rows: []stitchRowInfo{}}

	for i, row := range rows {
		pid := uint64(i + 1)
		info := stitchRowInfo{Label: row.Label, OffsetNS: row.OffsetNS, Canceled: row.Canceled, Err: row.Err}
		args := map[string]any{"trace_id": id}
		if row.Canceled {
			args["canceled"] = true
		}
		if row.Err != "" {
			args["err"] = row.Err
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: mergeArgs(map[string]any{"name": row.Label}, args),
		})
		if row.Trace != nil {
			info.Spans = len(row.Trace.Spans)
			lanes := map[int]bool{}
			for _, sp := range row.Trace.Spans {
				tid := sp.Worker + 1
				if !lanes[tid] {
					lanes[tid] = true
					name := "request"
					if sp.Worker >= 0 {
						name = fmt.Sprintf("worker %d", sp.Worker)
					}
					ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
						Name: "thread_name", Ph: "M", PID: pid, TID: tid,
						Args: map[string]any{"name": name},
					})
				}
				ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
					Name: sp.Name, Cat: sp.Cat, Ph: "X",
					TS:  float64(sp.StartNS+row.OffsetNS) / 1e3,
					Dur: float64(sp.DurNS) / 1e3,
					PID: pid, TID: tid,
					Args: map[string]any{"status": row.Trace.Status},
				})
			}
		}
		summary.Rows = append(summary.Rows, info)
	}
	ct.Stitch = summary
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}

// mergeArgs overlays b onto a copy of a.
func mergeArgs(a, b map[string]any) map[string]any {
	out := make(map[string]any, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Timeline renders one trace as the paper's Figure 5/6 per-worker
// execution-time bars: for each worker, busy time (computation), sync
// time (tracked waits) and the remaining wall clock as load imbalance,
// with a proportional bar (B = busy, S = sync, . = imbalance). The wall
// clock is the envelope of the trace's worker spans.
func Timeline(tr *Trace) string {
	const barWidth = 40
	type acc struct{ busy, sync int64 }
	workers := map[int]*acc{}
	var lo, hi int64 = -1, 0
	for _, sp := range tr.Spans {
		if sp.Worker < 0 {
			continue
		}
		a := workers[sp.Worker]
		if a == nil {
			a = &acc{}
			workers[sp.Worker] = a
		}
		switch sp.Cat {
		case CatSync:
			a.sync += sp.DurNS
		default:
			a.busy += sp.DurNS
		}
		if lo < 0 || sp.StartNS < lo {
			lo = sp.StartNS
		}
		if end := sp.StartNS + sp.DurNS; end > hi {
			hi = end
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d: %s (status %d, %.3fms)\n", tr.ID, tr.Label, tr.Status, float64(tr.DurNS)/1e6)
	if len(workers) == 0 {
		b.WriteString("no worker spans captured\n")
		return b.String()
	}
	wall := hi - lo
	if wall <= 0 {
		wall = 1
	}
	fmt.Fprintf(&b, "frame wall %.3fms over %d workers; bars: B busy, S sync, . imbalance\n",
		float64(wall)/1e6, len(workers))
	ids := make([]int, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Fprintf(&b, "%-6s  %10s  %10s  %10s  bar\n", "proc", "busy(ms)", "sync(ms)", "imbal(ms)")
	for _, id := range ids {
		a := workers[id]
		imbal := wall - a.busy - a.sync
		if imbal < 0 {
			imbal = 0
		}
		nb := int(float64(a.busy) / float64(wall) * barWidth)
		ns := int(float64(a.sync) / float64(wall) * barWidth)
		if nb+ns > barWidth {
			ns = barWidth - nb
		}
		bar := strings.Repeat("B", nb) + strings.Repeat("S", ns) + strings.Repeat(".", barWidth-nb-ns)
		fmt.Fprintf(&b, "%-6d  %10.3f  %10.3f  %10.3f  |%s|\n",
			id, float64(a.busy)/1e6, float64(a.sync)/1e6, float64(imbal)/1e6, bar)
	}
	return b.String()
}
