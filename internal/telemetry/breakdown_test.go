package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"shearwarp/internal/perf"
)

// TestBreakdownThroughTelemetry round-trips a perf.FrameBreakdown through
// its JSON encoding and then through the telemetry snapshot types: the
// decoded breakdown's per-worker phase durations feed a histogram, and
// both the histogram snapshot and its quantile digest must survive their
// own JSON round trips with the counts and sums intact — the contract
// /debug/latency and scripts/bench.sh depend on.
func TestBreakdownThroughTelemetry(t *testing.T) {
	fb := &perf.FrameBreakdown{
		Algorithm: "new",
		Workers:   2,
		WallNS:    int64(10 * time.Millisecond),
		PerWorker: []perf.WorkerBreakdown{
			{Worker: 0, ClearNS: 1e6, CompositeOwnNS: 3e6, WarpNS: 2e6, WaitNS: 5e5, TotalNS: 65e5},
			{Worker: 1, ClearNS: 1e6, CompositeOwnNS: 4e6, CompositeStealNS: 1e6, WarpNS: 3e6, TotalNS: 9e6},
		},
	}

	data, err := fb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back perf.FrameBreakdown
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	h := NewHistogram("warp_seconds", "per-worker warp time")
	var wantSum int64
	for i := range back.PerWorker {
		h.ObserveNS(back.PerWorker[i].WarpNS)
		wantSum += back.PerWorker[i].WarpNS
	}
	snap := h.Snapshot()
	if snap.Count != int64(len(back.PerWorker)) || snap.SumNS != wantSum {
		t.Fatalf("snapshot count/sum = %d/%d, want %d/%d",
			snap.Count, snap.SumNS, len(back.PerWorker), wantSum)
	}

	// The snapshot itself marshals and unmarshals losslessly, so merged
	// multi-process digests can travel as JSON.
	sdata, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var snapBack HistogramSnapshot
	if err := json.Unmarshal(sdata, &snapBack); err != nil {
		t.Fatal(err)
	}
	if snapBack.Count != snap.Count || snapBack.SumNS != snap.SumNS {
		t.Fatalf("snapshot round trip lost count/sum: %+v", snapBack)
	}
	if snapBack.Summary() != snap.Summary() {
		t.Fatalf("round-tripped snapshot digests differently: %+v vs %+v",
			snapBack.Summary(), snap.Summary())
	}

	// The quantile digest keeps its wire names (the BENCH_latency.json
	// schema) and round-trips exactly.
	sum := snap.Summary()
	qdata, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"count"`, `"mean_ms"`, `"p50_ms"`, `"p99_ms"`, `"max_ms"`} {
		if !strings.Contains(string(qdata), key) {
			t.Fatalf("quantile JSON missing %s: %s", key, qdata)
		}
	}
	var sumBack QuantileSummary
	if err := json.Unmarshal(qdata, &sumBack); err != nil {
		t.Fatal(err)
	}
	if sumBack != sum {
		t.Fatalf("quantile round trip: %+v != %+v", sumBack, sum)
	}
	// Sanity on the digest itself: both 2-3ms warp observations land
	// within the histogram's 6.25% relative-error bound.
	if sum.MaxMS < 3 || sum.MaxMS > 3*1.07 {
		t.Fatalf("max %.3fms outside [3, 3.2]", sum.MaxMS)
	}
}
