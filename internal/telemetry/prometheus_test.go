package telemetry

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"shearwarp/internal/telemetry/promtest"
)

func TestPromWriterFormat(t *testing.T) {
	h := NewHistogram("demo_request_duration_seconds", "request latency")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Counter("demo_requests_total", "requests served", 100, "path", "/render")
	pw.Counter("demo_requests_total", "requests served", 7, "path", "/healthz")
	pw.Gauge("demo_in_flight", "in-flight requests", 2)
	pw.Histogram("demo_request_duration_seconds", "request latency", h.Snapshot(), "path", "/render")
	pw.Counter("demo_escapes_total", `weird "help" with \ and`+"\nnewline", 1, "label", `va"l\ue`+"\n")
	if pw.Err() != nil {
		t.Fatalf("write error: %v", pw.Err())
	}
	out := b.String()
	samples := promtest.Validate(t, out)
	if samples[`demo_requests_total{path="/render"}`] != 100 {
		t.Fatalf("missing render counter in:\n%s", out)
	}
	if samples["demo_in_flight"] != 2 {
		t.Fatalf("missing gauge in:\n%s", out)
	}
	if samples[`demo_request_duration_seconds_count{path="/render"}`] != 100 {
		t.Fatalf("missing histogram count in:\n%s", out)
	}
	// The 100ms max must be inside a finite le bucket of the ladder.
	found := false
	for k, v := range samples {
		if strings.HasPrefix(k, "demo_request_duration_seconds_bucket") && !strings.Contains(k, "+Inf") && v == 100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no finite bucket holds all observations:\n%s", out)
	}
	if n := strings.Count(out, "# TYPE demo_requests_total"); n != 1 {
		t.Fatalf("TYPE header emitted %d times", n)
	}
}

func TestPromWriterErrSticks(t *testing.T) {
	pw := NewPromWriter(failWriter{})
	pw.Counter("x_total", "x", 1)
	if pw.Err() == nil {
		t.Fatal("expected sticky error")
	}
	pw.Gauge("y", "y", 1) // must not panic
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("sink closed") }
