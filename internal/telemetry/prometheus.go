package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format version this writer emits.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promBoundsNS is the le-ladder histograms expose: power-of-two
// nanosecond boundaries from 1µs-ish to ~69s. Powers of two coincide
// exactly with the internal bucket boundaries, so the exported
// cumulative counts are exact, and 27 buckets keep the scrape payload
// small while spanning admission waits (sub-microsecond under no load)
// through watchdog-scale frames.
var promBoundsNS = func() []int64 {
	var b []int64
	for k := uint(10); k <= 36; k++ { // 1.02µs .. 68.7s
		b = append(b, int64(1)<<k)
	}
	return b
}()

// PromWriter emits the Prometheus text exposition format (version
// 0.0.4). It tracks which metric names have had their HELP/TYPE header
// written, so callers must emit all series of one metric name
// consecutively (the format requires one contiguous group per name).
// The first write error sticks and short-circuits later writes.
type PromWriter struct {
	w    io.Writer
	seen map[string]bool
	err  error
}

// NewPromWriter returns a writer targeting w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

// Err returns the first error encountered while writing.
func (pw *PromWriter) Err() error { return pw.err }

func (pw *PromWriter) printf(format string, args ...any) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

// header writes the HELP/TYPE block for name once.
func (pw *PromWriter) header(name, help, typ string) {
	if pw.seen[name] {
		return
	}
	pw.seen[name] = true
	pw.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelString renders k=v pairs as {k="v",...}; extra, when non-empty,
// is a pre-rendered pair (the histogram le label) appended last.
func labelString(labels []string, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter emits one counter sample. labels are alternating key, value
// pairs. All samples sharing name must be emitted consecutively.
func (pw *PromWriter) Counter(name, help string, v float64, labels ...string) {
	pw.header(name, help, "counter")
	pw.printf("%s%s %s\n", name, labelString(labels, ""), formatFloat(v))
}

// Gauge emits one gauge sample.
func (pw *PromWriter) Gauge(name, help string, v float64, labels ...string) {
	pw.header(name, help, "gauge")
	pw.printf("%s%s %s\n", name, labelString(labels, ""), formatFloat(v))
}

// Histogram emits one histogram series (cumulative _bucket lines over
// the package le-ladder plus +Inf, then _sum and _count) from a
// snapshot. Durations are exposed in seconds, the Prometheus base unit.
// The snapshot's Name is ignored in favour of name so one logical
// metric can carry several label sets.
func (pw *PromWriter) Histogram(name, help string, s *HistogramSnapshot, labels ...string) {
	pw.header(name, help, "histogram")
	for _, b := range promBoundsNS {
		le := `le="` + formatFloat(float64(b)/1e9) + `"`
		pw.printf("%s_bucket%s %d\n", name, labelString(labels, le), s.CumulativeLE(b))
	}
	pw.printf("%s_bucket%s %d\n", name, labelString(labels, `le="+Inf"`), s.Count)
	pw.printf("%s_sum%s %s\n", name, labelString(labels, ""), formatFloat(float64(s.SumNS)/1e9))
	pw.printf("%s_count%s %d\n", name, labelString(labels, ""), s.Count)
}
