package telemetry

import (
	"sync"
	"testing"
)

func TestExemplarDisabledByDefault(t *testing.T) {
	h := NewHistogram("x", "")
	h.ObserveExemplarNS(1000, 42)
	if h.ExemplarsEnabled() {
		t.Fatal("exemplars enabled without EnableExemplars")
	}
	if got := h.Exemplars(); got != nil {
		t.Fatalf("disabled histogram returned exemplars: %v", got)
	}
	if h.Count() != 1 {
		t.Fatalf("ObserveExemplarNS did not record the observation: count %d", h.Count())
	}
}

func TestExemplarCaptureAndRegions(t *testing.T) {
	h := NewHistogram("x", "")
	h.EnableExemplars()

	// Two observations in well-separated octaves: both must be retained,
	// each tagged with its own request ID, slowest first.
	h.ObserveExemplarNS(1_000, 7)      // ~2^10 region
	h.ObserveExemplarNS(50_000_000, 9) // ~2^25 region
	h.ObserveExemplarNS(40_000_000, 8) // same region, smaller: not retained
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("retained %d exemplars, want 2: %v", len(ex), ex)
	}
	if ex[0].ValueNS != 50_000_000 || ex[0].ReqID != 9 {
		t.Fatalf("slowest exemplar = %+v, want 50ms from req 9", ex[0])
	}
	if ex[1].ValueNS != 1_000 || ex[1].ReqID != 7 {
		t.Fatalf("fast exemplar = %+v, want 1µs from req 7", ex[1])
	}

	// A slower observation in an occupied region replaces its exemplar.
	h.ObserveExemplarNS(60_000_000, 11)
	ex = h.Exemplars()
	if ex[0].ValueNS != 60_000_000 || ex[0].ReqID != 11 {
		t.Fatalf("slower observation did not replace exemplar: %+v", ex[0])
	}

	// reqID 0 records the duration but never an exemplar.
	before := len(h.Exemplars())
	h.ObserveExemplarNS(1<<40, 0)
	if len(h.Exemplars()) != before {
		t.Fatal("reqID 0 created an exemplar")
	}
}

// TestExemplarRefresh pins the aging policy: every refreshEvery-th
// observation in a region overwrites the slot even when it is faster
// than the retained value, so stale spikes eventually yield.
func TestExemplarRefresh(t *testing.T) {
	h := NewHistogram("x", "")
	h.EnableExemplars()
	h.ObserveExemplarNS(1<<20+1000, 1) // spike
	for i := 0; i < refreshEvery; i++ {
		h.ObserveExemplarNS(1<<20+1, 99) // same octave, faster
	}
	ex := h.Exemplars()
	if len(ex) != 1 || ex[0].ReqID != 99 {
		t.Fatalf("refresh did not replace stale exemplar: %v", ex)
	}
}

func TestExemplarZeroAllocs(t *testing.T) {
	h := NewHistogram("x", "")
	h.EnableExemplars()
	var id uint64
	allocs := testing.AllocsPerRun(100, func() {
		id++
		h.ObserveExemplarNS(int64(id)*1023, id)
	})
	if allocs != 0 {
		t.Fatalf("ObserveExemplarNS allocates %.1f allocs/op, want 0", allocs)
	}
	plain := NewHistogram("y", "")
	allocs = testing.AllocsPerRun(100, func() {
		plain.ObserveNS(4096)
	})
	if allocs != 0 {
		t.Fatalf("ObserveNS allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestExemplarConcurrent hammers one histogram from many goroutines
// under -race: the seqlock must never pair a value with another
// request's ID. Each goroutine observes a value that encodes its
// request ID, so any retained exemplar can be checked for consistency.
func TestExemplarConcurrent(t *testing.T) {
	h := NewHistogram("x", "")
	h.EnableExemplars()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id := uint64(w*10000 + i + 1)
				// value mod workers*10000+... encode: value = id * 16
				h.ObserveExemplarNS(int64(id)*16, id)
			}
		}(w)
	}
	wg.Wait()
	for _, ex := range h.Exemplars() {
		if ex.ValueNS != int64(ex.ReqID)*16 {
			t.Fatalf("torn exemplar: value %d not consistent with req %d", ex.ValueNS, ex.ReqID)
		}
	}
}
