package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Exemplar capture: the histogram Observe path can retain, per
// power-of-two latency region, one (value, request ID) pair — an
// OpenMetrics-style exemplar — so a tail bucket of the latency
// distribution links directly to the span trace of a request that
// landed in it. A p999 outlier stops being an anonymous count: the
// exemplar's request ID is the trace ID in the span tracer's ring, one
// /debug/spans?id=N away.
//
// The design constraints mirror the rest of the package:
//
//   - Disabled (the default — no exemplar store attached) the Observe
//     path is unchanged: ObserveNS stays three atomic adds, and
//     ObserveExemplarNS degrades to ObserveNS behind one nil check.
//   - Enabled, capture adds a handful of atomic operations and never
//     blocks: each region slot is guarded by a sequence lock whose
//     writers *skip* instead of spinning when they lose the CAS, so a
//     stampede of observations costs one winner a few stores and every
//     loser two loads.
//   - Nothing allocates, on either path; the store is a fixed array.
//
// Retention policy per region: keep the slowest value seen since the
// slot was last refreshed, and refresh (overwrite unconditionally)
// every refreshEvery-th observation routed to the region so exemplars
// stay recent instead of pinning the all-time maximum forever.

// numExemplarRegions is one slot per power-of-two octave of the
// nanosecond range — coarse enough to stay tiny, fine enough that a
// tail bucket's region holds a tail exemplar, not a median one.
const numExemplarRegions = 64

// refreshEvery forces a slot overwrite on every Nth observation in its
// region, so exemplars age out. Power of two for a cheap mask.
const refreshEvery = 64

// Exemplar is one retained (value, request) pair.
type Exemplar struct {
	ValueNS int64  `json:"value_ns"`
	ReqID   uint64 `json:"req_id"`
}

// exemplarSlot is one region's retained exemplar, guarded by a
// sequence counter: even = stable, odd = writer in the slot. Readers
// retry on a torn read; writers that lose the claim CAS skip entirely.
type exemplarSlot struct {
	seq     atomic.Uint64
	valueNS atomic.Int64
	reqID   atomic.Uint64
	count   atomic.Uint64 // observations routed to this region
}

// store publishes a new exemplar if the slot is free, else skips.
func (s *exemplarSlot) store(v int64, reqID uint64) {
	seq := s.seq.Load()
	if seq&1 != 0 || !s.seq.CompareAndSwap(seq, seq+1) {
		return // another writer owns the slot; drop this candidate
	}
	s.valueNS.Store(v)
	s.reqID.Store(reqID)
	s.seq.Store(seq + 2)
}

// load returns the slot's exemplar, or ok=false when empty or torn
// beyond the retry budget.
func (s *exemplarSlot) load() (Exemplar, bool) {
	for attempt := 0; attempt < 4; attempt++ {
		seq := s.seq.Load()
		if seq == 0 {
			return Exemplar{}, false // never written
		}
		if seq&1 != 0 {
			continue // writer mid-store
		}
		ex := Exemplar{ValueNS: s.valueNS.Load(), ReqID: s.reqID.Load()}
		if s.seq.Load() == seq {
			return ex, true
		}
	}
	return Exemplar{}, false
}

// exemplarStore is the fixed per-histogram slot array.
type exemplarStore struct {
	slots [numExemplarRegions]exemplarSlot
}

// exemplarRegion maps a non-negative value to its octave slot.
func exemplarRegion(v int64) int {
	return bits.Len64(uint64(v)) & (numExemplarRegions - 1)
}

// observe routes one observation through the retention policy.
func (es *exemplarStore) observe(v int64, reqID uint64) {
	slot := &es.slots[exemplarRegion(v)]
	n := slot.count.Add(1)
	// Keep the slowest value in the region, but refresh periodically so
	// a one-off spike from hours ago eventually yields to fresh traffic.
	if n&(refreshEvery-1) == 1 || v >= slot.valueNS.Load() {
		slot.store(v, reqID)
	}
}

// EnableExemplars attaches an exemplar store to the histogram. Call
// before the histogram is shared; Observe/ObserveNS are unaffected, and
// ObserveExemplarNS starts retaining (value, request ID) pairs.
func (h *Histogram) EnableExemplars() {
	if h == nil || h.exemplars != nil {
		return
	}
	h.exemplars = &exemplarStore{}
}

// ExemplarsEnabled reports whether the histogram retains exemplars.
func (h *Histogram) ExemplarsEnabled() bool {
	return h != nil && h.exemplars != nil
}

// ObserveExemplarNS records one duration like ObserveNS and, when the
// histogram has an exemplar store, retains (v, reqID) as a candidate
// exemplar for v's latency region. reqID 0 means "no request identity"
// and records the duration without an exemplar.
func (h *Histogram) ObserveExemplarNS(v int64, reqID uint64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if es := h.exemplars; es != nil && reqID != 0 {
		es.observe(v, reqID)
	}
}

// Exemplars returns the retained exemplars, slowest first. Empty when
// the store is disabled or nothing has been retained yet.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil || h.exemplars == nil {
		return nil
	}
	var out []Exemplar
	for i := range h.exemplars.slots {
		if ex, ok := h.exemplars.slots[i].load(); ok {
			out = append(out, ex)
		}
	}
	// Regions are octaves, so slot order is value order; reverse for
	// slowest-first without a sort.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
