package telemetry

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexUpperConsistent(t *testing.T) {
	// Every bucket's inclusive upper bound must map back to that bucket,
	// and the bound one past it must map to the next.
	for i := 0; i < numBuckets-1; i++ {
		up := bucketUpper(i)
		if got := bucketIndex(up); got != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", i, up, got)
		}
		if got := bucketIndex(up + 1); got != i+1 {
			t.Fatalf("bucketIndex(%d) = %d, want %d", up+1, got, i+1)
		}
	}
}

func TestBucketRelativeError(t *testing.T) {
	// The log-linear scheme bounds the relative width of any bucket
	// above the linear range by 2^-subBits.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := rng.Int63n(int64(1) << 40)
		up := bucketUpper(bucketIndex(v))
		if up < v {
			t.Fatalf("upper bound %d below value %d", up, v)
		}
		if v >= subCount {
			if relErr := float64(up-v) / float64(v); relErr > 1.0/subCount {
				t.Fatalf("value %d: upper %d, relative error %.4f > %.4f", v, up, relErr, 1.0/subCount)
			}
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("test_seconds", "test")
	// A known uniform distribution: 1..1000 µs.
	for i := 1; i <= 1000; i++ {
		h.ObserveNS(int64(i) * 1000)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count %d, want 1000", s.Count)
	}
	checks := []struct {
		q    float64
		want int64 // exact value at that rank, ns
	}{{0.5, 500_000}, {0.9, 900_000}, {0.99, 990_000}, {0.999, 999_000}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if relErr := math.Abs(float64(got-c.want)) / float64(c.want); relErr > 1.0/subCount {
			t.Errorf("p%g = %d ns, want %d within %.2f%%", c.q*100, got, c.want, 100.0/subCount)
		}
	}
	if mean := s.MeanNS(); math.Abs(mean-500_500) > 1 {
		t.Errorf("mean %.1f, want 500500", mean)
	}
	if max := s.MaxNS(); max < 1_000_000 || float64(max) > 1_000_000*(1+1.0/subCount)+1 {
		t.Errorf("max %d, want ~1000000", max)
	}
}

func TestHistogramEdge(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if nilH.Count() != 0 {
		t.Fatal("nil histogram counted")
	}
	s := nilH.Snapshot()
	if s.Quantile(0.5) != 0 || s.MeanNS() != 0 || s.MaxNS() != 0 {
		t.Fatal("nil snapshot not empty")
	}

	h := NewHistogram("edge", "")
	h.ObserveNS(-5) // clamps to 0
	h.ObserveNS(0)
	h.ObserveNS(math.MaxInt64)
	s = h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count %d, want 3", s.Count)
	}
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("median %d, want 0", q)
	}
	if s.Quantile(1) <= 0 {
		t.Fatalf("p100 %d, want huge", s.Quantile(1))
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram("a", "")
	b := NewHistogram("b", "")
	for i := 0; i < 500; i++ {
		a.ObserveNS(1000)
		b.ObserveNS(9000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 1000 {
		t.Fatalf("merged count %d", sa.Count)
	}
	if sa.SumNS != 500*1000+500*9000 {
		t.Fatalf("merged sum %d", sa.SumNS)
	}
	// Median of the merged set sits between the two modes.
	if q := sa.Quantile(0.5); q < 1000 || q > 9000+9000/subCount {
		t.Fatalf("merged median %d", q)
	}
	var empty HistogramSnapshot
	empty.Merge(sa)
	if empty.Count != 1000 {
		t.Fatalf("merge into zero snapshot: count %d", empty.Count)
	}
	empty.Merge(nil) // must not panic
}

func TestHistogramConcurrent(t *testing.T) {
	// Concurrent Observe + Snapshot under -race; totals must balance.
	h := NewHistogram("conc", "")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot().Quantile(0.99)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveNS(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestCumulativeLE(t *testing.T) {
	h := NewHistogram("le", "")
	for i := 0; i < 100; i++ {
		h.ObserveNS(1 << 12) // 4096
	}
	for i := 0; i < 50; i++ {
		h.ObserveNS(1 << 20)
	}
	s := h.Snapshot()
	if got := s.CumulativeLE(1 << 13); got != 100 {
		t.Fatalf("<=8192: %d, want 100", got)
	}
	if got := s.CumulativeLE(1 << 21); got != 150 {
		t.Fatalf("<=2^21: %d, want 150", got)
	}
	if got := s.CumulativeLE(10); got != 0 {
		t.Fatalf("<=10: %d, want 0", got)
	}
}

func TestQuantileSummary(t *testing.T) {
	h := NewHistogram("sum", "")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	qs := h.Snapshot().Summary()
	if qs.Count != 100 {
		t.Fatalf("count %d", qs.Count)
	}
	if qs.P50MS < 45 || qs.P50MS > 55 {
		t.Fatalf("p50 %.2f ms, want ~50", qs.P50MS)
	}
	if qs.P99MS < 95 || qs.P99MS > 107 {
		t.Fatalf("p99 %.2f ms, want ~99", qs.P99MS)
	}
	if qs.MaxMS < qs.P999MS {
		t.Fatalf("max %.2f < p999 %.2f", qs.MaxMS, qs.P999MS)
	}
}

// BenchmarkHistogramObserve is the histogram-path cost guard: recording
// must stay a few atomic adds so per-frame and per-request observation
// never shows up in the overhead budget.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("bench", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNS(int64(i) * 997)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram("bench", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			v += 997
			h.ObserveNS(v)
		}
	})
}
