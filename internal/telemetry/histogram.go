// Package telemetry is the request-level observability layer of the
// render service: latency distributions, a standard exposition format,
// and the ability to explain any single slow request.
//
// It grows the per-frame means of internal/perf (the paper's Figure 5/6
// execution-time breakdowns) into production-grade telemetry:
//
//   - Histogram: a lock-free log-linear (HDR-style) histogram of
//     nanosecond durations with p50/p90/p99/p999 quantile estimation and
//     mergeable snapshots. Recording is three atomic adds; snapshots
//     never stop writers.
//   - Prometheus text-format exposition (prometheus.go): counters,
//     gauges and histogram _bucket/_sum/_count series, served by the
//     render service's /metrics endpoint under content negotiation.
//   - Per-request span traces (spans.go): every phase of a request —
//     admission, cache lookup/build, setup, per-worker composite
//     (own/steal), warp, encode — as timestamped spans, retained in a
//     fixed-size ring with head + tail-latency sampling and exportable
//     as Chrome trace-event JSON or as the paper's per-worker
//     busy/wait/imbalance timeline.
//   - log/slog helpers (log.go): request-ID generation and context
//     threading for structured logs.
//
// Like internal/perf and internal/trace, every recording site in the
// render path is nil-checked: with telemetry detached the frame loop
// performs no clock reads, allocates nothing, and renders
// byte-identically (guarded by TestPerfOverheadGuard).
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The bucket scheme is log-linear, the layout HDR histograms and
// OpenTelemetry exponential histograms share: each power-of-two octave
// of the nanosecond range is split into 2^subBits linear sub-buckets,
// bounding the relative error of any reconstructed quantile by
// 2^-subBits (6.25%) while covering 1ns..9.2s..centuries in under a
// thousand buckets. Values 0..subCount-1 get exact unit buckets.
const (
	subBits  = 4
	subCount = 1 << subBits
	// numBuckets covers every non-negative int64: unit buckets below
	// subCount, then subCount sub-buckets for each exponent subBits..62
	// (the top bucket's inclusive upper bound is exactly MaxInt64).
	numBuckets = subCount + (63-subBits)*subCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= subBits
	sub := int((uint64(v) >> uint(exp-subBits)) & (subCount - 1))
	return subCount + (exp-subBits)*subCount + sub
}

// bucketUpper returns the largest value mapping to bucket i (the
// inclusive upper bound quantiles report).
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	j := i - subCount
	exp := uint(j/subCount + subBits)
	sub := int64(j % subCount)
	width := int64(1) << (exp - subBits)
	lo := int64(1)<<exp | sub*width
	return lo + width - 1
}

// Histogram is a lock-free log-linear histogram of nanosecond
// durations. The zero value is unusable; construct with NewHistogram.
// Observe is safe for any number of concurrent callers (three atomic
// adds, no locks); Snapshot is safe concurrently with Observe.
type Histogram struct {
	name, help string
	count      atomic.Int64
	sum        atomic.Int64
	// exemplars, when attached via EnableExemplars, retains per-region
	// (value, request ID) pairs on the ObserveExemplarNS path. Nil (the
	// default) leaves every Observe variant untouched.
	exemplars *exemplarStore
	buckets   [numBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram. name should be a valid
// Prometheus metric name (the exposition layer appends _bucket, _sum
// and _count to it); help is its exposition HELP text.
func NewHistogram(name, help string) *Histogram {
	return &Histogram{name: name, help: help}
}

// Name returns the histogram's metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one duration. Negative durations clamp to zero.
// No-op on a nil receiver, so disabled telemetry paths need no guard.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.ObserveNS(int64(d))
}

// ObserveNS records one duration given in nanoseconds.
func (h *Histogram) ObserveNS(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures the histogram's current state. Because recording is
// three independent atomic adds, a snapshot taken mid-Observe can be
// torn by one in-flight observation (count and buckets may differ by
// one); quantiles tolerate that by clamping the target rank.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{}
	if h == nil {
		return s
	}
	s.Name = h.name
	s.Help = h.help
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	s.Counts = make([]int64, numBuckets)
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable-by-convention copy of a Histogram:
// the value quantiles, merges and exposition work from. Merging
// snapshots from several histograms (or several processes) is exact —
// all histograms share the same bucket boundaries.
type HistogramSnapshot struct {
	Name   string
	Help   string
	Count  int64
	SumNS  int64
	Counts []int64 // per-bucket counts, len numBuckets (nil = empty)
}

// Merge adds other's observations into s.
func (s *HistogramSnapshot) Merge(other *HistogramSnapshot) {
	if other == nil || other.Count == 0 {
		return
	}
	if s.Counts == nil {
		s.Counts = make([]int64, numBuckets)
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Count += other.Count
	s.SumNS += other.SumNS
}

// Quantile estimates the q-quantile (0 <= q <= 1) in nanoseconds: the
// inclusive upper bound of the bucket holding the rank-ceil(q*count)
// observation, so the relative error is bounded by the bucket scheme's
// 6.25%. Returns 0 on an empty snapshot.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s == nil || s.Count <= 0 || len(s.Counts) == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			return bucketUpper(i)
		}
	}
	return bucketUpper(numBuckets - 1)
}

// MeanNS returns the mean observation in nanoseconds.
func (s *HistogramSnapshot) MeanNS() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}

// MaxNS returns the upper bound of the highest occupied bucket — an
// estimate of the maximum observation within the bucket scheme's error.
func (s *HistogramSnapshot) MaxNS() int64 {
	if s == nil {
		return 0
	}
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] != 0 {
			return bucketUpper(i)
		}
	}
	return 0
}

// CumulativeLE returns the number of observations <= bound (in
// nanoseconds): the count a Prometheus le-bucket reports. Bounds that
// are exact powers of two coincide with bucket boundaries, making the
// count exact; other bounds round down to the nearest boundary.
func (s *HistogramSnapshot) CumulativeLE(bound int64) int64 {
	if s == nil {
		return 0
	}
	var cum int64
	for i, c := range s.Counts {
		if bucketUpper(i) > bound {
			break
		}
		cum += c
	}
	return cum
}

// QuantileSummary is the marshal-friendly digest of a snapshot that
// /debug/latency and BENCH_latency.json carry: milliseconds, because
// they are read by humans and plotting scripts.
type QuantileSummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Summary digests the snapshot into quantiles. A nil snapshot digests
// to the zero summary, like an empty one.
func (s *HistogramSnapshot) Summary() QuantileSummary {
	if s == nil {
		return QuantileSummary{}
	}
	const ms = 1e6
	return QuantileSummary{
		Count:  s.Count,
		MeanMS: s.MeanNS() / ms,
		P50MS:  float64(s.Quantile(0.50)) / ms,
		P90MS:  float64(s.Quantile(0.90)) / ms,
		P95MS:  float64(s.Quantile(0.95)) / ms,
		P99MS:  float64(s.Quantile(0.99)) / ms,
		P999MS: float64(s.Quantile(0.999)) / ms,
		MaxMS:  float64(s.MaxNS()) / ms,
	}
}
