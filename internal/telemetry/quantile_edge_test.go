package telemetry

import (
	"math"
	"strings"
	"testing"

	"shearwarp/internal/telemetry/promtest"
)

// The quantile digests feed SLO decisions and dashboards, so their edge
// cases are pinned here: an empty histogram, a single sample, every
// sample in one bucket, and merges of disjoint snapshots must never
// produce NaN, negative, or non-monotone quantiles, and the Prometheus
// exposition of each must stay parseable.

// checkSummarySane fails on NaN, negative, or non-monotone quantiles.
func checkSummarySane(t *testing.T, s QuantileSummary) {
	t.Helper()
	vals := []float64{s.MeanMS, s.P50MS, s.P90MS, s.P95MS, s.P99MS, s.P999MS, s.MaxMS}
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("summary value %d is not finite: %+v", i, s)
		}
		if v < 0 {
			t.Fatalf("summary value %d is negative: %+v", i, s)
		}
	}
	if s.P50MS > s.P90MS || s.P90MS > s.P95MS || s.P95MS > s.P99MS ||
		s.P99MS > s.P999MS || s.P999MS > s.MaxMS {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewHistogram("empty", "")
	s := h.Snapshot()
	if q := s.Quantile(0.99); q != 0 {
		t.Fatalf("empty p99 = %d, want 0", q)
	}
	if m := s.MeanNS(); m != 0 {
		t.Fatalf("empty mean = %g, want 0", m)
	}
	if m := s.MaxNS(); m != 0 {
		t.Fatalf("empty max = %d, want 0", m)
	}
	checkSummarySane(t, s.Summary())

	// A nil snapshot behaves like an empty one.
	var nilSnap *HistogramSnapshot
	if q := nilSnap.Quantile(0.5); q != 0 {
		t.Fatalf("nil snapshot p50 = %d", q)
	}
	checkSummarySane(t, nilSnap.Summary())
}

func TestQuantileSingleSample(t *testing.T) {
	h := NewHistogram("one", "")
	h.ObserveNS(1_000_000) // 1ms
	s := h.Snapshot()
	// Every quantile of a single observation is that observation's
	// bucket bound, within the scheme's 6.25% relative error.
	for _, q := range []float64{0, 0.001, 0.5, 0.99, 0.999, 1} {
		v := s.Quantile(q)
		if v < 1_000_000 || float64(v) > 1_000_000*1.0625 {
			t.Fatalf("q=%g: %d outside [1ms, 1.0625ms]", q, v)
		}
	}
	checkSummarySane(t, s.Summary())
}

func TestQuantileAllSamplesOneBucket(t *testing.T) {
	h := NewHistogram("uni", "")
	for i := 0; i < 1000; i++ {
		h.ObserveNS(4096) // exact bucket boundary
	}
	s := h.Snapshot()
	want := s.Quantile(0.5)
	for _, q := range []float64{0.001, 0.9, 0.99, 0.999, 1} {
		if v := s.Quantile(q); v != want {
			t.Fatalf("q=%g: %d != p50 %d though all samples share a bucket", q, v, want)
		}
	}
	if want < 4096 || want > 4096+255 {
		t.Fatalf("p50 = %d, want within the 4096 bucket", want)
	}
	checkSummarySane(t, s.Summary())
}

func TestQuantileMergeDisjoint(t *testing.T) {
	lo := NewHistogram("lo", "")
	hi := NewHistogram("hi", "")
	for i := 0; i < 900; i++ {
		lo.ObserveNS(1_000) // 1µs
	}
	for i := 0; i < 100; i++ {
		hi.ObserveNS(1_000_000_000) // 1s
	}
	m := lo.Snapshot()
	m.Merge(hi.Snapshot())
	if m.Count != 1000 {
		t.Fatalf("merged count = %d, want 1000", m.Count)
	}
	if p50 := m.Quantile(0.5); p50 > 2_000 {
		t.Fatalf("merged p50 = %d, want ~1µs", p50)
	}
	if p99 := m.Quantile(0.99); p99 < 900_000_000 {
		t.Fatalf("merged p99 = %d, want ~1s", p99)
	}
	checkSummarySane(t, m.Summary())

	// Merging into an empty snapshot (nil Counts) works too.
	empty := NewHistogram("e", "").Snapshot()
	empty.Merge(hi.Snapshot())
	if empty.Count != 100 || empty.Quantile(0.5) < 900_000_000 {
		t.Fatalf("merge into empty: count %d p50 %d", empty.Count, empty.Quantile(0.5))
	}
	checkSummarySane(t, empty.Summary())

	// Merging an empty snapshot is a no-op.
	before := m.Count
	m.Merge(NewHistogram("e2", "").Snapshot())
	m.Merge(nil)
	if m.Count != before {
		t.Fatalf("merging empty changed count: %d -> %d", before, m.Count)
	}
}

// TestPromExpositionEdgeCases runs empty, single-sample and merged
// histograms through the text exposition and the promtest checker: the
// scrape must parse whatever state the histograms are in.
func TestPromExpositionEdgeCases(t *testing.T) {
	var sb strings.Builder
	pw := NewPromWriter(&sb)
	empty := NewHistogram("edge_empty_seconds", "Empty histogram.")
	one := NewHistogram("edge_one_seconds", "One sample.")
	one.ObserveNS(5_000_000)
	merged := NewHistogram("edge_merged_seconds", "Merged snapshot.")
	snap := merged.Snapshot()
	snap.Merge(one.Snapshot())

	pw.Histogram("edge_empty_seconds", "Empty histogram.", empty.Snapshot())
	pw.Histogram("edge_one_seconds", "One sample.", one.Snapshot())
	pw.Histogram("edge_merged_seconds", "Merged snapshot.", snap)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	samples := promtest.Validate(t, sb.String())
	if samples["edge_empty_seconds_count"] != 0 {
		t.Fatalf("empty count = %g", samples["edge_empty_seconds_count"])
	}
	if samples["edge_one_seconds_count"] != 1 || samples["edge_merged_seconds_count"] != 1 {
		t.Fatal("single-sample counts wrong in exposition")
	}
}
