package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFrameSpansConcurrent(t *testing.T) {
	epoch := time.Now()
	fs := NewFrameSpans(epoch)
	const workers, per = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				fs.Record(w, "composite-own", CatBusy, epoch.Add(time.Duration(i)*time.Microsecond), time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	spans := fs.Spans()
	if len(spans) != workers*per {
		t.Fatalf("got %d spans, want %d", len(spans), workers*per)
	}
	if fs.Dropped() != 0 {
		t.Fatalf("dropped %d, want 0", fs.Dropped())
	}
	perWorker := map[int]int{}
	for _, sp := range spans {
		perWorker[sp.Worker]++
		if sp.Name != "composite-own" || sp.Cat != CatBusy {
			t.Fatalf("corrupted span %+v", sp)
		}
	}
	for w := 0; w < workers; w++ {
		if perWorker[w] != per {
			t.Fatalf("worker %d recorded %d spans, want %d", w, perWorker[w], per)
		}
	}
}

func TestFrameSpansOverflowAndReset(t *testing.T) {
	epoch := time.Now()
	fs := NewFrameSpans(epoch)
	for i := 0; i < maxFrameSpans+30; i++ {
		fs.Record(0, "s", CatBusy, epoch, time.Nanosecond)
	}
	if got := len(fs.Spans()); got != maxFrameSpans {
		t.Fatalf("len %d, want cap %d", got, maxFrameSpans)
	}
	if fs.Dropped() != 30 {
		t.Fatalf("dropped %d, want 30", fs.Dropped())
	}
	fs.Reset(epoch.Add(time.Second))
	if len(fs.Spans()) != 0 || fs.Dropped() != 0 {
		t.Fatal("reset did not clear recorder")
	}
	fs.Record(1, "after", CatSync, epoch.Add(time.Second+time.Millisecond), time.Millisecond)
	sp := fs.Spans()
	if len(sp) != 1 || sp[0].StartNS != int64(time.Millisecond) {
		t.Fatalf("post-reset span %+v, want start rebased to new epoch", sp)
	}
}

func TestFrameSpansNil(t *testing.T) {
	var fs *FrameSpans
	fs.Record(0, "x", CatBusy, time.Now(), time.Second) // must not panic
	fs.Reset(time.Now())
	if fs.Spans() != nil || fs.Dropped() != 0 {
		t.Fatal("nil recorder not empty")
	}
}

// mkTrace builds a trace with the given id, start and duration.
func mkTrace(id uint64, startNS, durNS int64) *Trace {
	return &Trace{ID: id, Label: "render", StartNS: startNS, DurNS: durNS, Status: 200}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4, 2, 2) // ring 4, head 2, slow 2
	// 10 traces; trace 5 and 6 are the slowest.
	for i := 1; i <= 10; i++ {
		dur := int64(i * 1000)
		if i == 5 || i == 6 {
			dur = int64(1e9) + int64(i)
		}
		tr.Add(mkTrace(uint64(i), int64(i), dur))
	}
	got := map[uint64]bool{}
	for _, x := range tr.Traces() {
		got[x.ID] = true
	}
	// head keeps 1,2; ring keeps 7,8,9,10; slow keeps 5,6.
	for _, want := range []uint64{1, 2, 5, 6, 7, 8, 9, 10} {
		if !got[want] {
			t.Fatalf("trace %d missing from retention; have %v", want, got)
		}
	}
	if got[3] || got[4] {
		t.Fatalf("traces 3/4 should have aged out; have %v", got)
	}
	// Ordered by start.
	ts := tr.Traces()
	for i := 1; i < len(ts); i++ {
		if ts[i].StartNS < ts[i-1].StartNS {
			t.Fatal("Traces not ordered by start")
		}
	}
	if tr.Find(7) == nil || tr.Find(3) != nil {
		t.Fatal("Find mismatch")
	}
}

func TestTracerAmend(t *testing.T) {
	tr := NewTracer(8, 2, 2)
	tr.Add(mkTrace(1, 0, 1000))
	tr.Amend(1, 503, 5000, Span{Name: "encode", Cat: CatRequest, Worker: -1, StartNS: 1000, DurNS: 4000})
	x := tr.Find(1)
	if x.Status != 503 || x.DurNS != 5000 || len(x.Spans) != 1 || x.Spans[0].Name != "encode" {
		t.Fatalf("amend not applied: %+v", x)
	}
	// Shorter duration must not shrink the trace.
	tr.Amend(1, 200, 10)
	if x.DurNS != 5000 {
		t.Fatalf("amend shrank duration to %d", x.DurNS)
	}
	tr.Amend(999, 200, 1) // unknown id: no-op, no panic
	var nilT *Tracer
	nilT.Add(mkTrace(2, 0, 1))
	nilT.Amend(2, 200, 1)
	if nilT.Traces() != nil {
		t.Fatal("nil tracer retained traces")
	}
}

func TestTracerIDsUnique(t *testing.T) {
	tr := NewTracer(0, 0, 0)
	const n = 1000
	ids := make(chan uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n/10; j++ {
				ids <- tr.NextID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[uint64]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := &Trace{ID: 7, Label: "render yaw=30", StartNS: 0, DurNS: 3_000_000, Status: 200, Spans: []Span{
		{Name: "admission", Cat: CatRequest, Worker: -1, StartNS: 0, DurNS: 10_000},
		{Name: "composite-own", Cat: CatBusy, Worker: 0, StartNS: 20_000, DurNS: 1_000_000},
		{Name: "wait", Cat: CatSync, Worker: 1, StartNS: 20_000, DurNS: 500_000},
		{Name: "warp", Cat: CatBusy, Worker: 1, StartNS: 520_000, DurNS: 400_000},
	}}
	var b strings.Builder
	if err := WriteChromeTrace(&b, []*Trace{tr}); err != nil {
		t.Fatalf("write: %v", err)
	}
	var got struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  uint64  `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("output is not valid trace-event JSON: %v\n%s", err, b.String())
	}
	if got.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", got.DisplayTimeUnit)
	}
	var x, meta int
	for _, ev := range got.TraceEvents {
		switch ev.Ph {
		case "X":
			x++
			if ev.PID != 7 {
				t.Fatalf("event pid %d, want trace id 7", ev.PID)
			}
			if ev.Name == "warp" {
				if ev.TID != 2 { // worker 1 -> tid 2
					t.Fatalf("warp tid %d, want 2", ev.TID)
				}
				if ev.TS != 520 || ev.Dur != 400 { // µs
					t.Fatalf("warp ts/dur %.1f/%.1f, want 520/400", ev.TS, ev.Dur)
				}
			}
			if ev.Name == "admission" && ev.TID != 0 {
				t.Fatalf("request-lane tid %d, want 0", ev.TID)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if x != len(tr.Spans) {
		t.Fatalf("%d complete events, want %d", x, len(tr.Spans))
	}
	if meta < 4 { // process_name + 3 thread lanes
		t.Fatalf("%d metadata events, want >= 4", meta)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeTrace(&b, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !strings.Contains(b.String(), `"traceEvents": []`) {
		t.Fatalf("empty trace must still carry traceEvents array:\n%s", b.String())
	}
}

func TestTimeline(t *testing.T) {
	// Worker 0 fully busy; worker 1 half busy, quarter sync, rest imbalance.
	tr := &Trace{ID: 3, Label: "render", DurNS: 4_000_000, Status: 200, Spans: []Span{
		{Name: "composite-own", Cat: CatBusy, Worker: 0, StartNS: 0, DurNS: 4_000_000},
		{Name: "composite-own", Cat: CatBusy, Worker: 1, StartNS: 0, DurNS: 2_000_000},
		{Name: "wait", Cat: CatSync, Worker: 1, StartNS: 2_000_000, DurNS: 1_000_000},
		{Name: "admission", Cat: CatRequest, Worker: -1, StartNS: 0, DurNS: 50_000},
	}}
	out := Timeline(tr)
	for _, want := range []string{"trace 3", "proc", "busy(ms)", "sync(ms)", "imbal(ms)", "2 workers"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var w0, w1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "0 ") {
			w0 = l
		}
		if strings.HasPrefix(l, "1 ") {
			w1 = l
		}
	}
	if w0 == "" || w1 == "" {
		t.Fatalf("missing worker rows:\n%s", out)
	}
	// Worker 0's bar is all B; worker 1's has B, S and imbalance dots.
	bar := func(row string) string {
		i, j := strings.Index(row, "|"), strings.LastIndex(row, "|")
		if i < 0 || j <= i {
			t.Fatalf("row has no bar: %s", row)
		}
		return row[i+1 : j]
	}
	if b0 := bar(w0); strings.Contains(b0, ".") || !strings.Contains(b0, "B") {
		t.Fatalf("worker 0 bar should be fully busy: %s", w0)
	}
	for _, ch := range []string{"B", "S", "."} {
		if !strings.Contains(bar(w1), ch) {
			t.Fatalf("worker 1 bar missing %q: %s", ch, w1)
		}
	}
	// No worker spans at all.
	empty := Timeline(&Trace{ID: 4, Label: "rejected", Status: 429, Spans: []Span{
		{Name: "admission", Cat: CatRequest, Worker: -1, StartNS: 0, DurNS: 10},
	}})
	if !strings.Contains(empty, "no worker spans") {
		t.Fatalf("want no-worker notice:\n%s", empty)
	}
}
