package memsim

import (
	"math/rand"
	"testing"
)

// Randomized invariants over the coherence protocol and classifier.
func TestRandomAccessInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		procs := 1 + rng.Intn(8)
		cfg := Config{
			Procs: procs, CacheBytes: 512 << rng.Intn(4), LineBytes: 16 << rng.Intn(3),
			Assoc:     1 + rng.Intn(4),
			LocalMiss: 50, Remote2Hop: 150, Remote3Hop: 200, UpgradeLat: 40,
			ProcsPerNode: 1 + rng.Intn(2), PageBytes: 4096, Occupancy: 4,
			FirstTouch: rng.Intn(2) == 0,
		}
		s := New(cfg)
		var now int64
		for i := 0; i < 3000; i++ {
			p := rng.Intn(procs)
			addr := uint64(rng.Intn(8192))
			nb := 1 + rng.Intn(200)
			write := rng.Intn(3) == 0
			stall := s.Access(p, addr, nb, write, now)
			if stall < 0 {
				t.Fatalf("negative stall %d", stall)
			}
			now += 10 + stall
		}
		tot := s.Totals()
		if tot.TotalMisses() > tot.Refs {
			t.Fatalf("misses %d exceed refs %d", tot.TotalMisses(), tot.Refs)
		}
		if tot.Remote+tot.Local != tot.TotalMisses() {
			t.Fatalf("local %d + remote %d != misses %d", tot.Local, tot.Remote, tot.TotalMisses())
		}
		if procs == 1 && tot.Misses[TrueSharing]+tot.Misses[FalseSharing]+tot.Upgrades != 0 {
			t.Fatal("sharing events on a uniprocessor")
		}
		// Directory/cache consistency: every cached line must be in the
		// directory's sharer set.
		for p, c := range s.caches {
			for _, w := range c.ways {
				if w == 0 {
					continue
				}
				st := s.lines[w-1]
				if st == nil || st.sharers&(1<<uint(p)) == 0 {
					t.Fatalf("proc %d caches line %d without a directory entry", p, w-1)
				}
			}
		}
		// And every directory sharer actually holds the line.
		for line, st := range s.lines {
			for p := 0; p < procs; p++ {
				if st.sharers&(1<<uint(p)) != 0 && !s.caches[p].Lookup(line) {
					t.Fatalf("directory claims proc %d shares line %d but cache disagrees", p, line)
				}
			}
			if st.owner >= 0 && st.sharers&(1<<uint(st.owner)) == 0 {
				t.Fatalf("dirty owner %d of line %d is not a sharer", st.owner, line)
			}
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (ProcStats, int64) {
		s := New(Config{
			Procs: 4, CacheBytes: 2048, LineBytes: 32, Assoc: 2,
			LocalMiss: 50, Remote2Hop: 150, Remote3Hop: 200, UpgradeLat: 40,
			ProcsPerNode: 1, PageBytes: 4096, Occupancy: 4,
		})
		rng := rand.New(rand.NewSource(5))
		var total int64
		for i := 0; i < 2000; i++ {
			total += s.Access(rng.Intn(4), uint64(rng.Intn(4096)), 1+rng.Intn(64),
				rng.Intn(4) == 0, int64(i*7))
		}
		return s.Totals(), total
	}
	a, sa := run()
	b, sb := run()
	if a != b || sa != sb {
		t.Fatal("memory simulation not deterministic")
	}
}

func TestFirstTouchHomesAtFirstAccessor(t *testing.T) {
	cfg := Config{
		Procs: 4, CacheBytes: 1024, LineBytes: 64, Assoc: 2,
		LocalMiss: 50, Remote2Hop: 150, Remote3Hop: 200, UpgradeLat: 40,
		ProcsPerNode: 1, PageBytes: 4096, Occupancy: 4, FirstTouch: true,
	}
	s := New(cfg)
	// Proc 3 touches page 0 first: its miss must be local.
	s.Access(3, 0, 4, false, 0)
	if s.Stats[3].Local != 1 || s.Stats[3].Remote != 0 {
		t.Fatalf("first touch not local: %+v", s.Stats[3])
	}
	// Proc 0's subsequent access to the same page is remote.
	s.Access(0, 128, 4, false, 0)
	if s.Stats[0].Remote != 1 {
		t.Fatalf("second node's access not remote: %+v", s.Stats[0])
	}
}

func TestUpgradeVsMissAccounting(t *testing.T) {
	s := New(Config{
		Procs: 2, CacheBytes: 1024, LineBytes: 64, Assoc: 2,
		LocalMiss: 50, Remote2Hop: 150, Remote3Hop: 200, UpgradeLat: 40,
		ProcsPerNode: 1, PageBytes: 4096, Occupancy: 4,
	})
	s.Access(0, 0, 4, false, 0) // P0 read-miss
	s.Access(0, 0, 4, true, 0)  // P0 write hit on exclusive line: no upgrade
	if s.Stats[0].Upgrades != 0 {
		t.Fatal("write to an exclusive line should not count as an upgrade")
	}
	s.Access(1, 0, 4, false, 0) // P1 shares
	s.Access(0, 4, 4, true, 0)  // P0 write hit on shared line: upgrade
	if s.Stats[0].Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", s.Stats[0].Upgrades)
	}
	if s.Stats[0].TotalMisses() != 1 {
		t.Fatalf("upgrade wrongly counted as a miss: %+v", s.Stats[0])
	}
}

func TestWriteMissTransfersOwnership(t *testing.T) {
	s := New(Config{
		Procs: 3, CacheBytes: 1024, LineBytes: 64, Assoc: 2,
		LocalMiss: 50, Remote2Hop: 150, Remote3Hop: 200, UpgradeLat: 40,
		ProcsPerNode: 1, PageBytes: 4096, Occupancy: 4,
	})
	s.Access(0, 0, 4, true, 0)
	s.Access(1, 0, 4, true, 0)
	s.Access(2, 0, 4, true, 0)
	st := s.lines[0]
	if st.owner != 2 {
		t.Fatalf("owner = %d, want 2", st.owner)
	}
	if st.sharers != 1<<2 {
		t.Fatalf("sharers = %b, want only proc 2", st.sharers)
	}
}
