// Package memsim is the trace-driven multiprocessor memory-system
// simulator used for every cache-behaviour figure in the paper: per-
// processor set-associative LRU caches kept coherent by a directory-based
// invalidation protocol over physically distributed (or centralized)
// memory, with miss classification into cold, capacity (replacement), true
// sharing and false sharing misses following Dubois/Woo et al., plus
// local-vs-remote costing and per-node contention — the role Tango-Lite
// plus the memory-system simulator played for the authors (section 3.2).
package memsim

// Cache models one processor's cache as tags only (data values live in the
// real Go arrays; the simulator needs residency, not contents).
type Cache struct {
	sets  int
	assoc int
	// ways[set*assoc+way] holds the line address + 1 (0 = invalid).
	ways []uint64
	// lru[set*assoc+way] holds the last-use tick.
	lru  []int64
	tick int64
}

// NewCache builds a cache of the given total size, line size and
// associativity (all in bytes / ways). Size is rounded down to a whole
// number of sets; a cache smaller than assoc lines becomes fully
// associative with one set.
func NewCache(sizeBytes, lineBytes, assoc int) *Cache {
	lines := sizeBytes / lineBytes
	if lines < 1 {
		lines = 1
	}
	if assoc < 1 {
		assoc = 1
	}
	if assoc > lines {
		assoc = lines
	}
	sets := lines / assoc
	if sets < 1 {
		sets = 1
	}
	// Power-of-two sets for cheap indexing.
	p2 := 1
	for p2*2 <= sets {
		p2 *= 2
	}
	sets = p2
	return &Cache{
		sets:  sets,
		assoc: assoc,
		ways:  make([]uint64, sets*assoc),
		lru:   make([]int64, sets*assoc),
	}
}

// Lines returns the cache capacity in lines.
func (c *Cache) Lines() int { return c.sets * c.assoc }

func (c *Cache) set(line uint64) int { return int(line % uint64(c.sets)) }

// Lookup reports whether the line is resident, updating LRU state on a hit.
func (c *Cache) Lookup(line uint64) bool {
	base := c.set(line) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.ways[base+w] == line+1 {
			c.tick++
			c.lru[base+w] = c.tick
			return true
		}
	}
	return false
}

// Insert brings the line into the cache, returning the evicted line (and
// true) if a valid line was displaced.
func (c *Cache) Insert(line uint64) (uint64, bool) {
	base := c.set(line) * c.assoc
	victim := 0
	for w := 0; w < c.assoc; w++ {
		if c.ways[base+w] == 0 {
			victim = w
			break
		}
		if c.lru[base+w] < c.lru[base+victim] {
			victim = w
		}
	}
	old := c.ways[base+victim]
	c.tick++
	c.ways[base+victim] = line + 1
	c.lru[base+victim] = c.tick
	if old == 0 {
		return 0, false
	}
	return old - 1, true
}

// Invalidate drops the line if resident, reporting whether it was.
func (c *Cache) Invalidate(line uint64) bool {
	base := c.set(line) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.ways[base+w] == line+1 {
			c.ways[base+w] = 0
			return true
		}
	}
	return false
}

// Clear invalidates the whole cache (between simulated frames/experiments).
func (c *Cache) Clear() {
	clear(c.ways)
	clear(c.lru)
}
