package memsim

import (
	"fmt"

	"shearwarp/internal/trace"
)

// wordBytes is the granularity of write tracking for true/false sharing
// classification.
const wordBytes = 4

// Config describes a simulated shared-address-space machine's memory
// system. All latencies are in processor cycles; the processor itself is
// the paper's idealized 1-CPI machine, so cache hits cost nothing beyond
// the instruction cycles the kernels already count.
type Config struct {
	Procs      int
	CacheBytes int
	LineBytes  int
	Assoc      int

	LocalMiss  int // satisfied in the local node's memory
	Remote2Hop int // clean copy at a remote home
	Remote3Hop int // dirty copy in a third node
	UpgradeLat int // write hit on a shared line (invalidation round)

	Centralized  bool // bus-based (Challenge): every miss costs LocalMiss + bus contention
	ProcsPerNode int  // node size for home placement (DASH: 4; Simulator: 1)
	PageBytes    int  // placement granularity; pages are homed round-robin
	Occupancy    int  // controller/bus occupancy per request (drives contention)

	// FirstTouch homes each page at the node of its first accessor instead
	// of round-robin. The paper uses round-robin because the viewpoint is
	// unpredictable; the ablation experiment quantifies the difference.
	FirstTouch bool
}

func (c *Config) normalize() {
	if c.Procs < 1 {
		c.Procs = 1
	}
	if c.LineBytes < wordBytes {
		c.LineBytes = wordBytes
	}
	if c.Assoc < 1 {
		c.Assoc = 1
	}
	if c.ProcsPerNode < 1 {
		c.ProcsPerNode = 1
	}
	if c.PageBytes < c.LineBytes {
		c.PageBytes = 4096
	}
	if c.Occupancy < 1 {
		c.Occupancy = 1
	}
}

// MissClass labels why a miss occurred.
type MissClass int

// Miss classes, following the operational Dubois/Woo scheme described in
// DESIGN.md. Conflict misses are folded into Capacity (replacement).
const (
	Cold MissClass = iota
	Capacity
	TrueSharing
	FalseSharing
	numClasses
)

func (m MissClass) String() string {
	switch m {
	case Cold:
		return "cold"
	case Capacity:
		return "capacity"
	case TrueSharing:
		return "true-sharing"
	case FalseSharing:
		return "false-sharing"
	}
	return fmt.Sprintf("MissClass(%d)", int(m))
}

// ProcStats accumulates one processor's memory behaviour.
type ProcStats struct {
	Refs       int64 // word references issued
	Misses     [numClasses]int64
	Upgrades   int64 // write hits that had to invalidate sharers
	Remote     int64 // misses not satisfied in the local node
	Local      int64 // misses satisfied locally
	StallCyc   int64 // latency cycles (excluding contention waits)
	ContendCyc int64 // extra cycles waiting for busy controllers
	WaitN      int64 // misses that had to wait at all
	WaitMax    int64 // largest single contention wait
}

// TotalMisses sums all miss classes.
func (s ProcStats) TotalMisses() int64 {
	var t int64
	for _, m := range s.Misses {
		t += m
	}
	return t
}

// lineState is the directory entry plus classification metadata for one
// cache line.
type lineState struct {
	sharers     uint64 // procs with a valid copy
	owner       int8   // proc with the dirty copy, or -1
	everTouched uint64 // procs that ever referenced the line (cold detection)
	wordWriter  []int8 // last writer per word, or -1
	wordSeq     []uint32
	lostSeq     []uint32 // per proc: global write seq when the proc lost its copy
	lostInval   uint64   // per-proc bit: lost to invalidation (else replacement)
}

// SegMisses attributes misses to a named shared array (the per-data-
// structure view the paper's authors wanted from the R10000 counters but
// could not get, section 5.5.1).
type SegMisses struct {
	Name   string
	Misses [numClasses]int64
}

// System is one simulated machine instance. It is not goroutine-safe: the
// deterministic engine drives it from a single thread.
type System struct {
	Cfg    Config
	caches []*Cache
	lines  map[uint64]*lineState
	// busyUntil per node (or a single bus when centralized), plus the last
	// requester: consecutive requests from one processor are already spaced
	// by its own miss latency, so they do not queue behind themselves.
	busyUntil []int64
	lastProc  []int16
	writeSeq  uint32
	nodes     int
	pageHome  map[uint64]int16 // first-touch homes (when Cfg.FirstTouch)

	// Segment attribution (optional): sorted by base address.
	segs     []trace.Segment
	segStats []SegMisses

	Stats []ProcStats
}

// New builds a simulated memory system.
func New(cfg Config) *System {
	cfg.normalize()
	nodes := (cfg.Procs + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	s := &System{
		Cfg:       cfg,
		caches:    make([]*Cache, cfg.Procs),
		lines:     make(map[uint64]*lineState, 1<<16),
		busyUntil: make([]int64, max(nodes, 1)),
		lastProc:  make([]int16, max(nodes, 1)),
		pageHome:  make(map[uint64]int16),
		nodes:     nodes,
		Stats:     make([]ProcStats, cfg.Procs),
	}
	for p := range s.caches {
		s.caches[p] = NewCache(cfg.CacheBytes, cfg.LineBytes, cfg.Assoc)
	}
	return s
}

// node returns the node a processor belongs to.
func (s *System) node(p int) int { return p / s.Cfg.ProcsPerNode }

// homeNode returns the node whose memory holds the line. Default placement
// is round-robin by page (as the paper does given unpredictable
// viewpoints); with FirstTouch the page is homed at the first accessor.
func (s *System) homeNode(p int, line uint64) int {
	page := (line * uint64(s.Cfg.LineBytes)) / uint64(s.Cfg.PageBytes)
	if !s.Cfg.FirstTouch {
		return int(page % uint64(s.nodes))
	}
	if home, ok := s.pageHome[page]; ok {
		return int(home)
	}
	home := s.node(p)
	s.pageHome[page] = int16(home)
	return home
}

func (s *System) line(addr uint64) uint64 { return addr / uint64(s.Cfg.LineBytes) }

func (s *System) state(line uint64) *lineState {
	st := s.lines[line]
	if st == nil {
		words := s.Cfg.LineBytes / wordBytes
		st = &lineState{
			owner:      -1,
			wordWriter: make([]int8, words),
			wordSeq:    make([]uint32, words),
			lostSeq:    make([]uint32, s.Cfg.Procs),
		}
		for i := range st.wordWriter {
			st.wordWriter[i] = -1
		}
		s.lines[line] = st
	}
	return st
}

// Access simulates one processor referencing [addr, addr+nbytes) at the
// given simulated time, returning the stall cycles incurred (latency plus
// contention). The reference is split across the cache lines it covers.
//
// `now` is the arrival time used for contention and must be the
// processor's quantum start time: the engine schedules quanta in global
// clock order, so quantum starts are causally ordered across processors.
// Chaining each request's accumulated stall into later arrival times would
// instead let one processor's long miss chain run far into the simulated
// future inside a single quantum and charge later-scheduled (but causally
// earlier) processors phantom waits.
func (s *System) Access(p int, addr uint64, nbytes int, write bool, now int64) int64 {
	if nbytes <= 0 {
		return 0
	}
	lb := uint64(s.Cfg.LineBytes)
	first := addr / lb
	last := (addr + uint64(nbytes) - 1) / lb
	var stall int64
	for ln := first; ln <= last; ln++ {
		// Word span of this reference within the line.
		lo := uint64(0)
		if ln == first {
			lo = addr % lb
		}
		hi := lb
		if ln == last {
			hi = (addr+uint64(nbytes)-1)%lb + 1
		}
		w0 := int(lo / wordBytes)
		w1 := int((hi + wordBytes - 1) / wordBytes)
		s.Stats[p].Refs += int64(w1 - w0)
		stall += s.accessLine(p, ln, w0, w1, write, now)
	}
	return stall
}

// accessLine handles one reference to words [w0, w1) of a line.
func (s *System) accessLine(p int, line uint64, w0, w1 int, write bool, now int64) int64 {
	st := s.state(line)
	cache := s.caches[p]
	pbit := uint64(1) << uint(p)
	var stall int64

	if cache.Lookup(line) {
		if write {
			// Write hit: if others share the line, an upgrade invalidates
			// them (they will re-miss with a sharing classification).
			if st.sharers&^pbit != 0 || (st.owner >= 0 && int(st.owner) != p) {
				s.invalidateOthers(p, line, st)
				s.Stats[p].Upgrades++
				stall += int64(s.Cfg.UpgradeLat)
			}
			st.owner = int8(p)
			s.recordWrites(p, st, w0, w1)
		}
		return stall
	}

	// Miss: classify before mutating state.
	class := s.classify(p, st, pbit, w0, w1)
	s.Stats[p].Misses[class]++
	s.attribute(line, class)

	// Latency and contention. A processor's consecutive requests to the
	// same controller are spaced by its own (blocking) miss latency, so
	// only requests from a different processor queue.
	lat, contendNode, remote := s.missCost(p, line, st)
	wait := int64(0)
	if bu := s.busyUntil[contendNode]; bu > now && int(s.lastProc[contendNode]) != p+1 {
		wait = bu - now
	}
	s.lastProc[contendNode] = int16(p + 1)
	s.busyUntil[contendNode] = maxI64(now, s.busyUntil[contendNode]) + int64(s.Cfg.Occupancy)
	stall += int64(lat) + wait
	s.Stats[p].StallCyc += int64(lat)
	s.Stats[p].ContendCyc += wait
	if wait > 0 {
		s.Stats[p].WaitN++
		if wait > s.Stats[p].WaitMax {
			s.Stats[p].WaitMax = wait
		}
	}
	if remote {
		s.Stats[p].Remote++
	} else {
		s.Stats[p].Local++
	}

	// Coherence actions.
	if write {
		s.invalidateOthers(p, line, st)
		st.owner = int8(p)
	} else if st.owner >= 0 && int(st.owner) != p {
		st.owner = -1 // dirty copy written back, now shared-clean
	}
	st.sharers |= pbit
	st.everTouched |= pbit
	st.lostInval &^= pbit

	if victim, ok := cache.Insert(line); ok {
		s.evict(p, victim)
	}
	if write {
		s.recordWrites(p, st, w0, w1)
	}
	return stall
}

// classify determines the miss class for processor p touching words
// [w0, w1) of a line, following the Dubois/Woo essential-miss scheme: a
// re-miss that fetches a word written by another processor since this
// processor last held the line is true sharing, whether the copy was lost
// to an invalidation or to a replacement; an invalidation-caused re-miss
// with no such word is false sharing; a replacement-caused re-miss with no
// such word is capacity (conflicts folded in).
func (s *System) classify(p int, st *lineState, pbit uint64, w0, w1 int) MissClass {
	if st.everTouched&pbit == 0 {
		return Cold
	}
	lost := st.lostSeq[p]
	for w := w0; w < w1; w++ {
		if st.wordWriter[w] >= 0 && int(st.wordWriter[w]) != p && st.wordSeq[w] > lost {
			return TrueSharing
		}
	}
	if st.lostInval&pbit != 0 {
		return FalseSharing
	}
	return Capacity
}

// missCost returns the latency of a miss, the node whose controller it
// occupies, and whether it was remote.
func (s *System) missCost(p int, line uint64, st *lineState) (lat, contendNode int, remote bool) {
	if s.Cfg.Centralized {
		// A single shared bus: all misses cost the same and contend there.
		return s.Cfg.LocalMiss, 0, false
	}
	myNode := s.node(p)
	home := s.homeNode(p, line)
	if st.owner >= 0 && int(st.owner) != p && s.node(int(st.owner)) != myNode {
		// Dirty in another node's cache: 3-hop unless the owner sits at the
		// home node (then 2-hop).
		if s.node(int(st.owner)) == home {
			return s.Cfg.Remote2Hop, home, true
		}
		return s.Cfg.Remote3Hop, home, true
	}
	if home == myNode {
		return s.Cfg.LocalMiss, home, false
	}
	return s.Cfg.Remote2Hop, home, true
}

// invalidateOthers removes every other processor's copy, recording why for
// later classification.
func (s *System) invalidateOthers(p int, line uint64, st *lineState) {
	for q := 0; q < s.Cfg.Procs; q++ {
		if q == p {
			continue
		}
		qbit := uint64(1) << uint(q)
		if st.sharers&qbit == 0 {
			continue
		}
		s.caches[q].Invalidate(line)
		st.sharers &^= qbit
		st.lostSeq[q] = s.writeSeq
		st.lostInval |= qbit
	}
	if st.owner >= 0 && int(st.owner) != p {
		st.owner = -1
	}
}

// evict handles a replacement from p's cache.
func (s *System) evict(p int, line uint64) {
	st := s.lines[line]
	if st == nil {
		return
	}
	pbit := uint64(1) << uint(p)
	st.sharers &^= pbit
	if st.owner == int8(p) {
		st.owner = -1 // write back
	}
	st.lostSeq[p] = s.writeSeq
	st.lostInval &^= pbit
}

// recordWrites stamps the written words with the writer and a fresh global
// sequence number.
func (s *System) recordWrites(p int, st *lineState, w0, w1 int) {
	s.writeSeq++
	for w := w0; w < w1; w++ {
		st.wordWriter[w] = int8(p)
		st.wordSeq[w] = s.writeSeq
	}
}

// SetSegments enables per-array miss attribution using the address space's
// segment table.
func (s *System) SetSegments(segs []trace.Segment) {
	s.segs = append([]trace.Segment(nil), segs...)
	s.segStats = make([]SegMisses, len(segs))
	for i, sg := range s.segs {
		s.segStats[i].Name = sg.Name
	}
}

// attribute charges a miss to the segment containing the line.
func (s *System) attribute(line uint64, class MissClass) {
	if len(s.segs) == 0 {
		return
	}
	addr := line * uint64(s.Cfg.LineBytes)
	// Segments are registered in increasing base order; linear scan is fine
	// for the handful of arrays a renderer registers.
	for i := len(s.segs) - 1; i >= 0; i-- {
		if addr >= s.segs[i].Base {
			if addr < s.segs[i].Base+s.segs[i].Bytes+uint64(s.Cfg.LineBytes) {
				s.segStats[i].Misses[class]++
			}
			return
		}
	}
}

// SegmentMisses returns the per-array miss attribution (empty unless
// SetSegments was called).
func (s *System) SegmentMisses() []SegMisses {
	return append([]SegMisses(nil), s.segStats...)
}

// ResetSegmentStats clears the attribution counters (called with
// ResetStats by the drivers' warm-up logic).

// Totals aggregates all processors' stats.
func (s *System) Totals() ProcStats {
	var t ProcStats
	for i := range s.Stats {
		t.Refs += s.Stats[i].Refs
		for c := 0; c < int(numClasses); c++ {
			t.Misses[c] += s.Stats[i].Misses[c]
		}
		t.Upgrades += s.Stats[i].Upgrades
		t.Remote += s.Stats[i].Remote
		t.Local += s.Stats[i].Local
		t.StallCyc += s.Stats[i].StallCyc
		t.ContendCyc += s.Stats[i].ContendCyc
		t.WaitN += s.Stats[i].WaitN
		if s.Stats[i].WaitMax > t.WaitMax {
			t.WaitMax = s.Stats[i].WaitMax
		}
	}
	return t
}

// MissRate returns total misses per reference.
func (s *System) MissRate() float64 {
	t := s.Totals()
	if t.Refs == 0 {
		return 0
	}
	return float64(t.TotalMisses()) / float64(t.Refs)
}

// ResetStats clears the statistics (including segment attribution) but
// keeps cache and directory state.
func (s *System) ResetStats() {
	for i := range s.Stats {
		s.Stats[i] = ProcStats{}
	}
	for i := range s.segStats {
		s.segStats[i].Misses = [numClasses]int64{}
	}
}

// Tracer binds one simulated processor to the system as a trace.Tracer.
// The engine sets Now to the processor's clock before each quantum; stall
// cycles accumulate in Stall and are drained by the engine afterwards.
type Tracer struct {
	Sys   *System
	Proc  int
	Now   int64
	Stall int64
}

// Read implements trace.Tracer.
func (t *Tracer) Read(a trace.Array, first, n int) {
	t.Stall += t.Sys.Access(t.Proc, a.Addr(first), n*int(a.Elem), false, t.Now)
}

// Write implements trace.Tracer.
func (t *Tracer) Write(a trace.Array, first, n int) {
	t.Stall += t.Sys.Access(t.Proc, a.Addr(first), n*int(a.Elem), true, t.Now)
}

// SetNow sets the simulated time of the processor's next quantum
// (simengine.ProcTracer).
func (t *Tracer) SetNow(now int64) { t.Now = now }

// DrainStall returns and clears the stall accumulated since the last drain
// (simengine.ProcTracer).
func (t *Tracer) DrainStall() int64 {
	s := t.Stall
	t.Stall = 0
	return s
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
