package memsim

import (
	"testing"
	"testing/quick"

	"shearwarp/internal/trace"
)

func smallCfg(procs int) Config {
	return Config{
		Procs: procs, CacheBytes: 1024, LineBytes: 64, Assoc: 2,
		LocalMiss: 70, Remote2Hop: 210, Remote3Hop: 280, UpgradeLat: 50,
		ProcsPerNode: 1, PageBytes: 4096, Occupancy: 20,
	}
}

func TestCacheHitAfterInsert(t *testing.T) {
	c := NewCache(1024, 64, 2)
	if c.Lookup(5) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(5)
	if !c.Lookup(5) {
		t.Fatal("miss after insert")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Fully associative, 4 lines.
	c := NewCache(4*64, 64, 4)
	for i := uint64(0); i < 4; i++ {
		c.Insert(i)
	}
	c.Lookup(0) // make line 0 most recent
	v, ok := c.Insert(100)
	if !ok || v != 1 {
		t.Fatalf("evicted %d (ok=%v), want LRU line 1", v, ok)
	}
	if !c.Lookup(0) || c.Lookup(1) {
		t.Fatal("wrong lines resident after eviction")
	}
}

func TestCacheNeverExceedsCapacity(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := NewCache(512, 64, 2) // 8 lines
		resident := map[uint64]bool{}
		for _, a := range addrs {
			line := uint64(a % 64)
			if c.Lookup(line) {
				if !resident[line] {
					return false // hit on non-resident line
				}
				continue
			}
			if v, ok := c.Insert(line); ok {
				if !resident[v] {
					return false // evicted something not resident
				}
				delete(resident, v)
			}
			resident[line] = true
			if len(resident) > c.Lines() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheSetConflict(t *testing.T) {
	// Direct-mapped, 4 sets: lines 0 and 4 conflict.
	c := NewCache(4*64, 64, 1)
	c.Insert(0)
	v, ok := c.Insert(4)
	if !ok || v != 0 {
		t.Fatalf("conflicting insert evicted %d (ok=%v), want 0", v, ok)
	}
}

func TestColdThenCapacityClassification(t *testing.T) {
	s := New(smallCfg(1))
	// 1 KB cache, 64 B lines = 16 lines. Touch 32 distinct lines twice.
	for round := 0; round < 2; round++ {
		for i := 0; i < 32; i++ {
			s.Access(0, uint64(i*64), 4, false, 0)
		}
	}
	st := s.Stats[0]
	if st.Misses[Cold] != 32 {
		t.Fatalf("cold misses = %d, want 32", st.Misses[Cold])
	}
	if st.Misses[Capacity] != 32 {
		t.Fatalf("capacity misses = %d, want 32 (second sweep)", st.Misses[Capacity])
	}
	if st.Misses[TrueSharing]+st.Misses[FalseSharing] != 0 {
		t.Fatal("sharing misses on a uniprocessor")
	}
}

func TestTrueSharingClassification(t *testing.T) {
	s := New(smallCfg(2))
	// P0 reads word 0; P1 writes word 0; P0 re-reads word 0: true sharing.
	s.Access(0, 0, 4, false, 0)
	s.Access(1, 0, 4, true, 0)
	s.Access(0, 0, 4, false, 0)
	if got := s.Stats[0].Misses[TrueSharing]; got != 1 {
		t.Fatalf("true sharing misses = %d, want 1 (%+v)", got, s.Stats[0])
	}
}

func TestFalseSharingClassification(t *testing.T) {
	s := New(smallCfg(2))
	// P0 reads word 0; P1 writes word 8 (same 64 B line); P0 re-reads word
	// 0: the invalidation was for a word P0 never touches -> false sharing.
	s.Access(0, 0, 4, false, 0)
	s.Access(1, 32, 4, true, 0)
	s.Access(0, 0, 4, false, 0)
	if got := s.Stats[0].Misses[FalseSharing]; got != 1 {
		t.Fatalf("false sharing misses = %d, want 1 (%+v)", got, s.Stats[0])
	}
	if s.Stats[0].Misses[TrueSharing] != 0 {
		t.Fatal("misclassified as true sharing")
	}
}

func TestUpgradeOnSharedWriteHit(t *testing.T) {
	s := New(smallCfg(2))
	s.Access(0, 0, 4, false, 0) // P0 caches the line
	s.Access(1, 0, 4, false, 0) // P1 shares it
	s.Access(1, 0, 4, true, 0)  // P1 write hit -> upgrade, invalidate P0
	if s.Stats[1].Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", s.Stats[1].Upgrades)
	}
	// P0's next read is a true-sharing miss.
	s.Access(0, 0, 4, false, 0)
	if s.Stats[0].Misses[TrueSharing] != 1 {
		t.Fatalf("post-upgrade read misclassified: %+v", s.Stats[0])
	}
}

func TestWriteMissInvalidatesSharers(t *testing.T) {
	s := New(smallCfg(3))
	s.Access(0, 0, 4, false, 0)
	s.Access(1, 0, 4, false, 0)
	s.Access(2, 0, 64, true, 0) // write miss invalidates both
	s.Access(0, 0, 4, false, 0)
	s.Access(1, 0, 4, false, 0)
	if s.Stats[0].Misses[TrueSharing] != 1 || s.Stats[1].Misses[TrueSharing] != 1 {
		t.Fatalf("sharers not invalidated: P0 %+v P1 %+v", s.Stats[0], s.Stats[1])
	}
}

func TestLocalVsRemoteCosts(t *testing.T) {
	cfg := smallCfg(2)
	cfg.PageBytes = 64 // one line per page: lines alternate homes
	s := New(cfg)
	// Line 0 homes at node 0, line 1 at node 1.
	stallLocal := s.Access(0, 0, 4, false, 0)
	stallRemote := s.Access(0, 64, 4, false, 1_000_000)
	if stallLocal < 70 || stallLocal >= 210 {
		t.Fatalf("local miss stall = %d, want ~LocalMiss", stallLocal)
	}
	if stallRemote < 210 {
		t.Fatalf("remote miss stall = %d, want >= Remote2Hop", stallRemote)
	}
	if s.Stats[0].Local != 1 || s.Stats[0].Remote != 1 {
		t.Fatalf("local/remote counts: %+v", s.Stats[0])
	}
}

func TestThreeHopDirtyMiss(t *testing.T) {
	cfg := smallCfg(3)
	cfg.PageBytes = 64
	s := New(cfg)
	// P1 dirties a line homed at node 0; P2 then reads it: dirty in a third
	// node -> 3 hops.
	s.Access(1, 0, 4, true, 0)
	stall := s.Access(2, 0, 4, false, 1_000_000)
	if stall < 280 {
		t.Fatalf("dirty remote miss stall = %d, want >= Remote3Hop", stall)
	}
}

func TestCentralizedAllMissesEqual(t *testing.T) {
	cfg := smallCfg(4)
	cfg.Centralized = true
	cfg.LocalMiss = 50
	s := New(cfg)
	a := s.Access(0, 0, 4, false, 0)
	b := s.Access(1, 4096, 4, false, 1_000_000)
	if a != 50 || b != 50 {
		t.Fatalf("centralized miss costs %d, %d; want 50, 50", a, b)
	}
	if s.Stats[0].Remote != 0 || s.Stats[1].Remote != 0 {
		t.Fatal("centralized machine has no remote misses")
	}
}

func TestContentionAtBusyController(t *testing.T) {
	cfg := smallCfg(2)
	cfg.Occupancy = 100
	s := New(cfg)
	// Two misses to lines homed at the same node at the same time: the
	// second waits for the first's occupancy.
	s.Access(0, 0, 4, false, 0)
	s.Access(1, 64, 4, false, 0) // same page, same home, same instant
	if s.Stats[1].ContendCyc == 0 {
		t.Fatalf("no contention recorded: %+v", s.Stats[1])
	}
}

func TestSpatialLocalityLongerLinesFewerMisses(t *testing.T) {
	// Streaming through an array: miss count halves when lines double.
	run := func(lineBytes int) int64 {
		cfg := smallCfg(1)
		cfg.LineBytes = lineBytes
		cfg.CacheBytes = 4096
		s := New(cfg)
		for i := 0; i < 4096; i += 4 {
			s.Access(0, uint64(i), 4, false, 0)
		}
		return s.Totals().TotalMisses()
	}
	m64, m128 := run(64), run(128)
	if m128*2 != m64 {
		t.Fatalf("misses: 64B=%d 128B=%d; want exact halving", m64, m128)
	}
}

func TestWorkingSetKnee(t *testing.T) {
	// Repeatedly sweep a 2 KB array: caches >= 2 KB capture it after the
	// first sweep; a 1 KB cache keeps missing.
	sweep := func(cacheBytes int) float64 {
		cfg := smallCfg(1)
		cfg.CacheBytes = cacheBytes
		s := New(cfg)
		for r := 0; r < 8; r++ {
			for i := 0; i < 2048; i += 4 {
				s.Access(0, uint64(i), 4, false, 0)
			}
		}
		return s.MissRate()
	}
	small, big := sweep(1024), sweep(4096)
	if big >= small {
		t.Fatalf("miss rate did not drop past the working set: %.4f vs %.4f", small, big)
	}
	if big > 0.02 {
		t.Fatalf("fitting cache still misses at %.4f", big)
	}
}

func TestTracerBindsProcAndAccumulatesStall(t *testing.T) {
	s := New(smallCfg(2))
	sp := trace.NewAddrSpace()
	arr := sp.Register("a", 4, 1024)
	tr := &Tracer{Sys: s, Proc: 1}
	tr.Read(arr, 0, 16)
	if tr.Stall == 0 {
		t.Fatal("tracer recorded no stall for a cold miss")
	}
	if s.Stats[1].Refs != 16 {
		t.Fatalf("refs = %d, want 16", s.Stats[1].Refs)
	}
	if s.Stats[0].Refs != 0 {
		t.Fatal("wrong processor charged")
	}
}

func TestRangeAccessSpansLines(t *testing.T) {
	s := New(smallCfg(1))
	// 256 bytes starting mid-line: touches 5 lines of 64 B.
	s.Access(0, 32, 256, false, 0)
	if got := s.Totals().TotalMisses(); got != 5 {
		t.Fatalf("misses = %d, want 5 lines touched", got)
	}
}

func TestResetStatsKeepsCacheState(t *testing.T) {
	s := New(smallCfg(1))
	s.Access(0, 0, 4, false, 0)
	s.ResetStats()
	if s.Totals().TotalMisses() != 0 {
		t.Fatal("stats not cleared")
	}
	stall := s.Access(0, 0, 4, false, 0)
	if stall != 0 {
		t.Fatal("cache state lost on ResetStats")
	}
}
