// Package simengine is the deterministic multiprocessor execution driver:
// the piece that turns the kernels' real computation plus the memory-system
// simulators into simulated parallel executions with per-processor clocks
// (the direct-execution role Tango-Lite played for the authors).
//
// Each simulated processor is a state machine advanced in quanta (one
// intermediate scanline composited, one warp task row, one queue
// operation). A min-heap by processor clock picks who runs next, so
// processors interleave at scanline granularity and shared state (task
// queues, locks, barriers, band counters) is observed in simulated-time
// order. Everything is single-threaded and reproducible.
package simengine

import (
	"container/heap"
	"fmt"
)

// Breakdown splits a processor's simulated cycles by cause — the paper's
// busy / data-access-stall / synchronization decomposition (Figure 5).
type Breakdown struct {
	Busy     int64 // instruction cycles (1 CPI work)
	MemStall int64 // memory-system stall (latency + contention); SVM data wait
	SyncWait int64 // waiting at barriers and condition waits
	LockWait int64 // waiting for contended locks (task queues, stealing)
}

// Total returns all cycles in the breakdown.
func (b Breakdown) Total() int64 { return b.Busy + b.MemStall + b.SyncWait + b.LockWait }

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Busy += o.Busy
	b.MemStall += o.MemStall
	b.SyncWait += o.SyncWait
	b.LockWait += o.LockWait
}

// ProcTracer is the tracer contract the engine needs: reference recording
// plus simulated-time bookkeeping.
type ProcTracer interface {
	SetNow(int64)
	DrainStall() int64
}

// Proc is one simulated processor.
type Proc struct {
	ID    int
	Clock int64

	Total    Breakdown
	ByPhase  map[string]*Breakdown
	phase    string
	blocked  bool
	done     bool
	heapIdx  int
	Tracer   ProcTracer // may be nil (no memory simulation)
	UserData any        // per-processor driver state
}

// SetPhase switches the accounting phase ("composite", "warp", ...).
func (p *Proc) SetPhase(name string) { p.phase = name }

// Phase returns the current accounting phase.
func (p *Proc) Phase() string { return p.phase }

func (p *Proc) charge(f func(*Breakdown)) {
	f(&p.Total)
	if p.phase != "" {
		b := p.ByPhase[p.phase]
		if b == nil {
			b = &Breakdown{}
			p.ByPhase[p.phase] = b
		}
		f(b)
	}
}

// Program drives the simulation: Step runs one quantum on p and returns
// false when p has no further work. A Step that blocks p (barrier, cond)
// must return true after calling the blocking engine method.
type Program interface {
	Step(e *Engine, p *Proc) bool
}

// Engine schedules the processors.
type Engine struct {
	Procs []*Proc
	h     procHeap

	// BarrierCost is the simulated cost of the barrier operation itself,
	// charged to every participant on release.
	BarrierCost int64
	// LockCost is the base cost of an uncontended acquire+release.
	LockCost int64
}

// New builds an engine with n processors.
func New(n int) *Engine {
	e := &Engine{BarrierCost: 200, LockCost: 40}
	for i := 0; i < n; i++ {
		e.Procs = append(e.Procs, &Proc{ID: i, ByPhase: map[string]*Breakdown{}})
	}
	return e
}

// Run executes the program to completion and returns the finish time (the
// max processor clock).
func (e *Engine) Run(prog Program) int64 {
	e.h = e.h[:0]
	for _, p := range e.Procs {
		p.done, p.blocked = false, false
		heap.Push(&e.h, p)
	}
	for e.h.Len() > 0 {
		p := heap.Pop(&e.h).(*Proc)
		if p.done {
			continue
		}
		more := prog.Step(e, p)
		if !more {
			p.done = true
			continue
		}
		if !p.blocked {
			heap.Push(&e.h, p)
		}
	}
	for _, p := range e.Procs {
		if !p.done && p.blocked {
			panic(fmt.Sprintf("simengine: deadlock, proc %d blocked at end", p.ID))
		}
	}
	var finish int64
	for _, p := range e.Procs {
		if p.Clock > finish {
			finish = p.Clock
		}
	}
	return finish
}

// Work charges instruction cycles to p.
func (e *Engine) Work(p *Proc, cycles int64) {
	p.Clock += cycles
	p.charge(func(b *Breakdown) { b.Busy += cycles })
}

// Stall charges memory-system cycles to p (typically the tracer's drained
// stall after a quantum).
func (e *Engine) Stall(p *Proc, cycles int64) {
	if cycles == 0 {
		return
	}
	p.Clock += cycles
	p.charge(func(b *Breakdown) { b.MemStall += cycles })
}

// DrainTracer moves the tracer's accumulated stall onto the processor's
// clock; call it after each kernel quantum.
func (e *Engine) DrainTracer(p *Proc) {
	if p.Tracer != nil {
		e.Stall(p, p.Tracer.DrainStall())
	}
}

// SyncTo advances p's clock to at least t, charging the difference as
// synchronization wait.
func (e *Engine) SyncTo(p *Proc, t int64) {
	if t > p.Clock {
		d := t - p.Clock
		p.Clock = t
		p.charge(func(b *Breakdown) { b.SyncWait += d })
	}
}

// Lock models a simulated mutex: the lock is busy during
// [AcquiredAt, FreeAt) of the last critical section. A requester arriving
// inside that window queues until FreeAt; one arriving before AcquiredAt
// would have won the lock in a real execution, so it passes freely (the
// min-clock scheduler makes such inversions rare and short). Tracking only
// a release time would wrongly charge early requesters for critical
// sections that started far ahead of their own clocks (e.g. a MarkDone at
// the end of a long compositing quantum).
type Lock struct {
	AcquiredAt int64
	FreeAt     int64
	Waits      int64
	WaitCyc    int64
}

// Acquire takes the lock for p, charging contention wait plus the base lock
// cost; the caller should do the critical-section work (Engine.Work) and
// then Release.
func (e *Engine) Acquire(p *Proc, l *Lock) {
	if p.Clock >= l.AcquiredAt && p.Clock < l.FreeAt {
		// Arrived while the current convoy holds the lock: queue. The
		// window start is left at the convoy's first arrival so that
		// further simultaneous arrivals keep queueing behind us.
		l.Waits++
		d := l.FreeAt - p.Clock
		l.WaitCyc += d
		p.Clock = l.FreeAt
		p.charge(func(b *Breakdown) { b.LockWait += d })
	} else if p.Clock >= l.FreeAt {
		// Lock observed free: a new hold window starts at this arrival.
		l.AcquiredAt = p.Clock
	}
	// An arrival before AcquiredAt would have won the lock in a real
	// execution (the holder's critical section started later); it passes
	// freely — a rare, short causality approximation.
	e.Work(p, e.LockCost/2)
}

// Release frees the lock at p's current time.
func (e *Engine) Release(p *Proc, l *Lock) {
	e.Work(p, e.LockCost/2)
	l.FreeAt = p.Clock
}

// Barrier is a simulated global barrier. ExtraDelay, when set, is invoked
// once per episode at release time and returns additional cycles to add to
// the release (the SVM backend uses it for the barrier-time diff flushes
// that home-based lazy release consistency performs).
type Barrier struct {
	Expected   int
	ExtraDelay func(maxClock int64) int64
	arrived    []*Proc
	maxClock   int64
}

// BarrierArrive records p's arrival and blocks it; when the last
// participant arrives, everyone is released at the max arrival time plus
// the barrier cost, with the wait charged as synchronization.
func (e *Engine) BarrierArrive(p *Proc, b *Barrier) {
	if p.Clock > b.maxClock {
		b.maxClock = p.Clock
	}
	b.arrived = append(b.arrived, p)
	if len(b.arrived) < b.Expected {
		p.blocked = true
		return
	}
	release := b.maxClock + e.BarrierCost
	if b.ExtraDelay != nil {
		release += b.ExtraDelay(b.maxClock)
	}
	for _, q := range b.arrived {
		e.SyncTo(q, release)
		if q != p {
			q.blocked = false
			heap.Push(&e.h, q)
		}
	}
	b.arrived = b.arrived[:0]
	b.maxClock = 0
}

// Cond is a one-shot simulated condition (e.g. "band k fully composited").
type Cond struct {
	Signaled bool
	At       int64
	waiters  []*Proc
}

// CondWait blocks p until the condition is signaled; if already signaled,
// p just syncs to the signal time and continues.
func (e *Engine) CondWait(p *Proc, c *Cond) (blocked bool) {
	if c.Signaled {
		e.SyncTo(p, c.At)
		return false
	}
	c.waiters = append(c.waiters, p)
	p.blocked = true
	return true
}

// CondSignal marks the condition satisfied at the given time and wakes all
// waiters.
func (e *Engine) CondSignal(c *Cond, at int64) {
	if c.Signaled {
		return
	}
	c.Signaled = true
	c.At = at
	for _, q := range c.waiters {
		e.SyncTo(q, at)
		q.blocked = false
		heap.Push(&e.h, q)
	}
	c.waiters = nil
}

// procHeap is a min-heap of processors by clock (ties by ID for
// determinism).
type procHeap []*Proc

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].Clock != h[j].Clock {
		return h[i].Clock < h[j].Clock
	}
	return h[i].ID < h[j].ID
}
func (h procHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx, h[j].heapIdx = i, j
}
func (h *procHeap) Push(x any) {
	p := x.(*Proc)
	p.heapIdx = len(*h)
	*h = append(*h, p)
}
func (h *procHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}
