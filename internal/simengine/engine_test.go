package simengine

import (
	"testing"
)

// toyProgram: each proc does `work[id]` quanta of 10 cycles, hits a
// barrier, then does 1 more quantum.
type toyProgram struct {
	work    []int
	barrier Barrier
	state   []int // 0 = working, 1 = at barrier, 2 = after barrier, 3 = done
	order   []int // proc IDs in scheduling order
}

func (t *toyProgram) Step(e *Engine, p *Proc) bool {
	t.order = append(t.order, p.ID)
	switch t.state[p.ID] {
	case 0:
		if t.work[p.ID] == 0 {
			t.state[p.ID] = 2
			e.BarrierArrive(p, &t.barrier)
			return true
		}
		t.work[p.ID]--
		e.Work(p, 10)
		return true
	case 2:
		e.Work(p, 5)
		t.state[p.ID] = 3
		return true
	default:
		return false
	}
}

func TestEngineBarrierSynchronizesClocks(t *testing.T) {
	e := New(3)
	prog := &toyProgram{work: []int{1, 5, 2}, state: make([]int, 3)}
	prog.barrier.Expected = 3
	finish := e.Run(prog)
	// Slowest proc does 50 cycles of work; release at 50 + BarrierCost; all
	// finish at release + 5.
	want := 50 + e.BarrierCost + 5
	if finish != want {
		t.Fatalf("finish = %d, want %d", finish, want)
	}
	// Proc 0 (10 cycles of work) waited ~40 + barrier cost.
	if e.Procs[0].Total.SyncWait != 40+e.BarrierCost {
		t.Fatalf("proc 0 sync wait = %d, want %d", e.Procs[0].Total.SyncWait, 40+e.BarrierCost)
	}
	if e.Procs[1].Total.SyncWait != e.BarrierCost {
		t.Fatalf("slowest proc sync wait = %d, want just barrier cost", e.Procs[1].Total.SyncWait)
	}
}

func TestEngineMinClockScheduling(t *testing.T) {
	e := New(2)
	prog := &toyProgram{work: []int{3, 3}, state: make([]int, 2)}
	prog.barrier.Expected = 2
	e.Run(prog)
	// With equal work the two procs must alternate (min-clock, tie by ID).
	saw := map[int]bool{}
	for _, id := range prog.order[:2] {
		saw[id] = true
	}
	if len(saw) != 2 {
		t.Fatalf("first two quanta ran on the same proc: %v", prog.order)
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() []int {
		e := New(4)
		prog := &toyProgram{work: []int{2, 7, 1, 4}, state: make([]int, 4)}
		prog.barrier.Expected = 4
		e.Run(prog)
		return prog.order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("schedules differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("scheduling is not deterministic")
		}
	}
}

type lockProgram struct {
	lock  Lock
	count []int
}

func (l *lockProgram) Step(e *Engine, p *Proc) bool {
	if l.count[p.ID] == 0 {
		return false
	}
	l.count[p.ID]--
	e.Acquire(p, &l.lock)
	e.Work(p, 100) // critical section
	e.Release(p, &l.lock)
	return true
}

func TestEngineLockSerializes(t *testing.T) {
	e := New(4)
	prog := &lockProgram{count: []int{1, 1, 1, 1}}
	finish := e.Run(prog)
	// Four critical sections of (lockCost + 100) serialized.
	per := e.LockCost + 100
	if finish < 4*per {
		t.Fatalf("finish = %d; critical sections overlapped (want >= %d)", finish, 4*per)
	}
	var waits int64
	for _, p := range e.Procs {
		waits += p.Total.LockWait
	}
	if waits == 0 {
		t.Fatal("no lock contention recorded")
	}
	if prog.lock.Waits == 0 || prog.lock.WaitCyc != waits {
		t.Fatalf("lock stats %d/%d inconsistent with %d", prog.lock.Waits, prog.lock.WaitCyc, waits)
	}
}

type condProgram struct {
	cond  Cond
	state []int
}

func (c *condProgram) Step(e *Engine, p *Proc) bool {
	if p.ID == 0 {
		switch c.state[0] {
		case 0:
			e.Work(p, 500)
			c.state[0] = 1
			return true
		case 1:
			e.CondSignal(&c.cond, p.Clock)
			c.state[0] = 2
			return true
		}
		return false
	}
	switch c.state[p.ID] {
	case 0:
		c.state[p.ID] = 1
		if e.CondWait(p, &c.cond) {
			return true
		}
		fallthrough
	case 1:
		e.Work(p, 10)
		c.state[p.ID] = 2
		return true
	}
	return false
}

func TestEngineCondWaitAndSignal(t *testing.T) {
	e := New(3)
	prog := &condProgram{state: make([]int, 3)}
	finish := e.Run(prog)
	if finish != 510 {
		t.Fatalf("finish = %d, want 510 (signal at 500 + 10 work)", finish)
	}
	if e.Procs[1].Total.SyncWait != 500 {
		t.Fatalf("waiter sync = %d, want 500", e.Procs[1].Total.SyncWait)
	}
}

func TestCondWaitAfterSignalNoBlock(t *testing.T) {
	e := New(1)
	var c Cond
	e.CondSignal(&c, 300)
	p := e.Procs[0]
	if e.CondWait(p, &c) {
		t.Fatal("wait blocked on signaled cond")
	}
	if p.Clock != 300 || p.Total.SyncWait != 300 {
		t.Fatalf("clock %d sync %d, want 300/300", p.Clock, p.Total.SyncWait)
	}
}

func TestPhaseBreakdowns(t *testing.T) {
	e := New(1)
	p := e.Procs[0]
	p.SetPhase("composite")
	e.Work(p, 100)
	e.Stall(p, 30)
	p.SetPhase("warp")
	e.Work(p, 50)
	if p.ByPhase["composite"].Busy != 100 || p.ByPhase["composite"].MemStall != 30 {
		t.Fatalf("composite phase %+v", p.ByPhase["composite"])
	}
	if p.ByPhase["warp"].Busy != 50 {
		t.Fatalf("warp phase %+v", p.ByPhase["warp"])
	}
	if p.Total.Total() != 180 {
		t.Fatalf("total = %d, want 180", p.Total.Total())
	}
}

type deadlockProgram struct{ cond Cond }

func (d *deadlockProgram) Step(e *Engine, p *Proc) bool {
	// Everyone waits on a condition nobody signals.
	e.CondWait(p, &d.cond)
	return true
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("deadlocked run did not panic")
		}
	}()
	e := New(2)
	e.Run(&deadlockProgram{})
}

func TestLockFreeAfterRelease(t *testing.T) {
	e := New(1)
	p := e.Procs[0]
	var l Lock
	e.Acquire(p, &l)
	e.Work(p, 50)
	e.Release(p, &l)
	// A later arrival sees a free lock.
	e.Work(p, 1000)
	before := p.Total.LockWait
	e.Acquire(p, &l)
	if p.Total.LockWait != before {
		t.Fatal("free lock charged a wait")
	}
}
