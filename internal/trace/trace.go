// Package trace defines the memory-reference instrumentation boundary
// between the rendering kernels and the memory-system simulators — the
// analog of the Tango-Lite reference generator the paper used. Kernels do
// their real arithmetic and, when a Tracer is attached, report the shared
// arrays they touch as (array, first element, count) ranges. The simulators
// expand ranges to cache lines or pages and charge stall cycles.
//
// In native (real-execution) mode the tracer is nil and the kernels skip
// instrumentation entirely, so the same kernel code serves both the host
// benchmarks and the simulation experiments.
package trace

import "fmt"

// Array is a handle to a registered shared array in the simulated flat
// address space. Elem is the element size in bytes; Base is the byte
// address of element 0.
type Array struct {
	Base uint64
	Elem uint32
}

// Addr returns the byte address of element i.
func (a Array) Addr(i int) uint64 { return a.Base + uint64(i)*uint64(a.Elem) }

// Valid reports whether the handle refers to a registered array.
func (a Array) Valid() bool { return a.Elem != 0 }

// Tracer receives the memory references of one simulated processor.
// first/n are in elements of the array.
type Tracer interface {
	Read(a Array, first, n int)
	Write(a Array, first, n int)
}

// AddrSpace lays out shared arrays in a flat simulated address space.
// Arrays are segment-aligned so distinct arrays never share a cache line
// or page, mirroring separate allocations on a real machine.
type AddrSpace struct {
	next     uint64
	segments []Segment
}

// Segment records one registered array for diagnostics.
type Segment struct {
	Name  string
	Base  uint64
	Bytes uint64
	Elem  uint32
}

// segAlign keeps arrays from sharing pages (4 KB), so false sharing in the
// simulators is always intra-array, as it would be with page-aligned
// allocations.
const segAlign = 4096

// NewAddrSpace returns an empty address space starting at a non-zero base.
func NewAddrSpace() *AddrSpace { return &AddrSpace{next: segAlign} }

// Register allocates an array of count elements of elemSize bytes and
// returns its handle.
func (s *AddrSpace) Register(name string, elemSize, count int) Array {
	if elemSize <= 0 || count < 0 {
		panic(fmt.Sprintf("trace: bad array %q: elem %d count %d", name, elemSize, count))
	}
	bytes := uint64(elemSize) * uint64(count)
	a := Array{Base: s.next, Elem: uint32(elemSize)}
	s.segments = append(s.segments, Segment{Name: name, Base: s.next, Bytes: bytes, Elem: uint32(elemSize)})
	s.next += (bytes + segAlign - 1) / segAlign * segAlign
	if bytes == 0 {
		s.next += segAlign
	}
	return a
}

// Size returns the total extent of the address space in bytes.
func (s *AddrSpace) Size() uint64 { return s.next }

// Segments returns the registered segments in allocation order.
func (s *AddrSpace) Segments() []Segment { return s.segments }

// CountingTracer is a trivial Tracer that tallies references; used in tests
// and for cheap reference-count statistics.
type CountingTracer struct {
	Reads, Writes         int64 // calls
	ReadElems, WriteElems int64 // elements covered
}

// Read implements Tracer.
func (c *CountingTracer) Read(a Array, first, n int) {
	c.Reads++
	c.ReadElems += int64(n)
}

// Write implements Tracer.
func (c *CountingTracer) Write(a Array, first, n int) {
	c.Writes++
	c.WriteElems += int64(n)
}
