package trace

import "testing"

func TestRegisterLayout(t *testing.T) {
	s := NewAddrSpace()
	a := s.Register("a", 4, 100)
	b := s.Register("b", 2, 10)
	if !a.Valid() || !b.Valid() {
		t.Fatal("handles invalid")
	}
	if a.Base == 0 {
		t.Fatal("arrays must not start at address 0")
	}
	if a.Addr(1)-a.Addr(0) != 4 {
		t.Fatal("element stride wrong")
	}
	// Segments never share a 4KB page.
	if b.Base/4096 == a.Base/4096 && (a.Base+400)/4096 == b.Base/4096 {
		t.Fatal("arrays share a page")
	}
	if b.Base < a.Base+400 {
		t.Fatal("overlapping segments")
	}
	if len(s.Segments()) != 2 {
		t.Fatal("segments not recorded")
	}
	if s.Size() <= b.Base {
		t.Fatal("size does not cover segments")
	}
}

func TestRegisterAlignment(t *testing.T) {
	s := NewAddrSpace()
	s.Register("x", 3, 5) // 15 bytes
	y := s.Register("y", 8, 1)
	if y.Base%4096 != 0 {
		t.Fatalf("segment base %d not page-aligned", y.Base)
	}
}

func TestZeroLengthArray(t *testing.T) {
	s := NewAddrSpace()
	a := s.Register("empty", 4, 0)
	b := s.Register("next", 4, 1)
	if a.Base == b.Base {
		t.Fatal("zero-length array shares a base with the next")
	}
}

func TestRegisterPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad element size accepted")
		}
	}()
	NewAddrSpace().Register("bad", 0, 10)
}

func TestCountingTracer(t *testing.T) {
	s := NewAddrSpace()
	a := s.Register("a", 4, 100)
	c := &CountingTracer{}
	c.Read(a, 0, 10)
	c.Write(a, 5, 3)
	c.Read(a, 50, 1)
	if c.Reads != 2 || c.Writes != 1 {
		t.Fatalf("calls: %d reads %d writes", c.Reads, c.Writes)
	}
	if c.ReadElems != 11 || c.WriteElems != 3 {
		t.Fatalf("elems: %d read %d written", c.ReadElems, c.WriteElems)
	}
}
