package newalg

import (
	"testing"

	"shearwarp/internal/img"
	"shearwarp/internal/render"
	"shearwarp/internal/vol"
)

func TestMatchesSerialAcrossProcs(t *testing.T) {
	r := render.New(vol.MRIBrain(24), render.Options{})
	want, _ := r.RenderSerial(0.5, 0.3)
	for _, procs := range []int{1, 2, 3, 7, 16} {
		nr := NewRenderer(r, Config{Procs: procs})
		res := nr.RenderFrame(0.5, 0.3)
		if !img.Equal(want, res.Out) {
			d := img.Compare(want, res.Out)
			t.Fatalf("procs=%d: image differs from serial: %+v", procs, d)
		}
	}
}

func TestAnimationMatchesSerialEveryFrame(t *testing.T) {
	r := render.New(vol.MRIBrain(20), render.Options{})
	nr := NewRenderer(r, Config{Procs: 4})
	for _, v := range render.Rotation(6, 0.1, 0.25, 7) {
		want, _ := r.RenderSerial(v[0], v[1])
		res := nr.RenderFrame(v[0], v[1])
		if !img.Equal(want, res.Out) {
			t.Fatalf("view %v: new-algorithm image differs from serial", v)
		}
	}
}

func TestProfilingCadence(t *testing.T) {
	r := render.New(vol.MRIBrain(20), render.Options{})
	nr := NewRenderer(r, Config{Procs: 2, ReprofileDeg: 15})
	profiled := 0
	// 7-degree steps: profile on frame 0, then every ~2-3 frames.
	for _, v := range render.Rotation(8, 0.1, 0.2, 7) {
		res := nr.RenderFrame(v[0], v[1])
		if res.Profiled {
			profiled++
		}
	}
	if profiled < 2 || profiled >= 8 {
		t.Fatalf("profiled %d of 8 frames; want re-profiling every ~2 frames, not all", profiled)
	}
}

func TestProfileDrivenPartitionIsBalanced(t *testing.T) {
	r := render.New(vol.MRIBrain(32), render.Options{})
	nr := NewRenderer(r, Config{Procs: 4, DisableSteal: true})
	nr.RenderFrame(0.3, 0.2)         // profiling frame (uniform partition)
	res := nr.RenderFrame(0.33, 0.2) // profile-balanced frame
	if res.Profiled {
		t.Fatal("second close frame should reuse the profile")
	}
	// Measure the imbalance of the used partition against this frame's
	// actual per-scanline cost (collect it via a third profiled run).
	nr2 := NewRenderer(r, Config{Procs: 1, AlwaysProfile: true})
	nr2.RenderFrame(0.33, 0.2)
	actual := nr2.Profile()
	ib := Imbalance(actual, res.Boundaries)
	if ib > 1.35 {
		t.Fatalf("profile-driven partition imbalance %.2f, want near 1", ib)
	}
	// Compare with the uniform partition over the whole image: it must be
	// clearly worse (the empty borders plus the cost hump).
	uni := UniformPartition(len(actual), 4)
	if ibu := Imbalance(actual, uni); ibu <= ib {
		t.Fatalf("uniform imbalance %.2f not worse than profiled %.2f", ibu, ib)
	}
}

func TestRegionSkipsEmptyBorders(t *testing.T) {
	r := render.New(vol.MRIBrain(32), render.Options{})
	nr := NewRenderer(r, Config{Procs: 2})
	nr.RenderFrame(0.3, 0.2)
	res := nr.RenderFrame(0.32, 0.2)
	if res.Region.Lo == 0 && res.Region.Hi == r.Setup(0.32, 0.2).M.H {
		t.Fatal("region did not shrink despite empty border scanlines")
	}
	// The composited scanline count must match the region, not the image.
	st := res.Stats()
	if got := int(st.Composite.Scanlines); got != res.Region.Hi-res.Region.Lo {
		t.Fatalf("composited %d scanlines, region has %d", got, res.Region.Hi-res.Region.Lo)
	}
}

func TestStealingOccursUnderSkew(t *testing.T) {
	// With a uniform partition on the first (profiling) frame, the empty
	// borders make outer bands finish early, so they steal.
	r := render.New(vol.MRIBrain(32), render.Options{})
	nr := NewRenderer(r, Config{Procs: 8, StealChunk: 1})
	res := nr.RenderFrame(0.4, 0.2)
	steals := 0
	for _, ps := range res.PerProc {
		steals += ps.Steals
	}
	if steals == 0 {
		t.Fatal("no steals on a skewed uniform partition")
	}
	want, _ := r.RenderSerial(0.4, 0.2)
	if !img.Equal(want, res.Out) {
		t.Fatal("stealing corrupted the image")
	}
}

func TestFindRegion(t *testing.T) {
	cases := []struct {
		profile []int64
		lo, hi  int
	}{
		{[]int64{0, 0, 5, 7, 0, 0}, 1, 5},
		{[]int64{3, 1, 2}, 0, 3},
		{[]int64{0, 0, 0}, 0, 0},
		{[]int64{0, 9, 0}, 0, 3},
		{[]int64{9}, 0, 1},
	}
	for _, c := range cases {
		r := FindRegion(c.profile)
		if r.Lo != c.lo || r.Hi != c.hi {
			t.Errorf("FindRegion(%v) = %+v, want [%d,%d)", c.profile, r, c.lo, c.hi)
		}
	}
}

func TestPartitionEqualArea(t *testing.T) {
	profile := make([]int64, 100)
	for i := range profile {
		profile[i] = 10 // uniform cost
	}
	bd := Partition(profile, Region{0, 100}, 4, 1)
	want := []int{0, 25, 50, 75, 100}
	for i := range want {
		// Equal-area on a uniform profile is an even split (within 1).
		if d := bd[i] - want[i]; d < -1 || d > 1 {
			t.Fatalf("boundaries = %v, want ~%v", bd, want)
		}
	}
}

func TestPartitionSkewedProfile(t *testing.T) {
	// All cost in the first 10 rows: the boundaries must crowd there.
	profile := make([]int64, 100)
	for i := 0; i < 10; i++ {
		profile[i] = 1000
	}
	bd := Partition(profile, Region{0, 100}, 4, 2)
	if bd[1] > 5 || bd[2] > 8 || bd[3] > 10 {
		t.Fatalf("boundaries %v do not track the skewed profile", bd)
	}
	if ib := Imbalance(profile, bd); ib > 1.5 {
		t.Fatalf("imbalance %.2f on skewed profile", ib)
	}
}

func TestPartitionMonotone(t *testing.T) {
	profile := []int64{0, 0, 1000000, 0, 0, 0, 1, 0}
	bd := Partition(profile, FindRegion(profile), 6, 1)
	for i := 1; i < len(bd); i++ {
		if bd[i] < bd[i-1] {
			t.Fatalf("boundaries not monotone: %v", bd)
		}
	}
	if bd[0] != 1 || bd[len(bd)-1] != 8 {
		t.Fatalf("boundaries %v do not span the region", bd)
	}
}

func TestPartitionZeroProfileFallsBack(t *testing.T) {
	profile := make([]int64, 40)
	bd := Partition(profile, Region{0, 40}, 4, 1)
	if bd[0] != 0 || bd[4] != 40 {
		t.Fatalf("boundaries %v must span region", bd)
	}
	for i := 1; i < 4; i++ {
		if bd[i] != i*10 {
			t.Fatalf("zero profile should split uniformly: %v", bd)
		}
	}
}

func TestStealChunkSizeHeuristic(t *testing.T) {
	if c := StealChunkSize(0, 4, 64); c != 1 {
		t.Fatal("empty region must give chunk 1")
	}
	if c := StealChunkSize(512, 4, 64); c < 1 || c > 32 {
		t.Fatalf("chunk %d out of bounds", c)
	}
	small := StealChunkSize(512, 32, 64)
	big := StealChunkSize(512, 2, 64)
	if small > big {
		t.Fatal("chunk should shrink with more processors")
	}
	coarse := StealChunkSize(512, 8, 4096)
	fine := StealChunkSize(512, 8, 64)
	if coarse < fine {
		t.Fatal("coarser coherence granularity should coarsen steals")
	}
}

func TestDisableStealStillCorrect(t *testing.T) {
	r := render.New(vol.MRIBrain(20), render.Options{})
	nr := NewRenderer(r, Config{Procs: 4, DisableSteal: true})
	res := nr.RenderFrame(0.5, 0.1)
	want, _ := r.RenderSerial(0.5, 0.1)
	if !img.Equal(want, res.Out) {
		t.Fatal("no-steal image differs from serial")
	}
	for _, ps := range res.PerProc {
		if ps.Steals != 0 {
			t.Fatal("stealing happened despite DisableSteal")
		}
	}
}

func TestProfileOverheadInBand(t *testing.T) {
	// 12.5% is inside the paper's 10-15% measured overhead.
	oh := ProfileOverheadCycles(1000)
	if oh < 100 || oh > 150 {
		t.Fatalf("overhead %d of 1000 outside 10-15%%", oh)
	}
}

func TestOpacityCorrectionMatchesSerial(t *testing.T) {
	r := render.New(vol.MRIBrain(20), render.Options{OpacityCorrection: true})
	want, _ := r.RenderSerial(0.5, 0.3)
	nr := NewRenderer(r, Config{Procs: 4})
	res := nr.RenderFrame(0.5, 0.3)
	if !img.Equal(want, res.Out) {
		t.Fatal("corrected parallel image differs from corrected serial")
	}
}
