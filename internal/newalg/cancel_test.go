package newalg

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"shearwarp/internal/faultinject"
	"shearwarp/internal/img"
	"shearwarp/internal/render"
	"shearwarp/internal/vol"
)

// cancelSites are the worker phase boundaries the cancellation tests
// exercise; each one has a faultinject Visit in the frame loop.
var cancelSites = []struct {
	site string
	hit  int64
}{
	{"clear", 0},
	{"composite", 2},
	{"steal", 0},
	{"scanline", 40},
	{"band-wait", 0},
	{"warp", 0},
}

// checkGoroutines polls for the goroutine count to return to near its
// baseline — a manual leak check, since aborted frames must not strand
// band waiters or frame workers.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before %d, now %d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelAtPhaseBoundaries cancels a frame at each phase boundary via
// an injected cancel fault tied to a real context.CancelFunc, and
// requires: the typed context error back, no goroutine leaks, and the
// next (uninjected) frame byte-identical to a golden frame from an
// undisturbed renderer.
func TestCancelAtPhaseBoundaries(t *testing.T) {
	const procs = 4
	r := render.New(vol.MRIBrain(32), render.Options{})
	golden := NewRenderer(r, Config{Procs: procs})
	want := golden.RenderFrame(0.5, 0.25).Out
	golden.Close()

	for _, tc := range cancelSites {
		t.Run(tc.site, func(t *testing.T) {
			before := runtime.NumGoroutine()
			nr := NewRenderer(r, Config{Procs: procs})
			defer nr.Close()

			in := faultinject.New(faultinject.Rule{
				Kind: faultinject.KindCancel, Site: tc.site,
				Worker: -1, Band: -1, Hit: tc.hit,
			})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			in.SetCancel(cancel)
			nr.Faults = in

			res, err := nr.RenderFrameCtx(ctx, 0.5, 0.25)
			if !in.Fired() {
				// Some sites may not be reached for this view/partition
				// (e.g. no steals happen); the frame must then succeed.
				if err != nil || res == nil {
					t.Fatalf("site %s never fired but frame failed: %v", tc.site, err)
				}
			} else {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled at %s: err = %v, want context.Canceled", tc.site, err)
				}
				if res != nil {
					t.Fatalf("cancelled frame returned a result")
				}
			}

			// The renderer must be reusable: next frame, clean context,
			// byte-identical to golden.
			nr.Faults = nil
			res2, err := nr.RenderFrameCtx(context.Background(), 0.5, 0.25)
			if err != nil {
				t.Fatalf("frame after cancellation failed: %v", err)
			}
			if !img.Equal(want, res2.Out) {
				t.Fatalf("frame after cancellation at %s differs from golden", tc.site)
			}
			nr.Close()
			checkGoroutines(t, before)
		})
	}
}

// TestWorkerPanicBecomesFrameError injects a panic at every phase site
// and requires a typed *render.FrameError naming the phase, peers to
// unwind without deadlock, and the renderer to stay usable with
// byte-identical output.
func TestWorkerPanicBecomesFrameError(t *testing.T) {
	const procs = 4
	r := render.New(vol.MRIBrain(32), render.Options{})
	golden := NewRenderer(r, Config{Procs: procs})
	want := golden.RenderFrame(0.5, 0.25).Out
	golden.Close()

	sites := append([]struct {
		site string
		hit  int64
	}{{"setup", 0}}, cancelSites...)
	for _, tc := range sites {
		t.Run(tc.site, func(t *testing.T) {
			before := runtime.NumGoroutine()
			nr := NewRenderer(r, Config{Procs: procs})
			defer nr.Close()
			in := faultinject.New(faultinject.Rule{
				Kind: faultinject.KindPanic, Site: tc.site,
				Worker: -1, Band: -1, Hit: tc.hit,
			})
			nr.Faults = in

			res, err := nr.RenderFrameCtx(context.Background(), 0.5, 0.25)
			if in.Fired() {
				var fe *render.FrameError
				if !errors.As(err, &fe) {
					t.Fatalf("panic at %s: err = %v, want *render.FrameError", tc.site, err)
				}
				if fe.Phase != tc.site && tc.site != "scanline" {
					// The scanline site fires inside the composite/steal
					// phases; every other site is its own phase.
					t.Errorf("FrameError.Phase = %q, want %q", fe.Phase, tc.site)
				}
				var ip *faultinject.InjectedPanic
				if !errors.As(err, &ip) {
					t.Errorf("FrameError does not unwrap to the injected panic: %v", err)
				}
			} else if err != nil || res == nil {
				t.Fatalf("site %s never fired but frame failed: %v", tc.site, err)
			}

			nr.Faults = nil
			res2, err := nr.RenderFrameCtx(context.Background(), 0.5, 0.25)
			if err != nil {
				t.Fatalf("frame after panic failed: %v", err)
			}
			if !img.Equal(want, res2.Out) {
				t.Fatalf("frame after panic at %s differs from golden", tc.site)
			}
			nr.Close()
			checkGoroutines(t, before)
		})
	}
}

// TestExternalContextCancel cancels through a real context deadline while
// a delay fault holds a worker mid-frame, exercising the AfterFunc
// watcher path rather than the injected-cancel path.
func TestExternalContextCancel(t *testing.T) {
	const procs = 2
	r := render.New(vol.MRIBrain(32), render.Options{})
	nr := NewRenderer(r, Config{Procs: procs})
	defer nr.Close()

	nr.Faults = faultinject.New(faultinject.Rule{
		Kind: faultinject.KindDelay, Site: "scanline",
		Worker: -1, Band: -1, Hit: 3, Delay: 200 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := nr.RenderFrameCtx(ctx, 0.5, 0.25)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The abort must not wait for the full frame: the delayed worker
	// finishes its sleep, every other worker bails within a scanline.
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled frame took %v", d)
	}

	nr.Faults = nil
	if _, err := nr.RenderFrameCtx(context.Background(), 0.5, 0.25); err != nil {
		t.Fatalf("frame after external cancel failed: %v", err)
	}
}

// TestPreCancelledContext must fail fast without touching the workers.
func TestPreCancelledContext(t *testing.T) {
	r := render.New(vol.MRIBrain(16), render.Options{})
	nr := NewRenderer(r, Config{Procs: 2})
	defer nr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := nr.RenderFrameCtx(ctx, 0.5, 0.25); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
