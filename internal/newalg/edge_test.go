package newalg

import (
	"math"
	"testing"

	"shearwarp/internal/img"
	"shearwarp/internal/render"
	"shearwarp/internal/vol"
)

func TestMoreProcsThanScanlines(t *testing.T) {
	r := render.New(vol.MRIBrain(10), render.Options{})
	want, _ := r.RenderSerial(0.4, 0.2)
	nr := NewRenderer(r, Config{Procs: 64})
	res := nr.RenderFrame(0.4, 0.2)
	if !img.Equal(want, res.Out) {
		t.Fatal("over-provisioned render differs from serial")
	}
	// Most bands are empty; boundaries must still be monotone and complete.
	for i := 1; i < len(res.Boundaries); i++ {
		if res.Boundaries[i] < res.Boundaries[i-1] {
			t.Fatalf("boundaries not monotone: %v", res.Boundaries)
		}
	}
}

func TestAxisFlipInvalidatesProfile(t *testing.T) {
	r := render.New(vol.MRIBrain(20), render.Options{})
	nr := NewRenderer(r, Config{Procs: 2})
	res := nr.RenderFrame(0.6, 0.2) // axis z side of 45 degrees
	if !res.Profiled {
		t.Fatal("first frame must profile")
	}
	// Crossing 45 degrees flips the principal axis: even though the
	// rotation is under 15 degrees, the renderer must re-profile.
	res = nr.RenderFrame(0.9, 0.2)
	if !res.Profiled {
		t.Fatal("axis flip did not force re-profiling")
	}
	want, _ := r.RenderSerial(0.9, 0.2)
	if !img.Equal(want, res.Out) {
		t.Fatal("image wrong after axis flip")
	}
}

func TestEmptyVolume(t *testing.T) {
	r := render.New(vol.New(12, 12, 12), render.Options{}) // all air
	nr := NewRenderer(r, Config{Procs: 4})
	res := nr.RenderFrame(0.5, 0.3)
	if res.Out.NonBlackCount() != 0 {
		t.Fatal("empty volume rendered pixels")
	}
	// Second frame uses an all-zero profile: the region collapses but the
	// renderer must not crash or mis-render.
	res = nr.RenderFrame(0.55, 0.3)
	if res.Out.NonBlackCount() != 0 {
		t.Fatal("empty volume rendered pixels on the profiled frame")
	}
}

func TestFullyOpaqueVolume(t *testing.T) {
	v := vol.New(16, 16, 16)
	for i := range v.Data {
		v.Data[i] = 255
	}
	r := render.New(v, render.Options{})
	want, _ := r.RenderSerial(0.5, 0.3)
	nr := NewRenderer(r, Config{Procs: 4})
	res := nr.RenderFrame(0.5, 0.3)
	if !img.Equal(want, res.Out) {
		t.Fatal("opaque volume differs from serial")
	}
	if want.NonBlackCount() == 0 {
		t.Fatal("opaque volume rendered black")
	}
}

func TestLargeRotationStepsStayExact(t *testing.T) {
	// 20-degree jumps exceed the re-profile threshold every frame and
	// shift the image substantially; outputs must still match serial
	// (the region expansion is a sound bound).
	r := render.New(vol.MRIBrain(20), render.Options{})
	nr := NewRenderer(r, Config{Procs: 3})
	for i := 0; i < 5; i++ {
		yaw := 0.1 + float64(i)*20*math.Pi/180
		want, _ := r.RenderSerial(yaw, 0.25)
		res := nr.RenderFrame(yaw, 0.25)
		if !img.Equal(want, res.Out) {
			t.Fatalf("frame %d differs from serial", i)
		}
	}
}

func TestPitchChangeTriggersReprofile(t *testing.T) {
	r := render.New(vol.MRIBrain(16), render.Options{})
	nr := NewRenderer(r, Config{Procs: 2, ReprofileDeg: 15})
	nr.RenderFrame(0.3, 0.0)
	res := nr.RenderFrame(0.3, 0.35) // ~20 degrees of pitch
	if !res.Profiled {
		t.Fatal("large pitch change did not trigger re-profiling")
	}
}

func TestImbalanceOfDegenerateInputs(t *testing.T) {
	if ib := Imbalance(nil, []int{0, 0}); ib != 1 {
		t.Fatalf("empty profile imbalance = %g, want 1", ib)
	}
	profile := []int64{5, 5, 5, 5}
	if ib := Imbalance(profile, []int{0, 4}); ib != 1 {
		t.Fatalf("single-proc imbalance = %g, want 1", ib)
	}
}

func TestPartitionSingleRow(t *testing.T) {
	profile := []int64{0, 42, 0}
	region := FindRegion(profile)
	bd := Partition(profile, region, 8, 1)
	if bd[0] != region.Lo || bd[8] != region.Hi {
		t.Fatalf("boundaries %v do not span region %+v", bd, region)
	}
	for i := 1; i < len(bd); i++ {
		if bd[i] < bd[i-1] {
			t.Fatalf("non-monotone boundaries: %v", bd)
		}
	}
}
