// Package newalg implements the paper's new parallel shear-warp algorithm
// (section 4): contiguous, profile-balanced partitions of the intermediate
// image used identically by the compositing and warp phases.
//
// Per frame:
//
//  1. The non-empty region of the intermediate image is determined from
//     the per-scanline cost profile of a previous frame, skipping the
//     empty border scanlines the old algorithm composites blindly.
//  2. A cumulative cost profile is built with a parallel prefix sum and
//     partition boundaries are found by equal-area binary search, giving
//     each processor one contiguous block of scanlines (section 4.3).
//  3. Processors composite their own block front to front, stealing
//     chunk-sized tails from the most loaded block when idle (section 4.4).
//  4. Each processor warps exactly the final-image pixels fed by its own
//     block (section 4.5); the boundary sliver goes to the neighbour with
//     fewer lines, eliminating final-image write sharing, and per-block
//     completion counters replace the global barrier between the phases
//     (section 5.5.2).
//
// Profiles are re-collected only when the viewpoint has rotated far enough
// (default: every 15 degrees), charging the paper's 10-15% profiling
// overhead only on those frames (section 4.2).
package newalg

import (
	"math"
	"sort"

	"shearwarp/internal/par"
)

// Region is the half-open scanline interval of the intermediate image that
// actually receives samples.
type Region struct{ Lo, Hi int }

// FindRegion locates the non-empty region of a per-scanline cost profile,
// expanded by one scanline of slack on each side (the next frame's small
// rotation can shift the image by a little). An all-zero profile yields an
// empty region.
func FindRegion(profile []int64) Region {
	lo := 0
	for lo < len(profile) && profile[lo] == 0 {
		lo++
	}
	if lo == len(profile) {
		return Region{}
	}
	hi := len(profile)
	for hi > lo && profile[hi-1] == 0 {
		hi--
	}
	if lo > 0 {
		lo--
	}
	if hi < len(profile) {
		hi++
	}
	return Region{lo, hi}
}

// Partition computes contiguous, predictively balanced partition
// boundaries for nprocs processors from a per-scanline cost profile,
// using a prefix sum over the region and equal-area binary search.
// boundaries[p]..boundaries[p+1] is processor p's block; boundaries has
// length nprocs+1 with boundaries[0] = region.Lo and boundaries[nprocs] =
// region.Hi. prefixProcs controls the parallelism of the prefix sum.
func Partition(profile []int64, region Region, nprocs, prefixProcs int) []int {
	n := region.Hi - region.Lo
	boundaries := make([]int, nprocs+1)
	for p := range boundaries {
		boundaries[p] = region.Lo
	}
	boundaries[nprocs] = region.Hi
	if n <= 0 {
		return boundaries
	}
	cum := make([]int64, n)
	total := par.PrefixSum(cum, profile[region.Lo:region.Hi], prefixProcs)
	if total == 0 {
		// Degenerate: fall back to uniform splits.
		for p := 1; p < nprocs; p++ {
			boundaries[p] = region.Lo + p*n/nprocs
		}
		return boundaries
	}
	for p := 1; p < nprocs; p++ {
		target := total * int64(p) / int64(nprocs)
		// First scanline whose cumulative cost reaches the target.
		idx := sort.Search(n, func(i int) bool { return cum[i] >= target })
		if idx > n-1 {
			idx = n - 1
		}
		boundaries[p] = region.Lo + idx
	}
	// Enforce monotonicity (very skewed profiles can collapse splits).
	for p := 1; p <= nprocs; p++ {
		if boundaries[p] < boundaries[p-1] {
			boundaries[p] = boundaries[p-1]
		}
	}
	return boundaries
}

// partitionInto is Partition with caller-owned scratch: boundaries must
// have length nprocs+1 and cum capacity for the region. The prefix sum runs
// serially (bit-identical to the parallel one for integer profiles) and the
// binary search is hand-rolled so no closure forms — the steady-state frame
// loop calls this every frame without allocating.
func partitionInto(boundaries []int, cum []int64, profile []int64, region Region, nprocs int) {
	n := region.Hi - region.Lo
	for p := range boundaries {
		boundaries[p] = region.Lo
	}
	boundaries[nprocs] = region.Hi
	if n <= 0 {
		return
	}
	cum = cum[:n]
	total := par.Scan(cum, profile[region.Lo:region.Hi])
	if total == 0 {
		// Degenerate: fall back to uniform splits.
		for p := 1; p < nprocs; p++ {
			boundaries[p] = region.Lo + p*n/nprocs
		}
		return
	}
	for p := 1; p < nprocs; p++ {
		target := total * int64(p) / int64(nprocs)
		// First scanline whose cumulative cost reaches the target.
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if cum[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		idx := lo
		if idx > n-1 {
			idx = n - 1
		}
		boundaries[p] = region.Lo + idx
	}
	// Enforce monotonicity (very skewed profiles can collapse splits).
	for p := 1; p <= nprocs; p++ {
		if boundaries[p] < boundaries[p-1] {
			boundaries[p] = boundaries[p-1]
		}
	}
}

// uniformInto writes UniformPartition's boundaries into caller scratch of
// length nprocs+1.
func uniformInto(boundaries []int, height, nprocs int) {
	for p := 0; p <= nprocs; p++ {
		boundaries[p] = p * height / nprocs
	}
}

// UniformPartition splits rows [0, height) evenly — the initial assignment
// used before any profile exists.
func UniformPartition(height, nprocs int) []int {
	boundaries := make([]int, nprocs+1)
	for p := 0; p <= nprocs; p++ {
		boundaries[p] = p * height / nprocs
	}
	return boundaries
}

// Imbalance returns max-block-cost / mean-block-cost for a partition over a
// profile; 1.0 is perfect balance.
func Imbalance(profile []int64, boundaries []int) float64 {
	p := len(boundaries) - 1
	var total, maxBlock int64
	for b := 0; b < p; b++ {
		var s int64
		for r := boundaries[b]; r < boundaries[b+1]; r++ {
			s += profile[r]
		}
		total += s
		if s > maxBlock {
			maxBlock = s
		}
	}
	if total == 0 {
		return 1
	}
	return float64(maxBlock) * float64(p) / float64(total)
}

// StealChunkSize picks the task-stealing granularity, which the paper ties
// to the data set size, the processor count and the cache line size
// (section 4.4): roughly one chunk of scanlines that covers a few cache
// lines of intermediate image per steal, shrinking as processors multiply.
func StealChunkSize(regionRows, nprocs, lineBytes int) int {
	if regionRows <= 0 {
		return 1
	}
	c := regionRows / (nprocs * 16)
	if c < 1 {
		c = 1
	}
	if lineBytes > 64 {
		c *= lineBytes / 64 // coarser coherence wants coarser steals
	}
	if c > 32 {
		c = 32
	}
	return c
}

// ProfileOverheadCycles models the instrumentation cost of profiling a
// scanline whose un-instrumented cost was cycles: an eighth (12.5%), inside
// the paper's measured 10-15% band.
func ProfileOverheadCycles(cycles int64) int64 { return cycles / 8 }

// ReprofileAngle is the default viewpoint rotation between profile
// collections, in radians (the paper's "once every 15 degrees").
var ReprofileAngle = 15 * math.Pi / 180

// MaxImageDrift is how many scanlines the intermediate image height may
// change before a stale profile is considered unusable. Small rotations
// grow or shrink the sheared image by a row or two; the region-expansion
// bound already covers the content shift, so only large jumps (which the
// angle threshold catches anyway) force an early re-profile.
const MaxImageDrift = 16

// PaddedProfile zero-extends a profile to length n (rows the profiled
// frame did not have carry no cost information and partition as zero).
func PaddedProfile(profile []int64, n int) []int64 {
	if len(profile) >= n {
		return profile
	}
	out := make([]int64, n)
	copy(out, profile)
	return out
}
