package newalg

import (
	"math"
	"sync"

	"shearwarp/internal/composite"
	"shearwarp/internal/img"
	"shearwarp/internal/par"
	"shearwarp/internal/render"
	"shearwarp/internal/warp"
	"shearwarp/internal/xform"
)

// Config tunes the new parallel algorithm.
type Config struct {
	Procs         int     // number of workers; 0 means 1
	StealChunk    int     // scanlines per steal; 0 selects StealChunkSize
	LineBytes     int     // cache line size hint for the steal heuristic; 0 = 64
	ReprofileDeg  float64 // degrees of rotation between profiles; 0 = 15
	DisableSteal  bool    // turn off stealing (ablation)
	AlwaysProfile bool    // profile every frame (ablation)
}

func (c *Config) normalize() {
	if c.Procs < 1 {
		c.Procs = 1
	}
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
	if c.ReprofileDeg == 0 {
		c.ReprofileDeg = 15
	}
}

// ProcStats reports one worker's share of a frame.
type ProcStats struct {
	Composite composite.Counters
	Warp      warp.Counters
	Steals    int   // chunks obtained by stealing
	Chunks    int   // chunks composited in total
	Profiled  int64 // profiling overhead cycles charged this frame
}

// Result is a rendered frame plus its per-processor accounting.
type Result struct {
	Out        *img.Final
	PerProc    []ProcStats
	Boundaries []int // the partition used (len Procs+1)
	Profiled   bool  // whether this frame collected a profile
	Region     Region
}

// Stats aggregates the per-processor counters.
func (r *Result) Stats() render.FrameStats {
	var st render.FrameStats
	for i := range r.PerProc {
		st.Composite.Add(r.PerProc[i].Composite)
		st.Composite.Cycles += r.PerProc[i].Profiled
		st.Warp.Add(r.PerProc[i].Warp)
	}
	return st
}

// Renderer carries the cross-frame state of the new algorithm: the last
// collected per-scanline profile and the viewpoint it was collected at.
type Renderer struct {
	R   *render.Renderer
	Cfg Config

	profile    []int64
	profAxis   xform.Axis
	profYaw    float64
	profPitch  float64
	profValid  bool
	profImageH int
	profSj     float64 // v-axis shear of the profiled frame
	profTv     float64 // v-axis translation of the profiled frame
}

// NewRenderer wraps a render.Renderer with the new algorithm's state.
func NewRenderer(r *render.Renderer, cfg Config) *Renderer {
	cfg.normalize()
	return &Renderer{R: r, Cfg: cfg}
}

// needProfile decides whether this frame must (re-)collect the profile.
func (nr *Renderer) needProfile(f *xform.Factorization, yaw, pitch float64) bool {
	if nr.Cfg.AlwaysProfile || !nr.profValid {
		return true
	}
	if nr.profAxis != f.Axis {
		return true // principal axis flip invalidates the profile entirely
	}
	if d := nr.profImageH - f.IntH; d > MaxImageDrift || d < -MaxImageDrift {
		return true // the sheared image changed size drastically
	}
	limit := nr.Cfg.ReprofileDeg * math.Pi / 180
	return math.Abs(yaw-nr.profYaw) >= limit || math.Abs(pitch-nr.profPitch) >= limit
}

// RenderFrame renders one frame with native goroutines. The output is
// bit-identical to the serial renderer's for the same viewpoint.
func (nr *Renderer) RenderFrame(yaw, pitch float64) *Result {
	fr := nr.R.Setup(yaw, pitch)
	cfg := nr.Cfg
	res := &Result{Out: fr.Out, PerProc: make([]ProcStats, cfg.Procs)}

	profiling := nr.needProfile(&fr.F, yaw, pitch)
	res.Profiled = profiling

	// Choose the partition: profile-balanced over the non-empty region when
	// a profile exists, uniform otherwise. The region from the profiled
	// frame is expanded by a sound geometric bound on how far any voxel's
	// v coordinate can have moved since (v = j + Sj*k + Tv, so the shift is
	// at most max(|ΔTv|, |ΔSj|*(Nk-1) + |ΔTv|)), keeping the skip exact:
	// a scanline outside the expanded region cannot receive samples.
	var region Region
	drift := 0
	if nr.profValid {
		drift = nr.profImageH - fr.M.H
		if drift < 0 {
			drift = -drift
		}
	}
	if nr.profValid && nr.profAxis == fr.F.Axis && drift <= MaxImageDrift {
		region = FindRegion(nr.profile)
		if region.Hi > region.Lo {
			shift0 := math.Abs(fr.F.Tv - nr.profTv)
			shiftN := math.Abs((fr.F.Sj-nr.profSj)*float64(fr.F.Nk-1) + (fr.F.Tv - nr.profTv))
			b := int(math.Ceil(math.Max(shift0, shiftN))) + 1
			region.Lo = max(region.Lo-b, 0)
			region.Hi = min(region.Hi+b, fr.M.H)
		}
		res.Boundaries = Partition(PaddedProfile(nr.profile, region.Hi), region, cfg.Procs, cfg.Procs)
	} else {
		region = Region{0, fr.M.H}
		res.Boundaries = UniformPartition(fr.M.H, cfg.Procs)
	}
	res.Region = region

	steal := cfg.StealChunk
	if steal < 1 {
		steal = StealChunkSize(region.Hi-region.Lo, cfg.Procs, cfg.LineBytes)
	}

	bands := par.NewBands(res.Boundaries, steal)
	var bmu sync.Mutex
	// Per-band completion signals replace the global barrier.
	done := make([]chan struct{}, cfg.Procs)
	for p := range done {
		done[p] = make(chan struct{})
		if bands.Complete(p) {
			close(done[p])
		}
	}
	newProfile := make([]int64, fr.M.H) // rows written disjointly, no lock

	warpTasks := warp.PartitionTasks(res.Boundaries)

	var wg sync.WaitGroup
	for p := 0; p < cfg.Procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ps := &res.PerProc[p]
			cc := fr.NewCompositeCtx()

			runChunk := func(c par.Chunk, band int) {
				for row := c.Lo; row < c.Hi; row++ {
					before := ps.Composite.Samples
					cycles := cc.Scanline(row, &ps.Composite)
					if profiling {
						// A scanline that composited no samples is empty:
						// zero in the profile so the region excludes it.
						if ps.Composite.Samples == before {
							newProfile[row] = 0
						} else {
							newProfile[row] = cycles
						}
						ps.Profiled += ProfileOverheadCycles(cycles)
					}
				}
				bmu.Lock()
				if bands.MarkDone(band, c.Hi-c.Lo) {
					close(done[band])
				}
				bmu.Unlock()
			}

			for {
				bmu.Lock()
				c, ok := bands.TakeOwn(p)
				bmu.Unlock()
				if !ok {
					break
				}
				ps.Chunks++
				runChunk(c, p)
			}
			if !cfg.DisableSteal {
				for {
					bmu.Lock()
					c, band, ok := bands.TakeSteal()
					bmu.Unlock()
					if !ok {
						break
					}
					ps.Chunks++
					ps.Steals++
					runChunk(c, band)
				}
			}

			// Warp this processor's tasks; each waits only on the bands its
			// bilinear reads can touch — no global barrier (section 5.5.2).
			// Interior tasks need only the own band; boundary slivers also
			// need the adjacent band.
			wc := warp.NewCtx(&fr.F, fr.M, fr.Out)
			for _, tk := range warpTasks {
				if tk.Owner != p {
					continue
				}
				for q := tk.NeedLo; q <= tk.NeedHi; q++ {
					<-done[q]
				}
				for y := 0; y < fr.Out.H; y++ {
					if x0, x1, ok := wc.RowSpan(y, tk.Band); ok {
						wc.WarpSpan(y, x0, x1, &ps.Warp)
					}
				}
			}
		}(p)
	}
	wg.Wait()

	if profiling {
		nr.profile = newProfile
		nr.profAxis = fr.F.Axis
		nr.profYaw, nr.profPitch = yaw, pitch
		nr.profImageH = fr.M.H
		nr.profSj, nr.profTv = fr.F.Sj, fr.F.Tv
		nr.profValid = true
	}
	return res
}

// Profile returns the current per-scanline cost profile (nil before the
// first profiled frame). The returned slice is live; callers must not
// modify it.
func (nr *Renderer) Profile() []int64 { return nr.profile }
