package newalg

import (
	"context"
	"math"
	rtrace "runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"shearwarp/internal/composite"
	"shearwarp/internal/faultinject"
	"shearwarp/internal/img"
	"shearwarp/internal/par"
	"shearwarp/internal/perf"
	"shearwarp/internal/render"
	"shearwarp/internal/telemetry"
	"shearwarp/internal/warp"
	"shearwarp/internal/xform"
)

// Config tunes the new parallel algorithm.
type Config struct {
	Procs         int     // number of workers; 0 means 1
	StealChunk    int     // scanlines per steal; 0 selects StealChunkSize
	LineBytes     int     // cache line size hint for the steal heuristic; 0 = 64
	ReprofileDeg  float64 // degrees of rotation between profiles; 0 = 15
	DisableSteal  bool    // turn off stealing (ablation)
	AlwaysProfile bool    // profile every frame (ablation)
}

func (c *Config) normalize() {
	if c.Procs < 1 {
		c.Procs = 1
	}
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
	if c.ReprofileDeg == 0 {
		c.ReprofileDeg = 15
	}
}

// ProcStats reports one worker's share of a frame.
type ProcStats struct {
	Composite composite.Counters
	Warp      warp.Counters
	Steals    int   // chunks obtained by stealing
	Chunks    int   // chunks composited in total
	Profiled  int64 // profiling overhead cycles charged this frame
}

// Result is a rendered frame plus its per-processor accounting. The result
// (including Out and PerProc) points into the renderer's reusable per-frame
// storage: it is valid until the next RenderFrame call on the same
// renderer.
type Result struct {
	Out        *img.Final
	PerProc    []ProcStats
	Boundaries []int // the partition used (len Procs+1)
	Profiled   bool  // whether this frame collected a profile
	Region     Region
}

// Stats aggregates the per-processor counters.
func (r *Result) Stats() render.FrameStats {
	var st render.FrameStats
	for i := range r.PerProc {
		st.Composite.Add(r.PerProc[i].Composite)
		st.Composite.Cycles += r.PerProc[i].Profiled
		st.Warp.Add(r.PerProc[i].Warp)
	}
	return st
}

// workerRec is one worker's failure-domain bookkeeping for the current
// frame: which phase and band it is in (read by its own deferred recover
// to build a FrameError) and whether it has passed the clear rendezvous
// (so recovery can release peers blocked there). Each record is written
// only by its own worker goroutine.
type workerRec struct {
	phase   string
	band    int
	cleared bool
}

// Renderer carries the cross-frame state of the new algorithm: the last
// collected per-scanline profile and the viewpoint it was collected at,
// plus the reusable per-frame resources (images, partition scratch, band
// queue, worker pool) that make the steady-state frame loop allocation
// free.
type Renderer struct {
	R   *render.Renderer
	Cfg Config

	// Perf, when non-nil, collects per-worker phase timings and work
	// counters for each frame (the native Figure-5/6 breakdown). Like the
	// trace.Tracer split in the kernels, every instrumentation site is
	// nil-checked so the default path performs no clock reads and renders
	// byte-identically. Set it before the first RenderFrame; it is reset
	// at the start of every frame and snapshotted with Perf.Breakdown
	// after RenderFrame returns.
	Perf *perf.Collector

	// Faults, when non-nil, injects deterministic faults at the worker
	// phase sites (internal/faultinject). Nil-checked everywhere; the
	// disabled path costs one branch per site. Set it between frames only.
	Faults *faultinject.Injector

	// Spans, when non-nil, receives one timestamped span per worker phase
	// (clear, rendezvous wait, composite-own/steal, band-wait, warp) —
	// the raw material for the service's per-request traces and the
	// paper's Figure 5/6 timeline. The recorder shares the perf
	// collector's clock reads, so attaching both costs no extra time
	// calls; like Perf it is nil-checked at every site and must only be
	// swapped between frames.
	Spans *telemetry.FrameSpans

	profile    []int64
	profAxis   xform.Axis
	profYaw    float64
	profPitch  float64
	profValid  bool
	profImageH int
	profSj     float64 // v-axis shear of the profiled frame
	profTv     float64 // v-axis translation of the profiled frame

	// Reusable per-frame state. Workers read the per-frame fields after
	// receiving a start token (the channel send publishes them) and the
	// main goroutine reads worker results after frameWG.Wait.
	fr         render.Frame
	res        Result
	boundaries []int
	padBuf     []int64 // zero-extended profile scratch
	cumBuf     []int64 // prefix-sum scratch
	profBuf    []int64 // profile double buffer, swapped with profile
	bands      *par.Bands
	tb         warp.TaskBuilder
	warpTasks  []warp.Task
	profiling  bool
	bmu        sync.Mutex
	bandDone   []atomic.Bool   // per-band completion flags, replace the barrier
	bandCond   *sync.Cond      // signals band completion and frame aborts; locker is bmu
	clearWG    sync.WaitGroup  // rendezvous after the parallel image clear
	frameWG    sync.WaitGroup  // frame completion
	ctxPool    sync.Pool       // *composite.Ctx
	warpPool   sync.Pool       // *warp.Scratch (packed warp tier row cache)
	start      []chan struct{} // per-worker frame-start tokens
	wstate     []workerRec     // per-worker failure bookkeeping
	traceCtx   context.Context // runtime/trace task context of the current frame

	// Cooperative cancellation and panic isolation. abortFlag is the
	// shared cancel flag every worker polls at scanline granularity (one
	// predictable load); abortErr holds the first failure; frameGen
	// guards against a stale context watcher aborting a later frame.
	abortFlag atomic.Bool
	abortMu   sync.Mutex
	abortErr  error
	frameGen  uint64
	setupErr  error
}

// NewRenderer wraps a render.Renderer with the new algorithm's state.
func NewRenderer(r *render.Renderer, cfg Config) *Renderer {
	cfg.normalize()
	return &Renderer{R: r, Cfg: cfg}
}

// needProfile decides whether this frame must (re-)collect the profile.
func (nr *Renderer) needProfile(f *xform.Factorization, yaw, pitch float64) bool {
	if nr.Cfg.AlwaysProfile || !nr.profValid {
		return true
	}
	if nr.profAxis != f.Axis {
		return true // principal axis flip invalidates the profile entirely
	}
	if d := nr.profImageH - f.IntH; d > MaxImageDrift || d < -MaxImageDrift {
		return true // the sheared image changed size drastically
	}
	limit := nr.Cfg.ReprofileDeg * math.Pi / 180
	return math.Abs(yaw-nr.profYaw) >= limit || math.Abs(pitch-nr.profPitch) >= limit
}

// RenderFrame renders one frame with native goroutines. The output is
// bit-identical to the serial renderer's for the same viewpoint.
//
// Frames after the first allocate nothing: the images, partition scratch,
// band queue and warp tasks live on the renderer, compositing contexts come
// from a pool, and the workers are persistent goroutines woken by buffered
// start tokens. The returned Result points into that reusable storage and
// is valid until the next RenderFrame call.
//
// RenderFrame is the uncancellable entry point: it runs under
// context.Background and re-panics a *render.FrameError if a worker
// panicked. Services use RenderFrameCtx.
func (nr *Renderer) RenderFrame(yaw, pitch float64) *Result {
	res, err := nr.RenderFrameCtx(context.Background(), yaw, pitch)
	if err != nil {
		panic(err)
	}
	return res
}

// RenderFrameCtx is RenderFrame with cooperative cancellation and panic
// isolation. When ctx is cancelled, every worker observes the shared
// abort flag within one scanline of work (or one condition-variable
// wakeup if it is waiting on a band) and the call returns ctx's error. A
// panic in any worker or in setup is recovered into a *render.FrameError:
// peers are aborted the same way, nothing is poisoned, and the next frame
// on this renderer renders byte-identically to an undisturbed one. On
// error the returned Result is nil.
func (nr *Renderer) RenderFrameCtx(ctx context.Context, yaw, pitch float64) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := nr.Cfg
	pc := nr.Perf
	pc.Reset(cfg.Procs)

	if nr.bandCond == nil {
		nr.bandCond = sync.NewCond(&nr.bmu)
	}
	nr.abortMu.Lock()
	nr.frameGen++
	gen := nr.frameGen
	nr.abortErr = nil
	nr.abortMu.Unlock()
	nr.abortFlag.Store(false)

	// One runtime/trace task per frame; the workers' phase regions attach
	// to it. Gated on IsEnabled so the untraced path allocates nothing.
	nr.traceCtx = context.Background()
	var task *rtrace.Task
	if rtrace.IsEnabled() {
		nr.traceCtx, task = rtrace.NewTask(nr.traceCtx, "shearwarp.frame")
	}

	sr := nr.Spans
	var tSetup time.Time
	if sr != nil {
		tSetup = time.Now()
	}
	if err := nr.setupFrame(yaw, pitch); err != nil {
		if task != nil {
			task.End()
		}
		return nil, err
	}
	if sr != nil {
		sr.Record(-1, "setup", telemetry.CatRequest, tSetup, time.Since(tSetup))
	}

	// Watch for external cancellation only when the context is actually
	// cancellable, so the background-context frame loop stays free of the
	// watcher's allocation. The generation check makes a watcher that
	// fires after this frame ends harmless to the next one.
	var stopWatch func() bool
	if ctx.Done() != nil {
		stopWatch = context.AfterFunc(ctx, func() {
			nr.requestAbort(gen, ctx.Err())
		})
	}

	nr.ensureWorkers(cfg.Procs)
	nr.clearWG.Add(cfg.Procs)
	nr.frameWG.Add(cfg.Procs)
	pc.FrameStart()
	for p := 0; p < cfg.Procs; p++ {
		nr.start[p] <- struct{}{}
	}
	nr.frameWG.Wait()
	pc.FrameEnd()
	if task != nil {
		task.End()
	}
	if stopWatch != nil {
		stopWatch()
	}

	if nr.abortFlag.Load() {
		nr.abortMu.Lock()
		err := nr.abortErr
		nr.abortMu.Unlock()
		if err == nil {
			err = ctx.Err()
		}
		if err == nil {
			err = context.Canceled
		}
		return nil, err
	}
	// A cancellation that lands in the frame's final scanlines can lose
	// the race against frame completion: the workers finish before the
	// watcher raises the abort flag. Honour the context anyway — a
	// cancelled frame never reports success. The completed render is
	// discarded; partition state is unaffected (it never changes output).
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if nr.profiling {
		fr := &nr.fr
		nr.profile, nr.profBuf = nr.profBuf, nr.profile
		nr.profAxis = fr.F.Axis
		nr.profYaw, nr.profPitch = yaw, pitch
		nr.profImageH = fr.M.H
		nr.profSj, nr.profTv = fr.F.Sj, fr.F.Tv
		nr.profValid = true
	}
	return &nr.res, nil
}

// setupFrame runs the per-frame setup (factorization, partition, queue and
// image reuse) with panic containment: a panic — a degenerate view matrix,
// an RLE invariant violation surfaced by a cache-fed encoding, an injected
// setup fault — converts to a *render.FrameError before any worker starts.
func (nr *Renderer) setupFrame(yaw, pitch float64) error {
	nr.setupErr = nil
	nr.runSetup(yaw, pitch)
	return nr.setupErr
}

// recoverSetup is the deferred recover of runSetup; a direct method defer
// (no closure) so the steady-state frame loop stays allocation-free.
func (nr *Renderer) recoverSetup() {
	if v := recover(); v != nil {
		nr.setupErr = render.NewFrameError(-1, "setup", -1, v)
	}
}

func (nr *Renderer) runSetup(yaw, pitch float64) {
	defer nr.recoverSetup()
	cfg := nr.Cfg
	nr.Faults.Visit("setup", -1, -1)

	fr := &nr.fr
	nr.R.SetupInto(fr, yaw, pitch)

	res := &nr.res
	res.Out = fr.Out
	if cap(res.PerProc) >= cfg.Procs {
		res.PerProc = res.PerProc[:cfg.Procs]
		clear(res.PerProc)
	} else {
		res.PerProc = make([]ProcStats, cfg.Procs)
	}

	profiling := nr.needProfile(&fr.F, yaw, pitch)
	nr.profiling = profiling
	res.Profiled = profiling

	if cap(nr.boundaries) >= cfg.Procs+1 {
		nr.boundaries = nr.boundaries[:cfg.Procs+1]
	} else {
		nr.boundaries = make([]int, cfg.Procs+1)
	}

	// Choose the partition: profile-balanced over the non-empty region when
	// a profile exists, uniform otherwise. The region from the profiled
	// frame is expanded by a sound geometric bound on how far any voxel's
	// v coordinate can have moved since (v = j + Sj*k + Tv, so the shift is
	// at most max(|ΔTv|, |ΔSj|*(Nk-1) + |ΔTv|)), keeping the skip exact:
	// a scanline outside the expanded region cannot receive samples.
	var region Region
	drift := 0
	if nr.profValid {
		drift = nr.profImageH - fr.M.H
		if drift < 0 {
			drift = -drift
		}
	}
	if nr.profValid && nr.profAxis == fr.F.Axis && drift <= MaxImageDrift {
		region = FindRegion(nr.profile)
		if region.Hi > region.Lo {
			shift0 := math.Abs(fr.F.Tv - nr.profTv)
			shiftN := math.Abs((fr.F.Sj-nr.profSj)*float64(fr.F.Nk-1) + (fr.F.Tv - nr.profTv))
			b := int(math.Ceil(math.Max(shift0, shiftN))) + 1
			region.Lo = max(region.Lo-b, 0)
			region.Hi = min(region.Hi+b, fr.M.H)
		}
		// Zero-extend the profile into scratch when the image has grown.
		pp := nr.profile
		if len(pp) < region.Hi {
			if cap(nr.padBuf) >= region.Hi {
				nr.padBuf = nr.padBuf[:region.Hi]
			} else {
				nr.padBuf = make([]int64, region.Hi)
			}
			copy(nr.padBuf, pp)
			clear(nr.padBuf[len(pp):])
			pp = nr.padBuf
		}
		if n := region.Hi - region.Lo; cap(nr.cumBuf) < n {
			nr.cumBuf = make([]int64, n)
		}
		partitionInto(nr.boundaries, nr.cumBuf[:cap(nr.cumBuf)], pp, region, cfg.Procs)
	} else {
		region = Region{0, fr.M.H}
		uniformInto(nr.boundaries, fr.M.H, cfg.Procs)
	}
	res.Boundaries = nr.boundaries
	res.Region = region

	steal := cfg.StealChunk
	if steal < 1 {
		steal = StealChunkSize(region.Hi-region.Lo, cfg.Procs, cfg.LineBytes)
	}

	if nr.bands == nil {
		nr.bands = par.NewBands(nr.boundaries, steal)
	} else {
		nr.bands.Reset(nr.boundaries, steal)
	}
	// Per-band completion flags replace the global barrier: a band's warp
	// waiters block on bandCond until its flag is set (or the frame
	// aborts). Bands that start empty are complete immediately.
	if len(nr.bandDone) != cfg.Procs {
		nr.bandDone = make([]atomic.Bool, cfg.Procs)
	}
	for p := 0; p < cfg.Procs; p++ {
		nr.bandDone[p].Store(nr.bands.Complete(p))
	}

	if profiling {
		// Rows are written disjointly by the workers; rows outside the
		// composited region must read as empty, hence the clear.
		if cap(nr.profBuf) >= fr.M.H {
			nr.profBuf = nr.profBuf[:fr.M.H]
			clear(nr.profBuf)
		} else {
			nr.profBuf = make([]int64, fr.M.H)
		}
	}

	nr.warpTasks = nr.tb.Partition(nr.boundaries)
}

// requestAbort aborts the frame identified by gen: external cancellation
// goes through here so a watcher that outlives its frame cannot abort a
// later one.
func (nr *Renderer) requestAbort(gen uint64, err error) {
	nr.abortMu.Lock()
	if gen != nr.frameGen {
		nr.abortMu.Unlock()
		return
	}
	if nr.abortErr == nil {
		nr.abortErr = err
	}
	nr.abortMu.Unlock()
	nr.raiseAbort()
}

// abortCurrent aborts the frame in flight; workers (which by construction
// belong to the current frame) report panics through it.
func (nr *Renderer) abortCurrent(err error) {
	nr.abortMu.Lock()
	if nr.abortErr == nil {
		nr.abortErr = err
	}
	nr.abortMu.Unlock()
	nr.raiseAbort()
}

// raiseAbort publishes the abort flag and wakes every band waiter. The
// flag is set before the broadcast so a waiter cannot recheck its
// predicate, miss the flag, and sleep through the wakeup.
func (nr *Renderer) raiseAbort() {
	nr.abortFlag.Store(true)
	nr.bmu.Lock()
	nr.bandCond.Broadcast()
	nr.bmu.Unlock()
}

// ensureWorkers keeps one persistent goroutine per processor, woken once
// per frame by a token on its start channel. If the processor count
// changed, the old workers are shut down by closing their channels.
func (nr *Renderer) ensureWorkers(procs int) {
	if len(nr.start) == procs {
		return
	}
	for _, ch := range nr.start {
		close(ch)
	}
	nr.start = make([]chan struct{}, procs)
	nr.wstate = make([]workerRec, procs)
	for p := 0; p < procs; p++ {
		ch := make(chan struct{}, 1)
		nr.start[p] = ch
		go func(p int, ch chan struct{}) {
			for range ch {
				nr.frameWorker(p)
				nr.frameWG.Done()
			}
		}(p, ch)
	}
}

// Close shuts down the persistent workers. It is optional — an abandoned
// renderer merely parks its goroutines — but callers that create many
// renderers can use it to release them deterministically. The renderer
// must not be used after Close.
func (nr *Renderer) Close() {
	for _, ch := range nr.start {
		close(ch)
	}
	nr.start = nil
}

// frameWorker runs one worker's share of a frame inside its panic domain.
func (nr *Renderer) frameWorker(p int) {
	st := &nr.wstate[p]
	st.phase, st.band, st.cleared = "clear", -1, false
	defer nr.recoverWorker(p)
	nr.renderWorker(p, st)
}

// recoverWorker is each worker's deferred recover (a direct method defer,
// no closure, to keep the frame loop allocation-free). A panic converts
// to a *render.FrameError carrying the worker's phase and band, aborts
// the peers, and — critically for deadlock freedom — still releases the
// clear rendezvous if the worker died before reaching it. Bands the dead
// worker had claimed stay incomplete; their waiters are released by the
// abort broadcast instead of a completion signal.
func (nr *Renderer) recoverWorker(p int) {
	st := &nr.wstate[p]
	if v := recover(); v != nil {
		nr.abortCurrent(render.NewFrameError(p, st.phase, st.band, v))
	}
	if !st.cleared {
		st.cleared = true
		nr.clearWG.Done()
	}
}

// waitBand blocks until band q completes or the frame aborts. The
// lock-free fast path is a single atomic load; the slow path sleeps on
// bandCond, woken by band completions and aborts.
func (nr *Renderer) waitBand(q int) {
	if nr.bandDone[q].Load() {
		return
	}
	nr.bmu.Lock()
	for !nr.bandDone[q].Load() && !nr.abortFlag.Load() {
		nr.bandCond.Wait()
	}
	nr.bmu.Unlock()
}

// renderWorker is one processor's share of a frame: clear a stripe of the
// intermediate image, composite own-band chunks then stolen chunks, and
// warp the owned tasks as their band dependencies complete. It polls the
// shared abort flag at scanline granularity throughout, so a cancelled or
// failed frame frees the worker within one scanline of work.
func (nr *Renderer) renderWorker(p int, st *workerRec) {
	fr := &nr.fr
	procs := len(nr.start)
	pc := nr.Perf
	sr := nr.Spans
	fi := nr.Faults
	ctx := nr.traceCtx
	// One timing gate for both recorders: perf's AddPhase and the span
	// recorder's Record are nil-safe, so each site reads the clock once
	// and feeds both.
	timed := pc != nil || sr != nil
	var tw, t0 time.Time
	if timed {
		tw = time.Now()
		t0 = tw
	}

	// Parallel clear: each worker wipes one horizontal stripe of the
	// (reused) intermediate image, then all workers rendezvous so no one
	// composites into rows another worker has yet to clear.
	if fi != nil {
		fi.Visit("clear", p, -1)
	}
	reg := rtrace.StartRegion(ctx, "clear")
	nr.fr.M.ClearRows(p*fr.M.H/procs, (p+1)*fr.M.H/procs)
	reg.End()
	if timed {
		d := time.Since(t0)
		pc.AddPhase(p, perf.PhaseClear, d)
		sr.Record(p, "clear", telemetry.CatBusy, t0, d)
		t0 = time.Now()
	}
	nr.clearWG.Done()
	st.cleared = true
	nr.clearWG.Wait()
	if timed {
		d := time.Since(t0)
		pc.AddPhase(p, perf.PhaseWait, d)
		sr.Record(p, "clear-rendezvous", telemetry.CatSync, t0, d)
		t0 = time.Now()
	}
	if nr.abortFlag.Load() {
		return
	}

	ps := &nr.res.PerProc[p]
	cc, _ := nr.ctxPool.Get().(*composite.Ctx)
	cc = fr.BindCompositeCtx(cc)

	st.phase = "composite"
	reg = rtrace.StartRegion(ctx, "composite-own")
	for !nr.abortFlag.Load() {
		nr.bmu.Lock()
		c, ok := nr.bands.TakeOwn(p)
		nr.bmu.Unlock()
		if !ok {
			break
		}
		st.band = p
		if fi != nil {
			fi.Visit("composite", p, p)
		}
		ps.Chunks++
		nr.runChunk(cc, ps, p, c, p)
	}
	reg.End()
	if timed {
		d := time.Since(t0)
		pc.AddPhase(p, perf.PhaseCompositeOwn, d)
		sr.Record(p, "composite-own", telemetry.CatBusy, t0, d)
		t0 = time.Now()
	}
	if !nr.Cfg.DisableSteal {
		st.phase = "steal"
		reg = rtrace.StartRegion(ctx, "composite-steal")
		for !nr.abortFlag.Load() {
			nr.bmu.Lock()
			c, band, ok := nr.bands.TakeSteal()
			nr.bmu.Unlock()
			if !ok {
				break
			}
			st.band = band
			if fi != nil {
				fi.Visit("steal", p, band)
			}
			ps.Chunks++
			ps.Steals++
			nr.runChunk(cc, ps, p, c, band)
		}
		reg.End()
		if timed {
			d := time.Since(t0)
			pc.AddPhase(p, perf.PhaseCompositeSteal, d)
			sr.Record(p, "composite-steal", telemetry.CatBusy, t0, d)
		}
	}
	nr.ctxPool.Put(cc)
	st.band = -1

	// Warp this processor's tasks; each waits only on the bands its
	// bilinear reads can touch — no global barrier (section 5.5.2).
	// Interior tasks need only the own band; boundary slivers also need
	// the adjacent band.
	ws, _ := nr.warpPool.Get().(*warp.Scratch)
	if ws == nil {
		ws = &warp.Scratch{}
	}
	wc := fr.NewWarpCtx(ws)
	defer nr.warpPool.Put(ws)
	for _, tk := range nr.warpTasks {
		if tk.Owner != p {
			continue
		}
		if nr.abortFlag.Load() {
			return
		}
		st.phase, st.band = "band-wait", tk.NeedLo
		if fi != nil {
			fi.Visit("band-wait", p, tk.NeedLo)
		}
		if timed {
			t0 = time.Now()
		}
		reg = rtrace.StartRegion(ctx, "band-wait")
		for q := tk.NeedLo; q <= tk.NeedHi; q++ {
			nr.waitBand(q)
		}
		reg.End()
		if timed {
			d := time.Since(t0)
			pc.AddPhase(p, perf.PhaseWait, d)
			sr.Record(p, "band-wait", telemetry.CatSync, t0, d)
			t0 = time.Now()
		}
		if nr.abortFlag.Load() {
			return // bands may be incomplete after an abort: do not warp them
		}
		st.phase = "warp"
		if fi != nil {
			fi.Visit("warp", p, tk.NeedLo)
		}
		reg = rtrace.StartRegion(ctx, "warp")
		for y := 0; y < fr.Out.H; y++ {
			if nr.abortFlag.Load() {
				reg.End()
				return
			}
			if x0, x1, ok := wc.RowSpan(y, tk.Band); ok {
				wc.WarpSpan(y, x0, x1, &ps.Warp)
			}
		}
		reg.End()
		if timed {
			d := time.Since(t0)
			pc.AddPhase(p, perf.PhaseWarp, d)
			sr.Record(p, "warp", telemetry.CatBusy, t0, d)
		}
	}

	if pc != nil {
		pc.AddPhase(p, perf.PhaseTotal, time.Since(tw))
		pc.AddCount(p, perf.CounterScanlines, ps.Composite.Scanlines)
		pc.AddCount(p, perf.CounterChunks, int64(ps.Chunks))
		pc.AddCount(p, perf.CounterSteals, int64(ps.Steals))
		pc.AddCount(p, perf.CounterEarlyTerm, ps.Composite.Skips)
		pc.AddCount(p, perf.CounterWarpSpans, ps.Warp.Rows)
	}
}

// runChunk composites one chunk of rows belonging to band, recording the
// per-scanline profile on profiling frames and signalling band completion.
// The abort flag is polled once per scanline — the one predictable load
// the cancellation design budgets for — and an aborted chunk leaves its
// band incomplete rather than mis-reporting rows it never composited.
func (nr *Renderer) runChunk(cc *composite.Ctx, ps *ProcStats, p int, c par.Chunk, band int) {
	fi := nr.Faults
	for row := c.Lo; row < c.Hi; row++ {
		if nr.abortFlag.Load() {
			return
		}
		if fi != nil {
			fi.Visit("scanline", p, band)
		}
		before := ps.Composite.Samples
		cycles := cc.Scanline(row, &ps.Composite)
		if nr.profiling {
			// A scanline that composited no samples is empty: zero in the
			// profile so the region excludes it.
			if ps.Composite.Samples == before {
				nr.profBuf[row] = 0
			} else {
				nr.profBuf[row] = cycles
			}
			ps.Profiled += ProfileOverheadCycles(cycles)
		}
	}
	nr.bmu.Lock()
	if nr.bands.MarkDone(band, c.Hi-c.Lo) {
		nr.bandDone[band].Store(true)
		nr.bandCond.Broadcast()
	}
	nr.bmu.Unlock()
}

// Profile returns the current per-scanline cost profile (nil before the
// first profiled frame). The returned slice is reused as scratch by later
// profiled frames; callers must not modify or retain it.
func (nr *Renderer) Profile() []int64 { return nr.profile }
