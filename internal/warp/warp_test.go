package warp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"shearwarp/internal/classify"
	"shearwarp/internal/composite"
	"shearwarp/internal/img"
	"shearwarp/internal/rle"
	"shearwarp/internal/vol"
	"shearwarp/internal/xform"
)

// composited builds a factorization and a composited intermediate image for
// the MRI phantom at the given view.
func composited(t *testing.T, n int, yaw, pitch float64) (*xform.Factorization, *img.Intermediate) {
	t.Helper()
	v := vol.MRIBrain(n)
	c := classify.Classify(v, classify.Options{})
	view := xform.ViewMatrix(v.Nx, v.Ny, v.Nz, yaw, pitch)
	f := xform.Factorize(v.Nx, v.Ny, v.Nz, view)
	rv := rle.Encode(c, f.Axis)
	m := img.NewIntermediate(f.IntW, f.IntH)
	ctx := composite.NewCtx(&f, rv, m)
	var cnt composite.Counters
	for vRow := 0; vRow < m.H; vRow++ {
		ctx.Scanline(vRow, &cnt)
	}
	return &f, m
}

func TestWarpProducesImage(t *testing.T) {
	f, m := composited(t, 20, 0.4, 0.3)
	out := img.NewFinal(f.FinalW, f.FinalH)
	ctx := NewCtx(f, m, out)
	var cnt Counters
	ctx.WarpTile(0, 0, out.W, out.H, &cnt)
	if out.NonBlackCount() == 0 {
		t.Fatal("warped image is entirely black")
	}
	if cnt.Pixels == 0 || cnt.Background == 0 {
		t.Fatalf("counters: %+v; want both interior and background pixels", cnt)
	}
	if cnt.Pixels+cnt.Background != int64(out.W*out.H) {
		t.Fatalf("pixels %d + background %d != image %d",
			cnt.Pixels, cnt.Background, out.W*out.H)
	}
}

func TestTilesEqualWholeImage(t *testing.T) {
	f, m := composited(t, 18, 0.7, -0.4)
	whole := img.NewFinal(f.FinalW, f.FinalH)
	tiled := img.NewFinal(f.FinalW, f.FinalH)
	var cnt Counters
	NewCtx(f, m, whole).WarpTile(0, 0, whole.W, whole.H, &cnt)
	ctx := NewCtx(f, m, tiled)
	const ts = 7
	for y0 := 0; y0 < tiled.H; y0 += ts {
		for x0 := 0; x0 < tiled.W; x0 += ts {
			ctx.WarpTile(x0, y0, x0+ts, y0+ts, &cnt)
		}
	}
	if !img.Equal(whole, tiled) {
		t.Fatal("tiled warp differs from whole-image warp")
	}
}

func TestTasksCoverEveryPixelExactlyOnce(t *testing.T) {
	f, m := composited(t, 18, 0.5, 0.35)
	H := m.H
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		p := 1 + rng.Intn(8)
		boundaries := randomBoundaries(rng, H, p)
		tasks := PartitionTasks(boundaries)
		out := img.NewFinal(f.FinalW, f.FinalH)
		ctx := NewCtx(f, m, out)
		cover := make([]int, out.W*out.H)
		for _, tk := range tasks {
			for y := 0; y < out.H; y++ {
				x0, x1, ok := ctx.RowSpan(y, tk.Band)
				if !ok {
					continue
				}
				for x := x0; x < x1; x++ {
					cover[y*out.W+x]++
				}
			}
		}
		for i, c := range cover {
			if c != 1 {
				t.Fatalf("trial %d boundaries %v: pixel %d covered %d times",
					trial, boundaries, i, c)
			}
		}
	}
}

// randomBoundaries builds monotone partition boundaries over [0, h) that
// may contain empty bands.
func randomBoundaries(rng *rand.Rand, h, p int) []int {
	bd := make([]int, p+1)
	bd[p] = h
	for i := 1; i < p; i++ {
		bd[i] = rng.Intn(h + 1)
	}
	for i := 1; i <= p; i++ {
		if bd[i] < bd[i-1] {
			bd[i] = bd[i-1]
		}
	}
	return bd
}

func TestBandWarpEqualsTileWarp(t *testing.T) {
	for _, view := range []struct{ yaw, pitch float64 }{
		{0, 0}, {0.5, 0.35}, {2.8, -0.6}, {1.2, 0.9},
	} {
		f, m := composited(t, 18, view.yaw, view.pitch)
		ref := img.NewFinal(f.FinalW, f.FinalH)
		var cnt Counters
		NewCtx(f, m, ref).WarpTile(0, 0, ref.W, ref.H, &cnt)

		got := img.NewFinal(f.FinalW, f.FinalH)
		ctx := NewCtx(f, m, got)
		H := m.H
		boundaries := []int{0, H / 3, H - H/5, H}
		for _, tk := range PartitionTasks(boundaries) {
			for y := 0; y < got.H; y++ {
				if x0, x1, ok := ctx.RowSpan(y, tk.Band); ok {
					ctx.WarpSpan(y, x0, x1, &cnt)
				}
			}
		}
		if !img.Equal(ref, got) {
			d := img.Compare(ref, got)
			t.Fatalf("view %+v: band warp differs from tile warp: %+v", view, d)
		}
	}
}

// Every composited row a task's bilinear interpolation can read must lie in
// a band the task declares as a dependency — the invariant that makes
// barrier elimination safe.
func TestTaskReadsWithinDeclaredNeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		h := 2 + rng.Intn(60)
		p := 1 + rng.Intn(8)
		boundaries := randomBoundaries(rng, h, p)
		lo, hi := boundaries[0], boundaries[p]
		bandOf := func(row int) int {
			for b := 0; b < p; b++ {
				if row >= boundaries[b] && row < boundaries[b+1] {
					return b
				}
			}
			return -1
		}
		for _, tk := range PartitionTasks(boundaries) {
			// Sample v values in the band and check the rows they read.
			for s := 0; s < 50; s++ {
				vLo := math.Max(tk.Band.VLo, -3)
				vHi := math.Min(tk.Band.VHi, float64(h)+3)
				if vLo >= vHi {
					continue
				}
				v := vLo + rng.Float64()*(vHi-vLo)
				if v >= tk.Band.VHi {
					continue
				}
				for _, row := range []int{int(math.Floor(v)), int(math.Floor(v)) + 1} {
					if row < lo || row >= hi {
						continue // outside composited region: always zero
					}
					b := bandOf(row)
					if b < 0 {
						t.Fatalf("row %d in region but no band: %v", row, boundaries)
					}
					if b < tk.NeedLo || b > tk.NeedHi {
						t.Fatalf("trial %d boundaries %v: task %+v reads row %d of band %d outside needs",
							trial, boundaries, tk, row, b)
					}
				}
			}
		}
	}
}

func TestSliverOwnershipRule(t *testing.T) {
	// Bands of 10 and 30 lines: the sliver at their boundary goes to the
	// 10-line processor.
	tasks := PartitionTasks([]int{0, 10, 40})
	var sliver *Task
	for i := range tasks {
		if tasks[i].Sliver {
			sliver = &tasks[i]
		}
	}
	if sliver == nil {
		t.Fatal("no sliver task generated")
	}
	if sliver.Owner != 0 {
		t.Fatalf("sliver owner = %d, want 0 (fewer lines)", sliver.Owner)
	}
	if sliver.Band.VLo != 9 || sliver.Band.VHi != 10 {
		t.Fatalf("sliver band = %+v, want [9,10)", sliver.Band)
	}
	if sliver.NeedLo != 0 || sliver.NeedHi != 1 {
		t.Fatalf("sliver needs = [%d,%d], want [0,1]", sliver.NeedLo, sliver.NeedHi)
	}

	// Reversed sizes: sliver goes to processor 1.
	tasks = PartitionTasks([]int{0, 30, 40})
	for _, tk := range tasks {
		if tk.Sliver && tk.Owner != 1 {
			t.Fatalf("sliver owner = %d, want 1", tk.Owner)
		}
	}
}

func TestInteriorTasksNeedOnlyOwnBand(t *testing.T) {
	tasks := PartitionTasks([]int{0, 20, 40, 60})
	interior := 0
	for _, tk := range tasks {
		if tk.Sliver {
			continue
		}
		if tk.NeedLo > tk.NeedHi {
			continue // background-only
		}
		if tk.NeedLo != tk.NeedHi {
			t.Fatalf("interior task %+v needs multiple bands", tk)
		}
		if tk.Owner != tk.NeedLo {
			t.Fatalf("interior task %+v not owned by its band", tk)
		}
		interior++
	}
	if interior != 3 {
		t.Fatalf("interior tasks = %d, want 3", interior)
	}
}

func TestSingleProcessorSingleTask(t *testing.T) {
	tasks := PartitionTasks([]int{0, 50})
	if len(tasks) != 1 {
		t.Fatalf("tasks = %d, want 1", len(tasks))
	}
	if !math.IsInf(tasks[0].Band.VLo, -1) || !math.IsInf(tasks[0].Band.VHi, 1) {
		t.Fatal("single task must cover the whole v axis")
	}
}

func TestRowSpanRespectsBand(t *testing.T) {
	f, m := composited(t, 16, 0.6, 0.2)
	out := img.NewFinal(f.FinalW, f.FinalH)
	ctx := NewCtx(f, m, out)
	rng := rand.New(rand.NewSource(8))
	inv := &f.WarpInv
	for trial := 0; trial < 40; trial++ {
		vLo := rng.Float64() * float64(m.H)
		vHi := vLo + rng.Float64()*20
		b := Band{VLo: vLo, VHi: vHi}
		for y := 0; y < out.H; y += 3 {
			x0, x1, ok := ctx.RowSpan(y, b)
			if !ok {
				continue
			}
			for _, x := range []int{x0, x1 - 1} {
				v := inv[3]*float64(x) + inv[4]*float64(y) + inv[5]
				if v < vLo-1e-6 || v >= vHi+1e-6 {
					t.Fatalf("row %d x %d: v=%g outside band [%g,%g)", y, x, v, vLo, vHi)
				}
			}
		}
	}
}

func TestQuant255(t *testing.T) {
	if quant255(0) != 0 || quant255(1) != 255 {
		t.Fatal("quant endpoints wrong")
	}
	if quant255(-0.5) != 0 || quant255(2.0) != 255 {
		t.Fatal("quant does not clamp")
	}
	if quant255(0.5) != 128 {
		t.Fatalf("quant255(0.5) = %d, want 128", quant255(0.5))
	}
}

func TestWarpSpanClipsToImage(t *testing.T) {
	f, m := composited(t, 14, 0.3, 0.3)
	out := img.NewFinal(f.FinalW, f.FinalH)
	ctx := NewCtx(f, m, out)
	var cnt Counters
	ctx.WarpSpan(0, -100, out.W+100, &cnt) // must not panic
	ctx.WarpSpan(0, 50, 10, &cnt)          // empty span: no work
	if cnt.Rows != 1 {
		t.Fatalf("rows = %d, want 1 (empty span skipped)", cnt.Rows)
	}
}

// quick-driven property: for arbitrary monotone boundaries, tasks cover the
// v axis exactly and owners are valid processors.
func TestPartitionTasksQuick(t *testing.T) {
	f := func(raw []uint8, procs uint8) bool {
		p := int(procs)%8 + 1
		h := 1
		for _, r := range raw {
			h += int(r) % 8
		}
		rng := rand.New(rand.NewSource(int64(len(raw)*31 + p)))
		bd := randomBoundaries(rng, h, p)
		tasks := PartitionTasks(bd)
		// Bands tile (-inf, inf): sorted by VLo, adjacent edges touch.
		for i, tk := range tasks {
			if tk.Owner < 0 || tk.Owner >= p {
				return false
			}
			if i == 0 {
				if !math.IsInf(tk.Band.VLo, -1) {
					return false
				}
			} else if tasks[i-1].Band.VHi != tk.Band.VLo {
				return false
			}
			if tk.Band.VLo >= tk.Band.VHi {
				return false
			}
		}
		return math.IsInf(tasks[len(tasks)-1].Band.VHi, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
