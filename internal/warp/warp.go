// Package warp implements the 2-D warp phase of the shear-warp algorithm:
// an affine inverse-mapped bilinear resampling of the intermediate image
// into the final image.
//
// Two parallel decompositions are supported, matching the paper:
//
//   - WarpTile renders an arbitrary rectangle of the final image — the
//     old algorithm's unit of work (round-robin square tiles).
//   - RowSpan computes, for one final-image row, the pixel interval whose
//     inverse-mapped v coordinate falls inside a band of intermediate
//     scanlines — the new algorithm's unit of work, where each processor
//     warps exactly the final pixels fed by its own compositing partition.
//
// Band ownership partitions the v axis over (-inf, +inf), so every final
// pixel (including background) is written by exactly one processor and no
// synchronization is needed on the final image.
package warp

import (
	"math"

	"shearwarp/internal/img"
	"shearwarp/internal/trace"
	"shearwarp/internal/xform"
)

// Cost model (cycles, Pixie analog): the warp is cheap per pixel relative
// to compositing, as in the paper ("There is little computation in the
// warp phase").
const (
	CyclesPerPixel      = 11 // inverse map step + bilinear of 4 pixels + store
	CyclesPerBackground = 2  // inverse map step + bounds reject + store
	CyclesPerRowSetup   = 9  // per row-span setup of the incremental mapping
)

// Counters aggregates warp work.
type Counters struct {
	Cycles     int64
	Pixels     int64 // interior pixels bilinearly resampled
	Background int64 // pixels outside the intermediate image
	Rows       int64 // row spans processed
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Cycles += other.Cycles
	c.Pixels += other.Pixels
	c.Background += other.Background
	c.Rows += other.Rows
}

// Arrays holds trace handles for the warp's shared arrays.
type Arrays struct {
	IntPix   trace.Array // intermediate image pixels, elem 16 bytes
	FinalPix trace.Array // final image pixels, elem 4 bytes
}

// RegisterFinal registers the final image in an address space. The
// intermediate handle is shared with the compositing kernel.
func RegisterFinal(s *trace.AddrSpace, out *img.Final) trace.Array {
	return s.Register("final.Pix", 4, out.W*out.H)
}

// Ctx carries one processor's warp state.
type Ctx struct {
	F      *xform.Factorization
	M      *img.Intermediate
	Out    *img.Final
	Tracer trace.Tracer
	Arrays Arrays
}

// NewCtx builds a warp context.
func NewCtx(f *xform.Factorization, m *img.Intermediate, out *img.Final) *Ctx {
	return &Ctx{F: f, M: m, Out: out}
}

// WarpSpan warps final-image row y for x in [x0, x1). Native frames
// (Tracer == nil) take a branch-free fast path; simulated frames take the
// traced path, which additionally records the memory references. Both paths
// produce bit-identical pixels: the fast path drops only zero-weight
// contributions (identity adds on the non-negative accumulators) and keeps
// the same evaluation order.
func (c *Ctx) WarpSpan(y, x0, x1 int, cnt *Counters) {
	if x0 < 0 {
		x0 = 0
	}
	if x1 > c.Out.W {
		x1 = c.Out.W
	}
	if x0 >= x1 {
		return
	}
	cnt.Rows++
	cnt.Cycles += CyclesPerRowSetup
	if c.Tracer == nil {
		c.warpSpanUntraced(y, x0, x1, cnt)
		return
	}
	c.warpSpanTraced(y, x0, x1, cnt)
}

// warpSpanUntraced is the native fast path: no tracer checks, no extent
// tracking, and a branch-free 4-tap bilinear gather for interior pixels.
func (c *Ctx) warpSpanUntraced(y, x0, x1 int, cnt *Counters) {
	inv := &c.F.WarpInv
	// Incremental mapping along the row: (u, v) advances by (inv[0], inv[3])
	// per pixel.
	u := inv[0]*float64(x0) + inv[1]*float64(y) + inv[2]
	v := inv[3]*float64(x0) + inv[4]*float64(y) + inv[5]
	M, out := c.M, c.Out
	W, H := M.W, M.H
	pix := M.Pix
	outPix := out.Pix
	outBase := y * out.W
	for x := x0; x < x1; x, u, v = x+1, u+inv[0], v+inv[3] {
		u0 := int(math.Floor(u))
		v0 := int(math.Floor(v))
		o := 4 * (outBase + x)
		if u0 < -1 || v0 < -1 || u0 >= W || v0 >= H {
			outPix[o] = 0
			outPix[o+1] = 0
			outPix[o+2] = 0
			cnt.Background++
			cnt.Cycles += CyclesPerBackground
			continue
		}
		fu := float32(u - float64(u0))
		fv := float32(v - float64(v0))
		w00 := (1 - fu) * (1 - fv)
		w10 := fu * (1 - fv)
		w01 := (1 - fu) * fv
		w11 := fu * fv
		var r, g, b float32
		if u0 >= 0 && v0 >= 0 && u0+1 < W && v0+1 < H {
			p := 4 * (v0*W + u0)
			q := p + 4*W
			r = w00*pix[p] + w10*pix[p+4] + w01*pix[q] + w11*pix[q+4]
			g = w00*pix[p+1] + w10*pix[p+5] + w01*pix[q+1] + w11*pix[q+5]
			b = w00*pix[p+2] + w10*pix[p+6] + w01*pix[q+2] + w11*pix[q+6]
		} else {
			r, g, b = c.gatherClamped(u0, v0, w00, w10, w01, w11)
		}
		outPix[o] = quant255(r)
		outPix[o+1] = quant255(g)
		outPix[o+2] = quant255(b)
		cnt.Pixels++
		cnt.Cycles += CyclesPerPixel
	}
}

// gatherClamped handles the image-border pixels of the fast path, where
// some bilinear taps fall outside the intermediate image.
func (c *Ctx) gatherClamped(u0, v0 int, w00, w10, w01, w11 float32) (r, g, b float32) {
	M := c.M
	tap := func(uu, vv int, w float32) {
		if w == 0 || uu < 0 || vv < 0 || uu >= M.W || vv >= M.H {
			return
		}
		p := 4 * (vv*M.W + uu)
		r += w * M.Pix[p]
		g += w * M.Pix[p+1]
		b += w * M.Pix[p+2]
	}
	tap(u0, v0, w00)
	tap(u0+1, v0, w10)
	tap(u0, v0+1, w01)
	tap(u0+1, v0+1, w11)
	return
}

// warpSpanTraced is the simulator path: identical arithmetic plus extent
// tracking for the batched tracer emissions.
func (c *Ctx) warpSpanTraced(y, x0, x1 int, cnt *Counters) {
	inv := &c.F.WarpInv
	u := inv[0]*float64(x0) + inv[1]*float64(y) + inv[2]
	v := inv[3]*float64(x0) + inv[4]*float64(y) + inv[5]
	M, out := c.M, c.Out
	outBase := y * out.W
	// Track the u and v extents of interior pixels for batched tracing.
	minU, maxU := math.Inf(1), math.Inf(-1)
	minV, maxV := math.Inf(1), math.Inf(-1)
	interior := 0
	for x := x0; x < x1; x, u, v = x+1, u+inv[0], v+inv[3] {
		u0 := int(math.Floor(u))
		v0 := int(math.Floor(v))
		if u0 < -1 || v0 < -1 || u0 >= M.W || v0 >= M.H {
			out.Pix[4*(outBase+x)] = 0
			out.Pix[4*(outBase+x)+1] = 0
			out.Pix[4*(outBase+x)+2] = 0
			cnt.Background++
			cnt.Cycles += CyclesPerBackground
			continue
		}
		fu := float32(u - float64(u0))
		fv := float32(v - float64(v0))
		r, g, b := c.gatherClamped(u0, v0,
			(1-fu)*(1-fv), fu*(1-fv), (1-fu)*fv, fu*fv)
		out.Pix[4*(outBase+x)] = quant255(r)
		out.Pix[4*(outBase+x)+1] = quant255(g)
		out.Pix[4*(outBase+x)+2] = quant255(b)
		cnt.Pixels++
		cnt.Cycles += CyclesPerPixel
		interior++
		minU = math.Min(minU, u)
		maxU = math.Max(maxU, u)
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	c.Tracer.Write(c.Arrays.FinalPix, outBase+x0, x1-x0)
	if interior > 0 {
		// The interior pixels read the intermediate rows spanned by
		// [minV, maxV+1] over columns [minU, maxU+1].
		uLo := clampInt(int(math.Floor(minU)), 0, M.W-1)
		uHi := clampInt(int(math.Floor(maxU))+1, 0, M.W-1)
		vLo := clampInt(int(math.Floor(minV)), 0, M.H-1)
		vHi := clampInt(int(math.Floor(maxV))+1, 0, M.H-1)
		for vv := vLo; vv <= vHi; vv++ {
			c.Tracer.Read(c.Arrays.IntPix, vv*M.W+uLo, uHi-uLo+1)
		}
	}
}

// WarpTile warps the rectangle [x0, x1) x [y0, y1) of the final image —
// the old algorithm's task.
func (c *Ctx) WarpTile(x0, y0, x1, y1 int, cnt *Counters) {
	if y0 < 0 {
		y0 = 0
	}
	if y1 > c.Out.H {
		y1 = c.Out.H
	}
	for y := y0; y < y1; y++ {
		c.WarpSpan(y, x0, x1, cnt)
	}
}

// Band is a half-open interval [VLo, VHi) of the inverse-mapped v
// coordinate owned by one processor. Use math.Inf for the outermost bands
// so background pixels are covered exactly once.
type Band struct {
	VLo, VHi float64
}

// RowSpan returns the final-image x interval [x0, x1) of row y whose
// inverse-mapped v coordinate falls inside the band. The second return is
// false when the row does not intersect the band.
func (c *Ctx) RowSpan(y int, b Band) (int, int, bool) {
	inv := &c.F.WarpInv
	cv := inv[3] // dv/dx along a row
	d := inv[4]*float64(y) + inv[5]
	if math.Abs(cv) < 1e-12 {
		// v is constant across the row.
		if d >= b.VLo && d < b.VHi {
			return 0, c.Out.W, true
		}
		return 0, 0, false
	}
	// Solve b.VLo <= cv*x + d < b.VHi for x. Adjacent bands share an edge
	// value, and both sides compute the identical ceil((edge-d)/cv), so the
	// integer split is exact: no pixel is covered twice or missed.
	lo := (b.VLo - d) / cv
	hi := (b.VHi - d) / cv
	if cv < 0 {
		lo, hi = hi, lo
	}
	// Clamp infinities (from the outermost bands) before float-to-int
	// conversion, which is undefined for non-finite values.
	lo = math.Max(math.Min(lo, 1e12), -1e12)
	hi = math.Max(math.Min(hi, 1e12), -1e12)
	x0 := int(math.Ceil(lo))
	x1 := int(math.Ceil(hi))
	if x0 < 0 {
		x0 = 0
	}
	if x1 > c.Out.W {
		x1 = c.Out.W
	}
	if x0 >= x1 {
		return 0, 0, false
	}
	return x0, x1, true
}

// Task is one unit of the new algorithm's warp phase: a v-axis ownership
// band together with the compositing bands whose completion it depends on.
// The decomposition of PartitionTasks guarantees:
//
//   - the Bands of all tasks partition (-inf, +inf), so every final pixel
//     (including background) is warped by exactly one processor;
//   - the intermediate rows a task's bilinear reads can touch lie either in
//     compositing bands NeedLo..NeedHi (inclusive) or outside the composited
//     region entirely (where the image is zero and safe to read any time).
//
// Interior tasks depend only on their own band; the scanline-wide boundary
// slivers depend on the two adjacent bands and are assigned to the
// processor with fewer lines — the paper's rule that eliminates final-image
// write sharing and, with per-band completion counters, the global barrier
// between the phases (sections 4.5 and 5.5.2).
type Task struct {
	Band           Band
	Owner          int // processor that warps this task
	NeedLo, NeedHi int // inclusive band-index range to await; NeedLo > NeedHi means none
	Sliver         bool
}

// PartitionTasks builds the warp tasks for a contiguous compositing
// partition (boundaries[p]..boundaries[p+1] is processor p's band).
func PartitionTasks(boundaries []int) []Task {
	var tb TaskBuilder
	return tb.Partition(boundaries)
}

// TaskBuilder builds warp tasks into reusable scratch so per-frame
// partitioning never allocates in the steady state. The returned slice is
// valid until the next Partition call on the same builder.
type TaskBuilder struct {
	tasks []Task
	cuts  []int
	edges []float64
}

// Partition builds the warp tasks for a contiguous compositing partition,
// reusing the builder's buffers.
func (tb *TaskBuilder) Partition(boundaries []int) []Task {
	nb := len(boundaries) - 1
	lo, hi := boundaries[0], boundaries[nb]

	// Distinct internal cut values strictly inside the region; cuts at the
	// region edges separate only empty bands and are covered by the outer
	// intervals.
	cuts := tb.cuts[:0]
	for i := 1; i < nb; i++ {
		if b := boundaries[i]; b > lo && b < hi && (len(cuts) == 0 || cuts[len(cuts)-1] != b) {
			cuts = append(cuts, b)
		}
	}
	tb.cuts = cuts

	// Interval edges along the v axis: around each cut c the sliver
	// [c-1, c) gets its own interval.
	edges := append(tb.edges[:0], math.Inf(-1))
	for _, c := range cuts {
		if e := float64(c - 1); e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
		if e := float64(c); e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	edges = append(edges, math.Inf(1))
	tb.edges = edges

	bandSize := func(p int) int { return boundaries[p+1] - boundaries[p] }
	// bandOfRow returns the non-empty band containing a composited row, or
	// -1 for rows outside [lo, hi).
	bandOfRow := func(row int) int {
		if row < lo || row >= hi {
			return -1
		}
		for p := 0; p < nb; p++ {
			if row >= boundaries[p] && row < boundaries[p+1] {
				return p
			}
		}
		return -1
	}

	tasks := tb.tasks[:0]
	for i := 0; i+1 < len(edges); i++ {
		a, b := edges[i], edges[i+1]
		if a >= b {
			continue
		}
		t := Task{Band: Band{VLo: a, VHi: b}}
		// Rows the bilinear reads of v in [a, b) can touch: floor(v) and
		// floor(v)+1, clamped to the composited region.
		rowLo, rowHi := lo, hi-1
		if !math.IsInf(a, -1) {
			rowLo = max(rowLo, int(a))
		}
		if !math.IsInf(b, 1) {
			rowHi = min(rowHi, int(b))
		}
		t.NeedLo, t.NeedHi = 1, 0 // empty
		if rowLo <= rowHi {
			pLo, pHi := bandOfRow(rowLo), bandOfRow(rowHi)
			if pLo >= 0 && pHi >= 0 {
				t.NeedLo, t.NeedHi = pLo, pHi
			}
		}
		switch {
		case t.NeedLo > t.NeedHi:
			t.Owner = 0 // pure background
		case t.NeedLo == t.NeedHi:
			t.Owner = t.NeedLo
		default:
			// Boundary sliver: assign to the adjacent band owner with
			// fewer lines (ties go to the lower).
			t.Sliver = true
			if bandSize(t.NeedLo) <= bandSize(t.NeedHi) {
				t.Owner = t.NeedLo
			} else {
				t.Owner = t.NeedHi
			}
		}
		tasks = append(tasks, t)
	}
	tb.tasks = tasks
	return tasks
}

func quant255(x float32) uint8 {
	v := int32(x*255 + 0.5)
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
