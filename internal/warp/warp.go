// Package warp implements the 2-D warp phase of the shear-warp algorithm:
// an affine inverse-mapped bilinear resampling of the intermediate image
// into the final image.
//
// Two parallel decompositions are supported, matching the paper:
//
//   - WarpTile renders an arbitrary rectangle of the final image — the
//     old algorithm's unit of work (round-robin square tiles).
//   - RowSpan computes, for one final-image row, the pixel interval whose
//     inverse-mapped v coordinate falls inside a band of intermediate
//     scanlines — the new algorithm's unit of work, where each processor
//     warps exactly the final pixels fed by its own compositing partition.
//
// Band ownership partitions the v axis over (-inf, +inf), so every final
// pixel (including background) is written by exactly one processor and no
// synchronization is needed on the final image.
package warp

import (
	"math"

	"shearwarp/internal/cpudispatch"
	"shearwarp/internal/img"
	"shearwarp/internal/trace"
	"shearwarp/internal/xform"
)

// Cost model (cycles, Pixie analog): the warp is cheap per pixel relative
// to compositing, as in the paper ("There is little computation in the
// warp phase").
const (
	CyclesPerPixel      = 11 // inverse map step + bilinear of 4 pixels + store
	CyclesPerBackground = 2  // inverse map step + bounds reject + store
	CyclesPerRowSetup   = 9  // per row-span setup of the incremental mapping
)

// Counters aggregates warp work.
type Counters struct {
	Cycles     int64
	Pixels     int64 // interior pixels bilinearly resampled
	Background int64 // pixels outside the intermediate image
	Rows       int64 // row spans processed
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Cycles += other.Cycles
	c.Pixels += other.Pixels
	c.Background += other.Background
	c.Rows += other.Rows
}

// Arrays holds trace handles for the warp's shared arrays.
type Arrays struct {
	IntPix   trace.Array // intermediate image pixels, elem 16 bytes
	FinalPix trace.Array // final image pixels, elem 4 bytes
}

// RegisterFinal registers the final image in an address space. The
// intermediate handle is shared with the compositing kernel.
func RegisterFinal(s *trace.AddrSpace, out *img.Final) trace.Array {
	return s.Register("final.Pix", 4, out.W*out.H)
}

// Ctx carries one processor's warp state.
type Ctx struct {
	F      *xform.Factorization
	M      *img.Intermediate
	Out    *img.Final
	Tracer trace.Tracer
	Arrays Arrays
	// Kernel selects the untraced pixel kernel (cpudispatch.KernelScalar
	// when zero). Traced frames always run the scalar kernel — the
	// simulator's reference stream is part of the model.
	Kernel cpudispatch.Kernel
	// S holds the packed tier's row cache. Nil is valid (the packed path
	// allocates privately on first use); renderers that must stay
	// allocation-free in the steady state pass pooled scratch instead.
	S *Scratch
}

// NewCtx builds a warp context.
func NewCtx(f *xform.Factorization, m *img.Intermediate, out *img.Final) *Ctx {
	return &Ctx{F: f, M: m, Out: out}
}

// Scratch is the packed warp tier's reusable state: a full-frame cache of
// packed intermediate rows (so every row the bilinear taps touch is
// quantized at most once per frame, however steeply the warp's v
// coordinate climbs along the output rows) plus a shared zero row standing
// in for rows outside the image. Validity is a generation stamp per row,
// so invalidating the whole cache at a frame boundary is O(1). Rows cached
// during a frame stay valid for that whole frame: the new algorithm's warp
// tasks only start after the compositing bands their reads touch are
// complete, and completed bands are never rewritten. Call Reset at every
// frame boundary — the next frame composites new content into the same
// intermediate image.
type Scratch struct {
	rows  [][]uint64 // per intermediate row: packed lanes, one pad element each end
	stamp []uint32   // stamp[v] == gen means rows[v] is valid this frame
	gen   uint32
	zero  []uint64
}

// Reset invalidates the cached rows. Must run between frames.
func (s *Scratch) Reset() {
	s.gen++
	if s.gen == 0 { // stamp wrap: invalidate the slow way, once per 2^32 frames
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
}

// ensure sizes the cache for a w-wide, h-tall intermediate image. Row
// backing arrays grow lazily in packedRow; dimensions only ever ratchet
// up, so a pooled Scratch stops allocating once it has seen the largest
// frame.
func (s *Scratch) ensure(w, h int) {
	if s.gen == 0 {
		s.gen = 1 // stamp 0 must never read as valid on a fresh Scratch
	}
	if len(s.zero) < w+2 {
		s.zero = make([]uint64, w+2)
	}
	if len(s.rows) < h {
		rows := make([][]uint64, h)
		copy(rows, s.rows)
		stamp := make([]uint32, h)
		copy(stamp, s.stamp)
		s.rows, s.stamp = rows, stamp
	}
}

// WarpSpan warps final-image row y for x in [x0, x1). Native frames
// (Tracer == nil) take a branch-free fast path; simulated frames take the
// traced path, which additionally records the memory references. Both paths
// produce bit-identical pixels: the fast path drops only zero-weight
// contributions (identity adds on the non-negative accumulators) and keeps
// the same evaluation order.
func (c *Ctx) WarpSpan(y, x0, x1 int, cnt *Counters) {
	if x0 < 0 {
		x0 = 0
	}
	if x1 > c.Out.W {
		x1 = c.Out.W
	}
	if x0 >= x1 {
		return
	}
	cnt.Rows++
	cnt.Cycles += CyclesPerRowSetup
	if c.Tracer == nil {
		if c.Kernel == cpudispatch.KernelPacked {
			c.warpSpanPacked(y, x0, x1, cnt)
			return
		}
		c.warpSpanUntraced(y, x0, x1, cnt)
		return
	}
	c.warpSpanTraced(y, x0, x1, cnt)
}

// warpSpanUntraced is the native fast path: no tracer checks, no extent
// tracking, and a branch-free 4-tap bilinear gather for interior pixels.
func (c *Ctx) warpSpanUntraced(y, x0, x1 int, cnt *Counters) {
	inv := &c.F.WarpInv
	// Incremental mapping along the row: (u, v) advances by (inv[0], inv[3])
	// per pixel.
	u := inv[0]*float64(x0) + inv[1]*float64(y) + inv[2]
	v := inv[3]*float64(x0) + inv[4]*float64(y) + inv[5]
	M, out := c.M, c.Out
	W, H := M.W, M.H
	pix := M.Pix
	du, dv := inv[0], inv[3]
	outBase := y * out.W
	// One bounds check for the whole row's stores; the per-pixel capped
	// reslice below is check-free.
	outRow := out.Pix[4*(outBase+x0) : 4*(outBase+x1)]
	var pixels, background int64
	// Advancing the output window by 4 each pixel lets the compiler prove
	// the three channel stores in bounds from the loop condition alone.
	for ; len(outRow) >= 4; outRow, u, v = outRow[4:], u+du, v+dv {
		u0 := int(math.Floor(u))
		v0 := int(math.Floor(v))
		if u0 < -1 || v0 < -1 || u0 >= W || v0 >= H {
			outRow[0] = 0
			outRow[1] = 0
			outRow[2] = 0
			background++
			continue
		}
		fu := float32(u - float64(u0))
		fv := float32(v - float64(v0))
		w00 := (1 - fu) * (1 - fv)
		w10 := fu * (1 - fv)
		w01 := (1 - fu) * fv
		w11 := fu * fv
		var r, g, b float32
		if u0 >= 0 && v0 >= 0 && u0+1 < W && v0+1 < H {
			// Slice the two tap rows once; the eight channel reads below
			// then index constants into fixed-length views, so the inner
			// resample runs without per-element bounds checks.
			p := 4 * (v0*W + u0)
			q := p + 4*W
			t0 := pix[p : p+8 : p+8]
			t1 := pix[q : q+8 : q+8]
			r = w00*t0[0] + w10*t0[4] + w01*t1[0] + w11*t1[4]
			g = w00*t0[1] + w10*t0[5] + w01*t1[1] + w11*t1[5]
			b = w00*t0[2] + w10*t0[6] + w01*t1[2] + w11*t1[6]
		} else {
			r, g, b = c.gatherClamped(u0, v0, w00, w10, w01, w11)
		}
		outRow[0] = quant255(r)
		outRow[1] = quant255(g)
		outRow[2] = quant255(b)
		pixels++
	}
	cnt.Pixels += pixels
	cnt.Background += background
	cnt.Cycles += pixels*CyclesPerPixel + background*CyclesPerBackground
}

// warpSpanPacked is the packed-lane warp tier: each intermediate row the
// bilinear taps touch is quantized once into 16-bit RGB sublanes of a
// uint64 (cached across WarpSpan calls in Scratch, with zero padding at
// the row ends and a shared zero row above and below the image, so edge
// pixels need no clamped gather), and each final pixel is resampled with
// two 8.8 fixed-point SWAR lerps. Horizontal first: lane products are at
// most 255*256 < 2^16, so the three sublanes cannot carry into each
// other. The vertical lerp then splits R|B (32-bit spacing) from G, where
// products reach 255*256*256 < 2^24. Output bytes round half-up from the
// 16.16 result. Weight quantization makes this a documented epsilon mode
// (bytes may differ from scalar by a small bounded amount, pinned by
// TestPackedWarpCloseToScalar); the interior/background classification
// and therefore every counter is identical to the scalar kernel.
func (c *Ctx) warpSpanPacked(y, x0, x1 int, cnt *Counters) {
	s := c.S
	if s == nil {
		s = &Scratch{}
		c.S = s
	}
	M, out := c.M, c.Out
	W, H := M.W, M.H
	s.ensure(W, H)
	inv := &c.F.WarpInv
	du, dv := inv[0], inv[3]
	u := inv[0]*float64(x0) + inv[1]*float64(y) + inv[2]
	v := inv[3]*float64(x0) + inv[4]*float64(y) + inv[5]
	outBase := y * out.W
	outRow := out.Pix[4*(outBase+x0) : 4*(outBase+x1)]
	r0, r1 := s.zero, s.zero
	cv0 := math.MinInt32 // floor(v) the cached row pair was fetched for
	var pixels, background int64
	for ; len(outRow) >= 4; outRow, u, v = outRow[4:], u+du, v+dv {
		u0 := int(math.Floor(u))
		v0 := int(math.Floor(v))
		if u0 < -1 || v0 < -1 || u0 >= W || v0 >= H {
			outRow[0] = 0
			outRow[1] = 0
			outRow[2] = 0
			background++
			continue
		}
		if v0 != cv0 {
			r0 = s.packedRow(M, v0)
			r1 = s.packedRow(M, v0+1)
			cv0 = v0
		}
		fu := float32(u - float64(u0))
		fv := float32(v - float64(v0))
		pu := uint64(fu*256 + 0.5)
		pv := uint64(fv*256 + 0.5)
		t0 := r0[u0+1 : u0+3 : u0+3]
		t1 := r1[u0+1 : u0+3 : u0+3]
		top := (256-pu)*t0[0] + pu*t0[1]
		bot := (256-pu)*t1[0] + pu*t1[1]
		rb := (256-pv)*(top&0x0000ffff_0000ffff) + pv*(bot&0x0000ffff_0000ffff)
		g := (256-pv)*((top>>16)&0xffff) + pv*((bot>>16)&0xffff)
		outRow[0] = uint8((rb>>32 + 32768) >> 16)
		outRow[1] = uint8((g + 32768) >> 16)
		outRow[2] = uint8(((rb & 0xffffffff) + 32768) >> 16)
		pixels++
	}
	cnt.Pixels += pixels
	cnt.Background += background
	cnt.Cycles += pixels*CyclesPerPixel + background*CyclesPerBackground
}

// packedRow returns the packed form of intermediate row v (the shared
// zero row when v is outside the image), quantizing and caching it on
// first use.
func (s *Scratch) packedRow(M *img.Intermediate, v int) []uint64 {
	if v < 0 || v >= M.H {
		return s.zero
	}
	dst := s.rows[v]
	if s.stamp[v] == s.gen && len(dst) >= M.W+2 {
		return dst
	}
	if len(dst) < M.W+2 {
		dst = make([]uint64, len(s.zero))
		s.rows[v] = dst
	}
	row := M.Pix[4*v*M.W : 4*(v+1)*M.W]
	d := dst[1 : M.W+1]
	for i := range d {
		px := row[4*i : 4*i+3 : 4*i+3]
		d[i] = uint64(quant255(px[0]))<<32 |
			uint64(quant255(px[1]))<<16 |
			uint64(quant255(px[2]))
	}
	dst[0] = 0
	dst[M.W+1] = 0
	s.stamp[v] = s.gen
	return dst
}

// gatherClamped handles the image-border pixels of the fast path, where
// some bilinear taps fall outside the intermediate image.
func (c *Ctx) gatherClamped(u0, v0 int, w00, w10, w01, w11 float32) (r, g, b float32) {
	M := c.M
	tap := func(uu, vv int, w float32) {
		if w == 0 || uu < 0 || vv < 0 || uu >= M.W || vv >= M.H {
			return
		}
		p := 4 * (vv*M.W + uu)
		r += w * M.Pix[p]
		g += w * M.Pix[p+1]
		b += w * M.Pix[p+2]
	}
	tap(u0, v0, w00)
	tap(u0+1, v0, w10)
	tap(u0, v0+1, w01)
	tap(u0+1, v0+1, w11)
	return
}

// warpSpanTraced is the simulator path: identical arithmetic plus extent
// tracking for the batched tracer emissions.
func (c *Ctx) warpSpanTraced(y, x0, x1 int, cnt *Counters) {
	inv := &c.F.WarpInv
	u := inv[0]*float64(x0) + inv[1]*float64(y) + inv[2]
	v := inv[3]*float64(x0) + inv[4]*float64(y) + inv[5]
	M, out := c.M, c.Out
	outBase := y * out.W
	// Track the u and v extents of interior pixels for batched tracing.
	minU, maxU := math.Inf(1), math.Inf(-1)
	minV, maxV := math.Inf(1), math.Inf(-1)
	interior := 0
	for x := x0; x < x1; x, u, v = x+1, u+inv[0], v+inv[3] {
		u0 := int(math.Floor(u))
		v0 := int(math.Floor(v))
		if u0 < -1 || v0 < -1 || u0 >= M.W || v0 >= M.H {
			out.Pix[4*(outBase+x)] = 0
			out.Pix[4*(outBase+x)+1] = 0
			out.Pix[4*(outBase+x)+2] = 0
			cnt.Background++
			cnt.Cycles += CyclesPerBackground
			continue
		}
		fu := float32(u - float64(u0))
		fv := float32(v - float64(v0))
		r, g, b := c.gatherClamped(u0, v0,
			(1-fu)*(1-fv), fu*(1-fv), (1-fu)*fv, fu*fv)
		out.Pix[4*(outBase+x)] = quant255(r)
		out.Pix[4*(outBase+x)+1] = quant255(g)
		out.Pix[4*(outBase+x)+2] = quant255(b)
		cnt.Pixels++
		cnt.Cycles += CyclesPerPixel
		interior++
		minU = math.Min(minU, u)
		maxU = math.Max(maxU, u)
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	c.Tracer.Write(c.Arrays.FinalPix, outBase+x0, x1-x0)
	if interior > 0 {
		// The interior pixels read the intermediate rows spanned by
		// [minV, maxV+1] over columns [minU, maxU+1].
		uLo := clampInt(int(math.Floor(minU)), 0, M.W-1)
		uHi := clampInt(int(math.Floor(maxU))+1, 0, M.W-1)
		vLo := clampInt(int(math.Floor(minV)), 0, M.H-1)
		vHi := clampInt(int(math.Floor(maxV))+1, 0, M.H-1)
		for vv := vLo; vv <= vHi; vv++ {
			c.Tracer.Read(c.Arrays.IntPix, vv*M.W+uLo, uHi-uLo+1)
		}
	}
}

// WarpTile warps the rectangle [x0, x1) x [y0, y1) of the final image —
// the old algorithm's task.
func (c *Ctx) WarpTile(x0, y0, x1, y1 int, cnt *Counters) {
	if y0 < 0 {
		y0 = 0
	}
	if y1 > c.Out.H {
		y1 = c.Out.H
	}
	for y := y0; y < y1; y++ {
		c.WarpSpan(y, x0, x1, cnt)
	}
}

// Band is a half-open interval [VLo, VHi) of the inverse-mapped v
// coordinate owned by one processor. Use math.Inf for the outermost bands
// so background pixels are covered exactly once.
type Band struct {
	VLo, VHi float64
}

// RowSpan returns the final-image x interval [x0, x1) of row y whose
// inverse-mapped v coordinate falls inside the band. The second return is
// false when the row does not intersect the band.
func (c *Ctx) RowSpan(y int, b Band) (int, int, bool) {
	inv := &c.F.WarpInv
	cv := inv[3] // dv/dx along a row
	d := inv[4]*float64(y) + inv[5]
	if math.Abs(cv) < 1e-12 {
		// v is constant across the row.
		if d >= b.VLo && d < b.VHi {
			return 0, c.Out.W, true
		}
		return 0, 0, false
	}
	// Solve b.VLo <= cv*x + d < b.VHi for x. Adjacent bands share an edge
	// value, and both sides compute the identical ceil((edge-d)/cv), so the
	// integer split is exact: no pixel is covered twice or missed.
	lo := (b.VLo - d) / cv
	hi := (b.VHi - d) / cv
	if cv < 0 {
		lo, hi = hi, lo
	}
	// Clamp infinities (from the outermost bands) before float-to-int
	// conversion, which is undefined for non-finite values.
	lo = math.Max(math.Min(lo, 1e12), -1e12)
	hi = math.Max(math.Min(hi, 1e12), -1e12)
	x0 := int(math.Ceil(lo))
	x1 := int(math.Ceil(hi))
	if x0 < 0 {
		x0 = 0
	}
	if x1 > c.Out.W {
		x1 = c.Out.W
	}
	if x0 >= x1 {
		return 0, 0, false
	}
	return x0, x1, true
}

// Task is one unit of the new algorithm's warp phase: a v-axis ownership
// band together with the compositing bands whose completion it depends on.
// The decomposition of PartitionTasks guarantees:
//
//   - the Bands of all tasks partition (-inf, +inf), so every final pixel
//     (including background) is warped by exactly one processor;
//   - the intermediate rows a task's bilinear reads can touch lie either in
//     compositing bands NeedLo..NeedHi (inclusive) or outside the composited
//     region entirely (where the image is zero and safe to read any time).
//
// Interior tasks depend only on their own band; the scanline-wide boundary
// slivers depend on the two adjacent bands and are assigned to the
// processor with fewer lines — the paper's rule that eliminates final-image
// write sharing and, with per-band completion counters, the global barrier
// between the phases (sections 4.5 and 5.5.2).
type Task struct {
	Band           Band
	Owner          int // processor that warps this task
	NeedLo, NeedHi int // inclusive band-index range to await; NeedLo > NeedHi means none
	Sliver         bool
}

// PartitionTasks builds the warp tasks for a contiguous compositing
// partition (boundaries[p]..boundaries[p+1] is processor p's band).
func PartitionTasks(boundaries []int) []Task {
	var tb TaskBuilder
	return tb.Partition(boundaries)
}

// TaskBuilder builds warp tasks into reusable scratch so per-frame
// partitioning never allocates in the steady state. The returned slice is
// valid until the next Partition call on the same builder.
type TaskBuilder struct {
	tasks []Task
	cuts  []int
	edges []float64
}

// Partition builds the warp tasks for a contiguous compositing partition,
// reusing the builder's buffers.
func (tb *TaskBuilder) Partition(boundaries []int) []Task {
	nb := len(boundaries) - 1
	lo, hi := boundaries[0], boundaries[nb]

	// Distinct internal cut values strictly inside the region; cuts at the
	// region edges separate only empty bands and are covered by the outer
	// intervals.
	cuts := tb.cuts[:0]
	for i := 1; i < nb; i++ {
		if b := boundaries[i]; b > lo && b < hi && (len(cuts) == 0 || cuts[len(cuts)-1] != b) {
			cuts = append(cuts, b)
		}
	}
	tb.cuts = cuts

	// Interval edges along the v axis: around each cut c the sliver
	// [c-1, c) gets its own interval.
	edges := append(tb.edges[:0], math.Inf(-1))
	for _, c := range cuts {
		if e := float64(c - 1); e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
		if e := float64(c); e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	edges = append(edges, math.Inf(1))
	tb.edges = edges

	bandSize := func(p int) int { return boundaries[p+1] - boundaries[p] }
	// bandOfRow returns the non-empty band containing a composited row, or
	// -1 for rows outside [lo, hi).
	bandOfRow := func(row int) int {
		if row < lo || row >= hi {
			return -1
		}
		for p := 0; p < nb; p++ {
			if row >= boundaries[p] && row < boundaries[p+1] {
				return p
			}
		}
		return -1
	}

	tasks := tb.tasks[:0]
	for i := 0; i+1 < len(edges); i++ {
		a, b := edges[i], edges[i+1]
		if a >= b {
			continue
		}
		t := Task{Band: Band{VLo: a, VHi: b}}
		// Rows the bilinear reads of v in [a, b) can touch: floor(v) and
		// floor(v)+1, clamped to the composited region.
		rowLo, rowHi := lo, hi-1
		if !math.IsInf(a, -1) {
			rowLo = max(rowLo, int(a))
		}
		if !math.IsInf(b, 1) {
			rowHi = min(rowHi, int(b))
		}
		t.NeedLo, t.NeedHi = 1, 0 // empty
		if rowLo <= rowHi {
			pLo, pHi := bandOfRow(rowLo), bandOfRow(rowHi)
			if pLo >= 0 && pHi >= 0 {
				t.NeedLo, t.NeedHi = pLo, pHi
			}
		}
		switch {
		case t.NeedLo > t.NeedHi:
			t.Owner = 0 // pure background
		case t.NeedLo == t.NeedHi:
			t.Owner = t.NeedLo
		default:
			// Boundary sliver: assign to the adjacent band owner with
			// fewer lines (ties go to the lower).
			t.Sliver = true
			if bandSize(t.NeedLo) <= bandSize(t.NeedHi) {
				t.Owner = t.NeedLo
			} else {
				t.Owner = t.NeedHi
			}
		}
		tasks = append(tasks, t)
	}
	tb.tasks = tasks
	return tasks
}

func quant255(x float32) uint8 {
	v := int32(x*255 + 0.5)
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
