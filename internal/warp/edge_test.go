package warp

import (
	"math"
	"testing"

	"shearwarp/internal/img"
)

func TestRowSpanConstantV(t *testing.T) {
	// An axis-aligned view has an identity-like warp: v does not vary with
	// x along a final row (dv/dx ~ 0), exercising the degenerate branch.
	f, m := composited(t, 16, 0, 0)
	if math.Abs(f.WarpInv[3]) > 1e-9 {
		t.Skipf("warp not axis-aligned: dv/dx = %g", f.WarpInv[3])
	}
	out := img.NewFinal(f.FinalW, f.FinalH)
	ctx := NewCtx(f, m, out)
	// Band covering v in [2, 5): rows y with constant v in range are fully
	// owned, others not at all.
	owned := 0
	for y := 0; y < out.H; y++ {
		x0, x1, ok := ctx.RowSpan(y, Band{VLo: 2, VHi: 5})
		if !ok {
			continue
		}
		if x0 != 0 || x1 != out.W {
			t.Fatalf("constant-v row partially owned: [%d,%d)", x0, x1)
		}
		owned++
	}
	if owned == 0 {
		t.Fatal("no rows owned by a mid-image band")
	}
}

func TestPartitionTasksWithEmptyRegion(t *testing.T) {
	// All-equal boundaries: nothing composited, one background task.
	tasks := PartitionTasks([]int{5, 5, 5})
	cover := 0
	for _, tk := range tasks {
		if tk.NeedLo <= tk.NeedHi {
			t.Fatalf("empty-region task has dependencies: %+v", tk)
		}
		cover++
	}
	if cover == 0 {
		t.Fatal("no tasks for empty region")
	}
}

func TestPartitionTasksAllEmptyButOne(t *testing.T) {
	// Bands: empty, full, empty. Coverage and ownership must hold.
	tasks := PartitionTasks([]int{0, 0, 40, 40})
	sawInterior := false
	for _, tk := range tasks {
		if tk.NeedLo <= tk.NeedHi {
			if tk.NeedLo != 1 || tk.NeedHi != 1 {
				t.Fatalf("dependency outside the only non-empty band: %+v", tk)
			}
			sawInterior = true
		}
	}
	if !sawInterior {
		t.Fatal("no task depends on the non-empty band")
	}
}

func TestWarpCountersConsistent(t *testing.T) {
	f, m := composited(t, 16, 0.5, 0.3)
	out := img.NewFinal(f.FinalW, f.FinalH)
	ctx := NewCtx(f, m, out)
	var cnt Counters
	ctx.WarpTile(0, 0, out.W, out.H, &cnt)
	other := Counters{}
	other.Add(cnt)
	if other != cnt {
		t.Fatal("Add is lossy")
	}
	if cnt.Cycles < cnt.Pixels*CyclesPerPixel {
		t.Fatal("cycles below per-pixel floor")
	}
}

func TestWarpRowOutOfRange(t *testing.T) {
	f, m := composited(t, 14, 0.3, 0.2)
	out := img.NewFinal(f.FinalW, f.FinalH)
	ctx := NewCtx(f, m, out)
	var cnt Counters
	ctx.WarpTile(0, -10, out.W, 0, &cnt) // y range entirely above the image
	ctx.WarpTile(0, out.H, out.W, out.H+10, &cnt)
	if cnt.Pixels+cnt.Background != 0 {
		t.Fatal("out-of-range rows produced pixels")
	}
}

func TestWarpCostModelIdentity(t *testing.T) {
	f, m := composited(t, 18, 0.4, 0.3)
	out := img.NewFinal(f.FinalW, f.FinalH)
	ctx := NewCtx(f, m, out)
	var cnt Counters
	ctx.WarpTile(0, 0, out.W, out.H, &cnt)
	want := cnt.Rows*CyclesPerRowSetup +
		cnt.Pixels*CyclesPerPixel +
		cnt.Background*CyclesPerBackground
	if cnt.Cycles != want {
		t.Fatalf("cycles %d != weighted events %d", cnt.Cycles, want)
	}
}
