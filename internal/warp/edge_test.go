package warp

import (
	"math"
	"testing"

	"shearwarp/internal/img"
	"shearwarp/internal/xform"
)

func TestRowSpanConstantV(t *testing.T) {
	// An axis-aligned view has an identity-like warp: v does not vary with
	// x along a final row (dv/dx ~ 0), exercising the degenerate branch.
	f, m := composited(t, 16, 0, 0)
	if math.Abs(f.WarpInv[3]) > 1e-9 {
		t.Skipf("warp not axis-aligned: dv/dx = %g", f.WarpInv[3])
	}
	out := img.NewFinal(f.FinalW, f.FinalH)
	ctx := NewCtx(f, m, out)
	// Band covering v in [2, 5): rows y with constant v in range are fully
	// owned, others not at all.
	owned := 0
	for y := 0; y < out.H; y++ {
		x0, x1, ok := ctx.RowSpan(y, Band{VLo: 2, VHi: 5})
		if !ok {
			continue
		}
		if x0 != 0 || x1 != out.W {
			t.Fatalf("constant-v row partially owned: [%d,%d)", x0, x1)
		}
		owned++
	}
	if owned == 0 {
		t.Fatal("no rows owned by a mid-image band")
	}
}

func TestPartitionTasksWithEmptyRegion(t *testing.T) {
	// All-equal boundaries: nothing composited, one background task.
	tasks := PartitionTasks([]int{5, 5, 5})
	cover := 0
	for _, tk := range tasks {
		if tk.NeedLo <= tk.NeedHi {
			t.Fatalf("empty-region task has dependencies: %+v", tk)
		}
		cover++
	}
	if cover == 0 {
		t.Fatal("no tasks for empty region")
	}
}

func TestPartitionTasksAllEmptyButOne(t *testing.T) {
	// Bands: empty, full, empty. Coverage and ownership must hold.
	tasks := PartitionTasks([]int{0, 0, 40, 40})
	sawInterior := false
	for _, tk := range tasks {
		if tk.NeedLo <= tk.NeedHi {
			if tk.NeedLo != 1 || tk.NeedHi != 1 {
				t.Fatalf("dependency outside the only non-empty band: %+v", tk)
			}
			sawInterior = true
		}
	}
	if !sawInterior {
		t.Fatal("no task depends on the non-empty band")
	}
}

func TestWarpCountersConsistent(t *testing.T) {
	f, m := composited(t, 16, 0.5, 0.3)
	out := img.NewFinal(f.FinalW, f.FinalH)
	ctx := NewCtx(f, m, out)
	var cnt Counters
	ctx.WarpTile(0, 0, out.W, out.H, &cnt)
	other := Counters{}
	other.Add(cnt)
	if other != cnt {
		t.Fatal("Add is lossy")
	}
	if cnt.Cycles < cnt.Pixels*CyclesPerPixel {
		t.Fatal("cycles below per-pixel floor")
	}
}

func TestWarpRowOutOfRange(t *testing.T) {
	f, m := composited(t, 14, 0.3, 0.2)
	out := img.NewFinal(f.FinalW, f.FinalH)
	ctx := NewCtx(f, m, out)
	var cnt Counters
	ctx.WarpTile(0, -10, out.W, 0, &cnt) // y range entirely above the image
	ctx.WarpTile(0, out.H, out.W, out.H+10, &cnt)
	if cnt.Pixels+cnt.Background != 0 {
		t.Fatal("out-of-range rows produced pixels")
	}
}

// identityFactorization hand-builds a factorization whose warp is the
// identity over the given rasters — the smallest harness that lets edge
// tests drive the bilinear gather on degenerate image sizes without a
// volume behind it.
func identityFactorization(intW, intH, finalW, finalH int) *xform.Factorization {
	id := xform.Mat3{1, 0, 0, 0, 1, 0, 0, 0, 1}
	return &xform.Factorization{
		Axis: xform.AxisZ, IntW: intW, IntH: intH,
		FinalW: finalW, FinalH: finalH,
		Warp: id, WarpInv: id, KStep: 1,
	}
}

// TestWarp1x1Intermediate warps a 1x1 intermediate image: every bilinear
// tap except (0, 0) falls outside, forcing the clamped border gather on
// the one interior pixel and the background path everywhere else.
func TestWarp1x1Intermediate(t *testing.T) {
	f := identityFactorization(1, 1, 2, 2)
	m := img.NewIntermediate(1, 1)
	m.Pix[0], m.Pix[1], m.Pix[2], m.Pix[3] = 1, 0.5, 0.25, 1 // premultiplied RGBA
	out := img.NewFinal(2, 2)
	ctx := NewCtx(f, m, out)
	var cnt Counters
	ctx.WarpTile(0, 0, out.W, out.H, &cnt)
	if cnt.Pixels+cnt.Background != int64(out.W*out.H) {
		t.Fatalf("pixels %d + background %d != %d", cnt.Pixels, cnt.Background, out.W*out.H)
	}
	// Pixel (0, 0) maps exactly onto the single intermediate pixel with
	// full weight; the identity warp makes the gather exact.
	if r, g, b := out.AtRGB(0, 0); r != 255 || g != 128 || b != 64 {
		t.Fatalf("pixel (0,0) = (%d, %d, %d), want (255, 128, 64)", r, g, b)
	}
	// Pixels whose floor coordinate leaves the intermediate image entirely
	// must be background black.
	if r, g, b := out.AtRGB(1, 1); r != 0 || g != 0 || b != 0 {
		t.Fatalf("pixel (1,1) = (%d, %d, %d), want background black", r, g, b)
	}
}

// TestWarp1x1Final warps into a 1x1 final image — the smallest tile the
// parallel warp phase can hand a worker.
func TestWarp1x1Final(t *testing.T) {
	f := identityFactorization(2, 2, 1, 1)
	m := img.NewIntermediate(2, 2)
	for i := 0; i < len(m.Pix); i += 4 {
		m.Pix[i], m.Pix[i+1], m.Pix[i+2], m.Pix[i+3] = 1, 1, 1, 1
	}
	out := img.NewFinal(1, 1)
	ctx := NewCtx(f, m, out)
	var cnt Counters
	ctx.WarpTile(0, 0, 1, 1, &cnt)
	if cnt.Pixels != 1 || cnt.Background != 0 {
		t.Fatalf("counters %+v, want exactly one interior pixel", cnt)
	}
	if r, g, b := out.AtRGB(0, 0); r != 255 || g != 255 || b != 255 {
		t.Fatalf("pixel = (%d, %d, %d), want white", r, g, b)
	}
}

// TestRowSpanDegenerateBands checks band ownership with empty (VLo ==
// VHi) and infinite bands on a sheared warp: an empty band owns nothing,
// and a band partition of (-inf, +inf) covers every pixel of every row
// exactly once.
func TestRowSpanDegenerateBands(t *testing.T) {
	f, m := composited(t, 16, 0.5, 0.3)
	out := img.NewFinal(f.FinalW, f.FinalH)
	ctx := NewCtx(f, m, out)

	for _, v := range []float64{0, 3.5, float64(f.IntH)} {
		for y := 0; y < out.H; y++ {
			if x0, x1, ok := ctx.RowSpan(y, Band{VLo: v, VHi: v}); ok {
				t.Fatalf("empty band at v=%v owns [%d, %d) of row %d", v, x0, x1, y)
			}
		}
	}

	bands := []Band{
		{VLo: math.Inf(-1), VHi: 2},
		{VLo: 2, VHi: 2}, // degenerate interior band
		{VLo: 2, VHi: 5},
		{VLo: 5, VHi: math.Inf(1)},
	}
	for y := 0; y < out.H; y++ {
		covered := make([]int, out.W)
		for _, b := range bands {
			x0, x1, ok := ctx.RowSpan(y, b)
			if !ok {
				continue
			}
			for x := x0; x < x1; x++ {
				covered[x]++
			}
		}
		for x, n := range covered {
			if n != 1 {
				t.Fatalf("row %d pixel %d covered %d times", y, x, n)
			}
		}
	}
}

// TestPartitionTasksSingleLineBands partitions with every band one
// scanline tall — all slivers. The task bands must still tile
// (-inf, +inf) without gaps or overlap, and dependencies must stay inside
// the band range.
func TestPartitionTasksSingleLineBands(t *testing.T) {
	boundaries := []int{0, 1, 2, 3}
	tasks := PartitionTasks(boundaries)
	if len(tasks) == 0 {
		t.Fatal("no tasks")
	}
	if !math.IsInf(tasks[0].Band.VLo, -1) {
		t.Fatalf("first band starts at %v, want -inf", tasks[0].Band.VLo)
	}
	for i := 1; i < len(tasks); i++ {
		if tasks[i].Band.VLo != tasks[i-1].Band.VHi {
			t.Fatalf("band %d starts at %v, previous ends at %v", i, tasks[i].Band.VLo, tasks[i-1].Band.VHi)
		}
	}
	if !math.IsInf(tasks[len(tasks)-1].Band.VHi, 1) {
		t.Fatalf("last band ends at %v, want +inf", tasks[len(tasks)-1].Band.VHi)
	}
	nb := len(boundaries) - 1
	for _, tk := range tasks {
		if tk.Owner < 0 || tk.Owner >= nb {
			t.Fatalf("task owner %d outside 0..%d", tk.Owner, nb-1)
		}
		if tk.NeedLo <= tk.NeedHi && (tk.NeedLo < 0 || tk.NeedHi >= nb) {
			t.Fatalf("task depends on bands %d..%d outside 0..%d", tk.NeedLo, tk.NeedHi, nb-1)
		}
	}
}

func TestWarpCostModelIdentity(t *testing.T) {
	f, m := composited(t, 18, 0.4, 0.3)
	out := img.NewFinal(f.FinalW, f.FinalH)
	ctx := NewCtx(f, m, out)
	var cnt Counters
	ctx.WarpTile(0, 0, out.W, out.H, &cnt)
	want := cnt.Rows*CyclesPerRowSetup +
		cnt.Pixels*CyclesPerPixel +
		cnt.Background*CyclesPerBackground
	if cnt.Cycles != want {
		t.Fatalf("cycles %d != weighted events %d", cnt.Cycles, want)
	}
}
