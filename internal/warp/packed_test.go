package warp

import (
	"testing"

	"shearwarp/internal/cpudispatch"
	"shearwarp/internal/img"
)

// packedWarpTol is the pinned epsilon bound of the packed warp tier:
// per-channel output bytes may differ from the scalar kernel by at most
// this much. Quantizing each tap to a byte costs up to half an LSB, and
// quantizing the bilinear weights to 8.8 fixed point costs up to 1/512 of
// the channel range per axis; together the error stays within 2 LSB.
const packedWarpTol = 2

func warpBoth(t *testing.T, n int, yaw, pitch float64) (scalar, packed *img.Final, sc, pc Counters) {
	t.Helper()
	f, m := composited(t, n, yaw, pitch)
	scalar = img.NewFinal(f.FinalW, f.FinalH)
	packed = img.NewFinal(f.FinalW, f.FinalH)
	NewCtx(f, m, scalar).WarpTile(0, 0, scalar.W, scalar.H, &sc)
	pctx := NewCtx(f, m, packed)
	pctx.Kernel = cpudispatch.KernelPacked
	pctx.WarpTile(0, 0, packed.W, packed.H, &pc)
	return
}

func TestPackedWarpCloseToScalar(t *testing.T) {
	for _, view := range [][2]float64{{0.4, 0.3}, {0.9, -0.5}, {2.1, 0.1}} {
		scalar, packed, _, _ := warpBoth(t, 24, view[0], view[1])
		worst := 0
		for i := range scalar.Pix {
			if i%4 == 3 {
				continue // X byte, never written by either kernel
			}
			d := int(scalar.Pix[i]) - int(packed.Pix[i])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		if worst > packedWarpTol {
			t.Errorf("view %v: packed warp deviates by %d > %d LSB", view, worst, packedWarpTol)
		}
		if packed.NonBlackCount() == 0 {
			t.Errorf("view %v: packed warp produced an all-black image", view)
		}
	}
}

// TestPackedWarpCountersIdentical pins that the packed tier's epsilon is
// confined to pixel bytes: the interior/background classification — and
// with it every counter and the modeled cycle cost — matches the scalar
// kernel exactly.
func TestPackedWarpCountersIdentical(t *testing.T) {
	_, _, sc, pc := warpBoth(t, 20, 0.7, -0.4)
	if sc != pc {
		t.Fatalf("packed counters %+v differ from scalar %+v", pc, sc)
	}
}

// TestPackedWarpScratchReuse pins that pooled scratch reused across frames
// (after the mandatory Reset) cannot leak stale rows into the next frame.
func TestPackedWarpScratchReuse(t *testing.T) {
	var s Scratch
	s.Reset()
	fa, ma := composited(t, 18, 0.4, 0.3)
	fb, mb := composited(t, 18, 1.9, -0.2)

	fresh := img.NewFinal(fb.FinalW, fb.FinalH)
	fctx := NewCtx(fb, mb, fresh)
	fctx.Kernel = cpudispatch.KernelPacked
	var cnt Counters
	fctx.WarpTile(0, 0, fresh.W, fresh.H, &cnt)

	// Warp frame A with the shared scratch, then frame B after a Reset.
	outA := img.NewFinal(fa.FinalW, fa.FinalH)
	actx := NewCtx(fa, ma, outA)
	actx.Kernel = cpudispatch.KernelPacked
	actx.S = &s
	actx.WarpTile(0, 0, outA.W, outA.H, &cnt)

	s.Reset()
	outB := img.NewFinal(fb.FinalW, fb.FinalH)
	bctx := NewCtx(fb, mb, outB)
	bctx.Kernel = cpudispatch.KernelPacked
	bctx.S = &s
	bctx.WarpTile(0, 0, outB.W, outB.H, &cnt)

	for i := range fresh.Pix {
		if outB.Pix[i] != fresh.Pix[i] {
			t.Fatalf("pixel byte %d: reused scratch gave %d, fresh scratch %d",
				i, outB.Pix[i], fresh.Pix[i])
		}
	}
}
