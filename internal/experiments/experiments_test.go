package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parseSpeedup reads a formatted speedup cell.
func parseSpeedup(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q: %v", cell, err)
	}
	return v
}

func TestAllFiguresRunAtSmallScale(t *testing.T) {
	l := NewLab(Small)
	for _, f := range All() {
		tables := f.Run(l)
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", f.ID)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table %q", f.ID, tb.Title)
			}
			s := tb.String()
			if !strings.Contains(s, tb.Title) {
				t.Fatalf("%s: rendering lost the title", f.ID)
			}
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig16"); !ok {
		t.Fatal("fig16 missing")
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("fig99 should not exist")
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "default", "large"} {
		if _, ok := ScaleByName(name); !ok {
			t.Fatalf("scale %q missing", name)
		}
	}
	if _, ok := ScaleByName("huge"); ok {
		t.Fatal("unknown scale accepted")
	}
}

func TestFig2ShearWarpBeatsRayCast(t *testing.T) {
	l := NewLab(Small)
	tb := Fig2(l)[0]
	// Row 0 = ray caster, row 1 = shear warper; column 3 = total cycles.
	rc, _ := strconv.ParseInt(tb.Rows[0][3], 10, 64)
	sw, _ := strconv.ParseInt(tb.Rows[1][3], 10, 64)
	if sw*2 > rc {
		t.Fatalf("shear warper (%d) not clearly faster than ray caster (%d)", sw, rc)
	}
}

func TestFig12NewBeatsOldAtMaxProcs(t *testing.T) {
	l := NewLab(Small)
	tb := Fig12(l)[0]
	last := tb.Rows[len(tb.Rows)-1]
	// Columns: procs, (old,new) per size. Compare the largest size's pair.
	oldS := parseSpeedup(t, last[len(last)-2])
	newS := parseSpeedup(t, last[len(last)-1])
	if newS <= oldS {
		t.Fatalf("new speedup %.2f not above old %.2f at max procs", newS, oldS)
	}
}

func TestFig16TrueSharingCollapses(t *testing.T) {
	l := NewLab(Small)
	tb := Fig16(l)[0]
	last := tb.Rows[len(tb.Rows)-1]
	oldTS, _ := strconv.ParseFloat(last[2], 64)
	newTS, _ := strconv.ParseFloat(last[5], 64)
	if newTS >= oldTS {
		t.Fatalf("new true-sharing rate %.2f not below old %.2f", newTS, oldTS)
	}
}

func TestFig9MissRateFallsWithCache(t *testing.T) {
	l := NewLab(Small)
	tb := Fig9(l)[0]
	first := tb.Rows[0][1]
	last := tb.Rows[len(tb.Rows)-1][1]
	f, _ := strconv.ParseFloat(strings.TrimSuffix(first, "%"), 64)
	g, _ := strconv.ParseFloat(strings.TrimSuffix(last, "%"), 64)
	if g >= f {
		t.Fatalf("miss rate did not fall with cache size: %.2f -> %.2f", f, g)
	}
}

func TestFig20NewWinsOnSVM(t *testing.T) {
	l := NewLab(Small)
	tb := Fig20(l)[0]
	last := tb.Rows[len(tb.Rows)-1]
	oldS := parseSpeedup(t, last[len(last)-2])
	newS := parseSpeedup(t, last[len(last)-1])
	if newS <= oldS {
		t.Fatalf("SVM: new speedup %.2f not above old %.2f", newS, oldS)
	}
}

func TestLabCachesRuns(t *testing.T) {
	l := NewLab(Small)
	a := l.RunOldSVM("mri", Small.MRISizes[0], 4)
	b := l.RunOldSVM("mri", Small.MRISizes[0], 4)
	if a != b {
		t.Fatal("identical runs not cached")
	}
}
