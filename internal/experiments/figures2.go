package experiments

import (
	"fmt"

	"shearwarp/internal/machines"
	"shearwarp/internal/memsim"
	"shearwarp/internal/simrun"
	"shearwarp/internal/stats"
)

// speedupCompare implements Figures 12, 13 and 15: old vs new speedup
// curves per data-set size on one machine.
func speedupCompare(l *Lab, id, kind string, sizes []int, m machines.Machine) stats.Table {
	t := stats.Table{
		ID:      id,
		Title:   fmt.Sprintf("Old vs new speedups on %s (%s phantoms)", m.Name, kind),
		Columns: []string{"procs"},
	}
	for _, n := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%s-%d old", kind, n), fmt.Sprintf("%s-%d new", kind, n))
	}
	baseOld := map[int]int64{}
	baseNew := map[int]int64{}
	for _, n := range sizes {
		baseOld[n] = l.RunOld(kind, n, m, 1).SteadyCycles()
		baseNew[n] = l.RunNew(kind, n, m, 1).SteadyCycles()
	}
	for _, p := range l.procsFor(m) {
		row := []string{stats.I(int64(p))}
		for _, n := range sizes {
			ro := l.RunOld(kind, n, m, p)
			rn := l.RunNew(kind, n, m, p)
			row = append(row, stats.Speedup(baseOld[n], ro.SteadyCycles()),
				stats.Speedup(baseNew[n], rn.SteadyCycles()))
		}
		t.AddRow(row...)
	}
	t.AddNote("speedups are self-relative (each algorithm vs its own 1-processor run), as in the paper")
	t.AddNote("paper: the new algorithm's speedups are better, especially for larger data and more processors")
	return t
}

// Fig12 reproduces Figure 12: old vs new MRI speedups on DASH.
func Fig12(l *Lab) []stats.Table {
	return []stats.Table{speedupCompare(l, "fig12", "mri", l.Scale.MRISizes, machines.DASH())}
}

// Fig13 reproduces Figure 13: old vs new MRI speedups on the Simulator.
func Fig13(l *Lab) []stats.Table {
	return []stats.Table{speedupCompare(l, "fig13", "mri", l.Scale.MRISizes, machines.Simulator())}
}

// Fig14 reproduces Figure 14: old vs new cumulative time breakdowns on
// DASH and the Simulator.
func Fig14(l *Lab) []stats.Table {
	n := l.largestMRI()
	var tables []stats.Table
	for _, m := range []machines.Machine{machines.DASH(), machines.Simulator()} {
		t := stats.Table{
			ID:    "fig14",
			Title: fmt.Sprintf("Old vs new cumulative time breakdown on %s, MRI %d (kcycles, summed over procs)", m.Name, n),
			Columns: []string{"procs", "old busy", "old mem", "old sync", "old total",
				"new busy", "new mem", "new sync", "new total"},
		}
		for _, p := range l.procsFor(m) {
			ro := l.RunOld("mri", n, m, p)
			rn := l.RunNew("mri", n, m, p)
			row := []string{stats.I(int64(p))}
			for _, r := range []*simrun.Result{ro, rn} {
				var b, mem, sync int64
				for _, pb := range r.SteadyPerProc {
					b += pb.Busy
					mem += pb.MemStall
					sync += pb.SyncWait + pb.LockWait
				}
				row = append(row, stats.I(b/1000), stats.I(mem/1000), stats.I(sync/1000),
					stats.I((b+mem+sync)/1000))
			}
			t.AddRow(row...)
		}
		t.AddNote("paper: data-access stall no longer dominates in the new program; load balance preserved")
		tables = append(tables, t)
	}
	return tables
}

// Fig15 reproduces Figure 15: old vs new speedups on the CT head data.
func Fig15(l *Lab) []stats.Table {
	return []stats.Table{
		speedupCompare(l, "fig15", "ct", l.Scale.CTSizes, machines.DASH()),
		speedupCompare(l, "fig15", "ct", l.Scale.CTSizes, machines.Simulator()),
	}
}

// Fig16 reproduces Figure 16: old vs new miss breakdowns, in the same
// capacity-visible cache regime as Figure 7.
func Fig16(l *Lab) []stats.Table {
	n := l.largestMRI()
	m := l.capacityMachine("mri", n)
	t := stats.Table{
		ID:      "fig16",
		Title:   fmt.Sprintf("Old vs new miss breakdown on %s, MRI %d (misses per 1000 refs)", m.Name, n),
		Columns: []string{"procs", "old cap", "old true", "old false", "new cap", "new true", "new false"},
	}
	for _, p := range l.procsFor(m) {
		if p < 2 {
			continue
		}
		ro := l.RunOld("mri", n, m, p)
		rn := l.RunNew("mri", n, m, p)
		t.AddRow(stats.I(int64(p)),
			stats.PerThousand(ro.Mem.Misses[memsim.Capacity], ro.Mem.Refs),
			stats.PerThousand(ro.Mem.Misses[memsim.TrueSharing], ro.Mem.Refs),
			stats.PerThousand(ro.Mem.Misses[memsim.FalseSharing], ro.Mem.Refs),
			stats.PerThousand(rn.Mem.Misses[memsim.Capacity], rn.Mem.Refs),
			stats.PerThousand(rn.Mem.Misses[memsim.TrueSharing], rn.Mem.Refs),
			stats.PerThousand(rn.Mem.Misses[memsim.FalseSharing], rn.Mem.Refs))
	}
	t.AddNote("paper: the new algorithm greatly decreases sharing misses, particularly true sharing")
	return []stats.Table{t}
}

// Fig17 reproduces Figure 17: old vs new spatial locality.
func Fig17(l *Lab) []stats.Table {
	return missVsLineSize(l, "fig17", true)
}

// Fig18 reproduces Figure 18: the new algorithm's working sets — miss rate
// vs cache size (a) across processor counts and (b) across data sizes.
func Fig18(l *Lab) []stats.Table {
	base := machines.Simulator()
	n := l.largestMRI()
	pMax := l.maxProcs(base)

	ta := stats.Table{
		ID:      "fig18",
		Title:   fmt.Sprintf("New-algorithm miss rate vs cache size, MRI %d, by processors", n),
		Columns: []string{"cache"},
	}
	procSet := []int{}
	for _, p := range l.procsFor(base) {
		if p >= 2 {
			procSet = append(procSet, p)
		}
	}
	for _, p := range procSet {
		ta.Columns = append(ta.Columns, fmt.Sprintf("%dp", p))
	}
	for _, cs := range l.Scale.CacheSweep {
		m := base
		m.Name = fmt.Sprintf("%s-c%d", base.Name, cs)
		m.Mem.CacheBytes = cs
		row := []string{stats.Bytes(cs)}
		for _, p := range procSet {
			r := l.RunNew("mri", n, m, p)
			row = append(row, stats.F(100*r.MissRate, 2)+"%")
		}
		ta.AddRow(row...)
	}
	ta.AddNote("paper: unlike the old program, the working set shrinks (slowly) as processors increase")

	tb := stats.Table{
		ID:      "fig18",
		Title:   fmt.Sprintf("New-algorithm miss rate vs cache size at %d procs, by data size", pMax),
		Columns: []string{"cache"},
	}
	for _, sz := range l.Scale.MRISizes {
		tb.Columns = append(tb.Columns, fmt.Sprintf("mri-%d", sz))
	}
	for _, cs := range l.Scale.CacheSweep {
		m := base
		m.Name = fmt.Sprintf("%s-c%d", base.Name, cs)
		m.Mem.CacheBytes = cs
		row := []string{stats.Bytes(cs)}
		for _, sz := range l.Scale.MRISizes {
			r := l.RunNew("mri", sz, m, pMax)
			row = append(row, stats.F(100*r.MissRate, 2)+"%")
		}
		tb.AddRow(row...)
	}
	tb.AddNote("paper: even the largest set's working set is small (64KB at 512^3 and 32 procs)")
	return []stats.Table{ta, tb}
}

// Fig19 reproduces Figure 19: old vs new speedups on the Origin2000.
func Fig19(l *Lab) []stats.Table {
	n := l.largestMRI()
	return []stats.Table{speedupCompare(l, "fig19", "mri", []int{n}, machines.Origin2000())}
}

// Fig20 reproduces Figure 20: old vs new speedups on the SVM platform.
func Fig20(l *Lab) []stats.Table {
	t := stats.Table{
		ID:      "fig20",
		Title:   "Old vs new speedups on the SVM platform (4-processor nodes)",
		Columns: []string{"procs"},
	}
	for _, n := range l.Scale.MRISizes {
		t.Columns = append(t.Columns, fmt.Sprintf("mri-%d old", n), fmt.Sprintf("mri-%d new", n))
	}
	baseOld := map[int]int64{}
	baseNew := map[int]int64{}
	for _, n := range l.Scale.MRISizes {
		baseOld[n] = l.RunOldSVM("mri", n, 1).SteadyCycles()
		baseNew[n] = l.RunNewSVM("mri", n, 1).SteadyCycles()
	}
	for _, p := range l.Scale.Procs {
		if p > 32 {
			continue
		}
		row := []string{stats.I(int64(p))}
		for _, n := range l.Scale.MRISizes {
			ro := l.RunOldSVM("mri", n, p)
			rn := l.RunNewSVM("mri", n, p)
			row = append(row, stats.Speedup(baseOld[n], ro.SteadyCycles()),
				stats.Speedup(baseNew[n], rn.SteadyCycles()))
		}
		t.AddRow(row...)
	}
	t.AddNote("P<=4 is a single SMP node (no page traffic); the SVM effects appear across nodes")
	t.AddNote("paper: the new algorithm substantially outperforms the old one on SVM")
	return []stats.Table{t}
}

// svmBreakdown implements Figures 21 and 22.
func svmBreakdown(l *Lab, id, alg string) stats.Table {
	n := l.largestMRI()
	t := stats.Table{
		ID:      id,
		Title:   fmt.Sprintf("%s-algorithm SVM execution-time breakdown, MRI %d", alg, n),
		Columns: []string{"procs", "compute", "data wait", "barrier wait", "lock", "pages moved"},
	}
	for _, p := range l.Scale.Procs {
		if p > 32 || p < 8 {
			continue // single-node runs have no SVM behaviour to show
		}
		var r *simrun.Result
		if alg == "old" {
			r = l.RunOldSVM("mri", n, p)
		} else {
			r = l.RunNewSVM("mri", n, p)
		}
		var b, mem, sync, lock int64
		for _, pb := range r.SteadyPerProc {
			b += pb.Busy
			mem += pb.MemStall
			sync += pb.SyncWait
			lock += pb.LockWait
		}
		total := b + mem + sync + lock
		moved := int64(0)
		if r.Svm != nil {
			moved = r.Svm.ReadFaults + r.Svm.DirtyFaults + r.SvmFlushedPages
		}
		t.AddRow(stats.I(int64(p)), stats.Pct(b, total), stats.Pct(mem, total),
			stats.Pct(sync, total), stats.Pct(lock, total), stats.I(moved))
	}
	if alg == "old" {
		t.AddNote("paper: extremely high data and barrier wait time; contention delays the barrier itself")
	} else {
		t.AddNote("paper: communication and contention greatly reduced; lock time slightly higher from stealing")
	}
	return t
}

// Fig21 reproduces Figure 21: the old program's SVM breakdown.
func Fig21(l *Lab) []stats.Table { return []stats.Table{svmBreakdown(l, "fig21", "old")} }

// Fig22 reproduces Figure 22: the new program's SVM breakdown.
func Fig22(l *Lab) []stats.Table { return []stats.Table{svmBreakdown(l, "fig22", "new")} }
