package experiments

import (
	"fmt"

	"shearwarp/internal/machines"
	"shearwarp/internal/memsim"
	"shearwarp/internal/newalg"
	"shearwarp/internal/raycast"
	"shearwarp/internal/stats"
)

// Fig2 reproduces Figure 2: the serial rendering-time breakdown of the
// ray caster and the shear warper on the MRI data, split into looping
// (control + coherence-structure traversal + addressing) and
// compositing/resampling work. The paper: the ray caster is loop-bound
// and 4-7x slower overall.
func Fig2(l *Lab) []stats.Table {
	n := l.midMRI()
	w := l.Workload("mri", n)
	view := w.Views[len(w.Views)-1]

	_, swStats := w.R.RenderSerial(view[0], view[1])
	swLoop := swStats.Composite.LoopingCycles() + swStats.Warp.Cycles
	swComp := swStats.Composite.Samples * 22 // composite.CyclesPerSample
	swTotal := swStats.TotalCycles()

	rc := raycast.New(w.R.Classified)
	fr := w.R.Setup(view[0], view[1])
	var rcCnt raycast.Counters
	rc.Render(&fr.F, &rcCnt)

	t := stats.Table{
		ID:      "fig2",
		Title:   fmt.Sprintf("Serial breakdown, MRI %d phantom (modeled cycles)", n),
		Columns: []string{"renderer", "looping", "compositing", "total", "loop share"},
	}
	t.AddRow("ray caster (r-c)", stats.I(rcCnt.LoopingCycles()), stats.I(rcCnt.CompositeCycles()),
		stats.I(rcCnt.Cycles), stats.Pct(rcCnt.LoopingCycles(), rcCnt.Cycles))
	t.AddRow("shear warper (s-w)", stats.I(swLoop), stats.I(swComp),
		stats.I(swTotal), stats.Pct(swLoop, swTotal))
	ratio := float64(rcCnt.Cycles) / float64(swTotal)
	t.AddNote("shear warper is %.1fx faster overall (paper: 4-7x)", ratio)
	t.AddNote("compositing operations: r-c %d vs s-w %d (paper: almost identical counts)",
		rcCnt.Composites, swStats.Composite.Samples)
	return []stats.Table{t}
}

// Fig4 reproduces Figure 4: speedups of the old parallel shear warper on
// the three platforms for the largest data set.
func Fig4(l *Lab) []stats.Table {
	n := l.largestMRI()
	ms := []machines.Machine{machines.DASH(), machines.Challenge(), machines.Simulator()}
	t := stats.Table{
		ID:      "fig4",
		Title:   fmt.Sprintf("Old-algorithm speedups, MRI %d phantom", n),
		Columns: []string{"procs"},
	}
	for _, m := range ms {
		t.Columns = append(t.Columns, m.Name)
	}
	t.Columns = append(t.Columns, "ray-cast (Sim)")
	base := map[string]int64{}
	for _, m := range ms {
		base[m.Name] = l.RunOld("mri", n, m, 1).SteadyCycles()
	}
	sim := machines.Simulator()
	rcBase := l.RunRayCast("mri", n, sim, 1).SteadyCycles()
	for _, p := range l.Scale.Procs {
		row := []string{stats.I(int64(p))}
		for _, m := range ms {
			if p > m.MaxProcs {
				row = append(row, "-")
				continue
			}
			r := l.RunOld("mri", n, m, p)
			row = append(row, stats.Speedup(base[m.Name], r.SteadyCycles()))
		}
		row = append(row, stats.Speedup(rcBase, l.RunRayCast("mri", n, sim, p).SteadyCycles()))
		t.AddRow(row...)
	}
	t.AddNote("paper: speedups fall off with processor count, worst on distributed-memory DASH")
	t.AddNote("the ray-cast column is the section 3.4.1 foil: the shear warper 'does not obtain")
	t.AddNote("nearly as good self-relative speedup on multiprocessors as a ray caster'")
	return []stats.Table{t}
}

// Fig5 reproduces Figure 5: the cumulative execution-time breakdown of the
// old program (busy / memory stall / synchronization) on the distributed
// machines.
func Fig5(l *Lab) []stats.Table {
	n := l.largestMRI()
	var tables []stats.Table
	for _, m := range []machines.Machine{machines.DASH(), machines.Simulator()} {
		t := stats.Table{
			ID:      "fig5",
			Title:   fmt.Sprintf("Old-algorithm time breakdown on %s, MRI %d", m.Name, n),
			Columns: []string{"procs", "busy", "mem stall", "sync", "lock"},
		}
		for _, p := range l.procsFor(m) {
			r := l.RunOld("mri", n, m, p)
			var b int64
			var mem, sync, lock int64
			for _, pb := range r.SteadyPerProc {
				b += pb.Busy
				mem += pb.MemStall
				sync += pb.SyncWait
				lock += pb.LockWait
			}
			total := b + mem + sync + lock
			t.AddRow(stats.I(int64(p)), stats.Pct(b, total), stats.Pct(mem, total),
				stats.Pct(sync, total), stats.Pct(lock, total))
		}
		t.AddNote("paper: memory-system stall grows to ~50%% of execution on DASH at 32 procs")
		tables = append(tables, t)
	}
	return tables
}

// Fig6 reproduces Figure 6: old-algorithm speedups for the three data set
// sizes on DASH and the Challenge.
func Fig6(l *Lab) []stats.Table {
	var tables []stats.Table
	for _, m := range []machines.Machine{machines.DASH(), machines.Challenge()} {
		t := stats.Table{
			ID:      "fig6",
			Title:   fmt.Sprintf("Old-algorithm speedups by data size on %s", m.Name),
			Columns: []string{"procs"},
		}
		for _, n := range l.Scale.MRISizes {
			t.Columns = append(t.Columns, fmt.Sprintf("mri-%d", n))
		}
		base := map[int]int64{}
		for _, n := range l.Scale.MRISizes {
			base[n] = l.RunOld("mri", n, m, 1).SteadyCycles()
		}
		for _, p := range l.procsFor(m) {
			row := []string{stats.I(int64(p))}
			for _, n := range l.Scale.MRISizes {
				r := l.RunOld("mri", n, m, p)
				row = append(row, stats.Speedup(base[n], r.SteadyCycles()))
			}
			t.AddRow(row...)
		}
		t.AddNote("paper: DASH speedups best at the intermediate size; Challenge less size-sensitive")
		tables = append(tables, t)
	}
	return tables
}

// Fig7 reproduces Figure 7: the old algorithm's cache-miss breakdown vs
// processor count, omitting cold misses as the paper does. The cache is
// sized below the data set (the paper's 512^3 regime) so capacity misses
// are visible alongside sharing misses.
func Fig7(l *Lab) []stats.Table {
	n := l.largestMRI()
	m := l.capacityMachine("mri", n)
	t := stats.Table{
		ID:      "fig7",
		Title:   fmt.Sprintf("Old-algorithm miss breakdown on %s, MRI %d (misses per 1000 refs)", m.Name, n),
		Columns: []string{"procs", "capacity", "true-share", "false-share", "remote frac"},
	}
	for _, p := range l.procsFor(m) {
		if p < 2 {
			continue // sharing misses need at least two processors
		}
		r := l.RunOld("mri", n, m, p)
		refs := r.Mem.Refs
		t.AddRow(stats.I(int64(p)),
			stats.PerThousand(r.Mem.Misses[memsim.Capacity], refs),
			stats.PerThousand(r.Mem.Misses[memsim.TrueSharing], refs),
			stats.PerThousand(r.Mem.Misses[memsim.FalseSharing], refs),
			stats.Pct(r.Mem.Remote, r.Mem.Remote+r.Mem.Local))
	}
	t.AddNote("cold misses omitted (warm-up frame excluded), as in the paper")
	t.AddNote("cache scaled below the data set, matching the paper's 512^3-vs-1MB regime")
	t.AddNote("paper: true sharing grows with processors and dominates; capacity shrinks; remote fraction grows")
	return []stats.Table{t}
}

// Fig8 reproduces Figure 8: miss breakdown vs cache line size at the
// largest processor count (spatial locality of the old program).
func Fig8(l *Lab) []stats.Table {
	return missVsLineSize(l, "fig8", false)
}

// missVsLineSize implements Figures 8 and 17. Misses are reported in
// absolute counts per frame: the two algorithms issue different numbers of
// references (the new one skips empty scanlines), so per-reference rates
// would skew the comparison.
func missVsLineSize(l *Lab, id string, includeNew bool) []stats.Table {
	n := l.largestMRI()
	// Run in the paper's capacity regime (data larger than cache): with the
	// whole volume cache-resident, cross-frame reuse patterns — not spatial
	// locality — would dominate the comparison.
	base := l.capacityMachine("mri", n)
	p := l.maxProcs(base)
	frames := int64(l.Scale.Frames - 1) // steady-state frames
	t := stats.Table{
		ID:      id,
		Title:   fmt.Sprintf("Misses per frame vs line size on %s, MRI %d, %d procs", base.Name, n, p),
		Columns: []string{"line size", "old total", "old true-share", "old false-share"},
	}
	if includeNew {
		t.Columns = append(t.Columns, "new total", "new true-share", "new false-share", "new/old")
	}
	for _, ls := range l.Scale.LineSweep {
		m := base
		m.Name = fmt.Sprintf("%s-l%d", base.Name, ls)
		m.Mem.LineBytes = ls
		ro := l.RunOld("mri", n, m, p)
		row := []string{stats.Bytes(ls),
			stats.I(ro.Mem.TotalMisses() / frames),
			stats.I(ro.Mem.Misses[memsim.TrueSharing] / frames),
			stats.I(ro.Mem.Misses[memsim.FalseSharing] / frames)}
		if includeNew {
			rn := l.RunNew("mri", n, m, p)
			ratio := float64(rn.Mem.TotalMisses()) / float64(max(ro.Mem.TotalMisses(), 1))
			row = append(row,
				stats.I(rn.Mem.TotalMisses()/frames),
				stats.I(rn.Mem.Misses[memsim.TrueSharing]/frames),
				stats.I(rn.Mem.Misses[memsim.FalseSharing]/frames),
				stats.F(ratio, 2))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: miss rates drop quickly with line size up to ~256B; false sharing stays minor")
	if includeNew {
		t.AddNote("paper: the new algorithm benefits even more from long lines (contiguous partitions)")
	}
	return []stats.Table{t}
}

// Fig9 reproduces Figure 9: miss rate vs per-processor cache size for the
// data set sizes — the working-set curves of the old program.
func Fig9(l *Lab) []stats.Table {
	base := machines.Simulator()
	p := l.maxProcs(base)
	t := stats.Table{
		ID:      "fig9",
		Title:   fmt.Sprintf("Old-algorithm miss rate vs cache size, %d procs (64B lines, 4-way)", p),
		Columns: []string{"cache"},
	}
	for _, n := range l.Scale.MRISizes {
		t.Columns = append(t.Columns, fmt.Sprintf("mri-%d", n))
	}
	for _, cs := range l.Scale.CacheSweep {
		row := []string{stats.Bytes(cs)}
		for _, n := range l.Scale.MRISizes {
			m := base
			m.Name = fmt.Sprintf("%s-c%d", base.Name, cs)
			m.Mem.CacheBytes = cs
			r := l.RunOld("mri", n, m, p)
			row = append(row, stats.F(100*r.MissRate, 2)+"%")
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: the knee (working set) grows with data size ~n^2 and is independent of processors")
	return []stats.Table{t}
}

// Fig10 reproduces Figure 10 (the per-scanline cost profile with its empty
// borders) and Figure 11 (the cumulative-profile partition).
func Fig10(l *Lab) []stats.Table {
	n := l.midMRI()
	w := l.Workload("mri", n)
	nr := newalg.NewRenderer(w.R, newalg.Config{Procs: 1, AlwaysProfile: true})
	view := w.Views[0]
	nr.RenderFrame(view[0], view[1])
	profile := nr.Profile()
	region := newalg.FindRegion(profile)

	t := stats.Table{
		ID:      "fig10",
		Title:   fmt.Sprintf("Per-scanline profile, MRI %d phantom (%d intermediate scanlines)", n, len(profile)),
		Columns: []string{"scanlines", "cycles", "profile"},
	}
	var peak int64
	for _, v := range profile {
		if v > peak {
			peak = v
		}
	}
	const buckets = 16
	step := (len(profile) + buckets - 1) / buckets
	for lo := 0; lo < len(profile); lo += step {
		hi := min(lo+step, len(profile))
		var sum int64
		for _, v := range profile[lo:hi] {
			sum += v
		}
		avg := sum / int64(hi-lo)
		bar := ""
		if peak > 0 {
			for i := int64(0); i < 30*avg/peak; i++ {
				bar += "#"
			}
		}
		t.AddRow(fmt.Sprintf("%d-%d", lo, hi-1), stats.I(avg), bar)
	}
	t.AddNote("non-empty region: scanlines [%d, %d) of %d — the old algorithm blindly composites all of them",
		region.Lo, region.Hi, len(profile))

	// Figure 11: the contiguous equal-area partition for 4 processors.
	bounds := newalg.Partition(profile, region, 4, 1)
	t2 := stats.Table{
		ID:      "fig11",
		Title:   "Cumulative-profile partition (4 processors)",
		Columns: []string{"proc", "scanlines", "rows", "cost share"},
	}
	var total int64
	for _, v := range profile {
		total += v
	}
	for pr := 0; pr < 4; pr++ {
		var c int64
		for _, v := range profile[bounds[pr]:bounds[pr+1]] {
			c += v
		}
		t2.AddRow(stats.I(int64(pr)), fmt.Sprintf("[%d,%d)", bounds[pr], bounds[pr+1]),
			stats.I(int64(bounds[pr+1]-bounds[pr])), stats.Pct(c, total))
	}
	t2.AddNote("imbalance (max/mean block cost): %.3f", newalg.Imbalance(profile, bounds))
	return []stats.Table{t, t2}
}
