// Package experiments regenerates every figure of the paper's evaluation
// as a text table: speedups, execution-time breakdowns, cache-miss
// classifications, spatial-locality and working-set curves, profiling
// output, and the SVM results. Each figure has an ID ("fig2".."fig22"),
// runs at a configurable scale, and records qualitative expectations from
// the paper in its notes.
//
// Absolute cycle counts depend on the simulator's cost model; the
// reproduction target is the paper's shapes: who wins, how curves bend,
// and which overhead dominates where.
package experiments

import (
	"fmt"

	"shearwarp/internal/classify"
	"shearwarp/internal/machines"
	"shearwarp/internal/render"
	"shearwarp/internal/simrun"
	"shearwarp/internal/stats"
	"shearwarp/internal/vol"
)

// Scale controls how large the reproduced experiments are. The paper's
// full 512^3 runs are hours of simulation; the default scale reproduces
// every shape at tractable sizes.
type Scale struct {
	Name     string
	MRISizes []int // phantom MRI head sizes (the paper's 128/256/512 ladder)
	CTSizes  []int // phantom CT head sizes
	Procs    []int // processor counts for speedup curves
	Frames   int   // animation frames per run (frame 0 is warm-up)

	CacheSweep []int // cache sizes for working-set curves (bytes)
	LineSweep  []int // line sizes for spatial-locality curves (bytes)
}

// Small is the test scale: seconds, qualitative shapes only.
var Small = Scale{
	Name:     "small",
	MRISizes: []int{24, 32},
	CTSizes:  []int{32},
	Procs:    []int{1, 2, 4, 8},
	Frames:   3,
	CacheSweep: []int{
		1 << 10, 4 << 10, 16 << 10, 64 << 10,
	},
	LineSweep: []int{16, 32, 64, 128},
}

// Default is the harness scale: the full figure set in minutes.
var Default = Scale{
	Name:     "default",
	MRISizes: []int{32, 48, 64},
	CTSizes:  []int{32, 64},
	Procs:    []int{1, 2, 4, 8, 16, 32},
	Frames:   4,
	CacheSweep: []int{
		1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10,
		32 << 10, 64 << 10, 128 << 10, 256 << 10,
	},
	LineSweep: []int{16, 32, 64, 128, 256},
}

// Large approaches the paper's regime (long runtimes).
var Large = Scale{
	Name:     "large",
	MRISizes: []int{64, 96, 128},
	CTSizes:  []int{64, 128},
	Procs:    []int{1, 2, 4, 8, 16, 32},
	Frames:   4,
	CacheSweep: []int{
		1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20,
	},
	LineSweep: []int{16, 32, 64, 128, 256},
}

// ScaleByName returns a named scale.
func ScaleByName(name string) (Scale, bool) {
	for _, s := range []Scale{Small, Default, Large} {
		if s.Name == name {
			return s, true
		}
	}
	return Scale{}, false
}

// Lab caches workloads and simulation results across figures, since many
// figures share runs (e.g. the old algorithm's speedups feed Figures 4, 5
// and 6).
type Lab struct {
	Scale Scale
	wl    map[string]*simrun.Workload
	runs  map[string]*simrun.Result
}

// NewLab builds an empty lab at a scale.
func NewLab(scale Scale) *Lab {
	return &Lab{Scale: scale, wl: map[string]*simrun.Workload{}, runs: map[string]*simrun.Result{}}
}

// views is the standard animation: Frames frames, 5 degrees of yaw apart.
func (l *Lab) views() [][2]float64 {
	return render.Rotation(l.Scale.Frames, 0.3, 0.2, 5)
}

// Workload returns (and caches) the workload for a phantom kind ("mri" or
// "ct") and size.
func (l *Lab) Workload(kind string, n int) *simrun.Workload {
	key := fmt.Sprintf("%s-%d", kind, n)
	if w, ok := l.wl[key]; ok {
		return w
	}
	var r *render.Renderer
	switch kind {
	case "mri":
		r = render.New(vol.MRIBrain(n), render.Options{})
	case "ct":
		r = render.New(vol.CTHead(n), render.Options{Transfer: classify.CTTransfer})
	default:
		panic("experiments: unknown phantom kind " + kind)
	}
	w := simrun.NewWorkload(r, l.views())
	l.wl[key] = w
	return w
}

// RunOld runs (and caches) the old algorithm on a hardware machine.
func (l *Lab) RunOld(kind string, n int, m machines.Machine, procs int) *simrun.Result {
	key := fmt.Sprintf("old-%s-%d-%s-c%d-l%d-a%d-p%d", kind, n, m.Name,
		m.Mem.CacheBytes, m.Mem.LineBytes, m.Mem.Assoc, procs)
	if r, ok := l.runs[key]; ok {
		return r
	}
	r := simrun.RunOld(l.Workload(kind, n), simrun.OldOptions{Machine: m, Procs: procs})
	l.runs[key] = r
	return r
}

// RunNew runs (and caches) the new algorithm on a hardware machine.
func (l *Lab) RunNew(kind string, n int, m machines.Machine, procs int) *simrun.Result {
	key := fmt.Sprintf("new-%s-%d-%s-c%d-l%d-a%d-p%d", kind, n, m.Name,
		m.Mem.CacheBytes, m.Mem.LineBytes, m.Mem.Assoc, procs)
	if r, ok := l.runs[key]; ok {
		return r
	}
	r := simrun.RunNew(l.Workload(kind, n), simrun.NewOptions{Machine: m, Procs: procs})
	l.runs[key] = r
	return r
}

// RunRayCast runs (and caches) the parallel ray-casting baseline.
func (l *Lab) RunRayCast(kind string, n int, m machines.Machine, procs int) *simrun.Result {
	key := fmt.Sprintf("rc-%s-%d-%s-p%d", kind, n, m.Name, procs)
	if r, ok := l.runs[key]; ok {
		return r
	}
	r := simrun.RunRayCast(l.Workload(kind, n), simrun.RayOptions{Machine: m, Procs: procs})
	l.runs[key] = r
	return r
}

// RunOldSVM and RunNewSVM run (and cache) the SVM-platform executions.
func (l *Lab) RunOldSVM(kind string, n, procs int) *simrun.Result {
	key := fmt.Sprintf("oldsvm-%s-%d-p%d", kind, n, procs)
	if r, ok := l.runs[key]; ok {
		return r
	}
	r := simrun.RunOldSVM(l.Workload(kind, n), simrun.SVMOptions{Procs: procs})
	l.runs[key] = r
	return r
}

// RunNewSVM is the SVM counterpart of RunNew.
func (l *Lab) RunNewSVM(kind string, n, procs int) *simrun.Result {
	key := fmt.Sprintf("newsvm-%s-%d-p%d", kind, n, procs)
	if r, ok := l.runs[key]; ok {
		return r
	}
	r := simrun.RunNewSVM(l.Workload(kind, n), simrun.SVMOptions{Procs: procs})
	l.runs[key] = r
	return r
}

// procsFor clamps the scale's processor list to a machine's maximum.
func (l *Lab) procsFor(m machines.Machine) []int {
	var ps []int
	for _, p := range l.Scale.Procs {
		if p <= m.MaxProcs {
			ps = append(ps, p)
		}
	}
	return ps
}

// maxProcs returns the largest processor count for a machine.
func (l *Lab) maxProcs(m machines.Machine) int {
	ps := l.procsFor(m)
	return ps[len(ps)-1]
}

// largestMRI is the scale's analog of the paper's 512^3 data set.
func (l *Lab) largestMRI() int { return l.Scale.MRISizes[len(l.Scale.MRISizes)-1] }

// capacityMachine returns the Simulator preset with its cache shrunk below
// the working set of the given data set, the regime the paper's 512^3 runs
// were in (their data outgrew the 1MB caches; our scaled volumes would
// otherwise fit and hide all capacity misses).
func (l *Lab) capacityMachine(kind string, n int) machines.Machine {
	m := machines.Simulator()
	// The encoded volume is ~n^3 bytes; a ~4*n^2 cache sits between the
	// old algorithm's plane-proportional working set and the full data,
	// so capacity misses appear without evicting actively-shared lines.
	target := 4 * n * n
	cache := 2 << 10
	for cache < target {
		cache <<= 1
	}
	m.Mem.CacheBytes = cache
	m.Name = fmt.Sprintf("%s-cap%d", m.Name, cache)
	return m
}

// midMRI is the analog of the 256^3 set (the paper's sweet spot on DASH).
func (l *Lab) midMRI() int {
	s := l.Scale.MRISizes
	return s[(len(s)-1)/2]
}

// Figure is one reproducible experiment.
type Figure struct {
	ID    string
	Title string
	Run   func(l *Lab) []stats.Table
}

// All returns every figure in paper order.
func All() []Figure {
	return []Figure{
		{"fig2", "Serial rendering time breakdown: ray caster vs shear warper", Fig2},
		{"fig4", "Old-algorithm speedups on DASH, Challenge and the Simulator", Fig4},
		{"fig5", "Old-algorithm execution-time breakdown vs processors", Fig5},
		{"fig6", "Old-algorithm speedups across data set sizes", Fig6},
		{"fig7", "Old-algorithm cache-miss breakdown vs processors", Fig7},
		{"fig8", "Old-algorithm miss breakdown vs cache line size", Fig8},
		{"fig9", "Old-algorithm miss rate vs cache size (working sets)", Fig9},
		{"fig10", "Per-scanline cost profile and region detection (+ Fig 11 partition)", Fig10},
		{"fig12", "Old vs new speedups on DASH across data sizes", Fig12},
		{"fig13", "Old vs new speedups on the Simulator across data sizes", Fig13},
		{"fig14", "Old vs new execution-time breakdowns", Fig14},
		{"fig15", "Old vs new speedups on the CT head data", Fig15},
		{"fig16", "Old vs new cache-miss breakdowns", Fig16},
		{"fig17", "Old vs new spatial locality (miss rate vs line size)", Fig17},
		{"fig18", "New-algorithm working sets", Fig18},
		{"fig19", "Old vs new speedups on the Origin2000", Fig19},
		{"fig20", "Old vs new speedups on the SVM platform", Fig20},
		{"fig21", "Old-algorithm SVM execution-time breakdown", Fig21},
		{"fig22", "New-algorithm SVM execution-time breakdown", Fig22},
	}
}

// Extras returns the experiments beyond the paper's own figures: the
// rendering-rate summary and the system inventory.
func Extras() []Figure {
	return []Figure{
		{"rates", "Frames per second at nominal clock rates (real-time claim)", Rates},
		{"attr", "Miss attribution by shared array (the section 3.4.2 diagnostic)", Attribution},
		{"inventory", "System inventory: paper component to implementation map", Inventory},
	}
}

// Everything returns the paper figures, the ablation studies and the
// extra summaries.
func Everything() []Figure {
	out := append([]Figure{}, All()...)
	out = append(out, Ablations()...)
	return append(out, Extras()...)
}

// ByID finds a figure or ablation by id.
func ByID(id string) (Figure, bool) {
	for _, f := range Everything() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}
