package experiments

import (
	"fmt"

	"shearwarp/internal/machines"
	"shearwarp/internal/stats"
)

// Rates reproduces the paper's framing claim ("real time volume rendering
// is promising on general purpose multiprocessors"): steady-state frame
// times converted to frames per second at each platform's nominal clock,
// old vs new algorithm.
//
// Clock rates follow the paper: DASH 33MHz R3000s, Challenge 150MHz,
// the Simulator's modern processor modeled at 200MHz, Origin2000 195MHz,
// SVM nodes 200MHz.
func Rates(l *Lab) []stats.Table {
	n := l.largestMRI()
	clocks := map[string]float64{
		"DASH":       33e6,
		"Challenge":  150e6,
		"Simulator":  200e6,
		"Origin2000": 195e6,
		"SVM":        200e6,
	}
	t := stats.Table{
		ID:      "rates",
		Title:   fmt.Sprintf("Frames per second at nominal clock rates, MRI %d phantom", n),
		Columns: []string{"platform", "procs", "old fps", "new fps", "new/old"},
	}
	addRow := func(name string, procs int, old, nw int64) {
		hz := clocks[name]
		oldFPS := hz / float64(old)
		newFPS := hz / float64(nw)
		t.AddRow(name, stats.I(int64(procs)),
			stats.F(oldFPS, 1), stats.F(newFPS, 1), stats.F(newFPS/oldFPS, 2))
	}
	for _, m := range machines.All() {
		p := l.maxProcs(m)
		old := l.RunOld("mri", n, m, p).SteadyCycles()
		nw := l.RunNew("mri", n, m, p).SteadyCycles()
		addRow(m.Name, p, old, nw)
	}
	pSVM := 16
	oldSVM := l.RunOldSVM("mri", n, pSVM).SteadyCycles()
	newSVM := l.RunNewSVM("mri", n, pSVM).SteadyCycles()
	addRow("SVM", pSVM, oldSVM, newSVM)

	t.AddNote("interactive = 10-15 fps, real time = 30 fps (section 1); scaled volumes render")
	t.AddNote("proportionally faster than the paper's 256^3-512^3 sets — compare the new/old ratio")
	t.AddNote("per frame simulated at each platform's nominal processor clock")
	return []stats.Table{t}
}

// Inventory summarizes what this reproduction built and how the pieces
// map to the paper — a machine-readable version of DESIGN.md's table,
// handy as the first table of a full run.
func Inventory(l *Lab) []stats.Table {
	t := stats.Table{
		ID:      "inventory",
		Title:   "System inventory: paper component -> implementation",
		Columns: []string{"paper component", "implementation"},
	}
	rows := [][2]string{
		{"serial shear-warp renderer (Lacroute)", "internal/render + composite + warp + rle + xform"},
		{"run-length encoded classified volume", "internal/rle (per principal axis)"},
		{"early ray termination", "internal/img opaque-pixel skip links"},
		{"old parallel algorithm (Lacroute/Singh)", "internal/oldalg + simrun.RunOld"},
		{"new parallel algorithm (this paper)", "internal/newalg + simrun.RunNew"},
		{"scanline cost profiling (section 4.2)", "composite.Ctx.Scanline cycle returns"},
		{"cumulative-profile partitioning (4.3)", "newalg.Partition + par.PrefixSum"},
		{"chunked task stealing (4.4)", "par.Bands + newalg.StealChunkSize"},
		{"barrier-free warp (4.5, 5.5.2)", "warp.PartitionTasks + per-band conds"},
		{"ray-casting baseline (Nieh & Levoy)", "internal/raycast + internal/octree"},
		{"parallel ray caster on the simulator", "simrun.RunRayCast (tile queue + stealing)"},
		{"parallel classification/encoding", "classify.ClassifyParallel + rle.EncodeParallel"},
		{"Tango-Lite reference generation", "internal/trace + kernel tracers"},
		{"memory-system simulator (3.2)", "internal/memsim (directory, miss classes)"},
		{"SVM platform / HLRC (5.5.2)", "internal/svmsim"},
		{"DASH/Challenge/Simulator/Origin2000", "internal/machines presets"},
		{"MRI/CT scan inputs", "internal/vol phantoms + Resample"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	return []stats.Table{t}
}
