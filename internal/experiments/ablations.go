package experiments

import (
	"fmt"

	"shearwarp/internal/machines"
	"shearwarp/internal/render"
	"shearwarp/internal/simrun"
	"shearwarp/internal/stats"
)

// The ablation experiments quantify the individual design choices the
// paper discusses but does not plot separately: the old algorithm's
// empirically-tuned chunk size (section 3.4), the new algorithm's steal
// granularity (section 4.4, "synchronization overhead ... about 10 times
// higher" with single-scanline steals), the profiling cadence (section
// 4.2), the barrier elimination (section 5.5.2), stealing itself, and the
// round-robin page placement the paper adopts for unpredictable
// viewpoints.

// Ablations returns the ablation experiments, appended to All() by the
// harness registry below.
func Ablations() []Figure {
	return []Figure{
		{"abl-chunk", "Old-algorithm sensitivity to compositing chunk size (section 3.4)", AblChunk},
		{"abl-steal", "New-algorithm steal granularity on SVM (section 4.4)", AblSteal},
		{"abl-nosteal", "Contribution of task stealing to the new algorithm", AblNoSteal},
		{"abl-profile", "Profiling cadence: overhead vs predictive accuracy (section 4.2)", AblProfile},
		{"abl-barrier", "Barrier elimination between phases (section 5.5.2)", AblBarrier},
		{"abl-placement", "Round-robin vs first-touch page placement", AblPlacement},
	}
}

// AblChunk sweeps the old algorithm's chunk size: too small loses spatial
// locality and pays queue traffic, too large loses load balance — the
// tradeoff the paper tuned empirically per configuration.
func AblChunk(l *Lab) []stats.Table {
	n := l.largestMRI()
	w := l.Workload("mri", n)
	var tables []stats.Table
	for _, m := range []machines.Machine{machines.Simulator(), machines.DASH()} {
		p := l.maxProcs(m) / 2
		if p < 2 {
			p = 2
		}
		t := stats.Table{
			ID:      "abl-chunk",
			Title:   fmt.Sprintf("Old algorithm vs chunk size on %s, MRI %d, %d procs", m.Name, n, p),
			Columns: []string{"chunk", "steady kcycles", "steals", "lock kcycles"},
		}
		for _, c := range []int{1, 2, 4, 8, 16, 32} {
			r := simrun.RunOld(w, simrun.OldOptions{Machine: m, Procs: p, ChunkSize: c})
			var lock int64
			for _, b := range r.SteadyPerProc {
				lock += b.LockWait
			}
			t.AddRow(stats.I(int64(c)), stats.I(r.SteadyCycles()/1000),
				stats.I(int64(r.Steals)), stats.I(lock/1000))
		}
		t.AddNote("paper: task size is 'a combination between spatial locality and load imbalance,'")
		t.AddNote("'determined empirically for a given data set, number of processors, and platform'")
		tables = append(tables, t)
	}
	return tables
}

// AblSteal sweeps the new algorithm's steal chunk on the SVM platform,
// where the paper found single-scanline steals cost ~10x the old
// algorithm's synchronization overhead.
func AblSteal(l *Lab) []stats.Table {
	n := l.largestMRI()
	w := l.Workload("mri", n)
	p := 16
	t := stats.Table{
		ID:      "abl-steal",
		Title:   fmt.Sprintf("New algorithm vs steal chunk on SVM, MRI %d, %d procs", n, p),
		Columns: []string{"steal chunk", "steady kcycles", "steals", "lock kcycles"},
	}
	for _, c := range []int{1, 2, 4, 8, 16, 0} {
		r := simrun.RunNewSVM(w, simrun.SVMOptions{Procs: p, StealChunk: c})
		var lock int64
		for _, b := range r.SteadyPerProc {
			lock += b.LockWait
		}
		label := stats.I(int64(c))
		if c == 0 {
			label = "heuristic"
		}
		t.AddRow(label, stats.I(r.SteadyCycles()/1000), stats.I(int64(r.Steals)), stats.I(lock/1000))
	}
	t.AddNote("paper: stealing single scanlines made synchronization ~10x the old algorithm's;")
	t.AddNote("chunked stealing (sized by data set, processors, coherence granularity) fixes it")
	return []stats.Table{t}
}

// AblNoSteal isolates stealing: with prediction-based balanced partitions,
// how much does the dynamic safety net still contribute?
func AblNoSteal(l *Lab) []stats.Table {
	n := l.largestMRI()
	w := l.Workload("mri", n)
	m := machines.Simulator()
	t := stats.Table{
		ID:      "abl-nosteal",
		Title:   fmt.Sprintf("New algorithm with and without stealing on %s, MRI %d", m.Name, n),
		Columns: []string{"procs", "with steal", "without", "penalty"},
	}
	for _, p := range l.procsFor(m) {
		if p < 2 {
			continue
		}
		with := simrun.RunNew(w, simrun.NewOptions{Machine: m, Procs: p}).SteadyCycles()
		without := simrun.RunNew(w, simrun.NewOptions{Machine: m, Procs: p, DisableSteal: true}).SteadyCycles()
		t.AddRow(stats.I(int64(p)), stats.I(with/1000), stats.I(without/1000),
			stats.F(float64(without)/float64(with), 3))
	}
	t.AddNote("the profile-predicted partition carries most of the balance; stealing covers")
	t.AddNote("prediction error. At high processor counts with accurate profiles its lock and")
	t.AddNote("sharing overhead can exceed the benefit; the paper keeps it as a safety net")
	return []stats.Table{t}
}

// AblProfile sweeps the re-profiling cadence over a long rotation: profile
// every frame (maximum overhead), every 15 degrees (the paper's choice),
// or never after the first frame (stale partitions).
func AblProfile(l *Lab) []stats.Table {
	n := l.midMRI()
	// A longer rotation than the standard workload so staleness can bite.
	w := l.WorkloadViews("mri", n, 8, 7)
	m := machines.Simulator()
	p := 8
	t := stats.Table{
		ID:      "abl-profile",
		Title:   fmt.Sprintf("New algorithm vs re-profiling cadence, MRI %d, %d procs, 8 frames x 7deg", n, p),
		Columns: []string{"re-profile every", "steady kcycles", "steals"},
	}
	for _, deg := range []float64{0.01, 7, 15, 30, 1e9} {
		r := simrun.RunNew(w, simrun.NewOptions{Machine: m, Procs: p, ReprofileDeg: deg})
		label := fmt.Sprintf("%.0f deg", deg)
		switch {
		case deg < 1:
			label = "every frame"
		case deg > 1e6:
			label = "never"
		}
		t.AddRow(label, stats.I(r.SteadyCycles()/1000), stats.I(int64(r.Steals)))
	}
	t.AddNote("paper: profiling adds 10-15%% to compositing, but profiles stay predictive")
	t.AddNote("until the viewpoint moves ~15 degrees — the cadence they chose. With the sound")
	t.AddNote("region expansion this reproduction adds, stale profiles degrade gracefully, so")
	t.AddNote("the curve is flat at small rotations; profiling cost dominates the choice")
	return []stats.Table{t}
}

// AblBarrier re-inserts the global barrier between compositing and warping
// that the new algorithm's identical partitioning eliminates (felt most on
// SVM, where barriers carry the HLRC diff flushes).
func AblBarrier(l *Lab) []stats.Table {
	n := l.largestMRI()
	w := l.Workload("mri", n)
	t := stats.Table{
		ID:      "abl-barrier",
		Title:   fmt.Sprintf("New algorithm with and without the inter-phase barrier, MRI %d (SVM)", n),
		Columns: []string{"procs", "no barrier", "with barrier", "penalty"},
	}
	for _, p := range []int{8, 16, 32} {
		without := simrun.RunNewSVM(w, simrun.SVMOptions{Procs: p}).SteadyCycles()
		with := simrun.RunNewSVM(w, simrun.SVMOptions{Procs: p, ForceBarrier: true}).SteadyCycles()
		t.AddRow(stats.I(int64(p)), stats.I(without/1000), stats.I(with/1000),
			stats.F(float64(with)/float64(without), 3))
	}
	t.AddNote("paper (section 5.5.2): identical partitioning of both phases eliminates the barrier;")
	t.AddNote("on SVM each barrier also pays the contention-delayed diff flushes")
	return []stats.Table{t}
}

// AblPlacement compares round-robin page placement (the paper's choice,
// because the viewpoint is unpredictable across an animation) with
// first-touch placement.
func AblPlacement(l *Lab) []stats.Table {
	n := l.largestMRI()
	w := l.Workload("mri", n)
	m := machines.Simulator()
	p := l.maxProcs(m)
	t := stats.Table{
		ID:      "abl-placement",
		Title:   fmt.Sprintf("Page placement on %s, MRI %d, %d procs (steady kcycles)", m.Name, n, p),
		Columns: []string{"algorithm", "round-robin", "first-touch", "ft remote frac", "rr remote frac"},
	}
	ft := m
	ft.Name = m.Name + "-ft"
	ft.Mem.FirstTouch = true
	oldRR := simrun.RunOld(w, simrun.OldOptions{Machine: m, Procs: p})
	oldFT := simrun.RunOld(w, simrun.OldOptions{Machine: ft, Procs: p})
	newRR := simrun.RunNew(w, simrun.NewOptions{Machine: m, Procs: p})
	newFT := simrun.RunNew(w, simrun.NewOptions{Machine: ft, Procs: p})
	t.AddRow("old", stats.I(oldRR.SteadyCycles()/1000), stats.I(oldFT.SteadyCycles()/1000),
		stats.Pct(oldFT.Mem.Remote, oldFT.Mem.Remote+oldFT.Mem.Local),
		stats.Pct(oldRR.Mem.Remote, oldRR.Mem.Remote+oldRR.Mem.Local))
	t.AddRow("new", stats.I(newRR.SteadyCycles()/1000), stats.I(newFT.SteadyCycles()/1000),
		stats.Pct(newFT.Mem.Remote, newFT.Mem.Remote+newFT.Mem.Local),
		stats.Pct(newRR.Mem.Remote, newRR.Mem.Remote+newRR.Mem.Local))
	t.AddNote("paper: 'owing to the unpredictability of the viewing position ... pages of data")
	t.AddNote("are initially distributed round-robin across memories'; first-touch helps the new")
	t.AddNote("algorithm more because its contiguous partitions revisit the same data")
	return []stats.Table{t}
}

// WorkloadViews is a Lab workload with a custom frame count and rotation
// step (used by the profiling-cadence ablation).
func (l *Lab) WorkloadViews(kind string, n, frames int, stepDeg float64) *simrun.Workload {
	key := fmt.Sprintf("%s-%d-f%d-s%.1f", kind, n, frames, stepDeg)
	if w, ok := l.wl[key]; ok {
		return w
	}
	r := l.Workload(kind, n).R // reuse the classified renderer
	w := simrun.NewWorkload(r, render.Rotation(frames, 0.3, 0.2, stepDeg))
	l.wl[key] = w
	return w
}
