package experiments

import (
	"strconv"
	"testing"

	"shearwarp/internal/machines"
)

func machineForAttr() machines.Machine { return machines.Simulator() }

func cellInt(t *testing.T, cell string) int64 {
	t.Helper()
	v, err := strconv.ParseInt(cell, 10, 64)
	if err != nil {
		t.Fatalf("bad cell %q: %v", cell, err)
	}
	return v
}

func TestAblationsRunAtSmallScale(t *testing.T) {
	l := NewLab(Small)
	for _, f := range Ablations() {
		tables := f.Run(l)
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", f.ID)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table", f.ID)
			}
		}
	}
}

func TestEverythingIncludesAblationsAndExtras(t *testing.T) {
	if len(Everything()) != len(All())+len(Ablations())+len(Extras()) {
		t.Fatal("Everything misses entries")
	}
	for _, id := range []string{"abl-barrier", "rates", "inventory"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("%s not resolvable by id", id)
		}
	}
}

func TestAblChunkLargeChunksHurt(t *testing.T) {
	// Huge chunks destroy load balance: the largest chunk must be clearly
	// slower than the best small-to-mid chunk.
	l := NewLab(Small)
	tb := AblChunk(l)[0]
	best := int64(1 << 62)
	for _, row := range tb.Rows[:4] { // chunks 1..8
		if v := cellInt(t, row[1]); v < best {
			best = v
		}
	}
	worst := cellInt(t, tb.Rows[len(tb.Rows)-1][1]) // chunk 32
	if worst <= best {
		t.Fatalf("chunk 32 (%d) not slower than best small chunk (%d)", worst, best)
	}
}

func TestAblStealFineGrainCostsLocks(t *testing.T) {
	// Section 4.4: single-scanline steals pay far more lock time than
	// chunked steals.
	l := NewLab(Small)
	tb := AblSteal(l)[0]
	lock1 := cellInt(t, tb.Rows[0][3]) // steal chunk 1
	lock8 := cellInt(t, tb.Rows[3][3]) // steal chunk 8
	if lock1 <= 2*lock8 {
		t.Fatalf("single-scanline lock cost %d not well above chunked %d", lock1, lock8)
	}
}

func TestAblBarrierCostsOnSVM(t *testing.T) {
	// Section 5.5.2: re-inserting the inter-phase barrier slows every
	// multi-node configuration.
	l := NewLab(Small)
	tb := AblBarrier(l)[0]
	for _, row := range tb.Rows {
		without := cellInt(t, row[1])
		with := cellInt(t, row[2])
		if with <= without {
			t.Fatalf("P=%s: barrier run %d not slower than barrier-free %d", row[0], with, without)
		}
	}
}

func TestAblPlacementShapes(t *testing.T) {
	l := NewLab(Small)
	tb := AblPlacement(l)[0]
	// First-touch must lower the remote fraction for the new algorithm
	// (contiguous partitions revisit their pages).
	newRow := tb.Rows[1]
	ftFrac := newRow[3]
	rrFrac := newRow[4]
	if ftFrac >= rrFrac { // lexicographic works for "NN.N%" of equal width
		t.Fatalf("first-touch remote fraction %s not below round-robin %s", ftFrac, rrFrac)
	}
}

func TestWorkloadViewsCachedAndSized(t *testing.T) {
	l := NewLab(Small)
	a := l.WorkloadViews("mri", 24, 6, 7)
	b := l.WorkloadViews("mri", 24, 6, 7)
	if a != b {
		t.Fatal("custom-view workload not cached")
	}
	if len(a.Views) != 6 {
		t.Fatalf("views = %d, want 6", len(a.Views))
	}
	if c := l.WorkloadViews("mri", 24, 4, 7); c == a {
		t.Fatal("different frame count returned the same workload")
	}
}

func TestAttributionFindsPhaseInterface(t *testing.T) {
	// Section 3.4.2: the old algorithm's true sharing concentrates on the
	// intermediate image; the new algorithm removes most of it.
	l := NewLab(Small)
	tb := Attribution(l)[0]
	var oldIntTrue, newIntTrue, oldTotalTrue int64
	for _, row := range tb.Rows {
		ot := cellInt(t, row[1])
		oldTotalTrue += ot
		if row[0] == "int.Pix" {
			oldIntTrue = ot
			newIntTrue = cellInt(t, row[4])
		}
	}
	if oldIntTrue == 0 {
		t.Fatal("no intermediate-image true sharing recorded for the old algorithm")
	}
	if 2*oldIntTrue < oldTotalTrue {
		t.Fatalf("int.Pix true sharing %d not the majority of %d", oldIntTrue, oldTotalTrue)
	}
	if newIntTrue*2 > oldIntTrue {
		t.Fatalf("new algorithm int.Pix true sharing %d not well below old %d", newIntTrue, oldIntTrue)
	}
}

func TestAttributionSumsToTotals(t *testing.T) {
	l := NewLab(Small)
	n := Small.MRISizes[len(Small.MRISizes)-1]
	res := l.RunOld("mri", n, machineForAttr(), 4)
	var segTotal int64
	for _, s := range res.SegMisses {
		for _, m := range s.Misses {
			segTotal += m
		}
	}
	if segTotal != res.Mem.TotalMisses() {
		t.Fatalf("attributed %d != total %d", segTotal, res.Mem.TotalMisses())
	}
}
