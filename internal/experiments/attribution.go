package experiments

import (
	"fmt"

	"shearwarp/internal/machines"
	"shearwarp/internal/memsim"
	"shearwarp/internal/stats"
)

// Attribution reproduces the diagnostic behind section 3.4.2: attributing
// misses to the renderer's shared arrays shows that "the major source of
// inherent communication is at the interface between the compositing and
// warp phases" — the old algorithm's true-sharing misses concentrate on
// the intermediate image (written by compositors, read by other
// processors' warps), and the new algorithm's same-partition scheme
// removes exactly those. This is the per-data-structure view the paper's
// authors wanted from the R10000 counters but could not get (section
// 5.5.1: the tools "couldn't provide more detailed information").
func Attribution(l *Lab) []stats.Table {
	n := l.largestMRI()
	m := machines.Simulator()
	p := l.maxProcs(m) / 2
	if p < 2 {
		p = 2
	}
	old := l.RunOld("mri", n, m, p)
	nw := l.RunNew("mri", n, m, p)

	t := stats.Table{
		ID:    "attr",
		Title: fmt.Sprintf("Miss attribution by shared array on %s, MRI %d, %d procs (steady-state misses)", m.Name, n, p),
		Columns: []string{"array", "old true", "old false", "old cap+cold",
			"new true", "new false", "new cap+cold"},
	}
	type agg struct{ old, nw [4]int64 }
	rows := map[string]*agg{}
	var order []string
	add := func(dst int, sm []memsim.SegMisses) {
		for _, s := range sm {
			a := rows[s.Name]
			if a == nil {
				a = &agg{}
				rows[s.Name] = a
				order = append(order, s.Name)
			}
			for c := 0; c < 4; c++ {
				if dst == 0 {
					a.old[c] += s.Misses[c]
				} else {
					a.nw[c] += s.Misses[c]
				}
			}
		}
	}
	add(0, old.SegMisses)
	add(1, nw.SegMisses)
	for _, name := range order {
		a := rows[name]
		if a.old[0]+a.old[1]+a.old[2]+a.old[3]+a.nw[0]+a.nw[1]+a.nw[2]+a.nw[3] == 0 {
			continue
		}
		t.AddRow(name,
			stats.I(a.old[int(memsim.TrueSharing)]),
			stats.I(a.old[int(memsim.FalseSharing)]),
			stats.I(a.old[int(memsim.Capacity)]+a.old[int(memsim.Cold)]),
			stats.I(a.nw[int(memsim.TrueSharing)]),
			stats.I(a.nw[int(memsim.FalseSharing)]),
			stats.I(a.nw[int(memsim.Capacity)]+a.nw[int(memsim.Cold)]))
	}
	t.AddNote("paper (section 3.4.2): the intermediate image (int.Pix) carries the phase-interface")
	t.AddNote("true sharing in the old algorithm; the new algorithm's identical partitioning of")
	t.AddNote("both phases removes it")
	return []stats.Table{t}
}
