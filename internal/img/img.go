// Package img provides the two image types of the shear-warp pipeline: the
// intermediate (composited, sheared) image with its opaque-pixel skip links
// for early ray termination, and the final warped image, plus PPM output
// and comparison helpers used by the cross-algorithm equality tests.
package img

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
)

// OpacityThreshold is the accumulated opacity at which an intermediate
// pixel is considered saturated and further compositing to it is skipped
// (early ray termination, section 2 of the paper).
const OpacityThreshold = 0.98

// Intermediate is the composited image in sheared object space. Pixels
// accumulate premultiplied RGBA in float32. Links holds the early-
// termination skip structure: Links[p] == 0 means pixel p is still
// receiving samples; Links[p] == n > 0 means pixels p..p+n-1 are opaque
// and a compositor may jump ahead n pixels.
type Intermediate struct {
	W, H  int
	Pix   []float32 // 4 per pixel: R, G, B, A premultiplied
	Links []int32
}

// NewIntermediate allocates a cleared intermediate image.
func NewIntermediate(w, h int) *Intermediate {
	return &Intermediate{W: w, H: h, Pix: make([]float32, 4*w*h), Links: make([]int32, w*h)}
}

// Clear resets all pixels and links; used between frames.
func (m *Intermediate) Clear() {
	clear(m.Pix)
	clear(m.Links)
}

// ClearRow resets one scanline; the new algorithm clears only the rows in
// the composited region.
func (m *Intermediate) ClearRow(v int) {
	base := v * m.W
	clear(m.Pix[4*base : 4*(base+m.W)])
	clear(m.Links[base : base+m.W])
}

// ClearRows resets scanlines [lo, hi); workers split the per-frame clear
// into one stripe each.
func (m *Intermediate) ClearRows(lo, hi int) {
	clear(m.Pix[4*lo*m.W : 4*hi*m.W])
	clear(m.Links[lo*m.W : hi*m.W])
}

// Resize reshapes the image to w x h, reusing the backing arrays when they
// have capacity. The pixels are NOT cleared; callers that reuse an image
// across frames must clear it themselves (the frame loop parallelizes that
// clear across workers).
func (m *Intermediate) Resize(w, h int) {
	m.W, m.H = w, h
	if n := 4 * w * h; cap(m.Pix) >= n {
		m.Pix = m.Pix[:n]
	} else {
		m.Pix = make([]float32, n)
	}
	if n := w * h; cap(m.Links) >= n {
		m.Links = m.Links[:n]
	} else {
		m.Links = make([]int32, n)
	}
}

// PixelIndex returns the flat pixel index of (u, v).
func (m *Intermediate) PixelIndex(u, v int) int { return v*m.W + u }

// At returns the accumulated premultiplied RGBA at (u, v).
func (m *Intermediate) At(u, v int) (r, g, b, a float32) {
	p := 4 * (v*m.W + u)
	return m.Pix[p], m.Pix[p+1], m.Pix[p+2], m.Pix[p+3]
}

// Opaque reports whether pixel (u, v) is saturated.
func (m *Intermediate) Opaque(u, v int) bool { return m.Links[v*m.W+u] > 0 }

// MarkOpaque records that pixel (u, v) has saturated and coalesces the skip
// link with an immediately following opaque run, so long saturated spans
// are jumped in O(1) amortized.
func (m *Intermediate) MarkOpaque(u, v int) {
	p := v*m.W + u
	n := int32(1)
	if u+1 < m.W && m.Links[p+1] > 0 {
		n += m.Links[p+1]
	}
	m.Links[p] = n
	// Extend a preceding run that now abuts this one.
	if u > 0 && m.Links[p-1] > 0 {
		m.Links[p-1] = n + 1
	}
}

// Skip returns the first pixel index >= u in row v that is not known
// opaque, compressing links along the way. Returns m.W if the rest of the
// row is opaque.
func (m *Intermediate) Skip(u, v int) int {
	base := v * m.W
	start := u
	for u < m.W && m.Links[base+u] > 0 {
		u += int(m.Links[base+u])
	}
	if u > start {
		// Path compression: remember the full jump at the starting pixel.
		m.Links[base+start] = int32(u - start)
	}
	return u
}

// RowOpaqueCount returns the number of saturated pixels in row v
// (diagnostic; drives early-termination statistics).
func (m *Intermediate) RowOpaqueCount(v int) int {
	n := 0
	for u := 0; u < m.W; u++ {
		if m.Links[v*m.W+u] > 0 {
			n++
		}
	}
	return n
}

// Final is the warped output image, stored as 4 bytes per pixel (RGBX) so
// pixels are word-aligned in the simulated address space.
type Final struct {
	W, H int
	Pix  []uint8 // 4 per pixel: R, G, B, unused
}

// NewFinal allocates a cleared final image.
func NewFinal(w, h int) *Final {
	return &Final{W: w, H: h, Pix: make([]uint8, 4*w*h)}
}

// Clear resets all pixels.
func (f *Final) Clear() { clear(f.Pix) }

// Resize reshapes the image to w x h, reusing the backing array when it has
// capacity. RGB bytes are NOT cleared — the warp writes every RGB pixel of
// every row span it owns, and the band decomposition covers the whole image,
// so a full warp overwrites the previous frame completely. The fourth (X)
// byte of each pixel is never written by the warp; on a reused, shrunken
// buffer it retains whatever the allocation held, which is always zero
// because nothing in the pipeline writes it.
func (f *Final) Resize(w, h int) {
	f.W, f.H = w, h
	if n := 4 * w * h; cap(f.Pix) >= n {
		f.Pix = f.Pix[:n]
	} else {
		f.Pix = make([]uint8, n)
	}
}

// SetRGB stores a pixel.
func (f *Final) SetRGB(x, y int, r, g, b uint8) {
	p := 4 * (y*f.W + x)
	f.Pix[p], f.Pix[p+1], f.Pix[p+2] = r, g, b
}

// AtRGB reads a pixel.
func (f *Final) AtRGB(x, y int) (r, g, b uint8) {
	p := 4 * (y*f.W + x)
	return f.Pix[p], f.Pix[p+1], f.Pix[p+2]
}

// WritePPM serializes the image as binary PPM (P6).
func (f *Final) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", f.W, f.H); err != nil {
		return err
	}
	row := make([]byte, 3*f.W)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			p := 4 * (y*f.W + x)
			row[3*x], row[3*x+1], row[3*x+2] = f.Pix[p], f.Pix[p+1], f.Pix[p+2]
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// Equal reports whether two final images are identical in size and pixels.
func Equal(a, b *Final) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			return false
		}
	}
	return true
}

// Diff summarizes the difference between two equally-sized final images.
type Diff struct {
	RMSE    float64 // root mean square error over RGB channels
	MaxAbs  int     // largest absolute channel difference
	Differs int     // number of differing pixels
}

// Compare computes a Diff; it panics if sizes differ.
func Compare(a, b *Final) Diff {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("img: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	var d Diff
	var sq float64
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			p := 4 * (y*a.W + x)
			px := false
			for c := 0; c < 3; c++ {
				e := int(a.Pix[p+c]) - int(b.Pix[p+c])
				if e != 0 {
					px = true
				}
				if e < 0 {
					e = -e
				}
				if e > d.MaxAbs {
					d.MaxAbs = e
				}
				sq += float64(e) * float64(e)
			}
			if px {
				d.Differs++
			}
		}
	}
	d.RMSE = math.Sqrt(sq / float64(3*a.W*a.H))
	return d
}

// NonBlackCount returns how many pixels have any non-zero channel — a cheap
// sanity check that a render actually produced an image.
func (f *Final) NonBlackCount() int {
	n := 0
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			p := 4 * (y*f.W + x)
			if f.Pix[p] != 0 || f.Pix[p+1] != 0 || f.Pix[p+2] != 0 {
				n++
			}
		}
	}
	return n
}

// RGBA converts the final image to a standard library image (alpha 255).
func (f *Final) RGBA() *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, f.W, f.H))
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			p := 4 * (y*f.W + x)
			out.SetRGBA(x, y, color.RGBA{R: f.Pix[p], G: f.Pix[p+1], B: f.Pix[p+2], A: 255})
		}
	}
	return out
}

// WritePNG serializes the image as PNG.
func (f *Final) WritePNG(w io.Writer) error { return png.Encode(w, f.RGBA()) }
