package img

import (
	"bytes"
	"image/png"
	"math/rand"
	"strings"
	"testing"
)

func TestIntermediateClearAndAt(t *testing.T) {
	m := NewIntermediate(8, 4)
	p := 4 * m.PixelIndex(3, 2)
	m.Pix[p+3] = 0.5
	if _, _, _, a := m.At(3, 2); a != 0.5 {
		t.Fatalf("At alpha = %g, want 0.5", a)
	}
	m.Clear()
	if _, _, _, a := m.At(3, 2); a != 0 {
		t.Fatal("Clear did not reset pixel")
	}
}

func TestClearRowOnlyTouchesRow(t *testing.T) {
	m := NewIntermediate(4, 3)
	for i := range m.Pix {
		m.Pix[i] = 1
	}
	for i := range m.Links {
		m.Links[i] = 1
	}
	m.ClearRow(1)
	for u := 0; u < 4; u++ {
		if _, _, _, a := m.At(u, 1); a != 0 {
			t.Fatal("row 1 not cleared")
		}
		if _, _, _, a := m.At(u, 0); a != 1 {
			t.Fatal("row 0 was disturbed")
		}
		if _, _, _, a := m.At(u, 2); a != 1 {
			t.Fatal("row 2 was disturbed")
		}
	}
}

func TestSkipOverOpaqueRun(t *testing.T) {
	m := NewIntermediate(10, 1)
	for u := 2; u <= 5; u++ {
		m.MarkOpaque(u, 0)
	}
	if got := m.Skip(0, 0); got != 0 {
		t.Fatalf("Skip(0) = %d, want 0", got)
	}
	if got := m.Skip(2, 0); got != 6 {
		t.Fatalf("Skip(2) = %d, want 6", got)
	}
	if got := m.Skip(4, 0); got != 6 {
		t.Fatalf("Skip(4) = %d, want 6", got)
	}
	// After compression, the jump at 2 is direct.
	if m.Links[2] != 4 {
		t.Fatalf("link at 2 = %d after compression, want 4", m.Links[2])
	}
}

func TestSkipToEndOfRow(t *testing.T) {
	m := NewIntermediate(5, 2)
	for u := 0; u < 5; u++ {
		m.MarkOpaque(u, 1)
	}
	if got := m.Skip(0, 1); got != 5 {
		t.Fatalf("Skip over fully opaque row = %d, want W=5", got)
	}
	// Row 0 unaffected.
	if got := m.Skip(0, 0); got != 0 {
		t.Fatalf("row 0 Skip = %d, want 0", got)
	}
}

func TestMarkOpaqueCoalescesBackward(t *testing.T) {
	m := NewIntermediate(10, 1)
	m.MarkOpaque(3, 0)
	m.MarkOpaque(4, 0) // extends the run starting at 3
	if m.Links[3] < 2 {
		t.Fatalf("link at 3 = %d, want >= 2 after coalescing", m.Links[3])
	}
	if got := m.Skip(3, 0); got != 5 {
		t.Fatalf("Skip(3) = %d, want 5", got)
	}
}

func TestMarkOpaqueCoalescesForward(t *testing.T) {
	m := NewIntermediate(10, 1)
	m.MarkOpaque(5, 0)
	m.MarkOpaque(4, 0) // run at 4 should absorb run at 5
	if got := m.Skip(4, 0); got != 6 {
		t.Fatalf("Skip(4) = %d, want 6", got)
	}
}

func TestRowOpaqueCount(t *testing.T) {
	m := NewIntermediate(8, 2)
	m.MarkOpaque(1, 0)
	m.MarkOpaque(2, 0)
	m.MarkOpaque(7, 0)
	if got := m.RowOpaqueCount(0); got != 3 {
		t.Fatalf("RowOpaqueCount = %d, want 3", got)
	}
	if got := m.RowOpaqueCount(1); got != 0 {
		t.Fatalf("row 1 count = %d, want 0", got)
	}
}

func TestFinalSetAt(t *testing.T) {
	f := NewFinal(6, 5)
	f.SetRGB(2, 3, 10, 20, 30)
	r, g, b := f.AtRGB(2, 3)
	if r != 10 || g != 20 || b != 30 {
		t.Fatalf("AtRGB = (%d,%d,%d)", r, g, b)
	}
	if f.NonBlackCount() != 1 {
		t.Fatalf("NonBlackCount = %d, want 1", f.NonBlackCount())
	}
	f.Clear()
	if f.NonBlackCount() != 0 {
		t.Fatal("Clear left non-black pixels")
	}
}

func TestWritePPM(t *testing.T) {
	f := NewFinal(2, 2)
	f.SetRGB(0, 0, 255, 0, 0)
	f.SetRGB(1, 1, 0, 0, 255)
	var buf bytes.Buffer
	if err := f.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "P6\n2 2\n255\n") {
		t.Fatalf("bad PPM header: %q", s[:min(len(s), 20)])
	}
	body := buf.Bytes()[len("P6\n2 2\n255\n"):]
	if len(body) != 12 {
		t.Fatalf("PPM body %d bytes, want 12", len(body))
	}
	if body[0] != 255 || body[11] != 255 {
		t.Fatal("pixel bytes misplaced in PPM body")
	}
}

func TestEqualAndCompare(t *testing.T) {
	a := NewFinal(3, 3)
	b := NewFinal(3, 3)
	if !Equal(a, b) {
		t.Fatal("empty images should be equal")
	}
	b.SetRGB(1, 1, 0, 0, 9)
	if Equal(a, b) {
		t.Fatal("differing images reported equal")
	}
	d := Compare(a, b)
	if d.Differs != 1 || d.MaxAbs != 9 {
		t.Fatalf("Compare = %+v, want 1 differing pixel, max 9", d)
	}
	if d.RMSE <= 0 {
		t.Fatal("RMSE should be positive")
	}
}

func TestEqualSizeMismatch(t *testing.T) {
	if Equal(NewFinal(2, 2), NewFinal(3, 2)) {
		t.Fatal("size mismatch reported equal")
	}
}

func TestComparePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compare with mismatched sizes did not panic")
		}
	}()
	Compare(NewFinal(2, 2), NewFinal(3, 2))
}

// Property: Skip/MarkOpaque behave exactly like a brute-force boolean mask.
func TestSkipLinksMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		w := 2 + rng.Intn(40)
		m := NewIntermediate(w, 1)
		mask := make([]bool, w)
		for op := 0; op < 80; op++ {
			if rng.Intn(2) == 0 {
				u := rng.Intn(w)
				if !mask[u] {
					m.MarkOpaque(u, 0)
					mask[u] = true
				}
				continue
			}
			u := rng.Intn(w)
			got := m.Skip(u, 0)
			want := u
			for want < w && mask[want] {
				want++
			}
			if got != want {
				t.Fatalf("trial %d: Skip(%d) = %d, want %d (mask %v)", trial, u, got, want, mask)
			}
		}
		if got, want := m.RowOpaqueCount(0), countTrue(mask); got != want {
			t.Fatalf("opaque count %d, want %d", got, want)
		}
	}
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

func TestWritePNG(t *testing.T) {
	f := NewFinal(3, 2)
	f.SetRGB(1, 1, 200, 100, 50)
	var buf bytes.Buffer
	if err := f.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 3 || decoded.Bounds().Dy() != 2 {
		t.Fatalf("decoded bounds %v", decoded.Bounds())
	}
	r, g, b, a := decoded.At(1, 1).RGBA()
	if r>>8 != 200 || g>>8 != 100 || b>>8 != 50 || a>>8 != 255 {
		t.Fatalf("pixel (%d,%d,%d,%d)", r>>8, g>>8, b>>8, a>>8)
	}
}
