// Package stats provides the result-table types the experiment harness
// uses to print paper figures as aligned text, plus small numeric
// formatting helpers.
package stats

import (
	"fmt"
	"strings"
)

// Table is one reproduced figure or table: a title, column headers, rows
// of pre-formatted cells, and free-form notes (usually the comparison with
// the paper's qualitative claim).
type Table struct {
	ID      string // e.g. "fig4"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row first; notes as
// trailing comment lines).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// I formats an integer.
func I(v int64) string { return fmt.Sprintf("%d", v) }

// Pct formats a ratio as a percentage.
func Pct(part, whole int64) string {
	if whole == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

// Speedup formats t1/tp.
func Speedup(t1, tp int64) string {
	if tp == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(t1)/float64(tp))
}

// PerThousand formats events per thousand references.
func PerThousand(events, refs int64) string {
	if refs == 0 {
		return "0.00"
	}
	return fmt.Sprintf("%.2f", 1000*float64(events)/float64(refs))
}

// Bytes formats a byte count compactly (1KB, 64KB, 1MB).
func Bytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
