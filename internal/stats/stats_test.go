package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := Table{
		ID:      "fig0",
		Title:   "Example",
		Columns: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1.00")
	tb.AddRow("longer-name", "2.50")
	tb.AddNote("a note with %d parts", 2)
	s := tb.String()
	if !strings.Contains(s, "== fig0: Example ==") {
		t.Fatalf("missing header: %q", s)
	}
	if !strings.Contains(s, "note: a note with 2 parts") {
		t.Fatal("missing note")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Title + header + separator + 2 rows + 1 note.
	if len(lines) != 6 {
		t.Fatalf("lines = %d: %q", len(lines), s)
	}
	// Value column is right-aligned: both data rows end with the value.
	if !strings.HasSuffix(lines[3], "1.00") || !strings.HasSuffix(lines[4], "2.50") {
		t.Fatalf("bad alignment: %q", s)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatal("F")
	}
	if I(42) != "42" {
		t.Fatal("I")
	}
	if Pct(1, 4) != "25.0%" {
		t.Fatal("Pct")
	}
	if Pct(1, 0) != "0.0%" {
		t.Fatal("Pct zero denominator")
	}
	if Speedup(100, 25) != "4.00" {
		t.Fatal("Speedup")
	}
	if Speedup(100, 0) != "-" {
		t.Fatal("Speedup zero")
	}
	if PerThousand(5, 1000) != "5.00" {
		t.Fatal("PerThousand")
	}
	if PerThousand(5, 0) != "0.00" {
		t.Fatal("PerThousand zero")
	}
}

func TestBytes(t *testing.T) {
	cases := map[int]string{
		512:       "512B",
		1024:      "1KB",
		64 << 10:  "64KB",
		1 << 20:   "1MB",
		1536:      "1536B", // not a whole KB
		4 << 20:   "4MB",
		100 << 10: "100KB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestCSVRendering(t *testing.T) {
	tb := Table{
		ID:      "x",
		Title:   "T",
		Columns: []string{"a", "b"},
	}
	tb.AddRow("plain", "1,5") // cell containing a comma must be quoted
	tb.AddRow(`qu"ote`, "2")
	tb.AddNote("hello")
	csv := tb.CSV()
	want := "a,b\nplain,\"1,5\"\n\"qu\"\"ote\",2\n# hello\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

// TestTableEdgeCases pins String on the degenerate shapes the metrics
// paths can produce: no columns at all, a lone row, and cells (or extra
// trailing cells) wider than their headers.
func TestTableEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		tb := Table{ID: "e", Title: "Empty"}
		s := tb.String()
		if !strings.Contains(s, "== e: Empty ==") {
			t.Fatalf("missing header: %q", s)
		}
		// Title + empty header row + separator; must not panic and must
		// still terminate every line.
		if !strings.HasSuffix(s, "\n") {
			t.Fatalf("unterminated output: %q", s)
		}
		if tb.CSV() != "\n" {
			t.Fatalf("empty CSV = %q", tb.CSV())
		}
	})

	t.Run("single-row", func(t *testing.T) {
		tb := Table{ID: "s", Title: "One", Columns: []string{"k", "v"}}
		tb.AddRow("only", "42")
		lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
		// Title + header + separator + 1 row.
		if len(lines) != 4 {
			t.Fatalf("lines = %d: %q", len(lines), lines)
		}
		if !strings.HasSuffix(lines[3], "42") {
			t.Fatalf("row mangled: %q", lines[3])
		}
	})

	t.Run("wide-cells", func(t *testing.T) {
		tb := Table{ID: "w", Title: "Wide", Columns: []string{"x", "y"}}
		wide := strings.Repeat("0123456789", 5)
		tb.AddRow("a", wide)
		tb.AddRow("b", "1")
		lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
		// The column grows to the widest cell: the separator spans it and
		// the short value right-aligns to the same edge.
		if len(lines[2]) < len(wide) {
			t.Fatalf("separator narrower than widest cell: %q", lines[2])
		}
		if len(lines[3]) != len(lines[4]) {
			t.Fatalf("rows not aligned: %q vs %q", lines[3], lines[4])
		}
		if !strings.HasSuffix(lines[4], "1") {
			t.Fatalf("short value not right-aligned: %q", lines[4])
		}
	})

	t.Run("extra-cells", func(t *testing.T) {
		// A row with more cells than columns must render (and CSV) without
		// panicking; the surplus cells print unpadded.
		tb := Table{ID: "x", Title: "Extra", Columns: []string{"only"}}
		tb.AddRow("a", "surplus")
		s := tb.String()
		if !strings.Contains(s, "surplus") {
			t.Fatalf("surplus cell dropped: %q", s)
		}
		if !strings.Contains(tb.CSV(), "a,surplus") {
			t.Fatalf("surplus cell dropped from CSV: %q", tb.CSV())
		}
	})
}
