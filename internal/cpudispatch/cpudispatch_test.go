package cpudispatch

import (
	"errors"
	"strings"
	"testing"

	"shearwarp/internal/rendermode"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Kernel
		ok   bool
	}{
		{"", KernelAuto, true},
		{"auto", KernelAuto, true},
		{"scalar", KernelScalar, true},
		{"packed", KernelPacked, true},
		{"avx512", 0, false},
		{"Scalar", 0, false},
	}
	for _, c := range cases {
		k, err := Parse(c.in)
		if c.ok {
			if err != nil || k != c.want {
				t.Errorf("Parse(%q) = %v, %v; want %v, nil", c.in, k, err, c.want)
			}
			continue
		}
		var uk *UnknownKernelError
		if !errors.As(err, &uk) {
			t.Errorf("Parse(%q): error %v is not *UnknownKernelError", c.in, err)
		} else if uk.Value != c.in {
			t.Errorf("Parse(%q): error records value %q", c.in, uk.Value)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, k := range []Kernel{KernelAuto, KernelScalar, KernelPacked} {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Errorf("Parse(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
}

func TestResolve(t *testing.T) {
	// Explicit choices pass through untouched.
	if got := Resolve(KernelScalar); got != KernelScalar {
		t.Errorf("Resolve(scalar) = %v", got)
	}
	if got := Resolve(KernelPacked); got != KernelPacked {
		t.Errorf("Resolve(packed) = %v", got)
	}
	// Auto resolves to a concrete tier — scalar unless the env override
	// (cached at first use, so not settable from this test) says packed.
	got := Resolve(KernelAuto)
	if got != KernelScalar && got != KernelPacked {
		t.Errorf("Resolve(auto) = %v, want a concrete tier", got)
	}
	env, err := FromEnv()
	if err == nil && env == KernelAuto && got != KernelScalar {
		t.Errorf("Resolve(auto) with no env override = %v, want scalar", got)
	}
}

func TestResolveForMode(t *testing.T) {
	// Composite behaves exactly like Resolve: every tier passes through.
	for _, k := range []Kernel{KernelScalar, KernelPacked} {
		got, err := ResolveForMode(k, rendermode.Composite)
		if err != nil || got != k {
			t.Errorf("ResolveForMode(%v, composite) = %v, %v; want %v, nil", k, got, err, k)
		}
	}

	for _, m := range []rendermode.Mode{rendermode.MIP, rendermode.Isosurface} {
		// Scalar supports every mode.
		if got, err := ResolveForMode(KernelScalar, m); err != nil || got != KernelScalar {
			t.Errorf("ResolveForMode(scalar, %v) = %v, %v; want scalar, nil", m, got, err)
		}

		// An explicit packed request for a non-composite mode is a typed,
		// user-surfaced error — but still resolves to scalar so callers that
		// ignore the error get a working renderer.
		got, err := ResolveForMode(KernelPacked, m)
		if got != KernelScalar {
			t.Errorf("ResolveForMode(packed, %v) kernel = %v, want scalar fallback", m, got)
		}
		var ume *UnsupportedModeError
		if !errors.As(err, &ume) {
			t.Fatalf("ResolveForMode(packed, %v): error %v is not *UnsupportedModeError", m, err)
		}
		if ume.Kernel != KernelPacked || ume.Mode != m {
			t.Errorf("error records (%v, %v), want (packed, %v)", ume.Kernel, ume.Mode, m)
		}
		if msg := ume.Error(); !strings.Contains(msg, "packed") || !strings.Contains(msg, m.String()) {
			t.Errorf("error message %q does not name the kernel and mode", msg)
		}

		// Auto never errors: even if the env override resolves it to packed,
		// non-composite modes silently fall back to scalar.
		if got, err := ResolveForMode(KernelAuto, m); err != nil || got != KernelScalar {
			t.Errorf("ResolveForMode(auto, %v) = %v, %v; want scalar, nil", m, got, err)
		}
	}
}

func TestProbeSmoke(t *testing.T) {
	// The probe must not crash and the feature string must be non-empty.
	if s := FeatureString(); s == "" {
		t.Fatal("FeatureString() returned an empty string")
	}
	t.Logf("cpu features: %s", FeatureString())
}
