// Package cpudispatch selects the pixel-kernel tier the untraced
// compositing and warp fast paths run with, and probes the CPU features
// that inform the choice.
//
// Two tiers exist:
//
//   - KernelScalar: the exact float32 reference kernels. Byte-identical to
//     the traced simulator path and to the serial golden images — the
//     default everywhere, because bit-identity across algorithms is this
//     repository's core contract.
//   - KernelPacked: 64-bit packed-lane (4×u16 fixed-point) resampling for
//     the composite accumulator and the warp bilinear gather. A documented
//     epsilon mode: images agree with the scalar tier to within the 8-bit
//     premultiply and 8.8 weight quantization (see DESIGN.md), so it is
//     never selected automatically.
//
// Selection happens once, at renderer construction, through Resolve:
// an explicit KernelScalar/KernelPacked request wins; KernelAuto consults
// the SHEARWARP_KERNEL environment variable (the A/B-benchmarking
// override) and otherwise resolves to KernelScalar. The feature probe
// (CPUID/XGETBV on amd64, static tables elsewhere, a pure-Go stub on
// exotic GOARCHes) is exposed so services can report what the host offers
// alongside the tier actually chosen.
package cpudispatch

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"shearwarp/internal/rendermode"
)

// Kernel names a pixel-kernel tier.
type Kernel uint8

// Kernel tiers. The zero value is KernelAuto so an unset configuration
// field means "pick the default".
const (
	KernelAuto   Kernel = iota // resolve via env override, else scalar
	KernelScalar               // exact float32 reference kernels
	KernelPacked               // packed 64-bit-lane fixed-point (epsilon mode)
)

func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelScalar:
		return "scalar"
	case KernelPacked:
		return "packed"
	}
	return fmt.Sprintf("Kernel(%d)", uint8(k))
}

// UnknownKernelError reports a kernel name that Parse rejected. Commands
// and the render service surface it to the user (exit 2 / HTTP 400), so
// it is a typed error rather than a fmt.Errorf string.
type UnknownKernelError struct {
	Value string
}

func (e *UnknownKernelError) Error() string {
	return fmt.Sprintf("cpudispatch: unknown kernel %q (valid: auto, scalar, packed)", e.Value)
}

// Parse converts a kernel name ("auto", "scalar", "packed"; "" means
// auto). Unknown names return a *UnknownKernelError.
func Parse(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "scalar":
		return KernelScalar, nil
	case "packed":
		return KernelPacked, nil
	}
	return KernelAuto, &UnknownKernelError{Value: s}
}

// EnvVar is the environment override consulted by Resolve when the
// configured kernel is KernelAuto.
const EnvVar = "SHEARWARP_KERNEL"

var (
	envOnce   sync.Once
	envKernel Kernel
	envErr    error
)

// FromEnv parses the SHEARWARP_KERNEL override once. An unset variable
// yields (KernelAuto, nil); an invalid value yields KernelAuto and the
// *UnknownKernelError, which Resolve ignores (a bad env var must not
// break a library caller) but commands may report via EnvError.
func FromEnv() (Kernel, error) {
	envOnce.Do(func() {
		envKernel, envErr = Parse(os.Getenv(EnvVar))
	})
	return envKernel, envErr
}

// EnvError returns the parse error of an invalid SHEARWARP_KERNEL value,
// or nil. Commands check it at startup so a typoed override fails loudly
// instead of silently rendering with the default tier.
func EnvError() error {
	_, err := FromEnv()
	return err
}

// Resolve maps a configured kernel to the tier the fast paths actually
// run: explicit choices pass through, KernelAuto takes the environment
// override when one is set and valid, and otherwise resolves to
// KernelScalar — the exact tier — because the packed tier trades
// bit-identity for lane-parallel arithmetic and must be opted into.
func Resolve(k Kernel) Kernel {
	if k != KernelAuto {
		return k
	}
	if env, err := FromEnv(); err == nil && env != KernelAuto {
		return env
	}
	return KernelScalar
}

// UnsupportedModeError reports a kernel tier explicitly requested for a
// render mode it does not implement — today, the packed SWAR tier with any
// non-composite mode (the packed accumulator implements the over-blend
// only). Commands and the render service surface it to the user (exit 2 /
// HTTP 400) instead of silently substituting a tier.
type UnsupportedModeError struct {
	Kernel Kernel
	Mode   rendermode.Mode
}

func (e *UnsupportedModeError) Error() string {
	return fmt.Sprintf("cpudispatch: kernel %q does not support render mode %q (packed is composite-only; use scalar or auto)",
		e.Kernel, e.Mode)
}

// ResolveForMode is Resolve with the render mode taken into account: the
// packed tier implements only the composite over-blend, so an explicit
// KernelPacked request combined with a non-composite mode is rejected with
// a *UnsupportedModeError, while KernelAuto (including an auto resolved to
// packed via SHEARWARP_KERNEL) silently falls back to the scalar tier for
// those modes. Composite-mode resolution is identical to Resolve.
func ResolveForMode(k Kernel, m rendermode.Mode) (Kernel, error) {
	r := Resolve(k)
	if m == rendermode.Composite || r != KernelPacked {
		return r, nil
	}
	if k == KernelPacked {
		return KernelScalar, &UnsupportedModeError{Kernel: k, Mode: m}
	}
	return KernelScalar, nil // auto (env override says packed): fall back
}

// Features describes what the host CPU offers the packed tier. On amd64
// it is filled by a CPUID/XGETBV probe at init; on arm64 the baseline
// spec guarantees ASIMD and fused multiply-add, and other GOARCHes
// report nothing (the pure-Go packed tier still runs there — the flags
// only describe hardware, they never gate correctness).
type Features struct {
	HasAVX2  bool // amd64: AVX2 usable (CPUID bit + OS xmm/ymm state support)
	HasFMA   bool // fused multiply-add available
	HasSSE42 bool // amd64 baseline-v2 vector integer ops
	HasNEON  bool // arm64 advanced SIMD (always true on arm64)
}

// CPU holds the probed features of the running host.
var CPU = probe()

// FeatureString renders the probed features as a comma-separated list
// ("avx2,fma", "neon,fma", or "none") for logs and the /metrics page.
func FeatureString() string {
	var fs []string
	if CPU.HasAVX2 {
		fs = append(fs, "avx2")
	}
	if CPU.HasNEON {
		fs = append(fs, "neon")
	}
	if CPU.HasSSE42 {
		fs = append(fs, "sse4.2")
	}
	if CPU.HasFMA {
		fs = append(fs, "fma")
	}
	if len(fs) == 0 {
		return "none"
	}
	return strings.Join(fs, ",")
}
