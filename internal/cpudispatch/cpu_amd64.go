//go:build amd64

package cpudispatch

// Implemented in cpu_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// probe interrogates the CPU the way golang.org/x/sys/cpu does, without
// the dependency: CPUID leaf 1 for the baseline feature bits, XGETBV
// (guarded by OSXSAVE — executing it without OS support faults) for
// whether the OS saves the xmm/ymm register state, and CPUID leaf 7 for
// AVX2. FMA and AVX2 are only reported usable when the OS support bit
// pattern (xcr0 & 0x6 == 0x6) holds.
func probe() Features {
	var f Features
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 1 {
		return f
	}
	_, _, ecx1, _ := cpuid(1, 0)
	f.HasSSE42 = ecx1&(1<<20) != 0
	avxOS := false
	if ecx1&(1<<27) != 0 { // OSXSAVE: XGETBV is safe to execute
		eax, _ := xgetbv()
		avxOS = eax&0x6 == 0x6 // OS saves both xmm and ymm state
	}
	f.HasFMA = avxOS && ecx1&(1<<12) != 0
	if maxID >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		f.HasAVX2 = avxOS && ebx7&(1<<5) != 0
	}
	return f
}
