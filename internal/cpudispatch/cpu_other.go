//go:build !amd64

package cpudispatch

import "runtime"

// probe on non-amd64 hosts: arm64's baseline spec mandates advanced SIMD
// and fused multiply-add, so they are reported statically; every other
// GOARCH reports no features. The packed tier is pure Go and runs
// regardless — these flags describe the hardware, they never gate it.
func probe() Features {
	if runtime.GOARCH == "arm64" {
		return Features{HasNEON: true, HasFMA: true}
	}
	return Features{}
}
