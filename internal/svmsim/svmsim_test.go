package svmsim

import (
	"testing"

	"shearwarp/internal/trace"
)

func cfg(procs int) Config {
	c := Default(procs)
	return c
}

func TestHomeNodeNeverFaultsOnOwnPages(t *testing.T) {
	s := New(cfg(8)) // 2 nodes
	// Page 0 homes at node 0; proc 0 is in node 0.
	if stall := s.Access(0, 0, 4, false, 0); stall != 0 {
		t.Fatalf("home read stalled %d cycles", stall)
	}
	if s.Stats[0].ReadFaults != 0 {
		t.Fatal("home read counted as fault")
	}
}

func TestRemoteReadFaultsOncePerVersion(t *testing.T) {
	s := New(cfg(8))
	// Proc 4 is in node 1; page 0 homes at node 0.
	first := s.Access(4, 0, 4, false, 0)
	if first == 0 || s.Stats[4].ReadFaults != 1 {
		t.Fatalf("first remote read should fault: stall=%d stats=%+v", first, s.Stats[4])
	}
	second := s.Access(4, 8, 4, false, 1000)
	if second != 0 {
		t.Fatalf("second read of fetched page stalled %d", second)
	}
	// Same node, different proc: node-level caching means no new fault.
	third := s.Access(5, 16, 4, false, 2000)
	if third != 0 {
		t.Fatalf("same-node read faulted again: %d", third)
	}
}

func TestTwinOnFirstRemoteWriteOnly(t *testing.T) {
	s := New(cfg(8))
	s.Access(4, 0, 4, true, 0)
	if s.Stats[4].Twins != 1 {
		t.Fatalf("twins = %d, want 1", s.Stats[4].Twins)
	}
	s.Access(4, 8, 4, true, 100)
	if s.Stats[4].Twins != 1 {
		t.Fatal("second write twinned again")
	}
	// Home-node writes need no twin.
	s.Access(0, 4096*2, 4, true, 0) // page 2 homes at node 0
	if s.Stats[0].Twins != 0 {
		t.Fatal("home write created a twin")
	}
}

func TestBarrierFlushInvalidatesStaleCopies(t *testing.T) {
	s := New(cfg(8))
	s.Access(4, 0, 4, false, 0) // node 1 fetches page 0
	s.Access(0, 0, 4, true, 0)  // node 0 (home) writes it
	extra := s.BarrierFlush(1000)
	// Home wrote: no diff needs to travel, so no flush delay...
	if extra != 0 {
		t.Fatalf("home-only dirty flush delayed barrier by %d", extra)
	}
	// ...but node 1's copy must now be stale.
	stall := s.Access(4, 0, 4, false, 2000)
	if stall == 0 {
		t.Fatal("stale copy not refetched after flush")
	}
}

func TestBarrierFlushCostsForRemoteDirty(t *testing.T) {
	s := New(cfg(8))
	s.Access(4, 0, 64, true, 0) // node 1 dirties page 0 (home node 0)
	extra := s.BarrierFlush(1000)
	if extra < int64(s.Cfg.DiffCost) {
		t.Fatalf("flush extra = %d, want at least a diff", extra)
	}
	if s.FlushedPages != 1 {
		t.Fatalf("flushed pages = %d, want 1", s.FlushedPages)
	}
	// The writer's copy stays valid (it holds the freshest data).
	if stall := s.Access(4, 0, 4, false, 2000); stall != 0 {
		t.Fatalf("writer refetched its own flushed page: %d", stall)
	}
}

func TestDirtyRemoteReadPropagates(t *testing.T) {
	s := New(cfg(8))
	s.Access(4, 0, 4, true, 0) // node 1 dirties page 0
	// Node 0 (the home!) reads: must fetch the fresh data from node 1.
	stall := s.Access(0, 0, 4, false, 100)
	if stall == 0 || s.Stats[0].DirtyFaults != 1 {
		t.Fatalf("dirty read did not propagate: stall=%d stats=%+v", stall, s.Stats[0])
	}
	// Re-read: now current.
	if s.Access(0, 8, 4, false, 200) != 0 {
		t.Fatal("second read after propagation faulted")
	}
	// A further write by node 1 re-stales node 0.
	s.Access(5, 4, 4, true, 300)
	if s.Stats[5].Twins != 0 {
		t.Fatal("same-node second writer twinned")
	}
}

func TestFlushContentionAtOneHome(t *testing.T) {
	// Many pages homed at node 0 dirtied remotely: flush serializes there.
	s := New(cfg(8))
	for i := 0; i < 6; i++ {
		// Pages 0, 2, 4, ... home at node 0 (2 nodes).
		s.Access(4, uint64(i*2)*4096, 4, true, 0)
	}
	extra := s.BarrierFlush(1000)
	want := int64(6 * (s.Cfg.DiffCost + s.Cfg.TransferCost))
	if extra != want {
		t.Fatalf("flush extra = %d, want %d (serialized at one home)", extra, want)
	}
}

func TestAccessSpansPages(t *testing.T) {
	s := New(cfg(8)) // 2 nodes: even pages home at node 0, odd at node 1
	// Proc 4 (node 1) touches pages 0, 1, 2: pages 0 and 2 are remote.
	s.Access(4, 4000, 2*4096, false, 0)
	if s.Stats[4].ReadFaults != 2 {
		t.Fatalf("faults = %d, want 2 remote pages", s.Stats[4].ReadFaults)
	}
}

func TestIOBusContention(t *testing.T) {
	s := New(cfg(16)) // 4 nodes
	// Procs from different nodes fault on pages homed at node 0 at once.
	s.Access(4, 0, 4, false, 0)               // node 1
	stall := s.Access(8, 4096*4, 4, false, 0) // node 2, page 4 homes at node 0
	base := int64(s.Cfg.FaultCost + s.Cfg.TransferCost)
	if stall <= base {
		t.Fatalf("no I/O bus contention: stall=%d base=%d", stall, base)
	}
}

func TestTracerAndReset(t *testing.T) {
	s := New(cfg(8))
	sp := trace.NewAddrSpace()
	arr := sp.Register("a", 4, 4096)
	// The array lands on page 1, which homes at node 1; proc 0 (node 0)
	// must fault on it.
	tr := &Tracer{Sys: s, Proc: 0}
	tr.SetNow(0)
	tr.Read(arr, 0, 100)
	if tr.DrainStall() == 0 {
		t.Fatal("no stall drained for a faulting read")
	}
	if tr.DrainStall() != 0 {
		t.Fatal("drain did not clear")
	}
	s.ResetStats()
	if s.Totals().Refs != 0 {
		t.Fatal("reset did not clear stats")
	}
	// Page state survives reset.
	if s.Access(0, arr.Addr(0), 4, false, 100) != 0 {
		t.Fatal("reset dropped page state")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (ProcStats, int64) {
		s := New(cfg(16))
		var total int64
		seed := uint64(12345)
		next := func(n int) int {
			seed = seed*6364136223846793005 + 1442695040888963407
			return int(seed>>33) % n
		}
		for i := 0; i < 3000; i++ {
			total += s.Access(next(16), uint64(next(1<<16)), 1+next(512),
				next(4) == 0, int64(i*11))
			if i%500 == 499 {
				total += s.BarrierFlush(int64(i * 11))
			}
		}
		return s.Totals(), total
	}
	a, sa := run()
	b, sb := run()
	if a != b || sa != sb {
		t.Fatal("SVM simulation not deterministic")
	}
}

func TestRepeatedBarriersNoLeak(t *testing.T) {
	s := New(cfg(8))
	for round := 0; round < 5; round++ {
		s.Access(4, 0, 64, true, int64(round*1000))
		extra := s.BarrierFlush(int64(round*1000 + 500))
		if extra <= 0 {
			t.Fatalf("round %d: remote dirty page not flushed", round)
		}
		// After the flush nothing is dirty: an immediate second barrier is
		// free.
		if e2 := s.BarrierFlush(int64(round*1000 + 600)); e2 != 0 {
			t.Fatalf("round %d: double flush cost %d", round, e2)
		}
	}
	if s.FlushedPages != 5 {
		t.Fatalf("flushed pages = %d, want 5", s.FlushedPages)
	}
}

func TestVersionsMonotone(t *testing.T) {
	s := New(cfg(8))
	s.Access(4, 0, 4, true, 0)
	s.BarrierFlush(100)
	_, pg := s.pageOf(0)
	v1 := pg.version
	s.Access(0, 0, 4, true, 200) // home write
	s.BarrierFlush(300)
	if pg.version <= v1 {
		t.Fatalf("version did not advance: %d -> %d", v1, pg.version)
	}
}
