// Package svmsim simulates the paper's fifth platform (section 5.5.2): a
// page-based shared virtual memory system running an all-software
// home-based lazy release consistency (HLRC) protocol on SMP nodes
// connected by a Myrinet-like interconnect.
//
// Model summary:
//
//   - Coherence and communication happen at page granularity (4 KB). Pages
//     are homed round-robin across nodes; a node's processors share its
//     page state.
//   - A read of a page whose home copy has advanced past the node's last
//     fetch takes a page fault: software handling plus a full page transfer
//     over the home node's I/O bus (with contention).
//   - The first write to a page by a node creates a twin (non-home nodes)
//     and marks the page dirty.
//   - At a barrier, every dirty page is diffed and flushed to its home,
//     serializing on the home I/O buses; the page version advances so other
//     nodes' copies lapse (lazy invalidation). The flush delay extends the
//     barrier release — the contention-induced barrier cost the paper
//     highlights in Figure 21.
//   - Reads of a page dirtied by another node since the last flush fetch
//     the data from the dirty node (the release/acquire propagation that
//     the new algorithm's per-band completion flags perform), so cross-node
//     in-frame sharing pays data-wait even without an intervening barrier.
package svmsim

import "shearwarp/internal/trace"

// Config describes the SVM platform. Cycle counts assume the paper's
// 200 MHz 1-CPI processors, 400 MB/s memory buses and 100 MB/s I/O buses.
type Config struct {
	Procs        int
	ProcsPerNode int // the paper's nodes hold 4 processors
	PageBytes    int

	FaultCost    int // software fault handling (trap + protocol)
	TransferCost int // one page over the I/O bus (4 KB at 100 MB/s ~ 8200 cycles)
	TwinCost     int // copying a page to its twin on first write
	DiffCost     int // computing + applying one page diff at the home
	Occupancy    int // home I/O bus occupancy per page moved

	BarrierCost int64 // barrier message rounds (engine cost)
	LockCost    int64 // lock acquire/release message cost (engine cost)
}

// Default returns the platform preset used for the Figure 20-22
// experiments.
func Default(procs int) Config {
	return Config{
		Procs:        procs,
		ProcsPerNode: 4,
		PageBytes:    4096,
		FaultCost:    3000,
		TransferCost: 8200,
		TwinCost:     1500,
		DiffCost:     2500,
		Occupancy:    8200,
		BarrierCost:  5000,
		LockCost:     3000,
	}
}

func (c *Config) normalize() {
	if c.Procs < 1 {
		c.Procs = 1
	}
	if c.ProcsPerNode < 1 {
		c.ProcsPerNode = 1
	}
	if c.PageBytes < 512 {
		c.PageBytes = 4096
	}
	if c.Occupancy < 1 {
		c.Occupancy = 1
	}
}

// ProcStats accumulates one processor's SVM behaviour.
type ProcStats struct {
	Refs        int64 // page-touches issued
	ReadFaults  int64 // page fetches from the home
	DirtyFaults int64 // page fetches from a dirty remote node
	Twins       int64 // twin creations (first write to a page by a node)
	DataWait    int64 // cycles stalled for pages (faults + contention)
}

// page is the per-page protocol state.
type page struct {
	version      int32 // advanced when dirty data is flushed home
	dirtySeq     int32 // advanced on each node's first write since a flush
	dirtyNode    int8  // node holding the freshest (unflushed) data, or -1
	fetchedVer   []int32
	fetchedDirty []int32
	dirty        []bool
}

// System is one simulated SVM machine. Single-threaded, driven by the
// deterministic engine.
type System struct {
	Cfg   Config
	nodes int
	pages map[uint64]*page
	// busyUntil/lastProc per node I/O bus; same causal-arrival rules as
	// the hardware memory simulator.
	busyUntil []int64
	lastProc  []int16

	Stats        []ProcStats
	FlushedPages int64 // pages diffed home across all barriers
}

// New builds a simulated SVM system.
func New(cfg Config) *System {
	cfg.normalize()
	nodes := (cfg.Procs + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	return &System{
		Cfg:       cfg,
		nodes:     max(nodes, 1),
		pages:     make(map[uint64]*page, 1<<10),
		busyUntil: make([]int64, max(nodes, 1)),
		lastProc:  make([]int16, max(nodes, 1)),
		Stats:     make([]ProcStats, cfg.Procs),
	}
}

// Nodes returns the node count.
func (s *System) Nodes() int { return s.nodes }

func (s *System) node(p int) int { return p / s.Cfg.ProcsPerNode }

func (s *System) pageOf(addr uint64) (uint64, *page) {
	idx := addr / uint64(s.Cfg.PageBytes)
	pg := s.pages[idx]
	if pg == nil {
		pg = &page{
			dirtyNode:    -1,
			fetchedVer:   make([]int32, s.nodes),
			fetchedDirty: make([]int32, s.nodes),
			dirty:        make([]bool, s.nodes),
		}
		for n := range pg.fetchedVer {
			pg.fetchedVer[n] = -1
		}
		s.pages[idx] = pg
	}
	return idx, pg
}

// Access simulates one processor referencing [addr, addr+nbytes) at the
// given (quantum-start) time, returning stall cycles.
func (s *System) Access(proc int, addr uint64, nbytes int, write bool, now int64) int64 {
	if nbytes <= 0 {
		return 0
	}
	pb := uint64(s.Cfg.PageBytes)
	first := addr / pb
	last := (addr + uint64(nbytes) - 1) / pb
	var stall int64
	for pi := first; pi <= last; pi++ {
		stall += s.accessPage(proc, pi*pb, write, now)
	}
	return stall
}

func (s *System) accessPage(proc int, pageAddr uint64, write bool, now int64) int64 {
	st := &s.Stats[proc]
	st.Refs++
	node := s.node(proc)
	idx, pg := s.pageOf(pageAddr)
	home := int(idx % uint64(s.nodes))
	var stall int64

	needFetch, fromDirty := false, false
	if node != home && pg.fetchedVer[node] < pg.version {
		needFetch = true
	}
	if pg.dirtyNode >= 0 && int(pg.dirtyNode) != node && pg.fetchedDirty[node] < pg.dirtySeq {
		needFetch, fromDirty = true, true
	}
	if needFetch {
		server := home
		if fromDirty {
			server = int(pg.dirtyNode)
		}
		wait := int64(0)
		if bu := s.busyUntil[server]; bu > now && int(s.lastProc[server]) != proc+1 {
			wait = bu - now
		}
		s.lastProc[server] = int16(proc + 1)
		s.busyUntil[server] = max(now, s.busyUntil[server]) + int64(s.Cfg.Occupancy)
		cost := int64(s.Cfg.FaultCost+s.Cfg.TransferCost) + wait
		stall += cost
		st.DataWait += cost
		if fromDirty {
			st.DirtyFaults++
		} else {
			st.ReadFaults++
		}
		pg.fetchedVer[node] = pg.version
		pg.fetchedDirty[node] = pg.dirtySeq
	}

	if write {
		if !pg.dirty[node] {
			pg.dirty[node] = true
			pg.dirtySeq++
			if node != home {
				stall += int64(s.Cfg.TwinCost)
				st.DataWait += int64(s.Cfg.TwinCost)
				st.Twins++
			}
		}
		pg.dirtyNode = int8(node)
		// The writer's own copy is the freshest.
		pg.fetchedDirty[node] = pg.dirtySeq
	}
	return stall
}

// BarrierFlush performs the HLRC barrier work: every dirty page is diffed
// and sent to its home, serializing on the home I/O buses. It returns the
// extra delay the flushes add to the barrier release — the paper's
// contention-delayed barrier effect.
func (s *System) BarrierFlush(now int64) int64 {
	extra := make([]int64, s.nodes)
	for idx, pg := range s.pages {
		home := int(idx % uint64(s.nodes))
		anyDirty := false
		for n := 0; n < s.nodes; n++ {
			if !pg.dirty[n] {
				continue
			}
			anyDirty = true
			pg.dirty[n] = false
			if n != home {
				extra[home] += int64(s.Cfg.DiffCost + s.Cfg.TransferCost)
				s.FlushedPages++
			}
		}
		if anyDirty {
			pg.version++
			pg.dirtyNode = -1
			// Nodes that held dirty data are current; the flush that made
			// the home current also leaves their fetched versions valid.
			for n := 0; n < s.nodes; n++ {
				if pg.fetchedDirty[n] == pg.dirtySeq {
					pg.fetchedVer[n] = pg.version
				}
			}
		}
	}
	var m int64
	for n := range extra {
		s.busyUntil[n] = max(now, s.busyUntil[n]) + extra[n]
		if extra[n] > m {
			m = extra[n]
		}
	}
	return m
}

// Totals aggregates all processors' statistics.
func (s *System) Totals() ProcStats {
	var t ProcStats
	for i := range s.Stats {
		t.Refs += s.Stats[i].Refs
		t.ReadFaults += s.Stats[i].ReadFaults
		t.DirtyFaults += s.Stats[i].DirtyFaults
		t.Twins += s.Stats[i].Twins
		t.DataWait += s.Stats[i].DataWait
	}
	return t
}

// ResetStats clears statistics but keeps page state (for steady-state
// measurement after a warm-up frame).
func (s *System) ResetStats() {
	for i := range s.Stats {
		s.Stats[i] = ProcStats{}
	}
	s.FlushedPages = 0
}

// Tracer binds one simulated processor to the system (trace.Tracer +
// simengine.ProcTracer).
type Tracer struct {
	Sys   *System
	Proc  int
	Now   int64
	Stall int64
}

// Read implements trace.Tracer.
func (t *Tracer) Read(a trace.Array, first, n int) {
	t.Stall += t.Sys.Access(t.Proc, a.Addr(first), n*int(a.Elem), false, t.Now)
}

// Write implements trace.Tracer.
func (t *Tracer) Write(a trace.Array, first, n int) {
	t.Stall += t.Sys.Access(t.Proc, a.Addr(first), n*int(a.Elem), true, t.Now)
}

// SetNow implements simengine.ProcTracer.
func (t *Tracer) SetNow(now int64) { t.Now = now }

// DrainStall implements simengine.ProcTracer.
func (t *Tracer) DrainStall() int64 {
	s := t.Stall
	t.Stall = 0
	return s
}
