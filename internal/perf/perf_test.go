package perf

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
	"unsafe"
)

func TestSlotPaddingAvoidsFalseSharing(t *testing.T) {
	if s := unsafe.Sizeof(slot{}); s%slotPad != 0 {
		t.Fatalf("slot size %d is not a multiple of %d", s, slotPad)
	}
	var c Collector
	c.Reset(2)
	a := uintptr(unsafe.Pointer(&c.slots[0]))
	b := uintptr(unsafe.Pointer(&c.slots[1]))
	if b-a < slotPad {
		t.Fatalf("adjacent slots %d bytes apart, want >= %d", b-a, slotPad)
	}
}

func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	c.Reset(4)
	c.FrameStart()
	c.AddPhase(0, PhaseWarp, time.Millisecond)
	c.AddCount(0, CounterSteals, 3)
	c.FrameEnd()
	if c.Workers() != 0 || c.WallNS() != 0 || c.PhaseNS(0, PhaseWarp) != 0 || c.CountVal(0, CounterSteals) != 0 {
		t.Fatal("nil collector reported data")
	}
	if c.Breakdown("new") != nil {
		t.Fatal("nil collector produced a breakdown")
	}
	var fb *FrameBreakdown
	if fb.ImbalanceFrac() != 0 {
		t.Fatal("nil breakdown imbalance non-zero")
	}
}

func TestResetReusesAndZeroes(t *testing.T) {
	c := NewCollector(3)
	c.AddPhase(2, PhaseClear, 5*time.Millisecond)
	c.AddCount(1, CounterChunks, 7)
	base := &c.slots[0]
	c.Reset(3)
	if &c.slots[0] != base {
		t.Fatal("Reset reallocated slots of unchanged size")
	}
	if c.PhaseNS(2, PhaseClear) != 0 || c.CountVal(1, CounterChunks) != 0 {
		t.Fatal("Reset did not zero the slots")
	}
	c.Reset(0)
	if c.Workers() != 1 {
		t.Fatalf("Reset(0) gave %d workers, want 1", c.Workers())
	}
}

// synthetic fills a collector with exact values so the breakdown math is
// checkable: wall 10ms; worker 0 busy 6ms + wait 1ms (imbalance 3ms),
// worker 1 busy 10ms (imbalance 0, with wait overrun clamped).
func synthetic() *Collector {
	c := NewCollector(2)
	c.AddPhase(0, PhaseClear, 1*time.Millisecond)
	c.AddPhase(0, PhaseCompositeOwn, 2*time.Millisecond)
	c.AddPhase(0, PhaseCompositeSteal, 1*time.Millisecond)
	c.AddPhase(0, PhaseWarp, 2*time.Millisecond)
	c.AddPhase(0, PhaseWait, 1*time.Millisecond)
	c.AddPhase(0, PhaseTotal, 7*time.Millisecond)
	c.AddPhase(1, PhaseCompositeOwn, 8*time.Millisecond)
	c.AddPhase(1, PhaseWarp, 2*time.Millisecond)
	c.AddPhase(1, PhaseWait, 2*time.Millisecond)
	c.AddPhase(1, PhaseTotal, 10*time.Millisecond)
	c.AddCount(0, CounterScanlines, 40)
	c.AddCount(0, CounterChunks, 10)
	c.AddCount(0, CounterSteals, 2)
	c.AddCount(1, CounterScanlines, 60)
	c.AddCount(1, CounterWarpSpans, 64)
	c.wallNS = int64(10 * time.Millisecond)
	return c
}

func TestBreakdownMath(t *testing.T) {
	fb := synthetic().Breakdown("new")
	if fb.Algorithm != "new" || fb.Workers != 2 || fb.WallNS != int64(10*time.Millisecond) {
		t.Fatalf("header = %+v", fb)
	}
	w0, w1 := &fb.PerWorker[0], &fb.PerWorker[1]
	if w0.BusyNS() != int64(6*time.Millisecond) {
		t.Fatalf("worker 0 busy %d", w0.BusyNS())
	}
	if w0.ImbalanceNS != int64(3*time.Millisecond) {
		t.Fatalf("worker 0 imbalance %d, want 3ms", w0.ImbalanceNS)
	}
	// Worker 1: busy 10ms + wait 2ms exceeds the 10ms wall; imbalance
	// clamps at zero rather than going negative.
	if w1.ImbalanceNS != 0 {
		t.Fatalf("worker 1 imbalance %d, want 0", w1.ImbalanceNS)
	}
	// Mean imbalance = (3ms + 0) / 2 / 10ms = 0.15.
	if got := fb.ImbalanceFrac(); got < 0.149 || got > 0.151 {
		t.Fatalf("imbalance frac %f, want 0.15", got)
	}
	// Mean busy = (6ms + 10ms) / 2 / 10ms = 0.8.
	if got := fb.BusyFrac(); got < 0.799 || got > 0.801 {
		t.Fatalf("busy frac %f, want 0.8", got)
	}
	if w0.Scanlines != 40 || w0.Steals != 2 || w1.WarpSpans != 64 {
		t.Fatal("counters not carried into the breakdown")
	}
}

func TestBreakdownTableAndJSON(t *testing.T) {
	fb := synthetic().Breakdown("old")
	s := fb.Table().String()
	for _, want := range []string{"phases-old", "imbal(ms)", "scanlines", "steals",
		"load imbalance", "busy 80.0%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
	data, err := fb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back FrameBreakdown
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != "old" || len(back.PerWorker) != 2 ||
		back.PerWorker[0].ImbalanceNS != fb.PerWorker[0].ImbalanceNS {
		t.Fatalf("JSON round-trip mismatch: %+v", back)
	}
}

func TestPhaseAndCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for ph := Phase(0); ph < NumPhases; ph++ {
		n := ph.String()
		if n == "unknown" || seen[n] {
			t.Fatalf("phase %d name %q", ph, n)
		}
		seen[n] = true
	}
	for ct := Counter(0); ct < NumCounters; ct++ {
		n := ct.String()
		if n == "unknown" || seen[n] {
			t.Fatalf("counter %d name %q", ct, n)
		}
		seen[n] = true
	}
}

func TestCollectorConcurrentWorkers(t *testing.T) {
	// Distinct workers write their own slots concurrently; the aggregate
	// must be exact (exercised under -race in CI).
	const P, rounds = 8, 1000
	c := NewCollector(P)
	c.FrameStart()
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.AddPhase(p, PhaseCompositeOwn, time.Nanosecond)
				c.AddCount(p, CounterScanlines, 1)
			}
		}(p)
	}
	wg.Wait()
	c.FrameEnd()
	fb := c.Breakdown("new")
	for p := 0; p < P; p++ {
		if fb.PerWorker[p].CompositeOwnNS != rounds || fb.PerWorker[p].Scanlines != rounds {
			t.Fatalf("worker %d slot = %+v", p, fb.PerWorker[p])
		}
	}
	if fb.WallNS <= 0 {
		t.Fatal("frame wall time not recorded")
	}
}

func TestCumulativeAggregation(t *testing.T) {
	var cum Cumulative
	fb := synthetic().Breakdown("new")
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cum.Add(fb)
			_ = cum.Snapshot()
		}()
	}
	wg.Wait()
	s := cum.Snapshot()
	if s.Frames != 10 {
		t.Fatalf("frames = %d", s.Frames)
	}
	if s.WallNS != 10*fb.WallNS {
		t.Fatalf("wall = %d", s.WallNS)
	}
	if s.Counts["scanlines"] != 10*(40+60) {
		t.Fatalf("scanlines = %d", s.Counts["scanlines"])
	}
	if s.PhaseNS["composite-own"] != 10*int64(10*time.Millisecond) {
		t.Fatalf("composite-own = %d", s.PhaseNS["composite-own"])
	}
	if s.MeanImbalancePct < 14.9 || s.MeanImbalancePct > 15.1 {
		t.Fatalf("mean imbalance pct = %f", s.MeanImbalancePct)
	}
	// A zero/nil Cumulative snapshots cleanly (the expvar endpoint can be
	// scraped before the first frame).
	var empty *Cumulative
	if snap := empty.Snapshot(); snap.Frames != 0 || snap.PhaseNS == nil {
		t.Fatal("nil cumulative snapshot malformed")
	}
}

// TestCumulativeAddSnapshotHammer is the -race stress for the documented
// Add/Snapshot concurrency contract: dedicated adders and snapshotters
// run flat out, and every snapshot must observe whole frames only —
// frame count and phase totals advance in lockstep, never torn.
func TestCumulativeAddSnapshotHammer(t *testing.T) {
	var cum Cumulative
	fb := synthetic().Breakdown("new")
	perFrameOwn := int64(0)
	for i := range fb.PerWorker {
		perFrameOwn += fb.PerWorker[i].CompositeOwnNS
	}

	const adders, snapshotters, rounds = 4, 4, 500
	var wg sync.WaitGroup
	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				cum.Add(fb)
			}
		}()
	}
	errc := make(chan error, snapshotters)
	for sidx := 0; sidx < snapshotters; sidx++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s := cum.Snapshot()
				if s.PhaseNS["composite-own"] != s.Frames*perFrameOwn {
					errc <- fmt.Errorf("torn snapshot: %d frames but composite-own %d (want %d)",
						s.Frames, s.PhaseNS["composite-own"], s.Frames*perFrameOwn)
					return
				}
				if s.WallNS != s.Frames*fb.WallNS {
					errc <- fmt.Errorf("torn snapshot: %d frames but wall %d", s.Frames, s.WallNS)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if s := cum.Snapshot(); s.Frames != adders*rounds {
		t.Fatalf("final frames = %d, want %d", s.Frames, adders*rounds)
	}
}
