package perf

import (
	"encoding/json"
	"sync"

	"shearwarp/internal/stats"
)

// WorkerBreakdown is one worker's share of a frame, in the paper's
// Figure 5/6 vocabulary: busy time split by phase, explicit
// synchronization time, and load-imbalance time (the part of the frame's
// wall clock this worker spent neither busy nor in a tracked wait).
type WorkerBreakdown struct {
	Worker           int   `json:"worker"`
	ClearNS          int64 `json:"clear_ns"`
	CompositeOwnNS   int64 `json:"composite_own_ns"`
	CompositeStealNS int64 `json:"composite_steal_ns"`
	WaitNS           int64 `json:"wait_ns"`
	WarpNS           int64 `json:"warp_ns"`
	TotalNS          int64 `json:"total_ns"`
	ImbalanceNS      int64 `json:"imbalance_ns"`
	Scanlines        int64 `json:"scanlines"`
	Chunks           int64 `json:"chunks"`
	Steals           int64 `json:"steals"`
	EarlyTermSkips   int64 `json:"early_term_skips"`
	WarpSpans        int64 `json:"warp_spans"`
}

// BusyNS is the worker's useful work: everything but waits and idle.
func (w *WorkerBreakdown) BusyNS() int64 {
	return w.ClearNS + w.CompositeOwnNS + w.CompositeStealNS + w.WarpNS
}

// FrameBreakdown is the per-worker execution-time breakdown of one frame,
// the native analog of the paper's Figure 5/6 stacked bars.
type FrameBreakdown struct {
	Algorithm string            `json:"algorithm"`
	Workers   int               `json:"workers"`
	WallNS    int64             `json:"wall_ns"`
	PerWorker []WorkerBreakdown `json:"per_worker"`
}

// Breakdown snapshots the collector into a FrameBreakdown. Call it only
// after the frame's completion barrier (no workers still writing).
func (c *Collector) Breakdown(algorithm string) *FrameBreakdown {
	if c == nil {
		return nil
	}
	fb := &FrameBreakdown{
		Algorithm: algorithm,
		Workers:   len(c.slots),
		WallNS:    c.wallNS,
		PerWorker: make([]WorkerBreakdown, len(c.slots)),
	}
	for p := range c.slots {
		s := &c.slots[p]
		w := &fb.PerWorker[p]
		w.Worker = p
		w.ClearNS = s.phaseNS[PhaseClear]
		w.CompositeOwnNS = s.phaseNS[PhaseCompositeOwn]
		w.CompositeStealNS = s.phaseNS[PhaseCompositeSteal]
		w.WaitNS = s.phaseNS[PhaseWait]
		w.WarpNS = s.phaseNS[PhaseWarp]
		w.TotalNS = s.phaseNS[PhaseTotal]
		if imb := fb.WallNS - w.BusyNS() - w.WaitNS; imb > 0 {
			w.ImbalanceNS = imb
		}
		w.Scanlines = s.counts[CounterScanlines]
		w.Chunks = s.counts[CounterChunks]
		w.Steals = s.counts[CounterSteals]
		w.EarlyTermSkips = s.counts[CounterEarlyTerm]
		w.WarpSpans = s.counts[CounterWarpSpans]
	}
	return fb
}

// ImbalanceFrac is the frame's aggregate load-imbalance fraction: the
// mean per-worker imbalance time divided by the frame's wall time — the
// fraction of the machine's capacity the frame left idle outside tracked
// waits (0 = perfectly balanced).
func (fb *FrameBreakdown) ImbalanceFrac() float64 {
	if fb == nil || fb.WallNS <= 0 || len(fb.PerWorker) == 0 {
		return 0
	}
	var imb int64
	for i := range fb.PerWorker {
		imb += fb.PerWorker[i].ImbalanceNS
	}
	return float64(imb) / float64(fb.WallNS) / float64(len(fb.PerWorker))
}

// BusyFrac is the mean per-worker busy time divided by the wall time.
func (fb *FrameBreakdown) BusyFrac() float64 {
	if fb == nil || fb.WallNS <= 0 || len(fb.PerWorker) == 0 {
		return 0
	}
	var busy int64
	for i := range fb.PerWorker {
		busy += fb.PerWorker[i].BusyNS()
	}
	return float64(busy) / float64(fb.WallNS) / float64(len(fb.PerWorker))
}

// ms formats nanoseconds as milliseconds with microsecond precision.
func ms(ns int64) string { return stats.F(float64(ns)/1e6, 3) }

// Table renders the breakdown as a paper-style Figure 5/6 table: one row
// per worker with busy time split by phase, synchronization time, and
// imbalance time, plus the work counters that explain the split.
func (fb *FrameBreakdown) Table() *stats.Table {
	t := &stats.Table{
		ID:    "phases-" + fb.Algorithm,
		Title: "per-worker execution-time breakdown (" + fb.Algorithm + " algorithm)",
		Columns: []string{"proc", "clear(ms)", "comp-own(ms)", "comp-steal(ms)", "warp(ms)",
			"busy(ms)", "wait(ms)", "imbal(ms)", "scanlines", "chunks", "steals", "early-skips", "warp-spans"},
	}
	for i := range fb.PerWorker {
		w := &fb.PerWorker[i]
		t.AddRow(
			stats.I(int64(w.Worker)),
			ms(w.ClearNS), ms(w.CompositeOwnNS), ms(w.CompositeStealNS), ms(w.WarpNS),
			ms(w.BusyNS()), ms(w.WaitNS), ms(w.ImbalanceNS),
			stats.I(w.Scanlines), stats.I(w.Chunks), stats.I(w.Steals),
			stats.I(w.EarlyTermSkips), stats.I(w.WarpSpans),
		)
	}
	t.AddNote("wall %sms over %d workers; busy %.1f%%, imbalance %.1f%% of machine capacity",
		ms(fb.WallNS), fb.Workers, 100*fb.BusyFrac(), 100*fb.ImbalanceFrac())
	t.AddNote("busy/wait/imbal map to the paper's Fig. 5-6 categories: computation, synchronization, load imbalance")
	return t
}

// JSON marshals the breakdown (indented, stable field order).
func (fb *FrameBreakdown) JSON() ([]byte, error) {
	return json.MarshalIndent(fb, "", "  ")
}

// Cumulative aggregates frame breakdowns across a run — the backing store
// for the expvar/metrics endpoint on long animations. Add and Snapshot
// are safe to call concurrently from any number of goroutines: both take
// the same mutex, so a snapshot always observes whole frames — never a
// frame whose phases are partially accumulated.
type Cumulative struct {
	mu        sync.Mutex
	frames    int64
	wallNS    int64
	phaseNS   [NumPhases]int64   // summed across workers and frames
	counts    [NumCounters]int64 // summed across workers and frames
	imbalance float64            // sum of per-frame ImbalanceFrac
}

// Add accumulates one frame's breakdown.
func (c *Cumulative) Add(fb *FrameBreakdown) {
	if c == nil || fb == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames++
	c.wallNS += fb.WallNS
	c.imbalance += fb.ImbalanceFrac()
	for i := range fb.PerWorker {
		w := &fb.PerWorker[i]
		c.phaseNS[PhaseClear] += w.ClearNS
		c.phaseNS[PhaseCompositeOwn] += w.CompositeOwnNS
		c.phaseNS[PhaseCompositeSteal] += w.CompositeStealNS
		c.phaseNS[PhaseWait] += w.WaitNS
		c.phaseNS[PhaseWarp] += w.WarpNS
		c.phaseNS[PhaseTotal] += w.TotalNS
		c.counts[CounterScanlines] += w.Scanlines
		c.counts[CounterChunks] += w.Chunks
		c.counts[CounterSteals] += w.Steals
		c.counts[CounterEarlyTerm] += w.EarlyTermSkips
		c.counts[CounterWarpSpans] += w.WarpSpans
	}
}

// CumulativeSnapshot is a marshal-friendly view of a Cumulative.
type CumulativeSnapshot struct {
	Frames           int64            `json:"frames"`
	WallNS           int64            `json:"wall_ns"`
	PhaseNS          map[string]int64 `json:"phase_ns"`
	Counts           map[string]int64 `json:"counts"`
	MeanImbalancePct float64          `json:"mean_imbalance_pct"`
}

// Snapshot returns the current totals. The result is a fresh value; the
// maps are never shared with later snapshots.
func (c *Cumulative) Snapshot() CumulativeSnapshot {
	var s CumulativeSnapshot
	s.PhaseNS = make(map[string]int64, NumPhases)
	s.Counts = make(map[string]int64, NumCounters)
	if c == nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s.Frames = c.frames
	s.WallNS = c.wallNS
	for ph := Phase(0); ph < NumPhases; ph++ {
		s.PhaseNS[ph.String()] = c.phaseNS[ph]
	}
	for ct := Counter(0); ct < NumCounters; ct++ {
		s.Counts[ct.String()] = c.counts[ct]
	}
	if c.frames > 0 {
		s.MeanImbalancePct = 100 * c.imbalance / float64(c.frames)
	}
	return s
}
