// Package perf is the native-execution observability layer: per-worker,
// per-frame phase timers and work counters that reproduce the paper's
// Figure 5/6 execution-time breakdowns (busy vs. synchronization vs. load
// imbalance in the compositing and warp phases) from real wall-clock runs
// rather than the cycle simulator.
//
// The design mirrors the trace.Tracer split: renderers hold a *Collector
// that is nil in the default (uninstrumented) path, and every
// instrumentation site is guarded by a nil check, so the disabled path
// adds no clock reads, no allocations, and no change in output. When a
// Collector is attached, each worker records nanosecond durations into
// its own cache-line-padded slot — no sharing, no atomics on the hot
// path — and the main goroutine aggregates the slots into a
// FrameBreakdown after the frame's completion barrier.
package perf

import "time"

// Phase identifies one timed section of a frame.
type Phase int

// The timed phases of a parallel frame. PhaseWait accumulates all
// explicit synchronization: the post-clear rendezvous, the inter-phase
// barrier of the old algorithm, and the per-band completion waits of the
// new algorithm.
const (
	PhaseClear          Phase = iota // intermediate-image clear stripe
	PhaseCompositeOwn                // compositing chunks from the worker's own assignment
	PhaseCompositeSteal              // compositing stolen chunks
	PhaseWait                        // barriers and band-completion waits
	PhaseWarp                        // warping spans/tiles of the final image
	PhaseTotal                       // the worker's whole frame, wall clock
	NumPhases
)

// String returns the short phase name used in tables and JSON.
func (p Phase) String() string {
	switch p {
	case PhaseClear:
		return "clear"
	case PhaseCompositeOwn:
		return "composite-own"
	case PhaseCompositeSteal:
		return "composite-steal"
	case PhaseWait:
		return "wait"
	case PhaseWarp:
		return "warp"
	case PhaseTotal:
		return "total"
	}
	return "unknown"
}

// Counter identifies one per-worker work tally.
type Counter int

// The per-worker work counters.
const (
	CounterScanlines Counter = iota // intermediate scanlines composited
	CounterChunks                   // compositing chunks processed in total
	CounterSteals                   // chunks obtained by stealing
	CounterEarlyTerm                // early-ray-termination skips (opaque-run link traversals)
	CounterWarpSpans                // final-image row spans / tile rows warped
	NumCounters
)

// String returns the short counter name used in tables and JSON.
func (c Counter) String() string {
	switch c {
	case CounterScanlines:
		return "scanlines"
	case CounterChunks:
		return "chunks"
	case CounterSteals:
		return "steals"
	case CounterEarlyTerm:
		return "early-term"
	case CounterWarpSpans:
		return "warp-spans"
	}
	return "unknown"
}

// slotPad rounds the slot up to a multiple of two cache lines so adjacent
// workers never share a line (and the adjacent-line prefetcher never
// couples them either).
const slotPad = 128

// slot is one worker's private accumulation area.
type slot struct {
	phaseNS [NumPhases]int64
	counts  [NumCounters]int64
	_       [slotPad - (int(NumPhases)+int(NumCounters))*8%slotPad]byte
}

// Collector accumulates one frame's per-worker timings. It is reused
// across frames via Reset; all per-worker methods are safe for concurrent
// use by distinct workers (each touches only its own padded slot) and are
// no-ops on a nil receiver, though hot paths should still nil-check to
// skip the clock reads.
type Collector struct {
	slots      []slot
	frameStart time.Time
	wallNS     int64
}

// NewCollector returns a collector with one padded slot per worker.
func NewCollector(workers int) *Collector {
	c := &Collector{}
	c.Reset(workers)
	return c
}

// Reset zeroes the collector for a new frame with the given worker count,
// reusing the slot array when it is large enough. No-op on nil.
func (c *Collector) Reset(workers int) {
	if c == nil {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if cap(c.slots) >= workers {
		c.slots = c.slots[:workers]
		clear(c.slots)
	} else {
		c.slots = make([]slot, workers)
	}
	c.wallNS = 0
	c.frameStart = time.Time{}
}

// Workers returns the number of per-worker slots.
func (c *Collector) Workers() int {
	if c == nil {
		return 0
	}
	return len(c.slots)
}

// FrameStart marks the beginning of the frame's parallel section.
func (c *Collector) FrameStart() {
	if c == nil {
		return
	}
	c.frameStart = time.Now()
}

// FrameEnd marks the end of the frame's parallel section, fixing the wall
// time that the imbalance computation is measured against.
func (c *Collector) FrameEnd() {
	if c == nil {
		return
	}
	c.wallNS = int64(time.Since(c.frameStart))
}

// AddPhase charges d of phase ph to worker p.
func (c *Collector) AddPhase(p int, ph Phase, d time.Duration) {
	if c == nil {
		return
	}
	c.slots[p].phaseNS[ph] += int64(d)
}

// AddCount adds n to worker p's counter ct.
func (c *Collector) AddCount(p int, ct Counter, n int64) {
	if c == nil {
		return
	}
	c.slots[p].counts[ct] += n
}

// PhaseNS returns worker p's accumulated nanoseconds in phase ph.
func (c *Collector) PhaseNS(p int, ph Phase) int64 {
	if c == nil {
		return 0
	}
	return c.slots[p].phaseNS[ph]
}

// CountVal returns worker p's counter ct.
func (c *Collector) CountVal(p int, ct Counter) int64 {
	if c == nil {
		return 0
	}
	return c.slots[p].counts[ct]
}

// WallNS returns the frame's wall-clock duration in nanoseconds (0 until
// FrameEnd).
func (c *Collector) WallNS() int64 {
	if c == nil {
		return 0
	}
	return c.wallNS
}
