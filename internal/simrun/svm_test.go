package simrun

import (
	"testing"

	"shearwarp/internal/img"
	"shearwarp/internal/render"
	"shearwarp/internal/vol"
)

func svmWorkload(t *testing.T) *Workload {
	t.Helper()
	r := render.New(vol.MRIBrain(40), render.Options{})
	return NewWorkload(r, render.Rotation(4, 0.3, 0.2, 5))
}

func TestSVMImagesMatchSerial(t *testing.T) {
	w := svmWorkload(t)
	last := w.Views[len(w.Views)-1]
	want, _ := w.R.RenderSerial(last[0], last[1])
	for _, procs := range []int{4, 8} {
		if res := RunOldSVM(w, SVMOptions{Procs: procs}); !img.Equal(want, res.LastImage) {
			t.Fatalf("old SVM image differs at P=%d", procs)
		}
		if res := RunNewSVM(w, SVMOptions{Procs: procs}); !img.Equal(want, res.LastImage) {
			t.Fatalf("new SVM image differs at P=%d", procs)
		}
	}
}

func TestSVMNewOutperformsOldAcrossNodes(t *testing.T) {
	// Figure 20: the improvement is largest on SVM. At P <= 4 everything is
	// one SMP node (no SVM traffic); the interesting counts span nodes.
	w := svmWorkload(t)
	for _, procs := range []int{8, 16} {
		old := RunOldSVM(w, SVMOptions{Procs: procs}).SteadyCycles()
		nw := RunNewSVM(w, SVMOptions{Procs: procs}).SteadyCycles()
		if nw >= old {
			t.Fatalf("P=%d: new SVM %d not faster than old %d", procs, nw, old)
		}
	}
}

func TestSVMOldDominatedByWaits(t *testing.T) {
	// Figure 21: the old program on SVM has extremely high data and barrier
	// wait time; compute is a minority share.
	w := svmWorkload(t)
	res := RunOldSVM(w, SVMOptions{Procs: 16})
	var busy, waits int64
	for _, b := range res.SteadyPerProc {
		busy += b.Busy
		waits += b.MemStall + b.SyncWait + b.LockWait
	}
	if waits <= busy {
		t.Fatalf("old SVM waits %d not dominant over busy %d", waits, busy)
	}
}

func TestSVMNewEliminatesPhaseBarrier(t *testing.T) {
	// Section 5.5.2: identical partitioning eliminates the barrier between
	// compositing and warping: the composite phase accrues no barrier wait.
	w := svmWorkload(t)
	res := RunNewSVM(w, SVMOptions{Procs: 8})
	if sw := res.SteadyPhases["composite"].SyncWait; sw != 0 {
		t.Fatalf("new algorithm composite phase has %d barrier wait; want 0", sw)
	}
	old := RunOldSVM(w, SVMOptions{Procs: 8})
	if sw := old.SteadyPhases["composite"].SyncWait; sw == 0 {
		t.Fatal("old algorithm should pay the phase barrier in compositing")
	}
}

func TestSVMSingleNodeHasNoTraffic(t *testing.T) {
	// 4 processors = one SMP node: shared memory inside the node, no page
	// traffic at all.
	w := svmWorkload(t)
	res := RunOldSVM(w, SVMOptions{Procs: 4})
	if res.Svm == nil {
		t.Fatal("missing SVM stats")
	}
	if res.Svm.ReadFaults+res.Svm.DirtyFaults+res.Svm.Twins != 0 {
		t.Fatalf("single-node run produced page traffic: %+v", *res.Svm)
	}
}

func TestSVMNewReducesTraffic(t *testing.T) {
	// The coarse-grained access pattern reduces pages moved (Figure 22).
	w := svmWorkload(t)
	old := RunOldSVM(w, SVMOptions{Procs: 16})
	nw := RunNewSVM(w, SVMOptions{Procs: 16})
	oldTraffic := old.Svm.ReadFaults + old.Svm.DirtyFaults
	newTraffic := nw.Svm.ReadFaults + nw.Svm.DirtyFaults
	if newTraffic > oldTraffic {
		t.Fatalf("new SVM traffic %d exceeds old %d", newTraffic, oldTraffic)
	}
}
