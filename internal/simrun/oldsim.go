package simrun

import (
	"shearwarp/internal/composite"
	"shearwarp/internal/machines"
	"shearwarp/internal/oldalg"
	"shearwarp/internal/par"
	"shearwarp/internal/render"
	"shearwarp/internal/simengine"
	"shearwarp/internal/svmsim"
	"shearwarp/internal/warp"
)

// OldOptions configures a simulated run of the old parallel algorithm.
type OldOptions struct {
	Machine   machines.Machine
	Procs     int
	ChunkSize int // 0 = oldalg.DefaultChunkSize
	TileSize  int // 0 = 32
}

// oldPhase enumerates the per-processor state machine.
type oldPhase int

const (
	opInit oldPhase = iota
	opComposite
	opWarp
	opFrameDone
)

type oldProcState struct {
	phase    oldPhase
	frame    int
	cc       *composite.Ctx
	wc       *warp.Ctx
	ccCnt    composite.Counters
	wcCnt    warp.Counters
	tracer   backTracer
	chunk    par.Chunk
	hasChunk bool
	row      int
	tileSeq  int // index into the round-robin tile sequence
	steals   int
}

type oldSim struct {
	w   *Workload
	opt OldOptions
	be  backend

	inited   int // highest frame index whose shared state is built
	fr       *render.Frame
	queue    *par.Interleaved
	qlock    simengine.Lock
	phaseBar simengine.Barrier
	frameBar simengine.Barrier
	tiles    [][4]int

	frameEnds []int64
	wu        warmup
}

// RunOld executes the old parallel algorithm on a simulated hardware
// cache-coherent machine.
func RunOld(w *Workload, opt OldOptions) *Result {
	if opt.Procs < 1 {
		opt.Procs = 1
	}
	be := newHWBackend(opt.Machine.NewSystem(opt.Procs), w)
	return runOld(w, opt, be, opt.Machine.BarrierCost, opt.Machine.LockCost)
}

// SVMOptions configures a run on the shared-virtual-memory platform.
type SVMOptions struct {
	Procs     int
	Cfg       svmsim.Config // zero value selects svmsim.Default
	ChunkSize int           // old algorithm compositing chunk
	TileSize  int           // old algorithm warp tile
	// New-algorithm knobs.
	StealChunk   int
	ReprofileDeg float64
	DisableSteal bool
	ForceBarrier bool
}

func (o *SVMOptions) normalize() {
	if o.Procs < 1 {
		o.Procs = 1
	}
	if o.Cfg.PageBytes == 0 {
		o.Cfg = svmsim.Default(o.Procs)
	}
	o.Cfg.Procs = o.Procs
}

// RunOldSVM executes the old parallel algorithm on the SVM platform.
func RunOldSVM(w *Workload, opt SVMOptions) *Result {
	opt.normalize()
	be := svmBackend{sys: svmsim.New(opt.Cfg)}
	old := OldOptions{Procs: opt.Procs, ChunkSize: opt.ChunkSize, TileSize: opt.TileSize}
	return runOld(w, old, be, opt.Cfg.BarrierCost, opt.Cfg.LockCost)
}

func runOld(w *Workload, opt OldOptions, be backend, barrierCost, lockCost int64) *Result {
	w.resetImages()
	e := simengine.New(opt.Procs)
	e.BarrierCost = barrierCost
	e.LockCost = lockCost

	prog := &oldSim{w: w, opt: opt, be: be, inited: -1}
	prog.phaseBar.Expected = opt.Procs
	prog.phaseBar.ExtraDelay = be.barrierExtra()
	prog.frameBar.Expected = opt.Procs
	prog.frameBar.ExtraDelay = be.barrierExtra()
	for _, p := range e.Procs {
		tr := be.tracer(p.ID)
		p.Tracer = tr
		p.UserData = &oldProcState{tracer: tr}
	}
	e.Run(prog)

	steals := 0
	for _, p := range e.Procs {
		steals += p.UserData.(*oldProcState).steals
	}
	return collect(e, be, w.Frames[len(w.Frames)-1].Out, steals, prog.frameEnds, &prog.wu)
}

// ensureFrame builds the shared per-frame state the first time any
// processor reaches frame idx.
func (o *oldSim) ensureFrame(e *simengine.Engine, p *simengine.Proc, idx int) {
	if idx <= o.inited {
		return
	}
	o.inited = idx
	o.fr = o.w.Frames[idx]
	chunk := o.opt.ChunkSize
	if chunk < 1 {
		chunk = oldalg.DefaultChunkSize(o.fr.M.H, o.opt.Procs)
	}
	// The old algorithm blindly composites the whole intermediate image.
	o.queue = par.NewInterleaved(0, o.fr.M.H, chunk, o.opt.Procs)
	ts := o.opt.TileSize
	if ts < 1 {
		ts = 32
	}
	o.tiles = o.tiles[:0]
	for y := 0; y < o.fr.Out.H; y += ts {
		for x := 0; x < o.fr.Out.W; x += ts {
			o.tiles = append(o.tiles, [4]int{x, y, min(x+ts, o.fr.Out.W), min(y+ts, o.fr.Out.H)})
		}
	}
	e.Work(p, frameSetupCycles)
}

// Step implements simengine.Program.
func (o *oldSim) Step(e *simengine.Engine, p *simengine.Proc) bool {
	st := p.UserData.(*oldProcState)
	switch st.phase {
	case opInit:
		if st.frame >= len(o.w.Views) {
			return false
		}
		o.ensureFrame(e, p, st.frame)
		fr := o.fr
		st.cc = fr.NewCompositeCtx()
		st.cc.Tracer = st.tracer
		st.cc.Arrays = o.w.CompArrays(fr.F.Axis)
		st.wc = warp.NewCtx(&fr.F, fr.M, fr.Out)
		st.wc.Tracer = st.tracer
		st.wc.Arrays = o.w.WarpArrays()
		st.tileSeq = 0
		st.hasChunk = false
		p.SetPhase("composite")
		st.phase = opComposite
		return true

	case opComposite:
		if !st.hasChunk {
			e.Acquire(p, &o.qlock)
			e.Work(p, queueOpCycles)
			c, stolen, ok := o.queue.Next(p.ID)
			e.Release(p, &o.qlock)
			if !ok {
				// Global barrier between compositing and warping; the wait
				// is charged to the compositing phase (it is compositing
				// imbalance plus the barrier operation).
				st.phase = opWarp
				e.BarrierArrive(p, &o.phaseBar)
				return true
			}
			if stolen {
				st.steals++
			}
			st.chunk, st.row, st.hasChunk = c, c.Lo, true
			return true
		}
		st.tracer.SetNow(p.Clock)
		cyc := st.cc.Scanline(st.row, &st.ccCnt)
		e.Work(p, cyc)
		e.DrainTracer(p)
		st.row++
		if st.row >= st.chunk.Hi {
			st.hasChunk = false
		}
		return true

	case opWarp:
		p.SetPhase("warp")
		tile := p.ID + st.tileSeq*o.opt.Procs
		if tile >= len(o.tiles) {
			st.phase = opFrameDone
			e.BarrierArrive(p, &o.frameBar)
			return true
		}
		st.tileSeq++
		tl := o.tiles[tile]
		st.tracer.SetNow(p.Clock)
		before := st.wcCnt.Cycles
		st.wc.WarpTile(tl[0], tl[1], tl[2], tl[3], &st.wcCnt)
		e.Work(p, st.wcCnt.Cycles-before)
		e.DrainTracer(p)
		return true

	case opFrameDone:
		if st.frame == len(o.frameEnds) {
			// First processor past the frame barrier records the frame end;
			// after the warm-up frame the memory statistics are reset so
			// steady-state numbers exclude cold misses (as the paper does).
			o.frameEnds = append(o.frameEnds, p.Clock)
			if st.frame == 0 && len(o.w.Views) > 1 {
				o.be.resetStats()
				o.wu.take(e)
			}
		}
		st.frame++
		st.phase = opInit
		return true
	}
	return false
}
