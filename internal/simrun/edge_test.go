package simrun

import (
	"math"
	"testing"

	"shearwarp/internal/img"
	"shearwarp/internal/machines"
	"shearwarp/internal/raycast"
	"shearwarp/internal/render"
	"shearwarp/internal/vol"
)

// helpers for the ray-cast sim tests
func newRaycastForTest(r *render.Renderer) *raycast.Renderer {
	return raycast.New(r.Classified)
}

func renderRaycast(rc *raycast.Renderer, fr *render.Frame) *img.Final {
	var cnt raycast.Counters
	return rc.Render(&fr.F, &cnt)
}

// An animation that crosses the 45-degree yaw boundary forces a principal-
// axis flip mid-sequence: the workload must register both encodings and
// the new algorithm must invalidate its profile.
func TestAxisFlipAnimation(t *testing.T) {
	r := render.New(vol.MRIBrain(20), render.Options{})
	views := [][2]float64{{0.6, 0.2}, {0.75, 0.2}, {0.9, 0.2}} // ~34..52 deg
	w := NewWorkload(r, views)

	axes := map[int]bool{}
	for _, fr := range w.Frames {
		axes[int(fr.F.Axis)] = true
	}
	if len(axes) < 2 {
		t.Skip("rotation did not cross an axis boundary at this geometry")
	}
	want, _ := r.RenderSerial(views[2][0], views[2][1])
	for _, procs := range []int{1, 4} {
		if res := RunOld(w, OldOptions{Machine: machines.Simulator(), Procs: procs}); !img.Equal(want, res.LastImage) {
			t.Fatalf("old sim wrong across axis flip at P=%d", procs)
		}
		if res := RunNew(w, NewOptions{Machine: machines.Simulator(), Procs: procs}); !img.Equal(want, res.LastImage) {
			t.Fatalf("new sim wrong across axis flip at P=%d", procs)
		}
	}
}

func TestSingleFrameWorkload(t *testing.T) {
	r := render.New(vol.MRIBrain(16), render.Options{})
	w := NewWorkload(r, [][2]float64{{0.4, 0.2}})
	res := RunOld(w, OldOptions{Machine: machines.Simulator(), Procs: 2})
	if res.SteadyCycles() != res.Finish {
		t.Fatal("single-frame steady metric should be the finish time")
	}
	want, _ := r.RenderSerial(0.4, 0.2)
	if !img.Equal(want, res.LastImage) {
		t.Fatal("single-frame image wrong")
	}
	// Stats are not reset (no warm-up possible), so cold misses appear.
	if res.Mem.Misses[0] == 0 {
		t.Fatal("single-frame run should report cold misses")
	}
}

func TestMoreProcsThanScanlines(t *testing.T) {
	// A tiny volume with 32 simulated processors: most bands are empty.
	r := render.New(vol.MRIBrain(12), render.Options{})
	w := NewWorkload(r, render.Rotation(3, 0.3, 0.2, 5))
	want, _ := r.RenderSerial(w.Views[2][0], w.Views[2][1])
	res := RunNew(w, NewOptions{Machine: machines.Simulator(), Procs: 32})
	if !img.Equal(want, res.LastImage) {
		t.Fatal("over-provisioned new sim image wrong")
	}
	res = RunOld(w, OldOptions{Machine: machines.Simulator(), Procs: 32})
	if !img.Equal(want, res.LastImage) {
		t.Fatal("over-provisioned old sim image wrong")
	}
}

func TestForceBarrierKeepsImage(t *testing.T) {
	w := testWorkload(t, 20, 3)
	last := w.Views[len(w.Views)-1]
	want, _ := w.R.RenderSerial(last[0], last[1])
	res := RunNew(w, NewOptions{Machine: machines.Simulator(), Procs: 4, ForceBarrier: true})
	if !img.Equal(want, res.LastImage) {
		t.Fatal("forced barrier changed the image")
	}
	// And the composite phase now shows barrier wait.
	if res.SteadyPhases["composite"].SyncWait == 0 {
		t.Fatal("forced barrier recorded no composite-phase sync wait")
	}
}

func TestOpacityCorrectedSimMatchesSerial(t *testing.T) {
	r := render.New(vol.MRIBrain(18), render.Options{OpacityCorrection: true})
	w := NewWorkload(r, render.Rotation(2, 0.4, 0.25, 5))
	want, _ := r.RenderSerial(w.Views[1][0], w.Views[1][1])
	res := RunNew(w, NewOptions{Machine: machines.Simulator(), Procs: 4})
	if !img.Equal(want, res.LastImage) {
		t.Fatal("corrected sim image differs from corrected serial")
	}
}

func TestFirstTouchPlacementRuns(t *testing.T) {
	w := testWorkload(t, 20, 3)
	m := machines.Simulator()
	m.Mem.FirstTouch = true
	m.Name = "Simulator-ft"
	res := RunOld(w, OldOptions{Machine: m, Procs: 8})
	rr := RunOld(w, OldOptions{Machine: machines.Simulator(), Procs: 8})
	// First-touch must not increase the remote fraction.
	ftFrac := float64(res.Mem.Remote) / math.Max(float64(res.Mem.Remote+res.Mem.Local), 1)
	rrFrac := float64(rr.Mem.Remote) / math.Max(float64(rr.Mem.Remote+rr.Mem.Local), 1)
	if ftFrac > rrFrac+0.02 {
		t.Fatalf("first-touch remote fraction %.3f above round-robin %.3f", ftFrac, rrFrac)
	}
	if !img.Equal(res.LastImage, rr.LastImage) {
		t.Fatal("placement policy changed the image")
	}
}

func TestStealsReportedUnderSkew(t *testing.T) {
	// Uniform partition in frame 0 guarantees skew; the sim must record
	// steals deterministically.
	w := testWorkload(t, 24, 2)
	a := RunNew(w, NewOptions{Machine: machines.Simulator(), Procs: 8, StealChunk: 1})
	b := RunNew(w, NewOptions{Machine: machines.Simulator(), Procs: 8, StealChunk: 1})
	if a.Steals == 0 {
		t.Fatal("no steals recorded")
	}
	if a.Steals != b.Steals {
		t.Fatalf("steal counts not deterministic: %d vs %d", a.Steals, b.Steals)
	}
}

func TestRayCastSimMatchesNative(t *testing.T) {
	r := render.New(vol.MRIBrain(20), render.Options{})
	w := NewWorkload(r, render.Rotation(2, 0.4, 0.25, 5))
	res := RunRayCast(w, RayOptions{Machine: machines.Simulator(), Procs: 4})
	// Native untraced reference for the same (last) view.
	rc := newRaycastForTest(r)
	fr := r.Setup(w.Views[1][0], w.Views[1][1])
	want := renderRaycast(rc, fr)
	if !img.Equal(want, res.LastImage) {
		t.Fatal("simulated ray caster image differs from native")
	}
	if res.Mem.Refs == 0 {
		t.Fatal("ray-cast sim emitted no references")
	}
}

func TestRayCasterSpeedsUpBetterThanOldShearWarper(t *testing.T) {
	// Section 3.4.1: "it does not obtain nearly as good self-relative
	// speedup on multiprocessors as a ray caster".
	r := render.New(vol.MRIBrain(28), render.Options{})
	w := NewWorkload(r, render.Rotation(3, 0.3, 0.2, 5))
	m := machines.Simulator()
	const p = 8
	rc1 := RunRayCast(w, RayOptions{Machine: m, Procs: 1}).SteadyCycles()
	rcP := RunRayCast(w, RayOptions{Machine: m, Procs: p}).SteadyCycles()
	sw1 := RunOld(w, OldOptions{Machine: m, Procs: 1}).SteadyCycles()
	swP := RunOld(w, OldOptions{Machine: m, Procs: p}).SteadyCycles()
	rcSpeedup := float64(rc1) / float64(rcP)
	swSpeedup := float64(sw1) / float64(swP)
	if rcSpeedup <= swSpeedup {
		t.Fatalf("ray caster speedup %.2f not above old shear warper %.2f", rcSpeedup, swSpeedup)
	}
}
