package simrun

import (
	"testing"

	"shearwarp/internal/img"
	"shearwarp/internal/machines"
	"shearwarp/internal/memsim"
	"shearwarp/internal/render"
	"shearwarp/internal/vol"
)

func testWorkload(t *testing.T, n, frames int) *Workload {
	t.Helper()
	r := render.New(vol.MRIBrain(n), render.Options{})
	return NewWorkload(r, render.Rotation(frames, 0.3, 0.2, 5))
}

func TestOldSimImageMatchesSerial(t *testing.T) {
	w := testWorkload(t, 20, 2)
	lastView := w.Views[len(w.Views)-1]
	want, _ := w.R.RenderSerial(lastView[0], lastView[1])
	for _, procs := range []int{1, 4} {
		res := RunOld(w, OldOptions{Machine: machines.Simulator(), Procs: procs})
		if !img.Equal(want, res.LastImage) {
			d := img.Compare(want, res.LastImage)
			t.Fatalf("procs=%d: simulated old image differs from serial: %+v", procs, d)
		}
	}
}

func TestNewSimImageMatchesSerial(t *testing.T) {
	w := testWorkload(t, 20, 3)
	lastView := w.Views[len(w.Views)-1]
	want, _ := w.R.RenderSerial(lastView[0], lastView[1])
	for _, procs := range []int{1, 4} {
		res := RunNew(w, NewOptions{Machine: machines.Simulator(), Procs: procs})
		if !img.Equal(want, res.LastImage) {
			d := img.Compare(want, res.LastImage)
			t.Fatalf("procs=%d: simulated new image differs from serial: %+v", procs, d)
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	w := testWorkload(t, 16, 2)
	a := RunOld(w, OldOptions{Machine: machines.DASH(), Procs: 4})
	b := RunOld(w, OldOptions{Machine: machines.DASH(), Procs: 4})
	if a.Finish != b.Finish {
		t.Fatalf("old sim not deterministic: %d vs %d", a.Finish, b.Finish)
	}
	c := RunNew(w, NewOptions{Machine: machines.DASH(), Procs: 4})
	d := RunNew(w, NewOptions{Machine: machines.DASH(), Procs: 4})
	if c.Finish != d.Finish {
		t.Fatalf("new sim not deterministic: %d vs %d", c.Finish, d.Finish)
	}
}

func TestParallelFasterThanSerial(t *testing.T) {
	// Steady-state (post-warm-up) per-frame time must drop with processors.
	// The volume here is toy-sized, so absolute speedups are modest; the
	// benchmark harness exercises realistic sizes.
	w := testWorkload(t, 28, 3)
	m := machines.Simulator()
	t1 := RunOld(w, OldOptions{Machine: m, Procs: 1}).SteadyCycles()
	t4 := RunOld(w, OldOptions{Machine: m, Procs: 4}).SteadyCycles()
	if float64(t1)/float64(t4) < 1.2 {
		t.Fatalf("old speedup at 4 procs only %.2f (T1=%d T4=%d)", float64(t1)/float64(t4), t1, t4)
	}
	n1 := RunNew(w, NewOptions{Machine: m, Procs: 1}).SteadyCycles()
	n4 := RunNew(w, NewOptions{Machine: m, Procs: 4}).SteadyCycles()
	if float64(n1)/float64(n4) < 1.5 {
		t.Fatalf("new speedup at 4 procs only %.2f (T1=%d T4=%d)", float64(n1)/float64(n4), n1, n4)
	}
}

func TestNewReducesTrueSharing(t *testing.T) {
	// The headline cache result (Figure 16): the new algorithm's contiguous
	// same-partition scheme collapses true-sharing misses.
	w := testWorkload(t, 24, 3)
	m := machines.Simulator()
	old := RunOld(w, OldOptions{Machine: m, Procs: 8})
	nw := RunNew(w, NewOptions{Machine: m, Procs: 8})
	oldTS := old.Mem.Misses[memsim.TrueSharing]
	newTS := nw.Mem.Misses[memsim.TrueSharing]
	if newTS >= oldTS {
		t.Fatalf("true sharing not reduced: old %d, new %d", oldTS, newTS)
	}
	if newTS*2 > oldTS {
		t.Logf("warning: true sharing only reduced %d -> %d", oldTS, newTS)
	}
}

func TestNewOutperformsOldAtScale(t *testing.T) {
	w := testWorkload(t, 24, 3)
	m := machines.DASH()
	oldT := RunOld(w, OldOptions{Machine: m, Procs: 16}).Finish
	newT := RunNew(w, NewOptions{Machine: m, Procs: 16}).Finish
	if newT >= oldT {
		t.Fatalf("new algorithm not faster at 16 procs on DASH: old %d, new %d", oldT, newT)
	}
}

func TestPhaseBreakdownsPresent(t *testing.T) {
	w := testWorkload(t, 16, 2)
	res := RunOld(w, OldOptions{Machine: machines.Simulator(), Procs: 2})
	if res.Phases["composite"].Busy == 0 {
		t.Fatal("no composite busy time recorded")
	}
	if res.Phases["warp"].Busy == 0 {
		t.Fatal("no warp busy time recorded")
	}
	if res.Mem.Refs == 0 {
		t.Fatal("no memory references simulated")
	}
	if res.MissRate <= 0 || res.MissRate >= 1 {
		t.Fatalf("implausible miss rate %g", res.MissRate)
	}
}

func TestCompositeDominatesWarp(t *testing.T) {
	// The compositing phase is O(n^3) and dominates (section 2).
	w := testWorkload(t, 24, 1)
	res := RunOld(w, OldOptions{Machine: machines.Simulator(), Procs: 1})
	if res.Phases["composite"].Busy <= 2*res.Phases["warp"].Busy {
		t.Fatalf("composite %d not dominant over warp %d",
			res.Phases["composite"].Busy, res.Phases["warp"].Busy)
	}
}

func TestWorkloadReusableAcrossRuns(t *testing.T) {
	w := testWorkload(t, 16, 2)
	a := RunOld(w, OldOptions{Machine: machines.Simulator(), Procs: 2})
	b := RunOld(w, OldOptions{Machine: machines.Simulator(), Procs: 2})
	if a.Finish != b.Finish {
		t.Fatalf("workload reuse changed results: %d vs %d", a.Finish, b.Finish)
	}
	if !img.Equal(a.LastImage, b.LastImage) {
		t.Fatal("workload reuse corrupted images")
	}
}

func TestBreakdownAddsUp(t *testing.T) {
	w := testWorkload(t, 16, 1)
	res := RunOld(w, OldOptions{Machine: machines.DASH(), Procs: 4})
	for pid, b := range res.PerProc {
		if b.Total() <= 0 {
			t.Fatalf("proc %d has empty breakdown", pid)
		}
		if b.Total() > res.Finish {
			t.Fatalf("proc %d breakdown %d exceeds finish %d", pid, b.Total(), res.Finish)
		}
	}
}
