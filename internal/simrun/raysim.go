package simrun

import (
	"shearwarp/internal/machines"
	"shearwarp/internal/par"
	"shearwarp/internal/raycast"
	"shearwarp/internal/render"
	"shearwarp/internal/simengine"
)

// RayOptions configures a simulated run of the parallel ray caster (Nieh &
// Levoy's decomposition: interleaved image tiles with stealing). The paper
// uses the ray caster's good self-relative speedup as the foil for the old
// shear warper's poor one (section 3.4.1).
type RayOptions struct {
	Machine  machines.Machine
	Procs    int
	TileSize int // 0 = 8
}

type rayPhase int

const (
	rpInit rayPhase = iota
	rpCast
	rpFrameDone
)

type rayProcState struct {
	phase   rayPhase
	frame   int
	cnt     raycast.Counters
	tracer  backTracer
	tc      raycast.TraceCtx
	tile    [4]int
	hasTile bool
	row     int
	steals  int
}

type raySim struct {
	w   *Workload
	opt RayOptions
	be  backend
	rc  *raycast.Renderer
	tc  raycast.TraceCtx // template: arrays shared, tracer set per proc

	inited   int
	fr       *render.Frame
	tiles    [][4]int
	queue    *par.Interleaved
	qlock    simengine.Lock
	frameBar simengine.Barrier

	frameEnds []int64
	wu        warmup
}

// RunRayCast executes the parallel ray caster on a simulated hardware
// machine over the workload's animation.
func RunRayCast(w *Workload, opt RayOptions) *Result {
	if opt.Procs < 1 {
		opt.Procs = 1
	}
	if opt.TileSize < 1 {
		opt.TileSize = 8
	}
	w.resetImages()
	prog := &raySim{w: w, opt: opt, inited: -1}
	prog.rc, prog.tc = w.RayCaster() // register arrays before the segment snapshot
	be := newHWBackend(opt.Machine.NewSystem(opt.Procs), w)
	prog.be = be
	e := simengine.New(opt.Procs)
	e.BarrierCost = opt.Machine.BarrierCost
	e.LockCost = opt.Machine.LockCost
	prog.frameBar.Expected = opt.Procs
	for _, p := range e.Procs {
		tr := be.tracer(p.ID)
		p.Tracer = tr
		st := &rayProcState{tracer: tr, tc: prog.tc}
		st.tc.Tracer = tr
		p.UserData = st
	}
	e.Run(prog)

	steals := 0
	for _, p := range e.Procs {
		steals += p.UserData.(*rayProcState).steals
	}
	return collect(e, be, w.Frames[len(w.Frames)-1].Out, steals, prog.frameEnds, &prog.wu)
}

func (rs *raySim) ensureFrame(e *simengine.Engine, p *simengine.Proc, idx int) {
	if idx <= rs.inited {
		return
	}
	rs.inited = idx
	rs.fr = rs.w.Frames[idx]
	ts := rs.opt.TileSize
	rs.tiles = rs.tiles[:0]
	for y := 0; y < rs.fr.Out.H; y += ts {
		for x := 0; x < rs.fr.Out.W; x += ts {
			rs.tiles = append(rs.tiles, [4]int{x, y, min(x+ts, rs.fr.Out.W), min(y+ts, rs.fr.Out.H)})
		}
	}
	rs.queue = par.NewInterleaved(0, len(rs.tiles), 1, rs.opt.Procs)
	e.Work(p, frameSetupCycles)
}

// Step implements simengine.Program: the quantum is one tile row of rays.
func (rs *raySim) Step(e *simengine.Engine, p *simengine.Proc) bool {
	st := p.UserData.(*rayProcState)
	switch st.phase {
	case rpInit:
		if st.frame >= len(rs.w.Views) {
			return false
		}
		rs.ensureFrame(e, p, st.frame)
		st.hasTile = false
		p.SetPhase("raycast")
		st.phase = rpCast
		return true

	case rpCast:
		if !st.hasTile {
			e.Acquire(p, &rs.qlock)
			e.Work(p, queueOpCycles)
			c, stolen, ok := rs.queue.Next(p.ID)
			e.Release(p, &rs.qlock)
			if !ok {
				st.phase = rpFrameDone
				e.BarrierArrive(p, &rs.frameBar)
				return true
			}
			if stolen {
				st.steals++
			}
			st.tile = rs.tiles[c.Lo]
			st.row = st.tile[1]
			st.hasTile = true
			return true
		}
		st.tracer.SetNow(p.Clock)
		before := st.cnt.Cycles
		rs.rc.RenderTileTraced(&rs.fr.F, rs.fr.Out,
			st.tile[0], st.row, st.tile[2], st.row+1, &st.cnt, &st.tc)
		e.Work(p, st.cnt.Cycles-before)
		e.DrainTracer(p)
		st.row++
		if st.row >= st.tile[3] {
			st.hasTile = false
		}
		return true

	case rpFrameDone:
		if st.frame == len(rs.frameEnds) {
			rs.frameEnds = append(rs.frameEnds, p.Clock)
			if st.frame == 0 && len(rs.w.Views) > 1 {
				rs.be.resetStats()
				rs.wu.take(e)
			}
		}
		st.frame++
		st.phase = rpInit
		return true
	}
	return false
}
