// Package simrun executes the old and new parallel shear-warp algorithms
// on the deterministic multiprocessor simulator: it lays the renderer's
// shared arrays out in a simulated address space, drives the real kernels
// as simengine programs (one intermediate scanline or warp quantum per
// step), and returns per-processor time breakdowns plus memory-system
// statistics. Every cache-behaviour and speedup figure in the paper is
// regenerated through this package.
package simrun

import (
	"shearwarp/internal/composite"
	"shearwarp/internal/img"
	"shearwarp/internal/memsim"
	"shearwarp/internal/raycast"
	"shearwarp/internal/render"
	"shearwarp/internal/simengine"
	"shearwarp/internal/svmsim"
	"shearwarp/internal/trace"
	"shearwarp/internal/warp"
	"shearwarp/internal/xform"
)

// backTracer is what the drivers need from a per-processor tracer: the
// kernels' reference recording plus the engine's time-keeping.
type backTracer interface {
	trace.Tracer
	simengine.ProcTracer
}

// backend abstracts the simulated memory system so the drivers run
// unchanged on the hardware cache-coherent machines and on the SVM
// platform.
type backend interface {
	tracer(proc int) backTracer
	resetStats()
	// barrierExtra returns the barrier-release delay hook (HLRC diff
	// flushes) or nil for hardware machines.
	barrierExtra() func(int64) int64
	fill(res *Result)
}

type hwBackend struct{ sys *memsim.System }

// newHWBackend builds the hardware backend with per-array miss attribution
// enabled from the workload's segment table.
func newHWBackend(sys *memsim.System, w *Workload) hwBackend {
	sys.SetSegments(w.Space.Segments())
	return hwBackend{sys: sys}
}

func (b hwBackend) tracer(p int) backTracer         { return &memsim.Tracer{Sys: b.sys, Proc: p} }
func (b hwBackend) resetStats()                     { b.sys.ResetStats() }
func (b hwBackend) barrierExtra() func(int64) int64 { return nil }
func (b hwBackend) fill(res *Result) {
	res.Mem = b.sys.Totals()
	res.MemPer = append(res.MemPer, b.sys.Stats...)
	res.MissRate = b.sys.MissRate()
	res.SegMisses = b.sys.SegmentMisses()
}

type svmBackend struct{ sys *svmsim.System }

func (b svmBackend) tracer(p int) backTracer         { return &svmsim.Tracer{Sys: b.sys, Proc: p} }
func (b svmBackend) resetStats()                     { b.sys.ResetStats() }
func (b svmBackend) barrierExtra() func(int64) int64 { return b.sys.BarrierFlush }
func (b svmBackend) fill(res *Result) {
	t := b.sys.Totals()
	res.Svm = &t
	res.SvmPer = append(res.SvmPer, b.sys.Stats...)
	res.SvmFlushedPages = b.sys.FlushedPages
}

// Workload is a volume plus an animation sequence, prepared once and
// reusable across simulated machines and processor counts. The shared
// arrays are registered once so addresses — and therefore cross-frame
// temporal locality — are stable across frames.
type Workload struct {
	R      *render.Renderer
	Views  [][2]float64
	Frames []*render.Frame

	Space      *trace.AddrSpace
	intPix     trace.Array
	intLinks   trace.Array
	finalPix   trace.Array
	profileArr trace.Array
	encRunLens map[xform.Axis]trace.Array
	encVox     map[xform.Axis]trace.Array

	// Ray-casting baseline state, built on first use (its octree and dense
	// voxel array register once so addresses are stable across runs).
	rc   *raycast.Renderer
	rcTC raycast.TraceCtx
}

// NewWorkload prepares the frames and the simulated address space for a
// renderer and view sequence.
func NewWorkload(r *render.Renderer, views [][2]float64) *Workload {
	w := &Workload{
		R: r, Views: views,
		Space:      trace.NewAddrSpace(),
		encRunLens: map[xform.Axis]trace.Array{},
		encVox:     map[xform.Axis]trace.Array{},
	}
	maxIntPix, maxIntH, maxFinPix := 0, 0, 0
	for _, v := range views {
		fr := r.Setup(v[0], v[1])
		w.Frames = append(w.Frames, fr)
		maxIntPix = max(maxIntPix, fr.M.W*fr.M.H)
		maxIntH = max(maxIntH, fr.M.H)
		maxFinPix = max(maxFinPix, fr.Out.W*fr.Out.H)
		if _, ok := w.encRunLens[fr.F.Axis]; !ok {
			w.encRunLens[fr.F.Axis] = w.Space.Register("rle.RunLens", 2, len(fr.RV.RunLens))
			w.encVox[fr.F.Axis] = w.Space.Register("rle.Vox", 4, len(fr.RV.Vox))
		}
	}
	// Image buffers are reused across frames on a real machine; register
	// them once at the maximum size so addresses stay stable.
	w.intPix = w.Space.Register("int.Pix", 16, maxIntPix)
	w.intLinks = w.Space.Register("int.Links", 4, maxIntPix)
	w.finalPix = w.Space.Register("final.Pix", 4, maxFinPix)
	w.profileArr = w.Space.Register("profile", 8, maxIntH)
	return w
}

// CompArrays returns the compositing kernel's trace handles for an axis.
func (w *Workload) CompArrays(axis xform.Axis) composite.Arrays {
	return composite.Arrays{
		RunLens:  w.encRunLens[axis],
		Vox:      w.encVox[axis],
		IntPix:   w.intPix,
		IntLinks: w.intLinks,
	}
}

// WarpArrays returns the warp kernel's trace handles.
func (w *Workload) WarpArrays() warp.Arrays {
	return warp.Arrays{IntPix: w.intPix, FinalPix: w.finalPix}
}

// ProfileArray returns the handle of the shared per-scanline profile.
func (w *Workload) ProfileArray() trace.Array { return w.profileArr }

// RayCaster returns the workload's ray-casting baseline and its trace
// context (without a tracer bound), building and registering them on first
// use.
func (w *Workload) RayCaster() (*raycast.Renderer, raycast.TraceCtx) {
	if w.rc == nil {
		w.rc = raycast.New(w.R.Classified)
		w.rcTC = w.rc.RegisterArrays(w.Space, w.finalPix)
	}
	return w.rc, w.rcTC
}

// resetImages clears every frame's images so the workload can be re-run.
func (w *Workload) resetImages() {
	for _, fr := range w.Frames {
		fr.M.Clear()
		fr.Out.Clear()
	}
}

// Result is the outcome of one simulated execution.
//
// The first frame of a workload is a warm-up: it loads the volume into the
// caches (and, for the new algorithm, collects the first profile). Like the
// paper — which measures steady-state animation frames and explicitly omits
// cold misses from its breakdowns (Figure 7) — the memory statistics are
// reset after frame 0 and SteadyCycles reports per-frame time excluding it.
type Result struct {
	Finish    int64   // simulated completion time (max proc clock), cycles
	FrameEnds []int64 // simulated time at each frame's closing barrier
	PerProc   []simengine.Breakdown
	// SteadyPerProc excludes the warm-up frame's cycles.
	SteadyPerProc []simengine.Breakdown
	// SteadyPhases maps phase names to steady-state aggregate breakdowns.
	SteadyPhases map[string]simengine.Breakdown
	// Phases maps "composite" / "warp" to aggregate breakdowns.
	Phases map[string]simengine.Breakdown
	// Mem aggregates memory-system statistics over all processors.
	Mem memsim.ProcStats
	// MemPer holds per-processor memory statistics.
	MemPer []memsim.ProcStats
	// MissRate is total misses / references.
	MissRate float64
	// LastImage is the final frame's output, for correctness checks.
	LastImage *img.Final
	// Steals counts stolen task units across processors.
	Steals int
	// SegMisses attributes misses to the shared arrays (hardware machines
	// with attribution enabled).
	SegMisses []memsim.SegMisses
	// Svm holds SVM-platform statistics (nil on hardware machines).
	Svm             *svmsim.ProcStats
	SvmPer          []svmsim.ProcStats
	SvmFlushedPages int64
}

// SteadyCycles returns the steady-state per-frame time: the average frame
// time after the warm-up frame (or the total time when there is only one
// frame).
func (r *Result) SteadyCycles() int64 {
	if len(r.FrameEnds) < 2 {
		return r.Finish
	}
	return (r.FrameEnds[len(r.FrameEnds)-1] - r.FrameEnds[0]) / int64(len(r.FrameEnds)-1)
}

// warmup snapshots per-processor accounting at the end of the warm-up
// frame so steady-state breakdowns can be derived.
type warmup struct {
	proc  []simengine.Breakdown
	phase []map[string]simengine.Breakdown
	taken bool
}

// take records the warm-up snapshot (once).
func (wu *warmup) take(e *simengine.Engine) {
	if wu.taken {
		return
	}
	wu.taken = true
	for _, p := range e.Procs {
		wu.proc = append(wu.proc, p.Total)
		snap := map[string]simengine.Breakdown{}
		for name, b := range p.ByPhase {
			snap[name] = *b
		}
		wu.phase = append(wu.phase, snap)
	}
}

func sub(a, b simengine.Breakdown) simengine.Breakdown {
	return simengine.Breakdown{
		Busy:     a.Busy - b.Busy,
		MemStall: a.MemStall - b.MemStall,
		SyncWait: a.SyncWait - b.SyncWait,
		LockWait: a.LockWait - b.LockWait,
	}
}

// collect gathers engine statistics into a Result; the backend fills in
// its memory-system statistics afterwards.
func collect(e *simengine.Engine, be backend, lastImage *img.Final, steals int, frameEnds []int64, wu *warmup) *Result {
	res := &Result{
		Phases:       map[string]simengine.Breakdown{},
		SteadyPhases: map[string]simengine.Breakdown{},
		LastImage:    lastImage,
		Steals:       steals,
		FrameEnds:    frameEnds,
	}
	for i, p := range e.Procs {
		res.PerProc = append(res.PerProc, p.Total)
		if p.Clock > res.Finish {
			res.Finish = p.Clock
		}
		steady := p.Total
		var warmPhases map[string]simengine.Breakdown
		if wu != nil && wu.taken {
			steady = sub(p.Total, wu.proc[i])
			warmPhases = wu.phase[i]
		}
		res.SteadyPerProc = append(res.SteadyPerProc, steady)
		for name, b := range p.ByPhase {
			ph := res.Phases[name]
			ph.Add(*b)
			res.Phases[name] = ph
			sp := res.SteadyPhases[name]
			if w, ok := warmPhases[name]; ok {
				sp.Add(sub(*b, w))
			} else {
				sp.Add(*b)
			}
			res.SteadyPhases[name] = sp
		}
	}
	be.fill(res)
	return res
}

// frameSetupCycles is the modeled serial cost of per-frame setup
// (factorization, queue construction), charged to the processor that
// initializes the frame.
const frameSetupCycles = 400

// queueOpCycles is the modeled cost of one task-queue operation inside its
// critical section.
const queueOpCycles = 25

// atomicOpCycles is the modeled cost of a lock-free synchronized update
// (the new algorithm's private band-head advance and its per-band
// completion counter; section 4's "no chunks in the initial assignment").
const atomicOpCycles = 60

// warpRowsPerQuantum bounds how many final-image rows a warp step covers
// between scheduling points.
const warpRowsPerQuantum = 4
