package simrun

import (
	"math"

	"shearwarp/internal/composite"
	"shearwarp/internal/machines"
	"shearwarp/internal/newalg"
	"shearwarp/internal/par"
	"shearwarp/internal/render"
	"shearwarp/internal/simengine"
	"shearwarp/internal/svmsim"
	"shearwarp/internal/warp"
	"shearwarp/internal/xform"
)

// NewOptions configures a simulated run of the new parallel algorithm.
type NewOptions struct {
	Machine      machines.Machine
	Procs        int
	StealChunk   int     // 0 = newalg.StealChunkSize heuristic
	ReprofileDeg float64 // 0 = 15 degrees
	DisableSteal bool
	// ForceBarrier re-inserts a global barrier between the compositing and
	// warp phases (ablation of the section 5.5.2 barrier elimination).
	ForceBarrier bool

	// granBytes is the coherence granularity fed to the steal-chunk
	// heuristic; runOld/runNew set it from the machine or SVM page size.
	granBytes int
}

type newPhase int

const (
	npInit newPhase = iota
	npComposite
	npWarp
	npFrameDone
)

type newProcState struct {
	phase  newPhase
	frame  int
	cc     *composite.Ctx
	wc     *warp.Ctx
	ccCnt  composite.Counters
	wcCnt  warp.Counters
	tracer backTracer

	chunk     par.Chunk
	chunkBand int
	hasChunk  bool
	row       int
	steals    int

	tasks     []warp.Task
	taskIdx   int
	needNext  int // next band dependency to await for the current task
	rowCursor int
}

type newSim struct {
	w   *Workload
	opt NewOptions
	be  backend

	// Cross-frame profile state (mirrors newalg.Renderer).
	profile    []int64
	newProfile []int64
	profValid  bool
	profAxis   xform.Axis
	profYaw    float64
	profPitch  float64
	profImageH int
	profSj     float64
	profTv     float64

	// Per-frame shared state.
	inited      int
	fr          *render.Frame
	bands       *par.Bands
	bandLock    simengine.Lock
	conds       []simengine.Cond
	boundaries  []int
	region      newalg.Region
	profiling   bool
	usedProfile bool
	warpTasks   []warp.Task
	frameBar    simengine.Barrier
	phaseBar    simengine.Barrier

	frameEnds []int64
	wu        warmup
}

// RunNew executes the new parallel algorithm on a simulated hardware
// cache-coherent machine.
func RunNew(w *Workload, opt NewOptions) *Result {
	if opt.Procs < 1 {
		opt.Procs = 1
	}
	opt.granBytes = opt.Machine.Mem.LineBytes
	be := newHWBackend(opt.Machine.NewSystem(opt.Procs), w)
	return runNew(w, opt, be, opt.Machine.BarrierCost, opt.Machine.LockCost)
}

// RunNewSVM executes the new parallel algorithm on the SVM platform. The
// steal granularity heuristic sees the page size, so steals stay
// page-coarse (the access-pattern coarsening the paper credits for the SVM
// win).
func RunNewSVM(w *Workload, opt SVMOptions) *Result {
	opt.normalize()
	be := svmBackend{sys: svmsim.New(opt.Cfg)}
	nw := NewOptions{
		Procs: opt.Procs, StealChunk: opt.StealChunk,
		ReprofileDeg: opt.ReprofileDeg, DisableSteal: opt.DisableSteal,
		ForceBarrier: opt.ForceBarrier,
		granBytes:    opt.Cfg.PageBytes,
	}
	return runNew(w, nw, be, opt.Cfg.BarrierCost, opt.Cfg.LockCost)
}

func runNew(w *Workload, opt NewOptions, be backend, barrierCost, lockCost int64) *Result {
	if opt.ReprofileDeg == 0 {
		opt.ReprofileDeg = 15
	}
	if opt.granBytes == 0 {
		opt.granBytes = 64
	}
	w.resetImages()
	e := simengine.New(opt.Procs)
	e.BarrierCost = barrierCost
	e.LockCost = lockCost

	prog := &newSim{w: w, opt: opt, be: be, inited: -1}
	prog.frameBar.Expected = opt.Procs
	prog.frameBar.ExtraDelay = be.barrierExtra()
	prog.phaseBar.Expected = opt.Procs
	prog.phaseBar.ExtraDelay = be.barrierExtra()
	for _, p := range e.Procs {
		tr := be.tracer(p.ID)
		p.Tracer = tr
		p.UserData = &newProcState{tracer: tr}
	}
	e.Run(prog)

	steals := 0
	for _, p := range e.Procs {
		steals += p.UserData.(*newProcState).steals
	}
	return collect(e, be, w.Frames[len(w.Frames)-1].Out, steals, prog.frameEnds, &prog.wu)
}

func (n *newSim) needProfile(fr *render.Frame, yaw, pitch float64) bool {
	if !n.profValid || n.profAxis != fr.F.Axis {
		return true
	}
	if d := n.profImageH - fr.M.H; d > newalg.MaxImageDrift || d < -newalg.MaxImageDrift {
		return true
	}
	limit := n.opt.ReprofileDeg * math.Pi / 180
	return math.Abs(yaw-n.profYaw) >= limit || math.Abs(pitch-n.profPitch) >= limit
}

// ensureFrame builds the shared per-frame state: partition, bands,
// completion conditions and warp tasks (mirroring newalg's native path).
func (n *newSim) ensureFrame(e *simengine.Engine, p *simengine.Proc, idx int) {
	if idx <= n.inited {
		return
	}
	n.inited = idx
	n.fr = n.w.Frames[idx]
	yaw, pitch := n.w.Views[idx][0], n.w.Views[idx][1]
	n.profiling = n.needProfile(n.fr, yaw, pitch)

	drift := 0
	if n.profValid {
		drift = n.profImageH - n.fr.M.H
		if drift < 0 {
			drift = -drift
		}
	}
	n.usedProfile = n.profValid && n.profAxis == n.fr.F.Axis && drift <= newalg.MaxImageDrift
	if n.usedProfile {
		region := newalg.FindRegion(n.profile)
		if region.Hi > region.Lo {
			shift0 := math.Abs(n.fr.F.Tv - n.profTv)
			shiftN := math.Abs((n.fr.F.Sj-n.profSj)*float64(n.fr.F.Nk-1) + (n.fr.F.Tv - n.profTv))
			b := int(math.Ceil(math.Max(shift0, shiftN))) + 1
			region.Lo = max(region.Lo-b, 0)
			region.Hi = min(region.Hi+b, n.fr.M.H)
		}
		n.region = region
		n.boundaries = newalg.Partition(newalg.PaddedProfile(n.profile, region.Hi), region, n.opt.Procs, 1)
	} else {
		n.region = newalg.Region{Lo: 0, Hi: n.fr.M.H}
		n.boundaries = newalg.UniformPartition(n.fr.M.H, n.opt.Procs)
	}

	steal := n.opt.StealChunk
	if steal < 1 {
		steal = newalg.StealChunkSize(n.region.Hi-n.region.Lo, n.opt.Procs, n.opt.granBytes)
	}
	n.bands = par.NewBands(n.boundaries, steal)
	n.bandLock = simengine.Lock{}
	n.conds = make([]simengine.Cond, n.opt.Procs)
	for b := range n.conds {
		if n.bands.Complete(b) {
			e.CondSignal(&n.conds[b], p.Clock)
		}
	}
	n.warpTasks = warp.PartitionTasks(n.boundaries)
	if n.profiling {
		n.newProfile = make([]int64, n.fr.M.H)
	}
	e.Work(p, frameSetupCycles)
}

// finishFrame commits the collected profile after the frame barrier.
func (n *newSim) finishFrame(idx int) {
	if !n.profiling || idx != n.inited {
		return
	}
	fr := n.w.Frames[idx]
	n.profile = n.newProfile
	n.profValid = true
	n.profAxis = fr.F.Axis
	n.profYaw, n.profPitch = n.w.Views[idx][0], n.w.Views[idx][1]
	n.profImageH = fr.M.H
	n.profSj, n.profTv = fr.F.Sj, fr.F.Tv
	n.profiling = false
}

// Step implements simengine.Program.
func (n *newSim) Step(e *simengine.Engine, p *simengine.Proc) bool {
	st := p.UserData.(*newProcState)
	switch st.phase {
	case npInit:
		if st.frame >= len(n.w.Views) {
			return false
		}
		n.ensureFrame(e, p, st.frame)
		fr := n.fr
		st.cc = fr.NewCompositeCtx()
		st.cc.Tracer = st.tracer
		st.cc.Arrays = n.w.CompArrays(fr.F.Axis)
		st.wc = warp.NewCtx(&fr.F, fr.M, fr.Out)
		st.wc.Tracer = st.tracer
		st.wc.Arrays = n.w.WarpArrays()
		st.hasChunk = false
		// Own warp tasks for this frame.
		st.tasks = st.tasks[:0]
		for _, tk := range n.warpTasks {
			if tk.Owner == p.ID {
				st.tasks = append(st.tasks, tk)
			}
		}
		st.taskIdx, st.needNext, st.rowCursor = 0, -1, 0
		p.SetPhase("composite")
		// The partition computation: each processor scans its share of the
		// cumulative profile (parallel prefix, section 4.3) and finds its
		// boundary by binary search.
		if n.usedProfile {
			share := (n.region.Hi - n.region.Lo) / n.opt.Procs
			lo := n.region.Lo + p.ID*share
			st.tracer.SetNow(p.Clock)
			st.tracer.Read(n.w.ProfileArray(), lo, max(share, 1))
			e.Work(p, int64(2*share+30))
			e.DrainTracer(p)
		}
		st.phase = npComposite
		return true

	case npComposite:
		if !st.hasChunk {
			// Own-band consumption is lock-free: the owner advances a
			// private head against a shared tail bound (the contiguous
			// initial assignment has no task queue, section 4.1).
			e.Work(p, atomicOpCycles)
			c, ok := n.bands.TakeOwn(p.ID)
			band := p.ID
			if !ok && !n.opt.DisableSteal {
				// Stealing mutates another band's bounds: that takes the
				// steal lock (section 4.4).
				e.Acquire(p, &n.bandLock)
				e.Work(p, queueOpCycles)
				if cs, vb, oks := n.bands.TakeSteal(); oks {
					c, band, ok = cs, vb, true
					st.steals++
				}
				e.Release(p, &n.bandLock)
			}
			if !ok {
				st.phase = npWarp
				if n.opt.ForceBarrier {
					// Ablation: the old algorithm's global phase barrier.
					e.BarrierArrive(p, &n.phaseBar)
					return true
				}
				p.SetPhase("warp")
				return true
			}
			st.chunk, st.chunkBand, st.row, st.hasChunk = c, band, c.Lo, true
			return true
		}
		st.tracer.SetNow(p.Clock)
		before := st.ccCnt.Samples
		cyc := st.cc.Scanline(st.row, &st.ccCnt)
		e.Work(p, cyc)
		if n.profiling {
			e.Work(p, newalg.ProfileOverheadCycles(cyc))
			if st.ccCnt.Samples == before {
				n.newProfile[st.row] = 0
			} else {
				n.newProfile[st.row] = cyc
			}
			st.tracer.Write(n.w.ProfileArray(), st.row, 1)
		}
		e.DrainTracer(p)
		st.row++
		if st.row >= st.chunk.Hi {
			st.hasChunk = false
			// Per-band completion counter: an atomic decrement.
			e.Work(p, atomicOpCycles)
			done := n.bands.MarkDone(st.chunkBand, st.chunk.Hi-st.chunk.Lo)
			if done {
				e.CondSignal(&n.conds[st.chunkBand], p.Clock)
			}
		}
		return true

	case npWarp:
		p.SetPhase("warp")
		if st.taskIdx >= len(st.tasks) {
			st.phase = npFrameDone
			e.BarrierArrive(p, &n.frameBar)
			return true
		}
		tk := st.tasks[st.taskIdx]
		// Await the compositing bands this task's reads depend on.
		if st.needNext < 0 {
			st.needNext = tk.NeedLo
		}
		for st.needNext <= tk.NeedHi {
			b := st.needNext
			st.needNext++
			if e.CondWait(p, &n.conds[b]) {
				return true
			}
		}
		// Warp a quantum of final-image rows.
		st.tracer.SetNow(p.Clock)
		before := st.wcCnt.Cycles
		hi := min(st.rowCursor+warpRowsPerQuantum, n.fr.Out.H)
		for y := st.rowCursor; y < hi; y++ {
			if x0, x1, ok := st.wc.RowSpan(y, tk.Band); ok {
				st.wc.WarpSpan(y, x0, x1, &st.wcCnt)
			}
		}
		e.Work(p, st.wcCnt.Cycles-before+int64(hi-st.rowCursor))
		e.DrainTracer(p)
		st.rowCursor = hi
		if st.rowCursor >= n.fr.Out.H {
			st.taskIdx++
			st.needNext = -1
			st.rowCursor = 0
		}
		return true

	case npFrameDone:
		if st.frame == len(n.frameEnds) {
			n.frameEnds = append(n.frameEnds, p.Clock)
			if st.frame == 0 && len(n.w.Views) > 1 {
				n.be.resetStats()
				n.wu.take(e)
			}
		}
		n.finishFrame(st.frame)
		st.frame++
		st.phase = npInit
		return true
	}
	return false
}
