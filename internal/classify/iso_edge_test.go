package classify

// Edge-case tests for the isosurface transfer function and the
// classifications it produces: the exact threshold density, all-below
// and all-above volumes, single-voxel surface crossings, and gradient
// shading at the volume boundary where central differences read
// out-of-bounds neighbors as zero.

import (
	"testing"

	"shearwarp/internal/vol"
)

// TestIsoTransferThresholdExact pins the >= comparison: a density equal
// to the threshold is on the surface (fully opaque), one below is fully
// transparent, and the output is binary — no partial opacities exist.
func TestIsoTransferThresholdExact(t *testing.T) {
	for _, thr := range []uint8{1, 64, 128, 200, 255} {
		tf := IsoTransfer(thr)
		cases := []struct {
			name    string
			density uint8
			opaque  bool
		}{
			{"zero", 0, thr == 0},
			{"below", thr - 1, false},
			{"exact", thr, true},
			{"above", uint8(min(int(thr)+1, 255)), true},
			{"max", 255, true},
		}
		for _, tc := range cases {
			a, r, g, b := tf(tc.density, 0)
			if tc.opaque {
				if a != 1 {
					t.Errorf("thr %d %s: alpha = %v, want 1", thr, tc.name, a)
				}
				if r != 0.95 || g != 0.93 || b != 0.88 {
					t.Errorf("thr %d %s: base color (%v,%v,%v), want the fixed surface color", thr, tc.name, r, g, b)
				}
			} else if a != 0 || r != 0 || g != 0 || b != 0 {
				t.Errorf("thr %d %s: (%v,%v,%v,%v), want fully transparent", thr, tc.name, a, r, g, b)
			}
		}
		// The gradient magnitude must not leak into the opacity decision
		// (unlike CTTransfer, the iso surface is purely a density test).
		if a, _, _, _ := tf(thr, 1e6); a != 1 {
			t.Errorf("thr %d: huge gradient changed the surface decision (alpha %v)", thr, a)
		}
	}
}

// TestIsoAllBelowAllAbove classifies uniform cubes on either side of the
// threshold, via both the serial and parallel classifiers (allVoxels
// asserts they agree): a cube strictly below the threshold is fully
// transparent, a cube at/above it is fully opaque everywhere — interior
// voxels (zero gradient, flat shade) and boundary voxels (density cliff
// at the volume edge, directional shade) alike.
func TestIsoAllBelowAllAbove(t *testing.T) {
	const thr = 128
	opt := Options{Transfer: IsoTransfer(thr)}

	below := allVoxels(t, 8, thr-1, opt)
	for i, vx := range below.Voxels {
		if vx != 0 {
			t.Fatalf("below-threshold cube: voxel %d = %#x, want transparent", i, vx)
		}
	}
	if f := below.TransparentFrac(); f != 1 {
		t.Fatalf("below-threshold TransparentFrac = %v, want 1", f)
	}

	above := allVoxels(t, 8, thr, opt) // exactly at threshold: on the surface
	for i, vx := range above.Voxels {
		if Opacity(vx) != 255 {
			t.Fatalf("at-threshold cube: voxel %d opacity = %d, want 255", i, Opacity(vx))
		}
		r, g, b := RGB(vx)
		if r == 0 && g == 0 && b == 0 {
			t.Fatalf("at-threshold cube: voxel %d is opaque but black", i)
		}
	}
	if f := above.TransparentFrac(); f != 0 {
		t.Fatalf("at-threshold TransparentFrac = %v, want 0", f)
	}
}

// TestIsoSingleVoxelCrossing sweeps one voxel's density across the
// threshold inside an otherwise-air cube: the voxel must flip from
// invisible to visible exactly at the threshold, and no other voxel may
// ever classify visible.
func TestIsoSingleVoxelCrossing(t *testing.T) {
	const n, thr = 7, 128
	center := (n/2*n+n/2)*n + n/2
	for _, tc := range []struct {
		density uint8
		visible bool
	}{
		{1, false},       // non-air, far below
		{thr - 1, false}, // one below the surface
		{thr, true},      // exactly on the surface
		{thr + 1, true},  // one above
		{255, true},      // saturated
	} {
		data := make([]uint8, n*n*n)
		data[center] = tc.density
		c := Classify(&vol.Volume{Nx: n, Ny: n, Nz: n, Data: data}, Options{Transfer: IsoTransfer(thr)})
		visible := 0
		for i, vx := range c.Voxels {
			if Opacity(vx) >= c.MinOpacity {
				visible++
				if i != center {
					t.Fatalf("density %d: voxel %d visible, expected only the center", tc.density, i)
				}
				if Opacity(vx) != 255 {
					t.Errorf("density %d: surface voxel opacity %d, want binary 255", tc.density, Opacity(vx))
				}
			}
		}
		if tc.visible && visible != 1 {
			t.Errorf("density %d: %d visible voxels, want exactly the center", tc.density, visible)
		}
		if !tc.visible && visible != 0 {
			t.Errorf("density %d: %d visible voxels, want none", tc.density, visible)
		}
	}
}

// TestIsoBoundaryGradientClamping pins the shading behavior where the
// central-difference gradient reads outside the volume: vol.At clamps
// out-of-bounds samples to zero, so a corner voxel of an above-threshold
// cube sees the steepest possible density cliff. The classification must
// stay opaque (shading never affects opacity), the shaded color must be
// non-black (the Lambertian term has an ambient floor), and the corner
// facing the light must shade at least as bright as the opposite corner.
func TestIsoBoundaryGradientClamping(t *testing.T) {
	const n = 6
	data := make([]uint8, n*n*n)
	for i := range data {
		data[i] = 200
	}
	c := Classify(&vol.Volume{Nx: n, Ny: n, Nz: n, Data: data}, Options{Transfer: IsoTransfer(128)})
	at := func(x, y, z int) Voxel { return c.Voxels[(z*n+y)*n+x] }

	lit := at(0, 0, 0)          // faces DefaultLight (upper-left-front)
	shadow := at(n-1, n-1, n-1) // opposite corner, normal points away
	interior := at(n/2, n/2, n/2)
	for name, vx := range map[string]Voxel{"lit corner": lit, "shadow corner": shadow, "interior": interior} {
		if Opacity(vx) != 255 {
			t.Errorf("%s: opacity %d, want 255 (shading must not change opacity)", name, Opacity(vx))
		}
		r, g, b := RGB(vx)
		if int(r)+int(g)+int(b) == 0 {
			t.Errorf("%s: shaded black — ambient floor missing", name)
		}
	}
	lr, _, _ := RGB(lit)
	sr, _, _ := RGB(shadow)
	if lr < sr {
		t.Errorf("lit corner red %d darker than shadow corner %d — boundary gradient sign wrong", lr, sr)
	}
	// Interior voxels of a uniform cube have a zero gradient and take the
	// flat-shade path; corner voxels shade directionally off the clamped
	// boundary gradient. Both paths must agree on the base color family
	// (pure gray scaling of the iso surface color).
	ir, ig, ib := RGB(interior)
	if ir == 0 || ig == 0 || ib == 0 {
		t.Errorf("interior flat shade dropped a channel: (%d,%d,%d)", ir, ig, ib)
	}
}
