package classify

// Edge-case tests for the transfer functions and whole-volume
// classification: the exact breakpoint densities of both transfer
// functions, and the three degenerate volumes a renderer must survive —
// all transparent, fully saturated, and a single non-air voxel.

import (
	"math"
	"testing"

	"shearwarp/internal/vol"
)

// TestMRITransferBreakpoints pins the MRI transfer function at and around
// every breakpoint density (60, 100, 160): opacity must be continuous at
// the region joins, zero strictly below the air threshold, and saturate
// to 1 at density 255.
func TestMRITransferBreakpoints(t *testing.T) {
	cases := []struct {
		name    string
		density uint8
		alpha   float64
	}{
		{"air", 0, 0},
		{"below-threshold", 59, 0},
		{"threshold-exact", 60, 0},             // ramp(60, 60, 100) = 0
		{"soft-tissue-mid", 80, 0.5 * 0.25},    // halfway up the first ramp
		{"join-100", 100, 0.25},                // first ramp tops out where the second starts
		{"bright-mid", 130, 0.25 + 0.5*0.45},   // halfway up the second ramp
		{"join-160", 160, 0.7},                 // second ramp tops out where the third starts
		{"saturated", 255, 1.0},                // 0.7 + ramp(255,160,255)*0.3
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a, r, g, b := MRITransfer(tc.density, 0)
			if math.Abs(a-tc.alpha) > 1e-12 {
				t.Errorf("MRITransfer(%d) alpha = %v, want %v", tc.density, a, tc.alpha)
			}
			// Base color only matters when alpha is nonzero (alpha gates
			// the voxel downstream; at the exact threshold the color is set
			// but the opacity is zero).
			if a > 0 && (r <= 0 || g <= 0 || b <= 0) {
				t.Errorf("MRITransfer(%d): non-transparent voxel with zero color (%v, %v, %v)", tc.density, r, g, b)
			}
		})
	}
	// Continuity at the region joins: approaching a breakpoint from below
	// must meet the value at the breakpoint (no opacity cliff).
	for _, edge := range []float64{100, 160} {
		lo, _, _, _ := MRITransfer(uint8(edge-1), 0)
		hi, _, _, _ := MRITransfer(uint8(edge), 0)
		if math.Abs(hi-lo) > 0.02 {
			t.Errorf("MRI opacity discontinuity at density %v: %v -> %v", edge, lo, hi)
		}
	}
}

// TestCTTransferBreakpoints pins the CT transfer: transparent below the
// bone threshold (120), gradient-weighted above it, saturating at 210.
func TestCTTransferBreakpoints(t *testing.T) {
	for _, d := range []uint8{0, 60, 119, 120} {
		if a, _, _, _ := CTTransfer(d, 100); a != 0 {
			t.Errorf("CTTransfer(%d) alpha = %v, want 0", d, a)
		}
	}
	// Gradient weighting: flat interiors (gradMag 0) get the 0.4 floor,
	// strong surfaces (gradMag >= 40) the full ramp value; in between the
	// weight is monotone.
	aFlat, _, _, _ := CTTransfer(210, 0)
	aMid, _, _, _ := CTTransfer(210, 20)
	aSurf, _, _, _ := CTTransfer(210, 40)
	aOver, _, _, _ := CTTransfer(210, 400)
	if math.Abs(aFlat-0.4) > 1e-12 {
		t.Errorf("flat bone alpha = %v, want 0.4 (gradient floor)", aFlat)
	}
	if !(aFlat < aMid && aMid < aSurf) {
		t.Errorf("gradient weighting not monotone: %v, %v, %v", aFlat, aMid, aSurf)
	}
	if aSurf != 1.0 || aOver != 1.0 {
		t.Errorf("surface bone alpha = %v / %v, want saturation at 1.0", aSurf, aOver)
	}
	// Density ramp tops out at 210: higher densities add nothing.
	a210, _, _, _ := CTTransfer(210, 40)
	a255, _, _, _ := CTTransfer(255, 40)
	if a210 != a255 {
		t.Errorf("CT density ramp not saturated: alpha(210) = %v, alpha(255) = %v", a210, a255)
	}
}

// TestRampEdges pins the shared ramp helper at and outside its interval.
func TestRampEdges(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{-5, 0, 10, 0}, {0, 0, 10, 0}, {5, 0, 10, 0.5}, {10, 0, 10, 1}, {15, 0, 10, 1},
	}
	for _, tc := range cases {
		if got := ramp(tc.x, tc.lo, tc.hi); got != tc.want {
			t.Errorf("ramp(%v, %v, %v) = %v, want %v", tc.x, tc.lo, tc.hi, got, tc.want)
		}
	}
}

// allVoxels classifies a cube filled with one density using both the
// serial and parallel classifiers and asserts they agree.
func allVoxels(t *testing.T, n int, density uint8, opt Options) *Classified {
	t.Helper()
	data := make([]uint8, n*n*n)
	for i := range data {
		data[i] = density
	}
	v := &vol.Volume{Nx: n, Ny: n, Nz: n, Data: data}
	c := Classify(v, opt)
	p := ClassifyParallel(v, opt, 3)
	for i := range c.Voxels {
		if c.Voxels[i] != p.Voxels[i] {
			t.Fatalf("serial and parallel classification differ at voxel %d", i)
		}
	}
	return c
}

// TestAllTransparentVolume classifies an all-air cube: every voxel must
// be fully transparent and the transparent fraction exactly 1.
func TestAllTransparentVolume(t *testing.T) {
	c := allVoxels(t, 8, 0, Options{})
	for i, vx := range c.Voxels {
		if vx != 0 {
			t.Fatalf("voxel %d = %#x, want 0", i, vx)
		}
	}
	if f := c.TransparentFrac(); f != 1 {
		t.Fatalf("TransparentFrac = %v, want 1", f)
	}
}

// TestFullySaturatedVolume classifies a cube of maximum density: the MRI
// transfer saturates to alpha 1, so every voxel must carry opacity 255
// and the transparent fraction must be exactly 0. Interior voxels have a
// zero gradient and take the flat-shade path; boundary voxels see a
// density cliff at the volume edge and shade directionally — both must
// still be opaque.
func TestFullySaturatedVolume(t *testing.T) {
	c := allVoxels(t, 8, 255, Options{})
	for i, vx := range c.Voxels {
		if Opacity(vx) != 255 {
			t.Fatalf("voxel %d opacity = %d, want 255", i, Opacity(vx))
		}
		r, g, b := RGB(vx)
		if r == 0 && g == 0 && b == 0 {
			t.Fatalf("voxel %d is opaque but black", i)
		}
	}
	if f := c.TransparentFrac(); f != 0 {
		t.Fatalf("TransparentFrac = %v, want 0", f)
	}
}

// TestSingleVoxelRamp classifies a cube that is air except for one bright
// voxel at the center: exactly that voxel classifies non-transparent, and
// sweeping its density across the MRI threshold flips it between
// transparent and visible.
func TestSingleVoxelRamp(t *testing.T) {
	const n = 7
	center := (n/2*n+n/2)*n + n/2
	for _, tc := range []struct {
		density uint8
		visible bool
	}{
		{1, false},   // non-air but below the transfer threshold
		{59, false},  // just under the threshold
		{61, false},  // ramp(61)*0.25 ~ 0.006 -> quantizes under MinOpacity 4
		{80, true},   // mid-ramp
		{255, true},  // saturated
	} {
		data := make([]uint8, n*n*n)
		data[center] = tc.density
		v := &vol.Volume{Nx: n, Ny: n, Nz: n, Data: data}
		c := Classify(v, Options{})
		opaque := 0
		for i, vx := range c.Voxels {
			if Opacity(vx) >= c.MinOpacity {
				opaque++
				if i != center {
					t.Fatalf("density %d: voxel %d visible, expected only the center %d", tc.density, i, center)
				}
			}
		}
		if tc.visible && opaque != 1 {
			t.Errorf("density %d: %d visible voxels, want the center voxel only", tc.density, opaque)
		}
		if !tc.visible && opaque != 0 {
			t.Errorf("density %d: %d visible voxels, want none", tc.density, opaque)
		}
	}
}

// TestDefaultMinOpacity pins the default threshold the encoders and
// compositors key off: 4/255 unless overridden.
func TestDefaultMinOpacity(t *testing.T) {
	v := &vol.Volume{Nx: 2, Ny: 2, Nz: 2, Data: make([]uint8, 8)}
	if c := Classify(v, Options{}); c.MinOpacity != 4 {
		t.Fatalf("default MinOpacity = %d, want 4", c.MinOpacity)
	}
	if c := Classify(v, Options{MinOpacity: 9}); c.MinOpacity != 9 {
		t.Fatalf("explicit MinOpacity = %d, want 9", c.MinOpacity)
	}
}
