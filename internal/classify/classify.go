// Package classify assigns an opacity and a shaded color to every voxel of
// a raw volume — the first of the three volume rendering steps. The output
// feeds both the run-length encoder (shear-warp path) and the min-max
// octree (ray-casting baseline).
//
// Classification is view-independent, so in an animation it runs once per
// volume, exactly as in Lacroute's renderer. Shading uses a fixed
// directional light with a Lambertian term plus ambient, evaluated from
// central-difference gradients.
package classify

import (
	"math"
	"sync"

	"shearwarp/internal/vol"
)

// Voxel packs a classified sample: 8-bit opacity and 8-bit RGB color,
// encoded as A<<24 | R<<16 | G<<8 | B. Opacity 0 means fully transparent;
// such voxels are elided by the run-length encoder.
type Voxel = uint32

// Opacity extracts the 8-bit opacity of a packed voxel.
func Opacity(v Voxel) uint8 { return uint8(v >> 24) }

// RGB extracts the 8-bit color channels of a packed voxel.
func RGB(v Voxel) (r, g, b uint8) { return uint8(v >> 16), uint8(v >> 8), uint8(v) }

// Pack builds a packed voxel from opacity and color channels.
func Pack(a, r, g, b uint8) Voxel {
	return uint32(a)<<24 | uint32(r)<<16 | uint32(g)<<8 | uint32(b)
}

// TransferFunc maps a raw density sample and gradient magnitude to opacity
// (0..1) and base color (0..1 per channel), before shading.
type TransferFunc func(density uint8, gradMag float64) (alpha, r, g, b float64)

// MRITransfer is the default transfer function for the MRI brain phantom:
// low densities (air, skull in MRI) are transparent, soft tissue renders as
// translucent warm tones, bright CSF/tissue as denser material. Tuned so
// that, like the paper's data sets, 70-95% of classified voxels are
// transparent.
func MRITransfer(density uint8, gradMag float64) (alpha, r, g, b float64) {
	d := float64(density)
	switch {
	case d < 60:
		return 0, 0, 0, 0
	case d < 100:
		a := ramp(d, 60, 100) * 0.25
		return a, 0.85, 0.70, 0.55
	case d < 160:
		a := 0.25 + ramp(d, 100, 160)*0.45
		return a, 0.90, 0.78, 0.65
	default:
		a := 0.7 + ramp(d, 160, 255)*0.3
		return a, 0.95, 0.90, 0.82
	}
}

// CTTransfer is the default transfer function for the CT head phantom: a
// bone-isolating classification, with gradient-weighted opacity so flat
// soft-tissue interiors stay transparent. This yields the higher transparent
// fraction typical of classified CT.
func CTTransfer(density uint8, gradMag float64) (alpha, r, g, b float64) {
	d := float64(density)
	if d < 120 {
		return 0, 0, 0, 0
	}
	a := ramp(d, 120, 210)
	// Emphasize surfaces: scale opacity by gradient strength.
	gw := 0.4 + 0.6*math.Min(gradMag/40.0, 1.0)
	return a * gw, 0.93, 0.91, 0.84
}

// DefaultIsoThreshold is the isosurface density threshold selected when a
// configuration leaves it unset. 128 sits inside the brightest tissue band
// of the MRI phantom and just above the CT transfer's bone cutoff (120),
// so the default surface is anatomically sensible for both phantoms.
const DefaultIsoThreshold uint8 = 128

// IsoTransfer returns the isosurface (surface display) transfer function
// for a density threshold: densities at or above the threshold are fully
// opaque with a fixed bone-white base color, everything below is fully
// transparent. The threshold comparison is >=, so a voxel whose density
// equals the threshold lies on the surface. Shading still happens in
// classifyVoxel — the Lambertian term over the central-difference gradient
// — so the result is a shaded surface, not a flat silhouette. Note that
// Classify skips density-0 voxels entirely (air), so they stay transparent
// even under IsoTransfer(0).
func IsoTransfer(threshold uint8) TransferFunc {
	return func(density uint8, gradMag float64) (alpha, r, g, b float64) {
		if density < threshold {
			return 0, 0, 0, 0
		}
		return 1, 0.95, 0.93, 0.88
	}
}

func ramp(x, lo, hi float64) float64 {
	if x <= lo {
		return 0
	}
	if x >= hi {
		return 1
	}
	return (x - lo) / (hi - lo)
}

// Light is a directional light for Lambertian shading.
type Light struct {
	Dx, Dy, Dz float64 // direction toward the light (normalized by Classify)
	Ambient    float64 // ambient fraction in [0,1]
	Diffuse    float64 // diffuse fraction in [0,1]
}

// DefaultLight illuminates from the upper-left-front.
var DefaultLight = Light{Dx: -0.4, Dy: -0.6, Dz: -0.7, Ambient: 0.35, Diffuse: 0.65}

// Classified is the classified volume: one packed Voxel per input voxel,
// same storage order as the source. MinOpacity is the threshold below which
// the encoder treats a voxel as transparent.
type Classified struct {
	Nx, Ny, Nz int
	Voxels     []Voxel
	MinOpacity uint8

	transFracOnce sync.Once
	transFrac     float64
}

// At returns the packed voxel at (x, y, z); out of bounds reads transparent.
func (c *Classified) At(x, y, z int) Voxel {
	if x < 0 || y < 0 || z < 0 || x >= c.Nx || y >= c.Ny || z >= c.Nz {
		return 0
	}
	return c.Voxels[(z*c.Ny+y)*c.Nx+x]
}

// Transparent reports whether a packed voxel is below the opacity threshold.
func (c *Classified) Transparent(v Voxel) bool { return Opacity(v) < c.MinOpacity }

// TransparentFrac returns the fraction of voxels below the threshold — the
// statistic the paper reports as 70-95% for medical data. The volume is
// scanned once; the result is cached (the voxels are immutable after
// classification) so per-frame reporting does not rescan the volume.
func (c *Classified) TransparentFrac() float64 {
	c.transFracOnce.Do(func() {
		n := 0
		for _, v := range c.Voxels {
			if Opacity(v) < c.MinOpacity {
				n++
			}
		}
		c.transFrac = float64(n) / float64(len(c.Voxels))
	})
	return c.transFrac
}

// Options configures classification.
type Options struct {
	Transfer   TransferFunc // nil selects MRITransfer
	Light      Light        // zero value selects DefaultLight
	MinOpacity uint8        // 0 selects the default threshold (4/255)
}

// Classify runs classification and shading over the whole volume.
func Classify(v *vol.Volume, opt Options) *Classified {
	tf := opt.Transfer
	if tf == nil {
		tf = MRITransfer
	}
	lt := opt.Light
	if lt.Diffuse == 0 && lt.Ambient == 0 {
		lt = DefaultLight
	}
	ln := normLen(lt)
	lx, ly, lz := lt.Dx/ln, lt.Dy/ln, lt.Dz/ln
	minOp := opt.MinOpacity
	if minOp == 0 {
		minOp = 4
	}
	c := &Classified{Nx: v.Nx, Ny: v.Ny, Nz: v.Nz,
		Voxels: make([]Voxel, v.VoxelCount()), MinOpacity: minOp}
	for z := 0; z < v.Nz; z++ {
		for y := 0; y < v.Ny; y++ {
			base := (z*v.Ny + y) * v.Nx
			for x := 0; x < v.Nx; x++ {
				d := v.Data[base+x]
				if d == 0 {
					continue // air stays transparent, skip gradient work
				}
				c.Voxels[base+x] = classifyVoxel(v, tf, lt, lx, ly, lz, x, y, z, d)
			}
		}
	}
	return c
}

// normLen returns the light direction's length (1 for a zero vector).
func normLen(lt Light) float64 {
	ln := math.Sqrt(lt.Dx*lt.Dx + lt.Dy*lt.Dy + lt.Dz*lt.Dz)
	if ln == 0 {
		return 1
	}
	return ln
}

// classifyVoxel classifies and shades a single non-air voxel; serial and
// parallel classification share it so their outputs stay bit-identical.
func classifyVoxel(v *vol.Volume, tf TransferFunc, lt Light, lx, ly, lz float64, x, y, z int, d uint8) Voxel {
	gx, gy, gz := v.Gradient(x, y, z)
	gm := math.Sqrt(gx*gx + gy*gy + gz*gz)
	a, r, g, b := tf(d, gm)
	if a <= 0 {
		return 0
	}
	shade := lt.Ambient
	if gm > 1e-6 {
		// Lambertian: gradient points from low to high density; the
		// surface normal for shading is its negation.
		nl := -(gx*lx + gy*ly + gz*lz) / gm
		if nl > 0 {
			shade += lt.Diffuse * nl
		}
	} else {
		shade += lt.Diffuse * 0.5 // interior voxels: flat shade
	}
	if shade > 1 {
		shade = 1
	}
	return Pack(quant(a), quant(r*shade), quant(g*shade), quant(b*shade))
}

func quant(x float64) uint8 {
	v := int(math.Round(x * 255))
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
