package classify

import (
	"testing"
	"testing/quick"

	"shearwarp/internal/vol"
)

func TestPackExtractRoundTrip(t *testing.T) {
	f := func(a, r, g, b uint8) bool {
		v := Pack(a, r, g, b)
		gr, gg, gb := RGB(v)
		return Opacity(v) == a && gr == r && gg == g && gb == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAirIsTransparent(t *testing.T) {
	v := vol.New(4, 4, 4) // all zero
	c := Classify(v, Options{})
	for i, vx := range c.Voxels {
		if vx != 0 {
			t.Fatalf("voxel %d of empty volume classified non-transparent", i)
		}
	}
	if got := c.TransparentFrac(); got != 1.0 {
		t.Fatalf("TransparentFrac = %g, want 1", got)
	}
}

func TestMRITransferMonotoneRegions(t *testing.T) {
	// Below 60 transparent; above, opacity non-decreasing in density.
	a0, _, _, _ := MRITransfer(30, 0)
	if a0 != 0 {
		t.Fatal("density 30 should be transparent")
	}
	prev := -1.0
	for d := 60; d <= 255; d += 5 {
		a, _, _, _ := MRITransfer(uint8(d), 0)
		if a < prev-1e-9 {
			t.Fatalf("opacity decreased at density %d: %g < %g", d, a, prev)
		}
		prev = a
	}
	aMax, _, _, _ := MRITransfer(255, 0)
	if aMax < 0.9 {
		t.Fatalf("max density opacity %g, want near 1", aMax)
	}
}

func TestCTTransferBoneOnly(t *testing.T) {
	if a, _, _, _ := CTTransfer(100, 50); a != 0 {
		t.Fatal("soft tissue density should be transparent in CT transfer")
	}
	aFlat, _, _, _ := CTTransfer(230, 0)
	aEdge, _, _, _ := CTTransfer(230, 60)
	if aEdge <= aFlat {
		t.Fatalf("gradient weighting absent: edge %g <= flat %g", aEdge, aFlat)
	}
}

func TestMRIPhantomTransparentFraction(t *testing.T) {
	// The paper: "70% to 95% of the voxels are found to be transparent".
	v := vol.MRIBrain(48)
	c := Classify(v, Options{})
	frac := c.TransparentFrac()
	if frac < 0.5 || frac > 0.97 {
		t.Fatalf("MRI transparent fraction = %.3f, want coherence-friendly range", frac)
	}
}

func TestCTPhantomTransparentFraction(t *testing.T) {
	v := vol.CTHead(48)
	c := Classify(v, Options{Transfer: CTTransfer})
	frac := c.TransparentFrac()
	if frac < 0.7 || frac > 0.99 {
		t.Fatalf("CT transparent fraction = %.3f, want 0.7-0.99", frac)
	}
}

func TestClassifyDeterministic(t *testing.T) {
	v := vol.MRIBrain(16)
	a := Classify(v, Options{})
	b := Classify(v, Options{})
	for i := range a.Voxels {
		if a.Voxels[i] != b.Voxels[i] {
			t.Fatalf("classification not deterministic at voxel %d", i)
		}
	}
}

func TestShadingDarkensFacesAwayFromLight(t *testing.T) {
	// A density step in x creates opposing gradients on the two faces of a
	// slab; the face toward the light must be brighter.
	v := vol.New(16, 8, 8)
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 5; x < 11; x++ {
				v.Set(x, y, z, 200)
			}
		}
	}
	lt := Light{Dx: -1, Dy: 0, Dz: 0, Ambient: 0.2, Diffuse: 0.8}
	c := Classify(v, Options{Light: lt})
	// Voxel at x=5 has gradient +x (normal -x, toward light at -x): bright.
	// Voxel at x=10 has gradient -x (normal +x, away): dark.
	rTow, _, _ := RGB(c.At(5, 4, 4))
	rAway, _, _ := RGB(c.At(10, 4, 4))
	if rTow <= rAway {
		t.Fatalf("lit face %d not brighter than far face %d", rTow, rAway)
	}
}

func TestAtOutOfBounds(t *testing.T) {
	c := Classify(vol.MRIBrain(8), Options{})
	if c.At(-1, 0, 0) != 0 || c.At(0, 100, 0) != 0 {
		t.Fatal("out-of-bounds classified access should be transparent")
	}
}

func TestMinOpacityThreshold(t *testing.T) {
	c := &Classified{MinOpacity: 10}
	if !c.Transparent(Pack(9, 1, 1, 1)) {
		t.Fatal("opacity 9 should be transparent at threshold 10")
	}
	if c.Transparent(Pack(10, 1, 1, 1)) {
		t.Fatal("opacity 10 should be opaque at threshold 10")
	}
}

func TestClassifyParallelBitIdentical(t *testing.T) {
	for _, n := range []int{7, 16, 33} {
		v := vol.MRIBrain(n)
		want := Classify(v, Options{})
		for _, procs := range []int{2, 3, 8, 100} {
			got := ClassifyParallel(v, Options{}, procs)
			if got.MinOpacity != want.MinOpacity || len(got.Voxels) != len(want.Voxels) {
				t.Fatalf("n=%d procs=%d: shape mismatch", n, procs)
			}
			for i := range want.Voxels {
				if got.Voxels[i] != want.Voxels[i] {
					t.Fatalf("n=%d procs=%d: voxel %d differs", n, procs, i)
				}
			}
		}
	}
}

func TestClassifyParallelCTOptions(t *testing.T) {
	v := vol.CTHead(20)
	opt := Options{Transfer: CTTransfer, MinOpacity: 10,
		Light: Light{Dx: 1, Dy: -1, Dz: 0.5, Ambient: 0.2, Diffuse: 0.8}}
	want := Classify(v, opt)
	got := ClassifyParallel(v, opt, 4)
	for i := range want.Voxels {
		if got.Voxels[i] != want.Voxels[i] {
			t.Fatalf("voxel %d differs under custom options", i)
		}
	}
}
