package classify

import (
	"sync"

	"shearwarp/internal/vol"
)

// ClassifyParallel classifies with the given number of goroutines,
// partitioning the volume by z slices. The output is bit-identical to
// Classify: classification is per-voxel (gradients read the raw volume,
// which is immutable), so the decomposition carries no ordering effects.
//
// Classification runs once per volume (it is view-independent), but for
// large volumes it is the dominant preprocessing cost, so the renderer's
// setup benefits from the same parallelism as its frames.
func ClassifyParallel(v *vol.Volume, opt Options, procs int) *Classified {
	if procs < 2 || v.Nz < 2 {
		return Classify(v, opt)
	}
	if procs > v.Nz {
		procs = v.Nz
	}

	// Mirror Classify's defaulting so both paths stay in lock step.
	tf := opt.Transfer
	if tf == nil {
		tf = MRITransfer
	}
	lt := opt.Light
	if lt.Diffuse == 0 && lt.Ambient == 0 {
		lt = DefaultLight
	}
	minOp := opt.MinOpacity
	if minOp == 0 {
		minOp = 4
	}
	c := &Classified{Nx: v.Nx, Ny: v.Ny, Nz: v.Nz,
		Voxels: make([]Voxel, v.VoxelCount()), MinOpacity: minOp}

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		z0 := p * v.Nz / procs
		z1 := (p + 1) * v.Nz / procs
		wg.Add(1)
		go func(z0, z1 int) {
			defer wg.Done()
			classifySlab(v, c, tf, lt, z0, z1)
		}(z0, z1)
	}
	wg.Wait()
	return c
}

// classifySlab classifies slices [z0, z1); it is the body of Classify
// restricted to a slab so serial and parallel paths share the arithmetic.
func classifySlab(v *vol.Volume, c *Classified, tf TransferFunc, lt Light, z0, z1 int) {
	ln := normLen(lt)
	lx, ly, lz := lt.Dx/ln, lt.Dy/ln, lt.Dz/ln
	for z := z0; z < z1; z++ {
		for y := 0; y < v.Ny; y++ {
			base := (z*v.Ny + y) * v.Nx
			for x := 0; x < v.Nx; x++ {
				d := v.Data[base+x]
				if d == 0 {
					continue
				}
				c.Voxels[base+x] = classifyVoxel(v, tf, lt, lx, ly, lz, x, y, z, d)
			}
		}
	}
}
