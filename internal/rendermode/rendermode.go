// Package rendermode names the render modes every layer of the pipeline
// agrees on. It is a leaf package — classification, compositing, the
// raycast oracle, kernel dispatch and the public API all import it, so the
// mode constants live here rather than in any one of them.
//
// Three modes exist, all sharing the run-length/span-index substrate:
//
//   - Composite: front-to-back alpha compositing with early ray
//     termination — the paper's workload and the default.
//   - MIP: maximum intensity projection — each ray keeps the per-channel
//     maximum of its premultiplied samples instead of over-blending them.
//     Max is order-independent and never saturates, so early termination
//     is structurally disabled.
//   - Isosurface: surface display — classification thresholds the raw
//     densities (at/above the threshold is opaque, below is transparent)
//     and shades by central-difference gradients; compositing then runs
//     the standard over-blend, which the binary opacities turn into a
//     first-opaque-surface projection with aggressive early termination.
package rendermode

import "fmt"

// Mode names a render mode. The zero value is Composite so an unset
// configuration field means "today's behavior".
type Mode uint8

// Render modes.
const (
	Composite  Mode = iota // front-to-back over-blend (default)
	MIP                    // maximum intensity projection
	Isosurface             // thresholded, gradient-shaded surface display
)

// Count is the number of modes — the dimension of per-mode telemetry
// arrays.
const Count = 3

func (m Mode) String() string {
	switch m {
	case Composite:
		return "composite"
	case MIP:
		return "mip"
	case Isosurface:
		return "iso"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// UnknownModeError reports a mode name Parse rejected. Commands and the
// render service surface it to the user (exit 2 / HTTP 400).
type UnknownModeError struct {
	Value string
}

func (e *UnknownModeError) Error() string {
	return fmt.Sprintf("rendermode: unknown mode %q (valid: composite, mip, iso)", e.Value)
}

// Parse converts a mode name ("composite", "mip", "iso"; "" means
// composite; "isosurface" is accepted as an alias). Unknown names return a
// *UnknownModeError.
func Parse(s string) (Mode, error) {
	switch s {
	case "", "composite":
		return Composite, nil
	case "mip":
		return MIP, nil
	case "iso", "isosurface":
		return Isosurface, nil
	}
	return Composite, &UnknownModeError{Value: s}
}
