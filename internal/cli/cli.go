// Package cli holds flag plumbing shared by the commands in cmd/: both
// shearwarp (one-shot renders) and shearwarpd (the render service) select
// their input volume the same way, so the flags and their resolution live
// here once.
package cli

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"shearwarp"
	"shearwarp/internal/vol"
)

// VolumeFlags is the volume-selection flag set shared by the commands:
// a synthetic phantom (-kind, -size) or a .vol file (-in, which wins).
type VolumeFlags struct {
	Kind string
	Size int
	In   string
}

// Register declares the flags on fs with the names and defaults the
// shearwarp command has always used.
func (vf *VolumeFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&vf.Kind, "kind", "mri", "phantom kind when no -in: mri | ct")
	fs.IntVar(&vf.Size, "size", 64, "phantom size")
	fs.StringVar(&vf.In, "in", "", "input .vol file (overrides -kind/-size)")
}

// Load resolves the flags into a volume and the transfer function it
// classifies with by default (CT phantoms get the bone transfer, anything
// else the MRI one — matching the phantom constructors in the root
// package).
func (vf *VolumeFlags) Load() (*vol.Volume, shearwarp.Transfer, error) {
	if vf.In != "" {
		f, err := os.Open(vf.In)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		v, err := vol.ReadFrom(f)
		if err != nil {
			return nil, 0, err
		}
		tf := shearwarp.TransferMRI
		if vf.Kind == "ct" {
			tf = shearwarp.TransferCT
		}
		return v, tf, nil
	}
	if vf.Kind == "ct" {
		return vol.CTHead(vf.Size), shearwarp.TransferCT, nil
	}
	return vol.MRIBrain(vf.Size), shearwarp.TransferMRI, nil
}

// KernelFlag is the pixel-kernel selection shared by the commands: both
// shearwarp and shearwarpd choose the fast-path tier the same way, and
// both must reject a typo with the same typed error before doing any
// work.
type KernelFlag struct {
	Name string
}

// Register declares the -kernel flag on fs.
func (kf *KernelFlag) Register(fs *flag.FlagSet) {
	fs.StringVar(&kf.Name, "kernel", "auto",
		"pixel-kernel tier: auto | scalar | packed (auto = $SHEARWARP_KERNEL, else scalar)")
}

// Kernel resolves the flag. Unknown names surface the renderer's typed
// *shearwarp.UnknownKernelError so commands can exit 2 with its message.
func (kf *KernelFlag) Kernel() (shearwarp.Kernel, error) {
	return shearwarp.ParseKernel(kf.Name)
}

// ModeFlag is the render-mode selection shared by the commands: shearwarp
// renders one-shot frames in the chosen mode, shearwarpd uses it as the
// default for requests that do not pass mode=; both must reject a typo
// with the same typed error before doing any work.
type ModeFlag struct {
	Name string
	Iso  int
}

// Register declares the -mode and -iso flags on fs.
func (mf *ModeFlag) Register(fs *flag.FlagSet) {
	fs.StringVar(&mf.Name, "mode", "composite",
		"render mode: composite | mip | iso")
	fs.IntVar(&mf.Iso, "iso", 0,
		"isosurface density threshold 1-255 (0 = default 128; iso mode only)")
}

// Mode resolves the flags. Unknown mode names surface the renderer's typed
// *shearwarp.UnknownModeError so commands can exit 2 with its message; an
// out-of-range threshold is rejected the same way a bad flag value is.
func (mf *ModeFlag) Mode() (shearwarp.Mode, uint8, error) {
	m, err := shearwarp.ParseMode(mf.Name)
	if err != nil {
		return 0, 0, err
	}
	if mf.Iso < 0 || mf.Iso > 255 {
		return 0, 0, fmt.Errorf("bad -iso %d: threshold must be in 0-255", mf.Iso)
	}
	return m, uint8(mf.Iso), nil
}

// Name returns a short name for the selected volume: the input file's
// base name (without extension) or the phantom kind.
func (vf *VolumeFlags) Name() string {
	if vf.In != "" {
		base := filepath.Base(vf.In)
		return strings.TrimSuffix(base, filepath.Ext(base))
	}
	if vf.Kind == "ct" {
		return "ct"
	}
	return "mri"
}
