// Package rle implements the run-length-encoded classified volume — the
// coherence data structure at the heart of the shear-warp algorithm
// (Lacroute's encoding). Each voxel scanline is stored as alternating
// counts of transparent and non-transparent voxels plus a packed stream of
// the non-transparent voxels, so the compositor streams through both the
// volume and the intermediate image in storage order and skips transparent
// regions in O(1) per run.
//
// Because the scanline direction must match the intermediate image's u
// axis, a volume is encoded once per principal axis; a renderer keeps up to
// three encodings and picks the one matching the current factorization.
package rle

import (
	"fmt"
	"sync"

	"shearwarp/internal/classify"
	"shearwarp/internal/xform"
)

// Volume is the run-length encoding of a classified volume for one
// principal axis. Scanlines run along i; scanline s = k*Nj + j is line j of
// slice k in permuted coordinates.
type Volume struct {
	Axis       xform.Axis
	Ni, Nj, Nk int
	MinOpacity uint8

	// RunLens holds, per scanline, alternating run lengths starting with a
	// (possibly zero) transparent run; lengths sum to Ni per scanline.
	// Scanline s owns RunLens[RunOff[s]:RunOff[s+1]].
	RunOff  []int32
	RunLens []uint16

	// Vox packs the non-transparent voxels of every scanline in order.
	// Scanline s owns Vox[VoxOff[s]:VoxOff[s+1]].
	VoxOff []int32
	Vox    []classify.Voxel

	// Encode-time span index, structure-of-arrays: one entry per non-empty
	// non-transparent run, in scanline order, built while the voxels stream
	// through the encoder anyway. Scanline s owns index range
	// [SpanOff[s], SpanOff[s+1]). SpanLo is the span's first voxel index
	// within its scanline, SpanCnt its voxel count, SpanVox the absolute
	// offset of its first voxel in Vox, and SpanClass the maximum opacity
	// byte over its voxels (class 0 means every sample contributes exact
	// zero opacity, so kernels may treat the span as a gap). The compositor
	// windows these arrays directly, so expanding a scanline's runs into
	// spans costs nothing per frame.
	SpanOff   []int32
	SpanLo    []int32
	SpanCnt   []int32
	SpanVox   []int32
	SpanClass []uint8

	// MaxLineRuns is the largest run-header count of any scanline, set by
	// the encoders. Compositing contexts size their span scratch from it so
	// steady-state frames never grow an append.
	MaxLineRuns int

	// Lazily-built packed-kernel lane array; see PackedVox.
	packedOnce sync.Once
	packed     []uint64
}

// computeMaxLineRuns scans RunOff for the densest scanline.
func (v *Volume) computeMaxLineRuns() {
	maxRuns := 0
	for s := 0; s+1 < len(v.RunOff); s++ {
		if n := int(v.RunOff[s+1] - v.RunOff[s]); n > maxRuns {
			maxRuns = n
		}
	}
	v.MaxLineRuns = maxRuns
}

// Encode builds the run-length encoding of c for the given principal axis.
func Encode(c *classify.Classified, axis xform.Axis) *Volume {
	ni, nj, nk := xform.PermutedDims(axis, c.Nx, c.Ny, c.Nz)
	v := &Volume{
		Axis: axis, Ni: ni, Nj: nj, Nk: nk, MinOpacity: c.MinOpacity,
		RunOff:  make([]int32, nk*nj+1),
		VoxOff:  make([]int32, nk*nj+1),
		SpanOff: make([]int32, nk*nj+1),
	}
	if ni > 0xffff {
		panic(fmt.Sprintf("rle: scanline length %d exceeds uint16 runs", ni))
	}
	line := make([]classify.Voxel, ni)
	for k := 0; k < nk; k++ {
		for j := 0; j < nj; j++ {
			s := k*nj + j
			v.RunOff[s] = int32(len(v.RunLens))
			v.VoxOff[s] = int32(len(v.Vox))
			v.SpanOff[s] = int32(len(v.SpanClass))
			for i := 0; i < ni; i++ {
				x, y, z := xform.ObjectIndex(axis, i, j, k)
				line[i] = c.Voxels[(z*c.Ny+y)*c.Nx+x]
			}
			v.encodeLine(line)
		}
	}
	v.RunOff[nk*nj] = int32(len(v.RunLens))
	v.VoxOff[nk*nj] = int32(len(v.Vox))
	v.SpanOff[nk*nj] = int32(len(v.SpanClass))
	v.computeMaxLineRuns()
	return v
}

// encodeLine appends the runs and voxels of one scanline.
func (v *Volume) encodeLine(line []classify.Voxel) {
	i := 0
	for i < len(line) {
		// Transparent run (may be empty).
		t := i
		for t < len(line) && classify.Opacity(line[t]) < v.MinOpacity {
			t++
		}
		v.RunLens = append(v.RunLens, uint16(t-i))
		i = t
		// Non-transparent run (may be empty only at end of line).
		o := i
		var class uint8
		vox := int32(len(v.Vox))
		for o < len(line) && classify.Opacity(line[o]) >= v.MinOpacity {
			if a := classify.Opacity(line[o]); a > class {
				class = a
			}
			v.Vox = append(v.Vox, line[o])
			o++
		}
		v.RunLens = append(v.RunLens, uint16(o-i))
		if o > i {
			v.SpanLo = append(v.SpanLo, int32(i))
			v.SpanCnt = append(v.SpanCnt, int32(o-i))
			v.SpanVox = append(v.SpanVox, vox)
			v.SpanClass = append(v.SpanClass, class)
		}
		i = o
	}
	if len(line) == 0 {
		v.RunLens = append(v.RunLens, 0, 0)
	}
}

// EncodeAll builds the encodings for all three principal axes, in axis
// order (x, y, z).
func EncodeAll(c *classify.Classified) [3]*Volume {
	return [3]*Volume{
		Encode(c, xform.AxisX),
		Encode(c, xform.AxisY),
		Encode(c, xform.AxisZ),
	}
}

// ScanlineID returns the flat scanline index of line j in slice k.
func (v *Volume) ScanlineID(k, j int) int { return k*v.Nj + j }

// Scanline returns the run lengths and packed voxels of line j in slice k.
func (v *Volume) Scanline(k, j int) (runs []uint16, vox []classify.Voxel) {
	s := k*v.Nj + j
	return v.RunLens[v.RunOff[s]:v.RunOff[s+1]], v.Vox[v.VoxOff[s]:v.VoxOff[s+1]]
}

// DecodeLine expands scanline (k, j) into dst, which must have length Ni.
// Transparent voxels decode as 0. It returns the number of non-transparent
// voxels and the number of runs, which the compositing kernel uses for its
// cycle accounting.
func (v *Volume) DecodeLine(k, j int, dst []classify.Voxel) (opaque, runs int) {
	if len(dst) != v.Ni {
		panic(fmt.Sprintf("rle: DecodeLine dst len %d != Ni %d", len(dst), v.Ni))
	}
	rl, vox := v.Scanline(k, j)
	i, vi := 0, 0
	for r := 0; r < len(rl); r += 2 {
		t := int(rl[r])
		for e := i + t; i < e; i++ {
			dst[i] = 0
		}
		if r+1 < len(rl) {
			o := int(rl[r+1])
			copy(dst[i:i+o], vox[vi:vi+o])
			i += o
			vi += o
			opaque += o
		}
	}
	return opaque, len(rl)
}

// Spans returns the [start, end) index ranges of non-transparent voxels in
// scanline (k, j), along with the voxel-data offset of each span's first
// voxel relative to the scanline's packed voxels.
type Span struct {
	Start, End int // voxel index range within the scanline
	VoxStart   int // offset into the scanline's packed voxel stream
}

// LineSpans lists the non-transparent spans of scanline (k, j).
func (v *Volume) LineSpans(k, j int) []Span {
	return v.AppendSpans(k, j, nil)
}

// AppendSpans appends the non-transparent spans of scanline (k, j) to dst
// and returns the extended slice; the compositing kernel reuses a scratch
// slice across calls to stay allocation-free.
func (v *Volume) AppendSpans(k, j int, dst []Span) []Span {
	rl, _ := v.Scanline(k, j)
	i, vi := 0, 0
	for r := 0; r < len(rl); r += 2 {
		i += int(rl[r])
		if r+1 < len(rl) {
			o := int(rl[r+1])
			if o > 0 {
				dst = append(dst, Span{Start: i, End: i + o, VoxStart: vi})
			}
			i += o
			vi += o
		}
	}
	return dst
}

// SpanBuf holds one or more scanlines' worth of non-transparent spans in
// structure-of-arrays form: four flat, index-aligned arrays instead of a
// slice of structs. Compositing contexts own one per contributing line and
// reuse it across scanlines, so the decode stage is append-only into
// buffers that reach steady-state capacity after the first frame.
type SpanBuf struct {
	Lo    []int32 // first voxel index of each span within its scanline
	Cnt   []int32 // sample (voxel) count of each span
	Vox   []int32 // offset of each span's first voxel in the line's packed stream
	Class []uint8 // maximum opacity byte over the span's voxels
}

// Reset empties the buffer, keeping its capacity.
func (b *SpanBuf) Reset() {
	b.Lo = b.Lo[:0]
	b.Cnt = b.Cnt[:0]
	b.Vox = b.Vox[:0]
	b.Class = b.Class[:0]
}

// Len returns the number of buffered spans.
func (b *SpanBuf) Len() int { return len(b.Lo) }

// Grow ensures capacity for at least n spans without changing Len, so a
// compositing context bound to an encoding never grows an append in the
// steady state.
func (b *SpanBuf) Grow(n int) {
	if cap(b.Lo) >= n {
		return
	}
	b.Lo = make([]int32, 0, n)
	b.Cnt = make([]int32, 0, n)
	b.Vox = make([]int32, 0, n)
	b.Class = make([]uint8, 0, n)
}

// AppendSpansSoA appends the non-transparent spans of scanline (k, j) to b
// in structure-of-arrays form, windowing the encode-time span index — no
// run header or packed voxel is touched, and Vox offsets are rebased to the
// scanline (matching Span.VoxStart). It visits exactly the (offset, count)
// sequence AppendSpans produces by walking the run headers (fuzz-verified
// by FuzzSpanDecodeSoAEquivalence).
func (v *Volume) AppendSpansSoA(k, j int, b *SpanBuf) {
	s := k*v.Nj + j
	lo, hi := v.SpanOff[s], v.SpanOff[s+1]
	base := v.VoxOff[s]
	b.Lo = append(b.Lo, v.SpanLo[lo:hi]...)
	b.Cnt = append(b.Cnt, v.SpanCnt[lo:hi]...)
	b.Class = append(b.Class, v.SpanClass[lo:hi]...)
	for _, vx := range v.SpanVox[lo:hi] {
		b.Vox = append(b.Vox, vx-base)
	}
}

// SpreadPremul converts a packed voxel into the packed compositing tier's
// lane format: alpha and the premultiplied color channels
// round(alpha*channel/255), spread into the four 16-bit sublanes of a
// uint64 as 0x00AA00RR00GG00BB. Premultiplying before resampling keeps
// transparent neighbors from bleeding color into span edges, and the
// spread layout lets a kernel resample all four channels with one 64-bit
// multiply per tap (weights summing to 256 cannot carry across sublanes:
// 255*256 < 2^16).
func SpreadPremul(v classify.Voxel) uint64 {
	a := uint64(v >> 24)
	r := (a*uint64((v>>16)&0xff) + 127) / 255
	g := (a*uint64((v>>8)&0xff) + 127) / 255
	b := (a*uint64(v&0xff) + 127) / 255
	return a<<48 | r<<32 | g<<16 | b
}

// PackedVox returns the volume's voxels in SpreadPremul lane form, aligned
// index-for-index with Vox. The array is view-independent, so it is built
// once per encoding (lazily, on the first packed-kernel frame) and shared
// by every renderer bound to the volume thereafter; callers must not
// mutate it.
func (v *Volume) PackedVox() []uint64 {
	v.packedOnce.Do(func() {
		p := make([]uint64, len(v.Vox))
		for i, x := range v.Vox {
			p[i] = SpreadPremul(x)
		}
		v.packed = p
	})
	return v.packed
}

// Stats summarizes the encoding.
type Stats struct {
	Voxels          int     // total voxels in the volume
	NonTransparent  int     // voxels stored in Vox
	Runs            int     // total run-length entries
	CompressionPct  float64 // encoded bytes as a percentage of dense bytes
	TransparentFrac float64
}

// ComputeStats returns size and compression statistics.
func (v *Volume) ComputeStats() Stats {
	total := v.Ni * v.Nj * v.Nk
	dense := total * 4
	enc := len(v.Vox)*4 + len(v.RunLens)*2 + len(v.RunOff)*4 + len(v.VoxOff)*4 +
		len(v.SpanOff)*4 + len(v.SpanClass) +
		(len(v.SpanLo)+len(v.SpanCnt)+len(v.SpanVox))*4
	return Stats{
		Voxels:          total,
		NonTransparent:  len(v.Vox),
		Runs:            len(v.RunLens),
		CompressionPct:  100 * float64(enc) / float64(dense),
		TransparentFrac: 1 - float64(len(v.Vox))/float64(total),
	}
}
