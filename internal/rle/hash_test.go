package rle

import (
	"testing"

	"shearwarp/internal/classify"
	"shearwarp/internal/vol"
	"shearwarp/internal/xform"
)

func TestVolumeKeyDeterministicAndSensitive(t *testing.T) {
	v := vol.MRIBrain(16)
	k1 := VolumeKey(v.Data, v.Nx, v.Ny, v.Nz)
	k2 := VolumeKey(v.Data, v.Nx, v.Ny, v.Nz)
	if k1 != k2 {
		t.Fatalf("key not deterministic: %s vs %s", k1, k2)
	}
	if len(k1) != 16 {
		t.Fatalf("key %q is not 16 hex chars", k1)
	}

	// Flipping a single voxel must change the key.
	mut := make([]uint8, len(v.Data))
	copy(mut, v.Data)
	mut[len(mut)/2] ^= 1
	if VolumeKey(mut, v.Nx, v.Ny, v.Nz) == k1 {
		t.Fatal("single-voxel flip did not change the key")
	}

	// Same flattened bytes under different dimensions must differ: the
	// dimensions are folded in before the samples.
	flat := make([]uint8, 2*8)
	for i := range flat {
		flat[i] = uint8(i)
	}
	if VolumeKey(flat, 2, 8, 1) == VolumeKey(flat, 8, 2, 1) {
		t.Fatal("2x8 and 8x2 volumes share a key")
	}
}

func TestFingerprintMatchesAcrossEncoders(t *testing.T) {
	c := classify.Classify(vol.MRIBrain(24), classify.Options{})
	for _, axis := range []xform.Axis{xform.AxisX, xform.AxisY, xform.AxisZ} {
		serial := Encode(c, axis)
		parallel := EncodeParallel(c, axis, 4)
		if serial.Fingerprint() != parallel.Fingerprint() {
			t.Errorf("axis %v: serial and parallel encodings fingerprint differently", axis)
		}
		if serial.MemoryBytes() <= 0 {
			t.Errorf("axis %v: non-positive memory estimate", axis)
		}
	}
	// Different axes of a non-symmetric view of the data should not collide.
	x, z := Encode(c, xform.AxisX), Encode(c, xform.AxisZ)
	if x.Fingerprint() == z.Fingerprint() {
		t.Error("x and z encodings share a fingerprint")
	}
}
