package rle

import (
	"math/rand"
	"testing"

	"shearwarp/internal/classify"
	"shearwarp/internal/vol"
	"shearwarp/internal/xform"
)

// randomClassified builds a classified volume with a controllable density of
// non-transparent voxels, directly (bypassing the transfer function) so the
// encoder sees adversarial run patterns.
func randomClassified(rng *rand.Rand, nx, ny, nz int, fill float64) *classify.Classified {
	c := &classify.Classified{Nx: nx, Ny: ny, Nz: nz,
		Voxels: make([]classify.Voxel, nx*ny*nz), MinOpacity: 4}
	for i := range c.Voxels {
		if rng.Float64() < fill {
			a := uint8(4 + rng.Intn(252))
			c.Voxels[i] = classify.Pack(a, uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256)))
		}
	}
	return c
}

func TestEncodeDecodeRoundTripAllAxes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, fill := range []float64{0, 0.05, 0.3, 0.9, 1.0} {
		c := randomClassified(rng, 9, 7, 5, fill)
		for _, axis := range []xform.Axis{xform.AxisX, xform.AxisY, xform.AxisZ} {
			v := Encode(c, axis)
			line := make([]classify.Voxel, v.Ni)
			for k := 0; k < v.Nk; k++ {
				for j := 0; j < v.Nj; j++ {
					v.DecodeLine(k, j, line)
					for i := 0; i < v.Ni; i++ {
						x, y, z := xform.ObjectIndex(axis, i, j, k)
						want := c.At(x, y, z)
						if classify.Opacity(want) < c.MinOpacity {
							want = 0
						}
						if line[i] != want {
							t.Fatalf("fill=%g axis=%v voxel(%d,%d,%d): got %#x want %#x",
								fill, axis, i, j, k, line[i], want)
						}
					}
				}
			}
		}
	}
}

func TestRunLengthsSumToNi(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randomClassified(rng, 16, 6, 4, 0.4)
	v := Encode(c, xform.AxisZ)
	for k := 0; k < v.Nk; k++ {
		for j := 0; j < v.Nj; j++ {
			runs, _ := v.Scanline(k, j)
			sum := 0
			for _, r := range runs {
				sum += int(r)
			}
			if sum != v.Ni {
				t.Fatalf("scanline (%d,%d): run sum %d != Ni %d", k, j, sum, v.Ni)
			}
			if len(runs)%2 != 0 {
				t.Fatalf("scanline (%d,%d): odd run count %d", k, j, len(runs))
			}
		}
	}
}

func TestRunsAlternate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomClassified(rng, 32, 4, 3, 0.5)
	v := Encode(c, xform.AxisZ)
	line := make([]classify.Voxel, v.Ni)
	for k := 0; k < v.Nk; k++ {
		for j := 0; j < v.Nj; j++ {
			v.DecodeLine(k, j, line)
			runs, _ := v.Scanline(k, j)
			// Walk runs and verify each describes the right voxel kind.
			i := 0
			for r, n := range runs {
				transparent := r%2 == 0
				for e := i + int(n); i < e; i++ {
					isT := classify.Opacity(line[i]) < v.MinOpacity
					if isT != transparent {
						t.Fatalf("run %d misclassifies voxel %d", r, i)
					}
				}
			}
		}
	}
}

func TestLineSpansMatchDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := randomClassified(rng, 24, 5, 4, 0.3)
	v := Encode(c, xform.AxisY)
	line := make([]classify.Voxel, v.Ni)
	for k := 0; k < v.Nk; k++ {
		for j := 0; j < v.Nj; j++ {
			v.DecodeLine(k, j, line)
			_, vox := v.Scanline(k, j)
			covered := make([]bool, v.Ni)
			for _, sp := range v.LineSpans(k, j) {
				if sp.Start >= sp.End || sp.End > v.Ni {
					t.Fatalf("bad span %+v", sp)
				}
				for i := sp.Start; i < sp.End; i++ {
					covered[i] = true
					if got := vox[sp.VoxStart+i-sp.Start]; got != line[i] {
						t.Fatalf("span voxel mismatch at %d", i)
					}
				}
			}
			for i := 0; i < v.Ni; i++ {
				opaque := classify.Opacity(line[i]) >= v.MinOpacity
				if opaque != covered[i] {
					t.Fatalf("coverage mismatch at (%d,%d,%d): opaque=%v covered=%v",
						i, j, k, opaque, covered[i])
				}
			}
		}
	}
}

func TestEncodeAllAxesConsistentVoxelCount(t *testing.T) {
	c := classify.Classify(vol.MRIBrain(24), classify.Options{})
	all := EncodeAll(c)
	n0 := len(all[0].Vox)
	for _, v := range all[1:] {
		if len(v.Vox) != n0 {
			t.Fatalf("axis encodings disagree on voxel count: %d vs %d", len(v.Vox), n0)
		}
	}
}

func TestCompressionOnPhantom(t *testing.T) {
	// The paper relies on RLE compressing medical volumes heavily.
	c := classify.Classify(vol.MRIBrain(48), classify.Options{})
	v := Encode(c, xform.AxisZ)
	st := v.ComputeStats()
	if st.TransparentFrac < 0.5 {
		t.Fatalf("transparent fraction %.2f too low for phantom", st.TransparentFrac)
	}
	if st.CompressionPct > 80 {
		t.Fatalf("encoded size %.1f%% of dense; expected real compression", st.CompressionPct)
	}
}

func TestEmptyVolumeEncodes(t *testing.T) {
	c := &classify.Classified{Nx: 8, Ny: 8, Nz: 8,
		Voxels: make([]classify.Voxel, 512), MinOpacity: 4}
	v := Encode(c, xform.AxisZ)
	if len(v.Vox) != 0 {
		t.Fatalf("empty volume produced %d voxels", len(v.Vox))
	}
	line := make([]classify.Voxel, 8)
	v.DecodeLine(0, 0, line) // must not panic
	if sp := v.LineSpans(3, 3); len(sp) != 0 {
		t.Fatalf("empty volume has spans: %v", sp)
	}
}

func TestFullyOpaqueVolumeEncodes(t *testing.T) {
	c := &classify.Classified{Nx: 6, Ny: 5, Nz: 4,
		Voxels: make([]classify.Voxel, 120), MinOpacity: 4}
	for i := range c.Voxels {
		c.Voxels[i] = classify.Pack(255, 200, 100, 50)
	}
	v := Encode(c, xform.AxisX)
	if len(v.Vox) != 120 {
		t.Fatalf("opaque volume stored %d voxels, want 120", len(v.Vox))
	}
	sp := v.LineSpans(0, 0)
	if len(sp) != 1 || sp[0].Start != 0 || sp[0].End != v.Ni {
		t.Fatalf("opaque line spans = %v", sp)
	}
}

func TestDecodeLinePanicsOnWrongLength(t *testing.T) {
	c := randomClassified(rand.New(rand.NewSource(5)), 8, 4, 4, 0.5)
	v := Encode(c, xform.AxisZ)
	defer func() {
		if recover() == nil {
			t.Fatal("DecodeLine with wrong dst length did not panic")
		}
	}()
	v.DecodeLine(0, 0, make([]classify.Voxel, 7))
}

func TestScanlineIDLayout(t *testing.T) {
	c := randomClassified(rand.New(rand.NewSource(6)), 4, 3, 5, 0.5)
	v := Encode(c, xform.AxisZ)
	if v.ScanlineID(0, 0) != 0 || v.ScanlineID(1, 0) != v.Nj || v.ScanlineID(0, 1) != 1 {
		t.Fatal("scanline layout is not slice-major")
	}
	if v.ScanlineID(v.Nk-1, v.Nj-1) != v.Nk*v.Nj-1 {
		t.Fatal("last scanline id wrong")
	}
}

func TestEncodeParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{9, 7, 5}, {16, 16, 16}, {5, 3, 11}} {
		c := randomClassified(rng, dims[0], dims[1], dims[2], 0.3)
		for _, axis := range []xform.Axis{xform.AxisX, xform.AxisY, xform.AxisZ} {
			want := Encode(c, axis)
			for _, procs := range []int{2, 3, 7, 64} {
				got := EncodeParallel(c, axis, procs)
				if len(got.RunLens) != len(want.RunLens) || len(got.Vox) != len(want.Vox) {
					t.Fatalf("dims=%v axis=%v procs=%d: size mismatch", dims, axis, procs)
				}
				for i := range want.RunLens {
					if got.RunLens[i] != want.RunLens[i] {
						t.Fatalf("RunLens[%d] differs", i)
					}
				}
				for i := range want.Vox {
					if got.Vox[i] != want.Vox[i] {
						t.Fatalf("Vox[%d] differs", i)
					}
				}
				for i := range want.RunOff {
					if got.RunOff[i] != want.RunOff[i] || got.VoxOff[i] != want.VoxOff[i] {
						t.Fatalf("offsets differ at scanline %d", i)
					}
				}
			}
		}
	}
}

func TestEncodeParallelPhantom(t *testing.T) {
	c := classify.Classify(vol.MRIBrain(32), classify.Options{})
	want := Encode(c, xform.AxisZ)
	got := EncodeParallel(c, xform.AxisZ, 8)
	line1 := make([]classify.Voxel, want.Ni)
	line2 := make([]classify.Voxel, got.Ni)
	for k := 0; k < want.Nk; k++ {
		for j := 0; j < want.Nj; j++ {
			want.DecodeLine(k, j, line1)
			got.DecodeLine(k, j, line2)
			for i := range line1 {
				if line1[i] != line2[i] {
					t.Fatalf("decode differs at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}
