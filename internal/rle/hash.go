package rle

import (
	"encoding/binary"
	"fmt"
)

// Cache-key hashing. The render service caches classified volumes and
// their per-axis run-length encodings; both kinds of entry are keyed by a
// content fingerprint of the raw volume so that re-uploading identical
// data (or re-registering the same phantom) hits the cache regardless of
// the name it arrives under. FNV-1a over the dimensions and samples is
// enough: the keys only need to distinguish volumes, not resist an
// adversary, and a 64-bit digest over megabyte inputs makes accidental
// collisions vanishingly unlikely.

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// HashBytes folds b into a running 64-bit FNV-1a hash. Start from Seed.
func HashBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// HashUint64 folds one little-endian 64-bit value into a running hash —
// used for dimensions and parameters so that, e.g., a 2x8 and an 8x2
// volume with identical flattened samples still hash differently.
func HashUint64(h, v uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return HashBytes(h, buf[:])
}

// Seed is the FNV-1a offset basis; every key derivation starts from it.
const Seed uint64 = fnvOffset64

// VolumeKey fingerprints a raw 8-bit volume (dimensions plus samples in
// storage order) as a fixed-width hex string, the volume component of the
// render service's cache keys.
func VolumeKey(data []uint8, nx, ny, nz int) string {
	return VolumeModeKey(data, nx, ny, nz, 0, 0)
}

// modeKeyTag separates the mode parameters from the sample stream in the
// fingerprint so a data suffix can never alias a mode encoding.
const modeKeyTag = 0x65646f6d // "mode"

// VolumeModeKey fingerprints a raw volume together with its render-mode
// preprocessing parameters (the rendermode.Mode ordinal and, for the
// isosurface mode, its density threshold). Distinct modes always yield
// distinct keys, so the preprocessing cache can never serve one mode's
// classification or encodings to another; mode 0 (composite) folds nothing
// extra and reproduces the legacy VolumeKey exactly, keeping pre-existing
// fingerprints stable.
func VolumeModeKey(data []uint8, nx, ny, nz int, mode, isoThreshold uint8) string {
	h := HashUint64(Seed, uint64(nx))
	h = HashUint64(h, uint64(ny))
	h = HashUint64(h, uint64(nz))
	h = HashBytes(h, data)
	if mode != 0 {
		h = HashUint64(h, modeKeyTag)
		h = HashUint64(h, uint64(mode))
		h = HashUint64(h, uint64(isoThreshold))
	}
	return fmt.Sprintf("%016x", h)
}

// Fingerprint digests an encoded volume's structure and payload: the
// permuted dimensions, opacity threshold, run headers and packed voxels.
// Two encodings of the same classified volume along the same axis always
// agree (Encode and EncodeParallel are bit-identical), so the cache layer
// uses it to assert that a cached encoding really is interchangeable with
// a freshly built one.
func (v *Volume) Fingerprint() uint64 {
	h := HashUint64(Seed, uint64(v.Axis))
	h = HashUint64(h, uint64(v.Ni))
	h = HashUint64(h, uint64(v.Nj))
	h = HashUint64(h, uint64(v.Nk))
	h = HashUint64(h, uint64(v.MinOpacity))
	var buf [8]byte
	for _, r := range v.RunLens {
		binary.LittleEndian.PutUint16(buf[:2], r)
		h = HashBytes(h, buf[:2])
	}
	for _, vx := range v.Vox {
		binary.LittleEndian.PutUint32(buf[:4], vx)
		h = HashBytes(h, buf[:4])
	}
	return h
}

// MemoryBytes estimates the encoding's resident size — the quantity the
// cache's byte budget is accounted in.
func (v *Volume) MemoryBytes() int64 {
	return int64(len(v.Vox))*4 + int64(len(v.RunLens))*2 +
		int64(len(v.RunOff))*4 + int64(len(v.VoxOff))*4 +
		int64(len(v.SpanOff))*4 + int64(len(v.SpanClass)) +
		int64(len(v.SpanLo)+len(v.SpanCnt)+len(v.SpanVox))*4 +
		int64(len(v.packed))*8
}
