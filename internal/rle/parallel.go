package rle

import (
	"sync"

	"shearwarp/internal/classify"
	"shearwarp/internal/xform"
)

// EncodeParallel builds the run-length encoding with the given number of
// goroutines, partitioning by slices. The output is bit-identical to
// Encode: workers encode private per-slab buffers, offsets are fixed up by
// a prefix pass, and the buffers are copied into place in parallel.
func EncodeParallel(c *classify.Classified, axis xform.Axis, procs int) *Volume {
	ni, nj, nk := xform.PermutedDims(axis, c.Nx, c.Ny, c.Nz)
	if procs < 2 || nk < 2 {
		return Encode(c, axis)
	}
	if procs > nk {
		procs = nk
	}

	type slab struct {
		k0, k1  int
		runOff  []int32 // per scanline, relative to the slab
		voxOff  []int32
		spanOff []int32
		runLens []uint16
		vox     []classify.Voxel
		spanLo  []int32
		spanCnt []int32
		spanVox []int32
		spanCls []uint8
	}
	slabs := make([]slab, procs)

	// Phase 1: encode each slab privately.
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		slabs[p].k0 = p * nk / procs
		slabs[p].k1 = (p + 1) * nk / procs
		wg.Add(1)
		go func(s *slab) {
			defer wg.Done()
			sub := &Volume{Axis: axis, Ni: ni, Nj: nj, Nk: nk, MinOpacity: c.MinOpacity}
			line := make([]classify.Voxel, ni)
			for k := s.k0; k < s.k1; k++ {
				for j := 0; j < nj; j++ {
					s.runOff = append(s.runOff, int32(len(sub.RunLens)))
					s.voxOff = append(s.voxOff, int32(len(sub.Vox)))
					s.spanOff = append(s.spanOff, int32(len(sub.SpanClass)))
					for i := 0; i < ni; i++ {
						x, y, z := xform.ObjectIndex(axis, i, j, k)
						line[i] = c.Voxels[(z*c.Ny+y)*c.Nx+x]
					}
					sub.encodeLine(line)
				}
			}
			s.runLens = sub.RunLens
			s.vox = sub.Vox
			s.spanLo = sub.SpanLo
			s.spanCnt = sub.SpanCnt
			s.spanVox = sub.SpanVox
			s.spanCls = sub.SpanClass
		}(&slabs[p])
	}
	wg.Wait()

	// Phase 2: serial prefix over slab sizes.
	v := &Volume{
		Axis: axis, Ni: ni, Nj: nj, Nk: nk, MinOpacity: c.MinOpacity,
		RunOff:  make([]int32, nk*nj+1),
		VoxOff:  make([]int32, nk*nj+1),
		SpanOff: make([]int32, nk*nj+1),
	}
	runBase := make([]int32, procs+1)
	voxBase := make([]int32, procs+1)
	spanBase := make([]int32, procs+1)
	for p := 0; p < procs; p++ {
		runBase[p+1] = runBase[p] + int32(len(slabs[p].runLens))
		voxBase[p+1] = voxBase[p] + int32(len(slabs[p].vox))
		spanBase[p+1] = spanBase[p] + int32(len(slabs[p].spanCls))
	}
	v.RunLens = make([]uint16, runBase[procs])
	v.Vox = make([]classify.Voxel, voxBase[procs])
	v.SpanLo = make([]int32, spanBase[procs])
	v.SpanCnt = make([]int32, spanBase[procs])
	v.SpanVox = make([]int32, spanBase[procs])
	v.SpanClass = make([]uint8, spanBase[procs])
	v.RunOff[nk*nj] = runBase[procs]
	v.VoxOff[nk*nj] = voxBase[procs]
	v.SpanOff[nk*nj] = spanBase[procs]

	// Phase 3: copy slabs into place and rebase the offsets, in parallel.
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := &slabs[p]
			copy(v.RunLens[runBase[p]:], s.runLens)
			copy(v.Vox[voxBase[p]:], s.vox)
			copy(v.SpanLo[spanBase[p]:], s.spanLo)
			copy(v.SpanCnt[spanBase[p]:], s.spanCnt)
			copy(v.SpanClass[spanBase[p]:], s.spanCls)
			// Slab SpanVox values are offsets into the slab's private voxel
			// stream; rebase them to the merged Vox array.
			for i, vx := range s.spanVox {
				v.SpanVox[spanBase[p]+int32(i)] = voxBase[p] + vx
			}
			base := s.k0 * nj
			for i := range s.runOff {
				v.RunOff[base+i] = runBase[p] + s.runOff[i]
				v.VoxOff[base+i] = voxBase[p] + s.voxOff[i]
				v.SpanOff[base+i] = spanBase[p] + s.spanOff[i]
			}
		}(p)
	}
	wg.Wait()
	v.computeMaxLineRuns()
	return v
}
