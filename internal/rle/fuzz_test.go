package rle

import (
	"testing"

	"shearwarp/internal/classify"
	"shearwarp/internal/xform"
)

// buildClassified assembles a small classified volume whose packed voxels
// come straight from the fuzz bytes, so the run structure (opacity above
// or below the threshold) is entirely attacker-controlled — phantom data
// never produces adversarial run patterns like maximally alternating
// lines or an opaque voxel in the last position of every scanline.
func buildClassified(data []byte, nx, ny, nz int, minOp uint8) *classify.Classified {
	voxels := make([]classify.Voxel, nx*ny*nz)
	for i := range voxels {
		var v uint32
		for b := 0; b < 4; b++ {
			v = v<<8 | uint32(data[(4*i+b)%len(data)])
		}
		voxels[i] = v
	}
	return &classify.Classified{Nx: nx, Ny: ny, Nz: nz, Voxels: voxels, MinOpacity: minOp}
}

// FuzzEncodeDecodeRoundTrip checks the encoder's structural invariants
// and the decode round-trip on arbitrary voxel content: every scanline's
// run lengths must sum to the line length, the packed voxel stream must
// hold exactly the non-transparent voxels in order, and DecodeLine must
// reproduce the original line with transparent voxels zeroed.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add([]byte{0}, uint8(2), uint8(2), uint8(2), uint8(4), uint8(2))                      // all transparent
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint8(3), uint8(2), uint8(4), uint8(4), uint8(0)) // all opaque
	f.Add([]byte{0xff, 0, 0, 0, 0, 0, 0, 0}, uint8(4), uint8(3), uint8(2), uint8(4), uint8(1))
	f.Add([]byte{0, 0, 0, 0, 0xff, 1, 2, 3}, uint8(5), uint8(5), uint8(5), uint8(128), uint8(0)) // alternating runs
	f.Add([]byte{4, 4, 4, 4, 3, 3, 3, 3}, uint8(8), uint8(2), uint8(2), uint8(4), uint8(2))     // threshold boundary
	f.Fuzz(func(t *testing.T, data []byte, bx, by, bz, minOp, axisByte uint8) {
		if len(data) == 0 {
			t.Skip()
		}
		nx, ny, nz := 2+int(bx)%14, 2+int(by)%14, 2+int(bz)%14
		axis := xform.Axis(int(axisByte) % 3)
		c := buildClassified(data, nx, ny, nz, minOp)
		v := Encode(c, axis)

		ni, nj, nk := xform.PermutedDims(axis, nx, ny, nz)
		if v.Ni != ni || v.Nj != nj || v.Nk != nk {
			t.Fatalf("permuted dims (%d,%d,%d) != expected (%d,%d,%d)", v.Ni, v.Nj, v.Nk, ni, nj, nk)
		}
		if got, want := len(v.RunOff), nk*nj+1; got != want {
			t.Fatalf("len(RunOff) = %d, want %d", got, want)
		}
		if v.RunOff[len(v.RunOff)-1] != int32(len(v.RunLens)) {
			t.Fatalf("RunOff end %d != len(RunLens) %d", v.RunOff[len(v.RunOff)-1], len(v.RunLens))
		}
		if v.VoxOff[len(v.VoxOff)-1] != int32(len(v.Vox)) {
			t.Fatalf("VoxOff end %d != len(Vox) %d", v.VoxOff[len(v.VoxOff)-1], len(v.Vox))
		}

		dst := make([]classify.Voxel, ni)
		maxRuns := 0
		for k := 0; k < nk; k++ {
			for j := 0; j < nj; j++ {
				s := v.ScanlineID(k, j)
				if v.RunOff[s] > v.RunOff[s+1] || v.VoxOff[s] > v.VoxOff[s+1] {
					t.Fatalf("scanline %d: non-monotone offsets", s)
				}
				rl, vox := v.Scanline(k, j)
				if len(rl)%2 != 0 {
					t.Fatalf("scanline %d: odd run count %d", s, len(rl))
				}
				if n := len(rl); n > maxRuns {
					maxRuns = n
				}
				sum, opaque := 0, 0
				for r, l := range rl {
					sum += int(l)
					if r%2 == 1 {
						opaque += int(l)
					}
				}
				if sum != ni {
					t.Fatalf("scanline %d: run lengths sum to %d, want %d", s, sum, ni)
				}
				if opaque != len(vox) {
					t.Fatalf("scanline %d: opaque run total %d != packed voxels %d", s, opaque, len(vox))
				}

				// Decode round-trip against the original classified line.
				gotOpaque, gotRuns := v.DecodeLine(k, j, dst)
				if gotOpaque != opaque || gotRuns != len(rl) {
					t.Fatalf("scanline %d: DecodeLine reports (%d, %d), want (%d, %d)",
						s, gotOpaque, gotRuns, opaque, len(rl))
				}
				for i := 0; i < ni; i++ {
					x, y, z := xform.ObjectIndex(axis, i, j, k)
					orig := c.Voxels[(z*c.Ny+y)*c.Nx+x]
					want := orig
					if classify.Opacity(orig) < minOp {
						want = 0
					}
					if dst[i] != want {
						t.Fatalf("scanline %d voxel %d: decoded %#x, want %#x", s, i, dst[i], want)
					}
				}

				// Spans must cover exactly the non-transparent voxels.
				covered := 0
				vi := 0
				for _, sp := range v.LineSpans(k, j) {
					if sp.Start >= sp.End || sp.Start < 0 || sp.End > ni {
						t.Fatalf("scanline %d: bad span [%d, %d)", s, sp.Start, sp.End)
					}
					if sp.VoxStart != vi {
						t.Fatalf("scanline %d: span VoxStart %d, want %d", s, sp.VoxStart, vi)
					}
					for i := sp.Start; i < sp.End; i++ {
						if classify.Opacity(dst[i]) < minOp && minOp > 0 {
							t.Fatalf("scanline %d: span covers transparent voxel %d", s, i)
						}
					}
					covered += sp.End - sp.Start
					vi += sp.End - sp.Start
				}
				if covered != opaque {
					t.Fatalf("scanline %d: spans cover %d voxels, want %d", s, covered, opaque)
				}
			}
		}
		if v.MaxLineRuns != maxRuns {
			t.Fatalf("MaxLineRuns %d, want %d", v.MaxLineRuns, maxRuns)
		}

		// The parallel encoder must produce the identical encoding (the
		// cache keys depend on it).
		pv := EncodeParallel(c, axis, 3)
		if v.Fingerprint() != pv.Fingerprint() {
			t.Fatalf("serial and parallel encodings differ: %#x vs %#x", v.Fingerprint(), pv.Fingerprint())
		}
	})
}

// FuzzSpanDecodeSoAEquivalence pins the contract the compositing kernels
// build on: windowing the encode-time SoA span index (AppendSpansSoA) and
// walking the run headers scalar-style (AppendSpans) must visit the same
// spans in the same order, with identical (offset, count, voxel offset)
// triples, and the index's class byte must equal the maximum opacity over
// the span's packed voxels. The kernels consume only the SoA side, so any
// divergence here would silently change rendered frames.
func FuzzSpanDecodeSoAEquivalence(f *testing.F) {
	f.Add([]byte{0}, uint8(2), uint8(2), uint8(2), uint8(4), uint8(0))                         // all transparent
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint8(3), uint8(2), uint8(4), uint8(4), uint8(1))    // all opaque
	f.Add([]byte{0xff, 0, 0, 0, 0, 0, 0, 0}, uint8(4), uint8(3), uint8(2), uint8(4), uint8(2)) // 1-voxel runs
	f.Add([]byte{0, 0, 0, 0, 0xff, 1, 2, 3}, uint8(5), uint8(5), uint8(5), uint8(128), uint8(0))
	f.Add([]byte{4, 4, 4, 4, 3, 3, 3, 3}, uint8(8), uint8(2), uint8(2), uint8(4), uint8(1)) // threshold boundary
	f.Fuzz(func(t *testing.T, data []byte, bx, by, bz, minOp, axisByte uint8) {
		if len(data) == 0 {
			t.Skip()
		}
		nx, ny, nz := 2+int(bx)%14, 2+int(by)%14, 2+int(bz)%14
		axis := xform.Axis(int(axisByte) % 3)
		c := buildClassified(data, nx, ny, nz, minOp)
		v := Encode(c, axis)

		// The SoA index must be index-aligned and scanline-monotone.
		nSpans := len(v.SpanLo)
		if len(v.SpanCnt) != nSpans || len(v.SpanVox) != nSpans || len(v.SpanClass) != nSpans {
			t.Fatalf("SoA arrays misaligned: lo %d cnt %d vox %d class %d",
				nSpans, len(v.SpanCnt), len(v.SpanVox), len(v.SpanClass))
		}
		if got, want := len(v.SpanOff), v.Nk*v.Nj+1; got != want {
			t.Fatalf("len(SpanOff) = %d, want %d", got, want)
		}
		if v.SpanOff[len(v.SpanOff)-1] != int32(nSpans) {
			t.Fatalf("SpanOff end %d != span count %d", v.SpanOff[len(v.SpanOff)-1], nSpans)
		}

		var b SpanBuf
		for k := 0; k < v.Nk; k++ {
			for j := 0; j < v.Nj; j++ {
				s := v.ScanlineID(k, j)
				if v.SpanOff[s] > v.SpanOff[s+1] {
					t.Fatalf("scanline %d: non-monotone SpanOff", s)
				}

				scalar := v.AppendSpans(k, j, nil)
				b.Reset()
				v.AppendSpansSoA(k, j, &b)
				if b.Len() != len(scalar) {
					t.Fatalf("scanline %d: SoA decodes %d spans, scalar run walk %d",
						s, b.Len(), len(scalar))
				}

				_, vox := v.Scanline(k, j)
				for n, sp := range scalar {
					if int(b.Lo[n]) != sp.Start {
						t.Fatalf("scanline %d span %d: SoA offset %d, scalar %d",
							s, n, b.Lo[n], sp.Start)
					}
					if int(b.Cnt[n]) != sp.End-sp.Start {
						t.Fatalf("scanline %d span %d: SoA count %d, scalar %d",
							s, n, b.Cnt[n], sp.End-sp.Start)
					}
					if int(b.Vox[n]) != sp.VoxStart {
						t.Fatalf("scanline %d span %d: SoA voxel offset %d, scalar %d",
							s, n, b.Vox[n], sp.VoxStart)
					}
					// The class byte must be the exact max opacity of the
					// span's voxels — kernels skip class-0 spans entirely.
					var class uint8
					for _, px := range vox[sp.VoxStart : sp.VoxStart+sp.End-sp.Start] {
						if a := classify.Opacity(px); a > class {
							class = a
						}
					}
					if b.Class[n] != class {
						t.Fatalf("scanline %d span %d: SoA class %d, scalar max opacity %d",
							s, n, b.Class[n], class)
					}
				}
			}
		}
	})
}
