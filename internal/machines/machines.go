// Package machines holds the presets for the five shared-address-space
// platforms the paper evaluates (sections 3.2 and 5.5), expressed as
// memory-system simulator configurations. Latencies are in processor
// cycles of each machine's own processors, following the parameters the
// paper lists; where the paper gives only bandwidths, the cycle costs are
// derived estimates. Shapes (who wins, where curves bend), not absolute
// cycle counts, are the reproduction target.
package machines

import "shearwarp/internal/memsim"

// Machine is a simulated platform preset.
type Machine struct {
	Name     string
	MaxProcs int

	// Memory system template; Procs is filled in per run.
	Mem memsim.Config

	// Synchronization costs for the execution engine.
	BarrierCost int64
	LockCost    int64
}

// NewSystem instantiates the machine's memory system for a processor count.
func (m Machine) NewSystem(procs int) *memsim.System {
	cfg := m.Mem
	cfg.Procs = procs
	return memsim.New(cfg)
}

// DASH models the Stanford DASH prototype: 4-processor bus-based nodes on
// a 2-D mesh, 256 KB second-level caches with small 16-byte lines, and a
// distributed directory protocol. The small lines and distributed memory
// give it the paper's highest miss rates and remote costs.
func DASH() Machine {
	return Machine{
		Name:     "DASH",
		MaxProcs: 32,
		Mem: memsim.Config{
			CacheBytes: 256 << 10, LineBytes: 16, Assoc: 1,
			LocalMiss: 30, Remote2Hop: 100, Remote3Hop: 130, UpgradeLat: 60,
			ProcsPerNode: 4, PageBytes: 4096, Occupancy: 5,
		},
		BarrierCost: 2000,
		LockCost:    80,
	}
}

// Challenge models the SGI Challenge: a 16-processor bus-based centralized
// shared-memory machine with 1 MB caches and 128-byte lines. All misses
// cost the same and contend on the single bus.
func Challenge() Machine {
	return Machine{
		Name:     "Challenge",
		MaxProcs: 16,
		Mem: memsim.Config{
			CacheBytes: 1 << 20, LineBytes: 128, Assoc: 2,
			LocalMiss: 60, Remote2Hop: 60, Remote3Hop: 60, UpgradeLat: 40,
			Centralized: true, ProcsPerNode: 16, PageBytes: 4096, Occupancy: 8,
		},
		BarrierCost: 800,
		LockCost:    60,
	}
}

// Simulator is the paper's "pure" modern CC-NUMA machine (section 3.2):
// one processor per node, 1 MB 4-way caches with 64-byte lines, and the
// quoted 70 / 210 / 280 cycle miss costs.
func Simulator() Machine {
	return Machine{
		Name:     "Simulator",
		MaxProcs: 64,
		Mem: memsim.Config{
			CacheBytes: 1 << 20, LineBytes: 64, Assoc: 4,
			LocalMiss: 70, Remote2Hop: 210, Remote3Hop: 280, UpgradeLat: 120,
			ProcsPerNode: 1, PageBytes: 4096, Occupancy: 6,
		},
		BarrierCost: 1500,
		LockCost:    70,
	}
}

// Origin2000 models the SGI Origin2000 (section 5.5.1): two processors per
// node, 4 MB 2-way caches with 128-byte lines, and a lower remote-to-local
// latency ratio than DASH.
func Origin2000() Machine {
	return Machine{
		Name:     "Origin2000",
		MaxProcs: 16,
		Mem: memsim.Config{
			CacheBytes: 4 << 20, LineBytes: 128, Assoc: 2,
			LocalMiss: 80, Remote2Hop: 160, Remote3Hop: 210, UpgradeLat: 90,
			ProcsPerNode: 2, PageBytes: 4096, Occupancy: 5,
		},
		BarrierCost: 1000,
		LockCost:    60,
	}
}

// All returns the hardware-coherent presets in the order the paper
// discusses them. (The SVM platform lives in package svmsim; it is not a
// cache-coherent preset.)
func All() []Machine {
	return []Machine{DASH(), Challenge(), Simulator(), Origin2000()}
}

// ByName looks a preset up by its name; it returns false for unknown names.
func ByName(name string) (Machine, bool) {
	for _, m := range All() {
		if m.Name == name {
			return m, true
		}
	}
	return Machine{}, false
}
