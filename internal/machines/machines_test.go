package machines

import "testing"

func TestAllPresetsWellFormed(t *testing.T) {
	for _, m := range All() {
		if m.Name == "" || m.MaxProcs < 2 {
			t.Fatalf("bad preset %+v", m)
		}
		c := m.Mem
		if c.CacheBytes < 1<<10 || c.LineBytes < 16 || c.Assoc < 1 {
			t.Fatalf("%s: implausible cache geometry %+v", m.Name, c)
		}
		if c.LocalMiss <= 0 || c.Remote2Hop < c.LocalMiss || c.Remote3Hop < c.Remote2Hop {
			t.Fatalf("%s: latencies must be ordered local <= 2hop <= 3hop: %+v", m.Name, c)
		}
		if m.BarrierCost <= 0 || m.LockCost <= 0 {
			t.Fatalf("%s: missing sync costs", m.Name)
		}
		sys := m.NewSystem(4)
		if sys == nil || sys.Cfg.Procs != 4 {
			t.Fatalf("%s: NewSystem broken", m.Name)
		}
	}
}

func TestPaperParameters(t *testing.T) {
	// The paper states these exactly (sections 3.2 and 5.5.1).
	sim := Simulator()
	if sim.Mem.CacheBytes != 1<<20 || sim.Mem.LineBytes != 64 || sim.Mem.Assoc != 4 {
		t.Fatalf("Simulator cache geometry %+v does not match the paper", sim.Mem)
	}
	if sim.Mem.LocalMiss != 70 || sim.Mem.Remote2Hop != 210 || sim.Mem.Remote3Hop != 280 {
		t.Fatalf("Simulator latencies %+v do not match the paper's 70/210/280", sim.Mem)
	}
	d := DASH()
	if d.Mem.LineBytes != 16 || d.Mem.CacheBytes != 256<<10 || d.Mem.ProcsPerNode != 4 {
		t.Fatalf("DASH geometry %+v does not match the paper", d.Mem)
	}
	ch := Challenge()
	if !ch.Mem.Centralized || ch.Mem.LineBytes != 128 || ch.Mem.CacheBytes != 1<<20 {
		t.Fatalf("Challenge geometry %+v does not match the paper", ch.Mem)
	}
	o := Origin2000()
	if o.Mem.CacheBytes != 4<<20 || o.Mem.LineBytes != 128 || o.Mem.Assoc != 2 || o.Mem.ProcsPerNode != 2 {
		t.Fatalf("Origin2000 geometry %+v does not match the paper", o.Mem)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"DASH", "Challenge", "Simulator", "Origin2000"} {
		m, ok := ByName(name)
		if !ok || m.Name != name {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("CM-5"); ok {
		t.Fatal("unknown machine resolved")
	}
}
