package volcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"shearwarp/internal/xform"
)

func key(i int) Key {
	return Key{Volume: fmt.Sprintf("vol%02d", i), Transfer: "mri", Axis: AxisNone}
}

func TestGetOrBuildCachesAndCounts(t *testing.T) {
	c := New(1 << 20)
	builds := 0
	build := func() (any, int64) { builds++; return "value", 100 }

	if v := c.GetOrBuild(key(1), build); v != "value" {
		t.Fatalf("built value = %v", v)
	}
	if v := c.GetOrBuild(key(1), build); v != "value" {
		t.Fatalf("cached value = %v", v)
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Builds != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 build", st)
	}
	if st.Bytes != 100 || st.Entries != 1 {
		t.Fatalf("accounting = %+v", st)
	}
}

func TestLRUEvictionOrderAndBudget(t *testing.T) {
	c := New(300) // room for three 100-byte entries
	for i := 0; i < 3; i++ {
		c.Put(key(i), i, 100)
	}
	// Touch entry 0 so entry 1 becomes least recently used.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	c.Put(key(3), 3, 100) // over budget: must evict exactly entry 1

	if _, ok := c.Get(key(1)); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(key(i)); !ok {
			t.Fatalf("entry %d wrongly evicted", i)
		}
	}
	st := c.Snapshot()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 300 {
		t.Fatalf("cache over budget after eviction: %d bytes", st.Bytes)
	}
}

func TestNeverExceedsCapacityUnderChurn(t *testing.T) {
	c := New(1000)
	for i := 0; i < 200; i++ {
		c.Put(key(i%50), i, int64(50+i%7*10))
		if b := c.Bytes(); b > 1000+120 { // one oversized insert may transiently pin
			t.Fatalf("iteration %d: %d bytes", i, b)
		}
	}
	if c.Bytes() > 1000 {
		t.Fatalf("final bytes %d over capacity", c.Bytes())
	}
}

func TestOversizedEntryStillCaches(t *testing.T) {
	c := New(100)
	c.Put(key(1), "big", 500)
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("oversized entry was not retained")
	}
	// The next insert replaces it (the oversized entry is the LRU tail).
	c.Put(key(2), "small", 10)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("oversized entry survived a later insert")
	}
}

func TestAxisDistinguishesKeys(t *testing.T) {
	c := New(0) // unbounded
	base := Key{Volume: "v", Transfer: "ct"}
	for _, ax := range []xform.Axis{AxisNone, xform.AxisX, xform.AxisY, xform.AxisZ} {
		k := base
		k.Axis = ax
		c.Put(k, ax, 10)
	}
	if c.Len() != 4 {
		t.Fatalf("entries = %d, want 4 (one per axis + AxisNone)", c.Len())
	}
}

func TestSingleFlightCoalescesConcurrentMisses(t *testing.T) {
	c := New(1 << 20)
	var builds atomic.Int64
	gate := make(chan struct{})
	const waiters = 16

	var wg sync.WaitGroup
	values := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			values[i] = c.GetOrBuild(key(1), func() (any, int64) {
				builds.Add(1)
				<-gate // hold the build until all waiters have queued
				return "shared", 10
			})
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("builds = %d, want 1 (single-flight)", n)
	}
	for i, v := range values {
		if v != "shared" {
			t.Fatalf("waiter %d got %v", i, v)
		}
	}
}
