package volcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shearwarp/internal/xform"
)

func key(i int) Key {
	return Key{Volume: fmt.Sprintf("vol%02d", i), Transfer: "mri", Axis: AxisNone}
}

func TestGetOrBuildCachesAndCounts(t *testing.T) {
	c := New(1 << 20)
	builds := 0
	build := func() (any, int64) { builds++; return "value", 100 }

	if v := c.GetOrBuild(key(1), build); v != "value" {
		t.Fatalf("built value = %v", v)
	}
	if v := c.GetOrBuild(key(1), build); v != "value" {
		t.Fatalf("cached value = %v", v)
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Builds != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 build", st)
	}
	if st.Bytes != 100 || st.Entries != 1 {
		t.Fatalf("accounting = %+v", st)
	}
}

func TestLRUEvictionOrderAndBudget(t *testing.T) {
	c := New(300) // room for three 100-byte entries
	for i := 0; i < 3; i++ {
		c.Put(key(i), i, 100)
	}
	// Touch entry 0 so entry 1 becomes least recently used.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	c.Put(key(3), 3, 100) // over budget: must evict exactly entry 1

	if _, ok := c.Get(key(1)); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(key(i)); !ok {
			t.Fatalf("entry %d wrongly evicted", i)
		}
	}
	st := c.Snapshot()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 300 {
		t.Fatalf("cache over budget after eviction: %d bytes", st.Bytes)
	}
}

func TestNeverExceedsCapacityUnderChurn(t *testing.T) {
	c := New(1000)
	for i := 0; i < 200; i++ {
		c.Put(key(i%50), i, int64(50+i%7*10))
		if b := c.Bytes(); b > 1000+120 { // one oversized insert may transiently pin
			t.Fatalf("iteration %d: %d bytes", i, b)
		}
	}
	if c.Bytes() > 1000 {
		t.Fatalf("final bytes %d over capacity", c.Bytes())
	}
}

func TestOversizedEntryStillCaches(t *testing.T) {
	c := New(100)
	c.Put(key(1), "big", 500)
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("oversized entry was not retained")
	}
	// The next insert replaces it (the oversized entry is the LRU tail).
	c.Put(key(2), "small", 10)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("oversized entry survived a later insert")
	}
}

func TestAxisDistinguishesKeys(t *testing.T) {
	c := New(0) // unbounded
	base := Key{Volume: "v", Transfer: "ct"}
	for _, ax := range []xform.Axis{AxisNone, xform.AxisX, xform.AxisY, xform.AxisZ} {
		k := base
		k.Axis = ax
		c.Put(k, ax, 10)
	}
	if c.Len() != 4 {
		t.Fatalf("entries = %d, want 4 (one per axis + AxisNone)", c.Len())
	}
}

func TestSingleFlightCoalescesConcurrentMisses(t *testing.T) {
	c := New(1 << 20)
	var builds atomic.Int64
	gate := make(chan struct{})
	const waiters = 16

	var wg sync.WaitGroup
	values := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			values[i] = c.GetOrBuild(key(1), func() (any, int64) {
				builds.Add(1)
				<-gate // hold the build until all waiters have queued
				return "shared", 10
			})
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("builds = %d, want 1 (single-flight)", n)
	}
	for i, v := range values {
		if v != "shared" {
			t.Fatalf("waiter %d got %v", i, v)
		}
	}
}

// TestFailedBuildNotCachedAndRetried verifies the single-flight failure
// contract: an error build caches nothing, counts a failure, and the next
// call re-runs the builder.
func TestFailedBuildNotCachedAndRetried(t *testing.T) {
	c := New(0)
	k := Key{Volume: "v", Transfer: "mri", Axis: AxisNone}
	calls := 0
	boom := errors.New("boom")
	_, err := c.GetOrBuildE(k, func() (any, int64, error) {
		calls++
		return nil, 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed build cached an entry")
	}
	if st := c.Snapshot(); st.Failures != 1 || st.Builds != 0 {
		t.Fatalf("failures=%d builds=%d, want 1/0", st.Failures, st.Builds)
	}
	v, err := c.GetOrBuildE(k, func() (any, int64, error) {
		calls++
		return "ok", 1, nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("retry: v=%v err=%v", v, err)
	}
	if calls != 2 {
		t.Fatalf("builder ran %d times, want 2 (failure then retry)", calls)
	}
	if st := c.Snapshot(); st.Failures != 1 || st.Builds != 1 {
		t.Fatalf("failures=%d builds=%d after retry, want 1/1", st.Failures, st.Builds)
	}
}

// TestPanickedBuildReleasesWaiters starts many waiters on one key whose
// build panics: every waiter must receive a *BuildError (no deadlock, no
// poisoned in-flight slot), and a later call must retry and succeed.
func TestPanickedBuildReleasesWaiters(t *testing.T) {
	c := New(0)
	k := Key{Volume: "v", Transfer: "mri", Axis: AxisNone}
	const waiters = 8
	started := make(chan struct{})
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := c.GetOrBuildE(k, func() (any, int64, error) {
				close(started) // only the single-flight winner runs this
				<-time.After(20 * time.Millisecond)
				panic("builder exploded")
			})
			errs <- err
		}()
	}
	<-started
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			var be *BuildError
			if !errors.As(err, &be) {
				t.Fatalf("waiter got %v, want *BuildError", err)
			}
			if be.Value != "builder exploded" {
				t.Fatalf("BuildError.Value = %v", be.Value)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter deadlocked on a panicked build")
		}
	}
	if c.Len() != 0 {
		t.Fatal("panicked build cached an entry")
	}
	// The key is not wedged: a clean build succeeds.
	v, err := c.GetOrBuildE(k, func() (any, int64, error) { return 42, 1, nil })
	if err != nil || v != 42 {
		t.Fatalf("retry after panic: v=%v err=%v", v, err)
	}
}

// TestGetOrBuildRepanicsBuildError keeps the panic contract of the
// error-less entry point: GetOrBuild re-panics a failed build as
// *BuildError.
func TestGetOrBuildRepanicsBuildError(t *testing.T) {
	c := New(0)
	defer func() {
		v := recover()
		if _, ok := v.(*BuildError); !ok {
			t.Fatalf("recovered %v, want *BuildError", v)
		}
	}()
	c.GetOrBuild(Key{Volume: "v"}, func() (any, int64) { panic("nope") })
}

// TestTenantStats pins the per-tenant aggregation: hits, misses, builds
// with timed durations, evictions and byte accounting all land under the
// right volume fingerprint, so the dashboard can show churn per tenant.
func TestTenantStats(t *testing.T) {
	c := New(250) // room for two 100-byte entries plus slack

	// Tenant A: one miss+build, then a hit.
	ka := Key{Volume: "tenantA", Transfer: "mri", Axis: AxisNone}
	c.GetOrBuild(ka, func() (any, int64) { return "a", 100 })
	c.GetOrBuild(ka, func() (any, int64) { return "a", 100 })
	// Tenant B: two distinct keys -> two builds.
	for ax := xform.Axis(0); ax < 2; ax++ {
		k := Key{Volume: "tenantB", Transfer: "mri", Axis: ax}
		c.GetOrBuild(k, func() (any, int64) { return "b", 100 })
	}
	// Budget now exceeded (300 > 250): the LRU tail, tenantA's entry,
	// must have been evicted and accounted against tenantA.
	byVol := map[string]TenantStats{}
	for _, ts := range c.Tenants() {
		byVol[ts.Volume] = ts
	}
	a, b := byVol["tenantA"], byVol["tenantB"]
	if a.Hits != 1 || a.Misses != 1 || a.Builds != 1 {
		t.Fatalf("tenantA counters = %+v, want 1 hit, 1 miss, 1 build", a)
	}
	if a.Evictions != 1 || a.Entries != 0 || a.Bytes != 0 {
		t.Fatalf("tenantA eviction accounting = %+v, want 1 eviction, 0 entries, 0 bytes", a)
	}
	if b.Builds != 2 || b.Entries != 2 || b.Bytes != 200 {
		t.Fatalf("tenantB accounting = %+v, want 2 builds, 2 entries, 200 bytes", b)
	}
	if a.BuildNS < 0 || b.BuildNS < 0 {
		t.Fatalf("negative build time: a=%d b=%d", a.BuildNS, b.BuildNS)
	}

	// A failed build counts as a tenant failure, never as a build.
	kf := Key{Volume: "tenantC", Transfer: "mri", Axis: AxisNone}
	if _, err := c.GetOrBuildE(kf, func() (any, int64, error) {
		return nil, 0, errors.New("boom")
	}); err == nil {
		t.Fatal("failed build returned nil error")
	}
	for _, ts := range c.Tenants() {
		if ts.Volume == "tenantC" {
			if ts.Failures != 1 || ts.Builds != 0 {
				t.Fatalf("tenantC = %+v, want 1 failure, 0 builds", ts)
			}
			return
		}
	}
	t.Fatal("tenantC missing from Tenants()")
}

// TestTenantOverflow checks the per-tenant map stops growing at
// maxTenants and aggregates the excess under TenantOverflow.
func TestTenantOverflow(t *testing.T) {
	c := New(-1)
	for i := 0; i < maxTenants+10; i++ {
		k := Key{Volume: fmt.Sprintf("v%05d", i), Transfer: "mri", Axis: AxisNone}
		c.Get(k) // miss
	}
	tenants := c.Tenants()
	if len(tenants) > maxTenants+1 {
		t.Fatalf("tenant map grew to %d entries, cap is %d+overflow", len(tenants), maxTenants)
	}
	var overflow *TenantStats
	for i := range tenants {
		if tenants[i].Volume == TenantOverflow {
			overflow = &tenants[i]
		}
	}
	if overflow == nil || overflow.Misses < 10 {
		t.Fatalf("overflow bucket missing or undercounted: %+v", overflow)
	}
}
