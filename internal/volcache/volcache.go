// Package volcache is the render service's LRU cache of view-independent
// preprocessing products: classified volumes and their per-axis
// run-length encodings. Entries are keyed by (volume fingerprint,
// transfer function, principal axis) — the axis is meaningful only for
// encodings, since classification is axis-independent — and accounted in
// bytes against a fixed budget, so a long-running server can keep the hot
// working set of volumes prepared while older ones age out.
//
// Both products are immutable once built, which is what makes sharing
// them across a pool of concurrently rendering workers safe: the cache
// hands out the same pointer to every caller and never mutates or frees
// an entry in place (eviction only drops the cache's reference; renderers
// still holding the product keep it alive).
//
// Builds are single-flight: when several requests miss on the same key at
// once, one goroutine classifies/encodes and the rest wait for its
// result, so a thundering herd on a cold volume costs one build, not N.
// A build that fails — by returning an error or by panicking — releases
// every waiter with that error, caches nothing, and clears the in-flight
// slot, so the next request retries the build instead of wedging on a
// poisoned entry.
package volcache

import (
	"container/list"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"shearwarp/internal/xform"
)

// AxisNone marks a key as axis-independent (a classified volume rather
// than a per-axis encoding).
const AxisNone xform.Axis = -1

// Key identifies one cached preprocessing product.
type Key struct {
	Volume   string     // content fingerprint of the raw volume (rle.VolumeKey)
	Transfer string     // transfer-function name ("mri", "ct", ...)
	Axis     xform.Axis // principal axis of an encoding, or AxisNone
}

// Stats is a snapshot of the cache's counters. Hits+Misses counts lookup
// outcomes; Builds counts completed builder invocations (misses coalesced
// by single-flight produce one build); Evictions counts entries dropped
// to fit the byte budget.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Builds    int64 `json:"builds"`
	Failures  int64 `json:"build_failures"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Capacity  int64 `json:"capacity_bytes"`
}

// TenantStats aggregates the cache's counters for one tenant — one
// volume fingerprint (Key.Volume) across its transfer functions and
// axes. The render service joins the fingerprint back to the registered
// volume name, so the dashboard and load reports can show cache churn
// per tenant rather than only in aggregate.
type TenantStats struct {
	Volume    string `json:"volume"` // fingerprint (Key.Volume)
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Builds    int64  `json:"builds"`
	Failures  int64  `json:"build_failures"`
	Evictions int64  `json:"evictions"`
	BuildNS   int64  `json:"build_ns"` // summed wall time of completed builds
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// maxTenants bounds the per-tenant stats map: a service hammered with
// more distinct volume fingerprints than this aggregates the excess
// under TenantOverflow instead of growing without bound.
const maxTenants = 1024

// TenantOverflow is the pseudo-tenant that absorbs per-tenant counters
// once maxTenants distinct fingerprints have been seen.
const TenantOverflow = "_overflow"

type tenantCounters struct {
	hits, misses, builds, failures, evictions int64
	buildNS                                   int64
	entries                                   int
	bytes                                     int64
}

type entry struct {
	key   Key
	value any
	bytes int64
}

// call is an in-flight build other goroutines can wait on.
type call struct {
	done  chan struct{}
	value any
	err   error
}

// BuildError wraps a panic recovered from a cache builder, so the
// builder's caller and every coalesced waiter receive the failure as a
// value instead of a deadlock.
type BuildError struct {
	Key   Key
	Value any    // the recovered panic value
	Stack []byte // builder goroutine stack at recovery
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("volcache: build of %v panicked: %v", e.Key, e.Value)
}

// Unwrap exposes an error panic value to errors.Is/As.
func (e *BuildError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Cache is a byte-bounded LRU over preprocessing products. The zero value
// is not usable; construct with New. All methods are safe for concurrent
// use.
type Cache struct {
	// OnBuild, when non-nil, observes every completed builder invocation
	// (coalesced waiters do not re-fire it) with the key, the build's
	// wall-clock duration and its error (nil on success). The render
	// service wires it to the cache-build latency histogram and the
	// structured log. Set it before the cache is shared between
	// goroutines; it must not call back into the cache. Nil costs no
	// clock reads.
	OnBuild func(Key, time.Duration, error)

	mu       sync.Mutex
	capacity int64
	bytes    int64
	ll       *list.List // front = most recently used; elements hold *entry
	items    map[Key]*list.Element
	inflight map[Key]*call
	tenants  map[string]*tenantCounters // Key.Volume -> aggregated counters

	hits, misses, builds, failures, evictions int64
}

// tenantLocked returns (creating on first use) the counters for a
// volume fingerprint. Callers hold c.mu.
func (c *Cache) tenantLocked(volume string) *tenantCounters {
	tc, ok := c.tenants[volume]
	if !ok {
		if len(c.tenants) >= maxTenants {
			volume = TenantOverflow
			if tc, ok = c.tenants[volume]; ok {
				return tc
			}
		}
		tc = &tenantCounters{}
		c.tenants[volume] = tc
	}
	return tc
}

// New returns a cache that evicts least-recently-used entries once the
// sum of entry sizes exceeds capacity bytes. A non-positive capacity
// means unbounded.
func New(capacity int64) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*call),
		tenants:  make(map[string]*tenantCounters),
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.tenantLocked(k.Volume).hits++
		return el.Value.(*entry).value, true
	}
	c.misses++
	c.tenantLocked(k.Volume).misses++
	return nil, false
}

// GetOrBuild returns the cached value for k, building and inserting it on
// a miss. build returns the value and its resident size in bytes.
// Concurrent misses on the same key share a single build; every caller
// receives the same value. The build runs without the cache lock, so a
// slow classification never blocks hits on other keys. A panicking build
// re-panics here (and in every coalesced waiter) with a *BuildError;
// callers that want failures as values use GetOrBuildE.
func (c *Cache) GetOrBuild(k Key, build func() (any, int64)) any {
	v, err := c.GetOrBuildE(k, func() (any, int64, error) {
		v, n := build()
		return v, n, nil
	})
	if err != nil {
		panic(err)
	}
	return v
}

// GetOrBuildE is GetOrBuild for builders that can fail. A build that
// returns an error or panics (the panic is recovered into a *BuildError)
// caches nothing: every coalesced waiter receives the same error, the
// in-flight slot is cleared before waiters are released, and the next
// call for the key runs the build again.
func (c *Cache) GetOrBuildE(k Key, build func() (any, int64, error)) (any, error) {
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.tenantLocked(k.Volume).hits++
		c.mu.Unlock()
		return el.Value.(*entry).value, nil
	}
	c.misses++
	c.tenantLocked(k.Volume).misses++
	if cl, ok := c.inflight[k]; ok {
		// Another goroutine is already building this key: wait for it.
		c.mu.Unlock()
		<-cl.done
		return cl.value, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[k] = cl
	c.mu.Unlock()

	var n int64
	t0 := time.Now()
	cl.value, n, cl.err = runBuild(k, build)
	dur := time.Since(t0)
	if hook := c.OnBuild; hook != nil {
		hook(k, dur, cl.err)
	}

	c.mu.Lock()
	delete(c.inflight, k)
	tc := c.tenantLocked(k.Volume)
	if cl.err == nil {
		c.builds++
		tc.builds++
		tc.buildNS += int64(dur)
		c.insertLocked(k, cl.value, n)
	} else {
		c.failures++
		tc.failures++
		cl.value = nil
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.value, cl.err
}

// runBuild runs one builder, converting a panic into a *BuildError so
// single-flight state is always unwound.
func runBuild(k Key, build func() (any, int64, error)) (v any, n int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			v, n, err = nil, 0, &BuildError{Key: k, Value: r, Stack: debug.Stack()}
		}
	}()
	return build()
}

// Put inserts (or refreshes) an entry directly.
func (c *Cache) Put(k Key, v any, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(k, v, bytes)
}

// insertLocked adds the entry and evicts from the LRU tail until the
// budget holds again. The freshly inserted entry itself is never evicted,
// so a single product larger than the whole budget still caches (and
// simply pins the cache at over-budget until something replaces it).
func (c *Cache) insertLocked(k Key, v any, bytes int64) {
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry)
		c.bytes += bytes - e.bytes
		c.tenantLocked(k.Volume).bytes += bytes - e.bytes
		e.value, e.bytes = v, bytes
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&entry{key: k, value: v, bytes: bytes})
		c.bytes += bytes
		tc := c.tenantLocked(k.Volume)
		tc.bytes += bytes
		tc.entries++
	}
	if c.capacity <= 0 {
		return
	}
	for c.bytes > c.capacity && c.ll.Len() > 1 {
		tail := c.ll.Back()
		e := tail.Value.(*entry)
		c.ll.Remove(tail)
		delete(c.items, e.key)
		c.bytes -= e.bytes
		c.evictions++
		tc := c.tenantLocked(e.key.Volume)
		tc.bytes -= e.bytes
		tc.entries--
		tc.evictions++
	}
}

// Remove drops an entry if present.
func (c *Cache) Remove(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.items, k)
		c.bytes -= e.bytes
		tc := c.tenantLocked(k.Volume)
		tc.bytes -= e.bytes
		tc.entries--
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the accounted size of all entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Tenants returns the per-tenant (per-volume-fingerprint) counters,
// sorted by fingerprint. The snapshot is cheap — one small struct per
// distinct fingerprint ever seen (bounded by maxTenants) — so the
// dashboard and load reports can poll it freely.
func (c *Cache) Tenants() []TenantStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TenantStats, 0, len(c.tenants))
	for vol, tc := range c.tenants {
		out = append(out, TenantStats{
			Volume:    vol,
			Hits:      tc.hits,
			Misses:    tc.misses,
			Builds:    tc.builds,
			Failures:  tc.failures,
			Evictions: tc.evictions,
			BuildNS:   tc.buildNS,
			Entries:   tc.entries,
			Bytes:     tc.bytes,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Volume < out[j].Volume })
	return out
}

// Snapshot returns the current counters.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Builds:    c.builds,
		Failures:  c.failures,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		Capacity:  c.capacity,
	}
}
