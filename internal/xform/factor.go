package xform

import (
	"fmt"
	"math"
)

// Axis identifies a principal object-space axis.
type Axis int

// Principal axes.
const (
	AxisX Axis = 0
	AxisY Axis = 1
	AxisZ Axis = 2
)

func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	case AxisZ:
		return "z"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Factorization is the shear-warp decomposition of a parallel-projection
// view transform. In the permuted "standard object" coordinate system
// (i, j, k), where k is the principal viewing axis, a voxel (i, j, k)
// lands on the intermediate image at
//
//	u = i + Si*k + Tu
//	v = j + Sj*k + Tv
//
// and the final image is produced from the intermediate image by the 2-D
// affine Warp. Slices are composited front to back starting at KFront and
// stepping by KStep.
type Factorization struct {
	Axis   Axis    // principal viewing axis in object space
	Si, Sj float64 // shear coefficients per slice
	Tu, Tv float64 // intermediate-image translation (keeps u, v >= 0)

	Ni, Nj, Nk int // volume dimensions in permuted (i, j, k) order

	KFront, KStep int // front-to-back traversal of slices

	IntW, IntH int // intermediate image size

	Warp    Mat3 // intermediate (u, v) -> final (X, Y)
	WarpInv Mat3 // final -> intermediate, for the gather warp

	FinalW, FinalH int // final image size

	View Mat4 // the full view transform this factorizes
}

// PermutedDims returns the volume dimensions in (i, j, k) order for a
// principal axis, matching the permutation used by Factorize.
func PermutedDims(axis Axis, nx, ny, nz int) (ni, nj, nk int) {
	switch axis {
	case AxisZ:
		return nx, ny, nz
	case AxisX:
		return ny, nz, nx
	default: // AxisY
		return nz, nx, ny
	}
}

// ObjectIndex maps integer permuted coordinates (i, j, k) for the given
// principal axis back to object (x, y, z).
func ObjectIndex(axis Axis, i, j, k int) (x, y, z int) {
	switch axis {
	case AxisZ:
		return i, j, k
	case AxisX:
		return k, i, j
	default: // AxisY
		return j, k, i
	}
}

// ViewMatrix builds the standard view transform used throughout the
// reproduction: center the volume at the origin, rotate by yaw about the
// y axis then pitch about the x axis, and use parallel projection along
// +z of view space (the projection itself just drops z).
func ViewMatrix(nx, ny, nz int, yaw, pitch float64) Mat4 {
	center := Translate(-float64(nx-1)/2, -float64(ny-1)/2, -float64(nz-1)/2)
	return RotX(pitch).Mul(RotY(yaw)).Mul(center)
}

// Factorize decomposes an affine parallel-projection view transform over an
// nx x ny x nz volume into shear and warp factors.
func Factorize(nx, ny, nz int, view Mat4) Factorization {
	// The viewing rays run along +z in view space; their object-space
	// direction d satisfies view·d = (0,0,1,0), i.e. d = view⁻¹ ẑ.
	inv := view.Invert()
	dx, dy, dz := inv.ApplyDir(0, 0, 1)

	// Principal axis: the object axis most parallel to the rays.
	ax, ay, az := math.Abs(dx), math.Abs(dy), math.Abs(dz)
	var axis Axis
	switch {
	case az >= ax && az >= ay:
		axis = AxisZ
	case ax >= ay:
		axis = AxisX
	default:
		axis = AxisY
	}

	// Permute object axes so the principal axis becomes k. The cyclic
	// permutations below preserve handedness (Lacroute's convention):
	//   axis z: (i,j,k) = (x,y,z)
	//   axis x: (i,j,k) = (y,z,x)
	//   axis y: (i,j,k) = (z,x,y)
	var di, dj, dk float64
	var ni, nj, nk int
	switch axis {
	case AxisZ:
		di, dj, dk = dx, dy, dz
		ni, nj, nk = nx, ny, nz
	case AxisX:
		di, dj, dk = dy, dz, dx
		ni, nj, nk = ny, nz, nx
	case AxisY:
		di, dj, dk = dz, dx, dy
		ni, nj, nk = nz, nx, ny
	}

	f := Factorization{Axis: axis, Ni: ni, Nj: nj, Nk: nk, View: view}

	// Shear so rays become perpendicular to the slices: the sheared i
	// coordinate of a point moving along d must be constant, giving
	// si = -di/dk (and similarly sj).
	f.Si = -di / dk
	f.Sj = -dj / dk

	// Front-to-back slice order: rays travel toward +k when dk > 0, so the
	// viewer sees slice 0 first; otherwise slice nk-1 is in front.
	if dk > 0 {
		f.KFront, f.KStep = 0, 1
	} else {
		f.KFront, f.KStep = nk-1, -1
	}

	// Translate the sheared volume so intermediate coordinates start at 0.
	span := float64(nk - 1)
	f.Tu = math.Max(0, -f.Si*span)
	f.Tv = math.Max(0, -f.Sj*span)
	f.IntW = ni + int(math.Ceil(math.Abs(f.Si)*span)) + 1
	f.IntH = nj + int(math.Ceil(math.Abs(f.Sj)*span)) + 1

	// The warp maps an intermediate pixel to the final image. Every object
	// point along one viewing ray shares a final (X, Y) (parallel
	// projection), so we may evaluate the composite view transform at the
	// slice k=0 pre-image of (u, v): object point P⁻¹(u-Tu, v-Tv, 0).
	// The map is affine; sample it at three points to build the matrix,
	// then translate so the final image starts at (0, 0).
	w00x, w00y := f.projectThroughView(0, 0)
	w10x, w10y := f.projectThroughView(1, 0)
	w01x, w01y := f.projectThroughView(0, 1)
	warp := Mat3{
		w10x - w00x, w01x - w00x, w00x,
		w10y - w00y, w01y - w00y, w00y,
		0, 0, 1,
	}

	// Bound the final image by the warped intermediate-image corners.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, c := range [4][2]float64{{0, 0}, {float64(f.IntW - 1), 0},
		{0, float64(f.IntH - 1)}, {float64(f.IntW - 1), float64(f.IntH - 1)}} {
		x, y := warp.Apply(c[0], c[1])
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	warp[2] -= minX
	warp[5] -= minY
	f.Warp = warp
	f.WarpInv = warp.Invert()
	f.FinalW = int(math.Ceil(maxX-minX)) + 1
	f.FinalH = int(math.Ceil(maxY-minY)) + 1
	return f
}

// projectThroughView maps intermediate coordinates (u, v) at slice k=0 back
// to object space and through the full view transform, returning final-image
// coordinates before the normalizing translation.
func (f *Factorization) projectThroughView(u, v float64) (float64, float64) {
	i, j := u-f.Tu, v-f.Tv
	x, y, z := f.ObjectCoords(i, j, 0)
	fx, fy, _ := f.View.Apply(x, y, z)
	return fx, fy
}

// ObjectCoords maps permuted coordinates (i, j, k) back to object (x, y, z).
func (f *Factorization) ObjectCoords(i, j, k float64) (x, y, z float64) {
	switch f.Axis {
	case AxisZ:
		return i, j, k
	case AxisX:
		return k, i, j
	default: // AxisY
		return j, k, i
	}
}

// PermutedCoords maps object (x, y, z) to permuted (i, j, k).
func (f *Factorization) PermutedCoords(x, y, z float64) (i, j, k float64) {
	switch f.Axis {
	case AxisZ:
		return x, y, z
	case AxisX:
		return y, z, x
	default: // AxisY
		return z, x, y
	}
}

// FinalOffset returns the translation (ox, oy) such that an object point p
// lands on the final image at view(p).xy + (ox, oy) — the normalization
// Factorize folded into the warp matrix. The ray-casting baseline uses it
// to shoot rays through the same final-image raster.
func (f *Factorization) FinalOffset() (ox, oy float64) {
	u, v := f.IntermediateCoords(0, 0, 0)
	wx, wy := f.Warp.Apply(u, v)
	x, y, z := f.ObjectCoords(0, 0, 0)
	vx, vy, _ := f.View.Apply(x, y, z)
	return wx - vx, wy - vy
}

// SliceShift returns the continuous intermediate-image offset (tu, tv) of
// slice k: voxel (i, j) of slice k lands at (i+tu, j+tv).
func (f *Factorization) SliceShift(k int) (tu, tv float64) {
	return f.Si*float64(k) + f.Tu, f.Sj*float64(k) + f.Tv
}

// IntermediateCoords projects a permuted voxel position onto the
// intermediate image.
func (f *Factorization) IntermediateCoords(i, j, k float64) (u, v float64) {
	return i + f.Si*k + f.Tu, j + f.Sj*k + f.Tv
}
