package xform

import (
	"math"
	"testing"
)

// FuzzFactorizationInvariant checks the shear-warp factorization on
// arbitrary views and volume shapes: the decomposition must satisfy
// M = Warp ∘ Shear — a voxel sheared onto the intermediate image and then
// warped must land exactly where the full view transform (plus the
// final-image normalization) puts it — with unit-bounded shear
// coefficients, a front-to-back slice order consistent with the ray
// direction, and intermediate/final rasters that contain every voxel's
// footprint.
func FuzzFactorizationInvariant(f *testing.F) {
	f.Add(0.0, 0.0, uint8(64), uint8(64), uint8(64))
	f.Add(0.5, 0.25, uint8(64), uint8(32), uint8(16))  // generic view, anisotropic volume
	f.Add(math.Pi/4, 0.0, uint8(8), uint8(8), uint8(8)) // axis-tie yaw
	f.Add(1.4, -0.2, uint8(3), uint8(63), uint8(2))    // x principal axis
	f.Add(0.1, 1.5, uint8(16), uint8(2), uint8(16))    // y principal axis (steep pitch)
	f.Add(-2.8, 3.0, uint8(5), uint8(7), uint8(11))    // behind the volume
	f.Fuzz(func(t *testing.T, yaw, pitch float64, bx, by, bz uint8) {
		if math.IsNaN(yaw) || math.IsInf(yaw, 0) || math.IsNaN(pitch) || math.IsInf(pitch, 0) {
			t.Skip()
		}
		// Enormous angles lose all precision in sin/cos reduction without
		// exercising anything new; one revolution covers every view.
		if math.Abs(yaw) > 16 || math.Abs(pitch) > 16 {
			t.Skip()
		}
		nx, ny, nz := 2+int(bx)%63, 2+int(by)%63, 2+int(bz)%63
		view := ViewMatrix(nx, ny, nz, yaw, pitch)
		fac := Factorize(nx, ny, nz, view)

		// Shear coefficients: picking the most-parallel principal axis
		// bounds both slopes by 1 (Lacroute). Allow float slack only.
		const eps = 1e-9
		if math.Abs(fac.Si) > 1+eps || math.Abs(fac.Sj) > 1+eps {
			t.Fatalf("shear exceeds unit slope: Si=%v Sj=%v", fac.Si, fac.Sj)
		}
		if fac.Tu < 0 || fac.Tv < 0 {
			t.Fatalf("negative intermediate translation: Tu=%v Tv=%v", fac.Tu, fac.Tv)
		}

		// Permuted dimensions and traversal order.
		ni, nj, nk := PermutedDims(fac.Axis, nx, ny, nz)
		if fac.Ni != ni || fac.Nj != nj || fac.Nk != nk {
			t.Fatalf("permuted dims (%d,%d,%d), want (%d,%d,%d)", fac.Ni, fac.Nj, fac.Nk, ni, nj, nk)
		}
		switch fac.KStep {
		case 1:
			if fac.KFront != 0 {
				t.Fatalf("KStep 1 with KFront %d", fac.KFront)
			}
		case -1:
			if fac.KFront != nk-1 {
				t.Fatalf("KStep -1 with KFront %d, want %d", fac.KFront, nk-1)
			}
		default:
			t.Fatalf("KStep %d, want ±1", fac.KStep)
		}

		// Factorization correctness, checked at the volume's corner voxels
		// and center: shear + warp must equal view + final offset.
		ox, oy := fac.FinalOffset()
		scale := 1.0 + math.Max(math.Max(float64(nx), float64(ny)), float64(nz))
		tol := 1e-9 * scale
		pts := [][3]float64{
			{0, 0, 0}, {float64(ni - 1), 0, 0}, {0, float64(nj - 1), 0}, {0, 0, float64(nk - 1)},
			{float64(ni - 1), float64(nj - 1), 0}, {float64(ni - 1), 0, float64(nk - 1)},
			{0, float64(nj - 1), float64(nk - 1)}, {float64(ni - 1), float64(nj - 1), float64(nk - 1)},
			{float64(ni-1) / 2, float64(nj-1) / 2, float64(nk-1) / 2},
		}
		for _, p := range pts {
			u, v := fac.IntermediateCoords(p[0], p[1], p[2])
			if u < -eps || v < -eps || u > float64(fac.IntW-1)+eps || v > float64(fac.IntH-1)+eps {
				t.Fatalf("voxel %v shears to (%v, %v) outside intermediate %dx%d", p, u, v, fac.IntW, fac.IntH)
			}
			wx, wy := fac.Warp.Apply(u, v)
			x, y, z := fac.ObjectCoords(p[0], p[1], p[2])
			vx, vy, _ := view.Apply(x, y, z)
			if math.Abs(wx-(vx+ox)) > tol || math.Abs(wy-(vy+oy)) > tol {
				t.Fatalf("voxel %v: warp(shear) = (%v, %v), view+offset = (%v, %v)",
					p, wx, wy, vx+ox, vy+oy)
			}
			if wx < -1-eps || wy < -1-eps || wx > float64(fac.FinalW)+eps || wy > float64(fac.FinalH)+eps {
				t.Fatalf("voxel %v warps to (%v, %v) outside final %dx%d", p, wx, wy, fac.FinalW, fac.FinalH)
			}

			// WarpInv must invert Warp at this point.
			iu, iv := fac.WarpInv.Apply(wx, wy)
			if math.Abs(iu-u) > tol || math.Abs(iv-v) > tol {
				t.Fatalf("WarpInv(Warp(%v, %v)) = (%v, %v)", u, v, iu, iv)
			}

			// PermutedCoords must invert ObjectCoords.
			pi, pj, pk := fac.PermutedCoords(x, y, z)
			if pi != p[0] || pj != p[1] || pk != p[2] {
				t.Fatalf("PermutedCoords(ObjectCoords(%v)) = (%v, %v, %v)", p, pi, pj, pk)
			}
		}

		// Slice shifts are consistent with per-voxel shearing.
		for _, k := range []int{0, nk / 2, nk - 1} {
			tu, tv := fac.SliceShift(k)
			u, v := fac.IntermediateCoords(0, 0, float64(k))
			if math.Abs(tu-u) > eps || math.Abs(tv-v) > eps {
				t.Fatalf("SliceShift(%d) = (%v, %v), IntermediateCoords gives (%v, %v)", k, tu, tv, u, v)
			}
		}
	})
}
