package xform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMat4Identity(t *testing.T) {
	id := Identity4()
	x, y, z := id.Apply(3, -4, 5)
	if x != 3 || y != -4 || z != 5 {
		t.Fatalf("identity apply = (%g,%g,%g)", x, y, z)
	}
}

func TestMat4MulAssociatesWithApply(t *testing.T) {
	a := RotY(0.3).Mul(Translate(1, 2, 3))
	b := RotX(-0.7)
	ab := a.Mul(b)
	x1, y1, z1 := ab.Apply(0.5, -1.5, 2.5)
	bx, by, bz := b.Apply(0.5, -1.5, 2.5)
	x2, y2, z2 := a.Apply(bx, by, bz)
	if math.Abs(x1-x2)+math.Abs(y1-y2)+math.Abs(z1-z2) > 1e-12 {
		t.Fatalf("(AB)p != A(Bp): (%g,%g,%g) vs (%g,%g,%g)", x1, y1, z1, x2, y2, z2)
	}
}

func TestMat4InvertProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := RotY(rng.Float64() * 6).Mul(RotX(rng.Float64() * 6)).
			Mul(Translate(rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*10-5)).
			Mul(Scale(1+rng.Float64(), 1+rng.Float64(), 1+rng.Float64()))
		inv := m.Invert()
		p := m.Mul(inv)
		id := Identity4()
		for i := range p {
			if math.Abs(p[i]-id[i]) > 1e-9 {
				t.Fatalf("trial %d: M*M^-1 deviates at %d: %g", trial, i, p[i]-id[i])
			}
		}
	}
}

func TestMat4InvertSingularPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverting singular matrix did not panic")
		}
	}()
	Scale(0, 1, 1).Invert()
}

func TestRotationsAreOrthonormal(t *testing.T) {
	for _, m := range []Mat4{RotX(0.9), RotY(-1.3), RotZ(2.2)} {
		x, y, z := m.ApplyDir(1, 0, 0)
		if math.Abs(x*x+y*y+z*z-1) > 1e-12 {
			t.Fatal("rotation does not preserve length")
		}
	}
}

func TestMat3InvertRoundTrip(t *testing.T) {
	f := func(a, b, c, d, e, g int8) bool {
		// Diagonally dominant by construction, so always invertible.
		m := Mat3{3 + math.Abs(float64(a))/64, float64(b) / 128, float64(c),
			float64(d) / 128, 3 + math.Abs(float64(e))/64, float64(g), 0, 0, 1}
		inv := m.Invert()
		u, v := m.Apply(3.5, -1.25)
		bu, bv := inv.Apply(u, v)
		return math.Abs(bu-3.5) < 1e-9 && math.Abs(bv+1.25) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The defining property of the factorization: for every voxel, shearing onto
// the intermediate image and then warping lands at the same final-image
// point as projecting directly through the view transform (up to the
// final-image normalizing translation, which we recover from a reference
// voxel).
func TestFactorizationCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nx, ny, nz = 20, 24, 16
	for trial := 0; trial < 60; trial++ {
		yaw := rng.Float64()*2*math.Pi - math.Pi
		pitch := rng.Float64()*math.Pi - math.Pi/2
		view := ViewMatrix(nx, ny, nz, yaw, pitch)
		f := Factorize(nx, ny, nz, view)

		// Reference offset: compare differences between projected points so
		// the final translation cancels.
		refU, refV := f.IntermediateCoords(0, 0, 0)
		refWX, refWY := f.Warp.Apply(refU, refV)
		rx, ry, rz := f.ObjectCoords(0, 0, 0)
		refVX, refVY, _ := view.Apply(rx, ry, rz)

		for s := 0; s < 20; s++ {
			i := rng.Float64() * float64(f.Ni-1)
			j := rng.Float64() * float64(f.Nj-1)
			k := rng.Float64() * float64(f.Nk-1)
			u, v := f.IntermediateCoords(i, j, k)
			wx, wy := f.Warp.Apply(u, v)
			ox, oy, oz := f.ObjectCoords(i, j, k)
			vx, vy, _ := view.Apply(ox, oy, oz)
			if math.Abs((wx-refWX)-(vx-refVX)) > 1e-6 ||
				math.Abs((wy-refWY)-(vy-refVY)) > 1e-6 {
				t.Fatalf("trial %d: warp∘shear != view at (%g,%g,%g): warpΔ=(%g,%g) viewΔ=(%g,%g)",
					trial, i, j, k, wx-refWX, wy-refWY, vx-refVX, vy-refVY)
			}
		}
	}
}

func TestFactorizationIntermediateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const nx, ny, nz = 17, 23, 11
	for trial := 0; trial < 60; trial++ {
		view := ViewMatrix(nx, ny, nz, rng.Float64()*6, rng.Float64()*3-1.5)
		f := Factorize(nx, ny, nz, view)
		// Every voxel's continuous intermediate position must fall in
		// [0, IntW-1] x [0, IntH-1] (the bilinear footprint then fits).
		corners := [][3]float64{
			{0, 0, 0}, {float64(f.Ni - 1), 0, 0}, {0, float64(f.Nj - 1), 0},
			{0, 0, float64(f.Nk - 1)}, {float64(f.Ni - 1), float64(f.Nj - 1), float64(f.Nk - 1)},
			{float64(f.Ni - 1), 0, float64(f.Nk - 1)}, {0, float64(f.Nj - 1), float64(f.Nk - 1)},
			{float64(f.Ni - 1), float64(f.Nj - 1), 0},
		}
		for _, c := range corners {
			u, v := f.IntermediateCoords(c[0], c[1], c[2])
			if u < -1e-9 || v < -1e-9 || u > float64(f.IntW-1)+1e-9 || v > float64(f.IntH-1)+1e-9 {
				t.Fatalf("trial %d: voxel %v maps to (%g,%g) outside %dx%d",
					trial, c, u, v, f.IntW, f.IntH)
			}
		}
	}
}

func TestFactorizationFinalBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const nx, ny, nz = 15, 15, 15
	for trial := 0; trial < 60; trial++ {
		view := ViewMatrix(nx, ny, nz, rng.Float64()*6, rng.Float64()*3-1.5)
		f := Factorize(nx, ny, nz, view)
		for _, c := range [4][2]float64{{0, 0}, {float64(f.IntW - 1), 0},
			{0, float64(f.IntH - 1)}, {float64(f.IntW - 1), float64(f.IntH - 1)}} {
			x, y := f.Warp.Apply(c[0], c[1])
			if x < -1e-9 || y < -1e-9 || x > float64(f.FinalW-1)+1e-9 || y > float64(f.FinalH-1)+1e-9 {
				t.Fatalf("trial %d: warped corner (%g,%g) outside %dx%d",
					trial, x, y, f.FinalW, f.FinalH)
			}
		}
	}
}

func TestAxisAlignedViewIsIdentityShear(t *testing.T) {
	view := ViewMatrix(10, 12, 14, 0, 0) // looking straight down +z
	f := Factorize(10, 12, 14, view)
	if f.Axis != AxisZ {
		t.Fatalf("axis = %v, want z", f.Axis)
	}
	if math.Abs(f.Si) > 1e-12 || math.Abs(f.Sj) > 1e-12 {
		t.Fatalf("shear = (%g, %g), want 0", f.Si, f.Sj)
	}
	if f.IntW != 11 || f.IntH != 13 {
		t.Fatalf("intermediate size %dx%d, want 11x13", f.IntW, f.IntH)
	}
}

func TestPrincipalAxisSelection(t *testing.T) {
	cases := []struct {
		yaw, pitch float64
		want       Axis
	}{
		{0, 0, AxisZ},
		{math.Pi / 2, 0, AxisX},
		{0, math.Pi / 2, AxisY},
		{math.Pi, 0, AxisZ},
	}
	for _, c := range cases {
		f := Factorize(16, 16, 16, ViewMatrix(16, 16, 16, c.yaw, c.pitch))
		if f.Axis != c.want {
			t.Errorf("yaw=%g pitch=%g: axis %v, want %v", c.yaw, c.pitch, f.Axis, c.want)
		}
	}
}

func TestShearMagnitudeBounded(t *testing.T) {
	// Choosing the max-|component| axis bounds |shear| by sqrt(2).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		view := ViewMatrix(16, 16, 16, rng.Float64()*7-3.5, rng.Float64()*7-3.5)
		f := Factorize(16, 16, 16, view)
		if math.Abs(f.Si) > math.Sqrt2+1e-9 || math.Abs(f.Sj) > math.Sqrt2+1e-9 {
			t.Fatalf("shear (%g, %g) exceeds sqrt(2)", f.Si, f.Sj)
		}
	}
}

func TestPermutationRoundTrip(t *testing.T) {
	for _, axis := range []Axis{AxisX, AxisY, AxisZ} {
		f := Factorization{Axis: axis}
		i, j, k := f.PermutedCoords(3, 5, 7)
		x, y, z := f.ObjectCoords(i, j, k)
		if x != 3 || y != 5 || z != 7 {
			t.Errorf("axis %v: permutation round trip (3,5,7) -> (%g,%g,%g)", axis, x, y, z)
		}
	}
}

func TestFrontToBackOrder(t *testing.T) {
	// Looking down +z from negative z side: rays travel toward +z, so slice
	// 0 is in front.
	f := Factorize(8, 8, 8, ViewMatrix(8, 8, 8, 0, 0))
	if f.KFront != 0 || f.KStep != 1 {
		t.Fatalf("KFront,KStep = %d,%d want 0,1", f.KFront, f.KStep)
	}
	// Rotated 180 degrees: rays travel toward -z, slice Nk-1 in front.
	f = Factorize(8, 8, 8, ViewMatrix(8, 8, 8, math.Pi, 0))
	if f.KFront != 7 || f.KStep != -1 {
		t.Fatalf("after 180deg: KFront,KStep = %d,%d want 7,-1", f.KFront, f.KStep)
	}
}

func TestSliceShiftConsistent(t *testing.T) {
	f := Factorize(16, 16, 16, ViewMatrix(16, 16, 16, 0.4, 0.3))
	for k := 0; k < f.Nk; k++ {
		tu, tv := f.SliceShift(k)
		u, v := f.IntermediateCoords(0, 0, float64(k))
		if math.Abs(tu-u) > 1e-12 || math.Abs(tv-v) > 1e-12 {
			t.Fatalf("slice %d: shift (%g,%g) != coords (%g,%g)", k, tu, tv, u, v)
		}
		if tu < 0 || tv < 0 {
			t.Fatalf("slice %d: negative shift (%g, %g)", k, tu, tv)
		}
	}
}
