// Package xform implements the viewing transformation and its shear-warp
// factorization for parallel projections: the decomposition of an affine
// view matrix into a 3-D shear parallel to the volume slices followed by a
// 2-D warp of the intermediate image (Lacroute's factorization, section 2
// of the paper).
package xform

import "math"

// Mat4 is a 4x4 matrix in row-major order, acting on column vectors.
type Mat4 [16]float64

// Identity4 returns the 4x4 identity.
func Identity4() Mat4 {
	return Mat4{1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1}
}

// Mul returns m * n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += m[i*4+k] * n[k*4+j]
			}
			r[i*4+j] = s
		}
	}
	return r
}

// Apply transforms the point (x, y, z, 1) and returns the first three
// components (the matrix is affine in this package; w stays 1).
func (m Mat4) Apply(x, y, z float64) (float64, float64, float64) {
	return m[0]*x + m[1]*y + m[2]*z + m[3],
		m[4]*x + m[5]*y + m[6]*z + m[7],
		m[8]*x + m[9]*y + m[10]*z + m[11]
}

// ApplyDir transforms the direction (x, y, z, 0).
func (m Mat4) ApplyDir(x, y, z float64) (float64, float64, float64) {
	return m[0]*x + m[1]*y + m[2]*z,
		m[4]*x + m[5]*y + m[6]*z,
		m[8]*x + m[9]*y + m[10]*z
}

// Translate returns a translation matrix.
func Translate(tx, ty, tz float64) Mat4 {
	m := Identity4()
	m[3], m[7], m[11] = tx, ty, tz
	return m
}

// Scale returns a scaling matrix.
func Scale(sx, sy, sz float64) Mat4 {
	m := Identity4()
	m[0], m[5], m[10] = sx, sy, sz
	return m
}

// RotX returns a rotation about the x axis by the given angle in radians.
func RotX(a float64) Mat4 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat4{
		1, 0, 0, 0,
		0, c, -s, 0,
		0, s, c, 0,
		0, 0, 0, 1,
	}
}

// RotY returns a rotation about the y axis.
func RotY(a float64) Mat4 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat4{
		c, 0, s, 0,
		0, 1, 0, 0,
		-s, 0, c, 0,
		0, 0, 0, 1,
	}
}

// RotZ returns a rotation about the z axis.
func RotZ(a float64) Mat4 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat4{
		c, -s, 0, 0,
		s, c, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Invert returns the inverse of m, computed by Gauss-Jordan elimination
// with partial pivoting. It panics if the matrix is singular; view
// matrices in this package are always invertible.
func (m Mat4) Invert() Mat4 {
	a := m // working copy
	inv := Identity4()
	for col := 0; col < 4; col++ {
		// Find pivot.
		piv, pmax := col, math.Abs(a[col*4+col])
		for r := col + 1; r < 4; r++ {
			if v := math.Abs(a[r*4+col]); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax < 1e-12 {
			panic("xform: singular matrix")
		}
		if piv != col {
			for j := 0; j < 4; j++ {
				a[col*4+j], a[piv*4+j] = a[piv*4+j], a[col*4+j]
				inv[col*4+j], inv[piv*4+j] = inv[piv*4+j], inv[col*4+j]
			}
		}
		d := 1 / a[col*4+col]
		for j := 0; j < 4; j++ {
			a[col*4+j] *= d
			inv[col*4+j] *= d
		}
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := a[r*4+col]
			if f == 0 {
				continue
			}
			for j := 0; j < 4; j++ {
				a[r*4+j] -= f * a[col*4+j]
				inv[r*4+j] -= f * inv[col*4+j]
			}
		}
	}
	return inv
}

// Mat3 is a 3x3 matrix in row-major order representing a homogeneous 2-D
// affine transform (third row is 0 0 1 for the transforms built here).
type Mat3 [9]float64

// Identity3 returns the 3x3 identity.
func Identity3() Mat3 { return Mat3{1, 0, 0, 0, 1, 0, 0, 0, 1} }

// Apply transforms the 2-D point (u, v, 1).
func (m Mat3) Apply(u, v float64) (float64, float64) {
	return m[0]*u + m[1]*v + m[2], m[3]*u + m[4]*v + m[5]
}

// Invert returns the inverse of an affine 2-D transform. It panics if the
// linear part is singular.
func (m Mat3) Invert() Mat3 {
	det := m[0]*m[4] - m[1]*m[3]
	if math.Abs(det) < 1e-12 {
		panic("xform: singular 2-D warp")
	}
	id := 1 / det
	// Inverse of [a b; c d] is [d -b; -c a]/det; translation follows.
	a, b, c, d := m[4]*id, -m[1]*id, -m[3]*id, m[0]*id
	return Mat3{
		a, b, -(a*m[2] + b*m[5]),
		c, d, -(c*m[2] + d*m[5]),
		0, 0, 1,
	}
}
