package raycast

import (
	"math"

	"shearwarp/internal/img"
	"shearwarp/internal/trace"
	"shearwarp/internal/xform"
)

// TraceCtx carries one simulated processor's memory instrumentation for
// the ray caster. The reference pattern it emits is the one the paper
// analyzes: each sample addresses eight voxels through 3-D indexing, so
// consecutive reads are far apart in memory (poor spatial locality), while
// the octree descent touches the same upper-level nodes across nearby rays
// (high temporal locality) — the inverse of the shear warper's profile.
type TraceCtx struct {
	Tracer trace.Tracer
	Vox    trace.Array   // classified voxels, elem 4 bytes, dense x-fastest
	Tree   []trace.Array // one per octree level, elem 1 byte
	Final  trace.Array   // final image pixels, elem 4 bytes
}

// RenderTileTraced is RenderTile with memory-reference emission; tc may be
// nil, in which case it behaves exactly like RenderTile.
func (r *Renderer) RenderTileTraced(f *xform.Factorization, out *img.Final, x0, y0, x1, y1 int, cnt *Counters, tc *TraceCtx) {
	if tc == nil || tc.Tracer == nil {
		r.RenderTile(f, out, x0, y0, x1, y1, cnt)
		return
	}
	inv := f.View.Invert()
	ox, oy := f.FinalOffset()
	dx, dy, dz := inv.ApplyDir(0, 0, 1)
	dn := math.Sqrt(dx*dx + dy*dy + dz*dz)
	dx, dy, dz = dx/dn, dy/dn, dz/dn
	for y := max(y0, 0); y < min(y1, out.H); y++ {
		for x := max(x0, 0); x < min(x1, out.W); x++ {
			r.castRayTraced(&inv, out, x, y, ox, oy, dx, dy, dz, cnt, tc)
		}
		tc.Tracer.Write(tc.Final, y*out.W+max(x0, 0), min(x1, out.W)-max(x0, 0))
	}
}

// castRayTraced mirrors castRay but emits voxel and octree references.
// The pixel math is identical (the tracer is observation-only), so traced
// and untraced renders produce the same image.
func (r *Renderer) castRayTraced(inv *xform.Mat4, out *img.Final, px, py int, ox, oy, dx, dy, dz float64, cnt *Counters, tc *TraceCtx) {
	cnt.Rays++
	cnt.Cycles += CyclesPerRaySetup

	x0, y0, z0 := inv.Apply(float64(px)-ox, float64(py)-oy, 0)
	tmin, tmax := math.Inf(-1), math.Inf(1)
	clip := func(o, d float64, n int) bool {
		if math.Abs(d) < 1e-12 {
			return o >= 0 && o <= float64(n-1)
		}
		t0 := (0 - o) / d
		t1 := (float64(n-1) - o) / d
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		tmin = math.Max(tmin, t0)
		tmax = math.Min(tmax, t1)
		return true
	}
	c := r.C
	if !clip(x0, dx, c.Nx) || !clip(y0, dy, c.Ny) || !clip(z0, dz, c.Nz) || tmin > tmax {
		out.SetRGB(px, py, 0, 0, 0)
		return
	}

	var accR, accG, accB, accA float32
	for t := tmin; t <= tmax; t += 1.0 {
		cnt.Steps++
		cnt.Cycles += CyclesPerStep
		sx, sy, sz := x0+t*dx, y0+t*dy, z0+t*dz
		ix, iy, iz := int(sx), int(sy), int(sz)

		lv := 0
		for lv < r.Tree.Height() {
			empty, lox, loy, loz, hix, hiy, hiz := r.Tree.EmptyAt(lv, ix, iy, iz)
			cnt.Descends++
			cnt.Cycles += CyclesPerDescend
			r.traceTreeNode(tc, lv, ix, iy, iz)
			if !empty {
				break
			}
			if lv == r.Tree.Height()-1 || !emptyAtNext(r.Tree, lv+1, ix, iy, iz) {
				exit := cellExit(sx, sy, sz, dx, dy, dz, lox, loy, loz, hix, hiy, hiz)
				if exit > 0 {
					t += exit
					cnt.Leaps++
					cnt.Cycles += CyclesPerLeap
				}
				lv = -1
				break
			}
			lv++
		}
		if lv == -1 {
			continue
		}

		a, cr, cg, cb := r.sampleRGBA(sx, sy, sz)
		cnt.Resamples++
		cnt.Cycles += CyclesPerAddress + CyclesPerResample
		// The eight voxels of the trilinear footprint: four x-adjacent
		// pairs, each on a different (y, z) scanline — the scattered
		// addressing the paper contrasts with the shear warper's streams.
		fx, fy, fz := int(math.Floor(sx)), int(math.Floor(sy)), int(math.Floor(sz))
		for dzz := 0; dzz < 2; dzz++ {
			for dyy := 0; dyy < 2; dyy++ {
				yy, zz := fy+dyy, fz+dzz
				if yy < 0 || zz < 0 || yy >= c.Ny || zz >= c.Nz || fx >= c.Nx-1 || fx < 0 {
					continue
				}
				tc.Tracer.Read(tc.Vox, (zz*c.Ny+yy)*c.Nx+fx, 2)
			}
		}
		if a < 1.0/512 {
			continue
		}
		w := (1 - accA) * a
		accR += w * cr
		accG += w * cg
		accB += w * cb
		accA += w
		cnt.Composites++
		cnt.Cycles += CyclesPerComposite
		if accA >= img.OpacityThreshold {
			break
		}
	}
	out.SetRGB(px, py, quant(accR), quant(accG), quant(accB))
}

// traceTreeNode emits the octree cell read for a descend at the given
// level.
func (r *Renderer) traceTreeNode(tc *TraceCtx, lv, x, y, z int) {
	if lv >= len(tc.Tree) {
		return
	}
	l := &r.Tree.Levels[lv]
	cx, cy, cz := x/l.CellSize, y/l.CellSize, z/l.CellSize
	if cx < 0 || cy < 0 || cz < 0 || cx >= l.Nx || cy >= l.Ny || cz >= l.Nz {
		return
	}
	tc.Tracer.Read(tc.Tree[lv], (cz*l.Ny+cy)*l.Nx+cx, 1)
}

// RegisterArrays lays the ray caster's shared data out in a simulated
// address space: the dense classified volume, the octree levels and the
// final image.
func (r *Renderer) RegisterArrays(s *trace.AddrSpace, finalPix trace.Array) TraceCtx {
	tc := TraceCtx{Final: finalPix}
	tc.Vox = s.Register("rc.Vox", 4, len(r.C.Voxels))
	for lv := range r.Tree.Levels {
		l := &r.Tree.Levels[lv]
		tc.Tree = append(tc.Tree, s.Register("rc.Tree", 1, l.Nx*l.Ny*l.Nz))
	}
	return tc
}
