// Package raycast implements the image-order volume rendering baseline the
// paper compares against (Levoy-style ray casting, parallelized per Nieh &
// Levoy): one orthographic ray per final-image pixel, marched through the
// classified volume at unit spacing with trilinear resampling, min-max
// octree space leaping and early ray termination.
//
// Its cycle accounting separates "looping time" (octree traversal,
// addressing, stepping) from resampling/compositing work, reproducing the
// Figure 2 comparison: the ray caster performs a nearly identical number of
// compositing operations as the shear warper but spends far more time
// looping, and its memory reference pattern has poor spatial locality
// because ray order differs from storage order.
package raycast

import (
	"math"
	"sync"

	"shearwarp/internal/classify"
	"shearwarp/internal/img"
	"shearwarp/internal/octree"
	"shearwarp/internal/par"
	"shearwarp/internal/rendermode"
	"shearwarp/internal/xform"
)

// Cost model (cycles). Per-sample looping costs exceed the shear-warper's
// per-sample overhead because every sample addresses 8 voxels through
// 3-D indexing and consults the octree.
const (
	CyclesPerStep      = 9  // advance the ray, bounds test, address arithmetic
	CyclesPerDescend   = 7  // one octree level test during a leap query
	CyclesPerLeap      = 12 // computing the exit point of an empty cell
	CyclesPerAddress   = 24 // addressing the 8 voxels of a sample through 3-D indexing
	CyclesPerResample  = 22 // trilinear weights + gather arithmetic
	CyclesPerComposite = 10 // blend + opacity test
	CyclesPerRaySetup  = 40 // ray-volume intersection, increments
)

// Counters aggregates ray-casting work. Looping time is everything except
// resampling and compositing.
type Counters struct {
	Cycles     int64
	Rays       int64
	Steps      int64 // ray advance steps (including leapt spans' endpoints)
	Descends   int64 // octree level tests
	Leaps      int64 // empty-space leaps taken
	Resamples  int64 // trilinear samples taken
	Composites int64 // samples blended (non-transparent)
}

// Add accumulates other into c.
func (c *Counters) Add(o Counters) {
	c.Cycles += o.Cycles
	c.Rays += o.Rays
	c.Steps += o.Steps
	c.Descends += o.Descends
	c.Leaps += o.Leaps
	c.Resamples += o.Resamples
	c.Composites += o.Composites
}

// CompositeCycles returns the cycles spent resampling and blending.
func (c *Counters) CompositeCycles() int64 {
	return c.Resamples*CyclesPerResample + c.Composites*CyclesPerComposite
}

// LoopingCycles returns the cycles spent on control overhead, addressing
// and coherence-structure traversal.
func (c *Counters) LoopingCycles() int64 { return c.Cycles - c.CompositeCycles() }

// Renderer casts rays through a classified volume.
type Renderer struct {
	C    *classify.Classified
	Tree *octree.Tree
	// Mode selects the per-ray accumulation rule: Composite (the zero
	// value) over-blends front to back with early ray termination, MIP
	// keeps the per-channel maximum of the premultiplied samples with no
	// early termination (a later sample can always be brighter). The
	// isosurface mode is classification-time — render an iso-classified
	// volume with Mode Composite (the binary opacities make the over-blend
	// a first-surface projection), exactly as the shear-warp path does.
	Mode rendermode.Mode
}

// New builds the ray caster (and its octree) for a classified volume.
func New(c *classify.Classified) *Renderer {
	return &Renderer{C: c, Tree: octree.Build(c)}
}

// Render casts one ray per final-image pixel for the given view. The
// factorization is used only for its view matrix and final-image raster, so
// the output is directly comparable with the shear-warp renderers'.
func (r *Renderer) Render(f *xform.Factorization, cnt *Counters) *img.Final {
	out := img.NewFinal(f.FinalW, f.FinalH)
	r.RenderTile(f, out, 0, 0, out.W, out.H, cnt)
	return out
}

// RenderTile casts the rays of one final-image rectangle — the parallel
// unit of work (Nieh & Levoy partition the image into tiles).
func (r *Renderer) RenderTile(f *xform.Factorization, out *img.Final, x0, y0, x1, y1 int, cnt *Counters) {
	inv := f.View.Invert()
	ox, oy := f.FinalOffset()
	// Ray direction: the object-space pre-image of +z in view space.
	dx, dy, dz := inv.ApplyDir(0, 0, 1)
	dn := math.Sqrt(dx*dx + dy*dy + dz*dz)
	dx, dy, dz = dx/dn, dy/dn, dz/dn
	for y := max(y0, 0); y < min(y1, out.H); y++ {
		for x := max(x0, 0); x < min(x1, out.W); x++ {
			r.castRay(&inv, out, x, y, ox, oy, dx, dy, dz, cnt)
		}
	}
}

func (r *Renderer) castRay(inv *xform.Mat4, out *img.Final, px, py int, ox, oy, dx, dy, dz float64, cnt *Counters) {
	cnt.Rays++
	cnt.Cycles += CyclesPerRaySetup

	// A point on the ray: the pre-image of the pixel at view depth 0.
	x0, y0, z0 := inv.Apply(float64(px)-ox, float64(py)-oy, 0)

	// Clip the ray against the volume slab [0, N-1] in each dimension.
	tmin, tmax := math.Inf(-1), math.Inf(1)
	clip := func(o, d float64, n int) bool {
		if math.Abs(d) < 1e-12 {
			return o >= 0 && o <= float64(n-1)
		}
		t0 := (0 - o) / d
		t1 := (float64(n-1) - o) / d
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		tmin = math.Max(tmin, t0)
		tmax = math.Min(tmax, t1)
		return true
	}
	c := r.C
	if !clip(x0, dx, c.Nx) || !clip(y0, dy, c.Ny) || !clip(z0, dz, c.Nz) || tmin > tmax {
		out.SetRGB(px, py, 0, 0, 0)
		return
	}

	mip := r.Mode == rendermode.MIP
	var accR, accG, accB, accA float32
	for t := tmin; t <= tmax; t += 1.0 {
		cnt.Steps++
		cnt.Cycles += CyclesPerStep
		sx, sy, sz := x0+t*dx, y0+t*dy, z0+t*dz
		ix, iy, iz := int(sx), int(sy), int(sz)

		// Octree space leap: hop over the largest empty enclosing cell.
		lv := 0
		for lv < r.Tree.Height() {
			empty, lox, loy, loz, hix, hiy, hiz := r.Tree.EmptyAt(lv, ix, iy, iz)
			cnt.Descends++
			cnt.Cycles += CyclesPerDescend
			if !empty {
				break
			}
			if lv == r.Tree.Height()-1 || !emptyAtNext(r.Tree, lv+1, ix, iy, iz) {
				// Leap to the exit of this empty cell.
				exit := cellExit(sx, sy, sz, dx, dy, dz, lox, loy, loz, hix, hiy, hiz)
				if exit > 0 {
					t += exit // the loop adds the regular 1.0 step too
					cnt.Leaps++
					cnt.Cycles += CyclesPerLeap
				}
				lv = -1
				break
			}
			lv++
		}
		if lv == -1 {
			continue
		}

		// Resample: trilinear over the classified voxels. Addressing the
		// eight voxels through 3-D indexing is looping overhead in the
		// paper's accounting; only the interpolation arithmetic and the
		// blend count as compositing work.
		a, cr, cg, cb := r.sampleRGBA(sx, sy, sz)
		cnt.Resamples++
		cnt.Cycles += CyclesPerAddress + CyclesPerResample
		if a < 1.0/512 {
			continue
		}
		if mip {
			// Maximum intensity: keep the brightest premultiplied sample
			// per channel; no early termination — any later sample may
			// still raise the maximum.
			accR = max(accR, cr)
			accG = max(accG, cg)
			accB = max(accB, cb)
			accA = max(accA, a)
			cnt.Composites++
			cnt.Cycles += CyclesPerComposite
			continue
		}
		w := (1 - accA) * a
		accR += w * cr
		accG += w * cg
		accB += w * cb
		accA += w
		cnt.Composites++
		cnt.Cycles += CyclesPerComposite
		if accA >= img.OpacityThreshold {
			break // early ray termination
		}
	}
	out.SetRGB(px, py, quant(accR), quant(accG), quant(accB))
}

// emptyAtNext is a helper for the leap loop: whether the next-coarser cell
// is also empty.
func emptyAtNext(t *octree.Tree, lv, x, y, z int) bool {
	empty, _, _, _, _, _, _ := t.EmptyAt(lv, x, y, z)
	return empty
}

// cellExit returns the ray parameter advance needed to exit the cell
// [lo, hi) from position s along direction d (both in voxel units).
func cellExit(sx, sy, sz, dx, dy, dz float64, lox, loy, loz, hix, hiy, hiz int) float64 {
	exit := math.Inf(1)
	axis := func(s, d float64, lo, hi int) float64 {
		if d > 1e-12 {
			return (float64(hi) - s) / d
		}
		if d < -1e-12 {
			return (float64(lo) - 1e-9 - s) / d
		}
		return math.Inf(1)
	}
	exit = math.Min(exit, axis(sx, dx, lox, hix))
	exit = math.Min(exit, axis(sy, dy, loy, hiy))
	exit = math.Min(exit, axis(sz, dz, loz, hiz))
	if math.IsInf(exit, 1) || exit < 0 {
		return 0
	}
	return exit
}

// sampleRGBA trilinearly resamples the classified volume's premultiplied
// color and opacity at a continuous position.
func (r *Renderer) sampleRGBA(x, y, z float64) (a, cr, cg, cb float32) {
	c := r.C
	x0, y0, z0 := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
	fx, fy, fz := float32(x-float64(x0)), float32(y-float64(y0)), float32(z-float64(z0))
	for dz := 0; dz < 2; dz++ {
		wz := fz
		if dz == 0 {
			wz = 1 - fz
		}
		if wz == 0 {
			continue
		}
		for dy := 0; dy < 2; dy++ {
			wy := fy
			if dy == 0 {
				wy = 1 - fy
			}
			w2 := wz * wy
			if w2 == 0 {
				continue
			}
			for dx := 0; dx < 2; dx++ {
				wx := fx
				if dx == 0 {
					wx = 1 - fx
				}
				w := w2 * wx
				if w == 0 {
					continue
				}
				v := c.At(x0+dx, y0+dy, z0+dz)
				if v == 0 || classify.Opacity(v) < c.MinOpacity {
					continue
				}
				va := w * float32(v>>24) * (1.0 / 255)
				a += va
				cr += va * float32((v>>16)&0xff) * (1.0 / 255)
				cg += va * float32((v>>8)&0xff) * (1.0 / 255)
				cb += va * float32(v&0xff) * (1.0 / 255)
			}
		}
	}
	return
}

func quant(x float32) uint8 {
	v := int32(x*255 + 0.5)
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// RenderParallel renders with the Nieh & Levoy decomposition: square image
// tiles in an interleaved assignment with stealing, one goroutine per
// processor. Returns the image and per-processor counters.
func (r *Renderer) RenderParallel(f *xform.Factorization, procs, tileSize int) (*img.Final, []Counters) {
	if procs < 1 {
		procs = 1
	}
	if tileSize < 1 {
		tileSize = 32
	}
	out := img.NewFinal(f.FinalW, f.FinalH)
	var tiles [][4]int
	for y := 0; y < out.H; y += tileSize {
		for x := 0; x < out.W; x += tileSize {
			tiles = append(tiles, [4]int{x, y, min(x+tileSize, out.W), min(y+tileSize, out.H)})
		}
	}
	per := make([]Counters, procs)
	queue := par.NewInterleaved(0, len(tiles), 1, procs)
	var mu sync.Mutex
	done := make(chan int, procs)
	for p := 0; p < procs; p++ {
		go func(p int) {
			for {
				mu.Lock()
				c, _, ok := queue.Next(p)
				mu.Unlock()
				if !ok {
					break
				}
				for ti := c.Lo; ti < c.Hi; ti++ {
					tl := tiles[ti]
					r.RenderTile(f, out, tl[0], tl[1], tl[2], tl[3], &per[p])
				}
			}
			done <- p
		}(p)
	}
	for p := 0; p < procs; p++ {
		<-done
	}
	return out, per
}
