package raycast

import (
	"testing"

	"shearwarp/internal/classify"
	"shearwarp/internal/img"
	"shearwarp/internal/render"
	"shearwarp/internal/trace"
	"shearwarp/internal/vol"
	"shearwarp/internal/xform"
)

func setup(t *testing.T, n int, yaw, pitch float64) (*Renderer, *xform.Factorization) {
	t.Helper()
	v := vol.MRIBrain(n)
	c := classify.Classify(v, classify.Options{})
	view := xform.ViewMatrix(v.Nx, v.Ny, v.Nz, yaw, pitch)
	f := xform.Factorize(v.Nx, v.Ny, v.Nz, view)
	return New(c), &f
}

func TestRenderProducesImage(t *testing.T) {
	r, f := setup(t, 24, 0.4, 0.3)
	var cnt Counters
	out := r.Render(f, &cnt)
	if out.NonBlackCount() == 0 {
		t.Fatal("ray-cast image is all black")
	}
	if cnt.Rays != int64(out.W*out.H) {
		t.Fatalf("rays = %d, want one per pixel (%d)", cnt.Rays, out.W*out.H)
	}
	if cnt.Composites == 0 || cnt.Resamples == 0 {
		t.Fatalf("no samples: %+v", cnt)
	}
}

func TestLoopingDominatesForRayCaster(t *testing.T) {
	// Figure 2's key contrast: the ray caster's looping time exceeds its
	// compositing time, while the shear warper's does not.
	r, f := setup(t, 32, 0.4, 0.2)
	var cnt Counters
	r.Render(f, &cnt)
	if cnt.LoopingCycles() <= cnt.CompositeCycles() {
		t.Fatalf("looping %d <= compositing %d; ray caster should be loop-bound",
			cnt.LoopingCycles(), cnt.CompositeCycles())
	}
}

func TestEarlyTerminationAndLeaping(t *testing.T) {
	r, f := setup(t, 32, 0.3, 0.3)
	var cnt Counters
	r.Render(f, &cnt)
	if cnt.Leaps == 0 {
		t.Fatal("no space leaps through the empty surround")
	}
	// Without leaping and termination, steps would be ~rays * ray length.
	if cnt.Steps >= cnt.Rays*int64(f.Nk) {
		t.Fatalf("steps %d suggest no acceleration (rays %d, depth %d)",
			cnt.Steps, cnt.Rays, f.Nk)
	}
}

func TestImageResemblesShearWarp(t *testing.T) {
	// Same classified volume, same raster: the two renderers differ only in
	// resampling order, so the images must be closely similar (not equal).
	v := vol.MRIBrain(24)
	r := render.New(v, render.Options{})
	swOut, _ := r.RenderSerial(0.4, 0.25)

	rc := New(r.Classified)
	fr := r.Setup(0.4, 0.25)
	var cnt Counters
	rcOut := rc.Render(&fr.F, &cnt)

	if rcOut.W != swOut.W || rcOut.H != swOut.H {
		t.Fatalf("raster mismatch: %dx%d vs %dx%d", rcOut.W, rcOut.H, swOut.W, swOut.H)
	}
	d := img.Compare(swOut, rcOut)
	if d.RMSE > 40 {
		t.Fatalf("ray-cast image too different from shear-warp: %+v", d)
	}
	// And both should put content in roughly the same amount of pixels.
	sw, rcN := swOut.NonBlackCount(), rcOut.NonBlackCount()
	if rcN < sw/2 || rcN > sw*2 {
		t.Fatalf("content mismatch: shear-warp %d pixels, ray-cast %d", sw, rcN)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	r, f := setup(t, 20, 0.5, 0.2)
	var cnt Counters
	want := r.Render(f, &cnt)
	for _, procs := range []int{1, 3, 5} {
		got, per := r.RenderParallel(f, procs, 16)
		if !img.Equal(want, got) {
			t.Fatalf("procs=%d: parallel ray-cast image differs", procs)
		}
		var total Counters
		for _, c := range per {
			total.Add(c)
		}
		if total.Rays != cnt.Rays {
			t.Fatalf("procs=%d: rays %d, want %d", procs, total.Rays, cnt.Rays)
		}
	}
}

func TestEmptyVolumeFastAndBlack(t *testing.T) {
	c := &classify.Classified{Nx: 32, Ny: 32, Nz: 32,
		Voxels: make([]classify.Voxel, 32*32*32), MinOpacity: 4}
	view := xform.ViewMatrix(32, 32, 32, 0.4, 0.2)
	f := xform.Factorize(32, 32, 32, view)
	r := New(c)
	var cnt Counters
	out := r.Render(&f, &cnt)
	if out.NonBlackCount() != 0 {
		t.Fatal("empty volume rendered non-black pixels")
	}
	if cnt.Resamples != 0 {
		t.Fatalf("empty volume took %d resamples; leaping should skip all", cnt.Resamples)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Cycles: 5, Rays: 1, Leaps: 2}
	a.Add(Counters{Cycles: 7, Steps: 3})
	if a.Cycles != 12 || a.Rays != 1 || a.Steps != 3 || a.Leaps != 2 {
		t.Fatalf("Add result %+v", a)
	}
}

func TestRayCastCostModelIdentity(t *testing.T) {
	r, f := setup(t, 20, 0.4, 0.3)
	var cnt Counters
	r.Render(f, &cnt)
	want := cnt.Rays*CyclesPerRaySetup +
		cnt.Steps*CyclesPerStep +
		cnt.Descends*CyclesPerDescend +
		cnt.Leaps*CyclesPerLeap +
		cnt.Resamples*(CyclesPerAddress+CyclesPerResample) +
		cnt.Composites*CyclesPerComposite
	if cnt.Cycles != want {
		t.Fatalf("cycles %d != weighted events %d", cnt.Cycles, want)
	}
}

func TestTracedTileMatchesUntraced(t *testing.T) {
	r, f := setup(t, 20, 0.5, 0.3)
	plain := img.NewFinal(f.FinalW, f.FinalH)
	traced := img.NewFinal(f.FinalW, f.FinalH)
	var c1, c2 Counters
	r.RenderTile(f, plain, 0, 0, plain.W, plain.H, &c1)

	sp := trace.NewAddrSpace()
	finalArr := sp.Register("final", 4, traced.W*traced.H)
	tc := r.RegisterArrays(sp, finalArr)
	ct := &trace.CountingTracer{}
	tc.Tracer = ct
	r.RenderTileTraced(f, traced, 0, 0, traced.W, traced.H, &c2, &tc)

	if !img.Equal(plain, traced) {
		t.Fatal("tracing changed the rendered image")
	}
	if c1.Rays != c2.Rays || c1.Resamples != c2.Resamples || c1.Composites != c2.Composites {
		t.Fatalf("counters diverge: %+v vs %+v", c1, c2)
	}
	if ct.Reads == 0 || ct.Writes == 0 {
		t.Fatalf("tracer saw %d reads %d writes", ct.Reads, ct.Writes)
	}
	// Octree levels registered one array per level.
	if len(tc.Tree) != r.Tree.Height() {
		t.Fatalf("registered %d tree levels, want %d", len(tc.Tree), r.Tree.Height())
	}
}

func TestTracedNilFallsBack(t *testing.T) {
	r, f := setup(t, 14, 0.4, 0.2)
	a := img.NewFinal(f.FinalW, f.FinalH)
	b := img.NewFinal(f.FinalW, f.FinalH)
	var c1, c2 Counters
	r.RenderTile(f, a, 0, 0, a.W, a.H, &c1)
	r.RenderTileTraced(f, b, 0, 0, b.W, b.H, &c2, nil)
	if !img.Equal(a, b) {
		t.Fatal("nil trace context changed behaviour")
	}
}

func TestBackFacingViewRenders(t *testing.T) {
	// Yaw past 90 degrees: rays enter from the other side; the image must
	// still show the head.
	r, f := setup(t, 20, 2.4, -0.3)
	var cnt Counters
	out := r.Render(f, &cnt)
	if out.NonBlackCount() == 0 {
		t.Fatal("back-facing view rendered black")
	}
}
