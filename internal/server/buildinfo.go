package server

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildSnapshot identifies the running binary and its runtime
// configuration — the "which build is misbehaving" half of an incident.
// Static fields are read once from the embedded module build info;
// Goroutines is live.
type BuildSnapshot struct {
	Version    string `json:"version"` // module version, or "devel"
	Commit     string `json:"commit,omitempty"`
	Modified   bool   `json:"modified,omitempty"` // VCS tree was dirty at build
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Goroutines int    `json:"goroutines"`
}

var buildOnce = sync.OnceValue(func() BuildSnapshot {
	b := BuildSnapshot{
		Version:   "devel",
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			b.Version = bi.Main.Version
		}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				b.Commit = kv.Value
			case "vcs.modified":
				b.Modified = kv.Value == "true"
			}
		}
	}
	return b
})

// buildSnapshot returns the cached build identity with live runtime
// gauges filled in.
func buildSnapshot() BuildSnapshot {
	b := buildOnce()
	b.GOMAXPROCS = runtime.GOMAXPROCS(0)
	b.Goroutines = runtime.NumGoroutine()
	return b
}
