package server

// Render-mode tests for the HTTP surface: mode=/iso= parameter handling,
// byte-identity of mode responses against direct library renders,
// mode-qualified cache tenant attribution, and the 400 mapping for the
// packed-kernel/mode conflict.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"shearwarp"
)

// directModePPM is directPPM with an explicit render mode and threshold.
func directModePPM(t *testing.T, cfg shearwarp.Config, yaw, pitch float64) []byte {
	t.Helper()
	data, nx, ny, nz := testVolume()
	r, err := shearwarp.NewRenderer(data, nx, ny, nz, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	im, _ := r.Render(yaw, pitch)
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRenderModeByteIdentical requires every mode= response to match a
// direct library render of the same configuration byte for byte, and the
// X-Shearwarp-Mode header to echo the effective mode.
func TestRenderModeByteIdentical(t *testing.T) {
	const procs = 2
	s := newTestServer(t, Config{Procs: procs, MaxConcurrent: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name  string
		query string // appended to the base render URL
		cfg   shearwarp.Config
	}{
		{"default-composite", "", shearwarp.Config{Algorithm: shearwarp.NewParallel, Procs: procs}},
		{"explicit-composite", "&mode=composite", shearwarp.Config{Algorithm: shearwarp.NewParallel, Procs: procs}},
		{"mip", "&mode=mip", shearwarp.Config{Algorithm: shearwarp.NewParallel, Procs: procs, Mode: shearwarp.ModeMIP}},
		{"iso-default-threshold", "&mode=iso",
			shearwarp.Config{Algorithm: shearwarp.NewParallel, Procs: procs, Mode: shearwarp.ModeIsosurface}},
		{"iso-explicit-threshold", "&mode=iso&iso=140",
			shearwarp.Config{Algorithm: shearwarp.NewParallel, Procs: procs, Mode: shearwarp.ModeIsosurface, IsoThreshold: 140}},
		{"iso-alias", "&mode=isosurface",
			shearwarp.Config{Algorithm: shearwarp.NewParallel, Procs: procs, Mode: shearwarp.ModeIsosurface}},
		{"mip-serial-alg", "&mode=mip&alg=serial",
			shearwarp.Config{Algorithm: shearwarp.Serial, Mode: shearwarp.ModeMIP}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			url := fmt.Sprintf("%s/render?volume=mri&yaw=40&pitch=20%s", ts.URL, tc.query)
			resp, err := ts.Client().Get(url)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
			}
			if got, want := resp.Header.Get("X-Shearwarp-Mode"), tc.cfg.Mode.String(); got != want {
				t.Fatalf("X-Shearwarp-Mode = %q, want %q", got, want)
			}
			want := directModePPM(t, tc.cfg, 40, 20)
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("response differs from direct %s render (%d vs %d bytes)",
					tc.cfg.Mode, buf.Len(), len(want))
			}
		})
	}
}

// TestRenderModeParamErrors: malformed mode/iso parameters are client
// errors, answered 400 before any renderer is touched.
func TestRenderModeParamErrors(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		query   string
		wantMsg string
	}{
		{"mode=sinc", "mode"},
		{"mode=iso&iso=256", "iso"},
		{"mode=iso&iso=-1", "iso"},
		{"mode=iso&iso=bright", "iso"},
	} {
		url := fmt.Sprintf("%s/render?volume=mri&yaw=30&pitch=15&%s", ts.URL, tc.query)
		code, body := get(t, ts.Client(), url)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.query, code, body)
		}
		if !strings.Contains(string(body), tc.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", tc.query, body, tc.wantMsg)
		}
	}
}

// TestRenderModePackedKernelConflict: a service pinned to the packed
// pixel-kernel tier (composite-only) must refuse non-composite mode
// requests with 400 and a message naming the conflict — not a 500, and
// not a silent scalar render.
func TestRenderModePackedKernelConflict(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2, Kernel: shearwarp.KernelPacked})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Composite works on the packed tier.
	if code, body := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15"); code != http.StatusOK {
		t.Fatalf("composite on packed kernel: status %d: %s", code, body)
	}

	code, body := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15&mode=mip")
	if code != http.StatusBadRequest {
		t.Fatalf("mip on packed kernel: status %d, want 400 (%s)", code, body)
	}
	if !strings.Contains(string(body), "packed") || !strings.Contains(string(body), "mip") {
		t.Fatalf("conflict error %q does not name the kernel and mode", body)
	}
}

// TestCacheTenantModeAttribution: non-composite renders register a
// mode-qualified tenant name, so per-volume cache accounting separates
// "mri" (composite) from "mri@mip" and "mri@iso" traffic.
func TestCacheTenantModeAttribution(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2, CollectStats: true})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, q := range []string{"", "&mode=mip", "&mode=iso"} {
		url := fmt.Sprintf("%s/render?volume=mri&yaw=30&pitch=15%s", ts.URL, q)
		if code, body := get(t, ts.Client(), url); code != http.StatusOK {
			t.Fatalf("render %q: status %d: %s", q, code, body)
		}
	}

	snap := s.metricsSnapshot()
	names := map[string]bool{}
	for _, ten := range snap.CacheTenants {
		names[ten.Name] = true
	}
	for _, want := range []string{"mri", "mri@mip", "mri@iso"} {
		if !names[want] {
			t.Errorf("cache tenants missing %q; have %v", want, names)
		}
	}
}
