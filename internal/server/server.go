// Package server implements shearwarpd, the long-running render service
// in front of the frame-loop renderers: HTTP requests name a registered
// volume and a viewpoint, and the service renders them from a pool of
// persistent Renderers whose view-independent preprocessing (classified
// volume, per-axis RLE encodings) is amortized across requests through an
// LRU cache (internal/volcache).
//
// The service applies the standard production controls around the
// renderer library:
//
//   - bounded concurrency: at most MaxConcurrent frames render at once,
//     with at most MaxQueue requests waiting for admission and a
//     QueueTimeout on the wait (overload answers 503 quickly instead of
//     piling up goroutines);
//   - per-request deadlines: a request that cannot finish before
//     RenderTimeout answers 504, and the frame it may have started is
//     cancelled cooperatively — every render worker polls the frame's
//     abort flag at scanline granularity, so the renderer and the
//     admission slot come back within one scanline of work;
//   - fault isolation: a panic inside any render worker is recovered into
//     a typed *render.FrameError, the request answers 500, the renderer
//     is swapped for a freshly built one, and the daemon keeps serving;
//     an optional watchdog (Config.WatchdogTimeout) cancels and reports
//     frames that stop making progress;
//   - graceful shutdown: Close stops admitting, waits for in-flight
//     frames, and releases the pools' persistent worker goroutines;
//   - observability: per-endpoint request/error/latency counters, cache
//     hit/miss/eviction/build counters, and the internal/perf cumulative
//     phase breakdown of every rendered frame, all served by /metrics
//     and optionally published through expvar.
//
// Output contract: a frame rendered through the service is byte-identical
// to one rendered by calling the library directly with the same volume,
// viewpoint and configuration.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shearwarp"
	"shearwarp/internal/classify"
	"shearwarp/internal/cpudispatch"
	"shearwarp/internal/faultinject"
	"shearwarp/internal/perf"
	"shearwarp/internal/render"
	"shearwarp/internal/slo"
	"shearwarp/internal/telemetry"
	"shearwarp/internal/volcache"
)

// Config tunes the service. The zero value gets sensible defaults from
// New.
type Config struct {
	Procs     int                 // workers inside each parallel render (default 4)
	Algorithm shearwarp.Algorithm // default algorithm when a request omits ?alg (default NewParallel)
	// Kernel selects the pixel-kernel tier every renderer the service
	// builds runs with (KernelAuto = $SHEARWARP_KERNEL, else scalar).
	// The resolved tier is reported by /metrics.
	Kernel shearwarp.Kernel
	// Mode is the default render mode when a request omits ?mode
	// (composite, mip, iso). An explicit KernelPacked combined with a
	// non-composite default fails at pool build (packed is
	// composite-only); per-request mode= overrides report the same
	// conflict as a 400.
	Mode shearwarp.Mode
	// IsoThreshold is the default isosurface density threshold when a
	// request omits ?iso (0 = the classifier default). Only consulted in
	// isosurface mode.
	IsoThreshold      uint8
	PoolSize          int           // persistent renderers per (volume, transfer, algorithm) pool (default MaxConcurrent)
	MaxConcurrent     int           // frames rendering at once (default 8)
	MaxQueue          int           // requests waiting for admission before fast 503 (default 4*MaxConcurrent)
	QueueTimeout      time.Duration // longest admission wait (default 5s)
	RenderTimeout     time.Duration // request deadline to start rendering (default 30s)
	CacheBytes        int64         // volcache budget (default 256 MiB; <0 = unbounded)
	CollectStats      bool          // per-frame perf breakdowns feeding /metrics (default on via New)
	OpacityCorrection bool          // forwarded to every renderer
	// WatchdogTimeout, when positive, bounds how long a frame may render
	// after it has started: a frame still running at the deadline is
	// cancelled through its abort flag, counted as a stall, and answered
	// 500. Zero disables the watchdog (the render deadline still applies).
	WatchdogTimeout time.Duration
	// Faults, when non-nil, wires a deterministic fault injector
	// (internal/faultinject) into every renderer and preprocessing build
	// the server creates — the chaos-test hook. Nil in production.
	Faults *faultinject.Injector
	// Logger receives the service's structured logs (request lifecycle,
	// cache builds, watchdog stalls), each /render line carrying the
	// request ID shared with its span trace. Nil discards — the default
	// for embedded servers and tests.
	Logger *slog.Logger
	// TraceRing sizes the per-request span tracer's recent-trace ring
	// (/debug/spans): 0 keeps the default of 64 retained traces (plus
	// head and slowest samples), negative disables span tracing entirely
	// — renders then take the span-free path with no extra clock reads.
	TraceRing int
	// SLO lists the service-level objectives the embedded SLO engine
	// evaluates (internal/slo). Nil runs slo.DefaultSpec; objectives
	// naming endpoints the server does not serve are skipped with a log.
	SLO []slo.Objective
	// SLOInterval is the engine's background sampling period (default
	// 10s; the engine also samples on every /debug/slo and /metrics
	// read). Negative disables the SLO engine entirely.
	SLOInterval time.Duration
}

func (c *Config) normalize() {
	if c.Procs < 1 {
		c.Procs = 4
	}
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.PoolSize < 1 {
		c.PoolSize = c.MaxConcurrent
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.RenderTimeout == 0 {
		c.RenderTimeout = 30 * time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.SLOInterval == 0 {
		c.SLOInterval = 10 * time.Second
	}
}

// volumeRec is one registered volume: the raw data plus its default
// transfer function.
type volumeRec struct {
	name       string
	data       []uint8
	nx, ny, nz int
	transfer   shearwarp.Transfer
}

// poolKey identifies one renderer pool. mode and iso carry the render
// mode and its effective isosurface threshold (0 unless mode is
// isosurface, so requests that spell the default threshold differently
// share a pool).
type poolKey struct {
	volume    string
	transfer  shearwarp.Transfer
	algorithm shearwarp.Algorithm
	mode      shearwarp.Mode
	iso       uint8
}

// poolEntry lazily builds its pool once; concurrent requests wait on the
// same build.
type poolEntry struct {
	once sync.Once
	pool *shearwarp.RendererPool
	err  error
}

// Server is the render service. Create with New, register volumes, then
// serve Handler. All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	cache *volcache.Cache
	start time.Time

	mu    sync.Mutex
	vols  map[string]*volumeRec
	pools map[poolKey]*poolEntry
	// volKeys joins volume content fingerprints (volcache tenant keys)
	// back to registered names for the per-tenant cache stats.
	volKeys map[string]string

	sem      chan struct{} // admission slots
	waiting  atomic.Int64  // requests blocked on admission
	closed   atomic.Bool
	draining atomic.Bool // /readyz answers 503; /render still serves
	inflight sync.WaitGroup

	cum        perf.Cumulative // phase totals across all rendered frames
	frames     atomic.Int64    // successfully rendered frames
	panics     atomic.Int64    // frames that failed with a recovered panic (*render.FrameError)
	cancels    atomic.Int64    // frames aborted by deadline or client disconnect
	stalls     atomic.Int64    // frames cancelled by the watchdog
	replaced   atomic.Int64    // renderers discarded and rebuilt after a panic
	renderHook func()          // test hook: runs while holding an admission slot

	mRender, mHealth, mMetrics endpointMetrics
	mSpans, mLatency           endpointMetrics
	mSLO, mDash, mProfile      endpointMetrics
	mReady                     endpointMetrics
	tel                        *serverTelemetry
	mux                        *http.ServeMux

	slo       *slo.Engine   // nil when Config.SLOInterval < 0 or construction failed
	sloStop   chan struct{} // closed by Close to stop the sampling loop
	profiling atomic.Bool   // single-flight guard for /debug/profile
}

// New builds a server. Volumes must be registered before requests name
// them; everything else is ready immediately.
func New(cfg Config) *Server {
	cfg.normalize()
	s := &Server{
		cfg:     cfg,
		cache:   volcache.New(cfg.CacheBytes),
		start:   time.Now(),
		vols:    make(map[string]*volumeRec),
		pools:   make(map[poolKey]*poolEntry),
		volKeys: make(map[string]string),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		sloStop: make(chan struct{}),
	}
	s.tel = newServerTelemetry(&cfg)
	s.cache.OnBuild = s.tel.onCacheBuild
	s.mRender.latency = telemetry.NewHistogram("render", "")
	// The render endpoint's histogram retains exemplars: tail buckets
	// link back to the request (and its span trace) that landed there.
	s.mRender.latency.EnableExemplars()
	s.mHealth.latency = telemetry.NewHistogram("healthz", "")
	s.mMetrics.latency = telemetry.NewHistogram("metrics", "")
	s.mSpans.latency = telemetry.NewHistogram("spans", "")
	s.mLatency.latency = telemetry.NewHistogram("latency", "")
	s.mSLO.latency = telemetry.NewHistogram("slo", "")
	s.mDash.latency = telemetry.NewHistogram("dash", "")
	s.mProfile.latency = telemetry.NewHistogram("profile", "")
	s.mReady.latency = telemetry.NewHistogram("readyz", "")
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/render", s.instrument(&s.mRender, s.handleRender))
	s.mux.HandleFunc("/healthz", s.instrument(&s.mHealth, s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.instrument(&s.mReady, s.handleReadyz))
	s.mux.HandleFunc("/metrics", s.instrument(&s.mMetrics, s.handleMetrics))
	s.mux.HandleFunc("/debug/spans", s.instrument(&s.mSpans, s.handleSpans))
	// Alias: the gateway's stitched-trace URLs use /debug/trace; serving
	// the same handler here lets a trace URL recorded against a bare
	// backend (no gateway) resolve to that backend's span sets.
	s.mux.HandleFunc("/debug/trace", s.instrument(&s.mSpans, s.handleSpans))
	s.mux.HandleFunc("/debug/latency", s.instrument(&s.mLatency, s.handleLatency))
	s.mux.HandleFunc("/debug/slo", s.instrument(&s.mSLO, s.handleSLO))
	s.mux.HandleFunc("/debug/dash", s.instrument(&s.mDash, s.handleDash))
	s.mux.HandleFunc("/debug/profile", s.instrument(&s.mProfile, s.handleProfile))
	s.setupSLO()
	if s.slo != nil {
		go s.sloLoop(cfg.SLOInterval)
	}
	return s
}

// RegisterVolume makes a raw 8-bit volume (X fastest) renderable under
// the given name, classified by default with the given transfer function.
func (s *Server) RegisterVolume(name string, data []uint8, nx, ny, nz int, transfer shearwarp.Transfer) error {
	if name == "" {
		return errors.New("server: empty volume name")
	}
	if len(data) != nx*ny*nz || nx < 2 || ny < 2 || nz < 2 {
		return fmt.Errorf("server: volume %q has invalid shape %dx%dx%d for %d samples", name, nx, ny, nz, len(data))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.vols[name]; dup {
		return fmt.Errorf("server: volume %q already registered", name)
	}
	s.vols[name] = &volumeRec{name: name, data: data, nx: nx, ny: ny, nz: nz, transfer: transfer}
	// The cache keys entries by content fingerprint; remember the join so
	// per-tenant cache stats can carry the human-readable name.
	s.volKeys[shearwarp.VolumeKey(data, nx, ny, nz)] = name
	return nil
}

// Volumes lists the registered volume names.
func (s *Server) Volumes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.vols))
	for n := range s.vols {
		names = append(names, n)
	}
	return names
}

// Handler returns the service's HTTP handler (/render, /healthz,
// /metrics).
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats returns the preprocessing cache counters — tests use it to
// assert that repeated requests hit instead of re-classifying.
func (s *Server) CacheStats() volcache.Stats { return s.cache.Snapshot() }

// BeginDrain flips the server unready: /readyz starts answering 503
// (with Retry-After) so fleet health checkers stop routing here, while
// /render keeps serving whatever still arrives. Call it at the start of
// graceful shutdown, before the HTTP listener closes, so a gateway
// drains this backend ahead of the listener going away. Idempotent;
// Close implies it.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close stops admitting new requests, waits for in-flight requests, and
// shuts down every renderer pool (releasing their persistent worker
// goroutines). The HTTP listener, if any, is the caller's to close —
// typically via http.Server.Shutdown before Close (with BeginDrain
// called first so health checkers saw the drain coming).
func (s *Server) Close() {
	s.draining.Store(true)
	if s.closed.Swap(true) {
		return
	}
	close(s.sloStop)
	s.inflight.Wait()
	s.mu.Lock()
	pools := make([]*poolEntry, 0, len(s.pools))
	for _, pe := range s.pools {
		pools = append(pools, pe)
	}
	s.pools = make(map[poolKey]*poolEntry)
	s.mu.Unlock()
	for _, pe := range pools {
		if pe.pool != nil {
			pe.pool.Close()
		}
	}
}

// PublishExpvar exposes the server's metrics snapshot under the expvar
// name "shearwarpd" (alongside /debug/vars). Safe to call once per
// process; later calls are no-ops.
var expvarOnce sync.Once

func (s *Server) PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("shearwarpd", expvar.Func(func() any { return s.metricsSnapshot() }))
	})
}

// instrument wraps a handler with the endpoint's counters.
func (s *Server) instrument(m *endpointMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		m.inFlight.Add(1)
		t0 := time.Now()
		h(sw, r)
		m.inFlight.Add(-1)
		elapsed := time.Since(t0)
		m.nanos.Add(int64(elapsed))
		if sw.exemplarID != 0 {
			m.latency.ObserveExemplarNS(int64(elapsed), sw.exemplarID)
		} else {
			m.latency.Observe(elapsed)
		}
		m.requests.Add(1)
		if sw.status >= 400 {
			m.errors.Add(1)
		}
		if sw.status >= 500 {
			m.srvErrors.Add(1)
		}
		switch sw.status {
		case http.StatusServiceUnavailable:
			m.rejected.Add(1)
		case http.StatusGatewayTimeout:
			m.deadlines.Add(1)
		}
	}
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// httpUnavailable writes a 503 carrying a Retry-After hint: shed and
// draining responses tell well-behaved clients (the gateway, loadgen)
// when re-arrival is worth trying instead of leaving them to hammer an
// overloaded or departing backend.
func httpUnavailable(w http.ResponseWriter, retryAfterSecs int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs))
	httpError(w, http.StatusServiceUnavailable, format, args...)
}

// admit claims an admission slot, waiting up to QueueTimeout while the
// request context lives. It returns a release func on success, or an
// HTTP status and message on rejection.
func (s *Server) admit(ctx context.Context) (release func(), status int, msg string) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0, ""
	default:
	}
	// All slots busy: join the bounded admission queue.
	if s.waiting.Add(1) > int64(s.cfg.MaxQueue) {
		s.waiting.Add(-1)
		return nil, http.StatusServiceUnavailable, "admission queue full"
	}
	defer s.waiting.Add(-1)
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0, ""
	case <-timer.C:
		return nil, http.StatusServiceUnavailable, "admission queue timeout"
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, http.StatusGatewayTimeout, "deadline expired while queued"
		}
		return nil, 499, "client went away" // nginx-style cancelled-request code
	}
}

// effectiveIso normalizes an isosurface threshold for pool keying: only
// the isosurface mode consults it, and 0 means the classifier default —
// so requests that spell the default differently share one pool and one
// set of cache entries.
func effectiveIso(mode shearwarp.Mode, iso uint8) uint8 {
	if mode != shearwarp.ModeIsosurface {
		return 0
	}
	if iso == 0 {
		return classify.DefaultIsoThreshold
	}
	return iso
}

// renderPool returns (building on first use) the renderer pool for a
// key. Pool construction classifies and encodes through the LRU cache, so
// even a cold pool costs one classification, and a pool rebuilt after
// cache-warm use costs none. iso must already be the effective threshold
// (see effectiveIso).
func (s *Server) renderPool(ctx context.Context, rec *volumeRec, transfer shearwarp.Transfer, alg shearwarp.Algorithm, mode shearwarp.Mode, iso uint8) (*shearwarp.RendererPool, error) {
	k := poolKey{volume: rec.name, transfer: transfer, algorithm: alg, mode: mode, iso: iso}
	s.mu.Lock()
	pe, ok := s.pools[k]
	if !ok {
		pe = &poolEntry{}
		s.pools[k] = pe
	}
	s.mu.Unlock()
	pe.once.Do(func() {
		t0 := time.Now()
		defer func() {
			s.tel.logger.Info("renderer pool built",
				"req", telemetry.RequestID(ctx), "volume", rec.name,
				"transfer", transfer.String(), "alg", alg.String(),
				"mode", mode.String(),
				"size", s.cfg.PoolSize, "duration_ms", float64(time.Since(t0))/1e6,
				"err", pe.err)
		}()
		pv, err := shearwarp.PrepareVolumeMode(rec.data, rec.nx, rec.ny, rec.nz, transfer, mode, iso, s.cfg.Procs, s.cache)
		if err != nil {
			pe.err = err
			return
		}
		pv.SetFaultInjector(s.cfg.Faults)
		if mode != shearwarp.ModeComposite {
			// Non-composite preprocessing lands in the cache under a
			// mode-qualified fingerprint; join it to a mode-qualified
			// tenant name so per-tenant cache stats stay readable.
			s.mu.Lock()
			if _, known := s.volKeys[pv.Key()]; !known {
				s.volKeys[pv.Key()] = rec.name + "@" + mode.String()
			}
			s.mu.Unlock()
		}
		pe.pool, pe.err = shearwarp.NewRendererPool(s.cfg.PoolSize, func() (*shearwarp.Renderer, error) {
			return pv.NewRenderer(shearwarp.Config{
				Algorithm:         alg,
				Kernel:            s.cfg.Kernel,
				Procs:             s.cfg.Procs,
				OpacityCorrection: s.cfg.OpacityCorrection,
				CollectStats:      s.cfg.CollectStats && alg != shearwarp.RayCast,
				Faults:            s.cfg.Faults,
			})
		})
	})
	if pe.err != nil {
		// Mirror the cache's never-cache-failures rule at the pool layer:
		// evict the failed entry (if it is still the registered one) so
		// the next request for this key retries the build instead of
		// replaying a stale error forever. Transient failures heal; a
		// deterministic one fails again and is reported as non-retryable
		// through the error-class header.
		s.mu.Lock()
		if s.pools[k] == pe {
			delete(s.pools, k)
		}
		s.mu.Unlock()
	}
	return pe.pool, pe.err
}

// parseFloat parses a required float query parameter with a default.
// Non-finite values are rejected here, at the HTTP boundary, so they
// surface as 400s rather than as renderer validation errors.
func parseFloat(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("bad %s %q: must be finite", name, v)
	}
	return f, nil
}

// handleRender is GET /render?volume=NAME&yaw=DEG&pitch=DEG
// [&alg=serial|old|new|raycast][&transfer=mri|ct]
// [&mode=composite|mip|iso][&iso=1-255][&format=ppm|png].
func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		httpUnavailable(w, 5, "server shutting down")
		return
	}
	q := r.URL.Query()

	name := q.Get("volume")
	s.mu.Lock()
	rec := s.vols[name]
	s.mu.Unlock()
	if rec == nil {
		httpError(w, http.StatusNotFound, "unknown volume %q", name)
		return
	}

	yaw, err := parseFloat(r, "yaw", 30)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pitch, err := parseFloat(r, "pitch", 15)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	alg := s.cfg.Algorithm
	if v := q.Get("alg"); v != "" {
		if alg, err = shearwarp.ParseAlgorithm(v); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	transfer := rec.transfer
	if v := q.Get("transfer"); v != "" {
		if transfer, err = shearwarp.ParseTransfer(v); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	mode := s.cfg.Mode
	if v := q.Get("mode"); v != "" {
		if mode, err = shearwarp.ParseMode(v); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	iso := s.cfg.IsoThreshold
	if v := q.Get("iso"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 0 || n > 255 {
			httpError(w, http.StatusBadRequest, "bad iso %q: threshold must be in 0-255", v)
			return
		}
		iso = uint8(n)
	}
	iso = effectiveIso(mode, iso)
	format := q.Get("format")
	if format == "" {
		format = "ppm"
	}
	if format != "ppm" && format != "png" {
		httpError(w, http.StatusBadRequest, "unknown format %q (ppm, png)", format)
		return
	}

	// Request identity: one ID shared by the structured log lines, the
	// context (so downstream layers can correlate), and the span trace.
	// Behind a gateway the propagated fleet trace ID is adopted in place
	// of the local sequence, so FrameSpans, exemplars and log lines on
	// every process a request touched key on the same ID; the attempt
	// ordinal distinguishes this backend's span sets when the gateway
	// retried or hedged the request here more than once.
	t0 := time.Now()
	var id uint64
	attempt := 0
	if v := r.Header.Get(TraceHeader); v != "" {
		if tid, perr := strconv.ParseUint(v, 10, 64); perr == nil && tid > 0 {
			id = tid
		}
	}
	if id == 0 {
		id = s.tel.reqSeq.Add(1)
	}
	if v := r.Header.Get(AttemptHeader); v != "" {
		if n, perr := strconv.Atoi(v); perr == nil && n >= 0 {
			attempt = n
		}
	}
	w.Header().Set(TraceHeader, strconv.FormatUint(id, 10))
	setExemplarID(w, id) // the latency observation carries the trace ID as an exemplar
	log := s.tel.logger.With("req", id, "volume", name, "alg", alg.String(), "mode", mode.String())
	if gw := r.Header.Get(GatewayRequestHeader); gw != "" {
		// Behind a gateway: thread its request ID through every log line
		// so a fleet-wide trace joins both sides.
		log = log.With("gwreq", gw)
	}
	if attempt > 0 {
		log = log.With("attempt", attempt)
	}
	log.Debug("render request", "yaw", yaw, "pitch", pitch, "format", format)
	label := fmt.Sprintf("render %s yaw=%g pitch=%g alg=%s", name, yaw, pitch, alg)
	if mode != shearwarp.ModeComposite {
		label += " mode=" + mode.String()
	}
	rt := s.tel.startTrace(id, attempt, label, t0)

	// The whole request — admission wait, renderer acquisition, render —
	// runs under the render deadline, capped by the client's propagated
	// budget (the gateway forwards its remaining per-request budget so a
	// backend never works past the point the client stopped waiting).
	budget := s.cfg.RenderTimeout
	if v := r.Header.Get(BudgetHeader); v != "" {
		if ms, perr := strconv.ParseInt(v, 10, 64); perr == nil && ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; d < budget {
				budget = d
			}
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	ctx = telemetry.WithRequestID(ctx, id)

	admitAt := time.Now()
	release, status, msg := s.admit(ctx)
	admitDur := time.Since(admitAt)
	s.tel.hQueue.Observe(admitDur)
	rt.record("admission", admitAt, admitDur)
	if release == nil {
		log.Warn("request rejected", "status", status, "reason", msg,
			"wait_ms", float64(admitDur)/1e6)
		rt.finish(status, time.Now())
		if status == http.StatusServiceUnavailable {
			// Shed: hint re-arrival after the queue has had a chance to
			// drain rather than inviting an immediate repeat rejection.
			httpUnavailable(w, 1, "%s", msg)
		} else {
			httpError(w, status, "%s", msg)
		}
		return
	}
	s.inflight.Add(1)
	if s.renderHook != nil {
		s.renderHook()
	}

	acquireAt := time.Now()
	pool, err := s.renderPool(ctx, rec, transfer, alg, mode, iso)
	if err != nil {
		release()
		s.inflight.Done()
		// A kernel/mode conflict (explicit packed with a non-composite
		// mode) is the client's request to fix, not a server fault.
		var ume *cpudispatch.UnsupportedModeError
		if errors.As(err, &ume) {
			log.Warn("unsupported kernel/mode combination", "err", err)
			rt.finish(http.StatusBadRequest, time.Now())
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		log.Error("preparing volume failed", "err", err)
		rt.finish(http.StatusInternalServerError, time.Now())
		// A failed build is deterministic for this (volume, transfer,
		// mode): type the response so the gateway's retry policy does not
		// burn its budget re-rendering a volume that cannot build.
		w.Header().Set(ErrorClassHeader, ErrClassBuildFailure)
		httpError(w, http.StatusInternalServerError, "preparing volume: %v", err)
		return
	}
	ren, err := pool.Acquire(ctx)
	rt.record("acquire-renderer", acquireAt, time.Since(acquireAt))
	if err != nil {
		release()
		s.inflight.Done()
		var code int
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			code = http.StatusGatewayTimeout
			httpError(w, code, "deadline expired waiting for a renderer")
		case errors.Is(err, shearwarp.ErrPoolClosed):
			code = http.StatusServiceUnavailable
			httpUnavailable(w, 5, "server shutting down")
		default:
			code = 499
			httpError(w, code, "client went away")
		}
		log.Warn("renderer acquisition failed", "status", code, "err", err)
		rt.finish(code, time.Now())
		return
	}
	if rt != nil {
		ren.SetSpanRecorder(rt.spans)
	}

	// Render asynchronously so the handler can react to cancellation and
	// the watchdog while the frame runs. The goroutine — not the handler —
	// owns the renderer, the admission slot and the in-flight count, and
	// gives all three back the moment RenderCtx returns: on cancellation
	// that is within one scanline of work per worker, so an abandoned
	// request frees its resources long before the handler's HTTP deadline
	// machinery would. A panicked frame additionally swaps the renderer
	// for a freshly built one before the slot comes back.
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()
	type renderResult struct {
		im   *shearwarp.Image
		info shearwarp.FrameInfo
		err  error
	}
	done := make(chan renderResult, 1)
	go func() {
		im, info, err := ren.RenderCtx(rctx, yaw, pitch)
		// Detach the span recorder before the renderer can serve another
		// request; RenderCtx has returned, so no worker records past here.
		if rt != nil {
			ren.SetSpanRecorder(nil)
		}
		var fe *render.FrameError
		if errors.As(err, &fe) {
			s.panics.Add(1)
			if derr := pool.Discard(ren); derr == nil {
				s.replaced.Add(1)
			}
		} else {
			if err == nil {
				s.frames.Add(1)
				if bd := ren.LastBreakdown(); bd != nil {
					fb := bd.Frame()
					s.cum.Add(fb)
					s.tel.observePhases(mode, fb)
				}
			}
			pool.Release(ren)
		}
		release()
		s.inflight.Done()
		rt.goroutineDone(time.Now())
		done <- renderResult{im, info, err}
	}()

	var wdC <-chan time.Time
	if s.cfg.WatchdogTimeout > 0 {
		wd := time.NewTimer(s.cfg.WatchdogTimeout)
		defer wd.Stop()
		wdC = wd.C
	}

	var res renderResult
	select {
	case res = <-done:
	case <-wdC:
		// The frame exceeded the watchdog budget: cancel it and answer
		// now. The render goroutine drains in the background and returns
		// the slot as soon as the workers observe the abort flag.
		s.stalls.Add(1)
		rcancel()
		log.Error("watchdog stall: frame cancelled",
			"budget_ms", float64(s.cfg.WatchdogTimeout)/1e6,
			"duration_ms", float64(time.Since(t0))/1e6)
		rt.handlerExits(http.StatusInternalServerError, time.Now())
		w.Header().Set(ErrorClassHeader, ErrClassWatchdogStall)
		httpError(w, http.StatusInternalServerError,
			"watchdog: frame exceeded %v and was cancelled", s.cfg.WatchdogTimeout)
		return
	case <-ctx.Done():
		s.cancels.Add(1)
		rcancel()
		code := 499
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
			httpError(w, code, "deadline expired while rendering")
		} else {
			httpError(w, code, "client went away")
		}
		log.Warn("request abandoned", "status", code,
			"duration_ms", float64(time.Since(t0))/1e6)
		rt.handlerExits(code, time.Now())
		return
	}

	if res.err != nil {
		var ve *shearwarp.ValidationError
		var fe *render.FrameError
		var code int
		switch {
		case errors.As(res.err, &ve):
			code = http.StatusBadRequest
			httpError(w, code, "%v", ve)
		case errors.As(res.err, &fe):
			code = http.StatusInternalServerError
			// The renderer has been replaced; a retry runs on a fresh one.
			w.Header().Set(ErrorClassHeader, ErrClassFramePanic)
			httpError(w, code, "frame failed: %v", fe)
		case errors.Is(res.err, context.DeadlineExceeded):
			s.cancels.Add(1)
			code = http.StatusGatewayTimeout
			httpError(w, code, "deadline expired while rendering")
		case errors.Is(res.err, context.Canceled):
			s.cancels.Add(1)
			code = 499
			httpError(w, code, "client went away")
		default:
			code = http.StatusInternalServerError
			httpError(w, code, "render failed: %v", res.err)
		}
		log.Error("render failed", "status", code, "err", res.err,
			"duration_ms", float64(time.Since(t0))/1e6)
		rt.handlerFinishes(code, time.Time{}, 0, time.Now())
		return
	}

	im, info := res.im, res.info
	w.Header().Set("X-Shearwarp-Algorithm", alg.String())
	w.Header().Set("X-Shearwarp-Mode", mode.String())
	w.Header().Set("X-Shearwarp-Samples", strconv.FormatInt(info.Samples, 10))
	w.Header().Set("X-Shearwarp-Size", fmt.Sprintf("%dx%d", im.Width(), im.Height()))
	encStart := time.Now()
	if format == "png" {
		w.Header().Set("Content-Type", "image/png")
		im.WritePNG(w)
	} else {
		w.Header().Set("Content-Type", "image/x-portable-pixmap")
		im.WritePPM(w)
	}
	now := time.Now()
	rt.handlerFinishes(http.StatusOK, encStart, now.Sub(encStart), now)
	log.Info("render complete", "samples", info.Samples,
		"duration_ms", float64(now.Sub(t0))/1e6)
}

// handleHealthz is GET /healthz: liveness plus a tiny status summary.
// volume_names lets clients (the load generator's auto-discovery) learn
// what the service can render without an out-of-band catalogue.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.vols))
	for n := range s.vols {
		names = append(names, n)
	}
	npools := len(s.pools)
	s.mu.Unlock()
	sort.Strings(names)
	status := "ok"
	code := http.StatusOK
	if s.closed.Load() {
		status = "shutting-down"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(s.start).Seconds(),
		"volumes":        len(names),
		"volume_names":   names,
		"pools":          npools,
		"rendering":      len(s.sem),
		"queued":         s.waiting.Load(),
		"frames":         s.frames.Load(),
	})
}

// handleReadyz is GET /readyz: routability, distinct from /healthz
// liveness. It flips 503 the moment graceful shutdown begins
// (BeginDrain), before the listener closes, so fleet health checkers
// stop routing to a draining backend while it can still answer them.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() || s.closed.Load() {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "draining"})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"ready": true})
}

// MetricsSnapshot is the full /metrics document.
type MetricsSnapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Kernel        string                      `json:"kernel"`       // resolved pixel-kernel tier
	CPUFeatures   string                      `json:"cpu_features"` // probed host features
	Build         BuildSnapshot               `json:"build"`        // binary + runtime identity
	Frames        int64                       `json:"frames"`
	Rendering     int                         `json:"rendering"`
	Queued        int64                       `json:"queued"`
	Panics        int64                       `json:"frame_panics"`
	Canceled      int64                       `json:"frames_canceled"`
	Stalls        int64                       `json:"watchdog_stalls"`
	Replaced      int64                       `json:"renderers_replaced"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Cache         volcache.Stats              `json:"cache"`
	CacheTenants  []TenantCacheStats          `json:"cache_tenants"` // per-volume cache traffic
	SLO           []slo.Status                `json:"slo"`           // objective evaluations, worst first
	Phases        perf.CumulativeSnapshot     `json:"phases"`
	// Histograms are the sparse cross-process forms of the latency
	// histograms the gateway's fleet aggregator merges: every backend
	// shares the same bucket boundaries, so fleet-level quantiles from
	// the merged buckets are exact (within the bucket scheme's error).
	Histograms map[string]telemetry.WireSnapshot `json:"histograms,omitempty"`
}

// TenantCacheStats is one volume's cache traffic, joined with its
// registered name (empty for volumes the cache saw but the server no
// longer knows, e.g. the overflow pseudo-tenant).
type TenantCacheStats struct {
	Name string `json:"name,omitempty"`
	volcache.TenantStats
}

func (s *Server) cacheTenants() []TenantCacheStats {
	tens := s.cache.Tenants()
	out := make([]TenantCacheStats, len(tens))
	s.mu.Lock()
	for i, ts := range tens {
		out[i] = TenantCacheStats{Name: s.volKeys[ts.Volume], TenantStats: ts}
	}
	s.mu.Unlock()
	return out
}

func (s *Server) metricsSnapshot() MetricsSnapshot {
	return MetricsSnapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Kernel:        cpudispatch.Resolve(cpudispatch.Kernel(s.cfg.Kernel)).String(),
		CPUFeatures:   shearwarp.CPUFeatures(),
		Build:         buildSnapshot(),
		Frames:        s.frames.Load(),
		Rendering:     len(s.sem),
		Queued:        s.waiting.Load(),
		Panics:        s.panics.Load(),
		Canceled:      s.cancels.Load(),
		Stalls:        s.stalls.Load(),
		Replaced:      s.replaced.Load(),
		Endpoints: map[string]EndpointSnapshot{
			"/render":  s.mRender.snapshot(),
			"/healthz": s.mHealth.snapshot(),
			"/metrics": s.mMetrics.snapshot(),
		},
		Cache:        s.cache.Snapshot(),
		CacheTenants: s.cacheTenants(),
		SLO:          s.sloStatuses(),
		Phases:       s.cum.Snapshot(),
		Histograms: map[string]telemetry.WireSnapshot{
			"render_seconds":         s.mRender.latency.Snapshot().Wire(),
			"admission_wait_seconds": s.tel.hQueue.Snapshot().Wire(),
			"cache_build_seconds":    s.tel.hBuild.Snapshot().Wire(),
		},
	}
}

// writeJSON writes v as indented JSON with an explicit Content-Type,
// logging (it is too late to re-status) any encode or write failure.
func writeJSON(w http.ResponseWriter, v any, logger *slog.Logger) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		logger.Warn("response encoding failed", "err", err)
	}
}

// handleMetrics is GET /metrics: per-endpoint counters, preprocessing
// cache counters, and the cumulative per-phase render-time totals.
// Content negotiation selects the representation: an Accept header
// naming text/plain (a Prometheus scraper) gets the text exposition
// format with the latency histograms' _bucket/_sum/_count series; every
// other request gets the JSON document, whose shape predates the
// histograms and stays byte-compatible with its consumers (quantiles
// live on /debug/latency).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if acceptsPromText(r.Header.Get("Accept")) {
		s.handlePromMetrics(w)
		return
	}
	writeJSON(w, s.metricsSnapshot(), s.tel.logger)
}

// acceptsPromText reports whether an Accept header asks for the
// Prometheus text format. Prometheus scrapers send text/plain with a
// version parameter (and openmetrics variants); a JSON-preferring or
// absent Accept keeps the JSON default.
func acceptsPromText(accept string) bool {
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}
