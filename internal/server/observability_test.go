package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shearwarp/internal/slo"
	"shearwarp/internal/telemetry/promtest"
)

// TestSLOAlertFlip wires a deliberately violated latency objective (no
// real render finishes in 1ns) next to a satisfiable availability
// objective and checks the violated one — and only it — flips its
// burn-rate alert on /debug/slo and in the Prometheus gauges.
func TestSLOAlertFlip(t *testing.T) {
	s := newTestServer(t, Config{
		Procs: 2, MaxConcurrent: 2,
		SLO: []slo.Objective{
			{Kind: slo.Latency, Endpoint: "/render", ThresholdNS: 1, Target: 0.99},
			{Kind: slo.Availability, Endpoint: "/render", Target: 0.99},
		},
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if code, _ := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15"); code != http.StatusOK {
			t.Fatalf("render %d failed", i)
		}
	}

	code, body := get(t, ts.Client(), ts.URL+"/debug/slo")
	if code != http.StatusOK {
		t.Fatalf("/debug/slo: status %d: %s", code, body)
	}
	var doc SLOSnapshot
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/slo: bad JSON: %v", err)
	}
	if len(doc.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2", len(doc.Objectives))
	}
	byName := map[string]slo.Status{}
	for _, st := range doc.Objectives {
		byName[st.Name] = st
	}
	lat := byName["latency@/render"]
	if !lat.Alerting || lat.Compliant || lat.BudgetRemaining >= 0 {
		t.Fatalf("violated latency objective not alerting: %+v", lat)
	}
	if lat.FastBurn < lat.BurnThreshold || lat.SlowBurn < lat.BurnThreshold {
		t.Fatalf("violated objective burn rates too low: %+v", lat)
	}
	avail := byName["availability@/render"]
	if avail.Alerting || !avail.Compliant {
		t.Fatalf("availability objective should be healthy: %+v", avail)
	}
	if doc.Alerting != 1 {
		t.Fatalf("alerting count = %d, want 1", doc.Alerting)
	}
	// Worst objective sorts first.
	if doc.Objectives[0].Name != "latency@/render" {
		t.Fatalf("alerting objective not sorted first: %v", doc.Objectives[0].Name)
	}

	// The same judgments appear as Prometheus gauges.
	_, prom := getWithAccept(t, ts.Client(), ts.URL+"/metrics", "text/plain")
	samples := promtest.Validate(t, string(prom))
	if samples[`shearwarpd_slo_alerting{slo="latency@/render"}`] != 1 {
		t.Fatal("prom: violated objective not alerting")
	}
	if samples[`shearwarpd_slo_alerting{slo="availability@/render"}`] != 0 {
		t.Fatal("prom: healthy objective alerting")
	}
	if v, ok := samples[`shearwarpd_slo_error_budget_remaining{slo="latency@/render"}`]; !ok || v >= 0 {
		t.Fatalf("prom: budget remaining = %g (present %v), want < 0", v, ok)
	}
	if samples[`shearwarpd_slo_fast_burn{slo="latency@/render"}`] < 2 {
		t.Fatal("prom: fast burn missing or too low")
	}

	// And in the JSON /metrics document.
	_, jbody := getWithAccept(t, ts.Client(), ts.URL+"/metrics", "application/json")
	var snap MetricsSnapshot
	if err := json.Unmarshal(jbody, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.SLO) != 2 {
		t.Fatalf("metrics JSON slo entries = %d, want 2", len(snap.SLO))
	}
}

// TestSLODisabled checks SLOInterval < 0 turns the engine off.
func TestSLODisabled(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2, SLOInterval: -1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _ := get(t, ts.Client(), ts.URL+"/debug/slo"); code != http.StatusNotFound {
		t.Fatalf("/debug/slo with engine disabled: status %d, want 404", code)
	}
}

// TestSLOUnknownEndpointSkipped: an objective naming an endpoint the
// server does not serve is dropped, not fatal.
func TestSLOUnknownEndpointSkipped(t *testing.T) {
	s := newTestServer(t, Config{
		Procs: 2, MaxConcurrent: 2,
		SLO: []slo.Objective{
			{Kind: slo.Availability, Endpoint: "/render", Target: 0.99},
			{Kind: slo.Availability, Endpoint: "/nope", Target: 0.99},
		},
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, body := get(t, ts.Client(), ts.URL+"/debug/slo")
	if code != http.StatusOK {
		t.Fatalf("/debug/slo: status %d", code)
	}
	var doc SLOSnapshot
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Objectives) != 1 || doc.Objectives[0].Endpoint != "/render" {
		t.Fatalf("objectives = %+v, want the /render one only", doc.Objectives)
	}
}

// TestExemplarLinksTrace: after renders, /debug/latency carries at
// least one exemplar whose request ID resolves to a retained span trace.
func TestExemplarLinksTrace(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if code, _ := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15"); code != http.StatusOK {
			t.Fatalf("render %d failed", i)
		}
	}

	code, body := get(t, ts.Client(), ts.URL+"/debug/latency")
	if code != http.StatusOK {
		t.Fatalf("/debug/latency: status %d", code)
	}
	var ls LatencySnapshot
	if err := json.Unmarshal(body, &ls); err != nil {
		t.Fatal(err)
	}
	if len(ls.RenderExemplars) == 0 {
		t.Fatal("no render exemplars after 3 renders")
	}
	ex := ls.RenderExemplars[0] // slowest first
	if ex.ReqID == 0 || ex.ValueMS <= 0 {
		t.Fatalf("degenerate exemplar: %+v", ex)
	}
	if !ex.TraceRetained || ex.TraceURL == "" {
		t.Fatalf("exemplar not linked to a retained trace: %+v", ex)
	}
	code, spans := get(t, ts.Client(), ts.URL+ex.TraceURL)
	if code != http.StatusOK {
		t.Fatalf("exemplar trace URL %s: status %d", ex.TraceURL, code)
	}
	if !strings.Contains(string(spans), fmt.Sprintf(`"pid": %d`, ex.ReqID)) &&
		!strings.Contains(string(spans), fmt.Sprintf(`"pid":%d`, ex.ReqID)) {
		t.Fatalf("trace export does not carry the exemplar's request ID %d", ex.ReqID)
	}
}

// TestDashSelfContained: the dashboard document must work with no
// network access beyond this server — every fetch relative, no absolute
// URLs anywhere (fonts, CDNs, analytics).
func TestDashSelfContained(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := getWithAccept(t, ts.Client(), ts.URL+"/debug/dash", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/dash: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q, want text/html", ct)
	}
	doc := string(body)
	for _, banned := range []string{"http://", "https://", "//cdn", "<link", "src="} {
		if strings.Contains(doc, banned) {
			t.Fatalf("dashboard is not self-contained: found %q", banned)
		}
	}
	for _, want := range []string{"<html", "/metrics", "/debug/slo", "/debug/latency", "shearwarpd"} {
		if !strings.Contains(doc, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
}

// TestProfileEndpoint: /debug/profile returns a pprof CPU profile
// (gzip) and enforces single-flight.
func TestProfileEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := getWithAccept(t, ts.Client(), ts.URL+"/debug/profile?seconds=0.1", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/profile: status %d: %s", resp.StatusCode, body)
	}
	if len(body) < 2 || body[0] != 0x1f || body[1] != 0x8b {
		t.Fatalf("profile body is not gzip (pprof) data; first bytes % x", body[:min(len(body), 4)])
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Busy guard: a concurrent capture answers 409.
	s.profiling.Store(true)
	if code, _ := get(t, ts.Client(), ts.URL+"/debug/profile?seconds=0.1"); code != http.StatusConflict {
		t.Fatalf("concurrent capture: status %d, want 409", code)
	}
	s.profiling.Store(false)

	if code, _ := get(t, ts.Client(), ts.URL+"/debug/profile?seconds=-3"); code != http.StatusBadRequest {
		t.Fatal("negative seconds accepted")
	}
}

// TestProfileDuringRender: during=render delays the capture until a
// frame holds an admission slot, so the profile overlaps render work.
func TestProfileDuringRender(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2})
	defer s.Close()
	s.renderHook = func() { time.Sleep(300 * time.Millisecond) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	renderDone := make(chan struct{})
	go func() {
		defer close(renderDone)
		get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15")
	}()
	resp, _ := getWithAccept(t, ts.Client(), ts.URL+"/debug/profile?seconds=0.05&during=render", "")
	<-renderDone
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Shearwarp-Render-Overlap"); got != "in-flight" {
		t.Fatalf("X-Shearwarp-Render-Overlap = %q, want in-flight", got)
	}
}

// TestBuildInfoReported: the build/runtime identity appears in both
// /metrics representations.
func TestBuildInfoReported(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := getWithAccept(t, ts.Client(), ts.URL+"/metrics", "application/json")
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	b := snap.Build
	if b.GoVersion == "" || !strings.HasPrefix(b.GoVersion, "go") {
		t.Fatalf("build.go_version = %q", b.GoVersion)
	}
	if b.GOMAXPROCS < 1 || b.NumCPU < 1 || b.Goroutines < 1 {
		t.Fatalf("implausible runtime gauges: %+v", b)
	}
	if b.OS == "" || b.Arch == "" || b.Version == "" {
		t.Fatalf("missing build identity: %+v", b)
	}

	_, prom := getWithAccept(t, ts.Client(), ts.URL+"/metrics", "text/plain")
	samples := promtest.Validate(t, string(prom))
	var sawInfo bool
	for k := range samples {
		if strings.HasPrefix(k, "shearwarpd_build_info{") &&
			strings.Contains(k, `go_version="`+b.GoVersion+`"`) {
			sawInfo = true
		}
	}
	if !sawInfo {
		t.Fatal("prom exposition missing shearwarpd_build_info with go_version label")
	}
	if samples["shearwarpd_goroutines"] < 1 || samples["shearwarpd_gomaxprocs"] < 1 {
		t.Fatal("prom exposition missing runtime gauges")
	}
}

// TestHealthzVolumeNames: /healthz lists registered volumes for client
// auto-discovery (the load generator uses this).
func TestHealthzVolumeNames(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.Client(), ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: status %d", code)
	}
	var doc struct {
		VolumeNames []string `json:"volume_names"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.VolumeNames) != 1 || doc.VolumeNames[0] != "mri" {
		t.Fatalf("volume_names = %v, want [mri]", doc.VolumeNames)
	}
}

// TestCacheTenantStatsReported: per-volume cache traffic reaches the
// JSON document joined with the registered name, and the prom series.
func TestCacheTenantStatsReported(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		if code, _ := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15"); code != http.StatusOK {
			t.Fatalf("render %d failed", i)
		}
	}

	_, body := getWithAccept(t, ts.Client(), ts.URL+"/metrics", "application/json")
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.CacheTenants) == 0 {
		t.Fatal("no cache tenants after renders")
	}
	var mri *TenantCacheStats
	for i := range snap.CacheTenants {
		if snap.CacheTenants[i].Name == "mri" {
			mri = &snap.CacheTenants[i]
		}
	}
	if mri == nil {
		t.Fatalf("no tenant joined to name mri: %+v", snap.CacheTenants)
	}
	if mri.Misses == 0 || mri.Builds == 0 || mri.BuildNS <= 0 {
		t.Fatalf("tenant build accounting empty: %+v", mri)
	}

	_, prom := getWithAccept(t, ts.Client(), ts.URL+"/metrics", "text/plain")
	samples := promtest.Validate(t, string(prom))
	if samples[`shearwarpd_cache_tenant_misses_total{tenant="mri"}`] < 1 {
		t.Fatal("prom exposition missing per-tenant cache series")
	}
}

// TestDebugContentTypes pins the explicit Content-Type (with charset)
// on every JSON debug endpoint.
func TestDebugContentTypes(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15"); code != http.StatusOK {
		t.Fatal("render failed")
	}
	for _, path := range []string{"/debug/spans", "/debug/latency", "/debug/slo"} {
		resp, _ := getWithAccept(t, ts.Client(), ts.URL+path, "")
		if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Fatalf("%s: Content-Type = %q, want application/json; charset=utf-8", path, ct)
		}
	}
}
