package server

import (
	"net/http"
	"sync/atomic"

	"shearwarp/internal/telemetry"
)

// endpointMetrics counts one endpoint's traffic. All fields are atomics:
// the handlers update them concurrently and /metrics snapshots them
// without stopping the world.
type endpointMetrics struct {
	requests  atomic.Int64 // completed requests, any status
	errors    atomic.Int64 // responses with status >= 400
	srvErrors atomic.Int64 // responses with status >= 500 (the SLO-relevant failures)
	rejected  atomic.Int64 // admission rejections (503 queue full / queue timeout)
	deadlines atomic.Int64 // deadline expiries (504)
	inFlight  atomic.Int64
	nanos     atomic.Int64 // summed wall time of completed requests
	// latency is the endpoint's request-duration histogram, feeding the
	// Prometheus exposition and /debug/latency. Set once in New (lock-
	// free recording needs no further synchronization).
	latency *telemetry.Histogram
}

// EndpointSnapshot is the marshal-friendly view of one endpoint's
// counters.
type EndpointSnapshot struct {
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	ServerErrors int64   `json:"server_errors"`
	Rejected     int64   `json:"rejected"`
	Deadlines    int64   `json:"deadlines"`
	InFlight     int64   `json:"in_flight"`
	TotalSecs    float64 `json:"total_seconds"`
	MeanMillis   float64 `json:"mean_ms"`
	ErrorsFrac   float64 `json:"error_frac"`
}

func (m *endpointMetrics) snapshot() EndpointSnapshot {
	req := m.requests.Load()
	errs := m.errors.Load()
	ns := m.nanos.Load()
	s := EndpointSnapshot{
		Requests:     req,
		Errors:       errs,
		ServerErrors: m.srvErrors.Load(),
		Rejected:     m.rejected.Load(),
		Deadlines:    m.deadlines.Load(),
		InFlight:     m.inFlight.Load(),
		TotalSecs:    float64(ns) / 1e9,
	}
	if req > 0 {
		s.MeanMillis = float64(ns) / 1e6 / float64(req)
		s.ErrorsFrac = float64(errs) / float64(req)
	}
	return s
}

// statusWriter captures the response status for the metrics middleware.
// exemplarID, when set by a handler (setExemplarID), tags the endpoint's
// latency observation with the request's trace identity so the
// histogram can retain it as an exemplar.
type statusWriter struct {
	http.ResponseWriter
	status     int
	exemplarID uint64
}

// setExemplarID tags the in-flight request's latency observation with a
// request/trace ID. No-op when w is not the metrics middleware's writer
// (embedded servers wrapping the handler some other way).
func setExemplarID(w http.ResponseWriter, id uint64) {
	if sw, ok := w.(*statusWriter); ok {
		sw.exemplarID = id
	}
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}
