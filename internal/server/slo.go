package server

import (
	"net/http"
	"time"

	"shearwarp/internal/slo"
)

// SLO wiring: the server feeds the passive engine in internal/slo from
// the counters the endpoints already maintain, so objectives cost the
// request path nothing. Sources:
//
//   - latency objectives read the endpoint's latency histogram — good is
//     the cumulative count at or under the threshold, total the count;
//   - availability objectives read the endpoint's request counters —
//     good is requests minus 5xx responses (client-caused 4xx/499 do
//     not spend the budget).
//
// Sampling is both scrape-driven (every /debug/slo and /metrics read
// ticks the engine, so tests and dashboards see fresh windows) and
// backed by a ticker (Config.SLOInterval) so burn history exists even
// when nothing scrapes during an outage.

// setupSLO builds the engine from Config.SLO (default slo.DefaultSpec).
// Objectives naming endpoints the server does not serve are skipped
// with a log line; an engine-level failure (duplicate names) disables
// the engine rather than the server.
func (s *Server) setupSLO() {
	if s.cfg.SLOInterval < 0 {
		return
	}
	objs := s.cfg.SLO
	if objs == nil {
		objs, _ = slo.Parse(slo.DefaultSpec)
	}
	kept := make([]slo.Objective, 0, len(objs))
	srcs := make([]slo.Source, 0, len(objs))
	for _, o := range objs {
		src := s.sloSource(o)
		if src == nil {
			s.tel.logger.Error("slo objective names an unserved endpoint; skipped",
				"name", o.Name, "endpoint", o.Endpoint)
			continue
		}
		kept = append(kept, o)
		srcs = append(srcs, src)
	}
	eng, err := slo.New(kept, srcs, nil)
	if err != nil {
		s.tel.logger.Error("slo engine disabled", "err", err)
		return
	}
	s.slo = eng
	s.slo.Tick() // anchor sample: the first scrape already has a window base
}

// sloSource maps one objective onto the endpoint's live counters, or
// nil when the endpoint (or kind) is unknown.
func (s *Server) sloSource(o slo.Objective) slo.Source {
	m := s.endpointCounters(o.Endpoint)
	if m == nil {
		return nil
	}
	switch o.Kind {
	case slo.Latency:
		h, thr := m.latency, o.ThresholdNS
		return func() (good, total int64) {
			snap := h.Snapshot()
			return snap.CumulativeLE(thr), snap.Count
		}
	case slo.Availability:
		return func() (good, total int64) {
			total = m.requests.Load()
			return total - m.srvErrors.Load(), total
		}
	}
	return nil
}

// sloLoop is the background sampling ticker, stopped by Close.
func (s *Server) sloLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.slo.Tick()
		case <-s.sloStop:
			return
		}
	}
}

// sloStatuses samples and evaluates every objective, worst first. Nil
// when the engine is disabled.
func (s *Server) sloStatuses() []slo.Status {
	if s.slo == nil {
		return nil
	}
	s.slo.Tick()
	sts := s.slo.Status()
	slo.SortStatuses(sts)
	return sts
}

// SLOSnapshot is the /debug/slo document.
type SLOSnapshot struct {
	Alerting   int          `json:"alerting"` // objectives currently burning past threshold
	Objectives []slo.Status `json:"objectives"`
}

// handleSLO is GET /debug/slo: every objective's compliance, error
// budget and burn-rate alert state as JSON.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.slo == nil {
		httpError(w, http.StatusNotFound, "slo engine disabled")
		return
	}
	sts := s.sloStatuses()
	writeJSON(w, SLOSnapshot{Alerting: slo.AlertingCount(sts), Objectives: sts}, s.tel.logger)
}
