package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"shearwarp/internal/telemetry"
	"shearwarp/internal/telemetry/promtest"
)

// getWithAccept is get with an Accept header.
func getWithAccept(t *testing.T, client *http.Client, url, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestMetricsContentNegotiation checks that /metrics stays JSON by
// default — with the exact document shape pre-telemetry consumers parse —
// and serves the Prometheus text exposition under Accept: text/plain.
func TestMetricsContentNegotiation(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2, CollectStats: true})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15"); code != http.StatusOK {
		t.Fatalf("render: status %d", code)
	}

	// Default (and explicitly JSON-preferring) requests get the JSON
	// document with exactly the historical top-level keys — telemetry
	// must not have leaked new fields into it.
	for _, accept := range []string{"", "application/json", "*/*"} {
		resp, body := getWithAccept(t, ts.Client(), ts.URL+"/metrics", accept)
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("Accept %q: Content-Type = %q, want application/json", accept, ct)
		}
		var doc map[string]json.RawMessage
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("Accept %q: bad JSON: %v", accept, err)
		}
		want := []string{"uptime_seconds", "kernel", "cpu_features", "build", "frames",
			"rendering", "queued",
			"frame_panics", "frames_canceled", "watchdog_stalls", "renderers_replaced",
			"endpoints", "cache", "cache_tenants", "slo", "phases", "histograms"}
		if len(doc) != len(want) {
			t.Fatalf("JSON document has %d top-level keys, want %d: %v", len(doc), len(want), keys(doc))
		}
		for _, k := range want {
			if _, ok := doc[k]; !ok {
				t.Fatalf("JSON document missing key %q; has %v", k, keys(doc))
			}
		}
	}

	// Prometheus scrapes (Accept: text/plain) get a parseable 0.0.4
	// exposition with the counters and histograms.
	resp, body := getWithAccept(t, ts.Client(), ts.URL+"/metrics", "text/plain")
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, telemetry.PromContentType)
	}
	samples := promtest.Validate(t, string(body))
	if samples["shearwarpd_frames_total"] < 1 {
		t.Fatalf("shearwarpd_frames_total = %g, want >= 1", samples["shearwarpd_frames_total"])
	}
	if samples[`shearwarpd_requests_total{path="/render"}`] < 1 {
		t.Fatal("missing /render request counter")
	}
	if samples[`shearwarpd_request_duration_seconds_count{path="/render"}`] < 1 {
		t.Fatal("missing /render latency histogram")
	}
	if samples[`shearwarpd_phase_seconds_count{phase="warp",mode="composite"}`] < 1 {
		t.Fatal("missing warp phase histogram observations")
	}
	if samples["shearwarpd_admission_wait_seconds_count"] < 1 {
		t.Fatal("missing admission wait histogram observations")
	}
	if samples["shearwarpd_cache_build_seconds_count"] < 1 {
		t.Fatal("missing cache build histogram observations")
	}

	// OpenMetrics-style Accept headers also negotiate to text.
	resp, _ = getWithAccept(t, ts.Client(), ts.URL+"/metrics", "application/openmetrics-text; version=1.0.0")
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Fatalf("openmetrics Accept: Content-Type = %q", ct)
	}
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestDebugSpans renders through the service and checks /debug/spans
// exports loadable Chrome trace-event JSON carrying the per-worker
// composite and warp spans, plus the timeline and single-trace views.
func TestDebugSpans(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2, CollectStats: true})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		url := fmt.Sprintf("%s/render?volume=mri&yaw=%d&pitch=15&alg=new", ts.URL, 30+5*i)
		if code, _ := get(t, ts.Client(), url); code != http.StatusOK {
			t.Fatalf("render %d: status %d", i, code)
		}
	}

	code, body := get(t, ts.Client(), ts.URL+"/debug/spans")
	if code != http.StatusOK {
		t.Fatalf("/debug/spans: status %d: %s", code, body)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  uint64 `json:"pid"`
			Tid  int    `json:"tid"`
			Dur  float64
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/spans: not valid trace JSON: %v", err)
	}
	byName := map[string]int{}
	workers := map[int]bool{}
	var firstID uint64
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		byName[ev.Name]++
		if ev.Name == "composite-own" || ev.Name == "warp" {
			workers[ev.Tid] = true
		}
		if firstID == 0 {
			firstID = ev.Pid
		}
	}
	for _, want := range []string{"admission", "setup", "composite-own", "warp"} {
		if byName[want] == 0 {
			t.Fatalf("no %q spans in export; have %v", want, byName)
		}
	}
	// Both workers' lanes must appear (tid = worker + 1).
	if !workers[1] || !workers[2] {
		t.Fatalf("expected composite/warp spans on both worker lanes, got %v", workers)
	}

	// ?id=N narrows to one trace.
	code, body = get(t, ts.Client(), fmt.Sprintf("%s/debug/spans?id=%d", ts.URL, firstID))
	if code != http.StatusOK {
		t.Fatalf("?id=%d: status %d: %s", firstID, code, body)
	}
	code, _ = get(t, ts.Client(), ts.URL+"/debug/spans?id=999999")
	if code != http.StatusNotFound {
		t.Fatalf("?id=999999: status %d, want 404", code)
	}
	code, _ = get(t, ts.Client(), ts.URL+"/debug/spans?id=nope")
	if code != http.StatusBadRequest {
		t.Fatalf("?id=nope: status %d, want 400", code)
	}

	// The timeline view renders the per-worker busy/sync bars.
	code, body = get(t, ts.Client(), ts.URL+"/debug/spans?view=timeline")
	if code != http.StatusOK {
		t.Fatalf("timeline: status %d", code)
	}
	if !strings.Contains(string(body), "bars: B busy, S sync, . imbalance") ||
		!strings.Contains(string(body), "busy(ms)") {
		t.Fatalf("timeline output missing worker bars:\n%s", body)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output
// written from both the handler and its render goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDebugSpansDisabled checks TraceRing < 0 turns /debug/spans off.
func TestDebugSpansDisabled(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2, TraceRing: -1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15"); code != http.StatusOK {
		t.Fatal("render failed with tracing disabled")
	}
	if code, _ := get(t, ts.Client(), ts.URL+"/debug/spans"); code != http.StatusNotFound {
		t.Fatalf("/debug/spans with tracing disabled: status %d, want 404", code)
	}
}

// TestDebugLatency checks the quantile digest document.
func TestDebugLatency(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 2, CollectStats: true})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		if code, _ := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15"); code != http.StatusOK {
			t.Fatalf("render %d failed", i)
		}
	}

	code, body := get(t, ts.Client(), ts.URL+"/debug/latency")
	if code != http.StatusOK {
		t.Fatalf("/debug/latency: status %d", code)
	}
	var ls LatencySnapshot
	if err := json.Unmarshal(body, &ls); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	r := ls.Endpoints["/render"]
	if r.Count != 4 {
		t.Fatalf("render latency count = %d, want 4", r.Count)
	}
	if r.P50MS <= 0 || r.P99MS < r.P50MS || r.MaxMS < r.P99MS {
		t.Fatalf("implausible quantiles: %+v", r)
	}
	if ls.Phases["warp"].Count < 1 {
		t.Fatalf("no warp phase observations: %+v", ls.Phases)
	}
	if ls.AdmissionWait.Count < 4 {
		t.Fatalf("admission wait count = %d, want >= 4", ls.AdmissionWait.Count)
	}
}

// TestStructuredLogging checks the request path emits correlated JSON
// log records carrying the request ID.
func TestStructuredLogging(t *testing.T) {
	var buf syncBuffer
	s := newTestServer(t, Config{
		Procs: 2, MaxConcurrent: 2,
		Logger: telemetry.NewLogger(&buf, "json", -4), // -4 = slog.LevelDebug
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15"); code != http.StatusOK {
		t.Fatal("render failed")
	}

	var sawComplete, sawBuild bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		switch rec["msg"] {
		case "render complete":
			sawComplete = true
			if id, _ := rec["req"].(float64); id < 1 {
				t.Fatalf("render complete without request ID: %v", rec)
			}
			if rec["volume"] != "mri" {
				t.Fatalf("render complete without volume: %v", rec)
			}
		case "cache build":
			sawBuild = true
		}
	}
	if !sawComplete {
		t.Fatalf("no 'render complete' record in:\n%s", buf.String())
	}
	if !sawBuild {
		t.Fatalf("no 'cache build' record in:\n%s", buf.String())
	}
}
