package server

import "net/http"

// handleDash is GET /debug/dash: a single self-contained HTML ops
// dashboard. Everything — markup, styles, scripts — is inlined below
// and every data fetch is a relative path to this server's own JSON
// endpoints (/metrics, /debug/slo, /debug/latency), so the page works
// with no network access beyond the daemon itself (pinned by test: the
// document contains no absolute URLs).
func (s *Server) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashHTML))
}

const dashHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>shearwarpd ops</title>
<style>
  body { font: 13px/1.5 ui-monospace, monospace; margin: 0; background: #10141a; color: #cdd6e4; }
  header { padding: 10px 16px; background: #161c26; display: flex; gap: 24px; align-items: baseline; flex-wrap: wrap; }
  header h1 { font-size: 15px; margin: 0; color: #7fd1b9; }
  header span { color: #8b98ab; }
  header b { color: #cdd6e4; font-weight: 600; }
  main { padding: 12px 16px; display: grid; gap: 16px; max-width: 1100px; }
  section h2 { font-size: 12px; text-transform: uppercase; letter-spacing: .08em; color: #8b98ab; margin: 0 0 6px; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: right; padding: 2px 10px; border-bottom: 1px solid #222b38; white-space: nowrap; }
  th:first-child, td:first-child { text-align: left; }
  th { color: #8b98ab; font-weight: 500; }
  .cards { display: flex; gap: 12px; flex-wrap: wrap; }
  .card { background: #161c26; border-radius: 6px; padding: 10px 14px; min-width: 240px; }
  .card .name { color: #7fb3d1; }
  .card.alert { outline: 2px solid #d17f7f; }
  .card.alert .name { color: #d17f7f; }
  .bar { height: 8px; background: #222b38; border-radius: 4px; overflow: hidden; margin: 6px 0; }
  .bar i { display: block; height: 100%; background: #7fd1b9; }
  .bar i.low { background: #d1c97f; }
  .bar i.blown { background: #d17f7f; }
  .phase { display: flex; align-items: center; gap: 8px; }
  .phase .lbl { width: 120px; color: #8b98ab; }
  .phase .bar { flex: 1; margin: 2px 0; }
  .phase .val { width: 90px; }
  a { color: #7fb3d1; }
  #err { color: #d17f7f; }
</style>
</head>
<body>
<header>
  <h1>shearwarpd</h1>
  <span>uptime <b id="uptime">&ndash;</b></span>
  <span>kernel <b id="kernel">&ndash;</b></span>
  <span>build <b id="build">&ndash;</b></span>
  <span>frames <b id="frames">&ndash;</b></span>
  <span>rendering <b id="rendering">&ndash;</b> / queued <b id="queued">&ndash;</b></span>
  <span id="err"></span>
</header>
<main>
  <section><h2>Service objectives</h2><div class="cards" id="slo"></div></section>
  <section><h2>Endpoints</h2><table id="eps"></table></section>
  <section><h2>Cache tenants</h2><table id="tenants"></table></section>
  <section><h2>Render phases (cumulative worker time)</h2><div id="phases"></div></section>
  <section><h2>Slow-request exemplars</h2><table id="exemplars"></table></section>
</main>
<script>
"use strict";
function fmtDur(s) {
  if (s >= 3600) return (s / 3600).toFixed(1) + "h";
  if (s >= 60) return (s / 60).toFixed(1) + "m";
  return s.toFixed(0) + "s";
}
function fmtMS(v) { return v.toFixed(2) + "ms"; }
function fmtBytes(b) {
  if (b >= 1 << 20) return (b / (1 << 20)).toFixed(1) + "MiB";
  if (b >= 1 << 10) return (b / (1 << 10)).toFixed(1) + "KiB";
  return b + "B";
}
function esc(t) {
  return String(t).replace(/[&<>"]/g, function (c) {
    return { "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;" }[c];
  });
}
function row(cells, header) {
  var tag = header ? "th" : "td";
  return "<tr><" + tag + ">" +
    cells.map(esc).join("</" + tag + "><" + tag + ">") +
    "</" + tag + "></tr>";
}
function budgetBar(remaining) {
  var pct = Math.max(0, Math.min(1, remaining)) * 100;
  var cls = remaining <= 0 ? "blown" : remaining < 0.25 ? "low" : "";
  return '<div class="bar"><i class="' + cls + '" style="width:' + pct.toFixed(1) + '%"></i></div>';
}
function renderSLO(doc) {
  var el = document.getElementById("slo");
  if (!doc || !doc.objectives || !doc.objectives.length) {
    el.innerHTML = "<span>no objectives configured</span>";
    return;
  }
  el.innerHTML = doc.objectives.map(function (o) {
    return '<div class="card' + (o.alerting ? " alert" : "") + '">' +
      '<div class="name">' + esc(o.name) + (o.alerting ? " &#9888; ALERT" : "") + "</div>" +
      "<div>compliance " + (o.compliance * 100).toFixed(3) + "% (target " +
      (o.target * 100) + "%, " + o.good + "/" + o.total + ")</div>" +
      budgetBar(o.error_budget_remaining) +
      "<div>budget " + (o.error_budget_remaining * 100).toFixed(1) +
      "% &middot; burn fast " + o.fast_burn.toFixed(2) +
      " / slow " + o.slow_burn.toFixed(2) +
      " (&ge;" + o.burn_threshold + " alerts)</div></div>";
  }).join("");
}
function renderEndpoints(m, lat) {
  var paths = Object.keys(m.endpoints).sort();
  var html = row(["path", "requests", "errors", "5xx", "in-flight", "mean", "p99"], true);
  paths.forEach(function (p) {
    var e = m.endpoints[p];
    var q = lat && lat.endpoints && lat.endpoints[p];
    html += row([p, e.requests, e.errors, e.server_errors, e.in_flight,
      fmtMS(e.mean_ms), q ? fmtMS(q.p99_ms) : "-"]);
  });
  document.getElementById("eps").innerHTML = html;
}
function renderTenants(m) {
  var html = row(["tenant", "hits", "misses", "hit rate", "builds", "build time", "evictions", "bytes"], true);
  (m.cache_tenants || []).forEach(function (t) {
    var lookups = t.hits + t.misses;
    html += row([t.name || t.volume, t.hits, t.misses,
      lookups ? (100 * t.hits / lookups).toFixed(1) + "%" : "-",
      t.builds, (t.build_ns / 1e6).toFixed(1) + "ms", t.evictions, fmtBytes(t.bytes)]);
  });
  document.getElementById("tenants").innerHTML = html;
}
function renderPhases(m) {
  var ph = m.phases && m.phases.phase_ns ? m.phases.phase_ns : {};
  var names = Object.keys(ph).sort();
  var total = 0;
  names.forEach(function (n) { total += ph[n]; });
  document.getElementById("phases").innerHTML = names.map(function (n) {
    var pct = total ? 100 * ph[n] / total : 0;
    return '<div class="phase"><span class="lbl">' + esc(n) + "</span>" +
      '<div class="bar"><i style="width:' + pct.toFixed(1) + '%"></i></div>' +
      '<span class="val">' + (ph[n] / 1e6).toFixed(1) + "ms</span></div>";
  }).join("");
}
function renderExemplars(lat) {
  var exs = (lat && lat.render_exemplars) || [];
  var html = row(["latency", "request", "trace"], true);
  exs.forEach(function (x) {
    html += row([fmtMS(x.value_ms), "#" + x.req_id, ""]);
  });
  document.getElementById("exemplars").innerHTML = html;
  var links = document.getElementById("exemplars").querySelectorAll("td:last-child");
  exs.forEach(function (x, i) {
    if (x.trace_url) {
      links[i].innerHTML = '<a href="' + esc(x.trace_url) + '">spans</a>';
    } else {
      links[i].textContent = "aged out";
    }
  });
}
function refresh() {
  Promise.all([
    fetch("/metrics").then(function (r) { return r.json(); }),
    fetch("/debug/slo").then(function (r) { return r.ok ? r.json() : null; }),
    fetch("/debug/latency").then(function (r) { return r.json(); })
  ]).then(function (res) {
    var m = res[0], sloDoc = res[1], lat = res[2];
    document.getElementById("err").textContent = "";
    document.getElementById("uptime").textContent = fmtDur(m.uptime_seconds);
    document.getElementById("kernel").textContent = m.kernel;
    document.getElementById("build").textContent =
      m.build.go_version + " · " + m.build.gomaxprocs + "p · " + m.build.goroutines + "g";
    document.getElementById("frames").textContent = m.frames;
    document.getElementById("rendering").textContent = m.rendering;
    document.getElementById("queued").textContent = m.queued;
    renderSLO(sloDoc);
    renderEndpoints(m, lat);
    renderTenants(m);
    renderPhases(m);
    renderExemplars(lat);
  }).catch(function (e) {
    document.getElementById("err").textContent = "refresh failed: " + e;
  });
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
