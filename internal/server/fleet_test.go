package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"shearwarp/internal/faultinject"
)

// TestReadyzDrainFlip pins the fleet-routability contract: /readyz is
// 200 on a fresh server, flips 503 (with Retry-After) the moment
// BeginDrain is called — while /render and /healthz keep serving — and
// stays 503 after Close.
func TestReadyzDrainFlip(t *testing.T) {
	s := newTestServer(t, Config{Procs: 1, MaxConcurrent: 1, PoolSize: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if status, body := get(t, ts.Client(), ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("fresh /readyz = %d (%s), want 200", status, body)
	}

	s.BeginDrain()
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining /readyz missing Retry-After")
	}

	// Draining means "stop routing new traffic here", not "stop serving":
	// requests that still arrive must succeed until the listener closes.
	if status, body := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15"); status != http.StatusOK {
		t.Fatalf("/render while draining = %d (%s), want 200", status, body)
	}
	if status, _ := get(t, ts.Client(), ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200 (liveness is not routability)", status)
	}

	s.Close()
	if status, _ := get(t, ts.Client(), ts.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("closed /readyz = %d, want 503", status)
	}
}

// TestRetryAfterOnShed pins that every 503 shed path carries a
// Retry-After hint: queue-full, queue-timeout, and shutting-down.
func TestRetryAfterOnShed(t *testing.T) {
	s := newTestServer(t, Config{
		Procs:         1,
		MaxConcurrent: 1,
		PoolSize:      1,
		MaxQueue:      1,
		QueueTimeout:  100 * time.Millisecond,
	})
	block := make(chan struct{})
	s.renderHook = func() { <-block }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	results := make(chan *http.Response, 3)
	fire := func() {
		resp, err := ts.Client().Get(ts.URL + "/render?volume=mri&yaw=30&pitch=15")
		if err != nil {
			t.Error(err)
			results <- nil
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- resp
	}
	go fire() // takes the slot
	time.Sleep(50 * time.Millisecond)
	go fire() // queues, times out -> 503
	time.Sleep(20 * time.Millisecond)
	go fire() // queue full -> immediate 503

	for i := 0; i < 2; i++ {
		resp := <-results
		if resp == nil {
			t.Fatal("request failed")
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("shed response %d = %d, want 503", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("shed 503 missing Retry-After (response %d)", i)
		}
	}
	close(block)
	<-results

	s.Close()
	resp, err := ts.Client().Get(ts.URL + "/render?volume=mri&yaw=30&pitch=15")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shutting-down response = %d Retry-After=%q, want 503 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestBudgetHeaderCapsDeadline pins deadline propagation: a request
// carrying X-Shearwarp-Budget-Ms smaller than the server's own render
// timeout must give up when the budget lapses, not when the server-side
// default would.
func TestBudgetHeaderCapsDeadline(t *testing.T) {
	s := newTestServer(t, Config{
		Procs:         1,
		MaxConcurrent: 1,
		PoolSize:      1,
		MaxQueue:      2,
		QueueTimeout:  10 * time.Second,
		RenderTimeout: 10 * time.Second,
	})
	defer s.Close()
	block := make(chan struct{})
	s.renderHook = func() { <-block }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	go func() { // occupy the only slot
		resp, err := ts.Client().Get(ts.URL + "/render?volume=mri&yaw=30&pitch=15")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/render?volume=mri&yaw=31&pitch=15", nil)
	req.Header.Set(BudgetHeader, "150")
	t0 := time.Now()
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	elapsed := time.Since(t0)
	close(block)

	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("budget-capped response = %d, want 504", resp.StatusCode)
	}
	// Generous upper bound: the point is that it is the 150ms budget, not
	// the 10s queue/render timeouts, that fired.
	if elapsed > 5*time.Second {
		t.Fatalf("budget-capped request took %v; budget was not honored", elapsed)
	}
}

// TestBuildFailureTypedAndRetried pins the volcache build-failure path
// end to end at the HTTP surface: an injected build error answers 500
// with the build-failure error class (the gateway's non-retryable
// signal), the failed pool entry is NOT wedged, and the next request
// rebuilds and succeeds.
func TestBuildFailureTypedAndRetried(t *testing.T) {
	faults := faultinject.New(faultinject.Rule{
		Kind: faultinject.KindError, Site: "cachebuild", Worker: -1, Band: -1,
	})
	s := newTestServer(t, Config{
		Procs: 1, MaxConcurrent: 1, PoolSize: 1,
		Faults: faults,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/render?volume=mri&yaw=30&pitch=15")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected build failure = %d, want 500", resp.StatusCode)
	}
	if got := resp.Header.Get(ErrorClassHeader); got != ErrClassBuildFailure {
		t.Fatalf("error class = %q, want %q", got, ErrClassBuildFailure)
	}

	// The rule fired once; the entry must have been evicted so this
	// request retries the build instead of replaying the stale error.
	if status, body := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15"); status != http.StatusOK {
		t.Fatalf("request after failed build = %d (%s), want 200 (pool entry wedged?)", status, body)
	}
}

// TestFramePanicErrorClass pins that a recovered worker panic is typed
// frame-panic — the retryable signal, distinct from build failures.
func TestFramePanicErrorClass(t *testing.T) {
	faults := faultinject.New(faultinject.Rule{
		Kind: faultinject.KindPanic, Site: "scanline", Worker: -1, Band: -1,
	})
	s := newTestServer(t, Config{
		Procs: 1, MaxConcurrent: 1, PoolSize: 1,
		Faults: faults,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/render?volume=mri&yaw=30&pitch=15")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected panic = %d, want 500", resp.StatusCode)
	}
	if got := resp.Header.Get(ErrorClassHeader); got != ErrClassFramePanic {
		t.Fatalf("error class = %q, want %q", got, ErrClassFramePanic)
	}
	if status, _ := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15"); status != http.StatusOK {
		t.Fatalf("request after panic = %d, want 200 on the replaced renderer", status)
	}
}
