package server

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime/pprof"
	"strconv"
	"time"
)

// handleProfile is GET /debug/profile?seconds=S[&during=render]: an
// on-demand CPU profile, correlated with the requests that ran inside
// the capture window.
//
//   - seconds (default 2, clamped to [0.05, 30]) is the capture length;
//   - during=render delays the capture until a /render frame is in
//     flight (bounded wait), so the profile actually contains render
//     work instead of an idle event loop;
//   - the response headers name the request-ID range that overlapped
//     the window (X-Shearwarp-Render-Reqs) and, when the span tracer
//     retained one of them, the slowest such trace
//     (X-Shearwarp-Slow-Trace: /debug/spans?id=N) — the pprof hot stack
//     and the span timeline describe the same slow request.
//
// Captures are single-flight: a second request during a capture answers
// 409 instead of queueing (runtime/pprof allows one profiler anyway).
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	secs := 2.0
	if v := r.URL.Query().Get("seconds"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			httpError(w, http.StatusBadRequest, "bad seconds %q", v)
			return
		}
		secs = f
	}
	secs = min(max(secs, 0.05), 30)

	if !s.profiling.CompareAndSwap(false, true) {
		httpError(w, http.StatusConflict, "a profile capture is already running")
		return
	}
	defer s.profiling.Store(false)

	if r.URL.Query().Get("during") == "render" {
		overlap := "none"
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if len(s.sem) > 0 {
				overlap = "in-flight"
				break
			}
			select {
			case <-r.Context().Done():
				httpError(w, 499, "client went away")
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		w.Header().Set("X-Shearwarp-Render-Overlap", overlap)
	}

	firstReq := s.tel.reqSeq.Load() + 1
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Another subsystem (a test, an external pprof listener) owns the
		// one CPU profiler slot.
		httpError(w, http.StatusConflict, "cpu profiling unavailable: %v", err)
		return
	}
	select {
	case <-time.After(time.Duration(secs * float64(time.Second))):
	case <-r.Context().Done():
	}
	pprof.StopCPUProfile()
	lastReq := s.tel.reqSeq.Load()

	if lastReq >= firstReq {
		w.Header().Set("X-Shearwarp-Render-Reqs", fmt.Sprintf("%d-%d", firstReq, lastReq))
		if id := s.slowestTraceIn(firstReq, lastReq); id != 0 {
			w.Header().Set("X-Shearwarp-Slow-Trace", fmt.Sprintf("/debug/spans?id=%d", id))
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="shearwarpd-cpu.pprof"`)
	w.Write(buf.Bytes())
}

// slowestTraceIn returns the ID of the slowest retained trace whose
// request ID falls in [lo, hi], or 0.
func (s *Server) slowestTraceIn(lo, hi uint64) uint64 {
	if s.tel.tracer == nil {
		return 0
	}
	var id uint64
	var worst int64 = -1
	for _, tr := range s.tel.tracer.Traces() {
		if tr.ID >= lo && tr.ID <= hi && tr.DurNS > worst {
			worst, id = tr.DurNS, tr.ID
		}
	}
	return id
}
