package server

// Wire-protocol headers shared between shearwarpd and the gateway
// (internal/gateway imports these so the two sides cannot drift).
const (
	// BudgetHeader carries the client's remaining time budget in
	// milliseconds. The server caps its render deadline at the budget,
	// so a gateway retry never waits on a backend longer than the
	// client would.
	BudgetHeader = "X-Shearwarp-Budget-Ms"

	// GatewayRequestHeader carries the gateway's request ID; the
	// backend threads it through its structured logs (as "gwreq") so a
	// fleet-wide trace joins gateway and backend log lines.
	GatewayRequestHeader = "X-Shearwarp-Gateway-Request"

	// ErrorClassHeader types error responses so policy layers (the
	// gateway's retry loop) can distinguish deterministic failures,
	// which must not burn the retry budget, from transient ones.
	ErrorClassHeader = "X-Shearwarp-Error"

	// TraceHeader carries the fleet trace ID minted by the gateway.
	// The backend adopts it in place of its local request sequence so
	// FrameSpans, exemplars and log lines across every process a
	// request touched key on the same ID; it is echoed on responses so
	// clients learn the ID of a trace they can later stitch.
	TraceHeader = "X-Shearwarp-Trace"

	// AttemptHeader carries the gateway's attempt ordinal within a
	// trace (0 = first attempt, then hedges and retries in launch
	// order). The backend labels its trace with it so the stitcher can
	// match backend span sets to the gateway's attempt spans.
	AttemptHeader = "X-Shearwarp-Attempt"
)

// ErrorClassHeader values.
const (
	// ErrClassBuildFailure marks a preprocessing/pool build failure.
	// Rebuilding the same volume deterministically fails the same way
	// (the cache never stores failed builds), so retrying elsewhere
	// wastes budget: NON-retryable.
	ErrClassBuildFailure = "build-failure"

	// ErrClassFramePanic marks a frame lost to a recovered worker
	// panic. The renderer has been replaced; the next attempt runs on
	// a fresh renderer, so this is transient: retryable.
	ErrClassFramePanic = "frame-panic"

	// ErrClassWatchdogStall marks a frame cancelled by the watchdog.
	// The backend may be browned out; retrying on another backend is
	// the right move: retryable.
	ErrClassWatchdogStall = "watchdog-stall"
)
