package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"shearwarp"
	"shearwarp/internal/faultinject"
	"shearwarp/internal/vol"
)

// testVolume returns the small MRI phantom used throughout these tests.
func testVolume() (data []uint8, nx, ny, nz int) {
	v := vol.MRIBrain(32)
	return v.Data, v.Nx, v.Ny, v.Nz
}

// newTestServer builds a Server with the phantom registered and the given
// config (zero fields defaulted by New). Callers own Close.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	data, nx, ny, nz := testVolume()
	if err := s.RegisterVolume("mri", data, nx, ny, nz, shearwarp.TransferMRI); err != nil {
		t.Fatal(err)
	}
	return s
}

// directPPM renders a viewpoint with the library directly and returns the
// PPM bytes — the reference the service's responses must match exactly.
func directPPM(t *testing.T, alg shearwarp.Algorithm, procs int, yaw, pitch float64) []byte {
	t.Helper()
	data, nx, ny, nz := testVolume()
	r, err := shearwarp.NewRenderer(data, nx, ny, nz, shearwarp.Config{Algorithm: alg, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	im, _ := r.Render(yaw, pitch)
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func get(t *testing.T, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestConcurrentRequestsByteIdentical fires 32 concurrent request streams
// at the service and requires every response to be byte-identical to a
// direct library render of the same viewpoint — the service's pooling,
// caching and admission control must be invisible in the output. Run
// under -race this is also the service's data-race test.
func TestConcurrentRequestsByteIdentical(t *testing.T) {
	const (
		procs   = 2
		clients = 32
		perEach = 3
	)
	s := newTestServer(t, Config{
		Procs:         procs,
		MaxConcurrent: 8,
		MaxQueue:      clients * perEach,
		QueueTimeout:  30 * time.Second,
		RenderTimeout: 30 * time.Second,
		CollectStats:  true,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	views := [][2]float64{{30, 15}, {75, -10}, {10, 60}, {-40, 25}}
	want := make([][]byte, len(views))
	for i, v := range views {
		want[i] = directPPM(t, shearwarp.NewParallel, procs, v[0], v[1])
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*perEach)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perEach; r++ {
				vi := (c + r) % len(views)
				url := fmt.Sprintf("%s/render?volume=mri&yaw=%g&pitch=%g", ts.URL, views[vi][0], views[vi][1])
				status, body := get(t, ts.Client(), url)
				if status != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d: %s", c, status, body)
					return
				}
				if !bytes.Equal(body, want[vi]) {
					errs <- fmt.Errorf("client %d view %v: response differs from direct render (%d vs %d bytes)",
						c, views[vi], len(body), len(want[vi]))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := s.metricsSnapshot()
	if got := snap.Endpoints["/render"].Requests; got != clients*perEach {
		t.Errorf("render requests counter = %d, want %d", got, clients*perEach)
	}
	if snap.Frames != clients*perEach {
		t.Errorf("frames counter = %d, want %d", snap.Frames, clients*perEach)
	}
	if s.cfg.CollectStats && snap.Phases.Frames != clients*perEach {
		t.Errorf("perf cumulative frames = %d, want %d", snap.Phases.Frames, clients*perEach)
	}
}

// TestCacheAmortizesPreprocessing requires that classification and
// encoding happen once per (volume, transfer, axis) no matter how many
// renderers and pools consume them: building a second pool for the same
// volume (a different algorithm) must be served entirely from cache.
func TestCacheAmortizesPreprocessing(t *testing.T) {
	s := newTestServer(t, Config{Procs: 2, MaxConcurrent: 4, PoolSize: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	render := func(alg string) {
		status, body := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15&alg="+alg)
		if status != http.StatusOK {
			t.Fatalf("alg %s: status %d: %s", alg, status, body)
		}
	}
	render("new")
	first := s.CacheStats()
	if first.Builds == 0 {
		t.Fatal("no cache builds after the first render")
	}
	// One classification plus one encoding for the rendered axis.
	if first.Builds != 2 {
		t.Errorf("builds after first pool = %d, want 2 (classify + one axis encoding)", first.Builds)
	}

	// A second pool over the same volume: same classified volume, same
	// axis encoding — zero new builds, only hits.
	render("serial")
	second := s.CacheStats()
	if second.Builds != first.Builds {
		t.Errorf("second pool re-built preprocessing: builds %d -> %d", first.Builds, second.Builds)
	}
	if second.Hits <= first.Hits {
		t.Errorf("second pool did not hit the cache: hits %d -> %d", first.Hits, second.Hits)
	}

	// Repeated same-pool renders keep builds flat too.
	for i := 0; i < 3; i++ {
		render("new")
	}
	if got := s.CacheStats().Builds; got != second.Builds {
		t.Errorf("steady-state renders re-built preprocessing: builds %d -> %d", second.Builds, got)
	}
}

// TestCacheEvictionUnderTinyBudget runs the service with a cache budget
// far below one entry: every build evicts its predecessor, the eviction
// counter climbs, and responses stay byte-identical (eviction may cost
// rebuilds, never correctness).
func TestCacheEvictionUnderTinyBudget(t *testing.T) {
	const procs = 2
	s := newTestServer(t, Config{Procs: procs, MaxConcurrent: 2, PoolSize: 2, CacheBytes: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want := directPPM(t, shearwarp.NewParallel, procs, 30, 15)
	for i := 0; i < 2; i++ {
		status, body := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15")
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("request %d: response differs from direct render", i)
		}
	}
	st := s.CacheStats()
	if st.Evictions == 0 {
		t.Errorf("no evictions under a 1-byte budget: %+v", st)
	}
	if st.Bytes > st.Capacity && st.Entries > 1 {
		t.Errorf("cache holds %d entries / %d bytes over a %d budget", st.Entries, st.Bytes, st.Capacity)
	}
}

// TestAdmissionOverloadAndTimeouts drives the admission path: with one
// render slot artificially held, a queued request must 503 after the
// queue timeout, an over-queue request must 503 immediately, and a
// request whose deadline expires while queued must 504. Afterwards the
// server must drain completely — no goroutine leaks.
func TestAdmissionOverloadAndTimeouts(t *testing.T) {
	before := runtime.NumGoroutine()

	s := newTestServer(t, Config{
		Procs:         1,
		MaxConcurrent: 1,
		PoolSize:      1,
		MaxQueue:      1,
		QueueTimeout:  100 * time.Millisecond,
		RenderTimeout: 10 * time.Second,
	})
	block := make(chan struct{})
	s.renderHook = func() { <-block } // holds the admission slot until released
	ts := httptest.NewServer(s.Handler())

	type result struct {
		status int
		body   string
	}
	results := make(chan result, 3)
	fire := func() {
		resp, err := ts.Client().Get(ts.URL + "/render?volume=mri&yaw=30&pitch=15")
		if err != nil {
			results <- result{status: -1, body: err.Error()}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		results <- result{resp.StatusCode, string(body)}
	}

	go fire() // takes the slot, blocks in the hook
	time.Sleep(50 * time.Millisecond)
	go fire() // queues, then times out after 100ms -> 503
	time.Sleep(20 * time.Millisecond)
	go fire() // queue already full -> immediate 503

	r1 := <-results
	r2 := <-results
	if r1.status != http.StatusServiceUnavailable || r2.status != http.StatusServiceUnavailable {
		t.Errorf("overload responses = %d (%s) and %d (%s), want 503s", r1.status, r1.body, r2.status, r2.body)
	}
	close(block) // release the held request
	if r := <-results; r.status != http.StatusOK {
		t.Errorf("held request finished with %d (%s), want 200", r.status, r.body)
	}

	// Deadline expiry while the slot is held: the request is admitted to
	// the queue but its render deadline lapses first -> 504.
	block = make(chan struct{})
	s.renderHook = func() { <-block }
	s.cfg.QueueTimeout = 10 * time.Second
	s.cfg.RenderTimeout = 100 * time.Millisecond
	go fire()
	time.Sleep(50 * time.Millisecond)
	go fire()
	if r := <-results; r.status != http.StatusGatewayTimeout {
		t.Errorf("deadline-expired response = %d (%s), want 504", r.status, r.body)
	}
	close(block)
	if r := <-results; r.status != http.StatusGatewayTimeout && r.status != http.StatusOK {
		t.Errorf("held request finished with %d (%s)", r.status, r.body)
	}

	snap := s.metricsSnapshot()
	if snap.Endpoints["/render"].Rejected < 2 {
		t.Errorf("rejected counter = %d, want >= 2", snap.Endpoints["/render"].Rejected)
	}
	if snap.Endpoints["/render"].Deadlines < 1 {
		t.Errorf("deadline counter = %d, want >= 1", snap.Endpoints["/render"].Deadlines)
	}

	// Shut everything down and verify the goroutine count returns to the
	// baseline (plus slack for runtime background goroutines). No goleak
	// dependency: poll with a deadline.
	ts.CloseClientConnections()
	ts.Close()
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after shutdown\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBadRequestsAndHealth covers the plain HTTP surface: parameter
// validation, unknown volumes, health checks, and the metrics document.
func TestBadRequestsAndHealth(t *testing.T) {
	s := newTestServer(t, Config{Procs: 1, MaxConcurrent: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		url    string
		status int
	}{
		{"/render?volume=nope", http.StatusNotFound},
		{"/render?volume=mri&yaw=abc", http.StatusBadRequest},
		{"/render?volume=mri&pitch=", http.StatusOK}, // empty -> default
		{"/render?volume=mri&alg=bogus", http.StatusBadRequest},
		{"/render?volume=mri&transfer=bogus", http.StatusBadRequest},
		{"/render?volume=mri&format=gif", http.StatusBadRequest},
		{"/render?volume=mri&format=png", http.StatusOK},
		{"/healthz", http.StatusOK},
	} {
		status, body := get(t, ts.Client(), ts.URL+tc.url)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.url, status, tc.status, body)
		}
		if status >= 400 && !json.Valid(body) {
			t.Errorf("%s: error body is not JSON: %s", tc.url, body)
		}
	}

	status, body := get(t, ts.Client(), ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	if snap.Endpoints["/render"].Requests == 0 || snap.Endpoints["/render"].Errors == 0 {
		t.Errorf("metrics missed render traffic: %+v", snap.Endpoints["/render"])
	}
	if snap.Cache.Builds == 0 {
		t.Errorf("metrics missed cache builds: %+v", snap.Cache)
	}

	// Duplicate and invalid registrations.
	data, nx, ny, nz := testVolume()
	if err := s.RegisterVolume("mri", data, nx, ny, nz, shearwarp.TransferMRI); err == nil {
		t.Error("duplicate registration succeeded")
	}
	if err := s.RegisterVolume("bad", data, nx+1, ny, nz, shearwarp.TransferMRI); err == nil {
		t.Error("mis-shaped registration succeeded")
	}
	if err := s.RegisterVolume("", data, nx, ny, nz, shearwarp.TransferMRI); err == nil {
		t.Error("empty-name registration succeeded")
	}
}

// TestCloseRejectsNewRequests verifies graceful shutdown: after Close,
// /render answers 503 and /healthz flips to shutting-down.
func TestCloseRejectsNewRequests(t *testing.T) {
	s := newTestServer(t, Config{Procs: 1, MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if status, body := get(t, ts.Client(), ts.URL+"/render?volume=mri"); status != http.StatusOK {
		t.Fatalf("pre-close render: %d (%s)", status, body)
	}
	s.Close()
	if status, _ := get(t, ts.Client(), ts.URL+"/render?volume=mri"); status != http.StatusServiceUnavailable {
		t.Errorf("post-close render status %d, want 503", status)
	}
	if status, _ := get(t, ts.Client(), ts.URL+"/healthz"); status != http.StatusServiceUnavailable {
		t.Errorf("post-close healthz status %d, want 503", status)
	}
	s.Close() // idempotent
}

// TestWorkerPanicAnswers500AndServerSurvives injects a worker panic into
// the first frame: the request must answer 500 with a structured frame
// error, the panicked renderer must be replaced, and the next request —
// same pool, fresh renderer — must succeed byte-identically.
func TestWorkerPanicAnswers500AndServerSurvives(t *testing.T) {
	const procs = 2
	s := newTestServer(t, Config{
		Procs:         procs,
		Algorithm:     shearwarp.NewParallel,
		MaxConcurrent: 2,
		PoolSize:      1,
		Faults: faultinject.New(faultinject.Rule{
			Kind: faultinject.KindPanic, Site: "composite", Worker: -1, Band: -1,
		}),
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15")
	if status != http.StatusInternalServerError {
		t.Fatalf("panicked frame: status %d (%s), want 500", status, body)
	}
	if !bytes.Contains(body, []byte("frame failed")) {
		t.Errorf("panicked frame body %q does not name the frame failure", body)
	}

	// The injector fires once; the second request runs clean on the
	// replacement renderer and must match a direct render exactly.
	want := directPPM(t, shearwarp.NewParallel, procs, 30, 15)
	status, body = get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15")
	if status != http.StatusOK {
		t.Fatalf("frame after panic: status %d (%s), want 200", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Error("frame after panic differs from direct render")
	}

	snap := s.metricsSnapshot()
	if snap.Panics < 1 {
		t.Errorf("frame_panics = %d, want >= 1", snap.Panics)
	}
	if snap.Replaced < 1 {
		t.Errorf("renderers_replaced = %d, want >= 1", snap.Replaced)
	}
	if snap.Frames != 1 {
		t.Errorf("frames = %d, want 1 (the panicked frame must not count)", snap.Frames)
	}
	if status, _ := get(t, ts.Client(), ts.URL+"/healthz"); status != http.StatusOK {
		t.Errorf("healthz after panic: %d", status)
	}
}

// TestTimeoutReleasesSlotPromptly holds a worker mid-frame with a delay
// fault long past the render deadline: the request must answer 504 before
// the delay elapses (the handler does not wait out the frame), and the
// admission slot must come back as soon as the cancelled frame drains —
// well before an uncancelled frame could have finished.
func TestTimeoutReleasesSlotPromptly(t *testing.T) {
	const (
		procs = 2
		delay = 600 * time.Millisecond
	)
	s := newTestServer(t, Config{
		Procs:         procs,
		Algorithm:     shearwarp.NewParallel,
		MaxConcurrent: 1,
		PoolSize:      1,
		RenderTimeout: 60 * time.Millisecond,
		Faults: faultinject.New(faultinject.Rule{
			Kind: faultinject.KindDelay, Site: "scanline",
			Worker: -1, Band: -1, Hit: 2, Delay: delay,
		}),
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	status, body := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15")
	responded := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("stalled frame: status %d (%s), want 504", status, body)
	}
	if responded >= delay {
		t.Errorf("504 took %v — the handler waited out the stalled frame (delay %v)", responded, delay)
	}

	// The slot is owned by the render goroutine and freed when the abort
	// drains: the sleeping worker wakes after `delay`, every other worker
	// bails within a scanline. Poll the semaphore, bounding slot latency.
	slotDeadline := time.Now().Add(delay + 2*time.Second)
	for len(s.sem) != 0 {
		if time.Now().After(slotDeadline) {
			t.Fatalf("admission slot still held %v after the 504", time.Since(start))
		}
		time.Sleep(5 * time.Millisecond)
	}

	snap := s.metricsSnapshot()
	if snap.Canceled < 1 {
		t.Errorf("frames_canceled = %d, want >= 1", snap.Canceled)
	}
	if snap.Frames != 0 {
		t.Errorf("frames = %d, want 0 (the aborted frame must not count)", snap.Frames)
	}

	// With the slot back and the injector spent, the next frame renders.
	s.cfg.RenderTimeout = 30 * time.Second
	want := directPPM(t, shearwarp.NewParallel, procs, 30, 15)
	status, body = get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15")
	if status != http.StatusOK {
		t.Fatalf("frame after timeout: status %d (%s), want 200", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Error("frame after timeout differs from direct render")
	}
}

// TestWatchdogCancelsStuckFrame wedges a worker with a delay fault and a
// generous request deadline: the watchdog must fire first, cancel the
// frame, answer 500, and leave the server serving.
func TestWatchdogCancelsStuckFrame(t *testing.T) {
	const delay = 600 * time.Millisecond
	s := newTestServer(t, Config{
		Procs:           2,
		Algorithm:       shearwarp.NewParallel,
		MaxConcurrent:   1,
		PoolSize:        1,
		RenderTimeout:   30 * time.Second,
		WatchdogTimeout: 50 * time.Millisecond,
		Faults: faultinject.New(faultinject.Rule{
			Kind: faultinject.KindDelay, Site: "scanline",
			Worker: -1, Band: -1, Hit: 2, Delay: delay,
		}),
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	status, body := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15")
	if status != http.StatusInternalServerError || !bytes.Contains(body, []byte("watchdog")) {
		t.Fatalf("stuck frame: status %d (%s), want watchdog 500", status, body)
	}
	if d := time.Since(start); d >= delay {
		t.Errorf("watchdog response took %v, want < %v", d, delay)
	}
	if snap := s.metricsSnapshot(); snap.Stalls != 1 {
		t.Errorf("watchdog_stalls = %d, want 1", snap.Stalls)
	}

	if status, _ := get(t, ts.Client(), ts.URL+"/render?volume=mri&yaw=30&pitch=15"); status != http.StatusOK {
		t.Errorf("frame after watchdog: status %d, want 200", status)
	}
}
