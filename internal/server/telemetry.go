package server

import (
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"shearwarp"
	"shearwarp/internal/perf"
	"shearwarp/internal/rendermode"
	"shearwarp/internal/slo"
	"shearwarp/internal/telemetry"
	"shearwarp/internal/volcache"
)

// serverTelemetry is the request-level observability state of the
// service: latency histograms, the per-request span tracer, and the
// structured logger. It is always constructed (the histograms are a few
// KiB of atomics and recording is a handful of atomic adds per
// request); only the per-request span tracing can be disabled, through
// Config.TraceRing < 0, because it is the one part whose recording
// reaches into the render workers' frame loop.
type serverTelemetry struct {
	logger *slog.Logger
	tracer *telemetry.Tracer // nil when span tracing is disabled
	epoch  time.Time         // span/trace timestamps are measured from here
	reqSeq atomic.Uint64     // request-ID source (also the trace ID)

	hQueue *telemetry.Histogram // admission wait, including the zero-wait fast path
	hBuild *telemetry.Histogram // volcache builder invocations (classify / RLE-encode)
	// hPhase holds the per-worker per-frame phase duration histograms,
	// one set per render mode: a MIP frame (no early termination) and a
	// composite frame have different phase profiles, and folding them
	// into one histogram would hide both.
	hPhase [rendermode.Count][perf.NumPhases]*telemetry.Histogram

	// spanPool recycles FrameSpans recorders across requests so tracing
	// a request allocates only its retained Trace, not the 512-span
	// recording buffer.
	spanPool sync.Pool
}

func newServerTelemetry(cfg *Config) *serverTelemetry {
	t := &serverTelemetry{
		logger: cfg.Logger,
		epoch:  time.Now(),
		hQueue: telemetry.NewHistogram("shearwarpd_admission_wait_seconds",
			"Time requests spent waiting for an admission slot."),
		hBuild: telemetry.NewHistogram("shearwarpd_cache_build_seconds",
			"Wall time of preprocessing cache builds (classification, RLE encoding)."),
	}
	if t.logger == nil {
		t.logger = telemetry.DiscardLogger()
	}
	for m := range t.hPhase {
		for ph := perf.Phase(0); ph < perf.NumPhases; ph++ {
			t.hPhase[m][ph] = telemetry.NewHistogram("shearwarpd_phase_seconds",
				"Per-worker per-frame render phase durations.")
		}
	}
	if cfg.TraceRing >= 0 {
		t.tracer = telemetry.NewTracer(cfg.TraceRing, 0, 0)
	}
	t.spanPool.New = func() any { return telemetry.NewFrameSpans(t.epoch) }
	return t
}

// sinceEpochNS returns the instant t as nanoseconds past the telemetry
// epoch — the clock traces and spans share.
func (t *serverTelemetry) sinceEpochNS(at time.Time) int64 {
	return at.Sub(t.epoch).Nanoseconds()
}

// observePhases feeds one frame's per-worker phase durations into the
// frame's render mode's phase histograms: each worker's time in each
// phase is one observation, so the histograms answer "how long does a
// worker's warp phase take" across frames and workers, per mode.
func (t *serverTelemetry) observePhases(mode shearwarp.Mode, fb *perf.FrameBreakdown) {
	if fb == nil || int(mode) >= len(t.hPhase) {
		return
	}
	h := &t.hPhase[mode]
	for i := range fb.PerWorker {
		w := &fb.PerWorker[i]
		h[perf.PhaseClear].ObserveNS(w.ClearNS)
		h[perf.PhaseCompositeOwn].ObserveNS(w.CompositeOwnNS)
		h[perf.PhaseCompositeSteal].ObserveNS(w.CompositeStealNS)
		h[perf.PhaseWait].ObserveNS(w.WaitNS)
		h[perf.PhaseWarp].ObserveNS(w.WarpNS)
		h[perf.PhaseTotal].ObserveNS(w.TotalNS)
	}
}

// onCacheBuild is wired into volcache.Cache.OnBuild: every completed
// builder invocation lands in the build histogram and the log.
func (t *serverTelemetry) onCacheBuild(k volcache.Key, d time.Duration, err error) {
	t.hBuild.Observe(d)
	if err != nil {
		t.logger.Error("cache build failed",
			"volume", k.Volume, "transfer", k.Transfer, "axis", int(k.Axis),
			"duration_ms", float64(d)/1e6, "err", err)
		return
	}
	t.logger.Info("cache build",
		"volume", k.Volume, "transfer", k.Transfer, "axis", int(k.Axis),
		"duration_ms", float64(d)/1e6)
}

// reqTrace is one /render request's in-flight trace state, shared
// between the handler and its render goroutine. Exactly one of them
// finalizes (Adds) the trace; the owner field arbitrates:
//
//   - The handler, exiting early (watchdog, deadline, disconnect),
//     stores its HTTP status and CASes owner 0->1: the render goroutine
//     finalizes when the frame eventually drains.
//   - The render goroutine, done first, stashes the built trace and
//     CASes owner 0->2: the handler finalizes after writing (and
//     timing) the response body.
//   - Whoever loses the CAS observes the winner's state through the
//     atomic's happens-before edge and finalizes itself.
type reqTrace struct {
	tel     *serverTelemetry
	id      uint64
	attempt int
	label   string
	startNS int64
	spans   *telemetry.FrameSpans // pooled recorder attached to the renderer
	owner   atomic.Int32          // 0 = undecided, 1 = handler left, 2 = goroutine done
	status  atomic.Int32          // HTTP status stored by the handler on early exit
	tr      *telemetry.Trace      // built by the goroutine, published by the 0->2 CAS
}

// startTrace begins tracing one /render request; returns nil when span
// tracing is disabled. The recorder comes from the pool and goes back
// when the trace is built.
func (t *serverTelemetry) startTrace(id uint64, attempt int, label string, start time.Time) *reqTrace {
	if t.tracer == nil {
		return nil
	}
	fs := t.spanPool.Get().(*telemetry.FrameSpans)
	fs.Reset(t.epoch)
	return &reqTrace{
		tel:     t,
		id:      id,
		attempt: attempt,
		label:   label,
		startNS: t.sinceEpochNS(start),
		spans:   fs,
	}
}

// record adds one request-lane span. Nil-safe.
func (rt *reqTrace) record(name string, start time.Time, d time.Duration) {
	if rt == nil {
		return
	}
	rt.spans.Record(-1, name, telemetry.CatRequest, start, d)
}

// build converts the recorder's contents into a Trace and returns the
// recorder to the pool. Call once, after every recording worker is done.
func (rt *reqTrace) build(durNS int64) *telemetry.Trace {
	spans := rt.spans.Spans()
	tr := &telemetry.Trace{
		ID:      rt.id,
		Attempt: rt.attempt,
		Label:   rt.label,
		StartNS: rt.startNS,
		DurNS:   durNS,
		Dropped: rt.spans.Dropped(),
		Spans:   append(make([]telemetry.Span, 0, len(spans)), spans...),
	}
	rt.tel.spanPool.Put(rt.spans)
	rt.spans = nil
	return tr
}

// finish finalizes a trace the handler owned start to finish (rejection
// paths that never spawned a render goroutine). Nil-safe.
func (rt *reqTrace) finish(status int, now time.Time) {
	if rt == nil {
		return
	}
	tr := rt.build(rt.tel.sinceEpochNS(now) - rt.startNS)
	tr.Status = status
	rt.tel.tracer.Add(tr)
}

// handlerExits is called when the handler abandons the request while the
// render goroutine still runs (watchdog, deadline, disconnect): it
// leaves finalization to the goroutine, unless the goroutine got there
// first, in which case the handler finalizes. Nil-safe.
func (rt *reqTrace) handlerExits(status int, now time.Time) {
	if rt == nil {
		return
	}
	rt.status.Store(int32(status))
	if rt.owner.CompareAndSwap(0, 1) {
		return // the render goroutine finalizes when the frame drains
	}
	// The goroutine finished in the same instant (owner == 2): its trace
	// is published; finalize it here.
	tr := rt.tr
	tr.Status = status
	tr.DurNS = rt.tel.sinceEpochNS(now) - rt.startNS
	rt.tel.tracer.Add(tr)
}

// goroutineDone is called by the render goroutine after the frame
// drained and the worker spans were copied out. If the handler already
// left, the goroutine finalizes with the handler's status; otherwise the
// trace is published for the handler to finish after encoding. Nil-safe.
func (rt *reqTrace) goroutineDone(now time.Time) {
	if rt == nil {
		return
	}
	rt.tr = rt.build(rt.tel.sinceEpochNS(now) - rt.startNS)
	if rt.owner.CompareAndSwap(0, 2) {
		return // handler still active; it finalizes after the response
	}
	rt.tr.Status = int(rt.status.Load())
	rt.tel.tracer.Add(rt.tr)
}

// handlerFinishes finalizes on the handler's normal path: the render
// goroutine has published the trace (owner == 2), the response has been
// written, and the encode span is appended. Nil-safe.
func (rt *reqTrace) handlerFinishes(status int, encodeStart time.Time, encodeDur time.Duration, now time.Time) {
	if rt == nil {
		return
	}
	tr := rt.tr
	if tr == nil {
		return // defensive: goroutine result consumed without a publish
	}
	if encodeDur > 0 {
		tr.Spans = append(tr.Spans, telemetry.Span{
			Name: "encode", Cat: telemetry.CatRequest, Worker: -1,
			StartNS: rt.tel.sinceEpochNS(encodeStart), DurNS: int64(encodeDur),
		})
	}
	tr.Status = status
	tr.DurNS = rt.tel.sinceEpochNS(now) - rt.startNS
	rt.tel.tracer.Add(tr)
}

// handlePromMetrics writes the Prometheus text exposition of every
// counter and histogram the JSON snapshot carries, plus the latency
// histograms that exist only here (the JSON document stays byte-
// compatible with its pre-telemetry consumers, so quantiles live on
// /debug/latency instead).
func (s *Server) handlePromMetrics(w http.ResponseWriter) {
	snap := s.metricsSnapshot()
	w.Header().Set("Content-Type", telemetry.PromContentType)
	pw := telemetry.NewPromWriter(w)

	pw.Gauge("shearwarpd_uptime_seconds", "Seconds since the server started.", snap.UptimeSeconds)
	pw.Gauge("shearwarpd_build_info", "Build identity; the value is always 1.", 1,
		"version", snap.Build.Version, "commit", snap.Build.Commit,
		"go_version", snap.Build.GoVersion, "kernel", snap.Kernel)
	pw.Gauge("shearwarpd_gomaxprocs", "Scheduler parallelism (GOMAXPROCS).", float64(snap.Build.GOMAXPROCS))
	pw.Gauge("shearwarpd_goroutines", "Live goroutines.", float64(snap.Build.Goroutines))
	pw.Counter("shearwarpd_frames_total", "Successfully rendered frames.", float64(snap.Frames))
	pw.Gauge("shearwarpd_rendering", "Frames rendering right now.", float64(snap.Rendering))
	pw.Gauge("shearwarpd_queued", "Requests waiting for admission.", float64(snap.Queued))
	pw.Counter("shearwarpd_frame_panics_total", "Frames that failed with a recovered panic.", float64(snap.Panics))
	pw.Counter("shearwarpd_frames_canceled_total", "Frames aborted by deadline or disconnect.", float64(snap.Canceled))
	pw.Counter("shearwarpd_watchdog_stalls_total", "Frames cancelled by the watchdog.", float64(snap.Stalls))
	pw.Counter("shearwarpd_renderers_replaced_total", "Renderers discarded and rebuilt after a panic.", float64(snap.Replaced))

	// Per-endpoint counters: one metric name per counter, one series per
	// path, emitted in sorted path order so the exposition is stable.
	paths := make([]string, 0, len(snap.Endpoints))
	for p := range snap.Endpoints {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	emit := func(name, help string, v func(EndpointSnapshot) float64) {
		for _, p := range paths {
			pw.Counter(name, help, v(snap.Endpoints[p]), "path", p)
		}
	}
	emit("shearwarpd_requests_total", "Completed requests.",
		func(e EndpointSnapshot) float64 { return float64(e.Requests) })
	emit("shearwarpd_request_errors_total", "Responses with status >= 400.",
		func(e EndpointSnapshot) float64 { return float64(e.Errors) })
	emit("shearwarpd_request_server_errors_total", "Responses with status >= 500.",
		func(e EndpointSnapshot) float64 { return float64(e.ServerErrors) })
	emit("shearwarpd_requests_rejected_total", "Admission rejections (503).",
		func(e EndpointSnapshot) float64 { return float64(e.Rejected) })
	emit("shearwarpd_request_deadlines_total", "Deadline expiries (504).",
		func(e EndpointSnapshot) float64 { return float64(e.Deadlines) })
	for _, p := range paths {
		pw.Gauge("shearwarpd_requests_in_flight", "Requests in flight.",
			float64(snap.Endpoints[p].InFlight), "path", p)
	}
	for _, p := range paths {
		if h := s.endpointHist(p); h != nil {
			pw.Histogram("shearwarpd_request_duration_seconds",
				"End-to-end request latency.", h.Snapshot(), "path", p)
		}
	}

	pw.Counter("shearwarpd_cache_hits_total", "Preprocessing cache hits.", float64(snap.Cache.Hits))
	pw.Counter("shearwarpd_cache_misses_total", "Preprocessing cache misses.", float64(snap.Cache.Misses))
	pw.Counter("shearwarpd_cache_builds_total", "Completed cache builds.", float64(snap.Cache.Builds))
	pw.Counter("shearwarpd_cache_build_failures_total", "Failed cache builds.", float64(snap.Cache.Failures))
	pw.Counter("shearwarpd_cache_evictions_total", "Cache entries evicted.", float64(snap.Cache.Evictions))
	pw.Gauge("shearwarpd_cache_entries", "Cached entries.", float64(snap.Cache.Entries))
	pw.Gauge("shearwarpd_cache_bytes", "Accounted cache bytes.", float64(snap.Cache.Bytes))

	// Per-tenant cache traffic, labeled with the registered volume name
	// (or the raw fingerprint for tenants the server no longer knows).
	// Metric-major order: the exposition format wants each metric's
	// series contiguous under one HELP/TYPE block.
	tenantName := func(t TenantCacheStats) string {
		if t.Name != "" {
			return t.Name
		}
		return t.Volume
	}
	for _, t := range snap.CacheTenants {
		pw.Counter("shearwarpd_cache_tenant_hits_total", "Cache hits per volume.", float64(t.Hits), "tenant", tenantName(t))
	}
	for _, t := range snap.CacheTenants {
		pw.Counter("shearwarpd_cache_tenant_misses_total", "Cache misses per volume.", float64(t.Misses), "tenant", tenantName(t))
	}
	for _, t := range snap.CacheTenants {
		pw.Counter("shearwarpd_cache_tenant_evictions_total", "Cache evictions per volume.", float64(t.Evictions), "tenant", tenantName(t))
	}
	for _, t := range snap.CacheTenants {
		pw.Gauge("shearwarpd_cache_tenant_bytes", "Cached bytes per volume.", float64(t.Bytes), "tenant", tenantName(t))
	}

	// SLO gauges: one series per objective, mirroring /debug/slo.
	sloGauge := func(name, help string, v func(slo.Status) float64) {
		for _, st := range snap.SLO {
			pw.Gauge(name, help, v(st), "slo", st.Name)
		}
	}
	sloGauge("shearwarpd_slo_target", "Objective target good-fraction.",
		func(st slo.Status) float64 { return st.Target })
	sloGauge("shearwarpd_slo_compliance", "Good fraction over the budget window.",
		func(st slo.Status) float64 { return st.Compliance })
	sloGauge("shearwarpd_slo_error_budget_remaining", "Error budget left (1 = untouched, <0 = blown).",
		func(st slo.Status) float64 { return st.BudgetRemaining })
	sloGauge("shearwarpd_slo_fast_burn", "Burn rate over the fast alert window.",
		func(st slo.Status) float64 { return st.FastBurn })
	sloGauge("shearwarpd_slo_slow_burn", "Burn rate over the slow alert window.",
		func(st slo.Status) float64 { return st.SlowBurn })
	sloGauge("shearwarpd_slo_alerting", "1 while the objective's multi-window burn alert fires.",
		func(st slo.Status) float64 {
			if st.Alerting {
				return 1
			}
			return 0
		})

	// Cumulative per-phase totals (counters, nanoseconds summed across
	// workers and frames), then the per-frame phase histograms.
	phases := make([]string, 0, len(snap.Phases.PhaseNS))
	for ph := range snap.Phases.PhaseNS {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	for _, ph := range phases {
		pw.Counter("shearwarpd_phase_ns_total",
			"Cumulative phase time, summed across workers and frames.",
			float64(snap.Phases.PhaseNS[ph]), "phase", ph)
	}
	for m := rendermode.Mode(0); m < rendermode.Count; m++ {
		for ph := perf.Phase(0); ph < perf.NumPhases; ph++ {
			pw.Histogram("shearwarpd_phase_seconds",
				"Per-worker per-frame render phase durations.",
				s.tel.hPhase[m][ph].Snapshot(), "phase", ph.String(), "mode", m.String())
		}
	}

	pw.Histogram("shearwarpd_admission_wait_seconds",
		"Time requests spent waiting for an admission slot.", s.tel.hQueue.Snapshot())
	pw.Histogram("shearwarpd_cache_build_seconds",
		"Wall time of preprocessing cache builds.", s.tel.hBuild.Snapshot())

	if err := pw.Err(); err != nil {
		// Headers are long gone; all we can do is log the broken scrape.
		s.tel.logger.Warn("metrics exposition failed", "err", err)
	}
}

// endpointCounters maps a served path to its metrics block.
func (s *Server) endpointCounters(path string) *endpointMetrics {
	switch path {
	case "/render":
		return &s.mRender
	case "/healthz":
		return &s.mHealth
	case "/readyz":
		return &s.mReady
	case "/metrics":
		return &s.mMetrics
	case "/debug/spans":
		return &s.mSpans
	case "/debug/latency":
		return &s.mLatency
	case "/debug/slo":
		return &s.mSLO
	case "/debug/dash":
		return &s.mDash
	case "/debug/profile":
		return &s.mProfile
	}
	return nil
}

// endpointHist maps an exposition path to its latency histogram.
func (s *Server) endpointHist(path string) *telemetry.Histogram {
	if m := s.endpointCounters(path); m != nil {
		return m.latency
	}
	return nil
}

// LatencySnapshot is the /debug/latency document: quantile digests of
// every latency histogram, in milliseconds. scripts/bench.sh saves it
// verbatim as BENCH_latency.json.
type LatencySnapshot struct {
	Endpoints     map[string]telemetry.QuantileSummary `json:"endpoints"`
	AdmissionWait telemetry.QuantileSummary            `json:"admission_wait"`
	CacheBuild    telemetry.QuantileSummary            `json:"cache_build"`
	Phases        map[string]telemetry.QuantileSummary `json:"phases"`
	// RenderExemplars are the render histogram's retained slow-request
	// exemplars, slowest first: each links a latency region back to the
	// request that landed there and, while the span ring still holds it,
	// to that request's trace.
	RenderExemplars []ExemplarRef `json:"render_exemplars"`
}

// ExemplarRef is one exemplar joined with its trace's whereabouts.
type ExemplarRef struct {
	ValueMS       float64 `json:"value_ms"`
	ReqID         uint64  `json:"req_id"`
	TraceRetained bool    `json:"trace_retained"`
	TraceURL      string  `json:"trace_url,omitempty"`
}

// renderExemplars joins the render histogram's exemplars with the span
// tracer's retained traces.
func (s *Server) renderExemplars() []ExemplarRef {
	exs := s.mRender.latency.Exemplars()
	out := make([]ExemplarRef, 0, len(exs))
	for _, ex := range exs {
		ref := ExemplarRef{ValueMS: float64(ex.ValueNS) / 1e6, ReqID: ex.ReqID}
		if s.tel.tracer != nil && s.tel.tracer.Find(ex.ReqID) != nil {
			ref.TraceRetained = true
			ref.TraceURL = fmt.Sprintf("/debug/spans?id=%d", ex.ReqID)
		}
		out = append(out, ref)
	}
	return out
}

// latencySnapshot digests every histogram into quantile summaries.
func (s *Server) latencySnapshot() LatencySnapshot {
	ls := LatencySnapshot{
		Endpoints: map[string]telemetry.QuantileSummary{
			"/render":        s.mRender.latency.Snapshot().Summary(),
			"/healthz":       s.mHealth.latency.Snapshot().Summary(),
			"/metrics":       s.mMetrics.latency.Snapshot().Summary(),
			"/debug/spans":   s.mSpans.latency.Snapshot().Summary(),
			"/debug/latency": s.mLatency.latency.Snapshot().Summary(),
			"/debug/slo":     s.mSLO.latency.Snapshot().Summary(),
			"/debug/dash":    s.mDash.latency.Snapshot().Summary(),
			"/debug/profile": s.mProfile.latency.Snapshot().Summary(),
		},
		AdmissionWait:   s.tel.hQueue.Snapshot().Summary(),
		CacheBuild:      s.tel.hBuild.Snapshot().Summary(),
		Phases:          make(map[string]telemetry.QuantileSummary, int(rendermode.Count)*int(perf.NumPhases)),
		RenderExemplars: s.renderExemplars(),
	}
	// Composite keeps the bare phase names the document has always used;
	// the other modes qualify theirs as "phase@mode".
	for m := rendermode.Mode(0); m < rendermode.Count; m++ {
		for ph := perf.Phase(0); ph < perf.NumPhases; ph++ {
			key := ph.String()
			if m != rendermode.Composite {
				key += "@" + m.String()
			}
			ls.Phases[key] = s.tel.hPhase[m][ph].Snapshot().Summary()
		}
	}
	return ls
}

// handleSpans is GET /debug/spans: the retained request traces as Chrome
// trace-event JSON (loadable by chrome://tracing and ui.perfetto.dev).
// ?id=N restricts to one fleet trace ID — all retained attempts under
// that ID, since a backend can serve both the first try and a retry of
// one fleet request. ?format=raw returns the traces as plain JSON (the
// form the gateway's stitcher consumes); ?view=timeline renders the
// paper's Figure 5/6 per-worker busy/sync/imbalance bars as text.
// /debug/trace is an alias, so trace URLs recorded by loadgen resolve
// against a bare backend the same way they do against the gateway.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if s.tel.tracer == nil {
		httpError(w, http.StatusNotFound, "span tracing disabled")
		return
	}
	var traces []*telemetry.Trace
	if v := r.URL.Query().Get("id"); v != "" {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad id %q", v)
			return
		}
		traces = s.tel.tracer.FindAll(id)
		if len(traces) == 0 {
			httpError(w, http.StatusNotFound, "no retained trace with id %d", id)
			return
		}
	} else {
		traces = s.tel.tracer.Traces()
	}
	switch {
	case r.URL.Query().Get("view") == "timeline":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, tr := range traces {
			fmt.Fprintln(w, telemetry.Timeline(tr))
		}
	case r.URL.Query().Get("format") == "raw":
		writeJSON(w, traces, s.tel.logger)
	default:
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := telemetry.WriteChromeTrace(w, traces); err != nil {
			s.tel.logger.Warn("span export failed", "err", err)
		}
	}
}

// handleLatency is GET /debug/latency: the quantile digests as JSON.
func (s *Server) handleLatency(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.latencySnapshot(), s.tel.logger)
}
