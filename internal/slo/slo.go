// Package slo turns the render service's raw telemetry into judgments:
// declarative service-level objectives (latency and availability),
// evaluated continuously against the live counters, with multi-window
// burn rates and error-budget accounting in the style of the SRE
// workbook's alerting chapter.
//
// The engine is deliberately passive and clock-injectable: something
// else (the render service's ticker, or a test) calls Tick to sample
// the cumulative counters, and Status computes everything from the
// retained samples. That keeps the engine deterministic under test — a
// deliberately violated objective flips its alert on a fake clock — and
// keeps its cost off the request path entirely: requests touch only the
// counters they already touch; the engine reads them a few times a
// minute.
//
// Burn rate: an objective with target T has an error budget of (1-T).
// The burn rate over a window is the observed bad fraction divided by
// the budget — burn 1.0 spends the budget exactly at the rate the
// window allows, burn 10 spends it ten times too fast. An alert fires
// only when BOTH the fast and the slow window burn above the threshold:
// the slow window proves the problem is sustained (no paging on one
// slow request), the fast window makes the alert responsive and lets it
// reset quickly once the problem stops.
package slo

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind discriminates objective types.
type Kind string

const (
	// Latency objectives judge the fraction of requests at or under a
	// duration threshold (good = requests <= ThresholdNS).
	Latency Kind = "latency"
	// Availability objectives judge the fraction of requests that did
	// not fail server-side (good = requests without a 5xx response).
	Availability Kind = "availability"
)

// Objective is one declarative SLO. The zero values of the tuning
// fields get defaults from normalize.
type Objective struct {
	Name     string `json:"name"`
	Kind     Kind   `json:"kind"`
	Endpoint string `json:"endpoint"`
	// ThresholdNS is the latency cut-off for Latency objectives.
	ThresholdNS int64 `json:"threshold_ns,omitempty"`
	// Target is the required good fraction, e.g. 0.99 (must be in (0,1)).
	Target float64 `json:"target"`
	// Window is the error-budget window the compliance and
	// budget-remaining figures are computed over (default 1h).
	Window time.Duration `json:"window_ns"`
	// FastWindow and SlowWindow are the burn-rate alert windows
	// (defaults 1m and 10m). BurnThreshold is the rate both must exceed
	// to alert (default 2 — spending the budget twice too fast).
	FastWindow    time.Duration `json:"fast_window_ns"`
	SlowWindow    time.Duration `json:"slow_window_ns"`
	BurnThreshold float64       `json:"burn_threshold"`
}

func (o *Objective) normalize() error {
	if o.Kind != Latency && o.Kind != Availability {
		return fmt.Errorf("slo: unknown kind %q", o.Kind)
	}
	if o.Kind == Latency && o.ThresholdNS <= 0 {
		return fmt.Errorf("slo: latency objective %q needs a positive threshold", o.Name)
	}
	if !(o.Target > 0 && o.Target < 1) {
		return fmt.Errorf("slo: objective %q target %v outside (0,1)", o.Name, o.Target)
	}
	if o.Window <= 0 {
		o.Window = time.Hour
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = 10 * time.Minute
	}
	if o.FastWindow <= 0 {
		o.FastWindow = time.Minute
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = 2
	}
	if o.FastWindow > o.SlowWindow || o.SlowWindow > o.Window {
		return fmt.Errorf("slo: objective %q windows must nest: fast %v <= slow %v <= budget %v",
			o.Name, o.FastWindow, o.SlowWindow, o.Window)
	}
	if o.Name == "" {
		o.Name = string(o.Kind) + "@" + o.Endpoint
	}
	return nil
}

// Source reads one objective's cumulative counters: the total number of
// eligible requests so far and how many of them were good. Sources are
// read under the engine lock and must be cheap and non-blocking.
type Source func() (good, total int64)

// sample is one Tick's reading of a source.
type sample struct {
	at          time.Time
	good, total int64
}

// tracked is one objective plus its sample history.
type tracked struct {
	obj     Objective
	src     Source
	samples []sample // ascending by time, pruned to the budget window
}

// Engine evaluates a fixed set of objectives. Construct with New; call
// Tick periodically (the render service runs a ticker); read Status
// whenever. Safe for concurrent use.
type Engine struct {
	now func() time.Time

	mu   sync.Mutex
	objs []*tracked
}

// New builds an engine over objectives and their sources (parallel
// slices). now is the clock — nil means time.Now; tests inject a fake.
func New(objectives []Objective, sources []Source, now func() time.Time) (*Engine, error) {
	if len(objectives) != len(sources) {
		return nil, fmt.Errorf("slo: %d objectives but %d sources", len(objectives), len(sources))
	}
	if now == nil {
		now = time.Now
	}
	e := &Engine{now: now}
	seen := map[string]bool{}
	for i := range objectives {
		o := objectives[i]
		if err := o.normalize(); err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
		e.objs = append(e.objs, &tracked{obj: o, src: sources[i]})
	}
	return e, nil
}

// Objectives returns the normalized objectives, in engine order.
func (e *Engine) Objectives() []Objective {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Objective, len(e.objs))
	for i, tr := range e.objs {
		out[i] = tr.obj
	}
	return out
}

// Tick samples every source at the engine clock's current instant and
// prunes history older than each objective's budget window (keeping one
// sample beyond the boundary so window deltas stay anchored).
func (e *Engine) Tick() {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	for _, tr := range e.objs {
		good, total := tr.src()
		tr.samples = append(tr.samples, sample{at: now, good: good, total: total})
		cutoff := now.Add(-tr.obj.Window)
		// Find the newest sample at or before the cutoff; drop everything
		// older than it.
		drop := 0
		for i := len(tr.samples) - 2; i >= 0; i-- {
			if !tr.samples[i].at.After(cutoff) {
				drop = i
				break
			}
		}
		if drop > 0 {
			tr.samples = append(tr.samples[:0], tr.samples[drop:]...)
		}
	}
}

// delta returns the (good, total) increments observed over the trailing
// window w: newest sample minus the newest sample at or before the
// window start (or the oldest sample if history is shorter than w).
func (tr *tracked) delta(now time.Time, w time.Duration) (good, total int64) {
	n := len(tr.samples)
	if n < 2 {
		return 0, 0
	}
	latest := tr.samples[n-1]
	cutoff := now.Add(-w)
	base := tr.samples[0]
	for i := n - 2; i >= 1; i-- {
		if !tr.samples[i].at.After(cutoff) {
			base = tr.samples[i]
			break
		}
	}
	good = latest.good - base.good
	total = latest.total - base.total
	if good < 0 || total < 0 { // counter reset upstream; treat as empty
		return 0, 0
	}
	return good, total
}

// burn converts a window's (good, total) into a burn rate against the
// objective's error budget. No traffic burns nothing.
func (o *Objective) burn(good, total int64) float64 {
	if total <= 0 {
		return 0
	}
	bad := float64(total-good) / float64(total)
	return bad / (1 - o.Target)
}

// Status is one objective's current evaluation — the /debug/slo
// document entry and the source of the Prometheus SLO gauges.
type Status struct {
	Name        string  `json:"name"`
	Kind        Kind    `json:"kind"`
	Endpoint    string  `json:"endpoint"`
	Target      float64 `json:"target"`
	ThresholdMS float64 `json:"threshold_ms,omitempty"`

	WindowSecs     float64 `json:"window_seconds"`
	FastWindowSecs float64 `json:"fast_window_seconds"`
	SlowWindowSecs float64 `json:"slow_window_seconds"`
	BurnThreshold  float64 `json:"burn_threshold"`

	// Over the budget window:
	Good            int64   `json:"good"`
	Total           int64   `json:"total"`
	Compliance      float64 `json:"compliance"` // good/total; 1 with no traffic
	Compliant       bool    `json:"compliant"`
	BudgetRemaining float64 `json:"error_budget_remaining"` // 1 = untouched, <0 = blown

	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Alerting bool    `json:"alerting"`
}

// Status evaluates every objective at the engine clock's current
// instant, in engine order.
func (e *Engine) Status() []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	out := make([]Status, 0, len(e.objs))
	for _, tr := range e.objs {
		o := &tr.obj
		st := Status{
			Name:           o.Name,
			Kind:           o.Kind,
			Endpoint:       o.Endpoint,
			Target:         o.Target,
			WindowSecs:     o.Window.Seconds(),
			FastWindowSecs: o.FastWindow.Seconds(),
			SlowWindowSecs: o.SlowWindow.Seconds(),
			BurnThreshold:  o.BurnThreshold,
		}
		if o.Kind == Latency {
			st.ThresholdMS = float64(o.ThresholdNS) / 1e6
		}
		good, total := tr.delta(now, o.Window)
		st.Good, st.Total = good, total
		st.Compliance = 1
		if total > 0 {
			st.Compliance = float64(good) / float64(total)
		}
		st.Compliant = st.Compliance >= o.Target
		st.BudgetRemaining = 1 - o.burn(good, total)
		fg, ft := tr.delta(now, o.FastWindow)
		sg, stt := tr.delta(now, o.SlowWindow)
		st.FastBurn = o.burn(fg, ft)
		st.SlowBurn = o.burn(sg, stt)
		st.Alerting = ft > 0 &&
			st.FastBurn >= o.BurnThreshold && st.SlowBurn >= o.BurnThreshold
		// Guard against pathological float inputs ever reaching JSON.
		for _, v := range []*float64{&st.Compliance, &st.BudgetRemaining, &st.FastBurn, &st.SlowBurn} {
			if math.IsNaN(*v) || math.IsInf(*v, 0) {
				*v = 0
			}
		}
		out = append(out, st)
	}
	return out
}

// AlertingCount returns how many objectives currently alert — the
// dashboard's headline number.
func AlertingCount(sts []Status) int {
	n := 0
	for _, st := range sts {
		if st.Alerting {
			n++
		}
	}
	return n
}

// DefaultSpec is the objective set shearwarpd runs with when -slo is
// not given: p-latency and availability on the render endpoint.
const DefaultSpec = "latency@/render:le=500ms:target=99%;availability@/render:target=99.9%"

// Parse reads a spec string into objectives. The grammar, in the style
// of the fault-injection specs:
//
//	spec      = rule *( ";" rule )
//	rule      = kind "@" endpoint *( ":" param "=" value )
//	kind      = "latency" | "availability"
//	params    = "le" (duration, latency only) | "target" ("99.9%" or "0.999")
//	          | "window" | "fast" | "slow" (durations) | "burn" (float)
//	          | "name" (identifier)
//
// Example: "latency@/render:le=250ms:target=99%:window=1h:burn=4".
func Parse(spec string) ([]Objective, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Objective
	for _, rule := range strings.Split(spec, ";") {
		rule = strings.TrimSpace(rule)
		if rule == "" {
			continue
		}
		fields := strings.Split(rule, ":")
		head := fields[0]
		kind, endpoint, ok := strings.Cut(head, "@")
		if !ok {
			return nil, fmt.Errorf("slo: rule %q: want kind@endpoint", rule)
		}
		o := Objective{Kind: Kind(kind), Endpoint: endpoint}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("slo: rule %q: bad param %q (want key=value)", rule, f)
			}
			switch k {
			case "le":
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("slo: rule %q: bad le %q", rule, v)
				}
				o.ThresholdNS = int64(d)
			case "target":
				t, err := parseTarget(v)
				if err != nil {
					return nil, fmt.Errorf("slo: rule %q: %v", rule, err)
				}
				o.Target = t
			case "window", "fast", "slow":
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("slo: rule %q: bad %s %q", rule, k, v)
				}
				switch k {
				case "window":
					o.Window = d
				case "fast":
					o.FastWindow = d
				case "slow":
					o.SlowWindow = d
				}
			case "burn":
				b, err := strconv.ParseFloat(v, 64)
				if err != nil || b <= 0 {
					return nil, fmt.Errorf("slo: rule %q: bad burn %q", rule, v)
				}
				o.BurnThreshold = b
			case "name":
				o.Name = v
			default:
				return nil, fmt.Errorf("slo: rule %q: unknown param %q", rule, k)
			}
		}
		if err := o.normalize(); err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// parseTarget accepts "99.9%" or a bare fraction "0.999".
func parseTarget(v string) (float64, error) {
	pct := strings.HasSuffix(v, "%")
	f, err := strconv.ParseFloat(strings.TrimSuffix(v, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad target %q", v)
	}
	if pct {
		f /= 100
	}
	if !(f > 0 && f < 1) {
		return 0, fmt.Errorf("target %q outside (0,1)", v)
	}
	return f, nil
}

// SortStatuses orders statuses for display: alerting first, then by
// worst budget, then by name — what an operator should look at first.
func SortStatuses(sts []Status) {
	sort.SliceStable(sts, func(i, j int) bool {
		if sts[i].Alerting != sts[j].Alerting {
			return sts[i].Alerting
		}
		if sts[i].BudgetRemaining != sts[j].BudgetRemaining {
			return sts[i].BudgetRemaining < sts[j].BudgetRemaining
		}
		return sts[i].Name < sts[j].Name
	})
}
