package slo

import (
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock advances only when told — the engine's windows become fully
// deterministic.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// counterSource is a hand-driven cumulative counter pair.
type counterSource struct{ good, total int64 }

func (s *counterSource) read() (int64, int64) { return s.good, s.total }

// addTraffic records n requests, bad of which were bad.
func (s *counterSource) addTraffic(n, bad int64) {
	s.total += n
	s.good += n - bad
}

func newTestEngine(t *testing.T, obj Objective, src *counterSource, clk *fakeClock) *Engine {
	t.Helper()
	e, err := New([]Objective{obj}, []Source{src.read}, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestParseSpec(t *testing.T) {
	objs, err := Parse("latency@/render:le=250ms:target=99%:window=1h:fast=30s:slow=5m:burn=4;availability@/render:target=99.9%")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives, want 2", len(objs))
	}
	l := objs[0]
	if l.Kind != Latency || l.Endpoint != "/render" || l.ThresholdNS != int64(250*time.Millisecond) {
		t.Fatalf("latency objective = %+v", l)
	}
	if l.Target != 0.99 || l.Window != time.Hour || l.FastWindow != 30*time.Second ||
		l.SlowWindow != 5*time.Minute || l.BurnThreshold != 4 {
		t.Fatalf("latency tuning = %+v", l)
	}
	if l.Name != "latency@/render" {
		t.Fatalf("default name = %q", l.Name)
	}
	a := objs[1]
	if a.Kind != Availability || math.Abs(a.Target-0.999) > 1e-9 {
		t.Fatalf("availability objective = %+v", a)
	}
	// Defaults applied.
	if a.Window != time.Hour || a.FastWindow != time.Minute || a.SlowWindow != 10*time.Minute || a.BurnThreshold != 2 {
		t.Fatalf("availability defaults = %+v", a)
	}

	// The default spec must parse.
	if _, err := Parse(DefaultSpec); err != nil {
		t.Fatalf("DefaultSpec does not parse: %v", err)
	}
	// Empty spec means no objectives.
	if objs, err := Parse(" "); err != nil || objs != nil {
		t.Fatalf("empty spec: %v, %v", objs, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"latency:/render",                        // missing @
		"speed@/render:target=99%",               // unknown kind
		"latency@/render:target=99%",             // latency without le
		"latency@/render:le=10ms:target=101%",    // target out of range
		"latency@/render:le=10ms:target=99%:x=1", // unknown param
		"latency@/render:le=banana:target=99%",   // bad duration
		"latency@/render:le=10ms:target=99%:burn=-1",
		"latency@/render:le=10ms:target=99%:fast=1h:slow=1m", // windows don't nest
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
	// Duplicate names rejected at engine construction.
	objs, err := Parse("latency@/render:le=10ms:target=99%;latency@/render:le=20ms:target=99%")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(objs, []Source{func() (int64, int64) { return 0, 0 }, func() (int64, int64) { return 0, 0 }}, nil); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate objective names accepted: %v", err)
	}
}

// TestNoTrafficIsCompliant: an idle service burns no budget and alerts
// on nothing, and no figure is NaN.
func TestNoTrafficIsCompliant(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	src := &counterSource{}
	e := newTestEngine(t, Objective{
		Kind: Latency, Endpoint: "/render", ThresholdNS: int64(100 * time.Millisecond), Target: 0.99,
	}, src, clk)
	for i := 0; i < 10; i++ {
		e.Tick()
		clk.advance(10 * time.Second)
	}
	st := e.Status()[0]
	if !st.Compliant || st.Compliance != 1 || st.Alerting {
		t.Fatalf("idle objective not vacuously compliant: %+v", st)
	}
	if st.FastBurn != 0 || st.SlowBurn != 0 || st.BudgetRemaining != 1 {
		t.Fatalf("idle objective burned budget: %+v", st)
	}
}

// TestBurnAlertFlipsAndResets is the core contract: a deliberately
// violated objective flips the burn-rate alert once both windows burn
// hot, and the alert resets once the fast window runs clean again.
func TestBurnAlertFlipsAndResets(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	src := &counterSource{}
	e := newTestEngine(t, Objective{
		Kind: Availability, Endpoint: "/render", Target: 0.99,
		Window: 30 * time.Minute, FastWindow: time.Minute, SlowWindow: 5 * time.Minute,
		BurnThreshold: 2,
	}, src, clk)

	tick := func(minutes int, perTick, badPerTick int64) {
		for i := 0; i < minutes*6; i++ { // 10s ticks
			src.addTraffic(perTick, badPerTick)
			clk.advance(10 * time.Second)
			e.Tick()
		}
	}

	// 10 minutes of clean traffic: compliant, no alert, budget intact.
	tick(10, 10, 0)
	st := e.Status()[0]
	if st.Alerting || !st.Compliant || st.BudgetRemaining < 0.999 {
		t.Fatalf("clean traffic: %+v", st)
	}

	// Full outage: every request bad. Burn = 1/0.01 = 100x on any
	// window that saw the outage; after > SlowWindow of badness both
	// windows burn and the alert must be up.
	tick(6, 10, 10)
	st = e.Status()[0]
	if st.FastBurn < 2 || st.SlowBurn < 2 {
		t.Fatalf("outage did not raise burn rates: %+v", st)
	}
	if !st.Alerting {
		t.Fatalf("outage did not flip the alert: %+v", st)
	}
	if st.Compliant {
		t.Fatalf("outage left objective compliant: %+v", st)
	}
	if st.BudgetRemaining >= 0 {
		t.Fatalf("outage left error budget: %+v", st)
	}

	// Recovery: clean traffic again. After the fast window runs clean
	// the alert resets, even though the slow window still remembers.
	tick(2, 10, 0)
	st = e.Status()[0]
	if st.FastBurn != 0 {
		t.Fatalf("fast window still burning after recovery: %+v", st)
	}
	if st.SlowBurn == 0 {
		t.Fatalf("slow window forgot the outage too quickly: %+v", st)
	}
	if st.Alerting {
		t.Fatalf("alert stuck after recovery: %+v", st)
	}
}

// TestWindowShorterThanHistory: with history younger than the window,
// deltas anchor at the oldest sample instead of reporting nothing.
func TestWindowShorterThanHistory(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	src := &counterSource{}
	e := newTestEngine(t, Objective{
		Kind: Availability, Endpoint: "/x", Target: 0.9, Window: 24 * time.Hour,
		FastWindow: time.Minute, SlowWindow: time.Hour,
	}, src, clk)
	e.Tick()
	src.addTraffic(100, 50)
	clk.advance(30 * time.Second)
	e.Tick()
	st := e.Status()[0]
	if st.Total != 100 || st.Good != 50 {
		t.Fatalf("young history delta = %d/%d, want 50/100", st.Good, st.Total)
	}
}

// TestCounterResetTolerated: a source that goes backwards (process
// restart upstream) reads as an empty window, not a negative one.
func TestCounterResetTolerated(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	src := &counterSource{good: 1000, total: 1000}
	e := newTestEngine(t, Objective{
		Kind: Availability, Endpoint: "/x", Target: 0.9,
	}, src, clk)
	e.Tick()
	clk.advance(10 * time.Second)
	src.good, src.total = 5, 5 // reset
	e.Tick()
	st := e.Status()[0]
	if st.Total != 0 || st.FastBurn != 0 || st.Alerting {
		t.Fatalf("counter reset produced nonsense: %+v", st)
	}
}

// TestSamplePruning: history never grows past the budget window (plus
// the anchor sample).
func TestSamplePruning(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	src := &counterSource{}
	e := newTestEngine(t, Objective{
		Kind: Availability, Endpoint: "/x", Target: 0.9,
		Window: 5 * time.Minute, FastWindow: 30 * time.Second, SlowWindow: time.Minute,
	}, src, clk)
	for i := 0; i < 1000; i++ {
		src.addTraffic(1, 0)
		e.Tick()
		clk.advance(10 * time.Second)
	}
	e.mu.Lock()
	n := len(e.objs[0].samples)
	e.mu.Unlock()
	// 5 minutes at 10s ticks is 30 samples; allow the anchor and edges.
	if n > 34 {
		t.Fatalf("sample history grew to %d entries for a 5m window at 10s ticks", n)
	}
}

func TestSortStatuses(t *testing.T) {
	sts := []Status{
		{Name: "b", BudgetRemaining: 0.5},
		{Name: "a", BudgetRemaining: 0.9},
		{Name: "c", Alerting: true, BudgetRemaining: 1},
	}
	SortStatuses(sts)
	if sts[0].Name != "c" || sts[1].Name != "b" || sts[2].Name != "a" {
		t.Fatalf("sort order: %v %v %v", sts[0].Name, sts[1].Name, sts[2].Name)
	}
}
