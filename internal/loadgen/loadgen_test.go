package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// stubService mimics the shearwarpd surface loadgen touches: /healthz
// with volume_names, /metrics with cache counters, and /render.
type stubService struct {
	mu      sync.Mutex
	renders map[string]int
	hits    int64
	fail    func(volume string, n int) int // optional status override
}

func (s *stubService) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"status":       "ok",
			"volume_names": []string{"mri", "ct", "vol00"},
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		hits := s.hits
		s.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{
			"cache": map[string]int64{"hits": hits, "misses": 2, "builds": 2, "bytes": 4096},
		})
	})
	mux.HandleFunc("/render", func(w http.ResponseWriter, r *http.Request) {
		volume := r.URL.Query().Get("volume")
		s.mu.Lock()
		s.renders[volume]++
		n := s.renders[volume]
		s.hits++
		s.mu.Unlock()
		if s.fail != nil {
			if code := s.fail(volume, n); code != 0 {
				http.Error(w, "stub failure", code)
				return
			}
		}
		w.Write([]byte("P6 1 1 255 xxx"))
	})
	return mux
}

func newStub() *stubService { return &stubService{renders: make(map[string]int)} }

// TestRunAgainstStub drives a short run and checks the report's
// accounting: request totals, zipfian concentration on the head volume,
// discovered catalogue, and the cache delta scraped around the run.
func TestRunAgainstStub(t *testing.T) {
	stub := newStub()
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		RPS:      200,
		Duration: 300 * time.Millisecond,
		Skew:     1.5,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 20 {
		t.Fatalf("requests = %d, want a few dozen at 200 rps for 300ms", rep.Requests)
	}
	if rep.ServerErrors != 0 || rep.TransportErrors != 0 {
		t.Fatalf("unexpected errors: %+v", rep)
	}
	if rep.StatusCounts["200"] != rep.Requests {
		t.Fatalf("status accounting mismatch: %v vs %d requests", rep.StatusCounts, rep.Requests)
	}
	if rep.Latency.Count != rep.Requests || rep.Latency.P99MS <= 0 {
		t.Fatalf("latency summary not populated: %+v", rep.Latency)
	}
	// Zipf over the sorted discovered catalogue [ct mri vol00] must put
	// the plurality of traffic on the head volume.
	if rep.PerVolume["ct"] <= rep.PerVolume["vol00"] {
		t.Fatalf("zipf skew not applied: %v", rep.PerVolume)
	}
	var total int64
	for _, n := range rep.PerVolume {
		total += n
	}
	if total != rep.Requests {
		t.Fatalf("per-volume counts sum to %d, want %d", total, rep.Requests)
	}
	// The stub bumps cache hits once per render; the delta is scraped
	// before/after so it should equal the request count.
	if rep.CacheDelta.Hits != rep.Requests {
		t.Fatalf("cache delta hits = %d, want %d", rep.CacheDelta.Hits, rep.Requests)
	}
	if rep.CacheDelta.BytesNow != 4096 {
		t.Fatalf("cache bytes = %d, want 4096", rep.CacheDelta.BytesNow)
	}
	if rep.AchievedRPS <= 0 {
		t.Fatalf("achieved rps = %g", rep.AchievedRPS)
	}
}

// TestRunCountsServerErrors checks 5xx responses land in ServerErrors
// and the per-status map, not in transport errors.
func TestRunCountsServerErrors(t *testing.T) {
	stub := newStub()
	stub.fail = func(volume string, n int) int {
		if n%2 == 0 {
			return http.StatusInternalServerError
		}
		return 0
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		RPS:      100,
		Duration: 200 * time.Millisecond,
		Volumes:  []string{"mri"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServerErrors == 0 {
		t.Fatal("no server errors recorded despite stub 500s")
	}
	if rep.ServerErrors != rep.StatusCounts["500"] {
		t.Fatalf("server_errors %d != status 500 count %d", rep.ServerErrors, rep.StatusCounts["500"])
	}
	if rep.TransportErrors != 0 {
		t.Fatalf("5xx wrongly counted as transport errors: %d", rep.TransportErrors)
	}
}

// TestRunShedsAtConcurrencyCap checks the open-loop generator sheds
// (rather than queues) arrivals beyond the in-flight cap when the
// service is slower than the schedule.
func TestRunShedsAtConcurrencyCap(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/render", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(150 * time.Millisecond)
		w.Write([]byte("x"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"cache": map[string]int64{}})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		RPS:         200,
		Duration:    250 * time.Millisecond,
		Concurrency: 2,
		Volumes:     []string{"mri"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatalf("expected shed arrivals with 2-deep concurrency against a 150ms service: %+v", rep)
	}
	if rep.Requests > 4 {
		t.Fatalf("more completions than the cap allows: %d", rep.Requests)
	}
}

// TestConfigValidation pins the error cases.
func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{},                                       // no BaseURL
		{BaseURL: "http://x"},                    // no RPS
		{BaseURL: "http://x", RPS: 1, Skew: 0.5}, // bad skew
	} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("Run(%+v) succeeded, want error", cfg)
		}
	}
}

// TestDiscoverVolumes checks catalogue discovery sorts names.
func TestDiscoverVolumes(t *testing.T) {
	stub := newStub()
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	vols, err := DiscoverVolumes(context.Background(), ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ct", "mri", "vol00"}
	if len(vols) != len(want) {
		t.Fatalf("vols = %v, want %v", vols, want)
	}
	for i := range want {
		if vols[i] != want[i] {
			t.Fatalf("vols = %v, want %v", vols, want)
		}
	}
}
