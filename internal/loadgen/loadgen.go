// Package loadgen replays synthetic multi-tenant render traffic against
// a running shearwarpd — the closed loop's stimulus half, with the SLO
// engine and dashboard as the observation half.
//
// The generator is open-loop: requests are dispatched on a fixed
// schedule derived from the target rate, regardless of how fast the
// service answers, so an overloaded service sees the backlog a real
// client population would produce instead of the self-throttling a
// closed loop applies. Bounded in-flight concurrency keeps the client
// itself healthy; arrivals that would exceed it are counted as shed
// rather than silently delayed (shed arrivals mean the client, not the
// service, became the bottleneck — rerun with more concurrency).
//
// Traffic shape:
//
//   - tenants (volumes) are drawn from a Zipf distribution over the
//     configured catalogue, modeling the popularity skew real volume
//     stores exhibit (a few hot studies, a long cold tail);
//   - viewpoints follow a golden-angle camera path, so successive
//     requests for one volume render genuinely different frames while
//     the whole sphere of viewpoints is covered evenly;
//   - the catalogue is auto-discovered from /healthz (volume_names)
//     when not configured explicitly.
//
// The Report digests the run client-side — achieved rate, per-status
// counts, latency quantiles — and joins it with the service's own
// cache counters scraped from /metrics before and after, so a run
// shows both what clients experienced and what it cost the cache.
package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"shearwarp/internal/telemetry"
	"shearwarp/internal/volcache"
)

// Config tunes one load run. A target (BaseURL or Targets) and RPS are
// required; everything else has defaults from normalize.
type Config struct {
	BaseURL string // service root, e.g. "localhost:8080" paths are appended to
	// Targets is the multi-endpoint form of BaseURL: arrivals round-robin
	// across these roots, so one run can drive several shearwarpd
	// replicas (or several gateways) at once. When both are set, BaseURL
	// is prepended; discovery and cache scraping use the first target.
	Targets []string
	RPS     float64 // target arrival rate (open loop)
	// Duration bounds the dispatch schedule (default 15s). In-flight
	// requests are drained (briefly) after the last arrival.
	Duration time.Duration
	// Concurrency caps in-flight requests (default 4*RPS rounded up,
	// minimum 8). Arrivals past the cap are shed client-side.
	Concurrency int
	// Skew is the Zipf s parameter over the volume catalogue (default
	// 1.2; must be > 1). Higher skews concentrate traffic harder on the
	// first volumes.
	Skew float64
	// Volumes is the popularity-ranked catalogue. Empty = discover from
	// /healthz volume_names.
	Volumes   []string
	Algorithm string // forwarded as ?alg when non-empty
	Format    string // forwarded as ?format (default ppm)
	Seed      int64  // deterministic tenant/viewpoint sequence (default 1)
	// RetryAfterCap bounds how long a shed response's Retry-After hint
	// is honored: a 503/429 carrying the header gets one client-side
	// retry after min(hint, cap) (default 2s; negative disables
	// honoring, so shed responses count as-is).
	RetryAfterCap time.Duration
	Client        *http.Client
}

func (c *Config) normalize() error {
	if c.BaseURL != "" {
		c.Targets = append([]string{c.BaseURL}, c.Targets...)
	}
	if len(c.Targets) == 0 {
		return errors.New("loadgen: at least one target required")
	}
	c.BaseURL = c.Targets[0]
	if c.RetryAfterCap == 0 {
		c.RetryAfterCap = 2 * time.Second
	}
	if !(c.RPS > 0) {
		return errors.New("loadgen: RPS must be positive")
	}
	if c.Duration <= 0 {
		c.Duration = 15 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = max(8, int(math.Ceil(c.RPS*4)))
	}
	if c.Skew == 0 {
		c.Skew = 1.2
	}
	if !(c.Skew > 1) {
		return fmt.Errorf("loadgen: Zipf skew %v must be > 1", c.Skew)
	}
	if c.Format == "" {
		c.Format = "ppm"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 60 * time.Second}
	}
	return nil
}

// CacheDelta is the service-side cache traffic attributable to the run:
// the /metrics cache counters after minus before.
type CacheDelta struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Builds    int64 `json:"builds"`
	Evictions int64 `json:"evictions"`
	BytesNow  int64 `json:"bytes_now"` // absolute, after the run
}

// Report is one run's digest — written by cmd/loadgen as
// BENCH_load.json.
type Report struct {
	TargetRPS    float64 `json:"target_rps"`
	AchievedRPS  float64 `json:"achieved_rps"` // completed requests / elapsed
	DurationSecs float64 `json:"duration_seconds"`
	Concurrency  int     `json:"concurrency"`
	Skew         float64 `json:"zipf_skew"`

	Requests        int64            `json:"requests"` // completed (any status)
	Shed            int64            `json:"shed"`     // arrivals dropped at the client's concurrency cap
	TransportErrors int64            `json:"transport_errors"`
	ServerErrors    int64            `json:"server_errors"` // 5xx responses (after any honored retry)
	StatusCounts    map[string]int64 `json:"status_counts"`
	PerVolume       map[string]int64 `json:"per_volume"`
	PerTarget       map[string]int64 `json:"per_target,omitempty"` // arrivals per target root (multi-target runs)

	// Retry-After accounting: how often the service asked clients to
	// back off, how often the client honored it (slept and retried
	// once), how long those sleeps totalled, and how many honored
	// retries turned the shed response into a success.
	RetryAfterSeen     int64   `json:"retry_after_seen"`
	RetryAfterHonored  int64   `json:"retry_after_honored"`
	RetryAfterWaitSecs float64 `json:"retry_after_wait_seconds"`
	RetrySuccesses     int64   `json:"retry_successes"`

	Latency    telemetry.QuantileSummary `json:"latency"` // client-observed, ms
	CacheDelta CacheDelta                `json:"cache_delta"`

	// SlowRequests are the run's slowest completed requests, worst first,
	// each carrying the fleet trace ID the service echoed in
	// X-Shearwarp-Trace — the direct path from "the tail was bad" to the
	// stitched /debug/trace view of exactly the requests that made it bad.
	SlowRequests []SlowRequest `json:"slow_requests,omitempty"`
}

// SlowRequest is one tail sample in the report.
type SlowRequest struct {
	DurMS    float64 `json:"dur_ms"`
	Status   int     `json:"status"`
	URL      string  `json:"url"`
	TraceID  string  `json:"trace_id,omitempty"`
	TraceURL string  `json:"trace_url,omitempty"` // stitched view on the target that served it
}

// traceHeader is the fleet trace-context response header
// (server.TraceHeader; spelled out to keep loadgen service-agnostic).
const traceHeader = "X-Shearwarp-Trace"

// slowKeep bounds the retained tail samples.
const slowKeep = 8

// runState is the mutable accounting shared by request goroutines.
type runState struct {
	hist         *telemetry.Histogram
	retryCap     time.Duration
	transport    atomic.Int64
	srvErrs      atomic.Int64
	retrySeen    atomic.Int64
	retryHonored atomic.Int64
	retryWaitNS  atomic.Int64
	retrySuccess atomic.Int64

	mu       sync.Mutex
	statuses map[int]int64
	volumes  map[string]int64
	targets  map[string]int64
	slow     []SlowRequest // worst-first, capped at slowKeep
}

// noteSlow offers one completed request to the tail list (caller holds
// no lock). Kept sorted worst-first and capped, so the insert is O(n)
// over a tiny n.
func (st *runState) noteSlow(s SlowRequest) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.slow) == slowKeep && s.DurMS <= st.slow[slowKeep-1].DurMS {
		return
	}
	st.slow = append(st.slow, s)
	sort.Slice(st.slow, func(i, j int) bool { return st.slow[i].DurMS > st.slow[j].DurMS })
	if len(st.slow) > slowKeep {
		st.slow = st.slow[:slowKeep]
	}
}

// Run executes one load run and returns its report. The context cancels
// the run early (the report covers what ran).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	vols := cfg.Volumes
	if len(vols) == 0 {
		var err error
		if vols, err = DiscoverVolumes(ctx, cfg.Client, cfg.BaseURL); err != nil {
			return nil, err
		}
	}
	if len(vols) == 0 {
		return nil, errors.New("loadgen: no volumes to request")
	}

	before, err := ScrapeCache(ctx, cfg.Client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scraping /metrics before run: %w", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.Skew, 1, uint64(len(vols)-1))
	if len(vols) == 1 {
		zipf = nil // rand.NewZipf rejects imax 0; the draw is constant anyway
	}

	st := &runState{
		hist:     telemetry.NewHistogram("loadgen_client_seconds", ""),
		retryCap: cfg.RetryAfterCap,
		statuses: make(map[int]int64),
		volumes:  make(map[string]int64),
		targets:  make(map[string]int64),
	}
	slots := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	var shed int64

	interval := time.Duration(float64(time.Second) / cfg.RPS)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(cfg.Duration)
	defer deadline.Stop()

	start := time.Now()
	seq := 0
dispatch:
	for {
		select {
		case <-ctx.Done():
			break dispatch
		case <-deadline.C:
			break dispatch
		case <-ticker.C:
			var vi uint64
			if zipf != nil {
				vi = zipf.Uint64()
			}
			volume := vols[vi]
			target := cfg.Targets[seq%len(cfg.Targets)]
			url := requestURL(cfg, target, volume, seq)
			seq++
			select {
			case slots <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-slots }()
					st.do(ctx, cfg.Client, url, volume, target)
				}()
			default:
				shed++
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := ScrapeCache(ctx, cfg.Client, cfg.BaseURL)
	if err != nil {
		// The run itself succeeded; report it with an empty delta rather
		// than failing (the service may have just been shut down).
		after = before
	}

	snap := st.hist.Snapshot()
	rep := &Report{
		TargetRPS:       cfg.RPS,
		DurationSecs:    elapsed.Seconds(),
		Concurrency:     cfg.Concurrency,
		Skew:            cfg.Skew,
		Requests:        snap.Count,
		Shed:            shed,
		TransportErrors: st.transport.Load(),
		ServerErrors:    st.srvErrs.Load(),
		StatusCounts:    make(map[string]int64, len(st.statuses)),
		PerVolume:       st.volumes,
		Latency:         snap.Summary(),

		RetryAfterSeen:     st.retrySeen.Load(),
		RetryAfterHonored:  st.retryHonored.Load(),
		RetryAfterWaitSecs: float64(st.retryWaitNS.Load()) / 1e9,
		RetrySuccesses:     st.retrySuccess.Load(),
		CacheDelta: CacheDelta{
			Hits:      after.Hits - before.Hits,
			Misses:    after.Misses - before.Misses,
			Builds:    after.Builds - before.Builds,
			Evictions: after.Evictions - before.Evictions,
			BytesNow:  after.Bytes,
		},
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(snap.Count) / elapsed.Seconds()
	}
	for code, n := range st.statuses {
		rep.StatusCounts[strconv.Itoa(code)] = n
	}
	if len(cfg.Targets) > 1 {
		rep.PerTarget = st.targets
	}
	st.mu.Lock()
	rep.SlowRequests = append([]SlowRequest(nil), st.slow...)
	st.mu.Unlock()
	return rep, nil
}

// requestURL builds the seq-th request for a volume: a golden-angle
// camera path, so successive frames differ and viewpoints cover the
// sphere evenly.
func requestURL(cfg Config, target, volume string, seq int) string {
	const golden = 137.50776405003785 // degrees
	yaw := math.Mod(float64(seq)*golden, 360)
	pitch := 60 * math.Sin(float64(seq)*0.37)
	url := fmt.Sprintf("%s/render?volume=%s&yaw=%.2f&pitch=%.2f&format=%s",
		target, volume, yaw, pitch, cfg.Format)
	if cfg.Algorithm != "" {
		url += "&alg=" + cfg.Algorithm
	}
	return url
}

// do issues one request and accounts for it. A shed response (503/429)
// carrying a Retry-After hint gets one polite retry: sleep min(hint,
// cap), reissue, and account for the final outcome — so a well-behaved
// client population's experience of a shedding fleet is what lands in
// the report, not the first-touch rejections.
func (st *runState) do(ctx context.Context, client *http.Client, url, volume, target string) {
	t0 := time.Now()
	status, retryAfter, traceID, ok := st.issue(ctx, client, url)
	if ok && retryAfter > 0 {
		st.retrySeen.Add(1)
		if st.retryCap > 0 {
			wait := retryAfter
			if wait > st.retryCap {
				wait = st.retryCap
			}
			select {
			case <-ctx.Done():
			case <-time.After(wait):
				st.retryHonored.Add(1)
				st.retryWaitNS.Add(int64(wait))
				first := status
				status, _, traceID, ok = st.issue(ctx, client, url)
				if ok && status < 400 && first >= 400 {
					st.retrySuccess.Add(1)
				}
			}
		}
	}
	if !ok {
		st.transport.Add(1)
		return
	}
	dur := time.Since(t0)
	st.hist.Observe(dur)
	slow := SlowRequest{DurMS: float64(dur) / 1e6, Status: status, URL: url, TraceID: traceID}
	if traceID != "" {
		slow.TraceURL = target + "/debug/trace?id=" + traceID
	}
	st.noteSlow(slow)
	if status >= 500 {
		st.srvErrs.Add(1)
	}
	st.mu.Lock()
	st.statuses[status]++
	st.volumes[volume]++
	st.targets[target]++
	st.mu.Unlock()
}

// issue performs one HTTP exchange; retryAfter is non-zero when the
// response was a shed (503/429) carrying a parseable Retry-After hint,
// and traceID is the fleet trace context the service echoed (empty when
// the service predates tracing).
func (st *runState) issue(ctx context.Context, client *http.Client, url string) (status int, retryAfter time.Duration, traceID string, ok bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, 0, "", false
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, "", false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, resp.Header.Get(traceHeader), true
}

// DiscoverVolumes reads the service's volume catalogue from /healthz.
func DiscoverVolumes(ctx context.Context, client *http.Client, baseURL string) ([]string, error) {
	var doc struct {
		VolumeNames []string `json:"volume_names"`
	}
	if err := getJSON(ctx, client, baseURL+"/healthz", &doc); err != nil {
		return nil, fmt.Errorf("loadgen: discovering volumes: %w", err)
	}
	sort.Strings(doc.VolumeNames)
	return doc.VolumeNames, nil
}

// ScrapeCache reads the service's cache counters from the JSON
// /metrics document.
func ScrapeCache(ctx context.Context, client *http.Client, baseURL string) (volcache.Stats, error) {
	var doc struct {
		Cache volcache.Stats `json:"cache"`
	}
	err := getJSON(ctx, client, baseURL+"/metrics", &doc)
	return doc.Cache, err
}

func getJSON(ctx context.Context, client *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
