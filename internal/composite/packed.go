package composite

// Packed-lane compositing tier (cpudispatch.KernelPacked).
//
// The scalar kernel spends most of its time on the float multiplies of the
// bilinear resample and the float blend into the intermediate image. This
// tier keeps the whole pixel in 64-bit integer registers: each voxel is
// pre-spread (once per encoding, in rle.(*Volume).PackedVox) into four
// 16-bit sublanes of a uint64 holding alpha and the premultiplied
// channels; the four bilinear taps are weighted by 8.8 fixed-point weights
// that sum to exactly 256, so each accumulator sublane is the resampled
// channel scaled by 256 (full scale 255*256 = 65280 < 2^16 — no carries
// between sublanes, no precision discarded); and the front-to-back blend
// runs against a fixed-point row accumulator (two uint64 per pixel,
// A<<32|R and G<<32|B at the same 65280 full scale) that is loaded from
// the float image once per scanline and flushed back once.
//
// The blend multiplies each resampled sublane s by
// tq = floor((65280-A)*65793 / 65536), a 16.16 approximation of the
// transparency factor (1 - A/65280) scaled by 65536, and adds
// floor(s*tq/65536) to the accumulator. Since 65793*65280 < 65536^2, the
// increment never exceeds 65280-A, so channels cannot overflow full scale
// and the transparency factor can never go negative. Both 32-bit
// accumulator lanes are updated with one 64-bit multiply each: the largest
// lane product is 65280*65535 < 2^32, so the lanes cannot contaminate each
// other.
//
// This is a documented epsilon mode, never auto-selected: quantizing the
// resample weights to 8.8 and the blend to this fixed-point grid perturbs
// each channel by a small bounded amount (TestPackedKernelCloseToScalar
// pins the bound), and the Samples/EmptyPixels split can shift where a
// resampled alpha straddles the empty threshold (alpha < 128/65280 here vs
// aa < 1/512 in float). The arithmetic is pure integer, so packed output
// is deterministic and identical across architectures. Opacity correction
// (alphaLUT) forces the exact scalar kernel instead — the correction table
// is defined over float alphas.

// fpScale is the fixed-point full scale: channel value 1.0 = 255 * 256.
const fpScale = 65280

// fpSatAlpha is img.OpacityThreshold on the fixed-point alpha scale
// (0.98 * 65280, rounded up so the packed tier never marks a pixel the
// float threshold would keep live at the same alpha).
const fpSatAlpha = 63975

// packWeights quantizes the bilinear weights to 8.8 fixed point summing to
// exactly 256, deterministically: the first three round half-up and the
// fourth absorbs the remainder; a negative remainder is deducted from the
// largest of the first three.
func packWeights(g *sliceGeom) (q0, q1, q2, q3 uint64) {
	w0 := int64(g.w00*256 + 0.5)
	w1 := int64(g.w10*256 + 0.5)
	w2 := int64(g.w01*256 + 0.5)
	w3 := 256 - w0 - w1 - w2
	if w3 < 0 {
		if w0 >= w1 && w0 >= w2 {
			w0 += w3
		} else if w1 >= w2 {
			w1 += w3
		} else {
			w2 += w3
		}
		w3 = 0
	}
	return uint64(w0), uint64(w1), uint64(w2), uint64(w3)
}

// loadRowAcc converts intermediate row vRow into the fixed-point row
// accumulator. Freshly cleared rows take the all-zero fast path; pixels
// carrying prior float state are snapped to the fixed-point grid (part of
// the packed tier's documented epsilon).
func (c *Ctx) loadRowAcc(vRow int) {
	M := c.M
	base := 4 * vRow * M.W
	pix := M.Pix[base : base+4*M.W]
	ra := c.rowAcc[:2*M.W]
	for u := 0; u < M.W; u++ {
		px := pix[4*u : 4*u+4 : 4*u+4]
		r, g, b, a := px[0], px[1], px[2], px[3]
		if r == 0 && g == 0 && b == 0 && a == 0 {
			ra[2*u] = 0
			ra[2*u+1] = 0
			continue
		}
		ra[2*u] = uint64(a*fpScale+0.5)<<32 | uint64(r*fpScale+0.5)
		ra[2*u+1] = uint64(g*fpScale+0.5)<<32 | uint64(b*fpScale+0.5)
	}
}

// flushRowAcc writes the accumulator back to the float image over the
// pixel window the slice loop actually touched.
func (c *Ctx) flushRowAcc(vRow, lo, hi int) {
	M := c.M
	base := 4 * vRow * M.W
	pix := M.Pix[base : base+4*M.W]
	ra := c.rowAcc
	for u := lo; u < hi; u++ {
		p0 := ra[2*u]
		p1 := ra[2*u+1]
		px := pix[4*u : 4*u+4 : 4*u+4]
		px[0] = float32(p0&0xffffffff) * (1.0 / fpScale)
		px[1] = float32(p1>>32) * (1.0 / fpScale)
		px[2] = float32(p1&0xffffffff) * (1.0 / fpScale)
		px[3] = float32(p0>>32) * (1.0 / fpScale)
	}
}

// compositeLivePacked runs the packed-lane pixel kernel over the live
// pieces: 4-tap SWAR resample and fixed-point front-to-back blend into the
// row accumulator, all in integer registers.
func (c *Ctx) compositeLivePacked(vRow int, g *sliceGeom, cnt *Counters, pkv []uint64) {
	q0, q1, q2, q3 := packWeights(g)
	ra := c.rowAcc
	var samples, empty int64
	for _, iv := range c.live {
		n := int(iv.Hi - iv.Lo)
		t0 := laneSel(iv.B0, pkv, c.plane0, c.zplane)[:n+1]
		t1 := laneSel(iv.B1, pkv, c.plane1, c.zplane)
		t1 = t1[:len(t0)] // teach the compiler the lanes are the same length
		lo := int(iv.Lo)
		r0, r1 := t0[0], t1[0]
		for j := 1; j < len(t0); j++ {
			n0, n1 := t0[j], t1[j]
			acc := r0*q0 + n0*q1 + r1*q2 + n1*q3
			r0, r1 = n0, n1
			if acc>>48 < 128 {
				empty++
				continue
			}
			u := lo + j - 1
			p0 := ra[2*u]
			tq := ((fpScale - (p0 >> 32)) * 65793) >> 16
			sAR := ((acc >> 16) & 0xffff_00000000) | ((acc >> 32) & 0xffff)
			sGB := ((acc & 0xffff0000) << 16) | (acc & 0xffff)
			p0 += ((sAR * tq) >> 16) & 0x0000ffff_0000ffff
			ra[2*u] = p0
			ra[2*u+1] += ((sGB * tq) >> 16) & 0x0000ffff_0000ffff
			samples++
			if p0>>32 >= fpSatAlpha {
				c.sat = append(c.sat, int32(u))
			}
		}
	}
	cnt.Samples += samples
	cnt.EmptyPixels += empty
	cnt.Cycles += samples*CyclesPerSample + empty*CyclesPerEmptyPixel
}
