package composite

import (
	"math"
	"testing"

	"shearwarp/internal/classify"
	"shearwarp/internal/img"
	"shearwarp/internal/rle"
	"shearwarp/internal/trace"
	"shearwarp/internal/vol"
	"shearwarp/internal/xform"
)

// referenceComposite is a brute-force compositor: for every intermediate
// pixel it walks all slices front to back, bilinearly resamples the
// classified volume directly (no RLE, no skip links), and blends with the
// identical float32 arithmetic as the kernel, including the early-
// termination threshold and the tiny-alpha epsilon. Pixel values must be
// bit-identical to the kernel's.
func referenceComposite(f *xform.Factorization, c *classify.Classified, m *img.Intermediate) {
	voxAt := func(i, j, k int) classify.Voxel {
		if i < 0 || j < 0 || i >= f.Ni || j >= f.Nj {
			return 0
		}
		x, y, z := xform.ObjectIndex(f.Axis, i, j, k)
		v := c.Voxels[(z*c.Ny+y)*c.Nx+x]
		if classify.Opacity(v) < c.MinOpacity {
			return 0
		}
		return v
	}
	for vRow := 0; vRow < m.H; vRow++ {
		for u := 0; u < m.W; u++ {
			p := 4 * (vRow*m.W + u)
			for idx := 0; idx < f.Nk; idx++ {
				if m.Pix[p+3] >= img.OpacityThreshold {
					break
				}
				k := f.KFront + idx*f.KStep
				tu, tv := f.SliceShift(k)
				y := float64(vRow) - tv
				j0 := int(math.Floor(y))
				wy := y - float64(j0)
				if j0 < -1 || j0 >= f.Nj {
					continue
				}
				tuInt := int(math.Floor(tu))
				tuFrac := tu - float64(tuInt)
				off := tuInt
				wx := 0.0
				if tuFrac > 0 {
					off = tuInt + 1
					wx = 1 - tuFrac
				}
				w00 := float32((1 - wx) * (1 - wy))
				w10 := float32(wx * (1 - wy))
				w01 := float32((1 - wx) * wy)
				w11 := float32(wx * wy)
				i0 := u - off
				var v00, v10, v01, v11 classify.Voxel
				v00 = voxAt(i0, j0, k)
				v10 = voxAt(i0+1, j0, k)
				if wy > 0 {
					v01 = voxAt(i0, j0+1, k)
					v11 = voxAt(i0+1, j0+1, k)
				}
				if wy >= 1 || j0 < 0 {
					v00, v10 = 0, 0
				}
				aa := w00*alphaOf(v00) + w10*alphaOf(v10) + w01*alphaOf(v01) + w11*alphaOf(v11)
				if aa < 1.0/512 {
					continue
				}
				var ar, ag, ab float32
				accum := func(w float32, v classify.Voxel) {
					if v == 0 || w == 0 {
						return
					}
					a := w * float32(v>>24) * (1.0 / 255)
					ar += a * float32((v>>16)&0xff)
					ag += a * float32((v>>8)&0xff)
					ab += a * float32(v&0xff)
				}
				accum(w00, v00)
				accum(w10, v10)
				accum(w01, v01)
				accum(w11, v11)
				t := 1 - m.Pix[p+3]
				m.Pix[p] += t * ar * (1.0 / 255)
				m.Pix[p+1] += t * ag * (1.0 / 255)
				m.Pix[p+2] += t * ab * (1.0 / 255)
				m.Pix[p+3] += t * aa
			}
		}
	}
}

func setup(t *testing.T, n int, yaw, pitch float64) (*xform.Factorization, *classify.Classified, *rle.Volume) {
	t.Helper()
	v := vol.MRIBrain(n)
	c := classify.Classify(v, classify.Options{})
	view := xform.ViewMatrix(v.Nx, v.Ny, v.Nz, yaw, pitch)
	f := xform.Factorize(v.Nx, v.Ny, v.Nz, view)
	rv := rle.Encode(c, f.Axis)
	return &f, c, rv
}

func TestKernelMatchesReference(t *testing.T) {
	for _, view := range []struct{ yaw, pitch float64 }{
		{0, 0},        // axis-aligned, zero shear
		{0.35, 0.2},   // generic small rotation
		{0.78, -0.45}, // near-45-degree shear
		{2.6, 0.1},    // back-facing principal axis
		{1.5708, 0.0}, // principal axis x
		{0.1, 1.4},    // principal axis y
		{-0.9, -1.2},  // negative shears
	} {
		f, c, rv := setup(t, 20, view.yaw, view.pitch)
		m := img.NewIntermediate(f.IntW, f.IntH)
		ctx := NewCtx(f, rv, m)
		var cnt Counters
		for vRow := 0; vRow < m.H; vRow++ {
			ctx.Scanline(vRow, &cnt)
		}
		ref := img.NewIntermediate(f.IntW, f.IntH)
		referenceComposite(f, c, ref)
		for i := range m.Pix {
			if m.Pix[i] != ref.Pix[i] {
				t.Fatalf("view %+v: pixel float %d differs: kernel %g ref %g",
					view, i, m.Pix[i], ref.Pix[i])
			}
		}
		if cnt.Samples == 0 {
			t.Fatalf("view %+v: kernel composited no samples", view)
		}
	}
}

func TestScanlinesAreIndependent(t *testing.T) {
	// Compositing rows in any order yields the same image: the property
	// that makes intermediate-scanline tasks parallel without locks.
	f, _, rv := setup(t, 16, 0.4, 0.25)
	a := img.NewIntermediate(f.IntW, f.IntH)
	b := img.NewIntermediate(f.IntW, f.IntH)
	ctxA := NewCtx(f, rv, a)
	ctxB := NewCtx(f, rv, b)
	var cnt Counters
	for vRow := 0; vRow < a.H; vRow++ {
		ctxA.Scanline(vRow, &cnt)
	}
	for vRow := b.H - 1; vRow >= 0; vRow-- {
		ctxB.Scanline(vRow, &cnt)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("row order changed pixel %d: %g vs %g", i, a.Pix[i], b.Pix[i])
		}
	}
}

func TestEmptyVolumeCompositesNothing(t *testing.T) {
	c := &classify.Classified{Nx: 12, Ny: 12, Nz: 12,
		Voxels: make([]classify.Voxel, 12*12*12), MinOpacity: 4}
	view := xform.ViewMatrix(12, 12, 12, 0.3, 0.3)
	f := xform.Factorize(12, 12, 12, view)
	rv := rle.Encode(c, f.Axis)
	m := img.NewIntermediate(f.IntW, f.IntH)
	ctx := NewCtx(&f, rv, m)
	var cnt Counters
	for vRow := 0; vRow < m.H; vRow++ {
		ctx.Scanline(vRow, &cnt)
	}
	if cnt.Samples != 0 {
		t.Fatalf("empty volume composited %d samples", cnt.Samples)
	}
	for i, p := range m.Pix {
		if p != 0 {
			t.Fatalf("empty volume wrote pixel float %d", i)
		}
	}
}

func TestOpaqueVolumeTerminatesEarly(t *testing.T) {
	// A solid fully-opaque volume saturates pixels on the first slice or
	// two; early ray termination must prevent visiting most slices' voxels.
	nv := vol.New(16, 16, 16)
	for i := range nv.Data {
		nv.Data[i] = 255
	}
	c := classify.Classify(nv, classify.Options{})
	view := xform.ViewMatrix(16, 16, 16, 0, 0)
	f := xform.Factorize(16, 16, 16, view)
	rv := rle.Encode(c, f.Axis)
	m := img.NewIntermediate(f.IntW, f.IntH)
	ctx := NewCtx(&f, rv, m)
	var cnt Counters
	for vRow := 0; vRow < m.H; vRow++ {
		ctx.Scanline(vRow, &cnt)
	}
	// Upper bound if no ET: W*H*Nk samples. With ET we need only a few
	// slices' worth.
	maxNoET := int64(f.IntW * f.IntH * f.Nk)
	if cnt.Samples*4 > maxNoET {
		t.Fatalf("early termination ineffective: %d samples vs %d without ET",
			cnt.Samples, maxNoET)
	}
	if cnt.Skips == 0 {
		t.Fatal("no skip-link traversals on an opaque volume")
	}
}

func TestCountersAndProfilePositive(t *testing.T) {
	f, _, rv := setup(t, 16, 0.4, 0.2)
	m := img.NewIntermediate(f.IntW, f.IntH)
	ctx := NewCtx(f, rv, m)
	var cnt Counters
	var total int64
	profile := make([]int64, m.H)
	for vRow := 0; vRow < m.H; vRow++ {
		profile[vRow] = ctx.Scanline(vRow, &cnt)
		total += profile[vRow]
	}
	if total != cnt.Cycles {
		t.Fatalf("per-line cycles sum %d != counter total %d", total, cnt.Cycles)
	}
	// The profile must be hump-shaped-ish: center rows cost more than edges.
	mid := profile[m.H/2]
	if mid <= profile[0] || mid <= profile[m.H-1] {
		t.Fatalf("profile not centered: edge %d/%d, mid %d", profile[0], profile[m.H-1], mid)
	}
	if cnt.LoopingCycles() <= 0 {
		t.Fatal("looping cycles should be positive")
	}
	if cnt.LoopingCycles() >= cnt.Cycles {
		t.Fatal("looping cycles should be less than total")
	}
}

func TestAddCounters(t *testing.T) {
	a := Counters{Cycles: 10, Samples: 2, Runs: 3}
	b := Counters{Cycles: 5, Samples: 1, Skips: 7}
	a.Add(b)
	if a.Cycles != 15 || a.Samples != 3 || a.Skips != 7 || a.Runs != 3 {
		t.Fatalf("Add result %+v", a)
	}
}

func TestTracerSeesVolumeAndImageArrays(t *testing.T) {
	f, _, rv := setup(t, 16, 0.4, 0.2)
	m := img.NewIntermediate(f.IntW, f.IntH)
	ctx := NewCtx(f, rv, m)
	s := trace.NewAddrSpace()
	ctx.Arrays = RegisterArrays(s, rv, m)
	tr := &trace.CountingTracer{}
	ctx.Tracer = tr
	var cnt Counters
	for vRow := 0; vRow < m.H; vRow++ {
		ctx.Scanline(vRow, &cnt)
	}
	if tr.Reads == 0 || tr.Writes == 0 {
		t.Fatalf("tracer saw %d reads, %d writes", tr.Reads, tr.Writes)
	}
	// Every composited sample must imply at least a pixel write element.
	if tr.WriteElems < cnt.Samples/4 {
		t.Fatalf("write elements %d implausibly low for %d samples", tr.WriteElems, cnt.Samples)
	}
}

func TestTracedAndUntracedImagesIdentical(t *testing.T) {
	f, _, rv := setup(t, 16, 0.5, -0.3)
	a := img.NewIntermediate(f.IntW, f.IntH)
	b := img.NewIntermediate(f.IntW, f.IntH)
	ctxA := NewCtx(f, rv, a)
	ctxB := NewCtx(f, rv, b)
	s := trace.NewAddrSpace()
	ctxB.Arrays = RegisterArrays(s, rv, b)
	ctxB.Tracer = &trace.CountingTracer{}
	var cnt Counters
	for vRow := 0; vRow < a.H; vRow++ {
		ctxA.Scanline(vRow, &cnt)
		ctxB.Scanline(vRow, &cnt)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("tracing changed the rendered image")
		}
	}
}

// The cycle counter must equal the weighted sum of its event counters —
// the cost model is exact, not approximate.
func TestCostModelIdentity(t *testing.T) {
	f, _, rv := setup(t, 24, 0.6, 0.3)
	m := img.NewIntermediate(f.IntW, f.IntH)
	ctx := NewCtx(f, rv, m)
	var cnt Counters
	for vRow := 0; vRow < m.H; vRow++ {
		ctx.Scanline(vRow, &cnt)
	}
	want := cnt.Scanlines*CyclesPerLineSetup +
		cnt.Slices*CyclesPerSliceSetup +
		cnt.Samples*CyclesPerSample +
		cnt.EmptyPixels*CyclesPerEmptyPixel +
		cnt.Skips*CyclesPerSkip +
		cnt.Runs*CyclesPerRun +
		cnt.VoxelsRead*CyclesPerVoxelCopy
	if cnt.Cycles != want {
		t.Fatalf("cycles %d != weighted events %d", cnt.Cycles, want)
	}
}

// Exactly-45-degree views sit on the principal-axis tie: the kernel must
// agree with the brute-force reference there too.
func TestKernelAt45Degrees(t *testing.T) {
	for _, view := range []struct{ yaw, pitch float64 }{
		{math.Pi / 4, 0}, {-math.Pi / 4, 0}, {math.Pi / 4, math.Pi / 4},
	} {
		f, c, rv := setup(t, 16, view.yaw, view.pitch)
		m := img.NewIntermediate(f.IntW, f.IntH)
		ctx := NewCtx(f, rv, m)
		var cnt Counters
		for vRow := 0; vRow < m.H; vRow++ {
			ctx.Scanline(vRow, &cnt)
		}
		ref := img.NewIntermediate(f.IntW, f.IntH)
		referenceComposite(f, c, ref)
		for i := range m.Pix {
			if m.Pix[i] != ref.Pix[i] {
				t.Fatalf("view %+v: pixel %d differs at the axis tie", view, i)
			}
		}
	}
}

func TestHighMinOpacityThreshold(t *testing.T) {
	// Classify with a high threshold: the RLE drops faint voxels and the
	// kernel must agree with the reference, which applies the same rule.
	v := vol.MRIBrain(16)
	c := classify.Classify(v, classify.Options{MinOpacity: 100})
	view := xform.ViewMatrix(v.Nx, v.Ny, v.Nz, 0.4, 0.3)
	f := xform.Factorize(v.Nx, v.Ny, v.Nz, view)
	rv := rle.Encode(c, f.Axis)
	m := img.NewIntermediate(f.IntW, f.IntH)
	ctx := NewCtx(&f, rv, m)
	var cnt Counters
	for vRow := 0; vRow < m.H; vRow++ {
		ctx.Scanline(vRow, &cnt)
	}
	ref := img.NewIntermediate(f.IntW, f.IntH)
	referenceComposite(&f, c, ref)
	for i := range m.Pix {
		if m.Pix[i] != ref.Pix[i] {
			t.Fatalf("pixel %d differs with MinOpacity=100", i)
		}
	}
}
