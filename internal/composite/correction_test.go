package composite

import (
	"math"
	"testing"

	"shearwarp/internal/img"
)

func TestCorrectAlphaIdentityAtZeroShear(t *testing.T) {
	f, _, rv := setup(t, 16, 0, 0) // axis-aligned: d = 1
	m := img.NewIntermediate(f.IntW, f.IntH)
	ctx := NewCtx(f, rv, m)
	ctx.EnableOpacityCorrection()
	for _, a := range []float32{0, 0.25, 0.5, 0.99, 1} {
		if got := ctx.correctAlpha(a); math.Abs(float64(got-a)) > 1e-3 {
			t.Fatalf("d=1 correction not identity: %g -> %g", a, got)
		}
	}
}

func TestCorrectAlphaIncreasesWithShear(t *testing.T) {
	// d > 1: samples are farther apart, each must be more opaque.
	f, _, rv := setup(t, 16, 0.7, 0.4)
	if math.Abs(f.Si)+math.Abs(f.Sj) < 0.1 {
		t.Fatal("test view has no shear")
	}
	m := img.NewIntermediate(f.IntW, f.IntH)
	ctx := NewCtx(f, rv, m)
	ctx.EnableOpacityCorrection()
	for _, a := range []float32{0.1, 0.3, 0.6, 0.9} {
		got := ctx.correctAlpha(a)
		if got <= a {
			t.Fatalf("sheared correction did not increase alpha: %g -> %g", a, got)
		}
		if got > 1 {
			t.Fatalf("corrected alpha %g exceeds 1", got)
		}
	}
	// Endpoints fixed.
	if ctx.correctAlpha(0) != 0 {
		t.Fatal("corrected 0 != 0")
	}
	if c1 := ctx.correctAlpha(1); math.Abs(float64(c1-1)) > 1e-6 {
		t.Fatalf("corrected 1 = %g", c1)
	}
}

func TestCorrectionMonotone(t *testing.T) {
	f, _, rv := setup(t, 16, 0.5, 0.3)
	m := img.NewIntermediate(f.IntW, f.IntH)
	ctx := NewCtx(f, rv, m)
	ctx.EnableOpacityCorrection()
	prev := float32(-1)
	for i := 0; i <= 100; i++ {
		a := float32(i) / 100
		got := ctx.correctAlpha(a)
		if got < prev {
			t.Fatalf("correction not monotone at %g", a)
		}
		prev = got
	}
}
